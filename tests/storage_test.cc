// Tests for the storage layer: the one-pass streaming extractor (the
// paper's limited-memory operating model) and the binary column file.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/dep_miner.h"
#include "relation/csv.h"
#include "relation/relation_builder.h"
#include "storage/column_file.h"
#include "storage/streaming.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

std::string WriteTempCsv(const std::string& content, const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(Streaming, ExtractMatchesInMemoryPath) {
  const Relation r = PaperExampleRelation();
  const std::string csv = CsvToString(r);
  Result<StreamingExtract> extract = ExtractFromCsvText(csv);
  ASSERT_TRUE(extract.ok()) << extract.status().ToString();

  const StrippedPartitionDatabase expected =
      StrippedPartitionDatabase::FromRelation(r);
  ASSERT_EQ(extract.value().partitions.num_attributes(), 5u);
  EXPECT_EQ(extract.value().num_tuples, 7u);
  for (AttributeId a = 0; a < 5; ++a) {
    EXPECT_EQ(extract.value().partitions.partition(a), expected.partition(a))
        << "attribute " << a;
    EXPECT_EQ(extract.value().distinct_counts[a], r.DistinctCount(a));
    EXPECT_EQ(extract.value().value_samples[a], r.Dictionary(a));
  }
  EXPECT_EQ(extract.value().schema.names(), r.schema().names());
}

TEST(Streaming, SampleSizeCapsRetainedValues) {
  StreamingOptions options;
  options.value_sample_size = 2;
  Result<StreamingExtract> extract =
      ExtractFromCsvText("a\nx\ny\nz\nw\n", options);
  ASSERT_TRUE(extract.ok());
  EXPECT_EQ(extract.value().distinct_counts[0], 4u);  // true count kept
  EXPECT_EQ(extract.value().value_samples[0],
            (std::vector<std::string>{"x", "y"}));
}

TEST(Streaming, RejectsRaggedAndEmpty) {
  EXPECT_EQ(ExtractFromCsvText("a,b\n1\n").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(ExtractFromCsvText("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Streaming, MineCsvStreamingMatchesInMemoryMining) {
  const Relation r = RandomRelation(5, 120, 6, 99);
  const std::string path =
      WriteTempCsv(CsvToString(r), "depminer_streaming.csv");

  Result<StreamingMineResult> streamed = MineCsvStreaming(path);
  std::remove(path.c_str());
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  Result<DepMinerResult> direct = MineDependencies(r);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(streamed.value().fds.fds(), direct.value().fds.fds());
  ASSERT_EQ(streamed.value().armstrong.has_value(),
            direct.value().armstrong.has_value());
  if (streamed.value().armstrong.has_value()) {
    EXPECT_EQ(streamed.value().armstrong->num_tuples(),
              direct.value().armstrong->num_tuples());
    // Cell-for-cell identical: same construction, same value order.
    for (TupleId t = 0; t < streamed.value().armstrong->num_tuples(); ++t) {
      for (AttributeId a = 0; a < 5; ++a) {
        EXPECT_EQ(streamed.value().armstrong->Value(t, a),
                  direct.value().armstrong->Value(t, a));
      }
    }
  }
}

TEST(Streaming, TinySampleFailsArmstrongButNotDiscovery) {
  const Relation r = RandomRelation(4, 100, 5, 3);
  const std::string path =
      WriteTempCsv(CsvToString(r), "depminer_tiny_sample.csv");
  StreamingOptions options;
  options.value_sample_size = 1;  // almost certainly too small
  Result<StreamingMineResult> streamed = MineCsvStreaming(path, options);
  std::remove(path.c_str());
  ASSERT_TRUE(streamed.ok());
  Result<DepMinerResult> direct = MineDependencies(r);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(streamed.value().fds.fds(), direct.value().fds.fds());
  if (!direct.value().all_max_sets.empty()) {
    EXPECT_FALSE(streamed.value().armstrong.has_value());
    EXPECT_EQ(streamed.value().armstrong_status.code(),
              StatusCode::kCapacityExceeded);
  }
}

TEST(ColumnFile, RoundTrips) {
  const Relation r = PaperExampleRelation();
  const std::string path = ::testing::TempDir() + "/depminer_roundtrip.dmc";
  ASSERT_TRUE(WriteColumnFile(r, path).ok());
  Result<Relation> back = ReadColumnFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().num_tuples(), r.num_tuples());
  ASSERT_EQ(back.value().schema().names(), r.schema().names());
  for (TupleId t = 0; t < r.num_tuples(); ++t) {
    for (AttributeId a = 0; a < r.num_attributes(); ++a) {
      EXPECT_EQ(back.value().Value(t, a), r.Value(t, a));
      EXPECT_EQ(back.value().Code(t, a), r.Code(t, a));
    }
  }
}

TEST(ColumnFile, MiningEquivalentAfterRoundTrip) {
  const Relation r = RandomRelation(5, 80, 4, 17);
  const std::string path = ::testing::TempDir() + "/depminer_mine.dmc";
  ASSERT_TRUE(WriteColumnFile(r, path).ok());
  Result<Relation> back = ReadColumnFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.ok());
  Result<DepMinerResult> a = MineDependencies(r);
  Result<DepMinerResult> b = MineDependencies(back.value());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().fds.fds(), b.value().fds.fds());
}

TEST(ColumnFile, RejectsBadMagicAndTruncation) {
  const std::string path = ::testing::TempDir() + "/depminer_bad.dmc";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACOLUMNFILE";
  }
  EXPECT_EQ(ReadColumnFile(path).status().code(), StatusCode::kIoError);

  // Valid file, then truncate it.
  const Relation r = PaperExampleRelation();
  ASSERT_TRUE(WriteColumnFile(r, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(ReadColumnFile(path).status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(ColumnFile, MissingFile) {
  EXPECT_EQ(ReadColumnFile("/nonexistent/x.dmc").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace depminer
