#include "core/inversion.h"

#include <gtest/gtest.h>

#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "tane/tane.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;
using ::depminer::testing::Sets;
using ::depminer::testing::SetsToString;

TEST(Inversion, PaperExampleRoundTrip) {
  const Relation r = PaperExampleRelation();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());

  const MaxSetResult inverted = MaxSetsFromFds(mined.value().fds);
  for (AttributeId a = 0; a < 5; ++a) {
    EXPECT_EQ(inverted.max_sets[a], mined.value().max_sets.max_sets[a])
        << "attribute " << a;
    EXPECT_EQ(inverted.cmax_sets[a], mined.value().max_sets.cmax_sets[a]);
  }
  EXPECT_EQ(AllMaxSetsFromFds(mined.value().fds), Sets({"A", "BDE", "CE"}));
}

TEST(Inversion, ConstantAttributeHasNoMaxSets) {
  Result<Relation> r = MakeRelation({{"c", "1"}, {"c", "2"}});
  ASSERT_TRUE(r.ok());
  Result<DepMinerResult> mined = MineDependencies(r.value());
  ASSERT_TRUE(mined.ok());
  const MaxSetResult inverted = MaxSetsFromFds(mined.value().fds);
  EXPECT_TRUE(inverted.max_sets[0].empty());   // constant column A
  EXPECT_FALSE(inverted.max_sets[1].empty());  // key column B
}

TEST(Inversion, UndeterminedAttributeYieldsFullComplement) {
  // Nothing (non-trivially) determines B: max(dep(r), B) = {R \ B}.
  Result<Relation> r = MakeRelation({
      {"1", "x"}, {"1", "y"}, {"2", "x"}, {"2", "y"},
  });
  ASSERT_TRUE(r.ok());
  Result<DepMinerResult> mined = MineDependencies(r.value());
  ASSERT_TRUE(mined.ok());
  ASSERT_TRUE(mined.value().fds.Empty()) << mined.value().fds.ToString();
  const MaxSetResult inverted = MaxSetsFromFds(mined.value().fds);
  EXPECT_EQ(inverted.max_sets[0], Sets({"B"}));
  EXPECT_EQ(inverted.max_sets[1], Sets({"A"}));
}

// The paper's §5.1 pipeline: TANE output → Tr(lhs) → maximal sets →
// real-world Armstrong relation. Must match the Dep-Miner route exactly.
class InversionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InversionSweep, TaneRouteMatchesDepMinerRoute) {
  const uint64_t seed = GetParam();
  const Relation r =
      RandomRelation(3 + seed % 5, 25 + 7 * (seed % 6), 3 + seed % 5, seed);

  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());

  Result<TaneResult> tane = TaneDiscover(r);
  ASSERT_TRUE(tane.ok());

  const std::vector<AttributeSet> via_tane =
      AllMaxSetsFromFds(tane.value().fds);
  EXPECT_EQ(via_tane, mined.value().all_max_sets)
      << "tane-route " << SetsToString(via_tane) << " dep-miner "
      << SetsToString(mined.value().all_max_sets);

  // And the Armstrong relations built from both agree.
  Result<Relation> from_tane = BuildRealWorldArmstrong(r, via_tane);
  if (mined.value().armstrong.has_value()) {
    ASSERT_TRUE(from_tane.ok());
    EXPECT_EQ(from_tane.value().num_tuples(),
              mined.value().armstrong->num_tuples());
    EXPECT_TRUE(IsArmstrongFor(from_tane.value(), via_tane));
  } else {
    EXPECT_FALSE(from_tane.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InversionSweep,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace depminer
