#include "core/keys_from_max_sets.h"

#include <gtest/gtest.h>

#include "core/dep_miner.h"
#include "fd/keys.h"
#include "fd/satisfaction.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;
using ::depminer::testing::Sets;
using ::depminer::testing::SetsToString;

TEST(KeysFromMaxSets, PaperExample) {
  const Relation r = PaperExampleRelation();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const std::vector<AttributeSet> keys =
      KeysFromMaxSets(mined.value().all_max_sets, 5);
  // Verified against the Lucchesi-Osborn enumeration on the FD cover.
  EXPECT_EQ(keys, CandidateKeys(mined.value().fds)) << SetsToString(keys);
  // And semantically: each key determines every attribute in r.
  for (const AttributeSet& k : keys) {
    for (AttributeId a = 0; a < 5; ++a) {
      EXPECT_TRUE(Holds(r, k, a)) << k.ToString();
    }
  }
}

TEST(KeysFromMaxSets, NoMaxSetsMeansEmptyKey) {
  const std::vector<AttributeSet> keys = KeysFromMaxSets({}, 3);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_TRUE(keys[0].Empty());
}

TEST(KeysFromMaxSets, AllDisagreeRelation) {
  // MAX = {∅}: every single attribute is a key.
  const std::vector<AttributeSet> keys =
      KeysFromMaxSets({AttributeSet()}, 3);
  EXPECT_EQ(keys, Sets({"A", "B", "C"}));
}

class KeysSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeysSweep, AgreesWithFdBasedEnumeration) {
  const uint64_t seed = GetParam();
  const Relation r =
      RandomRelation(3 + seed % 5, 20 + 8 * (seed % 5), 2 + seed % 5, seed);
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(KeysFromMaxSets(mined.value().all_max_sets, r.num_attributes()),
            CandidateKeys(mined.value().fds))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeysSweep, ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace depminer
