#include "core/max_sets.h"

#include <gtest/gtest.h>

#include "core/agree_sets.h"
#include "fd/satisfaction.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::RandomRelation;
using ::depminer::testing::Sets;
using ::depminer::testing::SetsToString;

AgreeSetResult Agree(const Relation& r) {
  return ComputeAgreeSetsIdentifiers(
      StrippedPartitionDatabase::FromRelation(r));
}

/// Brute-force max(dep(r), A) straight from the definition: the ⊆-maximal
/// X ⊆ R\{A} with r ⊭ X → A.
std::vector<AttributeSet> MaxSetsByDefinition(const Relation& r,
                                              AttributeId a) {
  const size_t n = r.num_attributes();
  std::vector<AttributeSet> failing;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (mask & (1u << a)) continue;
    AttributeSet x;
    for (AttributeId b = 0; b < n; ++b) {
      if (mask & (1u << b)) x.Add(b);
    }
    if (!Holds(r, x, a)) failing.push_back(x);
  }
  std::vector<AttributeSet> out = MaximalSets(std::move(failing));
  SortSets(&out);
  return out;
}

TEST(MaxSets, CmaxIsExactComplement) {
  const Relation r = RandomRelation(5, 30, 3, 7);
  const MaxSetResult result = ComputeMaxSets(Agree(r));
  const AttributeSet universe = AttributeSet::Universe(5);
  for (AttributeId a = 0; a < 5; ++a) {
    ASSERT_EQ(result.max_sets[a].size(), result.cmax_sets[a].size());
    // Complement is an involution; check as sets.
    std::vector<AttributeSet> complements;
    for (const AttributeSet& x : result.max_sets[a]) {
      complements.push_back(universe.Minus(x));
    }
    SortSets(&complements);
    EXPECT_EQ(result.cmax_sets[a], complements);
  }
}

TEST(MaxSets, CmaxEdgesAllContainTheAttribute) {
  const Relation r = RandomRelation(5, 40, 3, 13);
  const MaxSetResult result = ComputeMaxSets(Agree(r));
  for (AttributeId a = 0; a < 5; ++a) {
    for (const AttributeSet& e : result.cmax_sets[a]) {
      EXPECT_TRUE(e.Contains(a)) << "cmax edge must contain its attribute";
    }
  }
}

TEST(MaxSets, CmaxFormsSimpleHypergraph) {
  const Relation r = RandomRelation(6, 50, 4, 21);
  const MaxSetResult result = ComputeMaxSets(Agree(r));
  for (AttributeId a = 0; a < 6; ++a) {
    const std::vector<AttributeSet>& edges = result.cmax_sets[a];
    for (size_t i = 0; i < edges.size(); ++i) {
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(edges[i].IsProperSubsetOf(edges[j]))
            << "max sets must be mutually incomparable";
      }
    }
  }
}

TEST(MaxSets, ConstantColumnYieldsEmptyMaxFamily) {
  // Column A constant: every pair agrees on A, so no agree set avoids A
  // and ∅ → A holds; max(dep(r), A) must be empty (not {∅}).
  Result<Relation> rel = MakeRelation({{"c", "1"}, {"c", "2"}, {"c", "3"}});
  ASSERT_TRUE(rel.ok());
  const MaxSetResult result = ComputeMaxSets(Agree(rel.value()));
  EXPECT_TRUE(result.max_sets[0].empty());
  EXPECT_TRUE(result.cmax_sets[0].empty());
}

TEST(MaxSets, AllPairsDisagreeEverywhere) {
  // Key-like relation where every pair of tuples differs on every
  // attribute: ag(r) = {∅}; for each A, max(dep(r), A) = {∅} and
  // cmax(dep(r), A) = {R}.
  Result<Relation> rel = MakeRelation({{"1", "x"}, {"2", "y"}, {"3", "z"}});
  ASSERT_TRUE(rel.ok());
  const AgreeSetResult agree = Agree(rel.value());
  EXPECT_TRUE(agree.sets.empty());
  EXPECT_TRUE(agree.contains_empty);
  const MaxSetResult result = ComputeMaxSets(agree);
  for (AttributeId a = 0; a < 2; ++a) {
    ASSERT_EQ(result.max_sets[a].size(), 1u);
    EXPECT_TRUE(result.max_sets[a][0].Empty());
    ASSERT_EQ(result.cmax_sets[a].size(), 1u);
    EXPECT_EQ(result.cmax_sets[a][0], AttributeSet::FromLetters("AB"));
  }
}

TEST(MaxSets, AllMaxSetsKeepsCrossAttributeSubsets) {
  // MAX(dep(r)) is a plain union: a max set for one attribute may be a
  // subset of a max set for another and both must be kept.
  AgreeSetResult agree;
  agree.num_attributes = 3;
  agree.num_tuples = 4;
  agree.sets = Sets({"A", "AB"});
  const MaxSetResult result = ComputeMaxSets(agree);
  // max(C) = {AB}; max(B) = {A}; AllMaxSets = {A, AB}.
  EXPECT_EQ(result.AllMaxSets(), Sets({"A", "AB"}));
}

// Differential sweep against the brute-force definition (Lemma 3).
class MaxSetSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxSetSweep, Lemma3MatchesDefinition) {
  const Relation r = RandomRelation(5, 24, 3, GetParam());
  const MaxSetResult result = ComputeMaxSets(Agree(r));
  for (AttributeId a = 0; a < 5; ++a) {
    EXPECT_EQ(result.max_sets[a], MaxSetsByDefinition(r, a))
        << "attribute " << a << ": got "
        << SetsToString(result.max_sets[a]) << " expected "
        << SetsToString(MaxSetsByDefinition(r, a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxSetSweep, ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace depminer
