#include "partition/partition.h"

#include <gtest/gtest.h>

#include "partition/partition_database.h"
#include "partition/partition_product.h"
#include "partition/stripped_partition.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

TEST(Partition, ForAttributeGroupsEqualValues) {
  Result<Relation> r = MakeRelation({{"x"}, {"y"}, {"x"}, {"z"}, {"y"}});
  ASSERT_TRUE(r.ok());
  const Partition p = Partition::ForAttribute(r.value(), 0);
  EXPECT_EQ(p.num_classes(), 3u);
  EXPECT_EQ(p.num_tuples(), 5u);
  EXPECT_EQ(p.CoveredTuples(), 5u);
  EXPECT_EQ(p.ToString(), "{{1,3}, {2,5}, {4}}");
}

TEST(Partition, ForEmptySetIsSingleClass) {
  const Relation r = PaperExampleRelation();
  const Partition p = Partition::ForSet(r, AttributeSet());
  EXPECT_EQ(p.num_classes(), 1u);
  EXPECT_EQ(p.classes()[0].size(), 7u);
}

TEST(Partition, ForSetMatchesPairwiseAgreement) {
  const Relation r = RandomRelation(4, 40, 3, 17);
  const AttributeSet x = AttributeSet::FromLetters("AC");
  const Partition p = Partition::ForSet(r, x);
  // Two tuples share a class iff they agree on X.
  std::vector<size_t> class_of(r.num_tuples());
  for (size_t i = 0; i < p.classes().size(); ++i) {
    for (TupleId t : p.classes()[i]) class_of[t] = i;
  }
  for (TupleId i = 0; i < r.num_tuples(); ++i) {
    for (TupleId j = i + 1; j < r.num_tuples(); ++j) {
      EXPECT_EQ(class_of[i] == class_of[j], r.Agree(i, j, x))
          << "tuples " << i << "," << j;
    }
  }
}

TEST(Partition, RefinesIsReflexiveAndRespectsSubsets) {
  const Relation r = RandomRelation(4, 50, 4, 3);
  const Partition pa = Partition::ForSet(r, AttributeSet::FromLetters("A"));
  const Partition pab = Partition::ForSet(r, AttributeSet::FromLetters("AB"));
  EXPECT_TRUE(pa.Refines(pa));
  EXPECT_TRUE(pab.Refines(pa));   // more attributes refine
  // The converse typically fails on random data with small domains.
  EXPECT_FALSE(pa.Refines(pab));
}

TEST(Partition, RankCountsSingletons) {
  Result<Relation> r = MakeRelation({{"x"}, {"y"}, {"x"}});
  ASSERT_TRUE(r.ok());
  const Partition p = Partition::ForAttribute(r.value(), 0);
  EXPECT_EQ(p.Rank(), 2u);
  EXPECT_EQ(p.ErrorCount(), 1u);  // {1,3} contributes |c|-1 = 1
}

TEST(StrippedPartition, DropsSingletons) {
  Result<Relation> r = MakeRelation({{"x"}, {"y"}, {"x"}, {"z"}});
  ASSERT_TRUE(r.ok());
  const StrippedPartition sp = StrippedPartition::ForAttribute(r.value(), 0);
  EXPECT_EQ(sp.num_classes(), 1u);
  EXPECT_EQ(sp.classes()[0], (EquivalenceClass{0, 2}));
  EXPECT_EQ(sp.CoveredTuples(), 2u);
  EXPECT_EQ(sp.num_tuples(), 4u);
}

TEST(StrippedPartition, AllDistinctValuesGivesEmpty) {
  Result<Relation> r = MakeRelation({{"a"}, {"b"}, {"c"}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(StrippedPartition::ForAttribute(r.value(), 0).Empty());
}

TEST(StrippedPartition, UnstripRestoresPartition) {
  const Relation r = RandomRelation(3, 30, 4, 11);
  for (AttributeId a = 0; a < 3; ++a) {
    const Partition full = Partition::ForAttribute(r, a);
    const StrippedPartition sp = StrippedPartition::FromPartition(full);
    EXPECT_EQ(sp.Unstrip(), full);
  }
}

TEST(StrippedPartitionDatabase, PaperExampleMemberships) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  EXPECT_EQ(db.num_attributes(), 5u);
  EXPECT_EQ(db.num_tuples(), 7u);
  // π̂_A covers 2, π̂_B 6, π̂_C 2, π̂_D 6, π̂_E 7 → 23 memberships.
  EXPECT_EQ(db.TotalMemberships(), 23u);
}

TEST(PartitionProduct, MatchesDirectComputation) {
  const Relation r = RandomRelation(5, 60, 3, 23);
  PartitionProductWorkspace ws(r.num_tuples());
  for (AttributeId a = 0; a < 5; ++a) {
    for (AttributeId b = 0; b < 5; ++b) {
      if (a == b) continue;
      const StrippedPartition pa = StrippedPartition::ForAttribute(r, a);
      const StrippedPartition pb = StrippedPartition::ForAttribute(r, b);
      AttributeSet ab;
      ab.Add(a);
      ab.Add(b);
      const StrippedPartition expected = StrippedPartition::FromPartition(
          Partition::ForSet(r, ab));
      EXPECT_EQ(ws.Product(pa, pb), expected)
          << "attributes " << a << "," << b;
    }
  }
}

TEST(PartitionProduct, Commutative) {
  const Relation r = RandomRelation(4, 80, 2, 5);
  const StrippedPartition pa = StrippedPartition::ForAttribute(r, 0);
  const StrippedPartition pb = StrippedPartition::ForAttribute(r, 1);
  EXPECT_EQ(PartitionProduct(pa, pb), PartitionProduct(pb, pa));
}

TEST(PartitionProduct, WithSelfIsIdentity) {
  const Relation r = RandomRelation(3, 50, 3, 7);
  const StrippedPartition p = StrippedPartition::ForAttribute(r, 0);
  EXPECT_EQ(PartitionProduct(p, p), p);
}

TEST(PartitionProduct, WorkspaceReusableAcrossCalls) {
  const Relation r = RandomRelation(4, 50, 2, 9);
  PartitionProductWorkspace ws(r.num_tuples());
  const StrippedPartition pa = StrippedPartition::ForAttribute(r, 0);
  const StrippedPartition pb = StrippedPartition::ForAttribute(r, 1);
  const StrippedPartition first = ws.Product(pa, pb);
  const StrippedPartition second = ws.Product(pa, pb);
  EXPECT_EQ(first, second);
}

// Parameterized associativity / consistency sweep: products over random
// relations agree with direct ForSet computation for 3-attribute sets.
class PartitionProductSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionProductSweep, TripleProductsMatchForSet) {
  const Relation r = RandomRelation(4, 45, 3, GetParam());
  PartitionProductWorkspace ws(r.num_tuples());
  const StrippedPartition pa = StrippedPartition::ForAttribute(r, 0);
  const StrippedPartition pb = StrippedPartition::ForAttribute(r, 1);
  const StrippedPartition pc = StrippedPartition::ForAttribute(r, 2);
  const StrippedPartition abc = ws.Product(ws.Product(pa, pb), pc);
  const StrippedPartition expected = StrippedPartition::FromPartition(
      Partition::ForSet(r, AttributeSet::FromLetters("ABC")));
  EXPECT_EQ(abc, expected);
  // Associativity.
  EXPECT_EQ(ws.Product(pa, ws.Product(pb, pc)), abc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProductSweep,
                         ::testing::Range<uint64_t>(0, 12));

TEST(ClassLabelTable, LabelsMatchPartitionClasses) {
  const Relation r = RandomRelation(5, 60, 3, 11);
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  const ClassLabelTable table = ClassLabelTable::Build(db);
  ASSERT_EQ(table.num_attributes(), db.num_attributes());
  ASSERT_EQ(table.num_tuples(), db.num_tuples());
  for (AttributeId a = 0; a < db.num_attributes(); ++a) {
    const uint32_t* row = table.Row(a);
    std::vector<uint32_t> expected(db.num_tuples(), 0);
    uint32_t id = 1;
    for (const EquivalenceClass& c : db.partition(a).classes()) {
      for (TupleId t : c) expected[t] = id;
      ++id;
    }
    for (TupleId t = 0; t < db.num_tuples(); ++t) {
      ASSERT_EQ(row[t], expected[t]) << "attr " << a << " tuple " << t;
    }
  }
}

TEST(ClassLabelTable, ThreadCountInvariance) {
  const Relation r = RandomRelation(9, 120, 4, 5);
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  const ClassLabelTable serial = ClassLabelTable::Build(db, 1);
  const ClassLabelTable parallel = ClassLabelTable::Build(db, 8);
  ASSERT_EQ(serial.bytes(), parallel.bytes());
  for (AttributeId a = 0; a < db.num_attributes(); ++a) {
    for (TupleId t = 0; t < db.num_tuples(); ++t) {
      ASSERT_EQ(serial.Row(a)[t], parallel.Row(a)[t]);
    }
  }
}

}  // namespace
}  // namespace depminer
