#include "common/attribute_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace depminer {
namespace {

TEST(AttributeSet, EmptyAndSingle) {
  AttributeSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_FALSE(s.Contains(0));

  const AttributeSet a = AttributeSet::Single(5);
  EXPECT_FALSE(a.Empty());
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Contains(5));
  EXPECT_EQ(a.Min(), 5u);
  EXPECT_EQ(a.Max(), 5u);
}

TEST(AttributeSet, AddRemove) {
  AttributeSet s;
  s.Add(3);
  s.Add(70);  // second word
  s.Add(127);
  EXPECT_EQ(s.Count(), 3u);
  EXPECT_TRUE(s.Contains(70));
  EXPECT_EQ(s.Min(), 3u);
  EXPECT_EQ(s.Max(), 127u);
  s.Remove(70);
  EXPECT_FALSE(s.Contains(70));
  EXPECT_EQ(s.Count(), 2u);
  s.Remove(70);  // removing absent member is a no-op
  EXPECT_EQ(s.Count(), 2u);
}

TEST(AttributeSet, Universe) {
  EXPECT_TRUE(AttributeSet::Universe(0).Empty());
  EXPECT_EQ(AttributeSet::Universe(1).Count(), 1u);
  EXPECT_EQ(AttributeSet::Universe(63).Count(), 63u);
  EXPECT_EQ(AttributeSet::Universe(64).Count(), 64u);
  EXPECT_EQ(AttributeSet::Universe(65).Count(), 65u);
  EXPECT_EQ(AttributeSet::Universe(128).Count(), 128u);
  EXPECT_TRUE(AttributeSet::Universe(65).Contains(64));
  EXPECT_FALSE(AttributeSet::Universe(64).Contains(64));
}

TEST(AttributeSet, SetAlgebra) {
  const AttributeSet x = AttributeSet::FromLetters("ABC");
  const AttributeSet y = AttributeSet::FromLetters("BCD");
  EXPECT_EQ(x.Union(y), AttributeSet::FromLetters("ABCD"));
  EXPECT_EQ(x.Intersect(y), AttributeSet::FromLetters("BC"));
  EXPECT_EQ(x.Minus(y), AttributeSet::FromLetters("A"));
  EXPECT_EQ(y.Minus(x), AttributeSet::FromLetters("D"));
  EXPECT_TRUE(x.Intersects(y));
  EXPECT_FALSE(
      AttributeSet::FromLetters("A").Intersects(AttributeSet::FromLetters("B")));
}

TEST(AttributeSet, SubsetRelations) {
  const AttributeSet small = AttributeSet::FromLetters("BC");
  const AttributeSet big = AttributeSet::FromLetters("ABCD");
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_TRUE(small.IsProperSubsetOf(big));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_FALSE(small.IsProperSubsetOf(small));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(AttributeSet().IsSubsetOf(small));
}

TEST(AttributeSet, ComplementIn) {
  const AttributeSet x = AttributeSet::FromLetters("AC");
  EXPECT_EQ(x.ComplementIn(5), AttributeSet::FromLetters("BDE"));
  EXPECT_EQ(AttributeSet().ComplementIn(3), AttributeSet::FromLetters("ABC"));
}

TEST(AttributeSet, CrossWordOperations) {
  AttributeSet x, y;
  x.Add(10);
  x.Add(100);
  y.Add(100);
  y.Add(120);
  EXPECT_EQ(x.Intersect(y).Members(), std::vector<AttributeId>{100});
  EXPECT_EQ(x.Union(y).Count(), 3u);
  EXPECT_TRUE(AttributeSet::Single(100).IsSubsetOf(x));
}

TEST(AttributeSet, MembersAndForEach) {
  const AttributeSet s = AttributeSet::FromLetters("ACE");
  EXPECT_EQ(s.Members(), (std::vector<AttributeId>{0, 2, 4}));
  std::vector<AttributeId> visited;
  s.ForEach([&](AttributeId a) { visited.push_back(a); });
  EXPECT_EQ(visited, s.Members());
}

TEST(AttributeSet, ToStringLetters) {
  EXPECT_EQ(AttributeSet::FromLetters("BDE").ToString(), "BDE");
  EXPECT_EQ(AttributeSet().ToString(), "{}");
  AttributeSet wide;
  wide.Add(3);
  wide.Add(40);
  EXPECT_EQ(wide.ToString(), "{3,40}");
}

TEST(AttributeSet, ToStringWithNames) {
  const std::vector<std::string> names = {"emp", "dep", "year"};
  EXPECT_EQ(AttributeSet::FromLetters("AC").ToString(names), "emp,year");
}

TEST(AttributeSet, OrderingIsTotal) {
  std::vector<AttributeSet> sets = {
      AttributeSet::FromLetters("B"), AttributeSet::FromLetters("A"),
      AttributeSet::FromLetters("AB"), AttributeSet()};
  std::sort(sets.begin(), sets.end());
  for (size_t i = 1; i < sets.size(); ++i) {
    EXPECT_TRUE(sets[i - 1] < sets[i] || sets[i - 1] == sets[i]);
    EXPECT_FALSE(sets[i] < sets[i - 1]);
  }
}

TEST(AttributeSet, HashDistinguishes) {
  std::unordered_set<AttributeSet, AttributeSetHash> table;
  table.insert(AttributeSet::FromLetters("AB"));
  table.insert(AttributeSet::FromLetters("AB"));
  table.insert(AttributeSet::FromLetters("AC"));
  AttributeSet high;
  high.Add(100);
  table.insert(high);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_TRUE(table.count(AttributeSet::FromLetters("AB")));
  EXPECT_TRUE(table.count(high));
}

TEST(MaximalSets, DropsSubsetsAndDuplicates) {
  std::vector<AttributeSet> in = {
      AttributeSet::FromLetters("AB"), AttributeSet::FromLetters("A"),
      AttributeSet::FromLetters("AB"), AttributeSet::FromLetters("BC"),
      AttributeSet::FromLetters("C")};
  std::vector<AttributeSet> out = MaximalSets(in);
  SortSets(&out);
  EXPECT_EQ(out, (std::vector<AttributeSet>{AttributeSet::FromLetters("AB"),
                                            AttributeSet::FromLetters("BC")}));
}

TEST(MaximalSets, EmptySetDominatedByAnything) {
  std::vector<AttributeSet> out =
      MaximalSets({AttributeSet(), AttributeSet::FromLetters("A")});
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], AttributeSet::FromLetters("A"));
}

TEST(MinimalSets, DropsSupersets) {
  std::vector<AttributeSet> out = MinimalSets(
      {AttributeSet::FromLetters("AB"), AttributeSet::FromLetters("A"),
       AttributeSet::FromLetters("BC")});
  SortSets(&out);
  EXPECT_EQ(out, (std::vector<AttributeSet>{AttributeSet::FromLetters("A"),
                                            AttributeSet::FromLetters("BC")}));
}

TEST(SortSets, CardinalityThenLexicographic) {
  std::vector<AttributeSet> sets = {
      AttributeSet::FromLetters("BC"), AttributeSet::FromLetters("AD"),
      AttributeSet::FromLetters("B"), AttributeSet::FromLetters("ABC")};
  SortSets(&sets);
  EXPECT_EQ(sets, (std::vector<AttributeSet>{
                      AttributeSet::FromLetters("B"),
                      AttributeSet::FromLetters("AD"),
                      AttributeSet::FromLetters("BC"),
                      AttributeSet::FromLetters("ABC")}));
}

// Property sweep: algebra laws on pseudo-random sets.
class AttributeSetPropertyTest : public ::testing::TestWithParam<int> {};

AttributeSet PseudoRandomSet(uint64_t seed) {
  AttributeSet s;
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (int i = 0; i < 6; ++i) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    s.Add(static_cast<AttributeId>(x % AttributeSet::kMaxAttributes));
  }
  return s;
}

TEST(AttributeSet, LexLessKnownCases) {
  const auto lex = [](const std::string& a, const std::string& b) {
    return AttributeSet::FromLetters(a).LexLess(AttributeSet::FromLetters(b));
  };
  EXPECT_TRUE(lex("AB", "AC"));
  EXPECT_TRUE(lex("AB", "B"));    // [0,1] < [1]
  EXPECT_TRUE(lex("B", "BC"));    // prefix
  EXPECT_FALSE(lex("BC", "B"));
  EXPECT_FALSE(lex("B", "AB"));   // [1] > [0,1]
  EXPECT_FALSE(lex("A", "A"));    // irreflexive
  EXPECT_TRUE(AttributeSet().LexLess(AttributeSet::FromLetters("A")));
  EXPECT_FALSE(AttributeSet().LexLess(AttributeSet()));
}

TEST_P(AttributeSetPropertyTest, LexLessMatchesMemberListOrder) {
  const AttributeSet x = PseudoRandomSet(GetParam());
  const AttributeSet y = PseudoRandomSet(GetParam() + 500);
  EXPECT_EQ(x.LexLess(y), x.Members() < y.Members())
      << x.ToString() << " vs " << y.ToString();
  EXPECT_EQ(y.LexLess(x), y.Members() < x.Members());
  // High-bit sets (second word) too.
  AttributeSet hx = x, hy = y;
  hx.Add(120);
  hy.Add(121);
  EXPECT_EQ(hx.LexLess(hy), hx.Members() < hy.Members());
}

TEST_P(AttributeSetPropertyTest, AlgebraLaws) {
  const AttributeSet x = PseudoRandomSet(GetParam());
  const AttributeSet y = PseudoRandomSet(GetParam() + 1000);
  const AttributeSet z = PseudoRandomSet(GetParam() + 2000);

  // De Morgan within a universe.
  const size_t n = AttributeSet::kMaxAttributes;
  EXPECT_EQ(x.Union(y).ComplementIn(n),
            x.ComplementIn(n).Intersect(y.ComplementIn(n)));
  // Distributivity.
  EXPECT_EQ(x.Intersect(y.Union(z)),
            x.Intersect(y).Union(x.Intersect(z)));
  // Difference definition.
  EXPECT_EQ(x.Minus(y), x.Intersect(y.ComplementIn(n)));
  // Subset via union/intersection.
  EXPECT_EQ(x.IsSubsetOf(y), x.Union(y) == y);
  EXPECT_EQ(x.IsSubsetOf(y), x.Intersect(y) == x);
  // Count is a measure.
  EXPECT_EQ(x.Count() + y.Count(),
            x.Union(y).Count() + x.Intersect(y).Count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttributeSetPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace depminer
