#include "ind/nary_ind.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

bool Contains(const std::vector<NaryInd>& inds, const NaryInd& ind) {
  return std::find(inds.begin(), inds.end(), ind) != inds.end();
}

TEST(NaryInd, CompositeForeignKey) {
  // orders(cust, site) ⊆ customers(id, site): a two-column foreign key.
  Result<Relation> customers = MakeRelation(
      Schema({"id", "site", "name"}),
      {{"c1", "eu", "ann"}, {"c2", "us", "bob"}, {"c1", "us", "ann2"}});
  Result<Relation> orders = MakeRelation(
      Schema({"order", "cust", "site"}),
      {{"o1", "c1", "eu"}, {"o2", "c1", "us"}, {"o3", "c2", "us"}});
  ASSERT_TRUE(customers.ok());
  ASSERT_TRUE(orders.ok());
  const std::vector<const Relation*> rels = {&customers.value(),
                                             &orders.value()};
  NaryIndStats stats;
  const std::vector<NaryInd> inds = DiscoverNaryInds(rels, {}, &stats);

  const NaryInd fk{1, {1, 2}, 0, {0, 1}};  // orders[cust,site] ⊆ customers[id,site]
  EXPECT_TRUE(Contains(inds, fk));
  EXPECT_TRUE(IndHolds(rels, fk));
  EXPECT_EQ(stats.valid_per_arity[1], stats.unary_count);
  EXPECT_GT(stats.candidates_checked, 0u);
  EXPECT_EQ(IndToString(fk, rels, {"customers", "orders"}),
            "orders.[cust,site] <= customers.[id,site]");
}

TEST(NaryInd, BinaryIndRequiresJointInclusion) {
  // Both columns unary-included but the *pairs* don't match.
  Result<Relation> s = MakeRelation(Schema({"a", "b"}),
                                    {{"1", "x"}, {"2", "y"}});
  Result<Relation> r = MakeRelation(Schema({"c", "d"}),
                                    {{"1", "y"}});  // (1,y) not in s
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(r.ok());
  const std::vector<const Relation*> rels = {&s.value(), &r.value()};
  const std::vector<NaryInd> inds = DiscoverNaryInds(rels);
  EXPECT_TRUE(Contains(inds, NaryInd{1, {0}, 0, {0}}));  // c ⊆ a
  EXPECT_TRUE(Contains(inds, NaryInd{1, {1}, 0, {1}}));  // d ⊆ b
  EXPECT_FALSE(Contains(inds, NaryInd{1, {0, 1}, 0, {0, 1}}));
  EXPECT_FALSE(IndHolds(rels, NaryInd{1, {0, 1}, 0, {0, 1}}));
}

TEST(NaryInd, MaxArityCapsSearch) {
  Result<Relation> r = MakeRelation(
      Schema({"a", "b", "c", "a2", "b2", "c2"}),
      {{"1", "x", "p", "1", "x", "p"}, {"2", "y", "q", "2", "y", "q"}});
  ASSERT_TRUE(r.ok());
  NaryIndOptions options;
  options.max_arity = 2;
  const std::vector<NaryInd> inds =
      DiscoverNaryInds({&r.value()}, options);
  for (const NaryInd& ind : inds) {
    EXPECT_LE(ind.arity(), 2u);
  }
  // The duplicated column block gives [a,b] ⊆ [a2,b2].
  EXPECT_TRUE(Contains(inds, NaryInd{0, {0, 1}, 0, {3, 4}}));
}

TEST(NaryInd, TriaryViaDuplicatedBlock) {
  Result<Relation> r = MakeRelation(
      Schema({"a", "b", "c", "a2", "b2", "c2"}),
      {{"1", "x", "p", "1", "x", "p"},
       {"2", "y", "q", "2", "y", "q"},
       {"3", "z", "r", "3", "z", "r"}});
  ASSERT_TRUE(r.ok());
  const std::vector<NaryInd> inds = DiscoverNaryInds({&r.value()});
  EXPECT_TRUE(Contains(inds, NaryInd{0, {0, 1, 2}, 0, {3, 4, 5}}));
  EXPECT_TRUE(Contains(inds, NaryInd{0, {3, 4, 5}, 0, {0, 1, 2}}));
}

TEST(NaryInd, NoTrivialIdentityInds) {
  Result<Relation> r = MakeRelation(Schema({"a", "b"}),
                                    {{"1", "1"}, {"2", "2"}});
  ASSERT_TRUE(r.ok());
  const std::vector<NaryInd> inds = DiscoverNaryInds({&r.value()});
  for (const NaryInd& ind : inds) {
    EXPECT_FALSE(ind.lhs_relation == ind.rhs_relation &&
                 ind.lhs_attributes == ind.rhs_attributes)
        << "trivial IND reported";
  }
  // a and b carry equal value sets and pair up both ways at arity 1 and
  // as the swapped binary IND [a,b] ⊆ [b,a].
  EXPECT_TRUE(Contains(inds, NaryInd{0, {0}, 0, {1}}));
  EXPECT_TRUE(Contains(inds, NaryInd{0, {0, 1}, 0, {1, 0}}));
}

/// Brute-force validity over all arity-2 candidates, as an oracle.
TEST(NaryInd, MatchesBruteForceAtArityTwo) {
  Result<Relation> r = MakeRelation(
      Schema({"a", "b", "c"}),
      {{"1", "1", "2"}, {"2", "2", "1"}, {"1", "2", "1"}, {"2", "1", "2"}});
  ASSERT_TRUE(r.ok());
  const std::vector<const Relation*> rels = {&r.value()};
  NaryIndOptions options;
  options.max_arity = 2;
  const std::vector<NaryInd> found = DiscoverNaryInds(rels, options);

  for (AttributeId a1 = 0; a1 < 3; ++a1) {
    for (AttributeId a2 = 0; a2 < 3; ++a2) {
      if (a1 >= a2) continue;  // discovery uses increasing lhs sequences
      for (AttributeId b1 = 0; b1 < 3; ++b1) {
        for (AttributeId b2 = 0; b2 < 3; ++b2) {
          if (b1 == b2) continue;
          const NaryInd candidate{0, {a1, a2}, 0, {b1, b2}};
          if (candidate.lhs_attributes == candidate.rhs_attributes) continue;
          EXPECT_EQ(Contains(found, candidate), IndHolds(rels, candidate))
              << IndToString(candidate, rels, {"r"});
        }
      }
    }
  }
}

}  // namespace
}  // namespace depminer
