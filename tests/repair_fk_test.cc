// Tests for the FD repair module and foreign-key suggestion.

#include <gtest/gtest.h>

#include "fd/repair.h"
#include "fd/satisfaction.h"
#include "ind/foreign_keys.h"
#include "partition/partition.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::RandomRelation;

TEST(Repair, HoldingFdNeedsNoRemovals) {
  Result<Relation> r = MakeRelation({{"d1", "m1"}, {"d1", "m1"}, {"d2", "m2"}});
  ASSERT_TRUE(r.ok());
  const FdRepair repair = ComputeRepair(r.value(), Fd("A", 'B'));
  EXPECT_TRUE(repair.tuples_to_remove.empty());
  EXPECT_DOUBLE_EQ(repair.g3, 0.0);
}

TEST(Repair, RemovesMinorityWitnesses) {
  // dep d1 maps to m1 three times and to m2 once: remove the one outlier.
  Result<Relation> r = MakeRelation({
      {"d1", "m1"}, {"d1", "m1"}, {"d1", "m2"}, {"d1", "m1"}, {"d2", "m3"},
  });
  ASSERT_TRUE(r.ok());
  const FdRepair repair = ComputeRepair(r.value(), Fd("A", 'B'));
  EXPECT_EQ(repair.tuples_to_remove, (std::vector<TupleId>{2}));
  EXPECT_DOUBLE_EQ(repair.g3, 0.2);
  EXPECT_DOUBLE_EQ(repair.g3,
                   G3Error(r.value(), repair.fd.lhs, repair.fd.rhs));

  Result<Relation> repaired =
      ApplyRepair(r.value(), repair.tuples_to_remove);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value().num_tuples(), 4u);
  EXPECT_TRUE(Holds(repaired.value(), Fd("A", 'B')));
}

TEST(Repair, MatchesG3OnRandomRelations) {
  for (uint64_t seed : {3ull, 11ull, 29ull}) {
    const Relation r = RandomRelation(4, 60, 3, seed);
    for (AttributeId lhs = 0; lhs < 4; ++lhs) {
      for (AttributeId rhs = 0; rhs < 4; ++rhs) {
        if (lhs == rhs) continue;
        const FunctionalDependency fd{AttributeSet::Single(lhs), rhs};
        const FdRepair repair = ComputeRepair(r, fd);
        EXPECT_DOUBLE_EQ(repair.g3, G3Error(r, fd.lhs, fd.rhs));
        Result<Relation> repaired = ApplyRepair(r, repair.tuples_to_remove);
        ASSERT_TRUE(repaired.ok());
        EXPECT_TRUE(Holds(repaired.value(), fd))
            << fd.ToString() << " seed " << seed;
      }
    }
  }
}

TEST(Repair, ApplyRejectsBadIds) {
  Result<Relation> r = MakeRelation({{"a"}});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(ApplyRepair(r.value(), {5}).ok());
}

TEST(ForeignKeys, FlagsIndIntoCandidateKey) {
  Result<Relation> customers = MakeRelation(
      Schema({"id", "name"}),
      {{"c1", "ann"}, {"c2", "bob"}, {"c3", "eve"}});
  Result<Relation> orders = MakeRelation(
      Schema({"order", "customer_id"}),
      {{"o1", "c1"}, {"o2", "c1"}, {"o3", "c3"}});
  ASSERT_TRUE(customers.ok() && orders.ok());
  const std::vector<const Relation*> rels = {&customers.value(),
                                             &orders.value()};
  const std::vector<ForeignKeyCandidate> fks = SuggestForeignKeys(rels);

  bool found = false;
  for (const ForeignKeyCandidate& fk : fks) {
    if (fk.ind == NaryInd{1, {1}, 0, {0}}) {  // orders.customer_id → customers.id
      found = true;
      EXPECT_TRUE(fk.rhs_is_minimal_key);
    }
    // Every suggestion's rhs projection is duplicate-free by contract.
    AttributeSet rhs_set;
    for (AttributeId a : fk.ind.rhs_attributes) rhs_set.Add(a);
    const Partition rhs_partition =
        Partition::ForSet(*rels[fk.ind.rhs_relation], rhs_set);
    for (const EquivalenceClass& c : rhs_partition.classes()) {
      EXPECT_LE(c.size(), 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ForeignKeys, NonUniqueReferenceIsNotSuggested) {
  // orders.customer ⊆ payments.customer holds, but payments.customer has
  // duplicates — not a key, so not a FK target.
  Result<Relation> payments = MakeRelation(
      Schema({"customer", "amount"}),
      {{"c1", "10"}, {"c1", "20"}, {"c2", "30"}});
  Result<Relation> orders =
      MakeRelation(Schema({"ord", "customer"}), {{"o1", "c1"}});
  ASSERT_TRUE(payments.ok() && orders.ok());
  const std::vector<const Relation*> rels = {&payments.value(),
                                             &orders.value()};
  for (const ForeignKeyCandidate& fk : SuggestForeignKeys(rels)) {
    EXPECT_FALSE(fk.ind.rhs_relation == 0 &&
                 fk.ind.rhs_attributes == std::vector<AttributeId>{0})
        << "suggested a non-unique reference";
  }
}

TEST(ForeignKeys, SelfReferencesCanBeSkipped) {
  Result<Relation> r = MakeRelation(
      Schema({"id", "parent"}),
      {{"1", "1"}, {"2", "1"}, {"3", "2"}});
  ASSERT_TRUE(r.ok());
  const std::vector<const Relation*> rels = {&r.value()};
  const std::vector<ForeignKeyCandidate> with_self = SuggestForeignKeys(rels);
  bool parent_fk = false;
  for (const ForeignKeyCandidate& fk : with_self) {
    if (fk.ind == NaryInd{0, {1}, 0, {0}}) parent_fk = true;  // parent → id
  }
  EXPECT_TRUE(parent_fk);

  ForeignKeyOptions options;
  options.skip_self_references = true;
  EXPECT_TRUE(SuggestForeignKeys(rels, options).empty());
}

}  // namespace
}  // namespace depminer
