#include "verify/generator.h"
#include "verify/harness.h"
#include "verify/oracle.h"
#include "verify/shrinker.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>

#include "common/log.h"
#include "core/dep_miner.h"
#include "fd/satisfaction.h"
#include "relation/csv.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

GeneratedCase MustGenerate(uint64_t seed) {
  Result<GeneratedCase> c = GenerateAdversarialCase(seed);
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  return std::move(c).value();
}

TEST(Generator, DeterministicPerSeed) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const GeneratedCase a = MustGenerate(seed);
    const GeneratedCase b = MustGenerate(seed);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(CsvToString(a.relation), CsvToString(b.relation))
        << "seed " << seed << " is not reproducible";
  }
}

TEST(Generator, OneFullCycleCoversEveryShape) {
  std::set<std::string> labels;
  for (uint64_t seed = 0; seed < AdversarialShapeCount(); ++seed) {
    labels.insert(MustGenerate(seed).label);
  }
  EXPECT_EQ(labels.size(), AdversarialShapeCount());
  EXPECT_TRUE(labels.count("empty"));
  EXPECT_TRUE(labels.count("single-row"));
  EXPECT_TRUE(labels.count("wide-schema"));
}

TEST(Generator, ShapesHaveTheirAdvertisedStructure) {
  // The shape is seed % AdversarialShapeCount(), in declaration order.
  const size_t n = AdversarialShapeCount();
  EXPECT_EQ(MustGenerate(0).relation.num_tuples(), 0u);    // empty
  EXPECT_EQ(MustGenerate(1).relation.num_tuples(), 1u);    // single-row
  EXPECT_GT(MustGenerate(6 + n).relation.num_attributes(),
            64u);                                          // wide-schema
  const GeneratedCase dup = MustGenerate(4);               // duplicate-rows
  bool found_duplicate = false;
  const Relation& r = dup.relation;
  for (TupleId i = 0; i < r.num_tuples() && !found_duplicate; ++i) {
    for (TupleId j = i + 1; j < r.num_tuples(); ++j) {
      if (r.AgreeSetOf(i, j) == r.universe()) {
        found_duplicate = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_duplicate);
}

TEST(Oracle, CleanOnPaperExample) {
  const OracleReport report = RunDifferentialOracle(PaperExampleRelation());
  EXPECT_TRUE(report.ok()) << report.ToString();
  // 3 threaded miners × 3 thread counts + 2 serial ones, ×4 for the
  // ungoverned pass plus the three tripped-context passes, plus the
  // pruning phase (every miner arity-capped + every miner through the
  // forced-ε=0 entry point).
  EXPECT_EQ(report.miner_runs, 54u);
}

TEST(Oracle, CleanOnEmptyAndSingleRow) {
  for (uint64_t seed : {0ull, 1ull}) {
    const GeneratedCase c = MustGenerate(seed);
    const OracleReport report = RunDifferentialOracle(c.relation);
    EXPECT_TRUE(report.ok()) << c.label << ": " << report.ToString();
  }
}

// The harness is only as good as its checker: each corruption of a
// correct cover must be flagged with the matching kind.
class SemanticChecker : public ::testing::Test {
 protected:
  void SetUp() override {
    relation_ = PaperExampleRelation();
    Result<DepMinerResult> mined = MineDependencies(relation_);
    ASSERT_TRUE(mined.ok());
    correct_ = mined.value().fds;
  }

  std::vector<CheckKind> KindsFor(const FdSet& cover,
                                  bool check_completeness) {
    OracleReport report;
    CheckCoverAgainstRelation(relation_, cover, "test", check_completeness,
                              &report);
    std::vector<CheckKind> kinds;
    for (const Divergence& d : report.divergences) kinds.push_back(d.kind);
    return kinds;
  }

  Relation relation_;
  FdSet correct_;
};

TEST_F(SemanticChecker, AcceptsTheCorrectCover) {
  EXPECT_TRUE(KindsFor(correct_, /*check_completeness=*/true).empty());
}

TEST_F(SemanticChecker, FlagsAnUnsoundFd) {
  FdSet cover = correct_;
  cover.Add(Fd("C", 'A'));  // year → empnum does not hold
  ASSERT_FALSE(Holds(relation_, Fd("C", 'A')));
  const auto kinds = KindsFor(cover, false);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], CheckKind::kUnsoundFd);
}

TEST_F(SemanticChecker, FlagsATrivialFd) {
  FdSet cover = correct_;
  cover.Add(Fd("AB", 'A'));
  const auto kinds = KindsFor(cover, false);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], CheckKind::kTrivialFd);
}

TEST_F(SemanticChecker, FlagsANonLeftReducedFd) {
  // Inflate a minimal FD's lhs with one extra attribute: the superset
  // still holds but is no longer left-reduced.
  ASSERT_FALSE(correct_.Empty());
  FunctionalDependency inflated = correct_.fds()[0];
  AttributeId extra = 0;
  while (inflated.lhs.Contains(extra) || extra == inflated.rhs) ++extra;
  ASSERT_LT(extra, relation_.num_attributes());
  inflated.lhs.Add(extra);
  ASSERT_TRUE(Holds(relation_, inflated));
  FdSet cover = correct_;
  cover.Add(inflated);
  const auto kinds = KindsFor(cover, false);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], CheckKind::kNotLeftReduced);
}

TEST_F(SemanticChecker, FlagsAMissedFd) {
  // Drop one FD the rest of the cover does not already imply (the full
  // set of minimal FDs can be redundant as a cover — A→B, B→C, A→C are
  // all minimal, yet any two imply the third): the exhaustive oracle
  // must notice the loss.
  ASSERT_FALSE(correct_.Empty());
  bool dropped_one = false;
  for (size_t drop = 0; drop < correct_.fds().size(); ++drop) {
    FdSet pruned(correct_.num_attributes());
    for (size_t i = 0; i < correct_.fds().size(); ++i) {
      if (i != drop) pruned.Add(correct_.fds()[i]);
    }
    if (pruned.Implies(correct_.fds()[drop])) continue;
    dropped_one = true;
    const auto kinds = KindsFor(pruned, /*check_completeness=*/true);
    ASSERT_FALSE(kinds.empty());
    for (CheckKind k : kinds) EXPECT_EQ(k, CheckKind::kMissedFd);
    break;
  }
  ASSERT_TRUE(dropped_one)
      << "every FD of the paper-example cover is implied by the others";
}

TEST(Shrinker, RejectsANonFailingInput) {
  const Relation r = RandomRelation(3, 10, 3, 1);
  Result<ShrinkOutcome> shrunk =
      ShrinkFailingRelation(r, [](const Relation&) { return false; });
  ASSERT_FALSE(shrunk.ok());
  EXPECT_EQ(shrunk.status().code(), StatusCode::kInvalidArgument);
}

TEST(Shrinker, ReachesAOneMinimalRelation) {
  // Failure predicate: "at least 2 rows and at least 2 columns". The
  // 1-minimal failing relations are exactly the 2×2 ones.
  const Relation r = RandomRelation(5, 12, 4, 7);
  const auto fails = [](const Relation& c) {
    return c.num_tuples() >= 2 && c.num_attributes() >= 2;
  };
  Result<ShrinkOutcome> shrunk = ShrinkFailingRelation(r, fails);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_EQ(shrunk.value().relation.num_tuples(), 2u);
  EXPECT_EQ(shrunk.value().relation.num_attributes(), 2u);
  EXPECT_EQ(shrunk.value().rows_removed, 10u);
  EXPECT_EQ(shrunk.value().columns_removed, 3u);
}

TEST(Shrinker, RespectsTheProbeBudget) {
  const Relation r = RandomRelation(4, 30, 4, 3);
  ShrinkOptions options;
  options.max_probes = 5;
  Result<ShrinkOutcome> shrunk = ShrinkFailingRelation(
      r, [](const Relation& c) { return c.num_tuples() >= 1; }, options);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_LE(shrunk.value().probes, 5u);
  // Budget exhausted mid-descent: the best-so-far relation still fails.
  EXPECT_GE(shrunk.value().relation.num_tuples(), 1u);
}

TEST(Harness, CleanSweepIsDeterministic) {
  FuzzOptions options;
  options.start_seed = 1;
  options.iterations = 20;
  options.repro_dir.clear();  // no artifacts from a test
  options.log_every = 0;
  Result<FuzzResult> first = RunFuzzHarness(options);
  Result<FuzzResult> second = RunFuzzHarness(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first.value().ok()) << "failing seeds in 1..20";
  EXPECT_EQ(first.value().cases_run, 20u);
  EXPECT_EQ(first.value().miner_runs, second.value().miner_runs);
}

TEST(Harness, LogsProgress) {
  FuzzOptions options;
  options.start_seed = 1;
  options.iterations = 10;
  options.repro_dir.clear();
  options.log_every = 5;
  // The harness emits through the structured logger; capture its sink.
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  SetLogSink(sink);
  Result<FuzzResult> run = RunFuzzHarness(options);
  SetLogSink(nullptr);
  ASSERT_TRUE(run.ok());
  std::rewind(sink);
  std::string log;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), sink)) > 0) {
    log.append(buf, n);
  }
  std::fclose(sink);
  EXPECT_NE(log.find("5/10"), std::string::npos);
  EXPECT_NE(log.find("10/10"), std::string::npos);
}

TEST(Harness, UnwritableReproDirSurfacesAsIoError) {
  // Force a divergence so the harness actually writes: a generator seed
  // is not needed — corrupting the oracle options is not possible, so
  // instead verify the write path directly by pointing the repro dir at
  // an impossible location and checking a clean sweep never touches it.
  FuzzOptions options;
  options.start_seed = 1;
  options.iterations = 3;
  options.repro_dir = "/nonexistent-root/depminer-fuzz";
  options.log_every = 0;
  Result<FuzzResult> run = RunFuzzHarness(options);
  // Seeds 1..3 are clean, so no write is attempted and the run succeeds;
  // the directory must not have been created eagerly.
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(std::filesystem::exists("/nonexistent-root"));
}

}  // namespace
}  // namespace depminer
