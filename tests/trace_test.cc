#include "common/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dep_miner.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::RandomRelation;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Everything except the PhaseTimer accumulation tests needs the library
// itself instrumented; in a -DDEPMINER_TRACING=OFF build Start() is a
// no-op and there is nothing to observe.
#if DEPMINER_TRACING_ENABLED

/// Runs Dep-Miner on a small random relation under a fresh session and
/// returns the stopped session through `session`.
void MineUnderSession(TraceSession& session, size_t num_threads) {
  const Relation r = RandomRelation(6, 200, 4, /*seed=*/7);
  session.Start();
  DepMinerOptions options;
  options.num_threads = num_threads;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  session.Stop();
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
}

TEST(TraceSession, MineEmitsPhaseSpansOnTwoThreads) {
  TraceSession session;
  MineUnderSession(session, /*num_threads=*/2);

  ASSERT_FALSE(session.events().empty());
  std::set<std::string> names;
  for (const TraceEvent& e : session.events()) {
    names.insert(e.name);
    EXPECT_GE(e.start_ns, 0) << e.name;
    EXPECT_GE(e.dur_ns, 0) << e.name;
  }
  // Every pipeline phase of Figure 1 shows up.
  EXPECT_TRUE(names.count("phase/strip"));
  EXPECT_TRUE(names.count("phase/agree"));
  EXPECT_TRUE(names.count("phase/cmax"));
  EXPECT_TRUE(names.count("phase/lhs"));
  EXPECT_TRUE(names.count("phase/armstrong"));
  // And the finer-grained stage spans beneath them.
  EXPECT_TRUE(names.count("agree/couples"));
  EXPECT_TRUE(names.count("lhs/attribute"));
  EXPECT_TRUE(names.count("pool/lane"));
}

TEST(TraceSession, SpansRecordDistinctThreadIds) {
  // Deterministic multi-thread check (a pooled mine run may legitimately
  // drain all work on one lane): every thread gets its own buffer, so
  // spans from two std::threads must carry two distinct tids.
  TraceSession session;
  session.Start();
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([] { DEPMINER_TRACE_SPAN(span, "test/thread"); });
  }
  for (std::thread& w : workers) w.join();
  session.Stop();

  std::set<uint32_t> tids;
  for (const TraceEvent& e : session.events()) tids.insert(e.tid);
  EXPECT_EQ(session.events().size(), 2u);
  EXPECT_EQ(tids.size(), 2u);
}

TEST(TraceSession, SpansNestProperlyPerThread) {
  TraceSession session;
  MineUnderSession(session, /*num_threads=*/2);

  // Within a thread, spans must be either disjoint or fully nested, and a
  // contained span must sit at a strictly greater depth — the invariant
  // chrome://tracing relies on to stack complete events.
  const std::vector<TraceEvent>& events = session.events();
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      const TraceEvent& a = events[i];
      const TraceEvent& b = events[j];
      if (a.tid != b.tid) continue;
      const int64_t a_end = a.start_ns + a.dur_ns;
      const int64_t b_end = b.start_ns + b.dur_ns;
      const bool partial_overlap =
          a.start_ns < b.start_ns && b.start_ns < a_end && a_end < b_end;
      EXPECT_FALSE(partial_overlap)
          << a.name << " [" << a.start_ns << "," << a_end << ") and "
          << b.name << " [" << b.start_ns << "," << b_end
          << ") partially overlap on tid " << a.tid;
      // Strict containment implies deeper nesting.
      if (a.start_ns < b.start_ns && b_end < a_end) {
        EXPECT_GT(b.depth, a.depth)
            << b.name << " inside " << a.name << " on tid " << a.tid;
      }
    }
  }
}

TEST(TraceSession, PhaseDurationsSumBelowWallClock) {
  TraceSession session;
  MineUnderSession(session, /*num_threads=*/2);

  int64_t phase_ns = 0;
  for (const TraceEvent& e : session.events()) {
    if (std::string(e.name).rfind("phase/", 0) == 0) phase_ns += e.dur_ns;
  }
  const double phase_seconds = static_cast<double>(phase_ns) * 1e-9;
  EXPECT_GT(phase_seconds, 0.0);
  // Phases are sequential top-level spans; their sum cannot exceed the
  // session wall clock (small tolerance for clock granularity).
  EXPECT_LE(phase_seconds, session.wall_seconds() * 1.05 + 1e-3);
}

TEST(TraceSession, MineRecordsPipelineCounters) {
  TraceSession session;
  MineUnderSession(session, /*num_threads=*/2);

  const auto& counters = session.counters();
  EXPECT_GT(counters.at("agree.couples"), 0u);
  EXPECT_GT(counters.at("agree.sets"), 0u);
  EXPECT_GT(counters.at("lhs.transversals"), 0u);
  EXPECT_GT(counters.at("pool.loops"), 0u);
  const auto& gauges = session.gauges();
  EXPECT_GT(gauges.at("agree.working_bytes"), 0u);
}

// ---------------------------------------------------------------------
// Chrome trace JSON output.

/// Minimal JSON well-formedness scan: brace/bracket balance outside of
/// strings, with escape handling. Not a parser, but catches truncation,
/// unbalanced structure and unescaped quotes.
::testing::AssertionResult JsonBalanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return ::testing::AssertionFailure() << "underflow";
    }
  }
  if (in_string) return ::testing::AssertionFailure() << "unclosed string";
  if (depth != 0) {
    return ::testing::AssertionFailure() << "unbalanced depth " << depth;
  }
  return ::testing::AssertionSuccess();
}

TEST(TraceSession, WriteChromeTraceProducesWellFormedJson) {
  TraceSession session;
  MineUnderSession(session, /*num_threads=*/2);

  const std::string path = ::testing::TempDir() + "depminer_trace_test.json";
  const Status status = session.WriteChromeTrace(path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(path.c_str());

  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);
  EXPECT_NE(json.find("phase/agree"), std::string::npos);
  EXPECT_NE(json.find("agree.couples"), std::string::npos);
}

TEST(TraceSession, WriteChromeTraceReportsIoError) {
  TraceSession session;
  session.Start();
  session.Stop();
  const Status status =
      session.WriteChromeTrace("/nonexistent-dir/trace.json");
  EXPECT_FALSE(status.ok());
}

// ---------------------------------------------------------------------
// Counter / gauge merge semantics.

TEST(TraceSession, CountersSumAcrossThreads) {
  TraceSession session;
  session.Start();
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        DEPMINER_TRACE_COUNTER("test.adds", 2);
      }
      DEPMINER_TRACE_GAUGE_MAX("test.high_water",
                               static_cast<uint64_t>(10 * (t + 1)));
    });
  }
  for (std::thread& w : workers) w.join();
  session.Stop();

  EXPECT_EQ(session.counters().at("test.adds"),
            static_cast<uint64_t>(2 * kThreads * kAddsPerThread));
  // Gauges keep the maximum across threads, not the sum.
  EXPECT_EQ(session.gauges().at("test.high_water"), 10u * kThreads);
}

TEST(TraceSession, GaugeKeepsMaximumWithinThread) {
  TraceSession session;
  session.Start();
  DEPMINER_TRACE_GAUGE_MAX("test.gauge", 5);
  DEPMINER_TRACE_GAUGE_MAX("test.gauge", 17);
  DEPMINER_TRACE_GAUGE_MAX("test.gauge", 3);
  session.Stop();
  EXPECT_EQ(session.gauges().at("test.gauge"), 17u);
}

// ---------------------------------------------------------------------
// Inactive / lifecycle behavior.

TEST(TraceSession, NoSessionMeansNothingRecorded) {
  ASSERT_EQ(TraceSession::Current(), nullptr);
  {
    DEPMINER_TRACE_SPAN(span, "orphan/span");
    span.SetValue(42);
    DEPMINER_TRACE_COUNTER("orphan.counter", 1);
    DEPMINER_TRACE_GAUGE_MAX("orphan.gauge", 1);
  }
  // A session started afterwards sees none of it.
  TraceSession session;
  session.Start();
  session.Stop();
  EXPECT_TRUE(session.events().empty());
  EXPECT_TRUE(session.counters().empty());
  EXPECT_TRUE(session.gauges().empty());
}

TEST(TraceSession, SpanOpenAcrossStopIsDroppedNotCorrupted) {
  TraceSession session;
  session.Start();
  {
    DEPMINER_TRACE_SPAN(outer, "lifecycle/closed");
  }
  auto straddler = std::make_unique<Span>("lifecycle/straddler");
  session.Stop();
  straddler.reset();  // closes after the session stopped

  ASSERT_EQ(session.events().size(), 1u);
  EXPECT_STREQ(session.events()[0].name, "lifecycle/closed");
}

TEST(TraceSession, RestartResetsCollectedData) {
  TraceSession session;
  session.Start();
  DEPMINER_TRACE_COUNTER("test.first_run", 1);
  session.Stop();
  EXPECT_EQ(session.counters().count("test.first_run"), 1u);

  session.Start();
  DEPMINER_TRACE_COUNTER("test.second_run", 1);
  session.Stop();
  EXPECT_EQ(session.counters().count("test.first_run"), 0u);
  EXPECT_EQ(session.counters().at("test.second_run"), 1u);
}

TEST(TraceSession, StopIsIdempotent) {
  TraceSession session;
  session.Start();
  DEPMINER_TRACE_COUNTER("test.once", 1);
  session.Stop();
  session.Stop();
  EXPECT_EQ(session.counters().at("test.once"), 1u);
}

#endif  // DEPMINER_TRACING_ENABLED

// ---------------------------------------------------------------------
// PhaseTimer: accumulation semantics (the Stopwatch double-counting
// regression this replaces).

TEST(PhaseTimer, SequentialTimersAccumulateIntoSameStat) {
  double seconds = 0.0;
  {
    PhaseTimer t("phase/test", &seconds);
    SleepMs(10);
  }
  const double after_first = seconds;
  EXPECT_GE(after_first, 0.005);
  {
    PhaseTimer t("phase/test", &seconds);
    SleepMs(10);
  }
  // Second timer adds to — never overwrites — the accumulated stat.
  EXPECT_GE(seconds, after_first + 0.005);
}

TEST(PhaseTimer, StopIsIdempotentAndDestructorAddsNothingAfterStop) {
  double seconds = 0.0;
  double committed = 0.0;
  {
    PhaseTimer t("phase/test", &seconds);
    SleepMs(5);
    t.Stop();
    committed = seconds;
    EXPECT_GT(committed, 0.0);
    t.Stop();
    EXPECT_EQ(seconds, committed);
    SleepMs(5);  // elapses after Stop(); must not be charged at destruction
  }
  EXPECT_EQ(seconds, committed);  // only the pre-Stop interval counted
}

#if DEPMINER_TRACING_ENABLED

TEST(PhaseTimer, EmitsSpanIntoActiveSession) {
  TraceSession session;
  session.Start();
  double seconds = 0.0;
  {
    PhaseTimer t("phase/timer_span", &seconds);
    SleepMs(2);
  }
  session.Stop();
  ASSERT_EQ(session.events().size(), 1u);
  EXPECT_STREQ(session.events()[0].name, "phase/timer_span");
  EXPECT_GT(session.events()[0].dur_ns, 0);
  EXPECT_GT(seconds, 0.0);
}

// ---------------------------------------------------------------------
// Metrics summary.

TEST(TraceSession, MetricsSummaryListsPhasesCountersAndGauges) {
  TraceSession session;
  MineUnderSession(session, /*num_threads=*/2);

  const std::string summary = session.MetricsSummary();
  EXPECT_NE(summary.find("wall clock"), std::string::npos);
  EXPECT_NE(summary.find("-- phases"), std::string::npos);
  EXPECT_NE(summary.find("phase/agree"), std::string::npos);
  EXPECT_NE(summary.find("phases total"), std::string::npos);
  EXPECT_NE(summary.find("-- spans"), std::string::npos);
  EXPECT_NE(summary.find("-- counters"), std::string::npos);
  EXPECT_NE(summary.find("agree.couples"), std::string::npos);
  EXPECT_NE(summary.find("-- gauges (max)"), std::string::npos);
  EXPECT_NE(summary.find("agree.working_bytes"), std::string::npos);
}

TEST(TraceSession, EmptySessionSummaryIsJustWallClock) {
  TraceSession session;
  session.Start();
  session.Stop();
  const std::string summary = session.MetricsSummary();
  EXPECT_NE(summary.find("wall clock"), std::string::npos);
  EXPECT_EQ(summary.find("-- phases"), std::string::npos);
  EXPECT_EQ(summary.find("-- counters"), std::string::npos);
}

// ---------------------------------------------------------------------
// Span payloads.

TEST(Span, SetValueSurfacesAsEventArg) {
  TraceSession session;
  session.Start();
  {
    DEPMINER_TRACE_SPAN(span, "test/payload");
    span.SetValue(123);
  }
  {
    DEPMINER_TRACE_SPAN(span, "test/bare");
  }
  session.Stop();
  ASSERT_EQ(session.events().size(), 2u);
  const TraceEvent& with_arg = session.events()[0].has_arg
                                   ? session.events()[0]
                                   : session.events()[1];
  const TraceEvent& bare = session.events()[0].has_arg ? session.events()[1]
                                                       : session.events()[0];
  EXPECT_STREQ(with_arg.name, "test/payload");
  EXPECT_EQ(with_arg.arg, 123u);
  EXPECT_STREQ(bare.name, "test/bare");
  EXPECT_FALSE(bare.has_arg);
}

#endif  // DEPMINER_TRACING_ENABLED

}  // namespace
}  // namespace depminer
