// Larger-scale differential stress tests: beyond the oracle-sized sweeps,
// these cross-check the production algorithms against each other on
// relations too big for exhaustive discovery, across the generator's
// regimes (uniform, correlated, skewed, fixed-domain, embedded FDs).

#include <gtest/gtest.h>

#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "datagen/embedded_fd.h"
#include "datagen/synthetic.h"
#include "fastfds/fastfds.h"
#include "fd/satisfaction.h"
#include "tane/tane.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;

struct StressCase {
  size_t attrs;
  size_t tuples;
  double rate;
  double zipf;
  size_t fixed_domain;
  uint64_t seed;
};

class StressSweep : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressSweep, AllProductionAlgorithmsAgree) {
  const StressCase c = GetParam();
  SyntheticConfig config;
  config.num_attributes = c.attrs;
  config.num_tuples = c.tuples;
  config.identical_rate = c.rate;
  config.zipf_exponent = c.zipf;
  config.fixed_domain = c.fixed_domain;
  config.seed = c.seed;
  Result<Relation> data = GenerateSynthetic(config);
  ASSERT_TRUE(data.ok());
  const Relation& r = data.value();

  DepMinerOptions couples;
  couples.build_armstrong = true;
  Result<DepMinerResult> dm = MineDependencies(r, couples);
  ASSERT_TRUE(dm.ok());

  DepMinerOptions ids;
  ids.agree_set_algorithm = AgreeSetAlgorithm::kIdentifiers;
  ids.build_armstrong = false;
  Result<DepMinerResult> dm2 = MineDependencies(r, ids);
  ASSERT_TRUE(dm2.ok());

  Result<TaneResult> tane = TaneDiscover(r);
  ASSERT_TRUE(tane.ok());
  Result<FastFdsResult> fast = FastFdsDiscover(r);
  ASSERT_TRUE(fast.ok());

  EXPECT_EQ(dm.value().fds.fds(), dm2.value().fds.fds());
  EXPECT_EQ(dm.value().fds.fds(), tane.value().fds.fds());
  EXPECT_EQ(dm.value().fds.fds(), fast.value().fds.fds());

  // Spot-check 25 FDs hold and are minimal.
  size_t checked = 0;
  for (const FunctionalDependency& fd : dm.value().fds.fds()) {
    if (checked++ >= 25) break;
    EXPECT_TRUE(Holds(r, fd)) << fd.ToString();
    EXPECT_TRUE(IsMinimalFd(r, fd)) << fd.ToString();
  }

  // Armstrong relation (when it exists) verifies and re-mines equal.
  if (dm.value().armstrong.has_value()) {
    EXPECT_TRUE(IsArmstrongFor(*dm.value().armstrong, dm.value().all_max_sets));
    Result<DepMinerResult> remined = MineDependencies(*dm.value().armstrong);
    ASSERT_TRUE(remined.ok());
    EXPECT_EQ(remined.value().fds.fds(), dm.value().fds.fds());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, StressSweep,
    ::testing::Values(
        StressCase{12, 2000, 0.0, 0.0, 0, 101},   // uniform, wide
        StressCase{12, 2000, 0.3, 0.0, 0, 102},   // paper c=30%
        StressCase{12, 2000, 0.5, 0.0, 0, 103},   // paper c=50%
        StressCase{10, 3000, 0.2, 1.1, 0, 104},   // Zipf-skewed
        StressCase{10, 3000, 0.0, 0.0, 40, 105},  // tiny fixed domain
        StressCase{16, 1500, 0.4, 0.0, 0, 106},   // wider schema
        StressCase{8, 5000, 0.6, 0.0, 0, 107},    // tall and correlated
        StressCase{14, 1000, 0.0, 0.8, 200, 108}  // skew + fixed domain
        ));

TEST(StressEmbedded, PlantedFdsSurviveFullPipeline) {
  EmbeddedFdConfig config;
  config.num_attributes = 10;
  config.num_tuples = 2000;
  config.fds = {Fd("AB", 'C'), Fd("C", 'D'), Fd("E", 'F'), Fd("FG", 'H')};
  config.domain_size = 60;
  config.seed = 424242;
  Result<Relation> data = GenerateWithEmbeddedFds(config);
  ASSERT_TRUE(data.ok());
  Result<DepMinerResult> mined = MineDependencies(data.value());
  ASSERT_TRUE(mined.ok());
  for (const FunctionalDependency& fd : config.fds) {
    EXPECT_TRUE(mined.value().fds.Implies(fd)) << fd.ToString();
  }
  Result<TaneResult> tane = TaneDiscover(data.value());
  ASSERT_TRUE(tane.ok());
  EXPECT_EQ(tane.value().fds.fds(), mined.value().fds.fds());
}

}  // namespace
}  // namespace depminer
