// Randomized property tests over FD-set theory: closure laws, minimal
// covers, candidate keys, projections and the closed-set lattice, on
// pseudo-random dependency sets (not tied to any relation instance).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fd/closed_sets.h"
#include "fd/fd_set.h"
#include "fd/keys.h"
#include "fd/projection.h"
#include "test_util.h"

namespace depminer {
namespace {

/// A random FD set over n attributes: `count` dependencies with lhs of
/// 1-3 attributes.
FdSet RandomFdSet(size_t n, size_t count, uint64_t seed) {
  Rng rng(seed);
  FdSet fds(n);
  for (size_t i = 0; i < count; ++i) {
    AttributeSet lhs;
    const size_t width = 1 + rng.Below(3);
    for (size_t k = 0; k < width; ++k) {
      lhs.Add(static_cast<AttributeId>(rng.Below(n)));
    }
    const AttributeId rhs = static_cast<AttributeId>(rng.Below(n));
    if (lhs.Contains(rhs)) continue;  // skip trivial draws
    fds.Add(lhs, rhs);
  }
  fds.Normalize();
  return fds;
}

AttributeSet RandomSubset(size_t n, Rng* rng) {
  AttributeSet s;
  for (AttributeId a = 0; a < n; ++a) {
    if (rng->Below(2) == 0) s.Add(a);
  }
  return s;
}

class FdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdPropertyTest, ClosureIsAClosureOperator) {
  const uint64_t seed = GetParam();
  const size_t n = 6;
  const FdSet fds = RandomFdSet(n, 8, seed);
  Rng rng(seed * 31 + 1);
  for (int i = 0; i < 20; ++i) {
    const AttributeSet x = RandomSubset(n, &rng);
    const AttributeSet y = RandomSubset(n, &rng);
    const AttributeSet cx = fds.Closure(x);
    // Extensive, idempotent, monotone.
    EXPECT_TRUE(x.IsSubsetOf(cx));
    EXPECT_EQ(fds.Closure(cx), cx);
    if (x.IsSubsetOf(y)) {
      EXPECT_TRUE(cx.IsSubsetOf(fds.Closure(y)));
    }
  }
}

TEST_P(FdPropertyTest, MinimalCoverIsEquivalentAndIrredundant) {
  const uint64_t seed = GetParam();
  const FdSet fds = RandomFdSet(7, 10, seed);
  const FdSet cover = fds.MinimalCover();
  EXPECT_TRUE(cover.EquivalentTo(fds));
  // No FD is redundant.
  for (size_t i = 0; i < cover.size(); ++i) {
    std::vector<FunctionalDependency> without;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != i) without.push_back(cover.fds()[j]);
    }
    EXPECT_FALSE(FdSet(7, without).Implies(cover.fds()[i]))
        << cover.fds()[i].ToString() << " is redundant";
  }
  // No lhs attribute is extraneous.
  for (const FunctionalDependency& fd : cover.fds()) {
    fd.lhs.ForEach([&](AttributeId b) {
      AttributeSet reduced = fd.lhs;
      reduced.Remove(b);
      EXPECT_FALSE(cover.Implies(reduced, fd.rhs))
          << "extraneous " << static_cast<char>('A' + b) << " in "
          << fd.ToString();
    });
  }
}

TEST_P(FdPropertyTest, CandidateKeysAreMinimalSuperkeysAndAntichain) {
  const uint64_t seed = GetParam();
  const FdSet fds = RandomFdSet(6, 7, seed);
  const std::vector<AttributeSet> keys = CandidateKeys(fds);
  ASSERT_FALSE(keys.empty());
  for (const AttributeSet& k : keys) {
    EXPECT_TRUE(IsCandidateKey(fds, k)) << k.ToString();
  }
  for (const AttributeSet& a : keys) {
    for (const AttributeSet& b : keys) {
      if (a != b) {
        EXPECT_FALSE(a.IsSubsetOf(b));
      }
    }
  }
  // Exhaustive cross-check on this small universe: every minimal superkey
  // is listed.
  for (uint32_t mask = 0; mask < (1u << 6); ++mask) {
    AttributeSet x;
    for (AttributeId a = 0; a < 6; ++a) {
      if (mask & (1u << a)) x.Add(a);
    }
    if (IsCandidateKey(fds, x)) {
      EXPECT_NE(std::find(keys.begin(), keys.end(), x), keys.end())
          << "missing key " << x.ToString();
    }
  }
}

TEST_P(FdPropertyTest, ProjectionOntoUniverseIsIdentityUpToEquivalence) {
  const uint64_t seed = GetParam();
  const FdSet fds = RandomFdSet(6, 8, seed);
  EXPECT_TRUE(ProjectFds(fds, AttributeSet::Universe(6)).EquivalentTo(fds));
}

TEST_P(FdPropertyTest, ProjectionSoundAndComplete) {
  const uint64_t seed = GetParam();
  const size_t n = 6;
  const FdSet fds = RandomFdSet(n, 8, seed);
  Rng rng(seed * 97 + 3);
  const AttributeSet x = RandomSubset(n, &rng);
  const FdSet projected = ProjectFds(fds, x);
  // Sound: every projected FD is implied by F and mentions only X.
  for (const FunctionalDependency& fd : projected.fds()) {
    EXPECT_TRUE(fds.Implies(fd));
    EXPECT_TRUE(fd.lhs.IsSubsetOf(x));
    EXPECT_TRUE(x.Contains(fd.rhs));
  }
  // Complete: for every Y ⊆ X and A ∈ X, F ⊨ Y→A iff π_X(F) ⊨ Y→A.
  const std::vector<AttributeId> members = x.Members();
  const uint32_t limit = 1u << members.size();
  for (uint32_t mask = 0; mask < limit; ++mask) {
    AttributeSet y;
    for (size_t i = 0; i < members.size(); ++i) {
      if (mask & (1u << i)) y.Add(members[i]);
    }
    x.ForEach([&](AttributeId a) {
      EXPECT_EQ(fds.Implies(y, a), projected.Implies(y, a))
          << y.ToString() << " -> " << static_cast<char>('A' + a);
    });
  }
}

TEST_P(FdPropertyTest, ClosureAgreesWithGeneratorMeet) {
  const uint64_t seed = GetParam();
  const size_t n = 6;
  const FdSet fds = RandomFdSet(n, 7, seed);
  const std::vector<AttributeSet> gen = Generators(fds);
  const AttributeSet universe = AttributeSet::Universe(n);
  Rng rng(seed * 13 + 5);
  for (int i = 0; i < 15; ++i) {
    const AttributeSet x = RandomSubset(n, &rng);
    AttributeSet meet = universe;
    for (const AttributeSet& g : gen) {
      if (x.IsSubsetOf(g)) meet = meet.Intersect(g);
    }
    EXPECT_EQ(meet, fds.Closure(x)) << x.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace depminer
