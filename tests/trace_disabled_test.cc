/// Compiled with DEPMINER_TRACING_ENABLED=0 (see tests/CMakeLists.txt)
/// against the regular, tracing-enabled library — exactly the mixed-TU
/// situation the header's design permits: one class definition in both
/// modes, only the macro expansions differ. Verifies that in a disabled
/// translation unit the DEPMINER_TRACE_* sites emit nothing, leave their
/// arguments unevaluated, and that PhaseTimer still times phases.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <type_traits>

#include "common/progress.h"

#if DEPMINER_TRACING_ENABLED
#error "trace_disabled_test must compile with DEPMINER_TRACING_ENABLED=0"
#endif

namespace depminer {
namespace {

uint64_t g_side_effects = 0;

uint64_t CountSideEffect() {
  ++g_side_effects;
  return 1;
}

TEST(TraceDisabled, MacrosEmitNothingIntoAnActiveSession) {
  TraceSession session;
  session.Start();
  {
    DEPMINER_TRACE_SPAN(span, "disabled/span");
    span.SetValue(42);  // NoopSpan::SetValue compiles and does nothing
    DEPMINER_TRACE_COUNTER("disabled.counter", 7);
    DEPMINER_TRACE_GAUGE_MAX("disabled.gauge", 7);
  }
  session.Stop();
  EXPECT_TRUE(session.events().empty());
  EXPECT_TRUE(session.counters().empty());
  EXPECT_TRUE(session.gauges().empty());
}

TEST(TraceDisabled, MacroArgumentsAreNotEvaluated) {
  TraceSession session;
  session.Start();
  g_side_effects = 0;
  DEPMINER_TRACE_COUNTER("disabled.counter", CountSideEffect());
  DEPMINER_TRACE_GAUGE_MAX("disabled.gauge", CountSideEffect());
  session.Stop();
  EXPECT_EQ(g_side_effects, 0u);
}

TEST(TraceDisabled, PhaseTimerStillTimes) {
  // Phase stats feed --stats output and the profile JSON regardless of the
  // tracing switch, so the timer keeps timing; only its span is gated.
  double seconds = 0.0;
  {
    PhaseTimer t("phase/disabled", &seconds);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(seconds, 0.0);
}

TEST(TraceDisabled, SpanMacroExpandsToNoopType) {
  DEPMINER_TRACE_SPAN(span, "disabled/type_check");
  static_assert(std::is_same_v<decltype(span), NoopSpan>,
                "disabled TU must instantiate NoopSpan, not Span");
  span.SetValue(0);
}

TEST(TraceDisabled, HistogramMacrosEmitNothing) {
  TraceSession session;
  session.Start();
  g_side_effects = 0;
  DEPMINER_TRACE_HISTOGRAM("disabled_hist/all", CountSideEffect());
  {
    DEPMINER_TRACE_HIST_TIMER(timer, "disabled_probe_ns/miss");
    timer.SetName("disabled_probe_ns/hit");
  }
  session.Stop();
  EXPECT_EQ(g_side_effects, 0u);
  EXPECT_TRUE(session.histograms().empty());
}

TEST(TraceDisabled, HistTimerMacroExpandsToNoopType) {
  DEPMINER_TRACE_HIST_TIMER(timer, "disabled/type_check");
  static_assert(std::is_same_v<decltype(timer), NoopHistogramTimer>,
                "disabled TU must instantiate NoopHistogramTimer");
  timer.SetName("still/a/noop");
}

TEST(TraceDisabled, ProgressMacrosEmitNothingAndSkipArguments) {
  EnableProgressTracking(true);
  g_side_effects = 0;
  DEPMINER_PROGRESS_PHASE("disabled", "units", CountSideEffect());
  DEPMINER_PROGRESS_TICK(CountSideEffect());
  DEPMINER_PROGRESS_TOTAL(CountSideEffect());
  EXPECT_EQ(g_side_effects, 0u);
  const ProgressSnapshot snap = CurrentProgress();
  // The runtime API still works (the library is instrumented); only this
  // TU's macro sites fold away, so the phase never became "disabled".
  EXPECT_STRNE(snap.phase, "disabled");
  EnableProgressTracking(false);
}

}  // namespace
}  // namespace depminer
