#include "datagen/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/embedded_fd.h"
#include "fd/naive_discovery.h"
#include "fd/satisfaction.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;

TEST(Synthetic, ShapeMatchesConfig) {
  SyntheticConfig config;
  config.num_attributes = 7;
  config.num_tuples = 123;
  Result<Relation> r = GenerateSynthetic(config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_attributes(), 7u);
  EXPECT_EQ(r.value().num_tuples(), 123u);
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticConfig config;
  config.num_attributes = 4;
  config.num_tuples = 50;
  config.seed = 9;
  Result<Relation> a = GenerateSynthetic(config);
  Result<Relation> b = GenerateSynthetic(config);
  config.seed = 10;
  Result<Relation> c = GenerateSynthetic(config);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  bool identical_ab = true, identical_ac = true;
  for (TupleId t = 0; t < 50; ++t) {
    for (AttributeId col = 0; col < 4; ++col) {
      identical_ab &= a.value().Value(t, col) == b.value().Value(t, col);
      identical_ac &= a.value().Value(t, col) == c.value().Value(t, col);
    }
  }
  EXPECT_TRUE(identical_ab);
  EXPECT_FALSE(identical_ac);
}

TEST(Synthetic, IdenticalRateControlsPoolSize) {
  // c = 0.5, |r| = 1000: "each value is chosen between 500 possible
  // values" — so at most 500 distinct values per column, and realistically
  // close to 500.
  SyntheticConfig config;
  config.num_attributes = 3;
  config.num_tuples = 1000;
  config.identical_rate = 0.5;
  Result<Relation> r = GenerateSynthetic(config);
  ASSERT_TRUE(r.ok());
  for (AttributeId a = 0; a < 3; ++a) {
    EXPECT_LE(r.value().DistinctCount(a), 500u);
    EXPECT_GT(r.value().DistinctCount(a), 350u);  // ~500·(1−1/e) ≈ 432
  }
}

TEST(Synthetic, ZeroRateMeansWideDomain) {
  SyntheticConfig config;
  config.num_attributes = 2;
  config.num_tuples = 500;
  config.identical_rate = 0.0;
  Result<Relation> r = GenerateSynthetic(config);
  ASSERT_TRUE(r.ok());
  // Pool of |r| values: ~63% distinct expected.
  for (AttributeId a = 0; a < 2; ++a) {
    EXPECT_GT(r.value().DistinctCount(a), 250u);
  }
}

TEST(Synthetic, TinyRateClampsPoolToOne) {
  SyntheticConfig config;
  config.num_attributes = 2;
  config.num_tuples = 10;
  config.identical_rate = 0.0001;  // 0.0001 · 10 < 1 → pool of 1
  Result<Relation> r = GenerateSynthetic(config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().DistinctCount(0), 1u);
}

TEST(Synthetic, FixedDomainOverridesRate) {
  SyntheticConfig config;
  config.num_attributes = 2;
  config.num_tuples = 2000;
  config.identical_rate = 0.5;  // would give pool 1000
  config.fixed_domain = 10;
  Result<Relation> r = GenerateSynthetic(config);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value().DistinctCount(0), 10u);
  EXPECT_GE(r.value().DistinctCount(0), 8u);  // 10 values, 2000 draws
}

TEST(Synthetic, ZipfSkewConcentratesValues) {
  SyntheticConfig uniform;
  uniform.num_attributes = 1;
  uniform.num_tuples = 5000;
  uniform.identical_rate = 0.2;  // pool of 1000
  uniform.seed = 11;
  SyntheticConfig skewed = uniform;
  skewed.zipf_exponent = 1.2;
  Result<Relation> u = GenerateSynthetic(uniform);
  Result<Relation> z = GenerateSynthetic(skewed);
  ASSERT_TRUE(u.ok() && z.ok());
  auto top_frequency = [](const Relation& r) {
    std::vector<size_t> counts(r.DistinctCount(0), 0);
    for (TupleId t = 0; t < r.num_tuples(); ++t) ++counts[r.Code(t, 0)];
    return *std::max_element(counts.begin(), counts.end());
  };
  // The Zipf head value dominates; uniform draws stay near |r|/pool.
  EXPECT_GT(top_frequency(z.value()), 4 * top_frequency(u.value()));
  EXPECT_LT(z.value().DistinctCount(0), u.value().DistinctCount(0));
}

TEST(Synthetic, ZipfRejectsNegativeExponent) {
  SyntheticConfig config;
  config.zipf_exponent = -1.0;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
}

TEST(Synthetic, RejectsBadConfig) {
  SyntheticConfig config;
  config.num_attributes = 0;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config.num_attributes = 3;
  config.identical_rate = 1.5;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config.identical_rate = 0.0;
  config.num_attributes = AttributeSet::kMaxAttributes + 1;
  EXPECT_EQ(GenerateSynthetic(config).status().code(),
            StatusCode::kCapacityExceeded);
}

TEST(Synthetic, ThreadCountNeverChangesTheRelation) {
  // Columns own decoupled (seed, column) RNG streams, so parallel
  // generation must be byte-identical to serial — threads only speed it
  // up. Checked for the uniform, fixed-domain and Zipf draw paths.
  for (const double zipf : {0.0, 1.1}) {
    SyntheticConfig config;
    config.num_attributes = 16;
    config.num_tuples = 2000;
    config.identical_rate = 0.4;
    config.zipf_exponent = zipf;
    config.seed = 21;
    config.num_threads = 1;
    Result<Relation> serial = GenerateSynthetic(config);
    ASSERT_TRUE(serial.ok());
    for (const size_t threads : {size_t{2}, size_t{8}}) {
      config.num_threads = threads;
      Result<Relation> parallel = GenerateSynthetic(config);
      ASSERT_TRUE(parallel.ok());
      for (AttributeId a = 0; a < config.num_attributes; ++a) {
        ASSERT_EQ(parallel.value().Column(a), serial.value().Column(a))
            << "column " << static_cast<int>(a) << " at " << threads
            << " threads, zipf=" << zipf;
        ASSERT_EQ(parallel.value().Dictionary(a), serial.value().Dictionary(a))
            << "dictionary " << static_cast<int>(a);
      }
    }
  }
}

TEST(Synthetic, CorrelationFactorIsMonotoneInAgreeOverlap) {
  // The paper's c sets the pool to c·|r|: shrinking c shrinks the pool,
  // so more cells collide and more tuple pairs agree. Agreeing pairs per
  // column (Σ over values of C(count, 2)) must therefore decrease
  // strictly as c grows through the corpus's sweep values.
  auto agreeing_pairs = [](const Relation& r) {
    size_t total = 0;
    for (AttributeId a = 0; a < r.num_attributes(); ++a) {
      std::vector<size_t> counts(r.DistinctCount(a), 0);
      for (TupleId t = 0; t < r.num_tuples(); ++t) ++counts[r.Code(t, a)];
      for (const size_t n : counts) total += n * (n - 1) / 2;
    }
    return total;
  };
  size_t previous = 0;
  bool first = true;
  for (const double c : {0.1, 0.3, 0.7, 0.9}) {
    SyntheticConfig config;
    config.num_attributes = 5;
    config.num_tuples = 4000;
    config.identical_rate = c;
    config.seed = 33;
    Result<Relation> r = GenerateSynthetic(config);
    ASSERT_TRUE(r.ok());
    const size_t pairs = agreeing_pairs(r.value());
    if (!first) {
      EXPECT_LT(pairs, previous) << "agree overlap not monotone at c=" << c;
    }
    previous = pairs;
    first = false;
  }
}

TEST(Synthetic, MemoryBudgetVetoesGeneration) {
  // The generator charges its column store before drawing a single cell,
  // so a budget below the working set rejects the run outright...
  RunContext ctx;
  ctx.SetMemoryBudget(1024);
  SyntheticConfig config;
  config.num_attributes = 20;
  config.num_tuples = 100000;
  config.identical_rate = 0.5;
  config.run_context = &ctx;
  Result<Relation> r = GenerateSynthetic(config);
  EXPECT_EQ(r.status().code(), StatusCode::kCapacityExceeded);
  // ...and the RAII charge is released on the failure path.
  EXPECT_EQ(ctx.bytes_used(), 0u);
  EXPECT_GT(ctx.high_water_bytes(), 0u);
}

TEST(Synthetic, TripMidGenerationReturnsVerdictNotARelation) {
  // A context that trips after generation has started (here: a forced
  // deadline verdict, the same latch a wall-clock trip sets) stops every
  // lane at its next poll; generation is all-or-nothing, so the verdict
  // replaces the relation.
  RunContext ctx;
  ctx.ForceTrip(StatusCode::kDeadlineExceeded);
  SyntheticConfig config;
  config.num_attributes = 8;
  config.num_tuples = 50000;
  config.identical_rate = 0.5;
  config.num_threads = 2;
  config.run_context = &ctx;
  Result<Relation> r = GenerateSynthetic(config);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.bytes_used(), 0u);
}

TEST(Synthetic, GovernedRunReleasesItsCharge) {
  RunContext ctx;
  ctx.SetMemoryBudget(size_t{1} << 30);
  SyntheticConfig config;
  config.num_attributes = 6;
  config.num_tuples = 1000;
  config.run_context = &ctx;
  Result<Relation> r = GenerateSynthetic(config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx.bytes_used(), 0u);
  EXPECT_GE(ctx.high_water_bytes(),
            config.num_attributes * config.num_tuples * sizeof(ValueCode));
}

TEST(PaperScaleCorpus, SpecsAreBoundedNamedAndReproducible) {
  const std::vector<CorpusSpec> corpus = PaperScaleCorpus(1.0, 42);
  ASSERT_FALSE(corpus.empty());
  std::vector<std::string> names;
  for (const CorpusSpec& spec : corpus) {
    EXPECT_FALSE(spec.name.empty());
    names.push_back(spec.name);
    EXPECT_GE(spec.config.num_attributes, 10u);
    EXPECT_LE(spec.config.num_attributes, AttributeSet::kMaxAttributes);
    EXPECT_GE(spec.config.num_tuples, 64u);
    EXPECT_LE(spec.config.num_tuples, 400000u);
    EXPECT_GE(spec.config.identical_rate, 0.0);
    EXPECT_LE(spec.config.identical_rate, 1.0);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
      << "corpus names must be unique";

  // The grid is a pure function of (scale, seed)...
  const std::vector<CorpusSpec> again = PaperScaleCorpus(1.0, 42);
  ASSERT_EQ(again.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(again[i].name, corpus[i].name);
    EXPECT_EQ(again[i].config.seed, corpus[i].config.seed);
  }
  // ...and a different master seed reseeds every dataset.
  const std::vector<CorpusSpec> reseeded = PaperScaleCorpus(1.0, 43);
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_NE(reseeded[i].config.seed, corpus[i].config.seed);
  }
}

TEST(PaperScaleCorpus, ScaleStretchesTuplesWithFloor) {
  // scale=4 pushes the tuple sweep into the low millions; a tiny scale
  // floors every dataset at 64 tuples instead of degenerating.
  const std::vector<CorpusSpec> large = PaperScaleCorpus(4.0, 42);
  size_t max_tuples = 0;
  for (const CorpusSpec& spec : large) {
    max_tuples = std::max(max_tuples, spec.config.num_tuples);
  }
  EXPECT_EQ(max_tuples, 1600000u);

  const std::vector<CorpusSpec> tiny = PaperScaleCorpus(0.0000001, 42);
  for (const CorpusSpec& spec : tiny) {
    EXPECT_EQ(spec.config.num_tuples, 64u);
  }
}

TEST(EmbeddedFd, PlantedFdsHold) {
  EmbeddedFdConfig config;
  config.num_attributes = 6;
  config.num_tuples = 300;
  config.fds = {Fd("AB", 'C'), Fd("C", 'D'), Fd("", 'F')};
  config.seed = 4;
  Result<Relation> r = GenerateWithEmbeddedFds(config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const FunctionalDependency& fd : config.fds) {
    EXPECT_TRUE(Holds(r.value(), fd)) << fd.ToString();
  }
  // F is constant.
  EXPECT_EQ(r.value().DistinctCount(5), 1u);
}

TEST(EmbeddedFd, ChainedDerivation) {
  // A -> B -> C: B derived from A, C derived from B.
  EmbeddedFdConfig config;
  config.num_attributes = 3;
  config.num_tuples = 200;
  config.fds = {Fd("A", 'B'), Fd("B", 'C')};
  Result<Relation> r = GenerateWithEmbeddedFds(config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(Holds(r.value(), Fd("A", 'B')));
  EXPECT_TRUE(Holds(r.value(), Fd("B", 'C')));
  EXPECT_TRUE(Holds(r.value(), Fd("A", 'C')));  // transitivity
}

TEST(EmbeddedFd, RejectsCycles) {
  EmbeddedFdConfig config;
  config.num_attributes = 2;
  config.fds = {Fd("A", 'B'), Fd("B", 'A')};
  EXPECT_EQ(GenerateWithEmbeddedFds(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EmbeddedFd, RejectsTrivialAndDuplicateRhs) {
  EmbeddedFdConfig config;
  config.num_attributes = 3;
  config.fds = {Fd("AB", 'A')};
  EXPECT_FALSE(GenerateWithEmbeddedFds(config).ok());
  config.fds = {Fd("A", 'C'), Fd("B", 'C')};
  EXPECT_FALSE(GenerateWithEmbeddedFds(config).ok());
}

TEST(EmbeddedFd, RejectsOutOfRangeAttributes) {
  EmbeddedFdConfig config;
  config.num_attributes = 2;
  config.fds = {Fd("A", 'E')};
  EXPECT_FALSE(GenerateWithEmbeddedFds(config).ok());
}

TEST(EmbeddedFd, DiscoveredCoverImpliesPlantedFds) {
  EmbeddedFdConfig config;
  config.num_attributes = 5;
  config.num_tuples = 150;
  config.fds = {Fd("AB", 'C'), Fd("C", 'E')};
  config.seed = 77;
  Result<Relation> r = GenerateWithEmbeddedFds(config);
  ASSERT_TRUE(r.ok());
  const FdSet discovered = NaiveFdDiscovery(r.value());
  for (const FunctionalDependency& fd : config.fds) {
    EXPECT_TRUE(discovered.Implies(fd)) << fd.ToString();
  }
}

}  // namespace
}  // namespace depminer
