#include "test_util.h"

#include "common/rng.h"
#include "fd/naive_discovery.h"
#include "fd/satisfaction.h"
#include "relation/relation_builder.h"

namespace depminer::testing {

Relation PaperExampleRelation() {
  // Tuple No. | empnum depnum year depname mgr
  Result<Relation> r = MakeRelation(
      Schema({"empnum", "depnum", "year", "depname", "mgr"}),
      {
          {"1", "1", "85", "Biochemistry", "5"},
          {"1", "5", "94", "Admission", "12"},
          {"2", "2", "92", "Computer Sce", "2"},
          {"3", "2", "98", "Computer Sce", "2"},
          {"4", "3", "98", "Geophysics", "2"},
          {"5", "1", "75", "Biochemistry", "5"},
          {"6", "5", "88", "Admission", "12"},
      });
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

Relation RandomRelation(size_t num_attributes, size_t num_tuples,
                        size_t domain, uint64_t seed) {
  Rng rng(seed);
  RelationBuilder builder(Schema::Default(num_attributes));
  std::vector<ValueCode> row(num_attributes);
  for (size_t t = 0; t < num_tuples; ++t) {
    for (size_t a = 0; a < num_attributes; ++a) {
      row[a] = static_cast<ValueCode>(rng.Below(domain));
    }
    Status st = builder.AddCodedRow(row);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  Result<Relation> r = std::move(builder).Finish();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

FunctionalDependency Fd(const std::string& lhs_letters, char rhs_letter) {
  return {AttributeSet::FromLetters(lhs_letters),
          static_cast<AttributeId>(rhs_letter - 'A')};
}

std::vector<AttributeSet> Sets(const std::vector<std::string>& letters) {
  std::vector<AttributeSet> out;
  out.reserve(letters.size());
  for (const std::string& s : letters) {
    out.push_back(AttributeSet::FromLetters(s));
  }
  SortSets(&out);
  return out;
}

std::string SetsToString(const std::vector<AttributeSet>& sets) {
  std::string out;
  for (const AttributeSet& s : sets) {
    if (!out.empty()) out += ',';
    out += s.ToString();
  }
  return out;
}

bool CoverEquivalent(const FdSet& a, const FdSet& b) {
  return a.EquivalentTo(b);
}

::testing::AssertionResult IsExactMinimalFdSetOf(const Relation& relation,
                                                 const FdSet& fds) {
  for (const FunctionalDependency& fd : fds.fds()) {
    if (fd.IsTrivial()) {
      return ::testing::AssertionFailure()
             << "trivial FD reported: " << fd.ToString();
    }
    if (!Holds(relation, fd)) {
      return ::testing::AssertionFailure()
             << "reported FD does not hold: " << fd.ToString();
    }
    if (!IsMinimalFd(relation, fd)) {
      return ::testing::AssertionFailure()
             << "reported FD is not minimal: " << fd.ToString();
    }
  }
  const FdSet oracle = NaiveFdDiscovery(relation);
  // Exactness: same canonical set, element for element.
  if (oracle.fds() != fds.fds()) {
    FdSet missing(oracle.num_attributes());
    for (const FunctionalDependency& fd : oracle.fds()) {
      bool present = false;
      for (const FunctionalDependency& got : fds.fds()) {
        if (fd == got) {
          present = true;
          break;
        }
      }
      if (!present) missing.Add(fd);
    }
    return ::testing::AssertionFailure()
           << "mismatch with exhaustive oracle; missing: {"
           << missing.ToString() << "}, got " << fds.size() << " vs oracle "
           << oracle.size();
  }
  return ::testing::AssertionSuccess();
}

}  // namespace depminer::testing
