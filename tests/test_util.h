#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "fd/fd_set.h"
#include "relation/relation.h"

namespace depminer::testing {

/// The paper's running example (§3, Example 1): the employee/department
/// assignment relation with attributes A=empnum, B=depnum, C=year,
/// D=depname, E=mgr and seven tuples.
Relation PaperExampleRelation();

/// Builds a small random relation: each cell drawn from a pool of
/// `domain` values. Deterministic per seed.
Relation RandomRelation(size_t num_attributes, size_t num_tuples,
                        size_t domain, uint64_t seed);

/// Builds one FD from letter notation, e.g. Fd("BC", 'A') is BC → A.
FunctionalDependency Fd(const std::string& lhs_letters, char rhs_letter);

/// Builds a family of attribute sets from letter strings, sorted
/// canonically; "" denotes the empty set.
std::vector<AttributeSet> Sets(const std::vector<std::string>& letters);

/// Renders a family of sets as "A,BC,DE" for readable failure messages.
std::string SetsToString(const std::vector<AttributeSet>& sets);

/// True iff both FD sets imply each other (cover equivalence).
bool CoverEquivalent(const FdSet& a, const FdSet& b);

/// Asserts that `fds` is exactly the set of minimal non-trivial FDs of
/// `relation`: each holds, each is lhs-minimal, and nothing the
/// exhaustive oracle finds is missing.
::testing::AssertionResult IsExactMinimalFdSetOf(const Relation& relation,
                                                 const FdSet& fds);

}  // namespace depminer::testing
