// Tests for FdSetDiff and the memoizing SatisfactionChecker.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fd/fd_diff.h"
#include "fd/naive_discovery.h"
#include "fd/satisfaction.h"
#include "fd/satisfaction_checker.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

TEST(FdSetDiff, EquivalentCoversAreEmptyDiff) {
  FdSet a(3, {Fd("A", 'B'), Fd("B", 'C')});
  FdSet b(3, {Fd("A", 'B'), Fd("B", 'C'), Fd("A", 'C')});  // implied extra
  const FdSetDiff diff = DiffFdSets(a, b);
  EXPECT_TRUE(diff.Equivalent());
  EXPECT_EQ(diff.ToString(Schema::Default(3)), "covers are equivalent\n");
}

TEST(FdSetDiff, ReportsLostAndGained) {
  FdSet old_fds(3, {Fd("A", 'B'), Fd("B", 'C')});
  FdSet new_fds(3, {Fd("A", 'B'), Fd("C", 'B')});
  const FdSetDiff diff = DiffFdSets(old_fds, new_fds);
  ASSERT_EQ(diff.lost.size(), 1u);
  EXPECT_EQ(diff.lost[0], Fd("B", 'C'));
  ASSERT_EQ(diff.gained.size(), 1u);
  EXPECT_EQ(diff.gained[0], Fd("C", 'B'));
  const std::string text = diff.ToString(Schema::Default(3));
  EXPECT_NE(text.find("- B -> C"), std::string::npos);
  EXPECT_NE(text.find("+ C -> B"), std::string::npos);
}

TEST(FdSetDiff, DriftScenario) {
  // Mining a relation and a corrupted variant: the diff pinpoints the
  // dependency broken by the bad row.
  Result<Relation> clean = MakeRelation({
      {"d1", "alice"}, {"d1", "alice"}, {"d2", "bob"},
  });
  Result<Relation> dirty = MakeRelation({
      {"d1", "alice"}, {"d1", "eve"}, {"d2", "bob"},  // dep->mgr broken
  });
  ASSERT_TRUE(clean.ok() && dirty.ok());
  const FdSet before = NaiveFdDiscovery(clean.value());
  const FdSet after = NaiveFdDiscovery(dirty.value());
  const FdSetDiff diff = DiffFdSets(before, after);
  bool lost_dep_mgr = false;
  for (const FunctionalDependency& fd : diff.lost) {
    if (fd == Fd("A", 'B')) lost_dep_mgr = true;
  }
  EXPECT_TRUE(lost_dep_mgr);
}

TEST(SatisfactionChecker, MatchesFreeFunctionOnPaperExample) {
  const Relation r = PaperExampleRelation();
  SatisfactionChecker checker(r);
  for (uint32_t mask = 0; mask < 32; ++mask) {
    AttributeSet lhs;
    for (AttributeId a = 0; a < 5; ++a) {
      if (mask & (1u << a)) lhs.Add(a);
    }
    for (AttributeId rhs = 0; rhs < 5; ++rhs) {
      EXPECT_EQ(checker.Holds(lhs, rhs), Holds(r, lhs, rhs))
          << lhs.ToString() << " -> " << rhs;
    }
  }
  EXPECT_GT(checker.cache_size(), 5u);  // memoized beyond the singletons
}

TEST(SatisfactionChecker, IsMinimalMatches) {
  const Relation r = PaperExampleRelation();
  SatisfactionChecker checker(r);
  EXPECT_TRUE(checker.IsMinimal(Fd("BC", 'A')));
  EXPECT_FALSE(checker.IsMinimal(Fd("BCD", 'A')));
  EXPECT_FALSE(checker.IsMinimal(Fd("E", 'B')));
}

TEST(SatisfactionChecker, RepeatedQueriesHitCache) {
  const Relation r = RandomRelation(6, 100, 4, 3);
  SatisfactionChecker checker(r);
  ASSERT_TRUE(checker.Holds(AttributeSet::FromLetters("ABC"), 4) ==
              Holds(r, AttributeSet::FromLetters("ABC"), 4));
  const size_t size_after_first = checker.cache_size();
  (void)checker.Holds(AttributeSet::FromLetters("ABC"), 4);
  EXPECT_EQ(checker.cache_size(), size_after_first);  // no new partitions
}

class CheckerSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckerSweep, RandomQueriesAgreeWithReference) {
  const uint64_t seed = GetParam();
  const Relation r = RandomRelation(6, 60, 3, seed);
  SatisfactionChecker checker(r);
  Rng rng(seed * 7 + 1);
  for (int i = 0; i < 40; ++i) {
    AttributeSet lhs;
    for (AttributeId a = 0; a < 6; ++a) {
      if (rng.Below(3) == 0) lhs.Add(a);
    }
    const AttributeId rhs = static_cast<AttributeId>(rng.Below(6));
    EXPECT_EQ(checker.Holds(lhs, rhs), Holds(r, lhs, rhs))
        << lhs.ToString() << " -> " << rhs;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerSweep, ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace depminer
