# Scripted CLI test for crash-safe mining: interrupt a checkpointed mine
# partway through the pipeline, then re-run the identical command and
# check that it (a) announces the resume and (b) produces exactly the
# cover an uninterrupted mine produces.

set(DIR ${WORK}/cli_checkpoint_dir)
file(REMOVE_RECURSE ${DIR})
file(MAKE_DIRECTORY ${DIR})

# The uninterrupted reference cover.
execute_process(COMMAND ${FDTOOL} mine ${DATA}/employees.csv
                RESULT_VARIABLE ref_result OUTPUT_VARIABLE ref_output)
if(NOT ref_result EQUAL 0)
  message(FATAL_ERROR "reference mine failed: ${ref_result}")
endif()

if(FAULTS)
  # Interrupt after the agree-set phase: the injected allocation failure
  # trips the CMAX stage, so the job stops with the kAgree checkpoint on
  # disk (exit 3 = tripped limit).
  execute_process(COMMAND ${FDTOOL} mine ${DATA}/employees.csv
                  --checkpoint-dir=${DIR} --fault-site=alloc/cmax
                  RESULT_VARIABLE interrupted_result
                  ERROR_VARIABLE interrupted_stderr)
  if(NOT interrupted_result EQUAL 3)
    message(FATAL_ERROR
            "interrupted mine exited ${interrupted_result}, expected 3: "
            "${interrupted_stderr}")
  endif()
  if(NOT interrupted_stderr MATCHES "checkpoint: ")
    message(FATAL_ERROR
            "interrupted mine printed no checkpoint path: "
            "${interrupted_stderr}")
  endif()
  file(GLOB checkpoints ${DIR}/*.dmk)
  if(NOT checkpoints)
    message(FATAL_ERROR "no checkpoint written under ${DIR}")
  endif()
else()
  # Faults compiled out: seed the directory with a clean full run so the
  # second invocation still exercises the resume path (from kCover).
  execute_process(COMMAND ${FDTOOL} mine ${DATA}/employees.csv
                  --checkpoint-dir=${DIR}
                  RESULT_VARIABLE seeded_result)
  if(NOT seeded_result EQUAL 0)
    message(FATAL_ERROR "seeding mine failed: ${seeded_result}")
  endif()
endif()

# Resume: same command, no fault. Must announce the resume and match the
# reference cover line for line.
execute_process(COMMAND ${FDTOOL} mine ${DATA}/employees.csv
                --checkpoint-dir=${DIR}
                RESULT_VARIABLE resumed_result
                OUTPUT_VARIABLE resumed_output
                ERROR_VARIABLE resumed_stderr)
if(NOT resumed_result EQUAL 0)
  message(FATAL_ERROR "resumed mine failed: ${resumed_stderr}")
endif()
if(NOT resumed_stderr MATCHES "resumed from phase")
  message(FATAL_ERROR "resume not announced: ${resumed_stderr}")
endif()
if(NOT resumed_output STREQUAL ref_output)
  message(FATAL_ERROR "resumed cover differs from the uninterrupted one:\n"
          "--- resumed ---\n${resumed_output}\n"
          "--- reference ---\n${ref_output}")
endif()

file(REMOVE_RECURSE ${DIR})
