// Wide-schema coverage: schemas beyond 64 attributes exercise the second
// word of AttributeSet through the whole pipeline (partitions, agree
// sets, transversals, TANE's lattice, Armstrong construction). The paper
// stops at 60 attributes; the library supports 128.

#include <gtest/gtest.h>

#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "datagen/synthetic.h"
#include "fastfds/fastfds.h"
#include "fd/satisfaction.h"
#include "relation/relation_builder.h"
#include "tane/tane.h"
#include "test_util.h"

namespace depminer {
namespace {

Relation WideRelation(size_t attrs, size_t tuples, double rate,
                      uint64_t seed) {
  SyntheticConfig config;
  config.num_attributes = attrs;
  config.num_tuples = tuples;
  config.identical_rate = rate;
  config.seed = seed;
  Result<Relation> r = GenerateSynthetic(config);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(WideSchema, SeventyAttributesAllAlgorithmsAgree) {
  const Relation r = WideRelation(70, 300, 0.5, 7);
  Result<DepMinerResult> dm = MineDependencies(r);
  ASSERT_TRUE(dm.ok());
  Result<TaneResult> tane = TaneDiscover(r);
  ASSERT_TRUE(tane.ok());
  Result<FastFdsResult> fast = FastFdsDiscover(r);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(dm.value().fds.fds(), tane.value().fds.fds());
  EXPECT_EQ(dm.value().fds.fds(), fast.value().fds.fds());
  EXPECT_GT(dm.value().fds.size(), 0u);

  // Spot-check FDs whose lhs straddles the 64-attribute word boundary.
  size_t straddling = 0, checked = 0;
  for (const FunctionalDependency& fd : dm.value().fds.fds()) {
    const bool low = !fd.lhs.Empty() && fd.lhs.Min() < 64;
    const bool high = (!fd.lhs.Empty() && fd.lhs.Max() >= 64) || fd.rhs >= 64;
    if (low && high) {
      ++straddling;
      if (checked++ < 20) {
        EXPECT_TRUE(Holds(r, fd)) << fd.ToString();
        EXPECT_TRUE(IsMinimalFd(r, fd)) << fd.ToString();
      }
    }
  }
  EXPECT_GT(straddling, 0u) << "workload never crossed the word boundary";
}

TEST(WideSchema, ArmstrongAtHundredAttributes) {
  const Relation r = WideRelation(100, 400, 0.4, 13);
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  if (mined.value().armstrong.has_value()) {
    EXPECT_TRUE(IsArmstrongFor(*mined.value().armstrong,
                               mined.value().all_max_sets));
    Result<DepMinerResult> remined = MineDependencies(*mined.value().armstrong);
    ASSERT_TRUE(remined.ok());
    EXPECT_EQ(remined.value().fds.fds(), mined.value().fds.fds());
  } else {
    EXPECT_EQ(mined.value().armstrong_status.code(),
              StatusCode::kFailedPrecondition);
  }
}

TEST(WideSchema, MaximumWidthAccepted) {
  // Exactly kMaxAttributes works; one more is rejected cleanly.
  const size_t n = AttributeSet::kMaxAttributes;
  RelationBuilder builder(Schema::Default(n));
  std::vector<std::string> row(n);
  for (size_t t = 0; t < 4; ++t) {
    for (size_t a = 0; a < n; ++a) {
      row[a] = std::to_string((t + a) % 3);
    }
    ASSERT_TRUE(builder.AddRow(row).ok());
  }
  Result<Relation> r = std::move(builder).Finish();
  ASSERT_TRUE(r.ok());
  Result<DepMinerResult> mined = MineDependencies(r.value());
  ASSERT_TRUE(mined.ok());
  Result<TaneResult> tane = TaneDiscover(r.value());
  ASSERT_TRUE(tane.ok());
  EXPECT_EQ(mined.value().fds.fds(), tane.value().fds.fds());
}

}  // namespace
}  // namespace depminer
