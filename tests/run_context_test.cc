// Tests for RunContext: deadlines, cooperative cancellation and memory
// budgets, both as a unit and threaded through the miners.

#include "common/run_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/agree_sets.h"
#include "core/dep_miner.h"
#include "fastfds/fastfds.h"
#include "fdep/fdep.h"
#include "storage/streaming.h"
#include "tane/tane.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

/// A relation on which a full Dep-Miner run takes well over the timeouts
/// used below: 30 attributes of near-random data make the levelwise
/// transversal search alone run for seconds.
Relation SlowRelation() { return RandomRelation(30, 800, 3, 20260806); }

// ---------------------------------------------------------------- unit --

TEST(RunContext, UnarmedIsFreeAndOk) {
  RunContext ctx;
  EXPECT_FALSE(ctx.limited());
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_FALSE(ctx.StopRequested());
}

TEST(RunContext, ExpiredDeadlineTrips) {
  RunContext ctx;
  ctx.SetDeadline(RunContext::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.limited());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(ctx.StopRequested());
}

TEST(RunContext, FutureDeadlineDoesNotTrip) {
  RunContext ctx;
  ctx.SetTimeout(std::chrono::hours(1));
  EXPECT_TRUE(ctx.limited());
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(RunContext, CancellationTripsAndTakesPrecedence) {
  RunContext ctx;
  ctx.SetDeadline(RunContext::Clock::now() - std::chrono::milliseconds(1));
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.cancel_requested());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(RunContext, MemoryBudgetTripsAndReleases) {
  RunContext ctx;
  ctx.SetMemoryBudget(1000);
  EXPECT_TRUE(ctx.Check().ok());
  ctx.ChargeBytes(1500);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCapacityExceeded);
  ctx.ReleaseBytes(1500);
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_EQ(ctx.high_water_bytes(), 1500u);
}

TEST(RunContext, ScopedChargeAdjustsAndReleases) {
  RunContext ctx;
  ctx.SetMemoryBudget(1 << 20);
  {
    ScopedMemoryCharge charge(&ctx);
    charge.Set(4096);
    EXPECT_EQ(ctx.bytes_used(), 4096u);
    charge.Set(1024);  // shrinking releases the difference
    EXPECT_EQ(ctx.bytes_used(), 1024u);
  }
  EXPECT_EQ(ctx.bytes_used(), 0u);
  ScopedMemoryCharge null_charge(nullptr);  // null context: all no-ops
  null_charge.Set(123);
}

// ----------------------------------------------- deadline mid-pipeline --

TEST(RunContextMining, DeadlineExpiryMidMineReturnsPartialStats) {
  const Relation r = SlowRelation();
  RunContext ctx;
  ctx.SetTimeout(std::chrono::milliseconds(50));
  DepMinerOptions options;
  options.run_context = &ctx;
  options.build_armstrong = false;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  ASSERT_TRUE(mined.ok());
  EXPECT_FALSE(mined.value().complete);
  EXPECT_EQ(mined.value().run_status.code(), StatusCode::kDeadlineExceeded);
  // The stages that ran before the trip left their statistics behind.
  EXPECT_GT(mined.value().stats.Total(), 0.0);
}

TEST(RunContextMining, AlreadyExpiredDeadlineFailsFast) {
  const Relation r = PaperExampleRelation();
  RunContext ctx;
  ctx.SetDeadline(RunContext::Clock::now() - std::chrono::milliseconds(1));
  DepMinerOptions options;
  options.run_context = &ctx;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  ASSERT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextMining, TaneHonorsDeadline) {
  const Relation r = SlowRelation();
  RunContext ctx;
  ctx.SetTimeout(std::chrono::milliseconds(50));
  TaneOptions options;
  options.run_context = &ctx;
  Result<TaneResult> result = TaneDiscover(r, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().complete);
  EXPECT_EQ(result.value().run_status.code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextMining, FastFdsHonorsDeadline) {
  const Relation r = SlowRelation();
  RunContext ctx;
  ctx.SetTimeout(std::chrono::milliseconds(50));
  Result<FastFdsResult> result = FastFdsDiscover(r, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().complete);
  EXPECT_EQ(result.value().run_status.code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextMining, FdepHonorsDeadline) {
  const Relation r = SlowRelation();
  RunContext ctx;
  ctx.SetTimeout(std::chrono::milliseconds(50));
  Result<FdepResult> result = FdepDiscover(r, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().complete);
  EXPECT_EQ(result.value().run_status.code(), StatusCode::kDeadlineExceeded);
}

// ------------------------------------------ cancellation from a thread --

TEST(RunContextMining, CancellationFromSecondThreadStopsTheRun) {
  const Relation r = SlowRelation();
  RunContext ctx;
  DepMinerOptions options;
  options.run_context = &ctx;
  options.build_armstrong = false;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ctx.RequestCancel();
  });
  Result<DepMinerResult> mined = MineDependencies(r, options);
  canceller.join();
  ASSERT_TRUE(mined.ok());
  EXPECT_FALSE(mined.value().complete);
  EXPECT_EQ(mined.value().run_status.code(), StatusCode::kCancelled);
}

TEST(RunContextMining, CancellationStopsParallelLhsSearch) {
  const Relation r = SlowRelation();
  RunContext ctx;
  DepMinerOptions options;
  options.run_context = &ctx;
  options.num_threads = 4;
  options.build_armstrong = false;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ctx.RequestCancel();
  });
  Result<DepMinerResult> mined = MineDependencies(r, options);
  canceller.join();
  ASSERT_TRUE(mined.ok());
  EXPECT_FALSE(mined.value().complete);
  EXPECT_EQ(mined.value().run_status.code(), StatusCode::kCancelled);
}

// -------------------------------------------------------- memory budget --

TEST(RunContextMining, BudgetExhaustionTripsAgreeSetChunkLoop) {
  const Relation r = RandomRelation(8, 600, 2, 7);  // many, large couples
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  RunContext ctx;
  ctx.SetMemoryBudget(1024);  // absurdly small: trips on the first chunk
  AgreeSetOptions options;
  options.max_couples_per_chunk = 1000;
  options.run_context = &ctx;
  const AgreeSetResult agree = ComputeAgreeSetsCouples(db, options);
  EXPECT_EQ(agree.status.code(), StatusCode::kCapacityExceeded);
  EXPECT_GT(ctx.high_water_bytes(), 1024u);
}

TEST(RunContextMining, BudgetExhaustionDegradesMineGracefully) {
  const Relation r = RandomRelation(8, 600, 2, 7);
  RunContext ctx;
  ctx.SetMemoryBudget(1024);
  DepMinerOptions options;
  options.run_context = &ctx;
  options.build_armstrong = false;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  ASSERT_TRUE(mined.ok());
  EXPECT_FALSE(mined.value().complete);
  EXPECT_EQ(mined.value().run_status.code(), StatusCode::kCapacityExceeded);
}

TEST(RunContextMining, GenerousBudgetDoesNotTrip) {
  const Relation r = PaperExampleRelation();
  RunContext ctx;
  ctx.SetTimeout(std::chrono::hours(1));
  ctx.SetMemoryBudget(size_t{1} << 32);
  DepMinerOptions options;
  options.run_context = &ctx;
  Result<DepMinerResult> governed = MineDependencies(r, options);
  Result<DepMinerResult> free = MineDependencies(r);
  ASSERT_TRUE(governed.ok());
  ASSERT_TRUE(free.ok());
  EXPECT_TRUE(governed.value().complete);
  EXPECT_EQ(governed.value().fds.fds(), free.value().fds.fds());
}

// ---------------------------------------------- unlimited pass-through --

TEST(RunContextMining, UnarmedContextIsPassThrough) {
  const Relation r = PaperExampleRelation();
  RunContext ctx;  // never armed
  DepMinerOptions options;
  options.run_context = &ctx;
  Result<DepMinerResult> governed = MineDependencies(r, options);
  Result<DepMinerResult> free = MineDependencies(r);
  ASSERT_TRUE(governed.ok());
  ASSERT_TRUE(free.ok());
  EXPECT_TRUE(governed.value().complete);
  EXPECT_TRUE(governed.value().run_status.ok());
  EXPECT_EQ(governed.value().fds.fds(), free.value().fds.fds());
  EXPECT_EQ(governed.value().all_max_sets, free.value().all_max_sets);
}

// ------------------------------------------------------------ streaming --

TEST(RunContextMining, StreamingExtractionHonorsExpiredDeadline) {
  std::string csv = "a,b,c\n";
  for (int i = 0; i < 5000; ++i) {
    csv += std::to_string(i % 50) + "," + std::to_string(i % 7) + "," +
           std::to_string(i % 3) + "\n";
  }
  RunContext ctx;
  ctx.SetDeadline(RunContext::Clock::now() - std::chrono::milliseconds(1));
  StreamingOptions options;
  options.run_context = &ctx;
  Result<StreamingExtract> extract = ExtractFromCsvText(csv, options);
  ASSERT_FALSE(extract.ok());
  EXPECT_EQ(extract.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace depminer
