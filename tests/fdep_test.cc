#include "fdep/fdep.h"

#include <gtest/gtest.h>

#include "core/dep_miner.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

TEST(Fdep, PaperExampleMatchesDepMiner) {
  const Relation r = PaperExampleRelation();
  Result<FdepResult> fdep = FdepDiscover(r);
  ASSERT_TRUE(fdep.ok()) << fdep.status().ToString();
  EXPECT_EQ(fdep.value().fds.size(), 14u) << fdep.value().fds.ToString();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(fdep.value().fds.fds(), mined.value().fds.fds());
}

TEST(Fdep, ConstantColumnKeepsMostGeneralHypothesis) {
  Result<Relation> r = MakeRelation({{"c", "1"}, {"c", "2"}});
  ASSERT_TRUE(r.ok());
  Result<FdepResult> fdep = FdepDiscover(r.value());
  ASSERT_TRUE(fdep.ok());
  ASSERT_EQ(fdep.value().fds.size(), 1u);
  EXPECT_EQ(fdep.value().fds.fds()[0], Fd("", 'A'));
}

TEST(Fdep, UndeterminableAttributeGetsNoHypotheses) {
  // A pair agreeing everywhere except on B kills every hypothesis for B.
  Result<Relation> r = MakeRelation({{"x", "1"}, {"x", "2"}});
  ASSERT_TRUE(r.ok());
  Result<FdepResult> fdep = FdepDiscover(r.value());
  ASSERT_TRUE(fdep.ok());
  for (const FunctionalDependency& fd : fdep.value().fds.fds()) {
    EXPECT_NE(fd.rhs, 1u);
  }
}

TEST(Fdep, StatsArePopulated) {
  Result<FdepResult> fdep = FdepDiscover(PaperExampleRelation());
  ASSERT_TRUE(fdep.ok());
  EXPECT_EQ(fdep.value().stats.negative_cover_size, 9u);  // Example 9 counts
  EXPECT_GT(fdep.value().stats.specializations, 0u);
  EXPECT_EQ(fdep.value().stats.num_fds, 14u);
  EXPECT_FALSE(fdep.value().stats.ToString().empty());
}

// Differential sweep against the oracle and Dep-Miner.
class FdepSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdepSweep, MatchesOracleAndDepMiner) {
  const uint64_t seed = GetParam();
  const Relation r =
      RandomRelation(3 + seed % 5, 20 + 6 * (seed % 6), 2 + seed % 5, seed);
  Result<FdepResult> fdep = FdepDiscover(r);
  ASSERT_TRUE(fdep.ok());
  EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r, fdep.value().fds))
      << "seed " << seed;
  DepMinerOptions options;
  options.build_armstrong = false;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(fdep.value().fds.fds(), mined.value().fds.fds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdepSweep, ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace depminer
