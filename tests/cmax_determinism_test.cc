#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "core/agree_sets.h"
#include "core/max_sets.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::RandomRelation;
using ::depminer::testing::SetsToString;

AgreeSetResult Agree(const Relation& r) {
  return ComputeAgreeSetsIdentifiers(
      StrippedPartitionDatabase::FromRelation(r));
}

bool SameMaxSets(const MaxSetResult& a, const MaxSetResult& b) {
  return a.num_attributes == b.num_attributes && a.max_sets == b.max_sets &&
         a.cmax_sets == b.cmax_sets;
}

/// The shared-pass kernel CMAX must be bit-identical at every thread
/// count, and equal to the retained naive per-attribute reference.
TEST(CmaxDeterminism, ThreadCountsAgreeWithEachOtherAndWithNaive) {
  for (const uint64_t seed : {3u, 17u, 51u}) {
    const Relation r = RandomRelation(9, 120, 4, seed);
    const AgreeSetResult agree = Agree(r);
    const MaxSetResult reference = ComputeMaxSetsNaive(agree);
    for (const size_t threads : {1u, 2u, 8u}) {
      const MaxSetResult got = ComputeMaxSets(agree, threads);
      EXPECT_TRUE(SameMaxSets(got, reference))
          << "seed " << seed << ", " << threads << " threads: "
          << SetsToString(got.AllMaxSets()) << " vs "
          << SetsToString(reference.AllMaxSets());
      EXPECT_EQ(got.AllMaxSets(), reference.AllMaxSets());
    }
  }
}

TEST(CmaxDeterminism, KeyLikeRelationYieldsEmptySetFamilies) {
  // Every pair of tuples disagrees everywhere, so ag(r) = {∅}: for each
  // attribute ∅ is the largest set not determining it, and cmax = {R}.
  Result<Relation> rel = MakeRelation({{"1", "x"}, {"2", "y"}, {"3", "z"}});
  ASSERT_TRUE(rel.ok());
  const AgreeSetResult agree = Agree(rel.value());
  ASSERT_TRUE(agree.contains_empty);
  const MaxSetResult reference = ComputeMaxSetsNaive(agree);
  for (const size_t threads : {1u, 2u, 8u}) {
    const MaxSetResult got = ComputeMaxSets(agree, threads);
    EXPECT_TRUE(SameMaxSets(got, reference)) << threads << " threads";
    for (size_t a = 0; a < got.num_attributes; ++a) {
      ASSERT_EQ(got.max_sets[a].size(), 1u);
      EXPECT_TRUE(got.max_sets[a][0].Empty());
      ASSERT_EQ(got.cmax_sets[a].size(), 1u);
      EXPECT_EQ(got.cmax_sets[a][0], AttributeSet::Universe(2));
    }
  }
}

TEST(CmaxDeterminism, ConstantColumn) {
  // C is constant, so every pair agrees exactly on {C}: ag(r) = {{C}},
  // ∅ ∉ ag(r). For A and B the only candidate is {C}; for C itself no
  // agree set avoids it and ∅ is absent, so max(dep(r), C) = {} (every
  // pair agrees on C, i.e. ∅ → C holds).
  Result<Relation> rel = MakeRelation(
      {{"1", "x", "c"}, {"2", "y", "c"}, {"3", "z", "c"}});
  ASSERT_TRUE(rel.ok());
  const AgreeSetResult agree = Agree(rel.value());
  ASSERT_FALSE(agree.contains_empty);
  const MaxSetResult reference = ComputeMaxSetsNaive(agree);
  const std::vector<AttributeSet> only_c = {AttributeSet::Single(2)};
  for (const size_t threads : {1u, 2u, 8u}) {
    const MaxSetResult got = ComputeMaxSets(agree, threads);
    EXPECT_TRUE(SameMaxSets(got, reference)) << threads << " threads";
    EXPECT_EQ(got.max_sets[0], only_c);
    EXPECT_EQ(got.max_sets[1], only_c);
    EXPECT_TRUE(got.max_sets[2].empty());
    EXPECT_TRUE(got.cmax_sets[2].empty());
  }
}

TEST(CmaxDeterminism, PreTrippedDeadlineYieldsEmptyFamiliesAtAnyThreadCount) {
  const Relation r = RandomRelation(8, 80, 3, 29);
  const AgreeSetResult agree = Agree(r);
  for (const size_t threads : {1u, 2u, 8u}) {
    RunContext ctx;
    ctx.SetTimeout(std::chrono::milliseconds(0));
    ASSERT_TRUE(ctx.StopRequested());
    const MaxSetResult got = ComputeMaxSets(agree, threads, &ctx);
    // The stop predicate is polled before the first attribute on every
    // lane, so an already-tripped context produces the same (all-empty)
    // partial result for any thread count.
    for (size_t a = 0; a < got.num_attributes; ++a) {
      EXPECT_TRUE(got.max_sets[a].empty()) << threads << " threads";
      EXPECT_TRUE(got.cmax_sets[a].empty()) << threads << " threads";
    }
    EXPECT_FALSE(got.status.ok()) << threads << " threads";
    EXPECT_FALSE(ctx.Check().ok());
  }
}

TEST(CmaxDeterminism, TinyMemoryBudgetVetoesTheStageDeterministically) {
  const Relation r = RandomRelation(8, 80, 3, 31);
  const AgreeSetResult agree = Agree(r);
  for (const size_t threads : {1u, 2u, 8u}) {
    RunContext ctx;
    ctx.SetMemoryBudget(1);
    const MaxSetResult got = ComputeMaxSets(agree, threads, &ctx);
    // The family/index/scratch charge trips the 1-byte budget before any
    // lane derives anything.
    EXPECT_GT(got.working_bytes, 1u);
    for (size_t a = 0; a < got.num_attributes; ++a) {
      EXPECT_TRUE(got.max_sets[a].empty()) << threads << " threads";
    }
    // The stage released its charge on return, so the *context* reads OK
    // again — the trip must be carried by the result's status.
    EXPECT_EQ(ctx.bytes_used(), 0u);
    EXPECT_TRUE(ctx.Check().ok());
    EXPECT_FALSE(got.status.ok()) << threads << " threads";
    EXPECT_EQ(got.status.code(), StatusCode::kCapacityExceeded);
  }
}

TEST(CmaxDeterminism, WorkingBytesAreChargedAndReleased) {
  const Relation r = RandomRelation(7, 60, 3, 37);
  const AgreeSetResult agree = Agree(r);
  RunContext ctx;
  ctx.SetMemoryBudget(64u << 20);
  const MaxSetResult got = ComputeMaxSets(agree, 2, &ctx);
  EXPECT_GT(got.working_bytes, 0u);
  EXPECT_GE(ctx.high_water_bytes(), got.working_bytes);
  EXPECT_EQ(ctx.bytes_used(), 0u) << "stage must release its charge";
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(got.status.ok());
  EXPECT_TRUE(SameMaxSets(got, ComputeMaxSetsNaive(agree)));
}

}  // namespace
}  // namespace depminer
