// Tests for the JSON writer, the stats-line formatter and the relation
// profiler.

#include <gtest/gtest.h>

#include "core/dep_miner.h"
#include "fastfds/fastfds.h"
#include "fdep/fdep.h"
#include "relation/relation_builder.h"
#include "report/database_profile.h"
#include "report/json_writer.h"
#include "report/profile.h"
#include "report/stats_format.h"
#include "tane/tane.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;

TEST(JsonWriter, BasicStructure) {
  JsonWriter json;
  json.OpenObject();
  json.Key("name").Value("x");
  json.Key("count").Value(uint64_t{3});
  json.Key("ratio").Value(0.5);
  json.Key("ok").Value(true);
  json.Key("nothing").Null();
  json.Key("items").OpenArray().Value(int64_t{1}).Value(int64_t{2}).CloseArray();
  json.CloseObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"x\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"nothing\":null,\"items\":[1,2]}");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.OpenArray();
  json.OpenObject();
  json.Key("a").OpenArray().CloseArray();
  json.CloseObject();
  json.OpenObject().CloseObject();
  json.CloseArray();
  EXPECT_EQ(json.str(), "[{\"a\":[]},{}]");
}

TEST(JsonWriter, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te\x01"),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  EXPECT_EQ(JsonWriter::Escape(""), "\"\"");
  // UTF-8 passes through untouched.
  EXPECT_EQ(JsonWriter::Escape("é"), "\"é\"");
}

TEST(StatsLineBuilder, FormatsEntriesAndGroups) {
  StatsLineBuilder b;
  EXPECT_EQ(b.str(), "");
  b.Count("levels", 3).Seconds("total", 0.1234);
  EXPECT_EQ(b.str(), "levels=3 total=0.123s");

  StatsLineBuilder grouped;
  grouped.Seconds("agree", 0.5)
      .BeginGroup()
      .Count("couples", 10)
      .Megabytes("working_mb", 2 * 1024 * 1024 + 512 * 1024)
      .EndGroup()
      .Count("fds", 14);
  EXPECT_EQ(grouped.str(), "agree=0.500s (couples=10, working_mb=2.5) fds=14");
}

// Every miner's stats line goes through the shared builder; these pin the
// exact legacy formats the hand-rolled snprintf code used to produce.

TEST(StatsLineBuilder, DepMinerStatsLegacyFormat) {
  DepMinerStats s;
  s.strip_seconds = 0.001;
  s.agree_seconds = 0.5;
  s.max_seconds = 0.25;
  s.lhs_seconds = 0.01;
  s.armstrong_seconds = 0.002;
  s.num_couples = 10;
  s.chunks = 1;
  s.num_agree_sets = 9;
  s.agree_working_bytes = 2 * 1024 * 1024;
  s.num_max_sets = 3;
  s.num_fds = 14;
  EXPECT_EQ(s.ToString(),
            "strip=0.001s agree=0.500s (couples=10, chunks=1, agree_sets=9, "
            "working_mb=2.0) max=0.250s (max_sets=3) lhs=0.010s "
            "armstrong=0.002s fds=14 total=0.763s");
}

TEST(StatsLineBuilder, TaneStatsLegacyFormat) {
  TaneStats s;
  s.levels = 3;
  s.candidates_generated = 42;
  s.partition_products = 7;
  s.num_fds = 14;
  s.peak_partition_bytes = 1536 * 1024;
  s.total_seconds = 0.1234;
  EXPECT_EQ(s.ToString(),
            "levels=3 candidates=42 pruned=0 products=7 fds=14 "
            "peak_partition_mb=1.5 total=0.123s");
}

TEST(StatsLineBuilder, FastFdsAndFdepStatsLegacyFormats) {
  FastFdsStats f;
  f.difference_sets = 5;
  f.search_nodes = 20;
  f.num_fds = 3;
  f.total_seconds = 0.05;
  EXPECT_EQ(f.ToString(),
            "difference_sets=5 search_nodes=20 pruned=0 fds=3 total=0.050s");

  FdepStats d;
  d.negative_cover_size = 6;
  d.specializations = 30;
  d.num_fds = 4;
  d.total_seconds = 1.5;
  EXPECT_EQ(d.ToString(),
            "negative_cover=6 specializations=30 pruned=0 fds=4 "
            "total=1.500s");
}

TEST(Profile, PaperExampleProfile) {
  const Relation r = PaperExampleRelation();
  Result<RelationProfile> profile = ProfileRelation(r, "employees");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile.value().num_tuples, 7u);
  EXPECT_EQ(profile.value().fds.size(), 14u);
  EXPECT_EQ(profile.value().max_sets.size(), 3u);
  EXPECT_FALSE(profile.value().candidate_keys.empty());
  ASSERT_TRUE(profile.value().armstrong.has_value());
  EXPECT_EQ(profile.value().armstrong->num_tuples(), 4u);
}

TEST(Profile, JsonContainsExpectedKeys) {
  const Relation r = PaperExampleRelation();
  Result<RelationProfile> profile = ProfileRelation(r, "emp\"loyees");
  ASSERT_TRUE(profile.ok());
  const std::string json = ProfileToJson(profile.value());
  // Balanced braces/brackets (the writer guarantees this structurally;
  // check the emitted text anyway).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  for (const char* key :
       {"\"source\"", "\"functional_dependencies\"", "\"candidate_keys\"",
        "\"max_sets\"", "\"normal_forms\"", "\"armstrong\"", "\"timings\"",
        "\"agree_seconds\"", "\"metrics\"", "\"couples\"",
        "\"agree_working_bytes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The quote in the label is escaped.
  EXPECT_NE(json.find("emp\\\"loyees"), std::string::npos);
  EXPECT_NE(json.find("\"exists\":true"), std::string::npos);
}

TEST(Profile, MarkdownMentionsSections) {
  const Relation r = PaperExampleRelation();
  Result<RelationProfile> profile = ProfileRelation(r, "employees");
  ASSERT_TRUE(profile.ok());
  const std::string md = ProfileToMarkdown(profile.value());
  for (const char* section :
       {"# Profile: employees", "## Columns", "## Candidate keys",
        "## Minimal functional dependencies", "## Armstrong sample"}) {
    EXPECT_NE(md.find(section), std::string::npos) << section;
  }
  EXPECT_NE(md.find("depname -> depnum"), std::string::npos);
}

TEST(Profile, KeyCapTruncates) {
  const Relation r = PaperExampleRelation();
  ProfileOptions options;
  options.max_keys = 1;
  Result<RelationProfile> profile = ProfileRelation(r, "emp", options);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().candidate_keys.size(), 1u);
}

TEST(DatabaseProfile, CombinesRelationsAndCrossStructure) {
  Result<Relation> customers = MakeRelation(
      Schema({"id", "name"}), {{"c1", "ann"}, {"c2", "bob"}});
  Result<Relation> orders = MakeRelation(
      Schema({"order", "customer_id"}), {{"o1", "c1"}, {"o2", "c2"}});
  ASSERT_TRUE(customers.ok() && orders.ok());
  const std::vector<const Relation*> rels = {&customers.value(),
                                             &orders.value()};
  Result<DatabaseProfile> profile =
      ProfileDatabase(rels, {"customers", "orders"});
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile.value().relations.size(), 2u);
  EXPECT_FALSE(profile.value().foreign_keys.empty());

  const std::string json = DatabaseProfileToJson(profile.value(), rels);
  EXPECT_NE(json.find("\"foreign_keys\""), std::string::npos);
  EXPECT_NE(json.find("orders.[customer_id] <= customers.[id]"),
            std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(DatabaseProfile, RejectsArityMismatch) {
  Result<Relation> r = MakeRelation({{"x"}});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(ProfileDatabase({&r.value()}, {"a", "b"}).ok());
}

}  // namespace
}  // namespace depminer
