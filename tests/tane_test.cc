#include "tane/tane.h"

#include <gtest/gtest.h>

#include "core/dep_miner.h"
#include "fd/naive_discovery.h"
#include "fd/satisfaction.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

TEST(Tane, PaperExampleMatchesDepMiner) {
  const Relation r = PaperExampleRelation();
  Result<TaneResult> tane = TaneDiscover(r);
  ASSERT_TRUE(tane.ok()) << tane.status().ToString();
  EXPECT_EQ(tane.value().fds.size(), 14u) << tane.value().fds.ToString();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(tane.value().fds.fds(), mined.value().fds.fds());
}

TEST(Tane, ConstantColumn) {
  Result<Relation> r = MakeRelation({{"c", "1"}, {"c", "2"}});
  ASSERT_TRUE(r.ok());
  Result<TaneResult> tane = TaneDiscover(r.value());
  ASSERT_TRUE(tane.ok());
  ASSERT_EQ(tane.value().fds.size(), 1u) << tane.value().fds.ToString();
  EXPECT_EQ(tane.value().fds.fds()[0], Fd("", 'A'));
}

TEST(Tane, SingleTuple) {
  Result<Relation> r = MakeRelation({{"x", "y", "z"}});
  ASSERT_TRUE(r.ok());
  Result<TaneResult> tane = TaneDiscover(r.value());
  ASSERT_TRUE(tane.ok());
  EXPECT_EQ(tane.value().fds.size(), 3u);  // everything constant
}

TEST(Tane, KeyColumnPruning) {
  Result<Relation> r = MakeRelation({
      {"1", "a", "x"}, {"2", "a", "x"}, {"3", "b", "y"},
  });
  ASSERT_TRUE(r.ok());
  Result<TaneResult> tane = TaneDiscover(r.value());
  ASSERT_TRUE(tane.ok());
  const FdSet& fds = tane.value().fds;
  EXPECT_TRUE(fds.Implies(Fd("A", 'B')));  // A is a key
  EXPECT_TRUE(fds.Implies(Fd("A", 'C')));
  EXPECT_TRUE(fds.Implies(Fd("B", 'C')));
  EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r.value(), fds));
}

TEST(Tane, RejectsBadErrorThreshold) {
  const Relation r = PaperExampleRelation();
  TaneOptions options;
  options.mining.max_g3_error = 1.5;
  EXPECT_FALSE(TaneDiscover(r, options).ok());
  options.mining.max_g3_error = -0.1;
  EXPECT_FALSE(TaneDiscover(r, options).ok());
}

TEST(Tane, StatsArePopulated) {
  Result<TaneResult> tane = TaneDiscover(PaperExampleRelation());
  ASSERT_TRUE(tane.ok());
  const TaneStats& stats = tane.value().stats;
  EXPECT_GE(stats.levels, 2u);
  EXPECT_GE(stats.candidates_generated, 5u);
  EXPECT_GT(stats.partition_products, 0u);
  EXPECT_EQ(stats.num_fds, 14u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(TaneApproximate, FindsFdsWithinThreshold) {
  // A -> B holds for 5 of 6 tuples: g3(A -> B) = 1/6.
  Result<Relation> r = MakeRelation({
      {"x", "1"}, {"x", "1"}, {"x", "1"}, {"x", "1"}, {"x", "1"}, {"x", "2"},
  });
  ASSERT_TRUE(r.ok());
  TaneOptions strict;
  Result<TaneResult> exact = TaneDiscover(r.value(), strict);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(exact.value().fds.Implies(Fd("A", 'B')));

  TaneOptions loose;
  loose.mining.max_g3_error = 0.2;  // 1/6 < 0.2
  Result<TaneResult> approx = TaneDiscover(r.value(), loose);
  ASSERT_TRUE(approx.ok());
  EXPECT_TRUE(approx.value().fds.Implies(Fd("", 'A')));  // constant column
  // ∅ -> B approximately holds too (remove one tuple): it is minimal.
  EXPECT_TRUE(approx.value().fds.Implies(Fd("", 'B')))
      << approx.value().fds.ToString();
}

TEST(TaneApproximate, ReportedFdsRespectG3Bound) {
  const Relation r = RandomRelation(4, 60, 3, 42);
  TaneOptions options;
  options.mining.max_g3_error = 0.1;
  Result<TaneResult> approx = TaneDiscover(r, options);
  ASSERT_TRUE(approx.ok());
  for (const FunctionalDependency& fd : approx.value().fds.fds()) {
    EXPECT_LE(G3Error(r, fd.lhs, fd.rhs), 0.1) << fd.ToString();
  }
}

TEST(TaneParallel, ThreadCountDoesNotChangeResults) {
  const Relation r = RandomRelation(8, 400, 4, 91);
  Result<TaneResult> serial = TaneDiscover(r);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u, 16u}) {
    TaneOptions options;
    options.num_threads = threads;
    Result<TaneResult> parallel = TaneDiscover(r, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.value().fds.fds(), serial.value().fds.fds())
        << threads << " threads";
    EXPECT_EQ(parallel.value().stats.partition_products,
              serial.value().stats.partition_products);
  }
}

TEST(TaneAblation, KeyPruningDoesNotChangeResults) {
  for (uint64_t seed : {1ull, 7ull, 19ull}) {
    const Relation r = RandomRelation(6, 50, 3, seed);
    TaneOptions no_pruning;
    no_pruning.enable_key_pruning = false;
    Result<TaneResult> pruned = TaneDiscover(r);
    Result<TaneResult> unpruned = TaneDiscover(r, no_pruning);
    ASSERT_TRUE(pruned.ok());
    ASSERT_TRUE(unpruned.ok());
    EXPECT_EQ(pruned.value().fds.fds(), unpruned.value().fds.fds())
        << "seed " << seed;
    // Pruning can only shrink the lattice.
    EXPECT_LE(pruned.value().stats.candidates_generated,
              unpruned.value().stats.candidates_generated);
  }
}

// Differential sweep: TANE ≡ exhaustive oracle ≡ Dep-Miner on random
// relations (this is the paper's claim that both algorithms compute the
// same minimal cover, differing only in cost).
struct TaneParam {
  size_t attrs;
  size_t tuples;
  size_t domain;
  uint64_t seed;
};

class TaneSweep : public ::testing::TestWithParam<TaneParam> {};

TEST_P(TaneSweep, MatchesOracleAndDepMiner) {
  const TaneParam p = GetParam();
  const Relation r = RandomRelation(p.attrs, p.tuples, p.domain, p.seed);
  Result<TaneResult> tane = TaneDiscover(r);
  ASSERT_TRUE(tane.ok());
  EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r, tane.value().fds))
      << "seed " << p.seed;
  DepMinerOptions options;
  options.build_armstrong = false;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(tane.value().fds.fds(), mined.value().fds.fds());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TaneSweep,
    ::testing::Values(
        TaneParam{3, 20, 2, 21}, TaneParam{4, 30, 2, 22},
        TaneParam{4, 40, 3, 23}, TaneParam{5, 50, 3, 24},
        TaneParam{5, 30, 4, 25}, TaneParam{6, 60, 4, 26},
        TaneParam{6, 40, 2, 27}, TaneParam{7, 50, 5, 28},
        TaneParam{3, 150, 3, 29}, TaneParam{8, 35, 4, 30},
        TaneParam{5, 10, 2, 31}, TaneParam{4, 100, 6, 32},
        TaneParam{7, 25, 3, 33}, TaneParam{6, 80, 8, 34},
        TaneParam{5, 45, 2, 35}));

}  // namespace
}  // namespace depminer
