#include "common/dominance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Sets;
using ::depminer::testing::SetsToString;

/// A random family of `size` sets over `num_attributes` attributes.
/// Cardinalities are spread across [0, num_attributes] (including the
/// occasional empty and full-universe set) and duplicates occur
/// naturally at these densities.
std::vector<AttributeSet> RandomFamily(size_t size, size_t num_attributes,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<AttributeSet> out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    const size_t k = rng.Below(num_attributes + 1);
    AttributeSet s;
    for (size_t j = 0; j < k; ++j) {
      s.Add(static_cast<AttributeId>(rng.Below(num_attributes)));
    }
    out.push_back(s);
  }
  return out;
}

/// A family where every set has the same cardinality: the strict-prefix
/// optimization degenerates to "nothing can dominate anything".
std::vector<AttributeSet> EqualCardinalityFamily(size_t size,
                                                 size_t num_attributes,
                                                 size_t cardinality,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<AttributeSet> out;
  out.reserve(size);
  while (out.size() < size) {
    AttributeSet s;
    while (s.Count() < cardinality) {
      s.Add(static_cast<AttributeId>(rng.Below(num_attributes)));
    }
    out.push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Direct index queries.

TEST(Dominance, SupersetQueryFindsProperSupersetsOnly) {
  // Sorted by non-increasing cardinality, duplicate-free.
  const std::vector<AttributeSet> family =
      Sets({"ABCD", "ABC", "ABD", "AB", "CD", "E"});
  std::vector<AttributeSet> sorted = family;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const AttributeSet& a, const AttributeSet& b) {
                     return a.Count() > b.Count();
                   });
  const DominanceIndex index(sorted, DominanceIndex::Order::kNonIncreasing);
  std::vector<uint64_t> scratch(index.words_per_bitmap());

  EXPECT_TRUE(index.HasProperSupersetOf(AttributeSet::FromLetters("AB"),
                                        nullptr, scratch.data()));
  EXPECT_TRUE(index.HasProperSupersetOf(AttributeSet::FromLetters("CD"),
                                        nullptr, scratch.data()));
  // Members with no strict superset in the family.
  EXPECT_FALSE(index.HasProperSupersetOf(AttributeSet::FromLetters("ABCD"),
                                         nullptr, scratch.data()));
  EXPECT_FALSE(index.HasProperSupersetOf(AttributeSet::FromLetters("E"),
                                         nullptr, scratch.data()));
  // The empty set is dominated by any non-empty member.
  EXPECT_TRUE(index.HasProperSupersetOf(AttributeSet(), nullptr,
                                        scratch.data()));
}

TEST(Dominance, SupersetQueryHonorsExclusionBitmap) {
  std::vector<AttributeSet> sorted = Sets({"ABC", "ABD", "AB"});
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const AttributeSet& a, const AttributeSet& b) {
                     return a.Count() > b.Count();
                   });
  const DominanceIndex index(sorted, DominanceIndex::Order::kNonIncreasing, 4);
  std::vector<uint64_t> scratch(index.words_per_bitmap());

  // AB has supersets ABC and ABD; excluding the sets containing C (the
  // CMAX_SET probe-attribute filter) must still find ABD, and excluding
  // both C- and D-carriers must find nothing.
  EXPECT_TRUE(index.HasProperSupersetOf(AttributeSet::FromLetters("AB"),
                                        index.Postings(2), scratch.data()));
  std::vector<uint64_t> both(index.words_per_bitmap());
  for (size_t w = 0; w < both.size(); ++w) {
    both[w] = index.Postings(2)[w] | index.Postings(3)[w];
  }
  EXPECT_FALSE(index.HasProperSupersetOf(AttributeSet::FromLetters("AB"),
                                         both.data(), scratch.data()));
}

TEST(Dominance, SubsetQueryFindsProperSubsetsOnly) {
  std::vector<AttributeSet> sorted = Sets({"", "AB", "CD", "ABC", "ABCD"});
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const AttributeSet& a, const AttributeSet& b) {
                     return a.Count() < b.Count();
                   });
  const DominanceIndex index(sorted, DominanceIndex::Order::kNonDecreasing);
  std::vector<uint64_t> scratch(index.words_per_bitmap());

  // ∅ is a proper subset of everything, including sets whose attributes
  // are disjoint from every other member's.
  EXPECT_TRUE(index.HasProperSubsetOf(AttributeSet::FromLetters("CD"),
                                      nullptr, scratch.data()));
  EXPECT_TRUE(index.HasProperSubsetOf(AttributeSet::FromLetters("ABC"),
                                      nullptr, scratch.data()));
  // ∅ itself has no proper subset.
  EXPECT_FALSE(index.HasProperSubsetOf(AttributeSet(), nullptr,
                                       scratch.data()));
}

TEST(Dominance, EmptyFamilyAnswersNothing) {
  const std::vector<AttributeSet> empty;
  const DominanceIndex index(empty, DominanceIndex::Order::kNonIncreasing, 8);
  std::vector<uint64_t> scratch(std::max<size_t>(index.words_per_bitmap(), 1));
  EXPECT_FALSE(index.HasProperSupersetOf(AttributeSet::FromLetters("AB"),
                                         nullptr, scratch.data()));
  EXPECT_EQ(index.num_sets(), 0u);
}

// ---------------------------------------------------------------------------
// Kernel entry points vs the retained naive reference. Families are
// sized well above the small-family cutoff so the index path is the one
// under test; the naive scan is the oracle (its body is the pre-kernel
// implementation verbatim).

class DominanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DominanceProperty, KernelMatchesNaiveOnRandomFamilies) {
  for (const size_t attrs : {8ul, 24ul, 60ul, 128ul}) {
    std::vector<AttributeSet> family = RandomFamily(500, attrs, GetParam());
    EXPECT_EQ(MaximalSets(family), MaximalSetsNaive(family))
        << "Max⊆ mismatch at " << attrs << " attributes";
    EXPECT_EQ(MinimalSets(family), MinimalSetsNaive(family))
        << "Min⊆ mismatch at " << attrs << " attributes";
  }
}

TEST_P(DominanceProperty, KernelMatchesNaiveWithDuplicatesAndEmptySet) {
  std::vector<AttributeSet> family = RandomFamily(300, 16, GetParam());
  // Inject duplicates of existing members and several empty sets.
  Rng rng(GetParam() ^ 0xD0D0);
  for (size_t i = 0; i < 100; ++i) {
    family.push_back(family[rng.Below(family.size())]);
  }
  family.push_back(AttributeSet());
  family.push_back(AttributeSet());
  family.push_back(AttributeSet::Universe(16));
  EXPECT_EQ(MaximalSets(family), MaximalSetsNaive(family));
  EXPECT_EQ(MinimalSets(family), MinimalSetsNaive(family));
}

TEST_P(DominanceProperty, KernelMatchesNaiveOnEqualCardinalityFamilies) {
  // All-equal cardinality: nothing dominates anything; every distinct
  // set must survive both filters.
  std::vector<AttributeSet> family =
      EqualCardinalityFamily(400, 32, 7, GetParam());
  const std::vector<AttributeSet> max = MaximalSets(family);
  const std::vector<AttributeSet> min = MinimalSets(family);
  EXPECT_EQ(max, MaximalSetsNaive(family));
  EXPECT_EQ(min, MinimalSetsNaive(family));
  std::vector<AttributeSet> distinct = family;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  EXPECT_EQ(max.size(), distinct.size());
  EXPECT_EQ(min.size(), distinct.size());
}

TEST_P(DominanceProperty, KernelMatchesNaiveOnWideSets) {
  // 128-attribute schemas exercise both words of the bitset and posting
  // rows in the second word range.
  std::vector<AttributeSet> family = RandomFamily(256, 128, GetParam());
  family.push_back(AttributeSet::Universe(128));
  EXPECT_EQ(MaximalSets(family), MaximalSetsNaive(family));
  EXPECT_EQ(MinimalSets(family), MinimalSetsNaive(family));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceProperty,
                         ::testing::Range<uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Survivor semantics on small, hand-checked families (these take the
// small-family scan path; the same cases ride through the kernel path in
// the property tests above).

TEST(Dominance, MaximalSurvivorsAreMutuallyIncomparable) {
  std::vector<AttributeSet> family = RandomFamily(200, 12, 7);
  const std::vector<AttributeSet> max = MaximalSets(family);
  for (size_t i = 0; i < max.size(); ++i) {
    for (size_t j = 0; j < max.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(max[i].IsProperSubsetOf(max[j]))
          << max[i].ToString() << " ⊂ " << max[j].ToString() << " in "
          << SetsToString(max);
    }
  }
  // Every input set is dominated by (or equal to) some survivor.
  for (const AttributeSet& s : family) {
    bool covered = false;
    for (const AttributeSet& kept : max) {
      if (s.IsSubsetOf(kept)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << s.ToString() << " not covered";
  }
}

TEST(Dominance, MinimalSurvivorsCoverEveryInputFromBelow) {
  std::vector<AttributeSet> family = RandomFamily(200, 12, 11);
  const std::vector<AttributeSet> min = MinimalSets(family);
  for (const AttributeSet& s : family) {
    bool covered = false;
    for (const AttributeSet& kept : min) {
      if (kept.IsSubsetOf(s)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << s.ToString() << " not covered";
  }
}

// ---------------------------------------------------------------------------
// Backend dispatch. The scalar path is the semantic oracle; the AVX2
// path must produce bit-identical survivors through both the batched
// small-family scan and the posting-index path (family sizes straddle
// the crossover so both dispatch branches run under both backends).

/// Restores the previously active backend on scope exit so a failing
/// assertion can't leak a forced backend into later tests.
class ScopedBackend {
 public:
  explicit ScopedBackend(DominanceBackend backend)
      : previous_(SetDominanceBackend(backend)) {}
  ~ScopedBackend() { SetDominanceBackend(previous_); }

 private:
  DominanceBackend previous_;
};

TEST(DominanceBackend_, ScalarAlwaysSupportedAndForcible) {
  EXPECT_TRUE(DominanceBackendSupported(DominanceBackend::kScalar));
  ScopedBackend forced(DominanceBackend::kScalar);
  EXPECT_EQ(ActiveDominanceBackend(), DominanceBackend::kScalar);
}

TEST(DominanceBackend_, UnsupportedBackendFallsBackToScalar) {
  if (DominanceBackendSupported(DominanceBackend::kAvx2)) {
    GTEST_SKIP() << "AVX2 available; fallback path not reachable here";
  }
  const DominanceBackend previous =
      SetDominanceBackend(DominanceBackend::kAvx2);
  EXPECT_EQ(ActiveDominanceBackend(), DominanceBackend::kScalar);
  SetDominanceBackend(previous);
}

TEST(DominanceBackend_, Avx2MatchesScalarOnRandomFamilies) {
  if (!DominanceBackendSupported(DominanceBackend::kAvx2)) {
    GTEST_SKIP() << "host CPU lacks AVX2";
  }
  for (const uint64_t seed : {3ull, 17ull, 92ull}) {
    // 40 and 300 stay on the batched scan; 2000 crosses into the index.
    for (const size_t size : {40ul, 300ul, 2000ul}) {
      for (const size_t attrs : {8ul, 24ul, 128ul}) {
        std::vector<AttributeSet> family = RandomFamily(size, attrs, seed);
        std::vector<AttributeSet> max_scalar, min_scalar, max_avx2, min_avx2;
        {
          ScopedBackend forced(DominanceBackend::kScalar);
          max_scalar = MaximalSets(family);
          min_scalar = MinimalSets(family);
        }
        {
          ScopedBackend forced(DominanceBackend::kAvx2);
          max_avx2 = MaximalSets(family);
          min_avx2 = MinimalSets(family);
        }
        EXPECT_EQ(max_scalar, max_avx2)
            << "Max⊆ backend divergence: size=" << size << " attrs=" << attrs
            << " seed=" << seed;
        EXPECT_EQ(min_scalar, min_avx2)
            << "Min⊆ backend divergence: size=" << size << " attrs=" << attrs
            << " seed=" << seed;
      }
    }
  }
}

TEST(DominanceBackend_, Avx2MatchesScalarOnDirectIndexQueries) {
  if (!DominanceBackendSupported(DominanceBackend::kAvx2)) {
    GTEST_SKIP() << "host CPU lacks AVX2";
  }
  std::vector<AttributeSet> family = RandomFamily(600, 20, 51);
  std::sort(family.begin(), family.end());
  family.erase(std::unique(family.begin(), family.end()), family.end());
  std::stable_sort(family.begin(), family.end(),
                   [](const AttributeSet& a, const AttributeSet& b) {
                     return a.Count() > b.Count();
                   });
  const DominanceIndex index(family, DominanceIndex::Order::kNonIncreasing);
  std::vector<uint64_t> scratch(index.words_per_bitmap());
  const std::vector<AttributeSet> probes = RandomFamily(200, 20, 52);
  for (const AttributeSet& probe : probes) {
    bool scalar_answer, avx2_answer;
    {
      ScopedBackend forced(DominanceBackend::kScalar);
      scalar_answer =
          index.HasProperSupersetOf(probe, nullptr, scratch.data());
    }
    {
      ScopedBackend forced(DominanceBackend::kAvx2);
      avx2_answer = index.HasProperSupersetOf(probe, nullptr, scratch.data());
    }
    EXPECT_EQ(scalar_answer, avx2_answer)
        << "superset query divergence on " << probe.ToString();
  }
}

}  // namespace
}  // namespace depminer
