// End-to-end verification of every intermediate object of the paper's §3
// worked example (Examples 1-13): partitions, stripped partitions, maximal
// equivalence classes, couples, agree sets, max/cmax sets, per-attribute
// lhs families, the 14 minimal FDs, and both Armstrong constructions.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/agree_sets.h"
#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "core/lhs.h"
#include "core/max_sets.h"
#include "fd/satisfaction.h"
#include "partition/partition_database.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::Sets;
using ::depminer::testing::SetsToString;

constexpr AttributeId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

/// Converts 1-based tuple numbers (the paper's) to classes of TupleIds.
std::vector<EquivalenceClass> Classes(
    std::vector<std::vector<TupleId>> one_based) {
  for (auto& c : one_based) {
    for (TupleId& t : c) --t;
    std::sort(c.begin(), c.end());
  }
  std::sort(one_based.begin(), one_based.end());
  return one_based;
}

std::vector<EquivalenceClass> Sorted(std::vector<EquivalenceClass> classes) {
  for (auto& c : classes) std::sort(c.begin(), c.end());
  std::sort(classes.begin(), classes.end());
  return classes;
}

TEST(PaperExample, Example1Partitions) {
  const Relation r = PaperExampleRelation();
  EXPECT_EQ(Sorted(Partition::ForAttribute(r, kA).classes()),
            Classes({{1, 2}, {3}, {4}, {5}, {6}, {7}}));
  EXPECT_EQ(Sorted(Partition::ForAttribute(r, kB).classes()),
            Classes({{1, 6}, {2, 7}, {3, 4}, {5}}));
  EXPECT_EQ(Sorted(Partition::ForAttribute(r, kC).classes()),
            Classes({{1}, {2}, {3}, {4, 5}, {6}, {7}}));
  EXPECT_EQ(Sorted(Partition::ForAttribute(r, kD).classes()),
            Classes({{1, 6}, {2, 7}, {3, 4}, {5}}));
  EXPECT_EQ(Sorted(Partition::ForAttribute(r, kE).classes()),
            Classes({{1, 6}, {2, 7}, {3, 4, 5}}));
}

TEST(PaperExample, Example2StrippedPartitions) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  EXPECT_EQ(Sorted(db.partition(kA).classes()), Classes({{1, 2}}));
  EXPECT_EQ(Sorted(db.partition(kB).classes()),
            Classes({{1, 6}, {2, 7}, {3, 4}}));
  EXPECT_EQ(Sorted(db.partition(kC).classes()), Classes({{4, 5}}));
  EXPECT_EQ(Sorted(db.partition(kD).classes()),
            Classes({{1, 6}, {2, 7}, {3, 4}}));
  EXPECT_EQ(Sorted(db.partition(kE).classes()),
            Classes({{1, 6}, {2, 7}, {3, 4, 5}}));
}

TEST(PaperExample, Example4MaximalEquivalenceClasses) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  EXPECT_EQ(Sorted(MaximalEquivalenceClasses(db)),
            Classes({{1, 2}, {1, 6}, {2, 7}, {3, 4, 5}}));
}

// Examples 5 and 8: ag(r) = {∅, A, BDE, CE, E}, by both algorithms (and
// the naive reference).
TEST(PaperExample, Examples5And8AgreeSets) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  const std::vector<AttributeSet> expected = Sets({"A", "BDE", "CE", "E"});

  for (const AgreeSetResult& result :
       {ComputeAgreeSetsNaive(r), ComputeAgreeSetsCouples(db),
        ComputeAgreeSetsIdentifiers(db)}) {
    EXPECT_EQ(result.sets, expected) << SetsToString(result.sets);
    EXPECT_TRUE(result.contains_empty);  // e.g. tuples 5 and 6 disagree
  }

  // The six couples of Example 5: (1,2) (1,6) (2,7) (3,4) (3,5) (4,5).
  const AgreeSetResult couples = ComputeAgreeSetsCouples(db);
  EXPECT_EQ(couples.couples_examined, 6u);
}

// Example 8's ec(t) table, checked through the agree sets it induces: the
// identifier algorithm must reproduce each couple's agree set exactly.
TEST(PaperExample, Example8CoupleAgreeSets) {
  const Relation r = PaperExampleRelation();
  const struct {
    TupleId a, b;  // 1-based, as the paper numbers them
    const char* agree;
  } kCouples[] = {
      {1, 2, "A"},  {1, 6, "BDE"}, {2, 7, "BDE"},
      {3, 4, "BDE"}, {3, 5, "E"},  {4, 5, "CE"},
  };
  for (const auto& c : kCouples) {
    EXPECT_EQ(r.AgreeSetOf(c.a - 1, c.b - 1),
              AttributeSet::FromLetters(c.agree))
        << "(" << c.a << "," << c.b << ")";
  }
  // And tuples 5 and 6 disagree everywhere — the source of ∅ ∈ ag(r).
  EXPECT_TRUE(r.AgreeSetOf(4, 5).Empty());
}

TEST(PaperExample, Example9MaxAndCmaxSets) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  const MaxSetResult max = ComputeMaxSets(ComputeAgreeSetsIdentifiers(db));

  EXPECT_EQ(max.max_sets[kA], Sets({"CE", "BDE"}));
  EXPECT_EQ(max.max_sets[kB], Sets({"A", "CE"}));
  EXPECT_EQ(max.max_sets[kC], Sets({"A", "BDE"}));
  EXPECT_EQ(max.max_sets[kD], Sets({"A", "CE"}));
  EXPECT_EQ(max.max_sets[kE], Sets({"A"}));

  EXPECT_EQ(max.cmax_sets[kA], Sets({"ABD", "AC"}));
  EXPECT_EQ(max.cmax_sets[kB], Sets({"BCDE", "ABD"}));
  EXPECT_EQ(max.cmax_sets[kC], Sets({"BCDE", "AC"}));
  EXPECT_EQ(max.cmax_sets[kD], Sets({"BCDE", "ABD"}));
  EXPECT_EQ(max.cmax_sets[kE], Sets({"BCDE"}));

  // MAX(dep(r)) used for Armstrong construction: {A, BDE, CE}.
  EXPECT_EQ(max.AllMaxSets(), Sets({"A", "BDE", "CE"}));
}

TEST(PaperExample, Example10LeftHandSides) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  const LhsResult lhs =
      ComputeLhs(ComputeMaxSets(ComputeAgreeSetsIdentifiers(db)));

  EXPECT_EQ(lhs.lhs[kA], Sets({"A", "BC", "CD"}));
  EXPECT_EQ(lhs.lhs[kB], Sets({"AC", "AE", "B", "D"}));
  EXPECT_EQ(lhs.lhs[kC], Sets({"AB", "AD", "AE", "C"}));
  EXPECT_EQ(lhs.lhs[kD], Sets({"AC", "AE", "B", "D"}));
  EXPECT_EQ(lhs.lhs[kE], Sets({"B", "C", "D", "E"}));
}

TEST(PaperExample, Example11MinimalFds) {
  const Relation r = PaperExampleRelation();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();

  const std::vector<FunctionalDependency> expected = [] {
    std::vector<FunctionalDependency> fds = {
        Fd("BC", 'A'), Fd("CD", 'A'), Fd("AC", 'B'), Fd("AE", 'B'),
        Fd("D", 'B'),  Fd("AB", 'C'), Fd("AD", 'C'), Fd("AE", 'C'),
        Fd("AC", 'D'), Fd("AE", 'D'), Fd("B", 'D'),  Fd("B", 'E'),
        Fd("C", 'E'),  Fd("D", 'E'),
    };
    Canonicalize(&fds);
    return fds;
  }();
  EXPECT_EQ(mined.value().fds.fds(), expected)
      << mined.value().fds.ToString();
}

// Example 12: the synthetic Armstrong relation from
// MAX(dep(r)) ∪ R = {ABCDE, A, BDE, CE} has 4 tuples and realizes the
// pattern of Equation 1.
TEST(PaperExample, Example12SyntheticArmstrong) {
  const Relation r = PaperExampleRelation();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const std::vector<AttributeSet>& max_sets = mined.value().all_max_sets;

  Result<Relation> built = BuildSyntheticArmstrong(r.schema(), max_sets);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const Relation& armstrong = built.value();
  EXPECT_EQ(armstrong.num_tuples(), max_sets.size() + 1);
  EXPECT_EQ(armstrong.num_tuples(), 4u);
  EXPECT_TRUE(IsArmstrongFor(armstrong, max_sets));

  // Same minimal FDs as the original relation.
  Result<DepMinerResult> remined = MineDependencies(armstrong);
  ASSERT_TRUE(remined.ok());
  EXPECT_EQ(remined.value().fds.fds(), mined.value().fds.fds());
}

// Example 13: Proposition 1 counts and the real-world Armstrong relation.
TEST(PaperExample, Example13RealWorldArmstrong) {
  const Relation r = PaperExampleRelation();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const std::vector<AttributeSet>& max_sets = mined.value().all_max_sets;

  // |π_A(r)| = 6, |π_B(r)| = 4, |π_C(r)| = 6, |π_D(r)| = 4, |π_E(r)| = 3.
  EXPECT_EQ(r.DistinctCount(kA), 6u);
  EXPECT_EQ(r.DistinctCount(kB), 4u);
  EXPECT_EQ(r.DistinctCount(kC), 6u);
  EXPECT_EQ(r.DistinctCount(kD), 4u);
  EXPECT_EQ(r.DistinctCount(kE), 3u);

  // Required values per attribute: |{X ∈ MAX : A ∉ X}| + 1.
  auto required = [&max_sets](AttributeId a) {
    size_t count = 0;
    for (const AttributeSet& m : max_sets) {
      if (!m.Contains(a)) ++count;
    }
    return count + 1;
  };
  EXPECT_EQ(required(kA), 3u);  // BDE and CE exclude A
  EXPECT_EQ(required(kB), 3u);  // A and CE exclude B
  EXPECT_EQ(required(kC), 3u);
  EXPECT_EQ(required(kD), 3u);
  EXPECT_EQ(required(kE), 2u);  // only A excludes E

  EXPECT_TRUE(RealWorldArmstrongExists(r, max_sets).ok());
  ASSERT_TRUE(mined.value().armstrong.has_value());
  const Relation& armstrong = *mined.value().armstrong;
  EXPECT_EQ(armstrong.num_tuples(), 4u);
  EXPECT_TRUE(IsArmstrongFor(armstrong, max_sets));

  // Definition 1 (3): every value of the sample occurs in the initial
  // relation's corresponding column.
  for (TupleId t = 0; t < armstrong.num_tuples(); ++t) {
    for (AttributeId a = 0; a < armstrong.num_attributes(); ++a) {
      const std::vector<std::string>& column = r.Dictionary(a);
      EXPECT_NE(std::find(column.begin(), column.end(), armstrong.Value(t, a)),
                column.end())
          << "value not from initial relation: " << armstrong.Value(t, a);
    }
  }

  // Equivalent FD representation (Definition 1 (1)).
  Result<DepMinerResult> remined = MineDependencies(armstrong);
  ASSERT_TRUE(remined.ok());
  EXPECT_EQ(remined.value().fds.fds(), mined.value().fds.fds());
}

// The paper's note in §2: Tr(cmax(dep(r), A)) = lhs(dep(r), A), checked
// here through satisfaction: every lhs is minimal and holds.
TEST(PaperExample, LhsAreMinimalFdsBySatisfaction) {
  const Relation r = PaperExampleRelation();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r, mined.value().fds));
}

}  // namespace
}  // namespace depminer
