#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "catalog/catalog.h"
#include "core/dep_miner.h"
#include "relation/csv.h"
#include "server/client.h"
#include "server/protocol.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::RandomRelation;

/// The cover exactly as the daemon (and `fdtool mine`) renders it — the
/// yardstick for the bit-identical acceptance check.
std::string ExpectedCover(const Relation& relation) {
  DepMinerOptions options;
  options.build_armstrong = false;
  Result<DepMinerResult> mined = MineDependencies(relation, options);
  EXPECT_TRUE(mined.ok()) << mined.status().ToString();
  std::string body;
  for (const FunctionalDependency& fd : mined.value().fds.fds()) {
    body += fd.ToString(relation.schema());
    body += '\n';
  }
  return body;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/dm_srv_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    socket_ = dir_ + "/sock";
  }

  void TearDown() override {
    if (thread_.joinable()) StopServer();
    std::filesystem::remove_all(dir_);
  }

  void StartServer(size_t max_connections = 32, size_t num_threads = 4) {
    stop_.store(false);
    ServerOptions options;
    options.catalog_dir = dir_;
    options.socket_path = socket_;
    options.max_connections = max_connections;
    options.num_threads = num_threads;
    options.shutdown_flag = &stop_;
    server_.reset(new Server(options));
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
  }

  void StopServer() {
    stop_.store(true);
    thread_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  }

  ServerClient Connect() {
    Result<ServerClient> client = ServerClient::Connect(socket_);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  /// PUTs `relation` under `name` and returns the CSV the server parsed.
  std::string PutRelation(ServerClient& client, const std::string& name,
                          const Relation& relation) {
    const std::string csv = CsvToString(relation);
    Result<Response> put = client.Call("put " + name, csv);
    EXPECT_TRUE(put.ok()) << put.status().ToString();
    EXPECT_TRUE(put.value().ok) << put.value().message;
    return csv;
  }

  std::string dir_;
  std::string socket_;
  std::atomic<bool> stop_{false};
  std::unique_ptr<Server> server_;
  std::thread thread_;
  Status serve_status_;
};

TEST_F(ServerTest, PingPutInfoListDropRoundTrip) {
  StartServer();
  ServerClient client = Connect();

  Result<Response> ping = client.Call("ping");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_TRUE(ping.value().ok);

  Result<Response> list = client.Call("list");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().params.at("count"), "0");
  EXPECT_TRUE(list.value().body.empty());

  const Relation relation = RandomRelation(4, 25, 3, 7);
  PutRelation(client, "ds", relation);

  Result<Response> info = client.Call("info ds");
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info.value().ok) << info.value().message;
  EXPECT_EQ(info.value().params.at("attributes"),
            std::to_string(relation.num_attributes()));
  EXPECT_EQ(info.value().params.at("tuples"),
            std::to_string(relation.num_tuples()));
  EXPECT_EQ(info.value().params.at("fingerprint").size(), 32u);

  list = client.Call("list");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().params.at("count"), "1");
  EXPECT_EQ(list.value().body, "ds\n");

  Result<Response> missing = client.Call("info nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().ok);
  EXPECT_EQ(missing.value().code, "NotFound");

  Result<Response> drop = client.Call("drop ds");
  ASSERT_TRUE(drop.ok());
  EXPECT_TRUE(drop.value().ok);
  drop = client.Call("drop ds");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(drop.value().code, "NotFound");
}

TEST_F(ServerTest, MineIsBitIdenticalAcrossThreadCounts) {
  StartServer(/*max_connections=*/32, /*num_threads=*/8);
  ServerClient client = Connect();
  const Relation relation = RandomRelation(5, 14, 3, 42);
  const std::string csv = PutRelation(client, "ds", relation);

  // The yardstick mines the same bytes the server parsed.
  Result<Relation> parsed = ParseCsvRelation(csv);
  ASSERT_TRUE(parsed.ok());
  const std::string expected = ExpectedCover(parsed.value());
  ASSERT_FALSE(expected.empty());

  for (const int threads : {1, 2, 8}) {
    Result<Response> mine = client.Call(
        "mine ds nocache=1 threads=" + std::to_string(threads));
    ASSERT_TRUE(mine.ok()) << mine.status().ToString();
    ASSERT_TRUE(mine.value().ok) << mine.value().message;
    EXPECT_EQ(mine.value().params.at("complete"), "1");
    EXPECT_EQ(mine.value().params.at("cached"), "0");
    EXPECT_EQ(mine.value().body, expected) << "threads=" << threads;
  }
}

TEST_F(ServerTest, RepeatMineIsServedFromTheResultCache) {
  StartServer();
  ServerClient client = Connect();
  const Relation relation = RandomRelation(5, 14, 3, 11);
  PutRelation(client, "ds", relation);

  Result<Response> first = client.Call("mine ds");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().ok) << first.value().message;
  EXPECT_EQ(first.value().params.at("cached"), "0");

  Result<Response> second = client.Call("mine ds");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().ok) << second.value().message;
  EXPECT_EQ(second.value().params.at("cached"), "1");
  EXPECT_EQ(second.value().body, first.value().body);
  EXPECT_EQ(second.value().params.at("fds"), first.value().params.at("fds"));

  const TelemetrySnapshot snapshot = server_->Snapshot();
  EXPECT_GE(snapshot.counters.at("server/cache_hit"), 1u);
  EXPECT_GE(snapshot.counters.at("server/cache_miss"), 1u);

  // nocache bypasses the cache but must still produce the same cover.
  Result<Response> forced = client.Call("mine ds nocache=1");
  ASSERT_TRUE(forced.ok());
  ASSERT_TRUE(forced.value().ok);
  EXPECT_EQ(forced.value().params.at("cached"), "0");
  EXPECT_EQ(forced.value().body, first.value().body);

  // Re-putting the same name with different content changes the
  // fingerprint, so the stale cover is not replayed.
  const Relation changed = RandomRelation(5, 14, 3, 12);
  PutRelation(client, "ds", changed);
  Result<Response> after = client.Call("mine ds");
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.value().ok);
  EXPECT_EQ(after.value().params.at("cached"), "0");
}

TEST_F(ServerTest, ResultCacheSurvivesServerRestart) {
  StartServer();
  std::string first_body;
  {
    ServerClient client = Connect();
    PutRelation(client, "ds", RandomRelation(5, 14, 3, 21));
    Result<Response> first = client.Call("mine ds");
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first.value().ok);
    EXPECT_EQ(first.value().params.at("cached"), "0");
    first_body = first.value().body;
  }
  StopServer();
  server_.reset();

  // A fresh daemon over the same catalog serves the cover straight from
  // the on-disk cache: the fingerprint key is content-derived, not
  // session state.
  StartServer();
  ServerClient client = Connect();
  Result<Response> again = client.Call("mine ds");
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again.value().ok) << again.value().message;
  EXPECT_EQ(again.value().params.at("cached"), "1");
  EXPECT_EQ(again.value().body, first_body);
}

TEST_F(ServerTest, EightConcurrentClientsMineBitIdenticalCovers) {
  StartServer(/*max_connections=*/32, /*num_threads=*/8);
  const Relation relation = RandomRelation(5, 14, 3, 99);
  std::string csv;
  {
    ServerClient client = Connect();
    csv = PutRelation(client, "ds", relation);
  }
  Result<Relation> parsed = ParseCsvRelation(csv);
  ASSERT_TRUE(parsed.ok());
  const std::string expected = ExpectedCover(parsed.value());

  constexpr int kClients = 8;
  std::vector<std::string> bodies(kClients);
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([this, i, &bodies, &failures] {
      Result<ServerClient> client = ServerClient::Connect(socket_);
      if (!client.ok()) {
        failures[i] = client.status().ToString();
        return;
      }
      // Odd clients bypass the cache (a real mine per request), even
      // clients race it; every reply must carry the same cover.
      const std::string command =
          i % 2 == 1 ? "mine ds nocache=1 threads=" + std::to_string(1 + i % 4)
                     : "mine ds";
      Result<Response> mine = client.value().Call(command);
      if (!mine.ok()) {
        failures[i] = mine.status().ToString();
        return;
      }
      if (!mine.value().ok) {
        failures[i] = mine.value().code + ": " + mine.value().message;
        return;
      }
      bodies[i] = mine.value().body;
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(failures[i].empty()) << "client " << i << ": " << failures[i];
    EXPECT_EQ(bodies[i], expected) << "client " << i;
  }
  const TelemetrySnapshot snapshot = server_->Snapshot();
  EXPECT_GE(snapshot.counters.at("server/connections"),
            static_cast<uint64_t>(kClients));
}

TEST_F(ServerTest, AdmissionControlRejectsBeyondCapacity) {
  StartServer(/*max_connections=*/1);
  ServerClient first = Connect();
  Result<Response> ping = first.Call("ping");
  ASSERT_TRUE(ping.ok());
  ASSERT_TRUE(ping.value().ok);

  // The daemon holds one connection; the next one is answered with a
  // framed rejection and closed, not silently queued.
  {
    ServerClient second = Connect();
    Result<Response> rejected = second.Call("ping");
    ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
    EXPECT_FALSE(rejected.value().ok);
    EXPECT_EQ(rejected.value().code, "ResourceExhausted");
  }
  const TelemetrySnapshot snapshot = server_->Snapshot();
  EXPECT_GE(snapshot.counters.at("server/rejected"), 1u);

  // Releasing the held connection frees the slot (the handler notices
  // the EOF within its poll tick).
  { ServerClient closing = std::move(first); }
  bool reconnected = false;
  for (int attempt = 0; attempt < 100 && !reconnected; ++attempt) {
    Result<ServerClient> retry = ServerClient::Connect(socket_);
    if (retry.ok()) {
      Result<Response> again = retry.value().Call("ping");
      reconnected = again.ok() && again.value().ok;
    }
    if (!reconnected) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(reconnected);
}

TEST_F(ServerTest, MineValidatesItsParameters) {
  StartServer();
  ServerClient client = Connect();
  PutRelation(client, "ds", RandomRelation(4, 20, 3, 5));

  Result<Response> r = client.Call("mine nope");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().code, "NotFound");

  r = client.Call("mine ds algo=bogus");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().code, "InvalidArgument");

  r = client.Call("mine ds arity=abc");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().code, "InvalidArgument");

  r = client.Call("mine ds error=1.5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().code, "InvalidArgument");

  r = client.Call("bogus-verb");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().code, "InvalidArgument");
}

TEST_F(ServerTest, TopKRankingAndProfileAndStats) {
  StartServer();
  ServerClient client = Connect();
  PutRelation(client, "ds", RandomRelation(5, 14, 3, 33));

  Result<Response> topk = client.Call("mine ds topk=3");
  ASSERT_TRUE(topk.ok());
  ASSERT_TRUE(topk.value().ok) << topk.value().message;
  // Ranked output is annotated and never cached (it is a truncation).
  EXPECT_EQ(topk.value().params.at("cached"), "0");
  EXPECT_NE(topk.value().body.find("# redundancy="), std::string::npos);

  Result<Response> profile = client.Call("profile ds");
  ASSERT_TRUE(profile.ok());
  ASSERT_TRUE(profile.value().ok) << profile.value().message;
  EXPECT_EQ(profile.value().params.at("format"), "json");
  EXPECT_FALSE(profile.value().body.empty());

  profile = client.Call("profile ds format=md");
  ASSERT_TRUE(profile.ok());
  ASSERT_TRUE(profile.value().ok);

  profile = client.Call("profile ds format=xml");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().code, "InvalidArgument");

  Result<Response> stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats.value().ok);
  EXPECT_NE(stats.value().body.find("server/requests"), std::string::npos);
  EXPECT_NE(stats.value().body.find("request_latency_ns/MINE"),
            std::string::npos);
}

TEST_F(ServerTest, GracefulDrainLeavesAReopenableCatalog) {
  StartServer();
  {
    ServerClient client = Connect();
    PutRelation(client, "ds", RandomRelation(4, 20, 3, 17));
  }
  StopServer();
  server_.reset();

  // The socket is gone (new connects fail fast instead of hanging) and
  // the catalog the daemon wrote opens cleanly with the dataset intact.
  EXPECT_FALSE(std::filesystem::exists(socket_));
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_TRUE(catalog.value().Contains("ds"));
  EXPECT_TRUE(catalog.value().Get("ds").ok());
}

// ---------------------------------------------------------------------
// Wire-protocol unit coverage (no daemon involved).

TEST(ProtocolTest, FramesRoundTripOverASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payloads[] = {"", "ping", std::string(100000, 'x'),
                                  std::string("line1\nline2\n")};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(SendFrame(fds[0], payload).ok());
    std::string back;
    Result<bool> got = RecvFrame(fds[1], &back);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value());
    EXPECT_EQ(back, payload);
  }
  // Clean EOF at a frame boundary is "no more frames", not an error.
  ::close(fds[0]);
  std::string back;
  Result<bool> got = RecvFrame(fds[1], &back);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
  ::close(fds[1]);
}

TEST(ProtocolTest, RejectsMalformedAndOversizedFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string bogus = "notanumber\n";
  ASSERT_EQ(::send(fds[0], bogus.data(), bogus.size(), 0),
            static_cast<ssize_t>(bogus.size()));
  std::string back;
  EXPECT_FALSE(RecvFrame(fds[1], &back).ok());
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string huge = std::to_string((300ull << 20)) + "\n";
  ASSERT_EQ(::send(fds[0], huge.data(), huge.size(), 0),
            static_cast<ssize_t>(huge.size()));
  Result<bool> got = RecvFrame(fds[1], &back);
  EXPECT_FALSE(got.ok());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolTest, ParsesRequestsAndResponses) {
  Result<Request> request =
      ParseRequest("mine ds algo=tane threads=4\nbody line");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().verb, "MINE");
  ASSERT_EQ(request.value().positional.size(), 1u);
  EXPECT_EQ(request.value().positional[0], "ds");
  EXPECT_EQ(request.value().params.at("algo"), "tane");
  EXPECT_EQ(request.value().params.at("threads"), "4");
  EXPECT_EQ(request.value().body, "body line");

  EXPECT_FALSE(ParseRequest("").ok());

  const std::string ok_payload =
      FormatOk({{"fds", "12"}, {"cached", "1"}}, "A -> B\n");
  Result<Response> ok_response = ParseResponse(ok_payload);
  ASSERT_TRUE(ok_response.ok());
  EXPECT_TRUE(ok_response.value().ok);
  EXPECT_EQ(ok_response.value().params.at("fds"), "12");
  EXPECT_EQ(ok_response.value().params.at("cached"), "1");
  EXPECT_EQ(ok_response.value().body, "A -> B\n");

  const std::string err_payload =
      FormatError(Status::ResourceExhausted("server at capacity"));
  Result<Response> err_response = ParseResponse(err_payload);
  ASSERT_TRUE(err_response.ok());
  EXPECT_FALSE(err_response.value().ok);
  EXPECT_EQ(err_response.value().code, "ResourceExhausted");
  EXPECT_EQ(err_response.value().message, "server at capacity");
}

}  // namespace
}  // namespace depminer
