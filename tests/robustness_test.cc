// Robustness (fuzz-lite) tests: randomly corrupted column files and
// random CSV-ish byte soup must produce clean Status errors or valid
// relations — never crashes, hangs or invariant violations.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "core/dep_miner.h"
#include "fd/fd_io.h"
#include "relation/csv.h"
#include "storage/column_file.h"
#include "storage/streaming.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;

std::string SerializeColumnFile(const Relation& r, const std::string& path) {
  EXPECT_TRUE(WriteColumnFile(r, path).ok());
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class ColumnFileFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnFileFuzz, MutatedFilesNeverCrash) {
  const std::string path =
      ::testing::TempDir() + "/depminer_fuzz_" +
      std::to_string(GetParam()) + ".dmc";
  const Relation r = PaperExampleRelation();
  std::string bytes = SerializeColumnFile(r, path);

  Rng rng(GetParam());
  // Apply a handful of random corruptions: bit flips, truncation,
  // extension.
  const int kind = static_cast<int>(rng.Below(3));
  if (kind == 0) {
    for (int i = 0; i < 8; ++i) {
      const size_t pos = static_cast<size_t>(rng.Below(bytes.size()));
      bytes[pos] = static_cast<char>(rng.Below(256));
    }
  } else if (kind == 1) {
    bytes.resize(static_cast<size_t>(rng.Below(bytes.size())));
  } else {
    for (int i = 0; i < 32; ++i) {
      bytes.push_back(static_cast<char>(rng.Below(256)));
    }
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  Result<Relation> loaded = ReadColumnFile(path);
  std::remove(path.c_str());
  if (loaded.ok()) {
    // A lucky mutation may still parse (e.g. flipped value bytes): the
    // result must be internally consistent and minable.
    const Relation& rel = loaded.value();
    for (TupleId t = 0; t < rel.num_tuples(); ++t) {
      for (AttributeId a = 0; a < rel.num_attributes(); ++a) {
        EXPECT_LT(rel.Code(t, a), rel.DistinctCount(a));
      }
    }
    Result<DepMinerResult> mined = MineDependencies(rel);
    EXPECT_TRUE(mined.ok());
  } else {
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnFileFuzz,
                         ::testing::Range<uint64_t>(0, 40));

class CsvFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzz, RandomBytesEitherParseOrError) {
  Rng rng(GetParam() * 31 + 7);
  std::string soup;
  const size_t length = 1 + rng.Below(400);
  const char alphabet[] = "ab,\"\n\r;x1 \t\\";
  for (size_t i = 0; i < length; ++i) {
    soup.push_back(alphabet[rng.Below(sizeof(alphabet) - 1)]);
  }
  Result<Relation> parsed = ParseCsvRelation(soup);
  if (parsed.ok()) {
    // Whatever parsed must be a well-formed relation and minable.
    EXPECT_GT(parsed.value().num_attributes(), 0u);
    Result<DepMinerResult> mined = MineDependencies(parsed.value());
    EXPECT_TRUE(mined.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz, ::testing::Range<uint64_t>(0, 40));

class StreamingFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingFuzz, RandomBytesEitherExtractOrError) {
  Rng rng(GetParam() * 131 + 3);
  std::string soup;
  const size_t length = 1 + rng.Below(400);
  const char alphabet[] = "ab,\"\n\r;x1 \t\\";
  for (size_t i = 0; i < length; ++i) {
    soup.push_back(alphabet[rng.Below(sizeof(alphabet) - 1)]);
  }
  Result<StreamingExtract> extract = ExtractFromCsvText(soup);
  // The streaming extractor shares the CSV reader with the relation
  // loader: the same soup must be accepted or rejected identically, and
  // an accepted extract must be internally consistent.
  Result<Relation> parsed = ParseCsvRelation(soup);
  EXPECT_EQ(extract.ok(), parsed.ok())
      << "streaming: " << extract.status().ToString()
      << " loader: " << parsed.status().ToString();
  if (extract.ok()) {
    const StreamingExtract& e = extract.value();
    const size_t n = e.schema.num_attributes();
    ASSERT_GT(n, 0u);
    ASSERT_EQ(e.distinct_counts.size(), n);
    ASSERT_EQ(e.value_samples.size(), n);
    for (size_t a = 0; a < n; ++a) {
      EXPECT_LE(e.value_samples[a].size(), e.distinct_counts[a]);
      EXPECT_LE(e.distinct_counts[a], e.num_tuples);
    }
    Result<DepMinerResult> mined =
        MineDependencies(e.partitions, nullptr, DepMinerOptions{});
    EXPECT_TRUE(mined.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingFuzz,
                         ::testing::Range<uint64_t>(0, 40));

class FdTextFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdTextFuzz, RandomFdTextEitherParsesOrErrors) {
  Rng rng(GetParam() * 977 + 11);
  std::string soup;
  const size_t length = 1 + rng.Below(300);
  // Biased toward the .fds grammar so some seeds parse: names, commas,
  // arrows, separators — plus junk.
  const char alphabet[] = "ABC,->;\n #ab2\t\r.";
  for (size_t i = 0; i < length; ++i) {
    soup.push_back(alphabet[rng.Below(sizeof(alphabet) - 1)]);
  }
  Schema schema;
  Result<FdSet> parsed = FdSetFromText(soup, &schema);
  if (parsed.ok()) {
    // Whatever parsed must be in bounds of the schema it announced.
    const size_t n = schema.num_attributes();
    for (const FunctionalDependency& fd : parsed.value().fds()) {
      EXPECT_LT(fd.rhs, n);
      fd.lhs.ForEach([&](AttributeId a) { EXPECT_LT(a, n); });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdTextFuzz,
                         ::testing::Range<uint64_t>(0, 40));

TEST(Robustness, HugeFieldLengthRejected) {
  // A crafted header claiming a multi-GB string must be rejected, not
  // allocated.
  const std::string path = ::testing::TempDir() + "/depminer_huge.dmc";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("DMC1", 4);
    const uint32_t attrs = 1;
    out.write(reinterpret_cast<const char*>(&attrs), 4);
    const uint64_t tuples = 1;
    out.write(reinterpret_cast<const char*>(&tuples), 8);
    const uint32_t name_len = 0xFFFFFFFFu;  // absurd
    out.write(reinterpret_cast<const char*>(&name_len), 4);
  }
  Result<Relation> loaded = ReadColumnFile(path);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace depminer
