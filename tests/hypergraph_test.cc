#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "hypergraph/berge_transversals.h"
#include "hypergraph/levelwise_transversals.h"

namespace depminer {
namespace {

Hypergraph FromLetters(size_t n, const std::vector<std::string>& edges) {
  Hypergraph h(n, {});
  for (const std::string& e : edges) h.AddEdge(AttributeSet::FromLetters(e));
  return h;
}

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> sets) {
  SortSets(&sets);
  return sets;
}

TEST(Hypergraph, IsSimple) {
  EXPECT_TRUE(FromLetters(4, {"AB", "CD"}).IsSimple());
  EXPECT_FALSE(FromLetters(4, {"AB", "ABC"}).IsSimple());  // superset edge
  EXPECT_FALSE(FromLetters(4, {"AB", "AB"}).IsSimple());   // duplicate
  EXPECT_FALSE(FromLetters(4, {"", "AB"}).IsSimple());     // empty edge
  EXPECT_TRUE(Hypergraph(4, {}).IsSimple());               // vacuously
}

TEST(Hypergraph, MinimizedKeepsMinimalEdges) {
  const Hypergraph h =
      FromLetters(5, {"ABC", "AB", "CD", "AB", "ABCD", ""}).Minimized();
  EXPECT_TRUE(h.IsSimple());
  EXPECT_EQ(Sorted(h.edges()),
            Sorted({AttributeSet::FromLetters("AB"),
                    AttributeSet::FromLetters("CD")}));
}

TEST(Hypergraph, VertexSupport) {
  EXPECT_EQ(FromLetters(6, {"AB", "DE"}).VertexSupport(),
            AttributeSet::FromLetters("ABDE"));
}

TEST(Hypergraph, TransversalChecks) {
  const Hypergraph h = FromLetters(4, {"AB", "CD"});
  EXPECT_TRUE(h.IsTransversal(AttributeSet::FromLetters("AC")));
  EXPECT_TRUE(h.IsTransversal(AttributeSet::FromLetters("ABCD")));
  EXPECT_FALSE(h.IsTransversal(AttributeSet::FromLetters("AB")));
  EXPECT_TRUE(h.IsMinimalTransversal(AttributeSet::FromLetters("AC")));
  EXPECT_FALSE(h.IsMinimalTransversal(AttributeSet::FromLetters("ACD")));
}

TEST(Levelwise, PaperExampleAttributeA) {
  // cmax(dep(r), A) = {AC, ABD}: minimal transversals {A, BC, CD}
  // (Example 10).
  const Hypergraph h = FromLetters(5, {"AC", "ABD"});
  EXPECT_EQ(Sorted(LevelwiseMinimalTransversals(h)),
            Sorted({AttributeSet::FromLetters("A"),
                    AttributeSet::FromLetters("BC"),
                    AttributeSet::FromLetters("CD")}));
}

TEST(Levelwise, SingleEdgeGivesSingletons) {
  const Hypergraph h = FromLetters(5, {"BCE"});
  EXPECT_EQ(Sorted(LevelwiseMinimalTransversals(h)),
            Sorted({AttributeSet::FromLetters("B"),
                    AttributeSet::FromLetters("C"),
                    AttributeSet::FromLetters("E")}));
}

TEST(Levelwise, EmptyHypergraphGivesEmptyTransversal) {
  const std::vector<AttributeSet> tr =
      LevelwiseMinimalTransversals(Hypergraph(4, {}));
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_TRUE(tr[0].Empty());
}

TEST(Levelwise, DisjointEdgesGiveCrossProduct) {
  const Hypergraph h = FromLetters(4, {"AB", "CD"});
  EXPECT_EQ(Sorted(LevelwiseMinimalTransversals(h)),
            Sorted({AttributeSet::FromLetters("AC"),
                    AttributeSet::FromLetters("AD"),
                    AttributeSet::FromLetters("BC"),
                    AttributeSet::FromLetters("BD")}));
}

TEST(Levelwise, ReportsStats) {
  LevelwiseStats stats;
  LevelwiseMinimalTransversals(FromLetters(4, {"AB", "CD"}), &stats);
  EXPECT_EQ(stats.transversals_found, 4u);
  EXPECT_GE(stats.levels, 2u);
  EXPECT_GE(stats.candidates_generated, 4u);
}

TEST(Berge, MatchesKnownResult) {
  const Hypergraph h = FromLetters(5, {"AC", "ABD"});
  EXPECT_EQ(Sorted(BergeMinimalTransversals(h)),
            Sorted({AttributeSet::FromLetters("A"),
                    AttributeSet::FromLetters("BC"),
                    AttributeSet::FromLetters("CD")}));
}

TEST(Berge, EmptyHypergraph) {
  const std::vector<AttributeSet> tr =
      BergeMinimalTransversals(Hypergraph(3, {}));
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_TRUE(tr[0].Empty());
}

TEST(DoubleTransversal, NihilpotenceOnSimpleHypergraph) {
  // Tr(Tr(H)) = H for simple hypergraphs [Ber76] — the identity the paper
  // uses in §5.1 to recover cmax from lhs.
  const Hypergraph h = FromLetters(5, {"AC", "ABD"});
  EXPECT_EQ(Sorted(DoubleTransversal(h)), Sorted(h.edges()));
}

/// Pseudo-random hypergraph for the differential sweep.
Hypergraph RandomHypergraph(size_t n, size_t num_edges, uint64_t seed) {
  Hypergraph h(n, {});
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 0xBF58476D1CE4E5B9ull;
  for (size_t e = 0; e < num_edges; ++e) {
    AttributeSet edge;
    for (size_t v = 0; v < n; ++v) {
      x ^= x >> 33;
      x *= 0xFF51AFD7ED558CCDull;
      if ((x & 3) == 0) edge.Add(static_cast<AttributeId>(v));
    }
    if (edge.Empty()) edge.Add(static_cast<AttributeId>(x % n));
    h.AddEdge(edge);
  }
  return h;
}

class TransversalSweep : public ::testing::TestWithParam<uint64_t> {};

// Differential test: the paper's levelwise Algorithm 5 must agree with
// Berge's method on random hypergraphs, and every result must be a
// minimal transversal.
TEST_P(TransversalSweep, LevelwiseAgreesWithBerge) {
  const Hypergraph h = RandomHypergraph(8, 6, GetParam());
  const std::vector<AttributeSet> levelwise =
      Sorted(LevelwiseMinimalTransversals(h));
  const std::vector<AttributeSet> berge = Sorted(BergeMinimalTransversals(h));
  EXPECT_EQ(levelwise, berge);
  const Hypergraph simple = h.Minimized();
  for (const AttributeSet& t : levelwise) {
    EXPECT_TRUE(simple.IsMinimalTransversal(t)) << t.ToString();
  }
}

TEST_P(TransversalSweep, DoubleTransversalIsIdentity) {
  const Hypergraph simple = RandomHypergraph(7, 5, GetParam()).Minimized();
  EXPECT_EQ(Sorted(DoubleTransversal(simple)), Sorted(simple.edges()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransversalSweep,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace depminer
