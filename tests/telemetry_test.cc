/// The observability layer end to end: histogram bucketing and
/// thread-count-invariant merging, the Prometheus / JSON exporters
/// (round-tripped through small parsers, not matched as opaque strings),
/// the structured logger, the live progress tracker and heartbeat, the
/// resource sampler, and the composition of tracing with a tripped run
/// context.

#include "common/telemetry_export.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/parallel.h"
#include "common/progress.h"
#include "common/resource_sampler.h"
#include "common/run_context.h"
#include "common/trace.h"
#include "core/dep_miner.h"
#include "test_util.h"

namespace depminer {
namespace {

// ---------------------------------------------------------------------------
// Histogram semantics

TEST(TraceHistogram, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(TraceHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(TraceHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(TraceHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(TraceHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(TraceHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(TraceHistogram::BucketIndex(1023), 10u);
  EXPECT_EQ(TraceHistogram::BucketIndex(1024), 11u);
  // The last bucket is the overflow bucket, +Inf-bounded.
  EXPECT_EQ(TraceHistogram::BucketIndex(UINT64_MAX),
            TraceHistogram::kBuckets - 1);
  EXPECT_EQ(TraceHistogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(TraceHistogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(TraceHistogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(TraceHistogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(TraceHistogram::BucketUpperBound(TraceHistogram::kBuckets - 1),
            UINT64_MAX);
  // Every value lands in a bucket whose bound brackets it.
  for (uint64_t v : {0ull, 1ull, 7ull, 100ull, 4096ull, 123456789ull}) {
    const size_t i = TraceHistogram::BucketIndex(v);
    EXPECT_LE(v, TraceHistogram::BucketUpperBound(i));
    if (i > 0) {
      EXPECT_GT(v, TraceHistogram::BucketUpperBound(i - 1));
    }
  }
}

/// Records `values` into a session's histogram from `num_threads`
/// threads (round-robin split) and returns the merged result.
TraceHistogram RecordAcrossThreads(const std::vector<uint64_t>& values,
                                   size_t num_threads) {
  TraceSession session;
  session.Start();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&values, t, num_threads] {
      for (size_t i = t; i < values.size(); i += num_threads) {
        TraceHistogramRecord("merge_test/all", values[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  session.Stop();
  auto it = session.histograms().find("merge_test/all");
  EXPECT_NE(it, session.histograms().end());
  return it == session.histograms().end() ? TraceHistogram{} : it->second;
}

TEST(TraceHistogram, MergeIsBitIdenticalAcrossThreadCounts) {
  std::vector<uint64_t> values;
  uint64_t x = 88172645463325252ull;
  for (size_t i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x >> (x % 50));  // all magnitudes, including 0
  }
  const TraceHistogram one = RecordAcrossThreads(values, 1);
  const TraceHistogram two = RecordAcrossThreads(values, 2);
  const TraceHistogram eight = RecordAcrossThreads(values, 8);
  EXPECT_EQ(one.count, values.size());
  EXPECT_TRUE(one == two);
  EXPECT_TRUE(one == eight);
}

// ---------------------------------------------------------------------------
// Prometheus exporter, validated through a real parser

/// One parsed Prometheus sample: name, sorted labels, value.
struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// A minimal parser of the text exposition format: enough to validate
/// names, labels and values (no escapes in label values beyond what the
/// exporter emits).
std::vector<PromSample> ParsePrometheus(const std::string& text,
                                        std::vector<std::string>* types) {
  std::vector<PromSample> samples;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (types != nullptr && line.rfind("# TYPE ", 0) == 0) {
        types->push_back(line.substr(7));
      }
      continue;
    }
    PromSample s;
    size_t name_end = line.find_first_of("{ ");
    EXPECT_NE(name_end, std::string::npos) << line;
    s.name = line.substr(0, name_end);
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      const size_t close = line.find('}', name_end);
      EXPECT_NE(close, std::string::npos) << line;
      std::string body = line.substr(name_end + 1, close - name_end - 1);
      size_t p = 0;
      while (p < body.size()) {
        const size_t eq = body.find('=', p);
        EXPECT_NE(eq, std::string::npos) << line;
        const std::string key = body.substr(p, eq - p);
        EXPECT_EQ(body[eq + 1], '"') << line;
        const size_t endq = body.find('"', eq + 2);
        EXPECT_NE(endq, std::string::npos) << line;
        s.labels[key] = body.substr(eq + 2, endq - eq - 2);
        p = endq + 1;
        if (p < body.size() && body[p] == ',') ++p;
      }
      value_start = close + 1;
    }
    const std::string value_text = line.substr(value_start);
    if (value_text.find("+Inf") != std::string::npos &&
        s.labels.count("le") == 0) {
      ADD_FAILURE() << "+Inf outside a le label: " << line;
    }
    s.value = std::strtod(value_text.c_str(), nullptr);
    samples.push_back(std::move(s));
  }
  return samples;
}

/// Fills `session` with one of everything the exporter handles.
/// (TraceSession is pinned — neither copyable nor movable — so the
/// helper populates in place.)
void PopulateSession(TraceSession* session) {
  session->Start();
  DEPMINER_TRACE_COUNTER("partition_cache.hits", 41);
  DEPMINER_TRACE_GAUGE_MAX("runctx.high_water_bytes", 1 << 20);
  for (uint64_t v = 0; v < 2000; ++v) {
    TraceHistogramRecord("agree_morsel_couples/chunked", v);
  }
  TraceHistogramRecord("phase_duration_ns/agree", 1234567);
  TraceSampleValue("sampler/rss_bytes", 123.0);
  session->Stop();
}

TEST(PrometheusExport, RoundTripsThroughAParser) {
  TraceSession session;
  PopulateSession(&session);
  const std::string text = PrometheusText(session);
  std::vector<std::string> types;
  const std::vector<PromSample> samples = ParsePrometheus(text, &types);
  ASSERT_FALSE(samples.empty());

  // Every exported name carries the depminer_ prefix and only legal chars.
  for (const PromSample& s : samples) {
    EXPECT_EQ(s.name.rfind("depminer_", 0), 0u) << s.name;
    EXPECT_EQ(s.name.find_first_not_of(
                  "abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"),
              std::string::npos)
        << s.name;
  }

  auto find = [&samples](const std::string& name, const char* label_key,
                         const char* label_value) -> const PromSample* {
    for (const PromSample& s : samples) {
      if (s.name != name) continue;
      if (label_key == nullptr) return &s;
      auto it = s.labels.find(label_key);
      if (it != s.labels.end() && it->second == label_value) return &s;
    }
    return nullptr;
  };

  // Counter: _total suffix, declared as a counter.
  const PromSample* hits =
      find("depminer_partition_cache_hits_total", nullptr, nullptr);
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->value, 41.0);

  // Histogram: cumulative buckets ending at +Inf == count, plus sum/count.
  const PromSample* count = find("depminer_agree_morsel_couples_count",
                                 "label", "chunked");
  const PromSample* sum =
      find("depminer_agree_morsel_couples_sum", "label", "chunked");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(count->value, 2000.0);
  EXPECT_EQ(sum->value, 2000.0 * 1999.0 / 2.0);
  double prev = -1.0;
  const PromSample* inf_bucket = nullptr;
  for (const PromSample& s : samples) {
    if (s.name != "depminer_agree_morsel_couples_bucket") continue;
    EXPECT_GE(s.value, prev) << "buckets must be cumulative";
    prev = s.value;
    if (s.labels.at("le") == "+Inf") inf_bucket = &s;
  }
  ASSERT_NE(inf_bucket, nullptr);
  EXPECT_EQ(inf_bucket->value, count->value);

  // The phase_duration family uses the documented `phase` label key.
  EXPECT_NE(find("depminer_phase_duration_ns_count", "phase", "agree"),
            nullptr);

  // Wall clock gauge present; TYPE lines cover the three kinds.
  EXPECT_NE(find("depminer_wall_seconds", nullptr, nullptr), nullptr);
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const std::string& t : types) {
    if (t.find(" counter") != std::string::npos) saw_counter = true;
    if (t.find(" gauge") != std::string::npos) saw_gauge = true;
    if (t.find(" histogram") != std::string::npos) saw_histogram = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
}

TEST(PrometheusExport, EmptySessionStillParses) {
  TraceSession session;
  session.Start();
  session.Stop();
  const std::vector<PromSample> samples =
      ParsePrometheus(PrometheusText(session), nullptr);
  // Only the wall clock — but the document must still be well-formed.
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "depminer_wall_seconds");
}

// ---------------------------------------------------------------------------
// JSON exporter

TEST(TelemetryJsonExport, CarriesVersionAndHistogramShape) {
  TraceSession session;
  PopulateSession(&session);
  const std::string json = TelemetryJson(session);
  EXPECT_NE(json.find("\"telemetry_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"agree_morsel_couples/chunked\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  // Balanced braces/brackets — the cheap structural sanity check (no
  // string in the document contains braces, so raw counting is exact).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsFormatForPath, AcceptsPromAndJsonOnly) {
  ASSERT_TRUE(MetricsFormatForPath("out.prom").ok());
  EXPECT_EQ(MetricsFormatForPath("out.prom").value(),
            MetricsFormat::kPrometheus);
  ASSERT_TRUE(MetricsFormatForPath("out.json").ok());
  EXPECT_EQ(MetricsFormatForPath("out.json").value(), MetricsFormat::kJson);
  EXPECT_FALSE(MetricsFormatForPath("out.txt").ok());
  EXPECT_FALSE(MetricsFormatForPath("out").ok());
  EXPECT_FALSE(MetricsFormatForPath("").ok());
  EXPECT_EQ(MetricsFormatForPath("out.txt").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Structured logger

/// Captures everything logged inside `body` via a temporary sink.
std::string CaptureLog(const std::function<void()>& body) {
  std::FILE* sink = std::tmpfile();
  EXPECT_NE(sink, nullptr);
  SetLogSink(sink);
  body();
  SetLogSink(nullptr);
  std::rewind(sink);
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), sink)) > 0) out.append(buf, n);
  std::fclose(sink);
  return out;
}

TEST(Log, HumanFormatCarriesLevelSubsystemMessageAndFields) {
  const std::string out = CaptureLog([] {
    Log(LogLevel::kWarn, "testsub", "something happened",
        {LogStr("key", "value"), LogNum("n", static_cast<uint64_t>(7))});
  });
  EXPECT_NE(out.find(" W testsub something happened"), std::string::npos)
      << out;
  EXPECT_NE(out.find("key=value"), std::string::npos);
  EXPECT_NE(out.find("n=7"), std::string::npos);
}

TEST(Log, LevelThresholdFilters) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  const std::string out = CaptureLog([] {
    Log(LogLevel::kInfo, "testsub", "dropped");
    Log(LogLevel::kError, "testsub", "kept");
  });
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
}

TEST(Log, JsonLinesAreSelfContainedObjects) {
  SetLogJson(true);
  const std::string out = CaptureLog([] {
    Log(LogLevel::kInfo, "testsub", "a \"quoted\" message\nwith newline",
        {LogStr("path", "/tmp/x"), LogNum("n", static_cast<int64_t>(-3)),
         LogBool("flag", true)});
  });
  SetLogJson(false);
  // One line, one object.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.find('\n'), out.size() - 1);
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out[out.size() - 2], '}');
  EXPECT_NE(out.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(out.find("\"subsystem\":\"testsub\""), std::string::npos);
  // Escaping: the quote and newline must not appear raw.
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\"n\":-3"), std::string::npos);
  EXPECT_NE(out.find("\"flag\":true"), std::string::npos);
}

TEST(Log, ParseLogLevelCoversAllNamesAndRejectsGarbage) {
  EXPECT_EQ(ParseLogLevel("debug").value(), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info").value(), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn").value(), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error").value(), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off").value(), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose").ok());
  EXPECT_FALSE(ParseLogLevel("").ok());
}

// ---------------------------------------------------------------------------
// Progress

TEST(Progress, TracksPhaseTicksAndExpandingTotals) {
  EnableProgressTracking(true);
  ProgressBeginPhase("test_phase", "units", 10);
  ProgressAdvance(3);
  ProgressAdvance(4);
  ProgressSnapshot snap = CurrentProgress();
  EXPECT_TRUE(snap.tracking);
  EXPECT_STREQ(snap.phase, "test_phase");
  EXPECT_STREQ(snap.unit, "units");
  EXPECT_EQ(snap.done, 7u);
  EXPECT_EQ(snap.total, 10u);
  ProgressExpandTotal(20);
  ProgressExpandTotal(15);  // keeps the max
  snap = CurrentProgress();
  EXPECT_EQ(snap.total, 20u);
  ProgressBeginPhase("next_phase", "rows", 0);
  snap = CurrentProgress();
  EXPECT_EQ(snap.done, 0u) << "a new phase resets the counter";
  EXPECT_EQ(snap.total, 0u);
  EnableProgressTracking(false);
  EXPECT_FALSE(CurrentProgress().tracking);
}

TEST(Progress, TicksAreIgnoredWhenTrackingIsOff) {
  EnableProgressTracking(false);
  ProgressBeginPhase("ignored", "units", 5);
  ProgressAdvance(5);
  const ProgressSnapshot snap = CurrentProgress();
  EXPECT_FALSE(snap.tracking);
  EXPECT_EQ(snap.done, 0u);
}

TEST(ProgressHeartbeat, EmitsStartProgressAndDoneEvents) {
  EnableProgressTracking(true);
  ProgressBeginPhase("beat_phase", "units", 100);
  ProgressAdvance(25);
  const std::string out = CaptureLog([] {
    ProgressHeartbeat heartbeat(5);
    heartbeat.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    heartbeat.Stop();
  });
  EnableProgressTracking(false);
  EXPECT_NE(out.find("beat_phase"), std::string::npos) << out;
  EXPECT_NE(out.find("25/100"), std::string::npos) << out;
  EXPECT_NE(out.find("progress"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Resource sampler

TEST(ResourceSampler, FeedsSampledSeriesIntoTheSession) {
  RunContext ctx;
  ctx.SetMemoryBudget(64 << 20);
  ctx.ChargeBytes(1 << 20);
  ResourceSamplerOptions options;
  options.period_ms = 5;
  options.run_context = &ctx;
  TraceSession session;
  session.Start();
  {
    ResourceSampler sampler(options);
    sampler.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    sampler.Stop();
  }
  session.Stop();
  ctx.ReleaseBytes(1 << 20);
  std::map<std::string, size_t> series_counts;
  for (const TraceSampleEvent& s : session.samples()) {
    ++series_counts[s.series];
  }
  EXPECT_GE(series_counts["sampler/runctx_bytes"], 1u);
  EXPECT_GE(series_counts["sampler/runctx_budget_bytes"], 1u);
  EXPECT_GE(series_counts["sampler/pool_queue_depth"], 1u);
#ifdef __linux__
  EXPECT_GE(series_counts["sampler/rss_bytes"], 1u);
  EXPECT_GT(CurrentRssBytes(), 0u);
  EXPECT_GE(session.gauges().at("sampler/rss_peak_bytes"), 1u);
#endif
  // Timestamps are session-relative and non-decreasing per series.
  for (const TraceSampleEvent& s : session.samples()) {
    EXPECT_GE(s.t_ns, 0);
  }
}

TEST(ResourceSampler, IdlesWithoutAnActiveSession) {
  ResourceSamplerOptions options;
  options.period_ms = 1;
  ResourceSampler sampler(options);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.Stop();  // no session: nothing to assert beyond "does not crash"
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Composition: telemetry over a tripped, fault-governed run

TEST(TelemetryComposition, TrippedBudgetMidPhaseStillExportsCleanly) {
  const Relation r = testing::RandomRelation(8, 400, 4, 17);
  RunContext ctx;
  ctx.SetMemoryBudget(1);  // trips at the first charge
  DepMinerOptions options;
  options.run_context = &ctx;
  TraceSession session;
  session.Start();
  Result<DepMinerResult> mined = MineDependencies(r, options);
  session.Stop();
  // The run degrades (complete=false) or fails cleanly; either way the
  // session must merge and both exporters must stay parseable.
  if (mined.ok()) {
    EXPECT_FALSE(mined.value().complete);
  }
  const std::vector<PromSample> samples =
      ParsePrometheus(PrometheusText(session), nullptr);
  EXPECT_FALSE(samples.empty());
  const std::string json = TelemetryJson(session);
  EXPECT_NE(json.find("\"telemetry_version\":1"), std::string::npos);
}

TEST(TelemetryComposition, MinerRunRecordsTheInstrumentedHistograms) {
  const Relation r = testing::RandomRelation(6, 300, 3, 5);
  TraceSession session;
  session.Start();
  DepMinerOptions options;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  session.Stop();
  ASSERT_TRUE(mined.ok());
  // The pipeline's phase timers feed the phase_duration_ns family.
  bool saw_phase_duration = false;
  for (const auto& [name, hist] : session.histograms()) {
    if (name.rfind("phase_duration_ns/", 0) == 0 && hist.count > 0) {
      saw_phase_duration = true;
    }
  }
  EXPECT_TRUE(saw_phase_duration);
}

TEST(WriteMetricsFileTest, WritesBothFormatsAndRejectsUnknown) {
  TraceSession session;
  PopulateSession(&session);
  const std::string dir = ::testing::TempDir();
  const std::string prom_path = dir + "/telemetry_test_out.prom";
  const std::string json_path = dir + "/telemetry_test_out.json";
  ASSERT_TRUE(WriteMetricsFile(session, prom_path).ok());
  ASSERT_TRUE(WriteMetricsFile(session, json_path).ok());
  EXPECT_FALSE(WriteMetricsFile(session, dir + "/out.csv").ok());
  std::FILE* f = std::fopen(prom_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string prom;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) prom.append(buf, n);
  std::fclose(f);
  EXPECT_FALSE(ParsePrometheus(prom, nullptr).empty());
  std::remove(prom_path.c_str());
  std::remove(json_path.c_str());
}

}  // namespace
}  // namespace depminer
