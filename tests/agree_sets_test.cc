#include "core/agree_sets.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;
using ::depminer::testing::SetsToString;

StrippedPartitionDatabase Db(const Relation& r) {
  return StrippedPartitionDatabase::FromRelation(r);
}

TEST(MaximalEquivalenceClasses, DropsContainedClasses) {
  // Column A groups {1,2,3}; column B groups {1,2}; the latter is
  // contained and must not appear in MC.
  Result<Relation> r = MakeRelation({
      {"x", "u"}, {"x", "u"}, {"x", "v"}, {"y", "w"},
  });
  ASSERT_TRUE(r.ok());
  const std::vector<EquivalenceClass> mc =
      MaximalEquivalenceClasses(Db(r.value()));
  ASSERT_EQ(mc.size(), 1u);
  EXPECT_EQ(mc[0], (EquivalenceClass{0, 1, 2}));
}

TEST(MaximalEquivalenceClasses, KeepsOverlappingIncomparableClasses) {
  // {1,2} from A and {1,3} from B overlap without containment.
  Result<Relation> r = MakeRelation({
      {"x", "u"}, {"x", "v"}, {"y", "u"},
  });
  ASSERT_TRUE(r.ok());
  std::vector<EquivalenceClass> mc = MaximalEquivalenceClasses(Db(r.value()));
  std::sort(mc.begin(), mc.end());
  EXPECT_EQ(mc, (std::vector<EquivalenceClass>{{0, 1}, {0, 2}}));
}

TEST(MaximalEquivalenceClasses, DeduplicatesIdenticalClasses) {
  // Columns A and B induce the same class {1,2}.
  Result<Relation> r = MakeRelation({{"x", "u"}, {"x", "u"}, {"y", "v"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(MaximalEquivalenceClasses(Db(r.value())).size(), 1u);
}

TEST(AgreeSets, NaiveOnTinyRelation) {
  Result<Relation> r = MakeRelation({{"1", "a"}, {"1", "b"}, {"2", "b"}});
  ASSERT_TRUE(r.ok());
  const AgreeSetResult result = ComputeAgreeSetsNaive(r.value());
  EXPECT_EQ(SetsToString(result.sets), "A,B");
  EXPECT_TRUE(result.contains_empty);  // tuples 1 and 3 share nothing
  EXPECT_EQ(result.couples_examined, 3u);
}

TEST(AgreeSets, EmptyFlagFalseWhenAllPairsAgreeSomewhere) {
  Result<Relation> r = MakeRelation({{"1", "a"}, {"1", "b"}, {"1", "c"}});
  ASSERT_TRUE(r.ok());
  for (const AgreeSetResult& result :
       {ComputeAgreeSetsNaive(r.value()), ComputeAgreeSetsCouples(Db(r.value())),
        ComputeAgreeSetsIdentifiers(Db(r.value()))}) {
    EXPECT_FALSE(result.contains_empty);
    EXPECT_EQ(SetsToString(result.sets), "A");
  }
}

TEST(AgreeSets, SingleTupleHasNoAgreeSets) {
  Result<Relation> r = MakeRelation({{"1", "a"}});
  ASSERT_TRUE(r.ok());
  for (const AgreeSetResult& result :
       {ComputeAgreeSetsNaive(r.value()), ComputeAgreeSetsCouples(Db(r.value())),
        ComputeAgreeSetsIdentifiers(Db(r.value()))}) {
    EXPECT_TRUE(result.sets.empty());
    EXPECT_FALSE(result.contains_empty);
  }
}

TEST(AgreeSets, EmptyRelation) {
  RelationBuilder b(Schema::Default(2));
  Result<Relation> r = std::move(b).Finish();
  ASSERT_TRUE(r.ok());
  const AgreeSetResult result = ComputeAgreeSetsIdentifiers(Db(r.value()));
  EXPECT_TRUE(result.sets.empty());
  EXPECT_FALSE(result.contains_empty);
}

TEST(AgreeSets, DuplicateTuplesAgreeEverywhere) {
  Result<Relation> r = MakeRelation({{"1", "a"}, {"1", "a"}});
  ASSERT_TRUE(r.ok());
  const AgreeSetResult result = ComputeAgreeSetsCouples(Db(r.value()));
  ASSERT_EQ(result.sets.size(), 1u);
  EXPECT_EQ(result.sets[0], AttributeSet::FromLetters("AB"));
}

TEST(AgreeSets, AllReturnSortedDistinctSets) {
  const Relation r = PaperExampleRelation();
  const AgreeSetResult result = ComputeAgreeSetsIdentifiers(Db(r));
  for (size_t i = 1; i < result.sets.size(); ++i) {
    EXPECT_NE(result.sets[i - 1], result.sets[i]);
  }
}

TEST(AgreeSetsCouples, ChunkingDoesNotChangeResult) {
  const Relation r = RandomRelation(5, 60, 4, 99);
  const StrippedPartitionDatabase db = Db(r);
  const AgreeSetResult unchunked = ComputeAgreeSetsCouples(db);
  for (size_t chunk : {1u, 2u, 7u, 64u, 100000u}) {
    AgreeSetOptions options;
    options.max_couples_per_chunk = chunk;
    const AgreeSetResult chunked = ComputeAgreeSetsCouples(db, options);
    EXPECT_EQ(chunked.sets, unchunked.sets) << "chunk=" << chunk;
    EXPECT_EQ(chunked.contains_empty, unchunked.contains_empty);
    EXPECT_EQ(chunked.couples_examined, unchunked.couples_examined);
    if (chunk < unchunked.couples_examined) {
      EXPECT_GT(chunked.chunks_processed, 1u);
    }
  }
}

TEST(AgreeSetsCouples, MaximalClassAblationGivesSameResult) {
  const Relation r = RandomRelation(6, 80, 3, 123);
  const StrippedPartitionDatabase db = Db(r);
  const AgreeSetResult pruned = ComputeAgreeSetsCouples(db);
  AgreeSetOptions options;
  options.use_maximal_classes = false;
  const AgreeSetResult unpruned = ComputeAgreeSetsCouples(db, options);
  EXPECT_EQ(unpruned.sets, pruned.sets);
  EXPECT_EQ(unpruned.contains_empty, pruned.contains_empty);
  // Couples are deduplicated, so the distinct count is unchanged too.
  EXPECT_EQ(unpruned.couples_examined, pruned.couples_examined);
}

// The parallel engine's promise: both agree-set algorithms produce
// bit-identical results for any thread count (contiguous per-lane
// ranges, lane results merged in slot order before the final
// sort/dedup).
TEST(AgreeSetsParallel, ThreadCountInvariance) {
  const Relation r = RandomRelation(12, 400, 3, 2024);
  const StrippedPartitionDatabase db = Db(r);

  AgreeSetOptions serial;
  serial.num_threads = 1;
  const AgreeSetResult couples_1 = ComputeAgreeSetsCouples(db, serial);
  const AgreeSetResult ids_1 = ComputeAgreeSetsIdentifiers(db, serial);

  for (size_t threads : {2u, 8u}) {
    AgreeSetOptions options;
    options.num_threads = threads;
    const AgreeSetResult couples = ComputeAgreeSetsCouples(db, options);
    EXPECT_EQ(couples.sets, couples_1.sets) << threads << " threads";
    EXPECT_EQ(couples.contains_empty, couples_1.contains_empty);
    EXPECT_EQ(couples.couples_examined, couples_1.couples_examined);
    EXPECT_EQ(couples.chunks_processed, couples_1.chunks_processed);

    const AgreeSetResult ids = ComputeAgreeSetsIdentifiers(db, options);
    EXPECT_EQ(ids.sets, ids_1.sets) << threads << " threads";
    EXPECT_EQ(ids.contains_empty, ids_1.contains_empty);
    EXPECT_EQ(ids.couples_examined, ids_1.couples_examined);
  }
}

// Regression: when the couple count barely exceeds the thread count,
// ceil division hands the last lanes a start past the range end (e.g.
// 9 couples, 8 threads → per-lane 2, lane 5 starts at 10); an unclamped
// lane range underflowed to a ~2^64-element allocation
// (std::length_error). Mirrors `fdtool mine data/customers.csv
// --threads=8`.
TEST(AgreeSetsParallel, MoreThreadsThanLaneCapacityDoesNotOverflow) {
  Result<Relation> r = MakeRelation({{"1", "a", "p"},
                                     {"1", "b", "p"},
                                     {"2", "b", "q"},
                                     {"2", "c", "q"},
                                     {"3", "c", "r"},
                                     {"3", "a", "r"},
                                     {"4", "d", "p"},
                                     {"4", "e", "q"}});
  ASSERT_TRUE(r.ok());
  const StrippedPartitionDatabase db = Db(r.value());
  AgreeSetOptions serial;
  serial.num_threads = 1;
  const AgreeSetResult couples_1 = ComputeAgreeSetsCouples(db, serial);
  const AgreeSetResult ids_1 = ComputeAgreeSetsIdentifiers(db, serial);
  for (size_t threads : {7u, 8u, 13u, 64u}) {
    AgreeSetOptions options;
    options.num_threads = threads;
    const AgreeSetResult couples = ComputeAgreeSetsCouples(db, options);
    EXPECT_EQ(couples.sets, couples_1.sets) << threads << " threads";
    const AgreeSetResult ids = ComputeAgreeSetsIdentifiers(db, options);
    EXPECT_EQ(ids.sets, ids_1.sets) << threads << " threads";
  }
}

TEST(AgreeSetsParallel, ThreadCountInvarianceUnderChunking) {
  const Relation r = RandomRelation(8, 200, 3, 31);
  const StrippedPartitionDatabase db = Db(r);
  AgreeSetOptions serial;
  serial.num_threads = 1;
  serial.max_couples_per_chunk = 97;
  const AgreeSetResult expected = ComputeAgreeSetsCouples(db, serial);
  for (size_t threads : {2u, 8u}) {
    AgreeSetOptions options = serial;
    options.num_threads = threads;
    const AgreeSetResult got = ComputeAgreeSetsCouples(db, options);
    EXPECT_EQ(got.sets, expected.sets) << threads << " threads";
    EXPECT_EQ(got.chunks_processed, expected.chunks_processed);
  }
}

// A context tripped before the run stops every lane at its first couple,
// so even the degraded result is identical at every thread count.
TEST(AgreeSetsParallel, PreCancelledContextIsDeterministicAcrossThreads) {
  const Relation r = RandomRelation(6, 120, 3, 7);
  const StrippedPartitionDatabase db = Db(r);
  for (size_t threads : {1u, 2u, 8u}) {
    RunContext ctx;
    ctx.RequestCancel();
    AgreeSetOptions options;
    options.num_threads = threads;
    options.run_context = &ctx;

    const AgreeSetResult couples = ComputeAgreeSetsCouples(db, options);
    EXPECT_EQ(couples.status.code(), StatusCode::kCancelled)
        << threads << " threads";
    EXPECT_TRUE(couples.sets.empty());
    EXPECT_EQ(couples.chunks_processed, 0u);

    const AgreeSetResult ids = ComputeAgreeSetsIdentifiers(db, options);
    EXPECT_EQ(ids.status.code(), StatusCode::kCancelled);
    EXPECT_TRUE(ids.sets.empty());
  }
}

// A memory budget below the charged working set trips at the first check
// site — before any couple is processed — identically for any thread
// count (the mid-run analogue of the pre-cancelled case: the run is
// under way when the charge lands).
TEST(AgreeSetsParallel, MemoryBudgetTripIsDeterministicAcrossThreads) {
  const Relation r = RandomRelation(6, 120, 3, 7);
  const StrippedPartitionDatabase db = Db(r);
  for (size_t threads : {1u, 2u, 8u}) {
    RunContext ctx;
    ctx.SetMemoryBudget(1);  // below any real working set
    AgreeSetOptions options;
    options.num_threads = threads;
    options.run_context = &ctx;

    const AgreeSetResult couples = ComputeAgreeSetsCouples(db, options);
    EXPECT_EQ(couples.status.code(), StatusCode::kCapacityExceeded)
        << threads << " threads";
    EXPECT_TRUE(couples.sets.empty());
  }
  for (size_t threads : {1u, 2u, 8u}) {
    RunContext ctx;
    ctx.SetMemoryBudget(1);
    AgreeSetOptions options;
    options.num_threads = threads;
    options.run_context = &ctx;
    const AgreeSetResult ids = ComputeAgreeSetsIdentifiers(db, options);
    EXPECT_EQ(ids.status.code(), StatusCode::kCapacityExceeded)
        << threads << " threads";
    EXPECT_TRUE(ids.sets.empty());
  }
}

TEST(MaximalEquivalenceClasses, ThreadCountInvariance) {
  const Relation r = RandomRelation(10, 300, 3, 99);
  const StrippedPartitionDatabase db = Db(r);
  const std::vector<EquivalenceClass> serial =
      MaximalEquivalenceClasses(db, 1);
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(MaximalEquivalenceClasses(db, threads), serial)
        << threads << " threads";
  }
}

TEST(AgreeSetResult, AllPrependsEmptySet) {
  AgreeSetResult r;
  r.sets = {AttributeSet::FromLetters("A")};
  r.contains_empty = true;
  const std::vector<AttributeSet> all = r.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(all[0].Empty());
  r.contains_empty = false;
  EXPECT_EQ(r.All().size(), 1u);
}

TEST(AgreeSetAlgorithm, Names) {
  EXPECT_STREQ(ToString(AgreeSetAlgorithm::kNaive), "naive");
  EXPECT_STREQ(ToString(AgreeSetAlgorithm::kCouples), "couples");
  EXPECT_STREQ(ToString(AgreeSetAlgorithm::kIdentifiers), "identifiers");
}

// Differential sweep: the three algorithms agree on random relations of
// varying shape (Lemma 1 and Lemma 2 in practice).
struct SweepParam {
  size_t attrs;
  size_t tuples;
  size_t domain;
  uint64_t seed;
};

class AgreeSetSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AgreeSetSweep, AlgorithmsAgree) {
  const SweepParam p = GetParam();
  const Relation r = RandomRelation(p.attrs, p.tuples, p.domain, p.seed);
  const StrippedPartitionDatabase db = Db(r);

  const AgreeSetResult naive = ComputeAgreeSetsNaive(r);
  const AgreeSetResult couples = ComputeAgreeSetsCouples(db);
  const AgreeSetResult identifiers = ComputeAgreeSetsIdentifiers(db);

  EXPECT_EQ(couples.sets, naive.sets)
      << "couples=" << SetsToString(couples.sets)
      << " naive=" << SetsToString(naive.sets);
  EXPECT_EQ(identifiers.sets, naive.sets);
  EXPECT_EQ(couples.contains_empty, naive.contains_empty);
  EXPECT_EQ(identifiers.contains_empty, naive.contains_empty);
  // Couple-based algorithms examine the same (deduplicated) couples.
  EXPECT_EQ(couples.couples_examined, identifiers.couples_examined);
  // And never more than the naive all-pairs count.
  EXPECT_LE(couples.couples_examined, naive.couples_examined);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AgreeSetSweep,
    ::testing::Values(
        SweepParam{2, 10, 2, 1}, SweepParam{3, 20, 2, 2},
        SweepParam{4, 30, 3, 3}, SweepParam{5, 50, 4, 4},
        SweepParam{6, 40, 5, 5}, SweepParam{3, 15, 10, 6},
        SweepParam{4, 60, 2, 7}, SweepParam{7, 25, 3, 8},
        SweepParam{5, 80, 8, 9}, SweepParam{2, 100, 3, 10},
        SweepParam{8, 30, 4, 11}, SweepParam{4, 5, 2, 12}));

}  // namespace
}  // namespace depminer
