#include "core/agree_sets.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;
using ::depminer::testing::SetsToString;

StrippedPartitionDatabase Db(const Relation& r) {
  return StrippedPartitionDatabase::FromRelation(r);
}

TEST(MaximalEquivalenceClasses, DropsContainedClasses) {
  // Column A groups {1,2,3}; column B groups {1,2}; the latter is
  // contained and must not appear in MC.
  Result<Relation> r = MakeRelation({
      {"x", "u"}, {"x", "u"}, {"x", "v"}, {"y", "w"},
  });
  ASSERT_TRUE(r.ok());
  const std::vector<EquivalenceClass> mc =
      MaximalEquivalenceClasses(Db(r.value()));
  ASSERT_EQ(mc.size(), 1u);
  EXPECT_EQ(mc[0], (EquivalenceClass{0, 1, 2}));
}

TEST(MaximalEquivalenceClasses, KeepsOverlappingIncomparableClasses) {
  // {1,2} from A and {1,3} from B overlap without containment.
  Result<Relation> r = MakeRelation({
      {"x", "u"}, {"x", "v"}, {"y", "u"},
  });
  ASSERT_TRUE(r.ok());
  std::vector<EquivalenceClass> mc = MaximalEquivalenceClasses(Db(r.value()));
  std::sort(mc.begin(), mc.end());
  EXPECT_EQ(mc, (std::vector<EquivalenceClass>{{0, 1}, {0, 2}}));
}

TEST(MaximalEquivalenceClasses, DeduplicatesIdenticalClasses) {
  // Columns A and B induce the same class {1,2}.
  Result<Relation> r = MakeRelation({{"x", "u"}, {"x", "u"}, {"y", "v"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(MaximalEquivalenceClasses(Db(r.value())).size(), 1u);
}

TEST(AgreeSets, NaiveOnTinyRelation) {
  Result<Relation> r = MakeRelation({{"1", "a"}, {"1", "b"}, {"2", "b"}});
  ASSERT_TRUE(r.ok());
  const AgreeSetResult result = ComputeAgreeSetsNaive(r.value());
  EXPECT_EQ(SetsToString(result.sets), "A,B");
  EXPECT_TRUE(result.contains_empty);  // tuples 1 and 3 share nothing
  EXPECT_EQ(result.couples_examined, 3u);
}

TEST(AgreeSets, EmptyFlagFalseWhenAllPairsAgreeSomewhere) {
  Result<Relation> r = MakeRelation({{"1", "a"}, {"1", "b"}, {"1", "c"}});
  ASSERT_TRUE(r.ok());
  for (const AgreeSetResult& result :
       {ComputeAgreeSetsNaive(r.value()), ComputeAgreeSetsCouples(Db(r.value())),
        ComputeAgreeSetsIdentifiers(Db(r.value()))}) {
    EXPECT_FALSE(result.contains_empty);
    EXPECT_EQ(SetsToString(result.sets), "A");
  }
}

TEST(AgreeSets, SingleTupleHasNoAgreeSets) {
  Result<Relation> r = MakeRelation({{"1", "a"}});
  ASSERT_TRUE(r.ok());
  for (const AgreeSetResult& result :
       {ComputeAgreeSetsNaive(r.value()), ComputeAgreeSetsCouples(Db(r.value())),
        ComputeAgreeSetsIdentifiers(Db(r.value()))}) {
    EXPECT_TRUE(result.sets.empty());
    EXPECT_FALSE(result.contains_empty);
  }
}

TEST(AgreeSets, EmptyRelation) {
  RelationBuilder b(Schema::Default(2));
  Result<Relation> r = std::move(b).Finish();
  ASSERT_TRUE(r.ok());
  const AgreeSetResult result = ComputeAgreeSetsIdentifiers(Db(r.value()));
  EXPECT_TRUE(result.sets.empty());
  EXPECT_FALSE(result.contains_empty);
}

TEST(AgreeSets, DuplicateTuplesAgreeEverywhere) {
  Result<Relation> r = MakeRelation({{"1", "a"}, {"1", "a"}});
  ASSERT_TRUE(r.ok());
  const AgreeSetResult result = ComputeAgreeSetsCouples(Db(r.value()));
  ASSERT_EQ(result.sets.size(), 1u);
  EXPECT_EQ(result.sets[0], AttributeSet::FromLetters("AB"));
}

TEST(AgreeSets, AllReturnSortedDistinctSets) {
  const Relation r = PaperExampleRelation();
  const AgreeSetResult result = ComputeAgreeSetsIdentifiers(Db(r));
  for (size_t i = 1; i < result.sets.size(); ++i) {
    EXPECT_NE(result.sets[i - 1], result.sets[i]);
  }
}

TEST(AgreeSetsCouples, ChunkingDoesNotChangeResult) {
  const Relation r = RandomRelation(5, 60, 4, 99);
  const StrippedPartitionDatabase db = Db(r);
  const AgreeSetResult unchunked = ComputeAgreeSetsCouples(db);
  for (size_t chunk : {1u, 2u, 7u, 64u, 100000u}) {
    AgreeSetOptions options;
    options.max_couples_per_chunk = chunk;
    const AgreeSetResult chunked = ComputeAgreeSetsCouples(db, options);
    EXPECT_EQ(chunked.sets, unchunked.sets) << "chunk=" << chunk;
    EXPECT_EQ(chunked.contains_empty, unchunked.contains_empty);
    EXPECT_EQ(chunked.couples_examined, unchunked.couples_examined);
    if (chunk < unchunked.couples_examined) {
      EXPECT_GT(chunked.chunks_processed, 1u);
    }
  }
}

TEST(AgreeSetsCouples, MaximalClassAblationGivesSameResult) {
  const Relation r = RandomRelation(6, 80, 3, 123);
  const StrippedPartitionDatabase db = Db(r);
  const AgreeSetResult pruned = ComputeAgreeSetsCouples(db);
  AgreeSetOptions options;
  options.use_maximal_classes = false;
  const AgreeSetResult unpruned = ComputeAgreeSetsCouples(db, options);
  EXPECT_EQ(unpruned.sets, pruned.sets);
  EXPECT_EQ(unpruned.contains_empty, pruned.contains_empty);
  // Couples are deduplicated, so the distinct count is unchanged too.
  EXPECT_EQ(unpruned.couples_examined, pruned.couples_examined);
}

TEST(AgreeSetResult, AllPrependsEmptySet) {
  AgreeSetResult r;
  r.sets = {AttributeSet::FromLetters("A")};
  r.contains_empty = true;
  const std::vector<AttributeSet> all = r.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(all[0].Empty());
  r.contains_empty = false;
  EXPECT_EQ(r.All().size(), 1u);
}

TEST(AgreeSetAlgorithm, Names) {
  EXPECT_STREQ(ToString(AgreeSetAlgorithm::kNaive), "naive");
  EXPECT_STREQ(ToString(AgreeSetAlgorithm::kCouples), "couples");
  EXPECT_STREQ(ToString(AgreeSetAlgorithm::kIdentifiers), "identifiers");
}

// Differential sweep: the three algorithms agree on random relations of
// varying shape (Lemma 1 and Lemma 2 in practice).
struct SweepParam {
  size_t attrs;
  size_t tuples;
  size_t domain;
  uint64_t seed;
};

class AgreeSetSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AgreeSetSweep, AlgorithmsAgree) {
  const SweepParam p = GetParam();
  const Relation r = RandomRelation(p.attrs, p.tuples, p.domain, p.seed);
  const StrippedPartitionDatabase db = Db(r);

  const AgreeSetResult naive = ComputeAgreeSetsNaive(r);
  const AgreeSetResult couples = ComputeAgreeSetsCouples(db);
  const AgreeSetResult identifiers = ComputeAgreeSetsIdentifiers(db);

  EXPECT_EQ(couples.sets, naive.sets)
      << "couples=" << SetsToString(couples.sets)
      << " naive=" << SetsToString(naive.sets);
  EXPECT_EQ(identifiers.sets, naive.sets);
  EXPECT_EQ(couples.contains_empty, naive.contains_empty);
  EXPECT_EQ(identifiers.contains_empty, naive.contains_empty);
  // Couple-based algorithms examine the same (deduplicated) couples.
  EXPECT_EQ(couples.couples_examined, identifiers.couples_examined);
  // And never more than the naive all-pairs count.
  EXPECT_LE(couples.couples_examined, naive.couples_examined);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AgreeSetSweep,
    ::testing::Values(
        SweepParam{2, 10, 2, 1}, SweepParam{3, 20, 2, 2},
        SweepParam{4, 30, 3, 3}, SweepParam{5, 50, 4, 4},
        SweepParam{6, 40, 5, 5}, SweepParam{3, 15, 10, 6},
        SweepParam{4, 60, 2, 7}, SweepParam{7, 25, 3, 8},
        SweepParam{5, 80, 8, 9}, SweepParam{2, 100, 3, 10},
        SweepParam{8, 30, 4, 11}, SweepParam{4, 5, 2, 12}));

}  // namespace
}  // namespace depminer
