// Checkpoint tests: the content fingerprint, the DMK1 phase-boundary
// format, and crash-safe resume — a mine interrupted at any pipeline
// phase must resume to the bit-identical cover, at any thread count.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "catalog/fingerprint.h"
#include "common/run_context.h"
#include "core/agree_sets.h"
#include "core/dep_miner.h"
#include "core/lhs.h"
#include "core/max_sets.h"
#include "fault/fault.h"
#include "relation/csv.h"
#include "storage/checkpoint.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;

TEST(FingerprintTest, DeterministicAndContentSensitive) {
  Fingerprinter a, b;
  a.UpdateString("hello");
  b.UpdateString("hello");
  EXPECT_EQ(a.Finish(), b.Finish());
  Fingerprinter c;
  c.UpdateString("hellp");
  EXPECT_NE(a.Finish(), c.Finish());
  EXPECT_EQ(a.Finish().ToHex().size(), 32u);
}

TEST(FingerprintTest, FieldBoundariesAreInjective) {
  // The length-prefixed encoding must distinguish ("ab","c") from
  // ("a","bc") — a plain byte concatenation would not.
  Fingerprinter a, b;
  a.UpdateString("ab");
  a.UpdateString("c");
  b.UpdateString("a");
  b.UpdateString("bc");
  EXPECT_NE(a.Finish(), b.Finish());
}

TEST(FingerprintTest, FileFingerprintTracksContent) {
  const std::string p1 = ::testing::TempDir() + "/fp_a.csv";
  const std::string p2 = ::testing::TempDir() + "/fp_b.csv";
  {
    std::ofstream(p1) << "a,b\n1,2\n";
    std::ofstream(p2) << "a,b\n1,2\n";
  }
  Result<Fingerprint> f1 = FingerprintFile(p1);
  Result<Fingerprint> f2 = FingerprintFile(p2);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f1.value(), f2.value());
  { std::ofstream(p2) << "a,b\n1,3\n"; }
  Result<Fingerprint> f3 = FingerprintFile(p2);
  ASSERT_TRUE(f3.ok());
  EXPECT_NE(f1.value(), f3.value());
  EXPECT_FALSE(FingerprintFile("/nonexistent/file.csv").ok());
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(FingerprintTest, RelationFingerprintSeesSchemaAndCells) {
  const Relation r = PaperExampleRelation();
  EXPECT_EQ(FingerprintRelation(r), FingerprintRelation(r));
}

/// Builds the real pipeline artifacts of the paper relation for the
/// round-trip tests.
struct PipelineArtifacts {
  Relation relation = PaperExampleRelation();
  StrippedPartitionDatabase partitions =
      StrippedPartitionDatabase::FromRelation(relation);
  AgreeSetResult agree = ComputeAgreeSetsCouples(partitions);
  MaxSetResult max_sets = ComputeMaxSets(agree);
  FdSet fds = OutputFds(ComputeLhs(max_sets));
};

JobCheckpoint BaseCheckpoint(const PipelineArtifacts& art) {
  JobCheckpoint ckpt;
  ckpt.fingerprint = FingerprintRelation(art.relation);
  ckpt.algorithm = AgreeSetAlgorithm::kCouples;
  ckpt.schema = art.relation.schema();
  ckpt.num_tuples = art.relation.num_tuples();
  return ckpt;
}

class CheckpointRoundTrip : public ::testing::Test {
 protected:
  std::string Path(const char* name) {
    return ::testing::TempDir() + "/depminer_" + name + ".dmk";
  }
  PipelineArtifacts art_;
};

TEST_F(CheckpointRoundTrip, StripPhase) {
  JobCheckpoint ckpt = BaseCheckpoint(art_);
  ckpt.phase = MinePhase::kStrip;
  ckpt.partitions = art_.partitions;
  const std::string path = Path("strip");
  ASSERT_TRUE(ckpt.Save(path).ok());
  Result<JobCheckpoint> loaded = JobCheckpoint::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().phase, MinePhase::kStrip);
  EXPECT_EQ(loaded.value().fingerprint, ckpt.fingerprint);
  EXPECT_EQ(loaded.value().num_tuples, ckpt.num_tuples);
  ASSERT_EQ(loaded.value().partitions.partitions().size(),
            art_.partitions.partitions().size());
  for (size_t a = 0; a < art_.partitions.partitions().size(); ++a) {
    EXPECT_TRUE(loaded.value().partitions.partitions()[a] ==
                art_.partitions.partitions()[a])
        << "attribute " << a;
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointRoundTrip, AgreePhase) {
  JobCheckpoint ckpt = BaseCheckpoint(art_);
  ckpt.phase = MinePhase::kAgree;
  ckpt.agree = art_.agree;
  const std::string path = Path("agree");
  ASSERT_TRUE(ckpt.Save(path).ok());
  Result<JobCheckpoint> loaded = JobCheckpoint::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().agree.sets, art_.agree.sets);
  EXPECT_EQ(loaded.value().agree.contains_empty, art_.agree.contains_empty);
  EXPECT_EQ(loaded.value().agree.num_tuples, art_.agree.num_tuples);
  EXPECT_EQ(loaded.value().agree.num_attributes, art_.agree.num_attributes);
  std::remove(path.c_str());
}

TEST_F(CheckpointRoundTrip, CmaxPhase) {
  JobCheckpoint ckpt = BaseCheckpoint(art_);
  ckpt.phase = MinePhase::kCmax;
  ckpt.max_sets = art_.max_sets;
  const std::string path = Path("cmax");
  ASSERT_TRUE(ckpt.Save(path).ok());
  Result<JobCheckpoint> loaded = JobCheckpoint::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().max_sets.max_sets, art_.max_sets.max_sets);
  EXPECT_EQ(loaded.value().max_sets.cmax_sets, art_.max_sets.cmax_sets);
  std::remove(path.c_str());
}

TEST_F(CheckpointRoundTrip, CoverPhase) {
  JobCheckpoint ckpt = BaseCheckpoint(art_);
  ckpt.phase = MinePhase::kCover;
  ckpt.fds = art_.fds;
  const std::string path = Path("cover");
  ASSERT_TRUE(ckpt.Save(path).ok());
  Result<JobCheckpoint> loaded = JobCheckpoint::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().fds.fds(), art_.fds.fds());
  std::remove(path.c_str());
}

TEST_F(CheckpointRoundTrip, RejectsCorruptionAndTruncation) {
  JobCheckpoint ckpt = BaseCheckpoint(art_);
  ckpt.phase = MinePhase::kCover;
  ckpt.fds = art_.fds;
  const std::string path = Path("corrupt");
  ASSERT_TRUE(ckpt.Save(path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  // Truncation at every prefix must load cleanly as an error, never
  // crash or return a half-parsed checkpoint.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(len));
    EXPECT_FALSE(JobCheckpoint::Load(path).ok()) << "prefix " << len;
  }
  // Wrong magic.
  bytes[0] = 'X';
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  Result<JobCheckpoint> bad = JobCheckpoint::Load(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
  // Missing file.
  std::remove(path.c_str());
  Result<JobCheckpoint> missing = JobCheckpoint::Load(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointPathTest, AlgorithmsCoexistInOneDirectory) {
  Fingerprint fp;
  fp.hi = 1;
  fp.lo = 2;
  const std::string couples =
      CheckpointPathFor("/tmp/dir", fp, AgreeSetAlgorithm::kCouples);
  const std::string identifiers =
      CheckpointPathFor("/tmp/dir", fp, AgreeSetAlgorithm::kIdentifiers);
  EXPECT_NE(couples, identifiers);
  EXPECT_NE(couples.find(fp.ToHex()), std::string::npos);
  EXPECT_EQ(couples.substr(couples.size() - 4), ".dmk");
}

/// Fixture for end-to-end checkpointed mining over a real CSV.
class CheckpointedMine : public ::testing::Test {
 protected:
  void SetUp() override {
    relation_ = PaperExampleRelation();
    // One directory per test case so a failed assertion in one test
    // cannot leave a checkpoint for the next to wrongly resume from.
    std::string test =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : test) {
      if (c == '/' || c == '-') c = '_';
    }
    csv_path_ = ::testing::TempDir() + "/depminer_ckpt_" + test + ".csv";
    dir_ = ::testing::TempDir() + "/depminer_ckpt_" + test;
    ASSERT_TRUE(WriteCsvRelation(relation_, csv_path_).ok());

    DepMinerOptions options;
    options.build_armstrong = false;
    Result<DepMinerResult> mined = MineDependencies(relation_, options);
    ASSERT_TRUE(mined.ok());
    reference_ = std::move(mined.value().fds);
  }

  void TearDown() override { std::remove(csv_path_.c_str()); }

  CheckpointedMineOptions Options(size_t threads) {
    CheckpointedMineOptions options;
    options.checkpoint_dir = dir_;
    options.num_threads = threads;
    return options;
  }

  Relation relation_;
  FdSet reference_;
  std::string csv_path_;
  std::string dir_;
};

TEST_F(CheckpointedMine, FreshRunMatchesTheInMemoryPipeline) {
  Result<CheckpointedMineResult> mined =
      MineCsvWithCheckpoints(csv_path_, Options(1));
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_TRUE(mined.value().complete);
  EXPECT_EQ(mined.value().resumed_from, MinePhase::kNone);
  EXPECT_EQ(mined.value().fds.fds(), reference_.fds());
  // The finished job is checkpointed at kCover; a re-run just loads it.
  Result<CheckpointedMineResult> again =
      MineCsvWithCheckpoints(csv_path_, Options(1));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().resumed_from, MinePhase::kCover);
  EXPECT_EQ(again.value().fds.fds(), reference_.fds());
  std::remove(mined.value().checkpoint_path.c_str());
}

TEST_F(CheckpointedMine, RejectsNaiveAlgorithmAndEmptyDir) {
  CheckpointedMineOptions options = Options(1);
  options.algorithm = AgreeSetAlgorithm::kNaive;
  EXPECT_FALSE(MineCsvWithCheckpoints(csv_path_, options).ok());
  CheckpointedMineOptions no_dir;
  EXPECT_FALSE(MineCsvWithCheckpoints(csv_path_, no_dir).ok());
}

TEST_F(CheckpointedMine, ContentChangeInvalidatesTheJob) {
  Result<CheckpointedMineResult> first =
      MineCsvWithCheckpoints(csv_path_, Options(1));
  ASSERT_TRUE(first.ok());
  // Appending a tuple changes the fingerprint: the stale checkpoint must
  // not be resumed (it describes a different relation).
  {
    std::ofstream out(csv_path_, std::ios::app);
    out << "8,5,1997,Physics,Kane\n";
  }
  Result<CheckpointedMineResult> second =
      MineCsvWithCheckpoints(csv_path_, Options(1));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().resumed_from, MinePhase::kNone);
  EXPECT_NE(second.value().checkpoint_path, first.value().checkpoint_path);
  std::remove(first.value().checkpoint_path.c_str());
  std::remove(second.value().checkpoint_path.c_str());
}

#if DEPMINER_FAULTS_ENABLED

/// Interrupt the pipeline at a given stage (via an injected allocation
/// failure), then resume without the fault: the resumed cover must be
/// bit-identical to the uninterrupted one, at 1 and at 8 threads.
struct ResumeCase {
  const char* fault_site;    ///< which stage the interruption hits
  MinePhase checkpoint_at;   ///< the phase left on disk by the trip
  size_t threads;
};

class CheckpointResume : public CheckpointedMine,
                         public ::testing::WithParamInterface<ResumeCase> {};

TEST_P(CheckpointResume, ResumesBitIdentically) {
  CheckpointedMineOptions options = Options(GetParam().threads);
  RunContext ctx;
  ctx.SetTimeout(std::chrono::hours(1));
  options.run_context = &ctx;

  std::string checkpoint_path;
  {
    FaultPlan plan;
    plan.site = GetParam().fault_site;
    FaultScope scope(plan);
    Result<CheckpointedMineResult> interrupted =
        MineCsvWithCheckpoints(csv_path_, options);
    ASSERT_TRUE(interrupted.ok()) << interrupted.status().ToString();
    ASSERT_GE(scope.fires(), 1u);
    ASSERT_FALSE(interrupted.value().complete);
    EXPECT_EQ(interrupted.value().run_status.code(),
              StatusCode::kCapacityExceeded);
    checkpoint_path = interrupted.value().checkpoint_path;
  }
  Result<JobCheckpoint> on_disk = JobCheckpoint::Load(checkpoint_path);
  ASSERT_TRUE(on_disk.ok()) << on_disk.status().ToString();
  EXPECT_EQ(on_disk.value().phase, GetParam().checkpoint_at);

  options.run_context = nullptr;
  Result<CheckpointedMineResult> resumed =
      MineCsvWithCheckpoints(csv_path_, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed.value().complete);
  EXPECT_EQ(resumed.value().resumed_from, GetParam().checkpoint_at);
  EXPECT_EQ(resumed.value().fds.fds(), reference_.fds());
  std::remove(checkpoint_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    EveryPhaseBoundary, CheckpointResume,
    ::testing::Values(
        ResumeCase{"alloc/agree", MinePhase::kStrip, 1},
        ResumeCase{"alloc/cmax", MinePhase::kAgree, 1},
        ResumeCase{"alloc/lhs", MinePhase::kCmax, 1},
        ResumeCase{"alloc/agree", MinePhase::kStrip, 8},
        ResumeCase{"alloc/cmax", MinePhase::kAgree, 8},
        ResumeCase{"alloc/lhs", MinePhase::kCmax, 8}),
    [](const ::testing::TestParamInfo<ResumeCase>& info) {
      std::string name = std::string(info.param.fault_site) + "_" +
                         std::to_string(info.param.threads) + "t";
      for (char& c : name) {
        if (c == '/' || c == '-') c = '_';
      }
      return name;
    });

#endif  // DEPMINER_FAULTS_ENABLED

}  // namespace
}  // namespace depminer
