// Cross-module integration tests: CSV → Dep-Miner → normalization →
// Armstrong → re-mining, plus paper-style workloads from the synthetic
// generator, exercising the whole pipeline the way the examples and the
// bench harness do.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "datagen/embedded_fd.h"
#include "datagen/synthetic.h"
#include "fd/keys.h"
#include "fd/normalization.h"
#include "fd/satisfaction.h"
#include "relation/csv.h"
#include "tane/tane.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;

TEST(Integration, CsvToFdsToArmstrongRoundTrip) {
  // A small "employees" CSV: dep -> mgr and dep -> site planted by hand.
  const std::string csv =
      "emp,dep,mgr,site\n"
      "e1,sales,alice,paris\n"
      "e2,sales,alice,paris\n"
      "e3,it,bob,lyon\n"
      "e4,it,bob,lyon\n"
      "e5,hr,carol,paris\n"
      "e6,hr,carol,paris\n";
  Result<Relation> relation = ParseCsvRelation(csv);
  ASSERT_TRUE(relation.ok());

  Result<DepMinerResult> mined = MineDependencies(relation.value());
  ASSERT_TRUE(mined.ok());
  const FdSet& fds = mined.value().fds;
  ASSERT_TRUE(relation.value().schema().Find("dep").ok());
  const AttributeId dep = relation.value().schema().Find("dep").value();
  const AttributeId mgr = relation.value().schema().Find("mgr").value();
  const AttributeId site = relation.value().schema().Find("site").value();
  EXPECT_TRUE(fds.Implies(AttributeSet::Single(dep), mgr));
  EXPECT_TRUE(fds.Implies(AttributeSet::Single(dep), site));

  // The real-world Armstrong sample uses only CSV values and re-mines to
  // the same cover.
  ASSERT_TRUE(mined.value().armstrong.has_value());
  const Relation& sample = *mined.value().armstrong;
  EXPECT_LT(sample.num_tuples(), relation.value().num_tuples());
  Result<DepMinerResult> remined = MineDependencies(sample);
  ASSERT_TRUE(remined.ok());
  EXPECT_EQ(remined.value().fds.fds(), fds.fds());

  // Serialize the sample and parse it back — still Armstrong.
  const std::string out = CsvToString(sample);
  Result<Relation> reparsed = ParseCsvRelation(out);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(IsArmstrongFor(reparsed.value(), mined.value().all_max_sets));
}

TEST(Integration, LogicalTuningWorkflow) {
  // The paper's motivating dba workflow: discover FDs, analyze normal
  // forms, propose a decomposition.
  EmbeddedFdConfig config;
  config.num_attributes = 5;
  config.num_tuples = 400;
  config.fds = {Fd("A", 'B'), Fd("B", 'C')};  // transitive chain
  config.domain_size = 30;
  config.seed = 12;
  Result<Relation> relation = GenerateWithEmbeddedFds(config);
  ASSERT_TRUE(relation.ok());

  Result<DepMinerResult> mined = MineDependencies(relation.value());
  ASSERT_TRUE(mined.ok());
  NormalizationAnalysis analysis(relation.value().schema(),
                                 mined.value().fds);
  // B -> C with B not a key: schema cannot be in BCNF.
  EXPECT_TRUE(mined.value().fds.Implies(Fd("B", 'C')));
  EXPECT_FALSE(IsSuperkey(mined.value().fds, AttributeSet::FromLetters("B")));
  EXPECT_FALSE(analysis.InBcnf());

  const std::vector<DecompositionFragment> fragments =
      analysis.ThirdNfSynthesis();
  ASSERT_FALSE(fragments.empty());
  AttributeSet covered;
  for (const DecompositionFragment& f : fragments) {
    covered = covered.Union(f.attributes);
  }
  EXPECT_EQ(covered, relation.value().universe());
}

TEST(Integration, PaperWorkloadSmallScale) {
  // A miniature cell of the paper's benchmark grid: synthetic data with
  // c = 0.3, compare all three discovery routes and build the Armstrong
  // sample, asserting the relationships the evaluation relies on.
  SyntheticConfig config;
  config.num_attributes = 8;
  config.num_tuples = 500;
  config.identical_rate = 0.3;
  config.seed = 2024;
  Result<Relation> relation = GenerateSynthetic(config);
  ASSERT_TRUE(relation.ok());

  DepMinerOptions couples_options;
  couples_options.agree_set_algorithm = AgreeSetAlgorithm::kCouples;
  Result<DepMinerResult> couples =
      MineDependencies(relation.value(), couples_options);
  ASSERT_TRUE(couples.ok());

  DepMinerOptions ids_options;
  ids_options.agree_set_algorithm = AgreeSetAlgorithm::kIdentifiers;
  ids_options.build_armstrong = false;
  Result<DepMinerResult> identifiers =
      MineDependencies(relation.value(), ids_options);
  ASSERT_TRUE(identifiers.ok());

  Result<TaneResult> tane = TaneDiscover(relation.value());
  ASSERT_TRUE(tane.ok());

  EXPECT_EQ(couples.value().fds.fds(), identifiers.value().fds.fds());
  EXPECT_EQ(couples.value().fds.fds(), tane.value().fds.fds());

  // Every reported FD actually holds and is minimal (spot check on a
  // relation too big for the naive oracle).
  for (const FunctionalDependency& fd : couples.value().fds.fds()) {
    EXPECT_TRUE(Holds(relation.value(), fd)) << fd.ToString();
    EXPECT_TRUE(IsMinimalFd(relation.value(), fd)) << fd.ToString();
  }

  // Armstrong sample is small relative to the input (the paper's 1/100 to
  // 1/10,000 observation scales with size; here just require shrinkage).
  if (couples.value().armstrong.has_value()) {
    EXPECT_LT(couples.value().armstrong->num_tuples(),
              relation.value().num_tuples());
    EXPECT_TRUE(IsArmstrongFor(*couples.value().armstrong,
                               couples.value().all_max_sets));
  }
}

TEST(Integration, WriteAndMineTempCsvFile) {
  SyntheticConfig config;
  config.num_attributes = 5;
  config.num_tuples = 120;
  config.identical_rate = 0.4;
  config.seed = 5;
  Result<Relation> relation = GenerateSynthetic(config);
  ASSERT_TRUE(relation.ok());

  const std::string path = ::testing::TempDir() + "/depminer_integ.csv";
  ASSERT_TRUE(WriteCsvRelation(relation.value(), path).ok());
  Result<Relation> loaded = ReadCsvRelation(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  Result<DepMinerResult> direct = MineDependencies(relation.value());
  Result<DepMinerResult> via_csv = MineDependencies(loaded.value());
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_csv.ok());
  EXPECT_EQ(direct.value().fds.fds(), via_csv.value().fds.fds());
}

// Paper-shape property: Armstrong relation size equals |MAX(dep(r))| + 1
// across generator settings (Definition 1 (2)).
class ArmstrongSizeSweep
    : public ::testing::TestWithParam<std::pair<double, uint64_t>> {};

TEST_P(ArmstrongSizeSweep, SizeIsMaxPlusOne) {
  SyntheticConfig config;
  config.num_attributes = 6;
  config.num_tuples = 300;
  config.identical_rate = GetParam().first;
  config.seed = GetParam().second;
  Result<Relation> relation = GenerateSynthetic(config);
  ASSERT_TRUE(relation.ok());
  Result<DepMinerResult> mined = MineDependencies(relation.value());
  ASSERT_TRUE(mined.ok());
  if (mined.value().armstrong.has_value()) {
    EXPECT_EQ(mined.value().armstrong->num_tuples(),
              mined.value().all_max_sets.size() + 1);
  } else {
    EXPECT_EQ(mined.value().armstrong_status.code(),
              StatusCode::kFailedPrecondition);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rates, ArmstrongSizeSweep,
    ::testing::Values(std::make_pair(0.0, 1ull), std::make_pair(0.1, 2ull),
                      std::make_pair(0.3, 3ull), std::make_pair(0.5, 4ull),
                      std::make_pair(0.8, 5ull), std::make_pair(1.0, 6ull)));

}  // namespace
}  // namespace depminer
