// Tests for ParallelFor and for thread-count invariance of the
// parallelized pipeline stages.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/dep_miner.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::RandomRelation;

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {0u, 1u, 2u, 3u, 8u, 64u}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    ParallelFor(0, 100, threads, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int calls = 0;
  ParallelFor(5, 5, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(7, 8, 4, [&](size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<size_t> sum{0};
  ParallelFor(10, 20, 3, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145u);  // 10 + ... + 19
}

TEST(ParallelFor, DefaultThreadCountPositive) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ParallelFor, StopPredicateHaltsInlineLoop) {
  size_t calls = 0;
  ParallelFor(
      0, 1000, 1, [&](size_t) { ++calls; },
      [&] { return calls >= 10; });
  EXPECT_EQ(calls, 10u);
}

TEST(ParallelFor, StopPredicateHaltsWorkers) {
  std::atomic<size_t> calls{0};
  std::atomic<bool> stop{false};
  ParallelFor(
      0, 100000, 8,
      [&](size_t) {
        if (calls.fetch_add(1) == 50) stop = true;
      },
      [&] { return stop.load(); });
  // Every worker quits at its next poll after the flag flips: well under
  // the full range, but at least the 51 calls it took to flip it.
  EXPECT_GE(calls.load(), 51u);
  EXPECT_LT(calls.load(), 100000u);
}

TEST(ParallelFor, FalseStopPredicateRunsEverything) {
  std::atomic<size_t> calls{0};
  ParallelFor(
      0, 500, 4, [&](size_t) { ++calls; }, [] { return false; });
  EXPECT_EQ(calls.load(), 500u);
}

TEST(ParallelFor, AssertNoThrowPassesThrough) {
  std::atomic<size_t> sum{0};
  ParallelFor(0, 10, 2, AssertNoThrow([&](size_t i) { sum += i; }));
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ParallelPipeline, ThreadCountDoesNotChangeResults) {
  const Relation r = RandomRelation(8, 300, 4, 77);
  DepMinerOptions serial;
  serial.num_threads = 1;
  Result<DepMinerResult> expected = MineDependencies(r, serial);
  ASSERT_TRUE(expected.ok());
  for (size_t threads : {2u, 4u, 16u}) {
    DepMinerOptions options;
    options.num_threads = threads;
    Result<DepMinerResult> got = MineDependencies(r, options);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().fds.fds(), expected.value().fds.fds())
        << threads << " threads";
    EXPECT_EQ(got.value().all_max_sets, expected.value().all_max_sets);
    ASSERT_EQ(got.value().armstrong.has_value(),
              expected.value().armstrong.has_value());
    if (got.value().armstrong.has_value()) {
      EXPECT_EQ(got.value().armstrong->num_tuples(),
                expected.value().armstrong->num_tuples());
    }
  }
}

}  // namespace
}  // namespace depminer
