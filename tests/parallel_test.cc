// Tests for ParallelFor and for thread-count invariance of the
// parallelized pipeline stages.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/rng.h"
#include "core/dep_miner.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::RandomRelation;

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {0u, 1u, 2u, 3u, 8u, 64u}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    ParallelFor(0, 100, threads, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int calls = 0;
  ParallelFor(5, 5, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(7, 8, 4, [&](size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<size_t> sum{0};
  ParallelFor(10, 20, 3, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145u);  // 10 + ... + 19
}

TEST(ParallelFor, DefaultThreadCountPositive) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ParallelFor, StopPredicateHaltsInlineLoop) {
  size_t calls = 0;
  ParallelFor(
      0, 1000, 1, [&](size_t) { ++calls; },
      [&] { return calls >= 10; });
  EXPECT_EQ(calls, 10u);
}

TEST(ParallelFor, StopPredicateHaltsWorkers) {
  std::atomic<size_t> calls{0};
  std::atomic<bool> stop{false};
  ParallelFor(
      0, 100000, 8,
      [&](size_t) {
        if (calls.fetch_add(1) == 50) stop = true;
      },
      [&] { return stop.load(); });
  // Every worker quits at its next poll after the flag flips: well under
  // the full range, but at least the 51 calls it took to flip it.
  EXPECT_GE(calls.load(), 51u);
  EXPECT_LT(calls.load(), 100000u);
}

TEST(ParallelFor, FalseStopPredicateRunsEverything) {
  std::atomic<size_t> calls{0};
  ParallelFor(
      0, 500, 4, [&](size_t) { ++calls; }, [] { return false; });
  EXPECT_EQ(calls.load(), 500u);
}

TEST(ParallelFor, AssertNoThrowPassesThrough) {
  std::atomic<size_t> sum{0};
  ParallelFor(0, 10, 2, AssertNoThrow([&](size_t i) { sum += i; }));
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ParallelPool, ReusesWorkersAcrossCalls) {
  // Warm the pool up to 4 lanes (3 helpers), then hammer it: the
  // persistent pool must serve every later 4-lane loop with the same
  // workers instead of spawning fresh threads per call.
  std::atomic<size_t> sum{0};
  ParallelFor(0, 64, 4, [&](size_t i) { sum += i; });
  const size_t started = PoolWorkersStarted();
  EXPECT_GE(started, 1u);
  for (int round = 0; round < 50; ++round) {
    ParallelFor(0, 64, 4, [&](size_t i) { sum += i; });
  }
  EXPECT_EQ(PoolWorkersStarted(), started);
}

TEST(ParallelPool, RunsFullyAfterAStoppedLoop) {
  // Regression: a loop abandoned by its stop predicate must leave the
  // pool fully functional — no stuck queue entries, no lost workers.
  std::atomic<bool> stop{false};
  std::atomic<size_t> first{0};
  ParallelFor(
      0, 100000, 8,
      [&](size_t) {
        if (first.fetch_add(1) == 20) stop = true;
      },
      [&] { return stop.load(); });
  EXPECT_LT(first.load(), 100000u);

  std::vector<std::atomic<int>> hits(5000);
  for (auto& h : hits) h = 0;
  ParallelFor(0, hits.size(), 8, [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForSlotted, SlotsAreBoundedAndConcurrentlyDistinct) {
  constexpr size_t kThreads = 8;
  constexpr size_t kCount = 20000;
  std::vector<std::atomic<bool>> in_use(kThreads);
  for (auto& f : in_use) f = false;
  std::atomic<bool> collision{false};
  std::atomic<size_t> calls{0};
  ParallelForSlotted(0, kCount, kThreads, [&](size_t slot, size_t) {
    ASSERT_LT(slot, kThreads);
    // Two lanes sharing a slot would trip this exchange.
    if (in_use[slot].exchange(true)) collision = true;
    calls.fetch_add(1);
    in_use[slot].store(false);
  });
  EXPECT_FALSE(collision.load());
  EXPECT_EQ(calls.load(), kCount);
}

TEST(ParallelForSlotted, NestedLoopRunsInlineWithoutDeadlock) {
  std::atomic<size_t> total{0};
  ParallelFor(0, 8, 4, [&](size_t) {
    // A nested parallel loop inside a pool lane must degrade to an
    // inline loop rather than block on the pool it is running on.
    ParallelFor(0, 100, 4, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 800u);
}

TEST(ParallelSort, MatchesStdSortAtEveryThreadCount) {
  Rng rng(7);
  std::vector<uint64_t> data(100000);
  for (uint64_t& v : data) v = rng.Next() % 5000;  // plenty of duplicates
  std::vector<uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  for (size_t threads : {1u, 2u, 8u}) {
    std::vector<uint64_t> got = data;
    ParallelSort(got.begin(), got.end(), threads);
    EXPECT_EQ(got, expected) << threads << " threads";
  }
}

TEST(ParallelPipeline, ThreadCountDoesNotChangeResults) {
  const Relation r = RandomRelation(8, 300, 4, 77);
  DepMinerOptions serial;
  serial.num_threads = 1;
  Result<DepMinerResult> expected = MineDependencies(r, serial);
  ASSERT_TRUE(expected.ok());
  for (size_t threads : {2u, 4u, 16u}) {
    DepMinerOptions options;
    options.num_threads = threads;
    Result<DepMinerResult> got = MineDependencies(r, options);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().fds.fds(), expected.value().fds.fds())
        << threads << " threads";
    EXPECT_EQ(got.value().all_max_sets, expected.value().all_max_sets);
    ASSERT_EQ(got.value().armstrong.has_value(),
              expected.value().armstrong.has_value());
    if (got.value().armstrong.has_value()) {
      EXPECT_EQ(got.value().armstrong->num_tuples(),
                expected.value().armstrong->num_tuples());
    }
  }
}

}  // namespace
}  // namespace depminer
