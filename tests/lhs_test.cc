// Dedicated tests for the LEFT_HAND_SIDE stage (Algorithm 5 applied per
// attribute) and FD_OUTPUT (Algorithm 6), beyond the worked-example
// assertions in paper_example_test.cc.

#include "core/lhs.h"

#include <gtest/gtest.h>

#include "core/agree_sets.h"
#include "core/max_sets.h"
#include "hypergraph/berge_transversals.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::RandomRelation;
using ::depminer::testing::Sets;

LhsResult LhsOf(const Relation& r) {
  return ComputeLhs(ComputeMaxSets(ComputeAgreeSetsIdentifiers(
      StrippedPartitionDatabase::FromRelation(r))));
}

TEST(Lhs, ConstantAttributeGetsEmptyLhs) {
  Result<Relation> r = MakeRelation({{"c", "1"}, {"c", "2"}});
  ASSERT_TRUE(r.ok());
  const LhsResult lhs = LhsOf(r.value());
  // lhs(A) = {∅}: cmax(A) is empty and the empty transversal covers it.
  ASSERT_EQ(lhs.lhs[0].size(), 1u);
  EXPECT_TRUE(lhs.lhs[0][0].Empty());
}

TEST(Lhs, AllDisagreeGivesAllSingletons) {
  Result<Relation> r = MakeRelation({{"1", "x", "p"}, {"2", "y", "q"}});
  ASSERT_TRUE(r.ok());
  const LhsResult lhs = LhsOf(r.value());
  for (AttributeId a = 0; a < 3; ++a) {
    EXPECT_EQ(lhs.lhs[a], Sets({"A", "B", "C"})) << "attribute " << a;
  }
}

TEST(Lhs, FamiliesAreAntichains) {
  const Relation r = RandomRelation(6, 60, 3, 5);
  const LhsResult lhs = LhsOf(r);
  for (AttributeId a = 0; a < 6; ++a) {
    for (const AttributeSet& x : lhs.lhs[a]) {
      for (const AttributeSet& y : lhs.lhs[a]) {
        if (x != y) {
          EXPECT_FALSE(x.IsSubsetOf(y))
              << x.ToString() << " ⊆ " << y.ToString();
        }
      }
    }
  }
}

TEST(Lhs, TrivialSingletonOnlyTrivialLhsContainingAttribute) {
  const Relation r = RandomRelation(5, 50, 3, 9);
  const LhsResult lhs = LhsOf(r);
  // The only lhs of A that may contain A is {A} itself (every cmax edge
  // contains A, so {A} is a transversal and any other set containing A is
  // a non-minimal superset).
  for (AttributeId a = 0; a < 5; ++a) {
    for (const AttributeSet& x : lhs.lhs[a]) {
      if (x.Contains(a)) {
        EXPECT_EQ(x, AttributeSet::Single(a));
      }
    }
  }
}

TEST(Lhs, MatchesBergeTransversalsOfCmax) {
  const Relation r = RandomRelation(6, 80, 4, 13);
  const MaxSetResult max = ComputeMaxSets(ComputeAgreeSetsIdentifiers(
      StrippedPartitionDatabase::FromRelation(r)));
  const LhsResult lhs = ComputeLhs(max);
  for (AttributeId a = 0; a < 6; ++a) {
    std::vector<AttributeSet> berge = BergeMinimalTransversals(
        Hypergraph(6, max.cmax_sets[a]));
    SortSets(&berge);
    EXPECT_EQ(lhs.lhs[a], berge) << "attribute " << a;
  }
}

TEST(Lhs, StatsAccumulateAcrossAttributes) {
  const Relation r = RandomRelation(5, 40, 3, 21);
  const LhsResult lhs = LhsOf(r);
  size_t total_lhs = 0;
  for (const auto& family : lhs.lhs) total_lhs += family.size();
  EXPECT_EQ(lhs.stats.transversals_found, total_lhs);
  EXPECT_GE(lhs.stats.candidates_generated, total_lhs);
}

TEST(OutputFds, FiltersExactlyTheTrivialSingleton) {
  LhsResult lhs;
  lhs.num_attributes = 3;
  lhs.lhs.resize(3);
  lhs.lhs[0] = Sets({"A", "BC"});  // {A} filtered, BC kept
  lhs.lhs[1] = Sets({""});         // constant: ∅ → B kept
  lhs.lhs[2] = Sets({"B"});        // B → C kept
  const FdSet fds = OutputFds(lhs);
  ASSERT_EQ(fds.size(), 3u) << fds.ToString();
  EXPECT_EQ(fds.fds()[0], Fd("BC", 'A'));
  EXPECT_EQ(fds.fds()[1], Fd("", 'B'));
  EXPECT_EQ(fds.fds()[2], Fd("B", 'C'));
}

TEST(OutputFds, EmptyLhsFamiliesGiveNoFds) {
  LhsResult lhs;
  lhs.num_attributes = 2;
  lhs.lhs.resize(2);
  EXPECT_TRUE(OutputFds(lhs).Empty());
}

}  // namespace
}  // namespace depminer
