#include "fd/closed_sets.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;
using ::depminer::testing::Sets;
using ::depminer::testing::SetsToString;

/// Reference enumeration: all 2^n subsets, keep the closed ones.
std::vector<AttributeSet> ClosedSetsBruteForce(const FdSet& fds) {
  const size_t n = fds.num_attributes();
  std::vector<AttributeSet> out;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    AttributeSet x;
    for (AttributeId a = 0; a < n; ++a) {
      if (mask & (1u << a)) x.Add(a);
    }
    if (IsClosed(fds, x)) out.push_back(x);
  }
  SortSets(&out);
  return out;
}

TEST(ClosedSets, SimpleChain) {
  // F = {A->B}: closed sets of ABC are ∅, B, C, BC, AB, ABC.
  FdSet f(3, {Fd("A", 'B')});
  EXPECT_EQ(ClosedSets(f), Sets({"", "B", "C", "AB", "BC", "ABC"}));
}

TEST(ClosedSets, ConstantAttributeExcludesEmptySet) {
  FdSet f(2, {Fd("", 'A')});
  const std::vector<AttributeSet> closed = ClosedSets(f);
  for (const AttributeSet& x : closed) {
    EXPECT_TRUE(x.Contains(0)) << x.ToString();  // ∅⁺ = A, so all contain A
  }
}

TEST(ClosedSets, NoFdsMeansPowerSet) {
  FdSet f(3);
  EXPECT_EQ(ClosedSets(f).size(), 8u);
}

TEST(ClosedSets, ClosedUnderIntersection) {
  FdSet f(4, {Fd("A", 'B'), Fd("CD", 'A'), Fd("B", 'D')});
  const std::vector<AttributeSet> closed = ClosedSets(f);
  for (const AttributeSet& x : closed) {
    for (const AttributeSet& y : closed) {
      const AttributeSet meet = x.Intersect(y);
      EXPECT_TRUE(std::find(closed.begin(), closed.end(), meet) !=
                  closed.end())
          << meet.ToString();
    }
  }
}

TEST(Generators, EveryClosedSetIsAMeetOfGenerators) {
  FdSet f(4, {Fd("A", 'B'), Fd("B", 'C')});
  const std::vector<AttributeSet> closed = ClosedSets(f);
  const std::vector<AttributeSet> gen = Generators(f);
  const AttributeSet universe = AttributeSet::Universe(4);
  for (const AttributeSet& x : closed) {
    AttributeSet meet = universe;
    for (const AttributeSet& g : gen) {
      if (x.IsSubsetOf(g)) meet = meet.Intersect(g);
    }
    EXPECT_EQ(meet, x) << x.ToString();
  }
  // And generators are a subfamily of the closed sets.
  for (const AttributeSet& g : gen) {
    EXPECT_TRUE(IsClosed(f, g));
  }
}

TEST(ClosedSets, PaperExampleGenerators) {
  // For the §3 example, GEN(dep(r)) = MAX(dep(r)) = {A, BDE, CE}.
  const Relation r = PaperExampleRelation();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(Generators(mined.value().fds), Sets({"A", "BDE", "CE"}));
}

// The theorem the whole Armstrong construction rests on ([MR86, MR94b],
// paper §2): MAX(dep(r)) = GEN(dep(r)). Checked on random relations with
// MAX from the Dep-Miner pipeline and GEN from the closed-set lattice.
class MaxEqualsGenSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxEqualsGenSweep, MaxSetsAreGenerators) {
  const uint64_t seed = GetParam();
  const Relation r =
      RandomRelation(3 + seed % 4, 20 + 5 * (seed % 5), 2 + seed % 4, seed);
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const std::vector<AttributeSet> gen = Generators(mined.value().fds);
  EXPECT_EQ(mined.value().all_max_sets, gen)
      << "MAX " << SetsToString(mined.value().all_max_sets) << " GEN "
      << SetsToString(gen);
}

TEST_P(MaxEqualsGenSweep, NextClosureMatchesBruteForce) {
  const uint64_t seed = GetParam();
  const Relation r = RandomRelation(4, 20, 3, seed);
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(ClosedSets(mined.value().fds),
            ClosedSetsBruteForce(mined.value().fds));
}

// [BDFS84]'s Armstrong criterion, run against the closed-set machinery:
// GEN(F) ⊆ ag(r̄) ⊆ CL(F) for the relations our builders emit.
TEST_P(MaxEqualsGenSweep, ArmstrongAgreeSetsAreClosed) {
  const uint64_t seed = GetParam();
  const Relation r = RandomRelation(4, 30, 3, seed);
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  Result<Relation> built =
      BuildSyntheticArmstrong(r.schema(), mined.value().all_max_sets);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const Relation& armstrong = built.value();
  const std::vector<AttributeSet> closed = ClosedSets(mined.value().fds);
  for (TupleId i = 0; i < armstrong.num_tuples(); ++i) {
    for (TupleId j = i + 1; j < armstrong.num_tuples(); ++j) {
      const AttributeSet ag = armstrong.AgreeSetOf(i, j);
      EXPECT_TRUE(std::find(closed.begin(), closed.end(), ag) != closed.end())
          << ag.ToString() << " not closed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxEqualsGenSweep,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace depminer
