# Scripted CLI test for `fdtool datagen`: write a tiny paper-scale corpus
# point, then mine it with telemetry on and check the exported Prometheus
# file exists and looks like text exposition.

set(CSV ${WORK}/cli_datagen.csv)
set(PROM ${WORK}/cli_datagen.prom)
file(REMOVE ${CSV} ${PROM})

execute_process(COMMAND ${FDTOOL} datagen ${CSV} --corpus-scale=0.001
                        --spec=tuples
                RESULT_VARIABLE gen_result ERROR_VARIABLE gen_log)
if(NOT gen_result EQUAL 0)
  message(FATAL_ERROR "datagen failed (${gen_result}): ${gen_log}")
endif()
if(NOT EXISTS ${CSV})
  message(FATAL_ERROR "datagen did not write ${CSV}")
endif()

# A custom (non-corpus) relation is also reproducible.
execute_process(COMMAND ${FDTOOL} datagen ${WORK}/cli_datagen_custom.csv
                        --tuples=100 --attributes=5 --identical-rate=0.5
                RESULT_VARIABLE custom_result)
if(NOT custom_result EQUAL 0)
  message(FATAL_ERROR "custom datagen failed: ${custom_result}")
endif()

# An unknown spec name is a usage error (exit 2), listing the grid.
execute_process(COMMAND ${FDTOOL} datagen ${CSV} --corpus-scale=0.001
                        --spec=nonexistent-spec
                RESULT_VARIABLE bad_result)
if(NOT bad_result EQUAL 2)
  message(FATAL_ERROR "unknown --spec should exit 2, got ${bad_result}")
endif()

execute_process(COMMAND ${FDTOOL} mine ${CSV} --threads=2
                        --metrics-out=${PROM} --progress
                RESULT_VARIABLE mine_result ERROR_VARIABLE mine_log)
if(NOT mine_result EQUAL 0)
  message(FATAL_ERROR "mine over datagen output failed: ${mine_log}")
endif()
if(NOT EXISTS ${PROM})
  message(FATAL_ERROR "mine did not write ${PROM}")
endif()
file(READ ${PROM} prom_text)
if(NOT prom_text MATCHES "# TYPE depminer_")
  message(FATAL_ERROR "no TYPE headers in ${PROM}")
endif()

file(REMOVE ${CSV} ${WORK}/cli_datagen_custom.csv ${PROM})
