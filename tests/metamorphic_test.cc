// Metamorphic properties of all five miners: transformations of the input
// relation that provably leave dep(r) — and with it the canonical set of
// minimal non-trivial FDs — invariant (or map it through a known
// renaming). Run at 1 and 8 pool lanes for the thread-aware miners.
//
//   - row shuffling        (dep(r) is set-of-tuples semantics)
//   - column permutation   (dep(π(r)) = π(dep(r)))
//   - duplicate-row injection (agree sets gain only R, already implied)
//   - empty / single-row relations (every FD holds; all miners agree)

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dep_miner.h"
#include "fastfds/fastfds.h"
#include "fdep/fdep.h"
#include "relation/relation_builder.h"
#include "relation/relation_ops.h"
#include "tane/tane.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

struct MinerParam {
  std::string name;
  size_t threads;
};

std::string ParamName(const ::testing::TestParamInfo<MinerParam>& info) {
  return info.param.name + "_" + std::to_string(info.param.threads) + "t";
}

/// Canonical minimal cover from the given miner. All five emit exactly
/// the set of minimal non-trivial FDs, so outputs are comparable with
/// plain equality, not just cover equivalence.
FdSet MineCover(const MinerParam& p, const Relation& r) {
  if (p.name == "tane") {
    TaneOptions options;
    options.num_threads = p.threads;
    Result<TaneResult> mined = TaneDiscover(r, options);
    EXPECT_TRUE(mined.ok()) << mined.status().ToString();
    return mined.ok() ? mined.value().fds : FdSet();
  }
  if (p.name == "fastfds") {
    Result<FastFdsResult> mined = FastFdsDiscover(r);
    EXPECT_TRUE(mined.ok()) << mined.status().ToString();
    return mined.ok() ? mined.value().fds : FdSet();
  }
  if (p.name == "fdep") {
    Result<FdepResult> mined = FdepDiscover(r);
    EXPECT_TRUE(mined.ok()) << mined.status().ToString();
    return mined.ok() ? mined.value().fds : FdSet();
  }
  DepMinerOptions options;
  options.build_armstrong = false;
  options.num_threads = p.threads;
  options.agree_set_algorithm = p.name == "depminer2"
                                    ? AgreeSetAlgorithm::kIdentifiers
                                    : AgreeSetAlgorithm::kCouples;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  EXPECT_TRUE(mined.ok()) << mined.status().ToString();
  return mined.ok() ? mined.value().fds : FdSet();
}

/// Deterministic row permutation of `r`.
Relation ShuffleRows(const Relation& r, uint64_t seed) {
  std::vector<TupleId> order(r.num_tuples());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Below(i)]);
  }
  Result<Relation> shuffled = SelectRows(r, order);
  EXPECT_TRUE(shuffled.ok());
  return std::move(shuffled).value();
}

/// Relation with attribute `perm[j]` of `r` at position `j`, names moved
/// along with the data.
Relation PermuteColumns(const Relation& r,
                        const std::vector<AttributeId>& perm) {
  std::vector<std::string> names(perm.size());
  for (size_t j = 0; j < perm.size(); ++j) {
    names[j] = r.schema().name(perm[j]);
  }
  RelationBuilder builder{Schema(names)};
  std::vector<std::string> row(perm.size());
  for (TupleId t = 0; t < r.num_tuples(); ++t) {
    for (size_t j = 0; j < perm.size(); ++j) {
      row[j] = r.Value(t, perm[j]);
    }
    EXPECT_TRUE(builder.AddRow(row).ok());
  }
  Result<Relation> permuted = std::move(builder).Finish();
  EXPECT_TRUE(permuted.ok());
  return std::move(permuted).value();
}

/// Maps a cover through the same column permutation: attribute `perm[j]`
/// is renamed to `j`.
FdSet MapCover(const FdSet& cover, const std::vector<AttributeId>& perm) {
  std::vector<AttributeId> inverse(perm.size());
  for (size_t j = 0; j < perm.size(); ++j) inverse[perm[j]] = j;
  FdSet mapped(cover.num_attributes());
  for (const FunctionalDependency& fd : cover.fds()) {
    FunctionalDependency m;
    m.rhs = inverse[fd.rhs];
    for (AttributeId a = 0; a < perm.size(); ++a) {
      if (fd.lhs.Contains(a)) m.lhs.Add(inverse[a]);
    }
    mapped.Add(m);
  }
  mapped.Normalize();
  return mapped;
}

class Metamorphic : public ::testing::TestWithParam<MinerParam> {
 protected:
  std::vector<Relation> BaseRelations() {
    std::vector<Relation> bases;
    bases.push_back(PaperExampleRelation());
    bases.push_back(RandomRelation(4, 20, 3, 11));
    bases.push_back(RandomRelation(5, 16, 2, 23));
    return bases;
  }
};

TEST_P(Metamorphic, RowShufflingLeavesTheCoverInvariant) {
  for (const Relation& r : BaseRelations()) {
    const FdSet expected = MineCover(GetParam(), r);
    for (uint64_t seed : {1ull, 2ull}) {
      const FdSet shuffled = MineCover(GetParam(), ShuffleRows(r, seed));
      EXPECT_EQ(shuffled.fds(), expected.fds())
          << "row shuffle (seed " << seed << ") changed the cover";
    }
  }
}

TEST_P(Metamorphic, ColumnPermutationRenamesTheCover) {
  for (const Relation& r : BaseRelations()) {
    const FdSet expected = MineCover(GetParam(), r);
    std::vector<AttributeId> perm(r.num_attributes());
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(5);
    for (size_t rounds = 0; rounds < 2; ++rounds) {
      for (size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.Below(i)]);
      }
      const FdSet mined = MineCover(GetParam(), PermuteColumns(r, perm));
      EXPECT_EQ(mined.fds(), MapCover(expected, perm).fds())
          << "column permutation did not commute with mining";
    }
  }
}

TEST_P(Metamorphic, DuplicateRowInjectionLeavesTheCoverInvariant) {
  for (const Relation& r : BaseRelations()) {
    const FdSet expected = MineCover(GetParam(), r);
    // Duplicate every row once, then a prefix once more.
    Result<Relation> doubled = ConcatRelations(r, r);
    ASSERT_TRUE(doubled.ok());
    std::vector<TupleId> prefix;
    for (TupleId t = 0; t < r.num_tuples() / 2; ++t) prefix.push_back(t);
    if (!prefix.empty()) {
      Result<Relation> extra = SelectRows(r, prefix);
      ASSERT_TRUE(extra.ok());
      doubled = ConcatRelations(doubled.value(), extra.value());
      ASSERT_TRUE(doubled.ok());
    }
    const FdSet mined = MineCover(GetParam(), doubled.value());
    EXPECT_EQ(mined.fds(), expected.fds())
        << "duplicate rows changed the cover";
  }
}

TEST_P(Metamorphic, EmptyAndSingleRowRelationsMatchTheReference) {
  // In both cases every FD holds vacuously; all miners must emit the
  // same canonical cover as the reference implementation (Dep-Miner
  // serial), and duplicating a single row must not change it.
  for (size_t attrs : {1u, 3u, 5u}) {
    RelationBuilder empty_builder(Schema::Default(attrs));
    Result<Relation> empty = std::move(empty_builder).Finish();
    ASSERT_TRUE(empty.ok());

    std::vector<std::string> row(attrs, "x");
    Result<Relation> single = MakeRelation(Schema::Default(attrs), {row});
    ASSERT_TRUE(single.ok());
    Result<Relation> twice =
        MakeRelation(Schema::Default(attrs), {row, row});
    ASSERT_TRUE(twice.ok());

    const MinerParam reference{"depminer", 1};
    for (const Relation* r :
         {&empty.value(), &single.value(), &twice.value()}) {
      const FdSet expected = MineCover(reference, *r);
      const FdSet mined = MineCover(GetParam(), *r);
      EXPECT_EQ(mined.fds(), expected.fds())
          << attrs << " attributes, " << r->num_tuples() << " tuple(s)";
    }
    // dep(single row) = dep(two identical rows).
    EXPECT_EQ(MineCover(GetParam(), single.value()).fds(),
              MineCover(GetParam(), twice.value()).fds());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMiners, Metamorphic,
    ::testing::Values(MinerParam{"depminer", 1}, MinerParam{"depminer", 8},
                      MinerParam{"depminer2", 1},
                      MinerParam{"depminer2", 8}, MinerParam{"tane", 1},
                      MinerParam{"tane", 8}, MinerParam{"fastfds", 1},
                      MinerParam{"fdep", 1}),
    ParamName);

}  // namespace
}  // namespace depminer
