# End-to-end CLI tests for fdtool, driven by ctest: each case runs the
# real binary on the bundled datasets and checks output/exit codes.

set(FDTOOL $<TARGET_FILE:fdtool>)
set(DATA ${CMAKE_SOURCE_DIR}/data)

add_test(NAME cli.mine COMMAND fdtool mine ${DATA}/employees.csv)
set_tests_properties(cli.mine PROPERTIES
    PASS_REGULAR_EXPRESSION "depname -> depnum")

add_test(NAME cli.mine_tane COMMAND fdtool mine ${DATA}/employees.csv
         --algo=tane)
set_tests_properties(cli.mine_tane PROPERTIES
    PASS_REGULAR_EXPRESSION "depname -> depnum")

add_test(NAME cli.keys COMMAND fdtool keys ${DATA}/orders.csv)
set_tests_properties(cli.keys PROPERTIES
    PASS_REGULAR_EXPRESSION "order_id")

add_test(NAME cli.normalize COMMAND fdtool normalize ${DATA}/orders.csv)
set_tests_properties(cli.normalize PROPERTIES
    PASS_REGULAR_EXPRESSION "Candidate keys")

add_test(NAME cli.verify_holds COMMAND fdtool verify ${DATA}/orders.csv
         "zip->city")
set_tests_properties(cli.verify_holds PROPERTIES
    PASS_REGULAR_EXPRESSION "holds")

add_test(NAME cli.verify_violated COMMAND fdtool verify ${DATA}/orders.csv
         "city->zip")
set_tests_properties(cli.verify_violated PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.stats COMMAND fdtool stats ${DATA}/courses.csv)
set_tests_properties(cli.stats PROPERTIES
    PASS_REGULAR_EXPRESSION "attributes: 6")

add_test(NAME cli.armstrong COMMAND fdtool armstrong ${DATA}/employees.csv)
set_tests_properties(cli.armstrong PROPERTIES
    PASS_REGULAR_EXPRESSION "empnum,depnum,year,depname,mgr")

add_test(NAME cli.profile_json COMMAND fdtool profile ${DATA}/orders.csv
         --format=json)
set_tests_properties(cli.profile_json PROPERTIES
    PASS_REGULAR_EXPRESSION "\"candidate_keys\"")

add_test(NAME cli.inds COMMAND fdtool inds ${DATA}/orders.csv
         ${DATA}/courses.csv)

add_test(NAME cli.missing_file COMMAND fdtool mine /nonexistent.csv)
set_tests_properties(cli.missing_file PROPERTIES WILL_FAIL TRUE)

# Tracing: a traced mine run writes the chrome://tracing JSON and prints
# the metrics summary (phase table on stderr, confirmation on stdout).
# A -DDEPMINER_TRACING=OFF build collects no spans, so only the flags'
# basic plumbing can be asserted there.
if(DEPMINER_TRACING)
  add_test(NAME cli.mine_trace COMMAND fdtool mine ${DATA}/orders.csv
           --threads=2 --trace=${CMAKE_CURRENT_BINARY_DIR}/cli_trace.json
           --metrics)
  set_tests_properties(cli.mine_trace PROPERTIES
      PASS_REGULAR_EXPRESSION "phase/agree")
else()
  add_test(NAME cli.mine_trace COMMAND fdtool mine ${DATA}/orders.csv
           --threads=2 --trace=${CMAKE_CURRENT_BINARY_DIR}/cli_trace.json
           --metrics)
  set_tests_properties(cli.mine_trace PROPERTIES
      PASS_REGULAR_EXPRESSION "trace written to")
endif()

# Telemetry export and the other observability flags. The exported
# Prometheus file is validated structurally by the check.sh smoke; here
# the CLI-visible contract is asserted: confirmation lines, log shapes,
# and malformed flags exiting as usage errors.
add_test(NAME cli.mine_metrics_out COMMAND fdtool mine ${DATA}/orders.csv
         --threads=2
         --metrics-out=${CMAKE_CURRENT_BINARY_DIR}/cli_metrics.prom)
set_tests_properties(cli.mine_metrics_out PROPERTIES
    PASS_REGULAR_EXPRESSION "metrics written to")

add_test(NAME cli.mine_metrics_json COMMAND fdtool mine ${DATA}/orders.csv
         --metrics-out=${CMAKE_CURRENT_BINARY_DIR}/cli_metrics.json)
set_tests_properties(cli.mine_metrics_json PROPERTIES
    PASS_REGULAR_EXPRESSION "metrics written to")

add_test(NAME cli.bad_metrics_ext COMMAND fdtool mine ${DATA}/orders.csv
         --metrics-out=${CMAKE_CURRENT_BINARY_DIR}/cli_metrics.csv)
set_tests_properties(cli.bad_metrics_ext PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.bad_trace_ext COMMAND fdtool mine ${DATA}/orders.csv
         --trace=${CMAKE_CURRENT_BINARY_DIR}/cli_trace.txt)
set_tests_properties(cli.bad_trace_ext PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.mine_log_json COMMAND fdtool mine ${DATA}/employees.csv
         --log-json)
set_tests_properties(cli.mine_log_json PROPERTIES
    PASS_REGULAR_EXPRESSION "\"subsystem\":\"fdtool\"")

add_test(NAME cli.bad_log_level COMMAND fdtool mine ${DATA}/employees.csv
         --log-level=chatty)
set_tests_properties(cli.bad_log_level PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.mine_progress COMMAND fdtool mine ${DATA}/employees.csv
         --progress)
set_tests_properties(cli.mine_progress PROPERTIES
    PASS_REGULAR_EXPRESSION "progress")

add_test(NAME cli.datagen
    COMMAND ${CMAKE_COMMAND}
        -DFDTOOL=$<TARGET_FILE:fdtool>
        -DWORK=${CMAKE_CURRENT_BINARY_DIR}
        -P ${CMAKE_CURRENT_SOURCE_DIR}/cli_datagen_test.cmake)

# Generous resource limits must not change results.
add_test(NAME cli.mine_governed COMMAND fdtool mine ${DATA}/employees.csv
         --timeout-ms=60000 --memory-budget-mb=1024)
set_tests_properties(cli.mine_governed PROPERTIES
    PASS_REGULAR_EXPRESSION "depname -> depnum")

add_test(NAME cli.bad_timeout COMMAND fdtool mine ${DATA}/employees.csv
         --timeout-ms=-5)
set_tests_properties(cli.bad_timeout PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.usage COMMAND fdtool)
set_tests_properties(cli.usage PROPERTIES WILL_FAIL TRUE)

# Pipeline: mine to a .fds file, then query it with `implies`.
add_test(NAME cli.pipeline
    COMMAND ${CMAKE_COMMAND}
        -DFDTOOL=$<TARGET_FILE:fdtool>
        -DDATA=${DATA}
        -DWORK=${CMAKE_CURRENT_BINARY_DIR}
        -P ${CMAKE_CURRENT_SOURCE_DIR}/cli_pipeline_test.cmake)

# Example binaries double as end-to-end smoke tests.
add_test(NAME example.quickstart COMMAND quickstart)
set_tests_properties(example.quickstart PROPERTIES
    PASS_REGULAR_EXPRESSION "Minimal non-trivial functional dependencies \\(14\\)")

add_test(NAME example.logical_tuning COMMAND logical_tuning --tuples=200)
set_tests_properties(example.logical_tuning PROPERTIES
    PASS_REGULAR_EXPRESSION "Candidate keys")

add_test(NAME example.benchmark_sweep COMMAND benchmark_sweep --attrs=8
         --tuples=500)
set_tests_properties(example.benchmark_sweep PROPERTIES
    PASS_REGULAR_EXPRESSION "found the same")

add_test(NAME example.armstrong_explorer COMMAND armstrong_explorer
         --attrs=6 --tuples=2000)
set_tests_properties(example.armstrong_explorer PROPERTIES
    PASS_REGULAR_EXPRESSION "verification ok")

add_test(NAME example.streaming_mine COMMAND streaming_mine --tuples=5000
         --attrs=8)
set_tests_properties(example.streaming_mine PROPERTIES
    PASS_REGULAR_EXPRESSION "covers identical: yes")

add_test(NAME example.paper_walkthrough COMMAND paper_walkthrough)
set_tests_properties(example.paper_walkthrough PROPERTIES
    PASS_REGULAR_EXPRESSION "r \\|= BC -> A")

add_test(NAME cli.fks COMMAND fdtool fks ${DATA}/orders.csv
         ${DATA}/customers.csv)
set_tests_properties(cli.fks PROPERTIES
    PASS_REGULAR_EXPRESSION "customers.csv")

add_test(NAME example.schema_discovery COMMAND schema_discovery
         ${DATA}/orders.csv ${DATA}/customers.csv)
set_tests_properties(example.schema_discovery PROPERTIES
    PASS_REGULAR_EXPRESSION "foreign-key candidates")

add_test(NAME cli.repair COMMAND fdtool repair ${DATA}/orders.csv
         "customer->city")
set_tests_properties(cli.repair PROPERTIES
    PASS_REGULAR_EXPRESSION "0 tuple")

# Search-space pruning flags: the capped/approximate/top-k paths produce
# the documented output shapes, and malformed knob values are usage
# errors (exit 2), not silent defaults.
add_test(NAME cli.mine_arity COMMAND fdtool mine ${DATA}/employees.csv
         --arity=1)
set_tests_properties(cli.mine_arity PROPERTIES
    PASS_REGULAR_EXPRESSION "depname -> depnum")

add_test(NAME cli.mine_topk COMMAND fdtool mine ${DATA}/employees.csv
         --algo=tane --topk=3)
set_tests_properties(cli.mine_topk PROPERTIES
    PASS_REGULAR_EXPRESSION "# redundancy=")

add_test(NAME cli.mine_error_tane COMMAND fdtool mine ${DATA}/employees.csv
         --algo=tane --error=0.05)
set_tests_properties(cli.mine_error_tane PROPERTIES
    PASS_REGULAR_EXPRESSION "->")

add_test(NAME cli.bad_arity COMMAND fdtool mine ${DATA}/employees.csv
         --arity=0)
set_tests_properties(cli.bad_arity PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.bad_topk COMMAND fdtool mine ${DATA}/employees.csv
         --algo=tane --topk=none)
set_tests_properties(cli.bad_topk PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.bad_error COMMAND fdtool mine ${DATA}/employees.csv
         --algo=tane --error=1.5)
set_tests_properties(cli.bad_error PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.error_wrong_algo COMMAND fdtool mine ${DATA}/employees.csv
         --error=0.05)
set_tests_properties(cli.error_wrong_algo PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.pruning_checkpoint_conflict COMMAND fdtool mine
         ${DATA}/employees.csv --arity=2
         --checkpoint-dir=${CMAKE_CURRENT_BINARY_DIR}/cli_ckpt_conflict)
set_tests_properties(cli.pruning_checkpoint_conflict PROPERTIES
    WILL_FAIL TRUE)

# Differential verification harness: a deterministic clean slice must
# report zero failing seeds, and a bad flag must be a usage error.
add_test(NAME cli.fuzz COMMAND fdtool fuzz --iterations=5 --seed=1
         --repro-dir=${CMAKE_CURRENT_BINARY_DIR}/cli_fuzz_repros)
set_tests_properties(cli.fuzz PROPERTIES
    PASS_REGULAR_EXPRESSION "0 failing seed")

add_test(NAME cli.fuzz_bad_seed COMMAND fdtool fuzz --iterations=5
         --seed=ten)
set_tests_properties(cli.fuzz_bad_seed PROPERTIES WILL_FAIL TRUE)

add_test(NAME cli.catalog
    COMMAND ${CMAKE_COMMAND}
        -DFDTOOL=$<TARGET_FILE:fdtool>
        -DDATA=${DATA}
        -DWORK=${CMAKE_CURRENT_BINARY_DIR}
        -P ${CMAKE_CURRENT_SOURCE_DIR}/cli_catalog_test.cmake)

# Crash-safe mining: a checkpointed mine finds the same cover, and an
# interrupted one resumes from the written checkpoint bit-identically
# (the script injects the interruption via the fault layer).
add_test(NAME cli.mine_checkpoint COMMAND fdtool mine ${DATA}/employees.csv
         --checkpoint-dir=${CMAKE_CURRENT_BINARY_DIR}/cli_ckpt)
set_tests_properties(cli.mine_checkpoint PROPERTIES
    PASS_REGULAR_EXPRESSION "depname -> depnum")

add_test(NAME cli.checkpoint_resume
    COMMAND ${CMAKE_COMMAND}
        -DFDTOOL=$<TARGET_FILE:fdtool>
        -DDATA=${DATA}
        -DWORK=${CMAKE_CURRENT_BINARY_DIR}
        -DFAULTS=${DEPMINER_FAULTS}
        -P ${CMAKE_CURRENT_SOURCE_DIR}/cli_checkpoint_test.cmake)

# Fault injection: the sweep holds on a small slice, a debug-injected
# allocation failure degrades a mine to a partial result (the regex match
# is the pass criterion; the run itself exits 3), and an unknown site is
# a usage error. Only meaningful when the sites are compiled in.
if(DEPMINER_FAULTS)
  add_test(NAME cli.fuzz_faults COMMAND fdtool fuzz --faults --iterations=2
           --seed=1)
  set_tests_properties(cli.fuzz_faults PROPERTIES
      PASS_REGULAR_EXPRESSION "all expectations held")

  add_test(NAME cli.fault_site COMMAND fdtool mine ${DATA}/employees.csv
           --fault-site=alloc/agree)
  set_tests_properties(cli.fault_site PROPERTIES
      PASS_REGULAR_EXPRESSION "run interrupted \\(CapacityExceeded")

  add_test(NAME cli.fault_bad_site COMMAND fdtool mine ${DATA}/employees.csv
           --fault-site=bogus/site)
  set_tests_properties(cli.fault_bad_site PROPERTIES WILL_FAIL TRUE)
endif()
