#include "core/dep_miner.h"

#include <gtest/gtest.h>

#include "fd/naive_discovery.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

TEST(DepMiner, DefaultRunProducesEverything) {
  const Relation r = PaperExampleRelation();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const DepMinerResult& out = mined.value();
  EXPECT_EQ(out.fds.size(), 14u);
  EXPECT_EQ(out.all_max_sets.size(), 3u);
  EXPECT_TRUE(out.armstrong.has_value());
  EXPECT_TRUE(out.armstrong_status.ok());
  EXPECT_EQ(out.stats.num_fds, 14u);
  EXPECT_EQ(out.stats.num_couples, 6u);
  EXPECT_GE(out.stats.Total(), 0.0);
  EXPECT_FALSE(out.stats.ToString().empty());
}

TEST(DepMiner, AllAgreeSetAlgorithmsGiveSameFds) {
  const Relation r = RandomRelation(5, 80, 4, 55);
  std::vector<FdSet> results;
  for (AgreeSetAlgorithm algorithm :
       {AgreeSetAlgorithm::kNaive, AgreeSetAlgorithm::kCouples,
        AgreeSetAlgorithm::kIdentifiers}) {
    DepMinerOptions options;
    options.agree_set_algorithm = algorithm;
    Result<DepMinerResult> mined = MineDependencies(r, options);
    ASSERT_TRUE(mined.ok()) << ToString(algorithm);
    results.push_back(mined.value().fds);
  }
  EXPECT_EQ(results[0].fds(), results[1].fds());
  EXPECT_EQ(results[0].fds(), results[2].fds());
}

TEST(DepMiner, ChunkThresholdKeepsResultsIdentical) {
  const Relation r = RandomRelation(4, 60, 3, 77);
  DepMinerOptions base;
  Result<DepMinerResult> reference = MineDependencies(r, base);
  ASSERT_TRUE(reference.ok());
  DepMinerOptions chunked = base;
  chunked.max_couples_per_chunk = 5;
  Result<DepMinerResult> result = MineDependencies(r, chunked);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().fds.fds(), reference.value().fds.fds());
  EXPECT_GT(result.value().stats.chunks, 1u);
}

TEST(DepMiner, ArmstrongCanBeDisabled) {
  DepMinerOptions options;
  options.build_armstrong = false;
  Result<DepMinerResult> mined =
      MineDependencies(PaperExampleRelation(), options);
  ASSERT_TRUE(mined.ok());
  EXPECT_FALSE(mined.value().armstrong.has_value());
}

TEST(DepMiner, DbOverloadWithoutRelationSkipsArmstrong) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  Result<DepMinerResult> mined = MineDependencies(db, nullptr);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined.value().fds.size(), 14u);
  EXPECT_FALSE(mined.value().armstrong.has_value());
  EXPECT_FALSE(mined.value().armstrong_status.ok());
}

TEST(DepMiner, SingleTupleRelation) {
  Result<Relation> r = MakeRelation({{"x", "y"}});
  ASSERT_TRUE(r.ok());
  Result<DepMinerResult> mined = MineDependencies(r.value());
  ASSERT_TRUE(mined.ok());
  // Every attribute is constant: ∅ → A and ∅ → B.
  ASSERT_EQ(mined.value().fds.size(), 2u);
  EXPECT_EQ(mined.value().fds.fds()[0], Fd("", 'A'));
  EXPECT_EQ(mined.value().fds.fds()[1], Fd("", 'B'));
  // MAX(dep(r)) is empty; the Armstrong relation is a single tuple.
  EXPECT_TRUE(mined.value().all_max_sets.empty());
  ASSERT_TRUE(mined.value().armstrong.has_value());
  EXPECT_EQ(mined.value().armstrong->num_tuples(), 1u);
}

TEST(DepMiner, EmptyRelationAllFdsHold) {
  RelationBuilder b(Schema::Default(2));
  Result<Relation> r = std::move(b).Finish();
  ASSERT_TRUE(r.ok());
  Result<DepMinerResult> mined = MineDependencies(r.value());
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined.value().fds.size(), 2u);  // ∅ -> A, ∅ -> B vacuously
}

TEST(DepMiner, ConstantAndKeyColumns) {
  Result<Relation> r = MakeRelation({
      {"c", "1", "x"},
      {"c", "2", "x"},
      {"c", "3", "y"},
  });
  ASSERT_TRUE(r.ok());
  Result<DepMinerResult> mined = MineDependencies(r.value());
  ASSERT_TRUE(mined.ok());
  const FdSet& fds = mined.value().fds;
  // ∅ -> A (constant); B -> C (B is a key).
  EXPECT_TRUE(fds.Implies(Fd("", 'A')));
  EXPECT_TRUE(fds.Implies(Fd("B", 'C')));
  EXPECT_FALSE(fds.Implies(Fd("C", 'B')));
  EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r.value(), fds));
}

TEST(DepMiner, DuplicateTuplesOnly) {
  Result<Relation> r = MakeRelation({{"a", "b"}, {"a", "b"}});
  ASSERT_TRUE(r.ok());
  Result<DepMinerResult> mined = MineDependencies(r.value());
  ASSERT_TRUE(mined.ok());
  // Both columns constant.
  EXPECT_EQ(mined.value().fds.size(), 2u);
  EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r.value(), mined.value().fds));
}

TEST(DepMiner, TwoTuplesDisagreeEverywhere) {
  Result<Relation> r = MakeRelation({{"1", "x"}, {"2", "y"}});
  ASSERT_TRUE(r.ok());
  Result<DepMinerResult> mined = MineDependencies(r.value());
  ASSERT_TRUE(mined.ok());
  // A -> B and B -> A are the minimal FDs (singleton keys).
  ASSERT_EQ(mined.value().fds.size(), 2u);
  EXPECT_EQ(mined.value().fds.fds()[0], Fd("B", 'A'));
  EXPECT_EQ(mined.value().fds.fds()[1], Fd("A", 'B'));
  EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r.value(), mined.value().fds));
}

TEST(DepMiner, StatsTimingsAreConsistent) {
  const Relation r = RandomRelation(6, 200, 5, 31);
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const DepMinerStats& stats = mined.value().stats;
  EXPECT_GE(stats.strip_seconds, 0.0);
  EXPECT_GE(stats.agree_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.Total(),
                   stats.strip_seconds + stats.agree_seconds +
                       stats.max_seconds + stats.lhs_seconds +
                       stats.armstrong_seconds);
  EXPECT_EQ(stats.num_fds, mined.value().fds.size());
  EXPECT_EQ(stats.num_max_sets, mined.value().all_max_sets.size());
}

// Differential oracle sweep: Dep-Miner (all three agree-set variants)
// equals exhaustive discovery on randomized relations of varied shape.
struct OracleParam {
  size_t attrs;
  size_t tuples;
  size_t domain;
  uint64_t seed;
};

class DepMinerOracleSweep : public ::testing::TestWithParam<OracleParam> {};

TEST_P(DepMinerOracleSweep, MatchesNaiveDiscovery) {
  const OracleParam p = GetParam();
  const Relation r = RandomRelation(p.attrs, p.tuples, p.domain, p.seed);
  for (AgreeSetAlgorithm algorithm :
       {AgreeSetAlgorithm::kCouples, AgreeSetAlgorithm::kIdentifiers}) {
    DepMinerOptions options;
    options.agree_set_algorithm = algorithm;
    options.build_armstrong = false;
    Result<DepMinerResult> mined = MineDependencies(r, options);
    ASSERT_TRUE(mined.ok());
    EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r, mined.value().fds))
        << "algorithm " << ToString(algorithm) << " seed " << p.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DepMinerOracleSweep,
    ::testing::Values(
        OracleParam{3, 20, 2, 1}, OracleParam{4, 30, 2, 2},
        OracleParam{4, 30, 3, 3}, OracleParam{5, 40, 3, 4},
        OracleParam{5, 60, 4, 5}, OracleParam{6, 40, 3, 6},
        OracleParam{6, 60, 6, 7}, OracleParam{7, 50, 4, 8},
        OracleParam{3, 100, 2, 9}, OracleParam{8, 40, 5, 10},
        OracleParam{5, 15, 2, 11}, OracleParam{4, 200, 4, 12},
        OracleParam{7, 30, 2, 13}, OracleParam{6, 25, 10, 14},
        OracleParam{5, 50, 2, 15}));

}  // namespace
}  // namespace depminer
