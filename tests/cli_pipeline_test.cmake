# Scripted CLI pipeline: mine → save .fds → implies query.
# Invoked by the cli.pipeline ctest entry with -DFDTOOL/-DDATA/-DWORK.

set(FDS ${WORK}/pipeline_employees.fds)

execute_process(
    COMMAND ${FDTOOL} mine ${DATA}/employees.csv --out=${FDS}
    RESULT_VARIABLE mine_result)
if(NOT mine_result EQUAL 0)
  message(FATAL_ERROR "fdtool mine failed: ${mine_result}")
endif()

execute_process(
    COMMAND ${FDTOOL} implies ${FDS} "depnum->mgr"
    RESULT_VARIABLE implied_result
    OUTPUT_VARIABLE implied_output)
if(NOT implied_result EQUAL 0)
  message(FATAL_ERROR "expected implication, got ${implied_result}")
endif()
if(NOT implied_output MATCHES "implied")
  message(FATAL_ERROR "unexpected output: ${implied_output}")
endif()

execute_process(
    COMMAND ${FDTOOL} implies ${FDS} "year->depname"
    RESULT_VARIABLE not_implied_result)
if(not_implied_result EQUAL 0)
  message(FATAL_ERROR "expected non-implication to exit non-zero")
endif()

file(REMOVE ${FDS})
