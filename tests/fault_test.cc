// Fault-injection tests: the FaultScope/FaultPlan mechanics, the
// RunContext budget-trip path of every miner under an injected
// allocation failure, the latched deadline-jitter site, lane-stall
// bit-identity, the retrying CSV reader, and a small end-to-end sweep.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/file_reader.h"
#include "common/run_context.h"
#include "fault/fault.h"
#include "fd/satisfaction.h"
#include "relation/csv.h"
#include "storage/streaming.h"
#include "test_util.h"
#include "verify/fault_sweep.h"
#include "verify/miners.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;

#if !DEPMINER_FAULTS_ENABLED
#error "fault_test must build with the fault sites compiled in"
#endif

TEST(FaultRegistry, NamesResolveAndEncodeTheirKind) {
  const std::vector<FaultSite>& registry = FaultSiteRegistry();
  ASSERT_FALSE(registry.empty());
  for (const FaultSite& site : registry) {
    const FaultSite* found = FindFaultSite(site.name);
    ASSERT_NE(found, nullptr) << site.name;
    EXPECT_EQ(found->kind, site.kind) << site.name;
    EXPECT_NE(site.where, nullptr) << site.name;
  }
  EXPECT_EQ(FindFaultSite("no/such/site"), nullptr);
}

TEST(FaultScope, CountsHitsAndFiresFromTheTrigger) {
  FaultPlan plan;
  plan.site = "alloc/agree";
  plan.trigger_hit = 2;
  FaultScope scope(plan);
  // Polls 0 and 1 pass, poll 2 fires, poll 3 passes again (one-shot).
  EXPECT_FALSE(fault::ShouldFire("alloc/agree"));
  EXPECT_FALSE(fault::ShouldFire("alloc/agree"));
  EXPECT_TRUE(fault::ShouldFire("alloc/agree"));
  EXPECT_FALSE(fault::ShouldFire("alloc/agree"));
  // A different site neither counts nor fires.
  EXPECT_FALSE(fault::ShouldFire("alloc/tane"));
  EXPECT_EQ(scope.hits(), 4u);
  EXPECT_EQ(scope.fires(), 1u);
}

TEST(FaultScope, RepeatKeepsFiringAfterTheTrigger) {
  FaultPlan plan;
  plan.site = "io/csv-read";
  plan.trigger_hit = 1;
  plan.repeat = true;
  FaultScope scope(plan);
  EXPECT_FALSE(fault::ShouldFire("io/csv-read"));
  EXPECT_TRUE(fault::ShouldFire("io/csv-read"));
  EXPECT_TRUE(fault::ShouldFire("io/csv-read"));
  EXPECT_EQ(scope.fires(), 2u);
}

TEST(FaultScope, NoPlanMeansNoFiring) {
  EXPECT_FALSE(fault::Active());
  EXPECT_FALSE(fault::ShouldFire("alloc/agree"));
  EXPECT_TRUE(fault::Poll("io/csv-read").ok());
}

TEST(FaultPlanTest, FromSeedIsDeterministicAndNamesARealSite) {
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const FaultPlan a = FaultPlan::FromSeed(seed);
    const FaultPlan b = FaultPlan::FromSeed(seed);
    EXPECT_EQ(a.site, b.site);
    EXPECT_EQ(a.trigger_hit, b.trigger_hit);
    EXPECT_EQ(a.repeat, b.repeat);
    EXPECT_NE(FindFaultSite(a.site), nullptr) << a.site;
  }
}

TEST(ForceTripTest, ArmsTheContextAndWinsOverEveryRealLimit) {
  RunContext ctx;
  EXPECT_FALSE(ctx.limited());
  ctx.ForceTrip(StatusCode::kCapacityExceeded);
  EXPECT_TRUE(ctx.limited());
  EXPECT_TRUE(ctx.force_tripped());
  const Status st = ctx.Check();
  EXPECT_EQ(st.code(), StatusCode::kCapacityExceeded);
  // The verdict is sticky: every later check agrees.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCapacityExceeded);
  EXPECT_TRUE(ctx.StopRequested());
}

TEST(DeadlineJitterTest, InjectedDeadlineLatchesIntoTheContext) {
  RunContext ctx;
  ctx.SetTimeout(std::chrono::hours(1));
  FaultPlan plan;
  plan.site = "deadline/jitter";
  FaultScope scope(plan);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  // One-shot plans fire once, but the verdict must latch: a later check
  // — possibly from another lane — reports the same trip, never OK.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(scope.fires(), 1u);
}

/// Satellite: the budget-trip path of each miner under an injected
/// allocation failure at its charge point. The outcome contract is the
/// fault sweep's: a matching error, a matching degraded partial whose
/// FDs all hold, or (fault after the last check) the full correct cover.
struct MinerAllocCase {
  const char* miner;
  const char* site;
};

class MinerAllocFault : public ::testing::TestWithParam<MinerAllocCase> {};

TEST_P(MinerAllocFault, TripsSoundlyAtTheChargePoint) {
  const Relation relation = PaperExampleRelation();
  MinerConfig config;
  for (MinerConfig& m : AllMiners()) {
    if (m.name == GetParam().miner) config = std::move(m);
  }
  ASSERT_FALSE(config.name.empty());
  const MinerOutcome baseline = config.run(relation, 1, nullptr);
  ASSERT_TRUE(baseline.error.ok());
  ASSERT_TRUE(baseline.complete);

  FaultPlan plan;
  plan.site = GetParam().site;
  RunContext ctx;
  ctx.SetTimeout(std::chrono::hours(1));
  uint64_t fires = 0;
  MinerOutcome out;
  {
    FaultScope scope(plan);
    out = config.run(relation, 1, &ctx);
    fires = scope.fires();
  }
  ASSERT_GE(fires, 1u) << "the " << GetParam().site
                       << " charge point was never polled";
  if (!out.error.ok()) {
    EXPECT_EQ(out.error.code(), StatusCode::kCapacityExceeded)
        << out.error.ToString();
    return;
  }
  if (out.complete) {
    EXPECT_TRUE(out.fds.EquivalentTo(baseline.fds));
    return;
  }
  EXPECT_EQ(out.run_status.code(), StatusCode::kCapacityExceeded)
      << out.run_status.ToString();
  for (const FunctionalDependency& fd : out.fds.fds()) {
    EXPECT_TRUE(Holds(relation, fd))
        << "unsound partial FD: " << fd.ToString(relation.schema());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMiners, MinerAllocFault,
    ::testing::Values(MinerAllocCase{"depminer", "alloc/agree"},
                      MinerAllocCase{"depminer2", "alloc/agree"},
                      MinerAllocCase{"depminer", "alloc/cmax"},
                      MinerAllocCase{"depminer", "alloc/lhs"},
                      MinerAllocCase{"tane", "alloc/tane"},
                      MinerAllocCase{"fastfds", "alloc/fastfds"},
                      MinerAllocCase{"fdep", "alloc/fdep"}),
    [](const ::testing::TestParamInfo<MinerAllocCase>& info) {
      std::string name = std::string(info.param.miner) + "_" +
                         info.param.site;
      for (char& c : name) {
        if (c == '/' || c == '-') c = '_';
      }
      return name;
    });

TEST(LaneStallTest, StalledLanesStillProduceTheIdenticalCover) {
  const Relation relation =
      ::depminer::testing::RandomRelation(6, 120, 3, 7);
  MinerConfig depminer;
  for (MinerConfig& m : AllMiners()) {
    if (m.name == "depminer") depminer = std::move(m);
  }
  const MinerOutcome baseline = depminer.run(relation, 4, nullptr);
  ASSERT_TRUE(baseline.error.ok());

  FaultPlan plan;
  plan.site = "pool/lane-stall";
  plan.repeat = true;  // every block claim of every lane sleeps
  plan.stall_ms = 1;
  MinerOutcome stalled;
  {
    FaultScope scope(plan);
    stalled = depminer.run(relation, 4, nullptr);
  }
  ASSERT_TRUE(stalled.error.ok());
  EXPECT_TRUE(stalled.complete);
  // Bit-identical, not merely equivalent: lane pacing must not influence
  // the output at all.
  EXPECT_EQ(stalled.fds.fds(), baseline.fds.fds());
}

class RetryingReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/depminer_fault_io.csv";
    std::ofstream out(path_);
    out << "a,b,c\n";
    for (int i = 0; i < 64; ++i) {
      out << i << "," << i % 5 << "," << i % 3 << "\n";
    }
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(RetryingReadTest, EintrIsRetriedTransparently) {
  Result<Relation> clean = ReadCsvRelation(path_);
  ASSERT_TRUE(clean.ok());

  FaultPlan plan;
  plan.site = "io/csv-eintr";
  uint64_t fires = 0;
  Result<Relation> read = Status::NotFound("unset");
  {
    FaultScope scope(plan);
    read = ReadCsvRelation(path_);
    fires = scope.fires();
  }
  ASSERT_GE(fires, 1u);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().num_tuples(), clean.value().num_tuples());
}

TEST_F(RetryingReadTest, PersistentEintrExhaustsItsBoundedBudget) {
  FaultPlan plan;
  plan.site = "io/csv-eintr";
  plan.repeat = true;
  FaultScope scope(plan);
  Result<Relation> read = ReadCsvRelation(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(RetryingReadTest, TransientIoErrorIsRetriedWithBackoff) {
  FaultPlan plan;
  plan.site = "io/csv-read";
  uint64_t fires = 0;
  Result<Relation> read = Status::NotFound("unset");
  {
    FaultScope scope(plan);
    read = ReadCsvRelation(path_);
    fires = scope.fires();
  }
  ASSERT_GE(fires, 1u);
  EXPECT_TRUE(read.ok()) << read.status().ToString();
}

TEST_F(RetryingReadTest, PersistentIoErrorSurfacesNotTruncates) {
  // The regression this guards: a mid-file read error must never yield a
  // *successfully parsed prefix* — that would silently drop tuples and
  // change the mined FDs.
  FaultPlan plan;
  plan.site = "io/csv-read";
  plan.trigger_hit = 1;  // let the first buffer fill succeed
  plan.repeat = true;
  FaultScope scope(plan);
  Result<Relation> read = ReadCsvRelation(path_);
  if (scope.fires() == 0) GTEST_SKIP() << "file fit in one buffer fill";
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(RetryingReadTest, ShortReadsAreAbsorbedByBuffering) {
  Result<Relation> clean = ReadCsvRelation(path_);
  ASSERT_TRUE(clean.ok());
  FaultPlan plan;
  plan.site = "io/csv-short-read";
  plan.repeat = true;
  uint64_t fires = 0;
  Result<Relation> read = Status::NotFound("unset");
  {
    FaultScope scope(plan);
    read = ReadCsvRelation(path_);
    fires = scope.fires();
  }
  ASSERT_GE(fires, 1u);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().num_tuples(), clean.value().num_tuples());
}

TEST_F(RetryingReadTest, StreamingExtractionChecksTheStreamStatusToo) {
  FaultPlan plan;
  plan.site = "io/csv-read";
  plan.repeat = true;
  FaultScope scope(plan);
  Result<StreamingExtract> extract = ExtractFromCsv(path_);
  ASSERT_FALSE(extract.ok());
  EXPECT_EQ(extract.status().code(), StatusCode::kIoError);
}

TEST(RetryingFileStreamTest, MissingFileReportsNotFoundState) {
  RetryingFileStream in("/nonexistent/depminer.csv");
  EXPECT_FALSE(in.is_open());
  EXPECT_FALSE(in.good());
  EXPECT_FALSE(in.status().ok());
}

TEST(FaultSweepTest, SmallSweepHoldsItsExpectations) {
  FaultSweepOptions options;
  options.iterations = 2;
  options.start_seed = 1;
  options.num_threads = 2;
  options.scratch_dir = ::testing::TempDir();
  Result<FaultSweepReport> run = RunFaultSweep(options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run.value().ok()) << run.value().ToString();
  EXPECT_GT(run.value().faults_fired, 0u);
  EXPECT_GT(run.value().runs, 0u);
}

TEST(FaultSweepTest, UnknownSiteIsAnArgumentError) {
  FaultSweepOptions options;
  options.iterations = 1;
  options.sites = {"bogus/site"};
  Result<FaultSweepReport> run = RunFaultSweep(options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace depminer
