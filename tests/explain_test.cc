#include "fd/explain.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;

TEST(Explain, ReflexivityHasNoSteps) {
  FdSet f(3);
  const Derivation d =
      ExplainImplication(f, AttributeSet::FromLetters("AB"), 0);
  EXPECT_TRUE(d.implied);
  EXPECT_TRUE(d.steps.empty());
}

TEST(Explain, TransitiveChain) {
  FdSet f(4, {Fd("A", 'B'), Fd("B", 'C'), Fd("C", 'D')});
  const Derivation d =
      ExplainImplication(f, AttributeSet::FromLetters("A"), 3);
  ASSERT_TRUE(d.implied);
  ASSERT_EQ(d.steps.size(), 3u);
  EXPECT_EQ(d.steps[0].used, Fd("A", 'B'));
  EXPECT_EQ(d.steps[1].used, Fd("B", 'C'));
  EXPECT_EQ(d.steps[2].used, Fd("C", 'D'));
  // known_before grows along the chain.
  EXPECT_EQ(d.steps[0].known_before, AttributeSet::FromLetters("A"));
  EXPECT_EQ(d.steps[2].known_before, AttributeSet::FromLetters("ABC"));
}

TEST(Explain, PrunesIrrelevantSteps) {
  // A->B is derivable but irrelevant to A->D via A->C->D.
  FdSet f(4, {Fd("A", 'B'), Fd("A", 'C'), Fd("C", 'D')});
  const Derivation d =
      ExplainImplication(f, AttributeSet::FromLetters("A"), 3);
  ASSERT_TRUE(d.implied);
  for (const DerivationStep& step : d.steps) {
    EXPECT_NE(step.used, Fd("A", 'B')) << "irrelevant step kept";
  }
  ASSERT_EQ(d.steps.size(), 2u);
}

TEST(Explain, ReportsNonImplication) {
  FdSet f(3, {Fd("A", 'B')});
  const Derivation d =
      ExplainImplication(f, AttributeSet::FromLetters("B"), 0);
  EXPECT_FALSE(d.implied);
  EXPECT_EQ(d.final_closure, AttributeSet::FromLetters("B"));
  EXPECT_NE(d.ToString(Schema::Default(3)).find("NOT implied"),
            std::string::npos);
}

TEST(Explain, ToStringNamesSteps) {
  FdSet f(3, {Fd("A", 'B'), Fd("B", 'C')});
  const Derivation d =
      ExplainImplication(f, AttributeSet::FromLetters("A"), 2);
  const std::string text = d.ToString(Schema({"x", "y", "z"}));
  EXPECT_NE(text.find("x -> z: implied"), std::string::npos);
  EXPECT_NE(text.find("x -> y"), std::string::npos);
  EXPECT_NE(text.find("y -> z"), std::string::npos);
}

// Property sweep: the derivation verdict always matches Implies, and
// every kept step fires legally from what precedes it.
class ExplainSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExplainSweep, DerivationsAreSoundAndComplete) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  FdSet fds(6);
  for (int i = 0; i < 8; ++i) {
    AttributeSet lhs;
    lhs.Add(static_cast<AttributeId>(rng.Below(6)));
    if (rng.Below(2)) lhs.Add(static_cast<AttributeId>(rng.Below(6)));
    const AttributeId rhs = static_cast<AttributeId>(rng.Below(6));
    if (!lhs.Contains(rhs)) fds.Add(lhs, rhs);
  }
  fds.Normalize();

  for (int trial = 0; trial < 20; ++trial) {
    AttributeSet x;
    for (AttributeId a = 0; a < 6; ++a) {
      if (rng.Below(2)) x.Add(a);
    }
    const AttributeId target = static_cast<AttributeId>(rng.Below(6));
    const Derivation d = ExplainImplication(fds, x, target);
    EXPECT_EQ(d.implied, fds.Implies(x, target));
    if (d.implied && !x.Contains(target)) {
      // Replay: every step must fire from the accumulated knowledge, and
      // the chain must reach the target.
      AttributeSet known = x;
      for (const DerivationStep& step : d.steps) {
        EXPECT_TRUE(step.used.lhs.IsSubsetOf(known))
            << step.used.ToString();
        known.Add(step.used.rhs);
      }
      EXPECT_TRUE(known.Contains(target));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplainSweep, ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace depminer
