#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/dep_miner.h"
#include "relation/relation_builder.h"
#include "report/database_profile.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/depminer_catalog_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CatalogTest, PutGetRoundTrip) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  const Relation r = PaperExampleRelation();
  ASSERT_TRUE(catalog.value().Put("employees", r).ok());
  EXPECT_TRUE(catalog.value().Contains("employees"));
  EXPECT_EQ(catalog.value().List(),
            (std::vector<std::string>{"employees"}));

  Result<Relation> back = catalog.value().Get("employees");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_tuples(), 7u);
  EXPECT_EQ(back.value().Value(0, 3), "Biochemistry");
}

TEST_F(CatalogTest, PersistsAcrossReopen) {
  {
    Result<Catalog> catalog = Catalog::Open(dir_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.value().Put("a", PaperExampleRelation()).ok());
    ASSERT_TRUE(
        catalog.value().Put("b", RandomRelation(3, 20, 3, 5)).ok());
  }
  Result<Catalog> reopened = Catalog::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().size(), 2u);
  EXPECT_EQ(reopened.value().List(),
            (std::vector<std::string>{"a", "b"}));
  // Mining through the catalog equals mining the original.
  Result<Relation> a = reopened.value().Get("a");
  ASSERT_TRUE(a.ok());
  Result<DepMinerResult> mined = MineDependencies(a.value());
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined.value().fds.size(), 14u);
}

TEST_F(CatalogTest, PutReplacesExisting) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value().Put("t", PaperExampleRelation()).ok());
  Result<Relation> small = MakeRelation({{"x", "y"}});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(catalog.value().Put("t", small.value()).ok());
  EXPECT_EQ(catalog.value().size(), 1u);
  Result<Relation> back = catalog.value().Get("t");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_tuples(), 1u);
}

TEST_F(CatalogTest, DropRemovesEntryAndFile) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value().Put("gone", PaperExampleRelation()).ok());
  ASSERT_TRUE(catalog.value().Drop("gone").ok());
  EXPECT_FALSE(catalog.value().Contains("gone"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/gone.dmc"));
  EXPECT_EQ(catalog.value().Drop("gone").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, RejectsUnsafeNames) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  const Relation r = PaperExampleRelation();
  EXPECT_FALSE(catalog.value().Put("", r).ok());
  EXPECT_FALSE(catalog.value().Put("../escape", r).ok());
  EXPECT_FALSE(catalog.value().Put("a/b", r).ok());
  EXPECT_FALSE(catalog.value().Put("..", r).ok());
  EXPECT_TRUE(catalog.value().Put("ok_name-1.v2", r).ok());
}

TEST_F(CatalogTest, RejectsCorruptManifest) {
  {
    std::ofstream out(dir_ + "/catalog.manifest");
    out << "not a manifest\n";
  }
  EXPECT_EQ(Catalog::Open(dir_).status().code(), StatusCode::kIoError);
  {
    std::ofstream out(dir_ + "/catalog.manifest", std::ios::trunc);
    out << "# depminer-catalog v1\nbad line without tabs\n";
  }
  EXPECT_EQ(Catalog::Open(dir_).status().code(), StatusCode::kIoError);
}

TEST_F(CatalogTest, GetAllFeedsDatabaseProfile) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  Result<Relation> customers = MakeRelation(
      Schema({"id", "name"}), {{"c1", "ann"}, {"c2", "bob"}});
  Result<Relation> orders = MakeRelation(
      Schema({"order", "customer_id"}), {{"o1", "c1"}, {"o2", "c2"}});
  ASSERT_TRUE(customers.ok() && orders.ok());
  ASSERT_TRUE(catalog.value().Put("customers", customers.value()).ok());
  ASSERT_TRUE(catalog.value().Put("orders", orders.value()).ok());

  Result<std::vector<Relation>> all = catalog.value().GetAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 2u);
  std::vector<const Relation*> pointers;
  for (const Relation& r : all.value()) pointers.push_back(&r);
  Result<DatabaseProfile> profile =
      ProfileDatabase(pointers, catalog.value().List());
  ASSERT_TRUE(profile.ok());
  EXPECT_FALSE(profile.value().foreign_keys.empty());
}

}  // namespace
}  // namespace depminer
