#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "catalog/fingerprint.h"
#include "common/strings.h"
#include "core/dep_miner.h"
#include "fault/fault.h"
#include "relation/relation_builder.h"
#include "report/database_profile.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteWholeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/depminer_catalog_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string ManifestPath() const { return dir_ + "/catalog.manifest"; }

  std::string dir_;
};

TEST_F(CatalogTest, PutGetRoundTrip) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  const Relation r = PaperExampleRelation();
  ASSERT_TRUE(catalog.value().Put("employees", r).ok());
  EXPECT_TRUE(catalog.value().Contains("employees"));
  EXPECT_EQ(catalog.value().List(),
            (std::vector<std::string>{"employees"}));

  Result<Relation> back = catalog.value().Get("employees");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_tuples(), 7u);
  EXPECT_EQ(back.value().Value(0, 3), "Biochemistry");
}

TEST_F(CatalogTest, PersistsAcrossReopen) {
  {
    Result<Catalog> catalog = Catalog::Open(dir_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.value().Put("a", PaperExampleRelation()).ok());
    ASSERT_TRUE(
        catalog.value().Put("b", RandomRelation(3, 20, 3, 5)).ok());
  }
  Result<Catalog> reopened = Catalog::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().size(), 2u);
  EXPECT_EQ(reopened.value().List(),
            (std::vector<std::string>{"a", "b"}));
  // Mining through the catalog equals mining the original.
  Result<Relation> a = reopened.value().Get("a");
  ASSERT_TRUE(a.ok());
  Result<DepMinerResult> mined = MineDependencies(a.value());
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined.value().fds.size(), 14u);
}

TEST_F(CatalogTest, PutReplacesExisting) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value().Put("t", PaperExampleRelation()).ok());
  Result<Relation> small = MakeRelation({{"x", "y"}});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(catalog.value().Put("t", small.value()).ok());
  EXPECT_EQ(catalog.value().size(), 1u);
  Result<Relation> back = catalog.value().Get("t");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_tuples(), 1u);
}

TEST_F(CatalogTest, PutBumpsGenerationFileNames) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value().Put("t", PaperExampleRelation()).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/t.g1.dmc"));
  Result<Relation> small = MakeRelation({{"x", "y"}});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(catalog.value().Put("t", small.value()).ok());
  // The replacement landed under a fresh generation name and the old
  // generation was unlinked only after the manifest flipped to the new one.
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/t.g2.dmc"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/t.g1.dmc"));
}

TEST_F(CatalogTest, InfoReportsManifestMetadataWithoutFileIo) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  const Relation r = PaperExampleRelation();
  ASSERT_TRUE(catalog.value().Put("emp", r).ok());
  Result<Catalog::DatasetInfo> info = catalog.value().Info("emp");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().name, "emp");
  EXPECT_EQ(info.value().attributes, r.num_attributes());
  EXPECT_EQ(info.value().tuples, r.num_tuples());
  EXPECT_EQ(info.value().fingerprint, FingerprintRelation(r));
  EXPECT_FALSE(info.value().fingerprint.IsZero());
  EXPECT_EQ(catalog.value().Info("nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, DropRemovesEntryAndFile) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value().Put("gone", PaperExampleRelation()).ok());
  ASSERT_TRUE(catalog.value().Drop("gone").ok());
  EXPECT_FALSE(catalog.value().Contains("gone"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/gone.g1.dmc"));
  EXPECT_EQ(catalog.value().Drop("gone").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, RejectsUnsafeNames) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  const Relation r = PaperExampleRelation();
  EXPECT_FALSE(catalog.value().Put("", r).ok());
  EXPECT_FALSE(catalog.value().Put("../escape", r).ok());
  EXPECT_FALSE(catalog.value().Put("a/b", r).ok());
  EXPECT_FALSE(catalog.value().Put("..", r).ok());
  EXPECT_TRUE(catalog.value().Put("ok_name-1.v2", r).ok());
}

TEST_F(CatalogTest, RejectsCorruptManifest) {
  {
    std::ofstream out(ManifestPath());
    out << "not a manifest\n";
  }
  EXPECT_EQ(Catalog::Open(dir_).status().code(), StatusCode::kIoError);
  {
    std::ofstream out(ManifestPath(), std::ios::trunc);
    out << "# depminer-catalog v1\nbad line without tabs\n";
  }
  EXPECT_EQ(Catalog::Open(dir_).status().code(), StatusCode::kIoError);
}

TEST_F(CatalogTest, RejectsTruncatedV2Manifest) {
  {
    Result<Catalog> catalog = Catalog::Open(dir_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.value().Put("ds", PaperExampleRelation()).ok());
  }
  const std::string intact = ReadWholeFile(ManifestPath());
  ASSERT_NE(intact.find("# end 1\n"), std::string::npos);

  // Truncation after the last complete entry line: the footer is gone.
  std::string truncated = intact;
  truncated.erase(truncated.find("# end 1\n"));
  WriteWholeFile(ManifestPath(), truncated);
  Status open = Catalog::Open(dir_).status();
  EXPECT_EQ(open.code(), StatusCode::kIoError);
  EXPECT_NE(open.message().find("# end"), std::string::npos)
      << open.ToString();

  // Footer survives but disagrees with the entry count.
  std::string miscounted = intact;
  miscounted.replace(miscounted.find("# end 1"), 7, "# end 2");
  WriteWholeFile(ManifestPath(), miscounted);
  open = Catalog::Open(dir_).status();
  EXPECT_EQ(open.code(), StatusCode::kIoError);
  EXPECT_NE(open.message().find("end marker says"), std::string::npos)
      << open.ToString();

  // Entry lines after the footer: a torn concatenation, not a tail write.
  WriteWholeFile(ManifestPath(),
                 intact + "late\tlate.g1.dmc\t2\t2\t" +
                     std::string(32, '0') + "\n");
  open = Catalog::Open(dir_).status();
  EXPECT_EQ(open.code(), StatusCode::kIoError);
  EXPECT_NE(open.message().find("after end marker"), std::string::npos)
      << open.ToString();

  // The intact manifest still opens — the rejections above were real.
  WriteWholeFile(ManifestPath(), intact);
  EXPECT_TRUE(Catalog::Open(dir_).ok());
}

TEST_F(CatalogTest, ManifestErrorsNameTheLine) {
  {
    Result<Catalog> catalog = Catalog::Open(dir_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.value().Put("ds", PaperExampleRelation()).ok());
  }
  std::string manifest = ReadWholeFile(ManifestPath());
  // Corrupt the fingerprint field of the (single) entry on line 2.
  const size_t fp_start = manifest.rfind('\t') + 1;
  manifest.replace(fp_start, 32, "zz");
  WriteWholeFile(ManifestPath(), manifest);
  const Status open = Catalog::Open(dir_).status();
  EXPECT_EQ(open.code(), StatusCode::kIoError);
  EXPECT_NE(open.message().find("line 2"), std::string::npos)
      << open.ToString();
  EXPECT_NE(open.message().find("fingerprint"), std::string::npos)
      << open.ToString();
}

TEST_F(CatalogTest, GetCountMismatchIsDataLoss) {
  {
    Result<Catalog> catalog = Catalog::Open(dir_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.value().Put("ds", PaperExampleRelation()).ok());
  }
  // Doctor the manifest's tuple count while keeping the file parseable
  // (field 3 of the entry line; the footer still says one entry).
  std::string manifest = ReadWholeFile(ManifestPath());
  std::vector<std::string> lines = Split(manifest, '\n');
  std::vector<std::string> fields = Split(lines[1], '\t');
  ASSERT_EQ(fields.size(), 5u);
  fields[3] = "99";
  lines[1] = fields[0] + "\t" + fields[1] + "\t" + fields[2] + "\t" +
             fields[3] + "\t" + fields[4];
  std::string doctored;
  for (const std::string& line : lines) {
    if (!doctored.empty()) doctored += "\n";
    doctored += line;
  }
  WriteWholeFile(ManifestPath(), doctored);

  Result<Catalog> reopened = Catalog::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Status get = reopened.value().Get("ds").status();
  EXPECT_EQ(get.code(), StatusCode::kDataLoss) << get.ToString();
  EXPECT_NE(get.message().find("99"), std::string::npos) << get.ToString();
  // GetAll applies the same cross-check.
  EXPECT_EQ(reopened.value().GetAll().status().code(), StatusCode::kDataLoss);
}

TEST_F(CatalogTest, GetFingerprintMismatchIsDataLoss) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  // Same shape, different content: the count cross-check passes, so only
  // the fingerprint can notice the swap.
  Result<Relation> a = MakeRelation(Schema({"x", "y"}), {{"1", "2"}});
  Result<Relation> b = MakeRelation(Schema({"x", "y"}), {{"3", "4"}});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(catalog.value().Put("a", a.value()).ok());
  ASSERT_TRUE(catalog.value().Put("b", b.value()).ok());
  std::filesystem::copy_file(
      dir_ + "/b.g1.dmc", dir_ + "/a.g1.dmc",
      std::filesystem::copy_options::overwrite_existing);
  const Status get = catalog.value().Get("a").status();
  EXPECT_EQ(get.code(), StatusCode::kDataLoss) << get.ToString();
  EXPECT_NE(get.message().find("fingerprint"), std::string::npos)
      << get.ToString();
  // The untouched sibling still loads.
  EXPECT_TRUE(catalog.value().Get("b").ok());
}

TEST_F(CatalogTest, SweepsOrphanGenerationFilesOnOpen) {
  {
    Result<Catalog> catalog = Catalog::Open(dir_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.value().Put("ds", PaperExampleRelation()).ok());
  }
  // A crash between the column-file write and the manifest save leaves
  // exactly this artifact: a generation file no entry references.
  WriteWholeFile(dir_ + "/stray.g7.dmc", "leftover");
  // Non-generation files are never the catalog's to delete.
  WriteWholeFile(dir_ + "/legacy.dmc", "legacy");
  WriteWholeFile(dir_ + "/notes.txt", "keep me");

  Result<Catalog> reopened = Catalog::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/stray.g7.dmc"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/legacy.dmc"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/notes.txt"));
  EXPECT_TRUE(reopened.value().Get("ds").ok());
}

TEST_F(CatalogTest, ReadsV1ManifestAndUpgradesOnSave) {
  const Relation r = PaperExampleRelation();
  {
    Result<Catalog> catalog = Catalog::Open(dir_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.value().Put("ds", r).ok());
  }
  // Rewrite the manifest in the v1 dialect: 4 fields, no fingerprint, no
  // footer — what a pre-serving build would have left behind.
  WriteWholeFile(ManifestPath(),
                 "# depminer-catalog v1\n"
                 "ds\tds.g1.dmc\t" +
                     std::to_string(r.num_attributes()) + "\t" +
                     std::to_string(r.num_tuples()) + "\n");
  Result<Catalog> reopened = Catalog::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Result<Catalog::DatasetInfo> info = reopened.value().Info("ds");
  ASSERT_TRUE(info.ok());
  // v1 entries carry no fingerprint; Get falls back to count checks only.
  EXPECT_TRUE(info.value().fingerprint.IsZero());
  EXPECT_TRUE(reopened.value().Get("ds").ok());

  // The next save upgrades the manifest to v2 with a footer.
  Result<Relation> other = MakeRelation({{"x", "y"}});
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(reopened.value().Put("other", other.value()).ok());
  const std::string upgraded = ReadWholeFile(ManifestPath());
  EXPECT_EQ(upgraded.rfind("# depminer-catalog v2\n", 0), 0u);
  EXPECT_NE(upgraded.find("# end 2\n"), std::string::npos);
}

#if DEPMINER_FAULTS_ENABLED

TEST_F(CatalogTest, FaultedAdmissionLeavesCatalogUntouched) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value().Put("kept", PaperExampleRelation()).ok());
  Status put;
  {
    FaultPlan plan;
    plan.site = "alloc/catalog";
    FaultScope scope(plan);
    put = catalog.value().Put("doomed", PaperExampleRelation());
    EXPECT_EQ(scope.fires(), 1u);
  }
  EXPECT_EQ(put.code(), StatusCode::kCapacityExceeded) << put.ToString();
  EXPECT_FALSE(catalog.value().Contains("doomed"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/doomed.g1.dmc"));
  // The failed Put wrote nothing: a reopen sees exactly the prior state.
  Result<Catalog> reopened = Catalog::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().List(), (std::vector<std::string>{"kept"}));
}

TEST_F(CatalogTest, FaultedManifestWriteRollsBackFreshPut) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  Status put;
  {
    FaultPlan plan;
    plan.site = "io/manifest-write";
    FaultScope scope(plan);
    put = catalog.value().Put("doomed", PaperExampleRelation());
    EXPECT_EQ(scope.fires(), 1u);
  }
  EXPECT_EQ(put.code(), StatusCode::kIoError) << put.ToString();
  // The rollback removed both the in-memory entry and the column file it
  // had already written, so memory matches the manifest still on disk.
  EXPECT_FALSE(catalog.value().Contains("doomed"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/doomed.g1.dmc"));
  Result<Catalog> reopened = Catalog::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().size(), 0u);
  // The catalog object remains usable after the failure.
  EXPECT_TRUE(catalog.value().Put("doomed", PaperExampleRelation()).ok());
  EXPECT_TRUE(catalog.value().Get("doomed").ok());
}

TEST_F(CatalogTest, FaultedManifestWriteRollsBackReplacement) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value().Put("t", PaperExampleRelation()).ok());
  Result<Relation> small = MakeRelation({{"x", "y"}});
  ASSERT_TRUE(small.ok());
  Status put;
  {
    FaultPlan plan;
    plan.site = "io/manifest-write";
    FaultScope scope(plan);
    put = catalog.value().Put("t", small.value());
  }
  EXPECT_EQ(put.code(), StatusCode::kIoError) << put.ToString();
  // The old generation is still what the catalog serves, in this process
  // and after a reopen; the abandoned g2 file is gone.
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/t.g1.dmc"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/t.g2.dmc"));
  Result<Relation> back = catalog.value().Get("t");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_tuples(), 7u);
  Result<Catalog> reopened = Catalog::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  back = reopened.value().Get("t");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_tuples(), 7u);
}

TEST_F(CatalogTest, FaultedDropRestoresEntryInOrder) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value().Put("a", PaperExampleRelation()).ok());
  ASSERT_TRUE(catalog.value().Put("b", PaperExampleRelation()).ok());
  ASSERT_TRUE(catalog.value().Put("c", PaperExampleRelation()).ok());
  Status drop;
  {
    FaultPlan plan;
    plan.site = "io/manifest-write";
    FaultScope scope(plan);
    drop = catalog.value().Drop("b");
  }
  EXPECT_EQ(drop.code(), StatusCode::kIoError) << drop.ToString();
  // Nothing was deleted and the insertion order survived the rollback.
  EXPECT_EQ(catalog.value().List(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(catalog.value().Get("b").ok());
}

#endif  // DEPMINER_FAULTS_ENABLED

TEST_F(CatalogTest, GetAllFeedsDatabaseProfile) {
  Result<Catalog> catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  Result<Relation> customers = MakeRelation(
      Schema({"id", "name"}), {{"c1", "ann"}, {"c2", "bob"}});
  Result<Relation> orders = MakeRelation(
      Schema({"order", "customer_id"}), {{"o1", "c1"}, {"o2", "c2"}});
  ASSERT_TRUE(customers.ok() && orders.ok());
  ASSERT_TRUE(catalog.value().Put("customers", customers.value()).ok());
  ASSERT_TRUE(catalog.value().Put("orders", orders.value()).ok());

  Result<std::vector<Relation>> all = catalog.value().GetAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 2u);
  std::vector<const Relation*> pointers;
  for (const Relation& r : all.value()) pointers.push_back(&r);
  Result<DatabaseProfile> profile =
      ProfileDatabase(pointers, catalog.value().List());
  ASSERT_TRUE(profile.ok());
  EXPECT_FALSE(profile.value().foreign_keys.empty());
}

TEST(FingerprintHexTest, RoundTripsAndRejectsGarbage) {
  Fingerprinter hasher;
  hasher.UpdateString("catalog-test");
  const Fingerprint fp = hasher.Finish();
  EXPECT_FALSE(fp.IsZero());
  Fingerprint back;
  ASSERT_TRUE(Fingerprint::FromHex(fp.ToHex(), &back));
  EXPECT_EQ(back, fp);

  Fingerprint scratch;
  EXPECT_FALSE(Fingerprint::FromHex("", &scratch));
  EXPECT_FALSE(Fingerprint::FromHex("abc", &scratch));
  EXPECT_FALSE(Fingerprint::FromHex(std::string(31, '0') + "g", &scratch));
  EXPECT_FALSE(Fingerprint::FromHex(std::string(33, '0'), &scratch));
  ASSERT_TRUE(Fingerprint::FromHex(std::string(32, '0'), &scratch));
  EXPECT_TRUE(scratch.IsZero());
}

}  // namespace
}  // namespace depminer
