#include "ind/unary_ind.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

bool Contains(const std::vector<UnaryInd>& inds, const UnaryInd& ind) {
  return std::find(inds.begin(), inds.end(), ind) != inds.end();
}

TEST(UnaryInd, WithinOneRelation) {
  // Column B's values {1,2} ⊆ column A's values {1,2,3}; not vice versa.
  Result<Relation> r = MakeRelation({
      {"1", "1"}, {"2", "2"}, {"3", "1"}, {"1", "2"},
  });
  ASSERT_TRUE(r.ok());
  const std::vector<UnaryInd> inds = DiscoverUnaryInds({&r.value()});
  EXPECT_TRUE(Contains(inds, {0, 1, 0, 0}));   // B ⊆ A
  EXPECT_FALSE(Contains(inds, {0, 0, 0, 1}));  // A ⊄ B
  EXPECT_EQ(inds.size(), 1u);
}

TEST(UnaryInd, AcrossRelationsForeignKeyShape) {
  // orders.customer_id ⊆ customers.id — the foreign-key candidate.
  Result<Relation> customers = MakeRelation(
      Schema({"id", "name"}),
      {{"c1", "ann"}, {"c2", "bob"}, {"c3", "eve"}});
  Result<Relation> orders = MakeRelation(
      Schema({"order", "customer_id"}),
      {{"o1", "c1"}, {"o2", "c1"}, {"o3", "c3"}});
  ASSERT_TRUE(customers.ok());
  ASSERT_TRUE(orders.ok());
  const std::vector<const Relation*> rels = {&customers.value(),
                                             &orders.value()};
  const std::vector<UnaryInd> inds = DiscoverUnaryInds(rels);
  const UnaryInd fk{1, 1, 0, 0};  // orders.customer_id ⊆ customers.id
  EXPECT_TRUE(Contains(inds, fk));
  EXPECT_FALSE(Contains(inds, {0, 0, 1, 1}));  // customers.id ⊄ orders
  EXPECT_EQ(IndToString(fk, rels, {"customers", "orders"}),
            "orders.customer_id <= customers.id");
}

TEST(UnaryInd, EqualColumnsIncludeBothWays) {
  Result<Relation> r = MakeRelation({{"x", "x"}, {"y", "y"}});
  ASSERT_TRUE(r.ok());
  const std::vector<UnaryInd> inds = DiscoverUnaryInds({&r.value()});
  EXPECT_TRUE(Contains(inds, {0, 0, 0, 1}));
  EXPECT_TRUE(Contains(inds, {0, 1, 0, 0}));
}

TEST(UnaryInd, ReflexiveOnlyOnRequest) {
  Result<Relation> r = MakeRelation({{"x"}, {"y"}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(DiscoverUnaryInds({&r.value()}).empty());
  IndOptions options;
  options.include_reflexive = true;
  const std::vector<UnaryInd> inds =
      DiscoverUnaryInds({&r.value()}, options);
  EXPECT_TRUE(Contains(inds, {0, 0, 0, 0}));
}

TEST(UnaryInd, MaxDistinctSkipsWideColumns) {
  Result<Relation> r = MakeRelation({
      {"1", "1"}, {"2", "2"}, {"3", "3"}, {"4", "1"},
  });
  ASSERT_TRUE(r.ok());
  IndOptions options;
  options.max_distinct = 3;
  // Column A has 4 distinct values and is skipped entirely; only B (3
  // distinct) remains, with nothing to compare against.
  EXPECT_TRUE(DiscoverUnaryInds({&r.value()}, options).empty());
}

TEST(UnaryInd, TransitivityHolds) {
  // C ⊆ B ⊆ A must yield C ⊆ A as well.
  Result<Relation> r = MakeRelation({
      {"1", "1", "1"}, {"2", "2", "1"}, {"3", "1", "2"}, {"4", "2", "2"},
  });
  ASSERT_TRUE(r.ok());
  const std::vector<UnaryInd> inds = DiscoverUnaryInds({&r.value()});
  const bool c_in_b = Contains(inds, {0, 2, 0, 1});
  const bool b_in_a = Contains(inds, {0, 1, 0, 0});
  const bool c_in_a = Contains(inds, {0, 2, 0, 0});
  EXPECT_TRUE(c_in_b);
  EXPECT_TRUE(b_in_a);
  EXPECT_TRUE(c_in_a);
}

}  // namespace
}  // namespace depminer
