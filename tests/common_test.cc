// Tests for Status/Result, string utilities, the PRNG and the flag parser.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/arg_parser.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace depminer {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllCodesStringify) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCapacityExceeded),
               "CapacityExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status FailsThrough() {
  DEPMINER_RETURN_NOT_OK(Status::IoError("inner"));
  return Status::OK();
}

TEST(Result, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kIoError);
}

TEST(Strings, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(Strings, SplitJoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "", "y z", "w"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(Strings, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  a b \t\r\n"), "a b");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t "), "");
}

TEST(Strings, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("99999999999999999999999", &v));  // overflow
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));      // UINT64_MAX
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(ParseDouble("-3e2", &v));
  EXPECT_DOUBLE_EQ(v, -300.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(FormatDuration(2.5), "2.50 s");
  EXPECT_EQ(FormatDuration(0.0025), "2.50 ms");
  EXPECT_EQ(FormatDuration(0.0000025), "2.50 us");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.05 * kDraws / kBuckets);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ArgParser, ParsesAllForms) {
  const char* argv[] = {"prog", "--tuples=100", "--attrs=20",
                        "--verbose", "input.csv", "--rate=0.5"};
  ArgParser parser;
  ASSERT_TRUE(parser.Parse(6, argv).ok());
  EXPECT_EQ(parser.GetInt("tuples", 0), 100);
  EXPECT_EQ(parser.GetInt("attrs", 0), 20);
  EXPECT_TRUE(parser.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"input.csv"}));
}

TEST(ArgParser, EqualsFormOnlyNoSpaceSeparatedValues) {
  // `--attrs 20`: 20 is positional, attrs a bare boolean.
  const char* argv[] = {"prog", "--attrs", "20"};
  ArgParser parser;
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_TRUE(parser.GetBool("attrs", false));
  EXPECT_EQ(parser.GetInt("attrs", 7), 0);  // empty value parses as 0
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"20"}));
}

TEST(ArgParser, Defaults) {
  const char* argv[] = {"prog"};
  ArgParser parser;
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_FALSE(parser.Has("missing"));
  EXPECT_EQ(parser.GetInt("missing", 7), 7);
  EXPECT_EQ(parser.GetString("missing", "d"), "d");
  EXPECT_FALSE(parser.GetBool("missing", false));
}

TEST(ArgParser, IntList) {
  const char* argv[] = {"prog", "--sizes=10,20,30"};
  ArgParser parser;
  ASSERT_TRUE(parser.Parse(2, argv).ok());
  EXPECT_EQ(parser.GetIntList("sizes", {}),
            (std::vector<int64_t>{10, 20, 30}));
  EXPECT_EQ(parser.GetIntList("absent", {1, 2}),
            (std::vector<int64_t>{1, 2}));
}

}  // namespace
}  // namespace depminer
