# Scripted CLI test for the catalog workflow: put → list → get → drop.

set(DIR ${WORK}/cli_catalog_dir)
file(REMOVE_RECURSE ${DIR})
file(MAKE_DIRECTORY ${DIR})

execute_process(COMMAND ${FDTOOL} catalog ${DIR} put emp ${DATA}/employees.csv
                RESULT_VARIABLE put_result)
if(NOT put_result EQUAL 0)
  message(FATAL_ERROR "catalog put failed: ${put_result}")
endif()

execute_process(COMMAND ${FDTOOL} catalog ${DIR} list
                RESULT_VARIABLE list_result OUTPUT_VARIABLE list_output)
if(NOT list_result EQUAL 0 OR NOT list_output MATCHES "emp")
  message(FATAL_ERROR "catalog list failed: ${list_output}")
endif()

execute_process(COMMAND ${FDTOOL} catalog ${DIR} get emp
                RESULT_VARIABLE get_result OUTPUT_VARIABLE get_output)
if(NOT get_result EQUAL 0 OR NOT get_output MATCHES "Biochemistry")
  message(FATAL_ERROR "catalog get failed")
endif()

execute_process(COMMAND ${FDTOOL} catalog ${DIR} drop emp
                RESULT_VARIABLE drop_result)
if(NOT drop_result EQUAL 0)
  message(FATAL_ERROR "catalog drop failed")
endif()

file(REMOVE_RECURSE ${DIR})
