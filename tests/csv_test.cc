#include "relation/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace depminer {
namespace {

TEST(Csv, ParsesSimpleWithHeader) {
  Result<Relation> r = ParseCsvRelation("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().schema().names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r.value().num_tuples(), 2u);
  EXPECT_EQ(r.value().Value(1, 1), "y");
}

TEST(Csv, ParsesWithoutHeader) {
  CsvOptions options;
  options.has_header = false;
  Result<Relation> r = ParseCsvRelation("1,x\n2,y\n", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().name(0), "A");
  EXPECT_EQ(r.value().num_tuples(), 2u);
}

TEST(Csv, QuotedFields) {
  Result<Relation> r =
      ParseCsvRelation("a,b\n\"x,y\",\"say \"\"hi\"\"\"\nplain,2\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), "x,y");
  EXPECT_EQ(r.value().Value(0, 1), "say \"hi\"");
  EXPECT_EQ(r.value().Value(1, 0), "plain");
}

TEST(Csv, NewlineInsideQuotedField) {
  Result<Relation> r = ParseCsvRelation("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), "line1\nline2");
}

TEST(Csv, CrLfLineEndings) {
  Result<Relation> r = ParseCsvRelation("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Value(0, 1), "2");
}

TEST(Csv, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  Result<Relation> r = ParseCsvRelation("a;b\n1;2\n", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_attributes(), 2u);
  EXPECT_EQ(r.value().Value(0, 0), "1");
}

TEST(Csv, RejectsRaggedRows) {
  Result<Relation> r = ParseCsvRelation("a,b\n1,2\n3\n");
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(Csv, RejectsEmptyInput) {
  EXPECT_EQ(ParseCsvRelation("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Csv, HeaderOnlyGivesEmptyRelation) {
  Result<Relation> r = ParseCsvRelation("a,b\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_tuples(), 0u);
}

TEST(Csv, MissingFileIsIoError) {
  EXPECT_EQ(ReadCsvRelation("/nonexistent/file.csv").status().code(),
            StatusCode::kIoError);
}

TEST(Csv, EmptyFieldsPreserved) {
  Result<Relation> r = ParseCsvRelation("a,b\n,x\n1,\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Value(0, 0), "");
  EXPECT_EQ(r.value().Value(1, 1), "");
}

TEST(Csv, RoundTripsThroughString) {
  const std::string original = "a,b\n\"x,y\",2\nplain,\"q\"\"q\"\n";
  Result<Relation> r = ParseCsvRelation(original);
  ASSERT_TRUE(r.ok());
  const std::string serialized = CsvToString(r.value());
  Result<Relation> again = ParseCsvRelation(serialized);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again.value().num_tuples(), r.value().num_tuples());
  for (TupleId t = 0; t < r.value().num_tuples(); ++t) {
    for (AttributeId a = 0; a < r.value().num_attributes(); ++a) {
      EXPECT_EQ(again.value().Value(t, a), r.value().Value(t, a));
    }
  }
}

TEST(Csv, WritesAndReadsFile) {
  Result<Relation> r = ParseCsvRelation("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  const std::string path = ::testing::TempDir() + "/depminer_csv_test.csv";
  ASSERT_TRUE(WriteCsvRelation(r.value(), path).ok());
  Result<Relation> back = ReadCsvRelation(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_tuples(), 2u);
  EXPECT_EQ(back.value().Value(1, 0), "3");
  std::remove(path.c_str());
}

TEST(Csv, QuotingDisabled) {
  CsvOptions options;
  options.allow_quoting = false;
  Result<Relation> r = ParseCsvRelation("a,b\n\"x\",2\n", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Value(0, 0), "\"x\"");  // quotes kept literal
}

TEST(Csv, RejectsUnterminatedQuoteAtEof) {
  Result<Relation> r = ParseCsvRelation("a,b\n\"open,2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("unterminated"), std::string::npos)
      << r.status().ToString();
}

TEST(Csv, RejectsUnterminatedQuoteSpanningLines) {
  // The open quote swallows the rest of the file; still unterminated.
  Result<Relation> r = ParseCsvRelation("a,b\n\"open,2\n3,4\n5,6\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Csv, RejectsEmbeddedNulByte) {
  std::string csv = "a,b\n1,2\n";
  csv[5] = '\0';  // overwrite the '1' cell with a NUL
  Result<Relation> r = ParseCsvRelation(csv);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("NUL"), std::string::npos)
      << r.status().ToString();
}

TEST(Csv, CrLfOnlyFileIsEmptyInput) {
  for (const std::string content : {"\r\n", "\r\n\r\n\r\n", "\n\n", "\r\n\n"}) {
    Result<Relation> r = ParseCsvRelation(content);
    ASSERT_FALSE(r.ok()) << '"' << content << '"';
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("empty CSV input"), std::string::npos)
        << r.status().ToString();
  }
}

TEST(Csv, LeadingBlankLinesBeforeHeaderAreSkipped) {
  Result<Relation> r = ParseCsvRelation("\r\n\na,b\n1,2\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().schema().names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r.value().num_tuples(), 1u);
}

TEST(Csv, ReaderStatusIsStickyAfterMalformedInput) {
  std::istringstream in("a,b\n\"open\n");
  CsvRecordReader reader(in, CsvOptions{});
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(&fields));  // the header
  EXPECT_FALSE(reader.Next(&fields));
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(reader.Next(&fields));  // still failed, no crash
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace depminer
