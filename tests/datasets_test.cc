// Golden tests over the CSV datasets bundled in data/: known planted
// dependencies are discovered, all algorithms agree, Armstrong samples
// verify. These serve as end-to-end regression anchors — if refactoring
// changes any discovered cover, these fail with a readable diff.

#include <gtest/gtest.h>

#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "fastfds/fastfds.h"
#include "fd/keys.h"
#include "fd/satisfaction.h"
#include "relation/csv.h"
#include "tane/tane.h"
#include "test_util.h"

#ifndef DEPMINER_TEST_DATA_DIR
#define DEPMINER_TEST_DATA_DIR "data"
#endif

namespace depminer {
namespace {

Relation LoadDataset(const std::string& name) {
  Result<Relation> r =
      ReadCsvRelation(std::string(DEPMINER_TEST_DATA_DIR) + "/" + name);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

FunctionalDependency NamedFd(const Relation& r,
                             const std::vector<std::string>& lhs,
                             const std::string& rhs) {
  FunctionalDependency fd;
  for (const std::string& name : lhs) {
    Result<AttributeId> id = r.schema().Find(name);
    EXPECT_TRUE(id.ok()) << name;
    fd.lhs.Add(id.value());
  }
  Result<AttributeId> id = r.schema().Find(rhs);
  EXPECT_TRUE(id.ok()) << rhs;
  fd.rhs = id.value();
  return fd;
}

void ExpectAllAlgorithmsAgree(const Relation& r, const FdSet& reference) {
  Result<TaneResult> tane = TaneDiscover(r);
  ASSERT_TRUE(tane.ok());
  EXPECT_EQ(tane.value().fds.fds(), reference.fds());
  Result<FastFdsResult> fast = FastFdsDiscover(r);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast.value().fds.fds(), reference.fds());
}

TEST(Datasets, EmployeesIsThePaperExample) {
  const Relation r = LoadDataset("employees.csv");
  EXPECT_EQ(r.num_tuples(), 7u);
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined.value().fds.size(), 14u);
  EXPECT_TRUE(mined.value().fds.Implies(NamedFd(r, {"depnum"}, "depname")));
  EXPECT_TRUE(mined.value().fds.Implies(NamedFd(r, {"depname"}, "mgr")));
  ExpectAllAlgorithmsAgree(r, mined.value().fds);
}

TEST(Datasets, OrdersHasPlantedBusinessRules) {
  const Relation r = LoadDataset("orders.csv");
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const FdSet& fds = mined.value().fds;

  // The business rules baked into the file.
  EXPECT_TRUE(fds.Implies(NamedFd(r, {"customer"}, "city")));
  EXPECT_TRUE(fds.Implies(NamedFd(r, {"customer"}, "zip")));
  EXPECT_TRUE(fds.Implies(NamedFd(r, {"zip"}, "city")));
  EXPECT_TRUE(fds.Implies(NamedFd(r, {"product"}, "unit_price")));
  EXPECT_TRUE(fds.Implies(NamedFd(r, {"order_id"}, "customer")));
  // And a non-rule: city does not determine zip (Lyon has 69001/69003).
  EXPECT_FALSE(Holds(r, NamedFd(r, {"city"}, "zip")));

  // order_id is a candidate key.
  const std::vector<AttributeSet> keys = CandidateKeys(fds);
  const AttributeId order_id = r.schema().Find("order_id").value();
  bool order_id_is_key = false;
  for (const AttributeSet& k : keys) {
    if (k == AttributeSet::Single(order_id)) order_id_is_key = true;
  }
  EXPECT_TRUE(order_id_is_key);

  ExpectAllAlgorithmsAgree(r, fds);

  // The Armstrong sample round-trips the cover.
  ASSERT_TRUE(mined.value().armstrong.has_value());
  EXPECT_TRUE(
      IsArmstrongFor(*mined.value().armstrong, mined.value().all_max_sets));
}

TEST(Datasets, CoursesCompositeKeys) {
  const Relation r = LoadDataset("courses.csv");
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const FdSet& fds = mined.value().fds;

  // course determines dept in this extension.
  EXPECT_TRUE(fds.Implies(NamedFd(r, {"course"}, "dept")));
  // (course, section, term) identifies the offering.
  EXPECT_TRUE(
      fds.Implies(NamedFd(r, {"course", "section", "term"}, "room")));
  EXPECT_TRUE(
      fds.Implies(NamedFd(r, {"course", "section", "term"}, "instructor")));
  // section alone determines nothing interesting.
  EXPECT_FALSE(Holds(r, NamedFd(r, {"section"}, "room")));

  ExpectAllAlgorithmsAgree(r, fds);
}

TEST(Datasets, GoldenFdCounts) {
  // Regression anchors: exact cover sizes for the bundled files. If a
  // change alters these, either the datasets changed or discovery did.
  struct Golden {
    const char* file;
    size_t fd_count;
  };
  for (const Golden& g : std::initializer_list<Golden>{
           {"employees.csv", 14},
       }) {
    const Relation r = LoadDataset(g.file);
    Result<DepMinerResult> mined = MineDependencies(r);
    ASSERT_TRUE(mined.ok());
    EXPECT_EQ(mined.value().fds.size(), g.fd_count) << g.file;
  }
}

}  // namespace
}  // namespace depminer
