// Tests for relation utilities (project/select/sample/concat), FD-set
// text serialization, and NULL semantics in the loaders.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/dep_miner.h"
#include "fd/fd_io.h"
#include "fd/naive_discovery.h"
#include "fd/projection.h"
#include "fd/satisfaction.h"
#include "relation/csv.h"
#include "relation/relation_builder.h"
#include "relation/relation_ops.h"
#include "storage/streaming.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

TEST(RelationOps, ProjectKeepsValuesAndNames) {
  const Relation r = PaperExampleRelation();
  Result<Relation> projected =
      ProjectRelation(r, AttributeSet::FromLetters("BD"));
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().schema().names(),
            (std::vector<std::string>{"depnum", "depname"}));
  EXPECT_EQ(projected.value().num_tuples(), 7u);
  EXPECT_EQ(projected.value().Value(0, 0), "1");
  EXPECT_EQ(projected.value().Value(2, 1), "Computer Sce");
}

TEST(RelationOps, ProjectionRespectsFdProjection) {
  // FDs of π_X(r) are implied by π_X(dep(r)); and every projected FD
  // holds in the projected relation.
  const Relation r = RandomRelation(5, 40, 3, 7);
  const AttributeSet x = AttributeSet::FromLetters("ACD");
  Result<Relation> projected = ProjectRelation(r, x);
  ASSERT_TRUE(projected.ok());
  const FdSet full = NaiveFdDiscovery(r);
  const FdSet on_fragment = ProjectFds(full, x);
  // Remap attribute ids: projection relation uses dense ids 0..2 for
  // A, C, D.
  const std::vector<AttributeId> members = x.Members();
  for (const FunctionalDependency& fd : on_fragment.fds()) {
    FunctionalDependency remapped;
    fd.lhs.ForEach([&](AttributeId a) {
      const auto pos = std::find(members.begin(), members.end(), a);
      remapped.lhs.Add(static_cast<AttributeId>(pos - members.begin()));
    });
    const auto rhs_pos = std::find(members.begin(), members.end(), fd.rhs);
    remapped.rhs = static_cast<AttributeId>(rhs_pos - members.begin());
    EXPECT_TRUE(Holds(projected.value(), remapped)) << fd.ToString();
  }
}

TEST(RelationOps, ProjectRejectsBadInput) {
  const Relation r = PaperExampleRelation();
  EXPECT_FALSE(ProjectRelation(r, AttributeSet()).ok());
  AttributeSet out_of_range;
  out_of_range.Add(99);
  EXPECT_FALSE(ProjectRelation(r, out_of_range).ok());
}

TEST(RelationOps, SelectRowsInOrderWithRepeats) {
  const Relation r = PaperExampleRelation();
  Result<Relation> selected = SelectRows(r, {2, 0, 2});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().num_tuples(), 3u);
  EXPECT_EQ(selected.value().Value(0, 0), "2");
  EXPECT_EQ(selected.value().Value(1, 0), "1");
  EXPECT_EQ(selected.value().Value(2, 0), "2");
  EXPECT_FALSE(SelectRows(r, {99}).ok());
}

TEST(RelationOps, SampleRowsDeterministicAndBounded) {
  const Relation r = RandomRelation(3, 100, 5, 11);
  Result<Relation> a = SampleRows(r, 10, 3);
  Result<Relation> b = SampleRows(r, 10, 3);
  Result<Relation> c = SampleRows(r, 10, 4);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value().num_tuples(), 10u);
  EXPECT_EQ(CsvToString(a.value()), CsvToString(b.value()));
  EXPECT_NE(CsvToString(a.value()), CsvToString(c.value()));
  // count >= p returns everything.
  Result<Relation> all = SampleRows(r, 1000, 1);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().num_tuples(), 100u);
}

TEST(RelationOps, SampledFdsAreImpliedByMining) {
  // Any FD of the full relation holds in every sample (FDs are preserved
  // under subsets).
  const Relation r = RandomRelation(4, 80, 3, 9);
  Result<Relation> sample = SampleRows(r, 30, 5);
  ASSERT_TRUE(sample.ok());
  const FdSet full = NaiveFdDiscovery(r);
  for (const FunctionalDependency& fd : full.fds()) {
    EXPECT_TRUE(Holds(sample.value(), fd)) << fd.ToString();
  }
}

TEST(RelationOps, ConcatRequiresSameSchema) {
  const Relation r = PaperExampleRelation();
  Result<Relation> doubled = ConcatRelations(r, r);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value().num_tuples(), 14u);
  Result<Relation> other = MakeRelation({{"x", "y"}});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(ConcatRelations(r, other.value()).ok());
}

TEST(RelationOps, ConcatPreservesFdSemantics) {
  // dep(r ∪ r) = dep(r): duplicating every tuple changes nothing.
  const Relation r = RandomRelation(4, 30, 3, 21);
  Result<Relation> doubled = ConcatRelations(r, r);
  ASSERT_TRUE(doubled.ok());
  Result<DepMinerResult> a = MineDependencies(r);
  Result<DepMinerResult> b = MineDependencies(doubled.value());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().fds.fds(), b.value().fds.fds());
}

TEST(FdIo, RoundTripsThroughText) {
  const Relation r = PaperExampleRelation();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const std::string text = FdSetToText(mined.value().fds, r.schema());
  Schema schema;
  Result<FdSet> back = FdSetFromText(text, &schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(schema.names(), r.schema().names());
  EXPECT_EQ(back.value().fds(), mined.value().fds.fds());
}

TEST(FdIo, EmptyLhsAndComments) {
  Schema schema;
  Result<FdSet> fds = FdSetFromText(
      "# fdset A B\n"
      "# a comment\n"
      "\n"
      "{} -> A\n"
      "A -> B\n",
      &schema);
  ASSERT_TRUE(fds.ok()) << fds.status().ToString();
  ASSERT_EQ(fds.value().size(), 2u);
  EXPECT_EQ(fds.value().fds()[0], Fd("", 'A'));
  EXPECT_EQ(fds.value().fds()[1], Fd("A", 'B'));
}

TEST(FdIo, Rejections) {
  Schema schema;
  EXPECT_FALSE(FdSetFromText("", &schema).ok());
  EXPECT_FALSE(FdSetFromText("no header\n", &schema).ok());
  EXPECT_FALSE(FdSetFromText("# fdset\n", &schema).ok());
  EXPECT_FALSE(FdSetFromText("# fdset A B\nA => B\n", &schema).ok());
  EXPECT_FALSE(FdSetFromText("# fdset A B\nC -> B\n", &schema).ok());
  EXPECT_FALSE(FdSetFromText("# fdset A B\nA -> D\n", &schema).ok());
}

TEST(FdIo, SaveAndLoadFile) {
  FdSet fds(2, {Fd("A", 'B')});
  const Schema schema = Schema::Default(2);
  const std::string path = ::testing::TempDir() + "/depminer_fdio.fds";
  ASSERT_TRUE(SaveFdSet(fds, schema, path).ok());
  Schema loaded_schema;
  Result<FdSet> loaded = LoadFdSet(path, &loaded_schema);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().fds(), fds.fds());
}

TEST(Nulls, DistinctNullsNeverAgree) {
  CsvOptions options;
  options.nulls_distinct = true;  // null_token defaults to ""
  Result<Relation> r = ParseCsvRelation("a,b\n1,\n1,\n", options);
  ASSERT_TRUE(r.ok());
  // Without NULL semantics, B would be constant (∅ -> B) and A -> B
  // would hold; with NULLs distinct, the two empty cells disagree.
  EXPECT_FALSE(Holds(r.value(), Fd("A", 'B')));
  EXPECT_FALSE(Holds(r.value(), Fd("", 'B')));
  EXPECT_EQ(r.value().Value(0, 1), "");  // rendering preserved
  Result<Relation> plain = ParseCsvRelation("a,b\n1,\n1,\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(Holds(plain.value(), Fd("A", 'B')));
}

TEST(Nulls, CustomTokenAndStreamingAgree) {
  const std::string csv = "a,b\n1,NA\n1,NA\n2,x\n3,x\n";
  CsvOptions options;
  options.nulls_distinct = true;
  options.null_token = "NA";

  Result<Relation> loaded = ParseCsvRelation(csv, options);
  ASSERT_TRUE(loaded.ok());
  Result<DepMinerResult> direct = MineDependencies(loaded.value());
  ASSERT_TRUE(direct.ok());

  const std::string path = ::testing::TempDir() + "/depminer_nulls.csv";
  {
    std::ofstream out(path);
    out << csv;
  }
  StreamingOptions stream_options;
  stream_options.csv = options;
  Result<StreamingMineResult> streamed =
      MineCsvStreaming(path, stream_options);
  std::remove(path.c_str());
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(streamed.value().fds.fds(), direct.value().fds.fds());
}

}  // namespace
}  // namespace depminer
