// The search-space pruning layer end to end: the partition-product cache
// (hits, LRU eviction, byte accounting, budget-trip degradation), the
// per-miner arity-cap equivalence (capped run == unbounded cover filtered
// to |lhs| <= k), TANE's forced-epsilon=0 approximate path, the capped
// transversal searches, the redundancy ranking, and the MiningOptions
// validation. Suite names start with "Pruning" so the tsan preset's
// filter picks the whole file up.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/mining_options.h"
#include "common/run_context.h"
#include "core/dep_miner.h"
#include "fastfds/fastfds.h"
#include "fd/fd_diff.h"
#include "fd/ranking.h"
#include "fd/satisfaction.h"
#include "fdep/fdep.h"
#include "hypergraph/berge_transversals.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/levelwise_transversals.h"
#include "partition/partition_database.h"
#include "partition/partition_product.h"
#include "relation/relation_builder.h"
#include "tane/tane.h"
#include "test_util.h"
#include "verify/miners.h"

namespace depminer {
namespace {

using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;
using ::depminer::testing::Sets;

AttributeSet SetOf(std::initializer_list<AttributeId> ids) {
  AttributeSet set;
  for (AttributeId id : ids) set.Add(id);
  return set;
}

// ---------------------------------------------------------------- cache

TEST(PruningCache, SingleAttributesAliasTheBaseDatabase) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  PartitionCache cache(&db);
  std::shared_ptr<const StrippedPartition> p = cache.Get(SetOf({0}));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p.get(), &db.partition(0)) << "singles must alias, not copy";
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().inserts, 0u) << "aliases are never stored";
}

TEST(PruningCache, GetComputesInsertsAndHitsOnRepeat) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  PartitionCache cache(&db);

  const AttributeSet bc = SetOf({1, 2});
  std::shared_ptr<const StrippedPartition> first = cache.Get(bc);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_GT(cache.stats().bytes, 0u);

  std::shared_ptr<const StrippedPartition> again = cache.Get(bc);
  EXPECT_EQ(again.get(), first.get()) << "a hit returns the same partition";
  EXPECT_EQ(cache.stats().hits, 1u);

  // The cached product must equal a from-scratch computation.
  PartitionProductWorkspace workspace(r.num_tuples());
  const StrippedPartition direct =
      workspace.Product(db.partition(1), db.partition(2));
  EXPECT_TRUE(*first == direct);
}

TEST(PruningCache, PrefixChainsAreReusedAcrossOverlappingSets) {
  const Relation r = RandomRelation(6, 80, 3, 7);
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  PartitionCache cache(&db);
  (void)cache.Get(SetOf({0, 1, 2}));  // inserts {0,1} and {0,1,2}
  EXPECT_EQ(cache.stats().inserts, 2u);
  const size_t misses_before = cache.stats().misses;
  (void)cache.Get(SetOf({0, 1, 2, 3}));  // must extend the cached chain
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
  EXPECT_EQ(cache.stats().inserts, 3u)
      << "only {0,1,2,3} is new; the {0,1,2} prefix chain must be reused";
}

TEST(PruningCache, LruEvictionReleasesBytesOldestFirst) {
  const Relation r = RandomRelation(8, 120, 2, 3);
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  // Budget two entries, roughly: probe one pair to size the budget.
  PartitionCache probe(&db);
  (void)probe.Get(SetOf({0, 1}));
  const size_t entry_bytes = probe.stats().bytes;
  ASSERT_GT(entry_bytes, 0u);

  PartitionCache::Config config;
  config.max_bytes = entry_bytes * 2 + entry_bytes / 2;
  PartitionCache cache(&db, config);
  (void)cache.Get(SetOf({0, 1}));
  (void)cache.Get(SetOf({2, 3}));
  (void)cache.Get(SetOf({4, 5}));  // evicts the LRU entry {0,1}
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, config.max_bytes);

  const size_t misses_before = cache.stats().misses;
  (void)cache.Get(SetOf({2, 3}));  // still resident
  EXPECT_EQ(cache.stats().misses, misses_before);
  (void)cache.Get(SetOf({0, 1}));  // evicted: recomputed, still correct
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(PruningCache, ChargesAndReleasesRunContextBytes) {
  const Relation r = PaperExampleRelation();
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  RunContext ctx;
  ctx.SetMemoryBudget(64 * 1024 * 1024);
  {
    PartitionCache::Config config;
    config.run_context = &ctx;
    PartitionCache cache(&db, config);
    (void)cache.Get(SetOf({0, 1}));
    (void)cache.Get(SetOf({2, 3}));
    EXPECT_EQ(ctx.bytes_used(), cache.stats().bytes);
    EXPECT_GT(ctx.bytes_used(), 0u);
  }
  // Destruction releases every charged byte.
  EXPECT_EQ(ctx.bytes_used(), 0u);
}

TEST(PruningCache, BudgetTripDegradesToUncachedRecomputation) {
  const Relation r = RandomRelation(6, 100, 3, 11);
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  RunContext ctx;
  ctx.SetMemoryBudget(1);  // the first charge overruns the budget
  PartitionCache::Config config;
  config.run_context = &ctx;
  PartitionCache cache(&db, config);

  // The first insert charges its bytes; the overrun is observed at the
  // *next* insert (trips are polled, not synchronous), which degrades
  // the cache and releases every charged byte.
  (void)cache.Get(SetOf({0, 1}));
  EXPECT_EQ(cache.stats().inserts, 1u);
  std::shared_ptr<const StrippedPartition> p = cache.Get(SetOf({2, 3}));
  ASSERT_NE(p, nullptr) << "a degraded cache still computes, uncached";
  EXPECT_TRUE(cache.stats().degraded);
  EXPECT_EQ(cache.stats().bytes, 0u) << "degrading releases charged bytes";
  EXPECT_EQ(ctx.bytes_used(), 0u);

  // Correctness is preserved: the uncached product is the real product.
  PartitionProductWorkspace workspace(r.num_tuples());
  const StrippedPartition direct =
      workspace.Product(db.partition(2), db.partition(3));
  EXPECT_TRUE(*p == direct);

  // Degradation is sticky: later inserts are refused.
  (void)cache.Get(SetOf({4, 5}));
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_TRUE(cache.stats().degraded);
}

TEST(PruningCache, TaneWithCacheBitIdenticalAcrossThreadCounts) {
  const Relation r = RandomRelation(7, 160, 3, 19);
  Result<TaneResult> reference = TaneDiscover(r);
  ASSERT_TRUE(reference.ok());
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const StrippedPartitionDatabase db =
        StrippedPartitionDatabase::FromRelation(r, threads);
    PartitionCache cache(&db);
    TaneOptions options;
    options.num_threads = threads;
    options.partition_cache = &cache;
    Result<TaneResult> cached = TaneDiscover(r, options);
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(cached.value().fds.fds(), reference.value().fds.fds())
        << "cached TANE diverged at " << threads << " threads";
    EXPECT_GT(cache.stats().hits + cache.stats().misses, 0u);
  }
}

// ------------------------------------------------- arity-cap equivalence

FdSet FilterToArity(const FdSet& cover, size_t num_attributes, size_t cap) {
  std::vector<FunctionalDependency> kept;
  for (const FunctionalDependency& fd : cover.fds()) {
    if (fd.lhs.Count() <= cap) kept.push_back(fd);
  }
  return FdSet(num_attributes, kept);
}

TEST(PruningArity, EveryMinerCappedEqualsFilteredUnbounded) {
  const Relation r = RandomRelation(6, 90, 3, 23);
  for (const MinerConfig& miner : AllMiners()) {
    const MinerOutcome unbounded = miner.run(r, 1, nullptr);
    ASSERT_TRUE(unbounded.error.ok()) << miner.name;
    for (const size_t cap : {size_t{1}, size_t{2}, size_t{3}}) {
      MiningOptions capped;
      capped.max_lhs_arity = cap;
      const MinerOutcome out = miner.run_with(r, 1, nullptr, capped);
      ASSERT_TRUE(out.error.ok()) << miner.name << " k=" << cap;
      EXPECT_EQ(out.fds.fds(),
                FilterToArity(unbounded.fds, r.num_attributes(), cap).fds())
          << miner.name << " diverged from the filtered cover at k=" << cap;
    }
  }
}

TEST(PruningArity, CapReportsPrunedCandidates) {
  const Relation r = RandomRelation(8, 100, 2, 5);
  TaneOptions tane_options;
  tane_options.mining.max_lhs_arity = 1;
  Result<TaneResult> tane = TaneDiscover(r, tane_options);
  ASSERT_TRUE(tane.ok());
  EXPECT_GT(tane.value().stats.candidates_pruned, 0u)
      << "a binding cap must count what it kept un-generated";

  // The paper example needs lhs of size 2 (BC -> A and friends), so a
  // cap of 1 must block level-2 transversal joins before generation.
  DepMinerOptions dm_options;
  dm_options.build_armstrong = false;
  dm_options.mining.max_lhs_arity = 1;
  Result<DepMinerResult> dm = MineDependencies(PaperExampleRelation(), dm_options);
  ASSERT_TRUE(dm.ok());
  EXPECT_GT(dm.value().lhs.stats.candidates_pruned, 0u);
}

TEST(PruningArity, ArmstrongConstructionRefusedUnderCap) {
  const Relation r = PaperExampleRelation();
  DepMinerOptions options;
  options.build_armstrong = true;
  options.mining.max_lhs_arity = 2;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  ASSERT_TRUE(mined.ok());
  EXPECT_FALSE(mined.value().armstrong.has_value());
  EXPECT_EQ(mined.value().armstrong_status.code(),
            StatusCode::kInvalidArgument)
      << "a capped cover no longer determines MAX(dep(r))";
}

TEST(PruningArity, NonTaneMinersRejectErrorThreshold) {
  const Relation r = PaperExampleRelation();
  MiningOptions approximate;
  approximate.max_g3_error = 0.1;

  DepMinerOptions dm;
  dm.mining = approximate;
  EXPECT_EQ(MineDependencies(r, dm).status().code(),
            StatusCode::kInvalidArgument);

  FastFdsOptions ff;
  ff.mining = approximate;
  EXPECT_EQ(FastFdsDiscover(r, ff).status().code(),
            StatusCode::kInvalidArgument);

  FdepOptions fdep;
  fdep.mining = approximate;
  EXPECT_EQ(FdepDiscover(r, fdep).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ approximate path

TEST(PruningAfd, ForcedErrorValidationAtZeroEqualsExact) {
  for (const uint64_t seed : {3u, 17u, 41u}) {
    const Relation r = RandomRelation(6, 70, 3, seed);
    Result<TaneResult> exact = TaneDiscover(r);
    ASSERT_TRUE(exact.ok());
    TaneOptions forced_options;
    forced_options.mining.force_error_validation = true;
    Result<TaneResult> forced = TaneDiscover(r, forced_options);
    ASSERT_TRUE(forced.ok());
    EXPECT_EQ(forced.value().fds.fds(), exact.value().fds.fds())
        << "the g3 path at epsilon=0 must equal the exact comparison "
        << "(seed " << seed << ")";
  }
}

TEST(PruningAfd, PositiveThresholdEmitsOnlyFdsWithinError) {
  const Relation r = RandomRelation(5, 60, 3, 29);
  TaneOptions options;
  options.mining.max_g3_error = 0.2;
  Result<TaneResult> afd = TaneDiscover(r, options);
  ASSERT_TRUE(afd.ok());
  ASSERT_GT(afd.value().fds.size(), 0u);
  for (const FunctionalDependency& fd : afd.value().fds.fds()) {
    EXPECT_LE(G3Error(r, fd.lhs, fd.rhs), 0.2)
        << fd.ToString() << " exceeds the threshold";
  }
  // The approximate cover contains every exact FD (g3 = 0 <= epsilon),
  // so it implies the whole exact minimal cover.
  Result<TaneResult> exact = TaneDiscover(r);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(DiffFdSets(exact.value().fds, afd.value().fds).lost.empty());
}

// ------------------------------------------------- transversal-level caps

TEST(PruningTransversals, LevelwiseCapEqualsFilteredUnbounded) {
  const std::vector<AttributeSet> edges = Sets({"AB", "CD", "AE", "BD"});
  const Hypergraph hypergraph(5, edges);
  LevelwiseStats stats;
  const std::vector<AttributeSet> unbounded =
      LevelwiseMinimalTransversals(hypergraph, &stats);
  for (const size_t cap : {size_t{1}, size_t{2}, size_t{3}}) {
    LevelwiseStats capped_stats;
    const std::vector<AttributeSet> capped = LevelwiseMinimalTransversals(
        hypergraph, &capped_stats, nullptr, cap);
    std::vector<AttributeSet> expected;
    for (const AttributeSet& t : unbounded) {
      if (t.Count() <= cap) expected.push_back(t);
    }
    EXPECT_EQ(capped, expected) << "levelwise diverged at cap " << cap;
  }
}

TEST(PruningTransversals, BergeCapEqualsFilteredUnbounded) {
  const std::vector<AttributeSet> edges = Sets({"AB", "CD", "AE", "BD"});
  const Hypergraph hypergraph(5, edges);
  std::vector<AttributeSet> unbounded = BergeMinimalTransversals(hypergraph);
  std::sort(unbounded.begin(), unbounded.end());
  for (const size_t cap : {size_t{1}, size_t{2}, size_t{3}}) {
    std::vector<AttributeSet> capped =
        BergeMinimalTransversals(hypergraph, nullptr, cap);
    std::sort(capped.begin(), capped.end());
    std::vector<AttributeSet> expected;
    for (const AttributeSet& t : unbounded) {
      if (t.Count() <= cap) expected.push_back(t);
    }
    EXPECT_EQ(capped, expected) << "Berge diverged at cap " << cap;
  }
}

// ---------------------------------------------------------------- ranking

TEST(PruningRanking, OrderIsRedundancyDescAndDeterministic) {
  const Relation r = PaperExampleRelation();
  Result<TaneResult> mined = TaneDiscover(r);
  ASSERT_TRUE(mined.ok());
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);

  const RankingResult ranked = RankFds(mined.value().fds, db);
  ASSERT_EQ(ranked.ranked.size(), mined.value().fds.size());
  for (size_t i = 1; i < ranked.ranked.size(); ++i) {
    EXPECT_GE(ranked.ranked[i - 1].redundancy, ranked.ranked[i].redundancy);
  }

  // Cached and uncached ranking agree exactly.
  PartitionCache cache(&db);
  const RankingResult cached = RankFds(mined.value().fds, db, 0, &cache);
  ASSERT_EQ(cached.ranked.size(), ranked.ranked.size());
  for (size_t i = 0; i < ranked.ranked.size(); ++i) {
    EXPECT_EQ(cached.ranked[i].fd, ranked.ranked[i].fd);
    EXPECT_EQ(cached.ranked[i].redundancy, ranked.ranked[i].redundancy);
  }
}

TEST(PruningRanking, TopKIsAPrefixOfTheFullRanking) {
  const Relation r = PaperExampleRelation();
  Result<TaneResult> mined = TaneDiscover(r);
  ASSERT_TRUE(mined.ok());
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  const RankingResult full = RankFds(mined.value().fds, db);
  const RankingResult top3 = RankFds(mined.value().fds, db, 3);
  ASSERT_EQ(top3.ranked.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top3.ranked[i].fd, full.ranked[i].fd);
  }
  // A k past the cover size returns everything.
  const RankingResult all =
      RankFds(mined.value().fds, db, mined.value().fds.size() + 10);
  EXPECT_EQ(all.ranked.size(), mined.value().fds.size());
}

TEST(PruningRanking, RedundancyIsThePartitionError) {
  // One constant-ish column: lhs {B} groups everything, so B -> A carries
  // the maximum redundancy Σ(|c|−1) over π̂_B.
  Result<Relation> r = MakeRelation({
      {"1", "x"}, {"2", "x"}, {"3", "x"}, {"4", "x"},
  });
  ASSERT_TRUE(r.ok());
  Result<TaneResult> mined = TaneDiscover(r.value());
  ASSERT_TRUE(mined.ok());
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r.value());
  const RankingResult ranked = RankFds(mined.value().fds, db);
  ASSERT_FALSE(ranked.ranked.empty());
  // ∅ -> B (B is constant) scores |r| − 1 = 3, the maximum.
  EXPECT_EQ(ranked.ranked.front().redundancy, 3u);
  EXPECT_EQ(ranked.ranked.front().fd.lhs.Count(), 0u);
}

// ---------------------------------------------------------------- options

TEST(PruningOptions, ValidateRejectsOutOfRangeError) {
  MiningOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.max_g3_error = 0.999;
  EXPECT_TRUE(options.Validate().ok());
  options.max_g3_error = 1.0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.max_g3_error = -0.1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PruningOptions, WithinArityTreatsZeroAsUnbounded) {
  MiningOptions options;
  EXPECT_TRUE(options.WithinArity(1000));
  options.max_lhs_arity = 2;
  EXPECT_TRUE(options.WithinArity(2));
  EXPECT_FALSE(options.WithinArity(3));
}

}  // namespace
}  // namespace depminer
