// Tests for FD projection, dependency preservation, and the chase-based
// lossless-join test, including their integration with the normalization
// analyzer (3NF synthesis is lossless + preserving; BCNF decomposition is
// lossless).

#include <gtest/gtest.h>

#include "fd/chase.h"
#include "fd/naive_discovery.h"
#include "fd/normalization.h"
#include "fd/projection.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::RandomRelation;

TEST(Projection, TransitiveChainProjectsAway) {
  // F = {A->B, B->C} over ABC; π_AC(F) must be ≡ {A->C}.
  FdSet f(3, {Fd("A", 'B'), Fd("B", 'C')});
  const FdSet projected = ProjectFds(f, AttributeSet::FromLetters("AC"));
  FdSet expected(3, {Fd("A", 'C')});
  EXPECT_TRUE(projected.EquivalentTo(expected)) << projected.ToString();
  // Nothing mentioning B.
  for (const FunctionalDependency& fd : projected.fds()) {
    EXPECT_FALSE(fd.lhs.Contains(1));
    EXPECT_NE(fd.rhs, 1u);
  }
}

TEST(Projection, OntoFullSchemaIsEquivalent) {
  FdSet f(4, {Fd("A", 'B'), Fd("BC", 'D'), Fd("D", 'A')});
  const FdSet projected = ProjectFds(f, AttributeSet::FromLetters("ABCD"));
  EXPECT_TRUE(projected.EquivalentTo(f));
}

TEST(Projection, OntoIndependentAttributesIsEmpty) {
  FdSet f(4, {Fd("A", 'B')});
  const FdSet projected = ProjectFds(f, AttributeSet::FromLetters("CD"));
  EXPECT_TRUE(projected.Empty()) << projected.ToString();
}

TEST(Projection, KeepsConstantAttributes) {
  FdSet f(3, {Fd("", 'C'), Fd("A", 'B')});
  const FdSet projected = ProjectFds(f, AttributeSet::FromLetters("BC"));
  EXPECT_TRUE(projected.Implies(Fd("", 'C')));
  EXPECT_FALSE(projected.Implies(Fd("", 'B')));
}

TEST(PreservesDependencies, DetectsLossOfFds) {
  // F = {A->B, B->C}; split into AB and AC: B->C is lost.
  FdSet f(3, {Fd("A", 'B'), Fd("B", 'C')});
  EXPECT_TRUE(PreservesDependencies(
      f, {AttributeSet::FromLetters("AB"), AttributeSet::FromLetters("BC")}));
  EXPECT_FALSE(PreservesDependencies(
      f, {AttributeSet::FromLetters("AB"), AttributeSet::FromLetters("AC")}));
}

TEST(Chase, ClassicLosslessBinarySplit) {
  // R(ABC), F = {A->B}: split AB | AC is lossless (A -> B), AB | BC is
  // not (B determines nothing).
  FdSet f(3, {Fd("A", 'B')});
  EXPECT_TRUE(IsLosslessJoin(
      f, {AttributeSet::FromLetters("AB"), AttributeSet::FromLetters("AC")}));
  EXPECT_FALSE(IsLosslessJoin(
      f, {AttributeSet::FromLetters("AB"), AttributeSet::FromLetters("BC")}));
}

TEST(Chase, BinaryShortcutAgreesWithTableau) {
  FdSet f(4, {Fd("A", 'B'), Fd("BC", 'D')});
  const std::vector<std::pair<std::string, std::string>> splits = {
      {"AB", "ACD"}, {"ABC", "CD"}, {"AB", "CD"}, {"ABD", "BC"}};
  for (const auto& [left, right] : splits) {
    const AttributeSet x = AttributeSet::FromLetters(left);
    const AttributeSet y = AttributeSet::FromLetters(right);
    EXPECT_EQ(IsLosslessJoin(f, {x, y}), IsLosslessBinaryJoin(f, x, y))
        << left << " | " << right;
  }
}

TEST(Chase, ThreeWayRequiresTableau) {
  // R(ABCD), F = {A->B, B->C, C->D}: chain decomposition AB|BC|CD is
  // lossless even though no single binary split proves it directly.
  FdSet f(4, {Fd("A", 'B'), Fd("B", 'C'), Fd("C", 'D')});
  EXPECT_TRUE(IsLosslessJoin(f, {AttributeSet::FromLetters("AB"),
                                 AttributeSet::FromLetters("BC"),
                                 AttributeSet::FromLetters("CD")}));
  // Dropping the linking fragment breaks it.
  EXPECT_FALSE(IsLosslessJoin(f, {AttributeSet::FromLetters("AB"),
                                  AttributeSet::FromLetters("CD")}));
}

TEST(Chase, SingleFragmentIsTriviallyLossless) {
  FdSet f(3, {Fd("A", 'B')});
  EXPECT_TRUE(IsLosslessJoin(f, {AttributeSet::FromLetters("ABC")}));
}

// Property sweep: the decompositions proposed by the normalization
// analyzer are lossless (both) and dependency-preserving (3NF synthesis),
// with FDs discovered from random relations.
class NormalizationSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormalizationSoundness, ProposalsAreLosslessAndPreserving) {
  const uint64_t seed = GetParam();
  const Relation r = RandomRelation(5, 40, 3, seed);
  const FdSet fds = NaiveFdDiscovery(r);
  NormalizationAnalysis analysis(r.schema(), fds);

  std::vector<AttributeSet> third_nf;
  for (const DecompositionFragment& frag : analysis.ThirdNfSynthesis()) {
    third_nf.push_back(frag.attributes);
  }
  if (!third_nf.empty()) {
    EXPECT_TRUE(IsLosslessJoin(fds, third_nf)) << "seed " << seed;
    EXPECT_TRUE(PreservesDependencies(fds, third_nf)) << "seed " << seed;
  }

  std::vector<AttributeSet> bcnf;
  for (const DecompositionFragment& frag : analysis.BcnfDecomposition()) {
    bcnf.push_back(frag.attributes);
  }
  ASSERT_FALSE(bcnf.empty());
  EXPECT_TRUE(IsLosslessJoin(fds, bcnf)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizationSoundness,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace depminer
