#include "fastfds/fastfds.h"

#include <gtest/gtest.h>

#include "core/dep_miner.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

TEST(FastFds, PaperExampleMatchesDepMiner) {
  const Relation r = PaperExampleRelation();
  Result<FastFdsResult> fast = FastFdsDiscover(r);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(fast.value().fds.size(), 14u) << fast.value().fds.ToString();
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(fast.value().fds.fds(), mined.value().fds.fds());
}

TEST(FastFds, ConstantColumn) {
  Result<Relation> r = MakeRelation({{"c", "1"}, {"c", "2"}});
  ASSERT_TRUE(r.ok());
  Result<FastFdsResult> fast = FastFdsDiscover(r.value());
  ASSERT_TRUE(fast.ok());
  ASSERT_EQ(fast.value().fds.size(), 1u);
  EXPECT_EQ(fast.value().fds.fds()[0], Fd("", 'A'));
}

TEST(FastFds, NothingDeterminesIsolatedAttribute) {
  // Pair agreeing on everything but B: no non-trivial FD with rhs B.
  Result<Relation> r = MakeRelation({{"x", "1"}, {"x", "2"}});
  ASSERT_TRUE(r.ok());
  Result<FastFdsResult> fast = FastFdsDiscover(r.value());
  ASSERT_TRUE(fast.ok());
  for (const FunctionalDependency& fd : fast.value().fds.fds()) {
    EXPECT_NE(fd.rhs, 1u) << fd.ToString();
  }
  // A is constant here, so exactly one FD: ∅ -> A.
  EXPECT_EQ(fast.value().fds.size(), 1u);
}

TEST(FastFds, SingleTuple) {
  Result<Relation> r = MakeRelation({{"x", "y"}});
  ASSERT_TRUE(r.ok());
  Result<FastFdsResult> fast = FastFdsDiscover(r.value());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast.value().fds.size(), 2u);  // both constant
}

TEST(FastFds, StatsArePopulated) {
  Result<FastFdsResult> fast = FastFdsDiscover(PaperExampleRelation());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast.value().stats.difference_sets, 5u);  // |ag(r)| incl. ∅
  EXPECT_GT(fast.value().stats.search_nodes, 0u);
  EXPECT_EQ(fast.value().stats.num_fds, 14u);
  EXPECT_FALSE(fast.value().stats.ToString().empty());
}

// Differential sweep against the exhaustive oracle and Dep-Miner.
struct FastParam {
  size_t attrs;
  size_t tuples;
  size_t domain;
  uint64_t seed;
};

class FastFdsSweep : public ::testing::TestWithParam<FastParam> {};

TEST_P(FastFdsSweep, MatchesOracleAndDepMiner) {
  const FastParam p = GetParam();
  const Relation r = RandomRelation(p.attrs, p.tuples, p.domain, p.seed);
  Result<FastFdsResult> fast = FastFdsDiscover(r);
  ASSERT_TRUE(fast.ok());
  EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r, fast.value().fds))
      << "seed " << p.seed;
  DepMinerOptions options;
  options.build_armstrong = false;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(fast.value().fds.fds(), mined.value().fds.fds());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FastFdsSweep,
    ::testing::Values(
        FastParam{3, 20, 2, 41}, FastParam{4, 30, 2, 42},
        FastParam{4, 40, 3, 43}, FastParam{5, 50, 3, 44},
        FastParam{5, 30, 4, 45}, FastParam{6, 60, 4, 46},
        FastParam{6, 40, 2, 47}, FastParam{7, 50, 5, 48},
        FastParam{3, 150, 3, 49}, FastParam{8, 35, 4, 50},
        FastParam{5, 10, 2, 51}, FastParam{4, 100, 6, 52}));

}  // namespace
}  // namespace depminer
