// The tentpole safety net: on every dataset shape of the paper-scale
// corpus (run at a seconds-cheap scale), every miner must produce a
// bit-identical cover (1) at 1, 2 and 8 threads — the morsel engine's
// merge-in-morsel-order guarantee — and (2) under the scalar and AVX2
// dominance backends — the kernel's observational-equivalence guarantee.
// The full-size corpus gets the same thread-count check on every
// bench_scale run (scripts/bench_scale.sh refuses to report times for
// non-identical results); this suite keeps the property in the ctest
// gate where a regression fails fast.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/dominance.h"
#include "datagen/synthetic.h"
#include "verify/miners.h"

namespace depminer {
namespace {

/// Seconds-cheap slice of the corpus grid: same sweep structure, tuple
/// counts floored to 64–400.
constexpr double kTestScale = 0.001;

std::vector<CorpusSpec> TestCorpus() { return PaperScaleCorpus(kTestScale); }

std::string CoverSignature(const MinerOutcome& outcome) {
  EXPECT_TRUE(outcome.error.ok()) << outcome.error.ToString();
  EXPECT_TRUE(outcome.complete);
  std::string sig;
  for (const FunctionalDependency& fd : outcome.fds.fds()) {
    sig += fd.ToString();
    sig += '\n';
  }
  return sig;
}

TEST(CorpusDeterminism, EveryMinerBitIdenticalAcrossThreadCounts) {
  for (const CorpusSpec& spec : TestCorpus()) {
    Result<Relation> data = GenerateSynthetic(spec.config);
    ASSERT_TRUE(data.ok()) << spec.name << ": " << data.status().ToString();
    for (const MinerConfig& miner : AllMiners()) {
      // Serial miners have no thread counts to compare; running them here
      // would only burn time (FDEP alone spends a minute on the wide
      // dense_attrs45 point, whose near-key shape yields a half-million-FD
      // cover).
      if (!miner.threaded) continue;
      const std::string reference =
          CoverSignature(miner.run(data.value(), 1, nullptr));
      for (const size_t threads : {size_t{2}, size_t{8}}) {
        EXPECT_EQ(CoverSignature(miner.run(data.value(), threads, nullptr)),
                  reference)
            << miner.name << " diverged at " << threads << " threads on "
            << spec.name;
      }
    }
  }
}

TEST(CorpusDeterminism, EveryMinerBitIdenticalAcrossDominanceBackends) {
  if (!DominanceBackendSupported(DominanceBackend::kAvx2)) {
    GTEST_SKIP() << "host CPU lacks AVX2; only the scalar backend exists";
  }
  const DominanceBackend previous =
      SetDominanceBackend(DominanceBackend::kScalar);
  for (const CorpusSpec& spec : TestCorpus()) {
    Result<Relation> data = GenerateSynthetic(spec.config);
    ASSERT_TRUE(data.ok()) << spec.name << ": " << data.status().ToString();
    for (const MinerConfig& miner : AllMiners()) {
      // FDEP's specialization is quadratic in the cover, and the wide
      // dense_attrs45 point's near-key shape yields a half-million-FD
      // cover — two FDEP runs there add minutes for a kernel-equivalence
      // property the other grid shapes (and the dominance unit suite)
      // already pin down.
      if (miner.name == "fdep" && spec.config.num_attributes > 40) continue;
      SetDominanceBackend(DominanceBackend::kScalar);
      const std::string scalar =
          CoverSignature(miner.run(data.value(), 2, nullptr));
      SetDominanceBackend(DominanceBackend::kAvx2);
      const std::string avx2 =
          CoverSignature(miner.run(data.value(), 2, nullptr));
      EXPECT_EQ(scalar, avx2)
          << miner.name << " diverged across dominance backends on "
          << spec.name;
    }
  }
  SetDominanceBackend(previous);
}

}  // namespace
}  // namespace depminer
