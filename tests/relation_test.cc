#include "relation/relation.h"

#include <gtest/gtest.h>

#include "relation/relation_builder.h"
#include "relation/schema.h"

namespace depminer {
namespace {

TEST(Schema, DefaultNames) {
  const Schema s = Schema::Default(28);
  EXPECT_EQ(s.name(0), "A");
  EXPECT_EQ(s.name(25), "Z");
  EXPECT_EQ(s.name(26), "A1");
  EXPECT_EQ(s.name(27), "B1");
  EXPECT_EQ(s.num_attributes(), 28u);
}

TEST(Schema, Find) {
  const Schema s({"emp", "dep"});
  ASSERT_TRUE(s.Find("dep").ok());
  EXPECT_EQ(s.Find("dep").value(), 1u);
  EXPECT_EQ(s.Find("nope").status().code(), StatusCode::kNotFound);
}

TEST(Schema, Universe) {
  EXPECT_EQ(Schema::Default(4).universe(), AttributeSet::FromLetters("ABCD"));
}

TEST(RelationBuilder, DictionaryEncodes) {
  Result<Relation> r = MakeRelation({{"x", "1"}, {"y", "1"}, {"x", "2"}});
  ASSERT_TRUE(r.ok());
  const Relation& rel = r.value();
  EXPECT_EQ(rel.num_tuples(), 3u);
  EXPECT_EQ(rel.num_attributes(), 2u);
  EXPECT_EQ(rel.DistinctCount(0), 2u);
  EXPECT_EQ(rel.DistinctCount(1), 2u);
  EXPECT_EQ(rel.Code(0, 0), rel.Code(2, 0));  // both "x"
  EXPECT_NE(rel.Code(0, 0), rel.Code(1, 0));
  EXPECT_EQ(rel.Value(1, 0), "y");
  EXPECT_EQ(rel.Value(2, 1), "2");
}

TEST(RelationBuilder, RejectsRaggedRow) {
  RelationBuilder b(Schema::Default(2));
  EXPECT_TRUE(b.AddRow({"a", "b"}).ok());
  EXPECT_EQ(b.AddRow({"a"}).code(), StatusCode::kInvalidArgument);
}

TEST(RelationBuilder, RejectsZeroAttributes) {
  RelationBuilder b(Schema(std::vector<std::string>{}));
  Result<Relation> r = std::move(b).Finish();
  EXPECT_FALSE(r.ok());
}

TEST(RelationBuilder, RejectsTooManyAttributes) {
  RelationBuilder b(Schema::Default(AttributeSet::kMaxAttributes + 1));
  Result<Relation> r = std::move(b).Finish();
  EXPECT_EQ(r.status().code(), StatusCode::kCapacityExceeded);
}

TEST(RelationBuilder, EmptyRelationIsValid) {
  RelationBuilder b(Schema::Default(3));
  Result<Relation> r = std::move(b).Finish();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_tuples(), 0u);
  EXPECT_EQ(r.value().DistinctCount(0), 0u);
}

TEST(RelationBuilder, CodedRowsAreDensified) {
  RelationBuilder b(Schema::Default(1));
  // Sparse codes 5 and 9: after Finish they must be dense {0, 1} and the
  // dictionary must only contain used values.
  ASSERT_TRUE(b.AddCodedRow({5}).ok());
  ASSERT_TRUE(b.AddCodedRow({9}).ok());
  ASSERT_TRUE(b.AddCodedRow({5}).ok());
  Result<Relation> r = std::move(b).Finish();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().DistinctCount(0), 2u);
  EXPECT_EQ(r.value().Code(0, 0), 0u);
  EXPECT_EQ(r.value().Code(1, 0), 1u);
  EXPECT_EQ(r.value().Code(2, 0), 0u);
  EXPECT_EQ(r.value().Value(0, 0), "v5");
  EXPECT_EQ(r.value().Value(1, 0), "v9");
}

TEST(Relation, AgreeSetOfPairs) {
  Result<Relation> r = MakeRelation({
      {"1", "a", "p"},
      {"1", "b", "p"},
      {"2", "a", "q"},
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().AgreeSetOf(0, 1), AttributeSet::FromLetters("AC"));
  EXPECT_EQ(r.value().AgreeSetOf(0, 2), AttributeSet::FromLetters("B"));
  EXPECT_EQ(r.value().AgreeSetOf(1, 2), AttributeSet());
}

TEST(Relation, AgreeOnSet) {
  Result<Relation> r = MakeRelation({{"1", "a"}, {"1", "b"}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().Agree(0, 1, AttributeSet::FromLetters("A")));
  EXPECT_FALSE(r.value().Agree(0, 1, AttributeSet::FromLetters("AB")));
  EXPECT_TRUE(r.value().Agree(0, 1, AttributeSet()));  // vacuous
}

TEST(Relation, TupleToString) {
  Result<Relation> r = MakeRelation({{"1", "x"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().TupleToString(0), "1 | x");
}

TEST(MakeRelation, InfersSchemaWidth) {
  Result<Relation> r = MakeRelation({{"a", "b", "c"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().name(2), "C");
}

TEST(MakeRelation, RejectsEmptyRowList) {
  EXPECT_FALSE(MakeRelation({}).ok());
}

}  // namespace
}  // namespace depminer
