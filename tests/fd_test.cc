// Tests for the FD theory toolkit: closure, covers, minimal covers, keys,
// satisfaction checks, naive discovery and normalization analysis.

#include <gtest/gtest.h>

#include "fd/fd_set.h"
#include "fd/functional_dependency.h"
#include "fd/keys.h"
#include "fd/naive_discovery.h"
#include "fd/normalization.h"
#include "fd/satisfaction.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::Fd;
using ::depminer::testing::PaperExampleRelation;
using ::depminer::testing::RandomRelation;

TEST(FunctionalDependency, Basics) {
  const FunctionalDependency fd = Fd("BC", 'A');
  EXPECT_FALSE(fd.IsTrivial());
  EXPECT_TRUE(Fd("AB", 'A').IsTrivial());
  EXPECT_EQ(fd.ToString(), "BC -> A");
  EXPECT_EQ(Fd("", 'B').ToString(), "{} -> B");
}

TEST(FunctionalDependency, SchemaNames) {
  const Schema schema({"emp", "dep", "mgr"});
  EXPECT_EQ(Fd("AB", 'C').ToString(schema), "emp,dep -> mgr");
}

TEST(FunctionalDependency, CanonicalOrder) {
  std::vector<FunctionalDependency> fds = {Fd("BC", 'A'), Fd("B", 'A'),
                                           Fd("A", 'B'), Fd("B", 'A')};
  Canonicalize(&fds);
  ASSERT_EQ(fds.size(), 3u);
  EXPECT_EQ(fds[0], Fd("B", 'A'));   // rhs A before rhs B, smaller lhs first
  EXPECT_EQ(fds[1], Fd("BC", 'A'));
  EXPECT_EQ(fds[2], Fd("A", 'B'));
}

TEST(FdSet, ClosureChasesTransitively) {
  FdSet f(4, {Fd("A", 'B'), Fd("B", 'C'), Fd("CD", 'A')});
  EXPECT_EQ(f.Closure(AttributeSet::FromLetters("A")),
            AttributeSet::FromLetters("ABC"));
  EXPECT_EQ(f.Closure(AttributeSet::FromLetters("D")),
            AttributeSet::FromLetters("D"));
  EXPECT_EQ(f.Closure(AttributeSet::FromLetters("CD")),
            AttributeSet::FromLetters("ABCD"));
}

TEST(FdSet, ImpliesIncludesReflexivity) {
  FdSet f(3, {Fd("A", 'B')});
  EXPECT_TRUE(f.Implies(AttributeSet::FromLetters("AC"), 2));  // AC -> C
  EXPECT_TRUE(f.Implies(Fd("A", 'B')));
  EXPECT_TRUE(f.Implies(Fd("AC", 'B')));  // augmentation
  EXPECT_FALSE(f.Implies(Fd("B", 'A')));
}

TEST(FdSet, CoverEquivalence) {
  // {A->B, B->C} ≡ {A->B, B->C, A->C}.
  FdSet f(3, {Fd("A", 'B'), Fd("B", 'C')});
  FdSet g(3, {Fd("A", 'B'), Fd("B", 'C'), Fd("A", 'C')});
  EXPECT_TRUE(f.EquivalentTo(g));
  EXPECT_TRUE(g.EquivalentTo(f));
  FdSet h(3, {Fd("A", 'B')});
  EXPECT_FALSE(f.EquivalentTo(h));
  EXPECT_TRUE(f.Covers(h));
  EXPECT_FALSE(h.Covers(f));
}

TEST(FdSet, MinimalCoverRemovesRedundancy) {
  FdSet f(3, {Fd("A", 'B'), Fd("B", 'C'), Fd("A", 'C'),  // A->C redundant
              Fd("AB", 'C'),                             // lhs reducible
              Fd("AA", 'A')});                           // trivial
  const FdSet cover = f.MinimalCover();
  EXPECT_TRUE(cover.EquivalentTo(f));
  EXPECT_EQ(cover.size(), 2u) << cover.ToString();
  for (const FunctionalDependency& fd : cover.fds()) {
    EXPECT_FALSE(fd.IsTrivial());
  }
}

TEST(FdSet, MinimalCoverReducesLhs) {
  // In {A->B, AB->C} the B in AB->C is extraneous.
  FdSet f(3, {Fd("A", 'B'), Fd("AB", 'C')});
  const FdSet cover = f.MinimalCover();
  EXPECT_TRUE(cover.EquivalentTo(f));
  for (const FunctionalDependency& fd : cover.fds()) {
    EXPECT_LE(fd.lhs.Count(), 1u) << fd.ToString();
  }
}

TEST(Keys, SuperkeyAndCandidateKey) {
  FdSet f(3, {Fd("A", 'B'), Fd("B", 'C')});
  EXPECT_TRUE(IsSuperkey(f, AttributeSet::FromLetters("A")));
  EXPECT_TRUE(IsSuperkey(f, AttributeSet::FromLetters("AB")));
  EXPECT_FALSE(IsSuperkey(f, AttributeSet::FromLetters("B")));
  EXPECT_TRUE(IsCandidateKey(f, AttributeSet::FromLetters("A")));
  EXPECT_FALSE(IsCandidateKey(f, AttributeSet::FromLetters("AB")));
}

TEST(Keys, EnumeratesMultipleKeys) {
  // Classic cyclic schema: A->B, B->C, C->A gives keys {A}, {B}, {C}.
  FdSet f(3, {Fd("A", 'B'), Fd("B", 'C'), Fd("C", 'A')});
  EXPECT_EQ(CandidateKeys(f),
            (std::vector<AttributeSet>{AttributeSet::FromLetters("A"),
                                       AttributeSet::FromLetters("B"),
                                       AttributeSet::FromLetters("C")}));
}

TEST(Keys, NoFdsMeansWholeSchemaIsKey) {
  FdSet f(3);
  const std::vector<AttributeSet> keys = CandidateKeys(f);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttributeSet::FromLetters("ABC"));
}

TEST(Keys, CompositeKeys) {
  // AB -> C, C -> B: keys are AB and AC.
  FdSet f(3, {Fd("AB", 'C'), Fd("C", 'B')});
  EXPECT_EQ(CandidateKeys(f),
            (std::vector<AttributeSet>{AttributeSet::FromLetters("AB"),
                                       AttributeSet::FromLetters("AC")}));
}

TEST(Satisfaction, HoldsOnPaperExample) {
  const Relation r = PaperExampleRelation();
  EXPECT_TRUE(Holds(r, Fd("B", 'D')));   // depnum -> depname
  EXPECT_TRUE(Holds(r, Fd("BC", 'A')));
  EXPECT_FALSE(Holds(r, Fd("E", 'B')));  // mgr 2 manages deps 2 and 3
  EXPECT_TRUE(Holds(r, Fd("AB", 'A')));  // trivial always holds
}

TEST(Satisfaction, EmptyLhsMeansConstant) {
  Result<Relation> r = MakeRelation({{"x", "1"}, {"x", "2"}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(Holds(r.value(), AttributeSet(), 0));
  EXPECT_FALSE(Holds(r.value(), AttributeSet(), 1));
}

TEST(Satisfaction, IsMinimalFd) {
  const Relation r = PaperExampleRelation();
  EXPECT_TRUE(IsMinimalFd(r, Fd("BC", 'A')));
  EXPECT_FALSE(IsMinimalFd(r, Fd("BCD", 'A')));  // BC already suffices
  EXPECT_FALSE(IsMinimalFd(r, Fd("E", 'B')));    // does not even hold
}

TEST(Satisfaction, CountViolatingPairs) {
  Result<Relation> r = MakeRelation({
      {"x", "1"}, {"x", "1"}, {"x", "2"}, {"y", "3"},
  });
  ASSERT_TRUE(r.ok());
  // A -> B: within class {1,2,3} pairs (1,3) and (2,3) violate.
  EXPECT_EQ(CountViolatingPairs(r.value(), AttributeSet::FromLetters("A"), 1),
            2u);
  EXPECT_EQ(CountViolatingPairs(r.value(), AttributeSet::FromLetters("B"), 0),
            0u);
}

TEST(Satisfaction, G3Error) {
  Result<Relation> r = MakeRelation({
      {"x", "1"}, {"x", "1"}, {"x", "2"}, {"y", "3"},
  });
  ASSERT_TRUE(r.ok());
  // Remove one tuple (the "x,2" one) and A -> B holds: g3 = 1/4.
  EXPECT_DOUBLE_EQ(G3Error(r.value(), AttributeSet::FromLetters("A"), 1),
                   0.25);
  EXPECT_DOUBLE_EQ(G3Error(r.value(), AttributeSet::FromLetters("B"), 0), 0.0);
}

TEST(NaiveDiscovery, FindsConstantColumns) {
  Result<Relation> r = MakeRelation({{"c", "1"}, {"c", "2"}});
  ASSERT_TRUE(r.ok());
  const FdSet fds = NaiveFdDiscovery(r.value());
  // ∅ -> A (constant) and B -> A (implied but not minimal — must not
  // appear), plus nothing determines B.
  ASSERT_EQ(fds.size(), 1u) << fds.ToString();
  EXPECT_EQ(fds.fds()[0], Fd("", 'A'));
}

TEST(NaiveDiscovery, SingleTupleAllConstants) {
  Result<Relation> r = MakeRelation({{"a", "b"}});
  ASSERT_TRUE(r.ok());
  const FdSet fds = NaiveFdDiscovery(r.value());
  ASSERT_EQ(fds.size(), 2u);
  EXPECT_EQ(fds.fds()[0], Fd("", 'A'));
  EXPECT_EQ(fds.fds()[1], Fd("", 'B'));
}

TEST(NaiveDiscovery, PaperExampleMatchesHandChecked) {
  const Relation r = PaperExampleRelation();
  const FdSet fds = NaiveFdDiscovery(r);
  EXPECT_EQ(fds.size(), 14u) << fds.ToString();
  EXPECT_TRUE(testing::IsExactMinimalFdSetOf(r, fds));
}

TEST(Normalization, DetectsBcnfViolations) {
  // Schema ABC with A->B, B->C: key {A}; B->C violates BCNF and 3NF
  // (C is non-prime).
  const Schema schema = Schema::Default(3);
  FdSet f(3, {Fd("A", 'B'), Fd("B", 'C')});
  NormalizationAnalysis analysis(schema, f);
  EXPECT_FALSE(analysis.InBcnf());
  EXPECT_FALSE(analysis.In3nf());
  ASSERT_EQ(analysis.violations().size(), 1u);
  EXPECT_EQ(analysis.violations()[0].fd, Fd("B", 'C'));
  EXPECT_TRUE(analysis.violations()[0].violates_3nf);
}

TEST(Normalization, ThreeNfButNotBcnf) {
  // AB -> C, C -> B (classic street/city/zip): keys AB and AC; C -> B has
  // non-superkey lhs but prime rhs: 3NF holds, BCNF fails.
  FdSet f(3, {Fd("AB", 'C'), Fd("C", 'B')});
  NormalizationAnalysis analysis(Schema::Default(3), f);
  EXPECT_FALSE(analysis.InBcnf());
  EXPECT_TRUE(analysis.In3nf());
}

TEST(Normalization, BcnfSchemaIsClean) {
  FdSet f(3, {Fd("A", 'B'), Fd("A", 'C')});
  NormalizationAnalysis analysis(Schema::Default(3), f);
  EXPECT_TRUE(analysis.InBcnf());
  EXPECT_TRUE(analysis.In3nf());
  EXPECT_TRUE(analysis.violations().empty());
}

TEST(Normalization, BcnfDecompositionFragmentsAreBcnf) {
  FdSet f(4, {Fd("A", 'B'), Fd("B", 'C'), Fd("C", 'D')});
  NormalizationAnalysis analysis(Schema::Default(4), f);
  const std::vector<DecompositionFragment> fragments =
      analysis.BcnfDecomposition();
  ASSERT_FALSE(fragments.empty());
  // Every attribute appears in some fragment.
  AttributeSet covered;
  for (const DecompositionFragment& frag : fragments) {
    covered = covered.Union(frag.attributes);
  }
  EXPECT_EQ(covered, AttributeSet::FromLetters("ABCD"));
}

TEST(Normalization, ThirdNfSynthesisPreservesDependencies) {
  FdSet f(4, {Fd("A", 'B'), Fd("B", 'C'), Fd("C", 'D')});
  NormalizationAnalysis analysis(Schema::Default(4), f);
  const std::vector<DecompositionFragment> fragments =
      analysis.ThirdNfSynthesis();
  // Each minimal-cover FD must be embeddable in some fragment.
  const FdSet cover = f.MinimalCover();
  for (const FunctionalDependency& fd : cover.fds()) {
    AttributeSet needed = fd.lhs;
    needed.Add(fd.rhs);
    bool embedded = false;
    for (const DecompositionFragment& frag : fragments) {
      if (needed.IsSubsetOf(frag.attributes)) {
        embedded = true;
        break;
      }
    }
    EXPECT_TRUE(embedded) << fd.ToString();
  }
  // Some fragment contains a candidate key (lossless join).
  bool has_key = false;
  for (const DecompositionFragment& frag : fragments) {
    for (const AttributeSet& key : analysis.candidate_keys()) {
      if (key.IsSubsetOf(frag.attributes)) has_key = true;
    }
  }
  EXPECT_TRUE(has_key);
}

TEST(Normalization, ReportMentionsKeysAndStatus) {
  FdSet f(3, {Fd("A", 'B'), Fd("B", 'C')});
  NormalizationAnalysis analysis(Schema::Default(3), f);
  const std::string report = analysis.Report();
  EXPECT_NE(report.find("Candidate keys"), std::string::npos);
  EXPECT_NE(report.find("not in 3NF"), std::string::npos);
}

// Armstrong-axiom flavored property sweep on random relations: dep(r) is
// closed under augmentation and transitivity, as observed through Holds.
class SatisfactionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatisfactionSweep, HoldsRespectsArmstrongAxioms) {
  const Relation r = RandomRelation(4, 25, 3, GetParam());
  const AttributeSet all = r.universe();
  // Augmentation: X -> A implies XB -> A.
  for (AttributeId a = 0; a < 4; ++a) {
    for (AttributeId b = 0; b < 4; ++b) {
      const AttributeSet x = AttributeSet::Single(b);
      if (Holds(r, x, a)) {
        all.ForEach([&](AttributeId extra) {
          AttributeSet grown = x;
          grown.Add(extra);
          EXPECT_TRUE(Holds(r, grown, a));
        });
      }
    }
  }
  // Transitivity through naive discovery: the discovered cover implies
  // exactly the dependencies that hold.
  const FdSet fds = NaiveFdDiscovery(r);
  for (AttributeId a = 0; a < 4; ++a) {
    for (uint32_t mask = 0; mask < 16; ++mask) {
      AttributeSet x;
      for (AttributeId b = 0; b < 4; ++b) {
        if (mask & (1u << b)) x.Add(b);
      }
      EXPECT_EQ(fds.Implies(x, a), Holds(r, x, a))
          << x.ToString() << " -> " << static_cast<char>('A' + a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatisfactionSweep,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace depminer
