#include "core/armstrong.h"
#include "core/armstrong_bounds.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dep_miner.h"
#include "fd/naive_discovery.h"
#include "relation/relation_builder.h"
#include "test_util.h"

namespace depminer {
namespace {

using ::depminer::testing::RandomRelation;
using ::depminer::testing::Sets;

std::vector<AttributeSet> MaxSetsOf(const Relation& r) {
  Result<DepMinerResult> mined = MineDependencies(r);
  EXPECT_TRUE(mined.ok());
  return mined.value().all_max_sets;
}

/// Unwraps the now-fallible synthetic construction for the happy-path
/// tests below.
Relation MustBuildSynthetic(const Schema& schema,
                            const std::vector<AttributeSet>& max_sets) {
  Result<Relation> built = BuildSyntheticArmstrong(schema, max_sets);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TEST(SyntheticArmstrong, SizeIsMaxSetsPlusOne) {
  const Schema schema = Schema::Default(4);
  const std::vector<AttributeSet> max_sets = Sets({"AB", "CD", "A"});
  const Relation armstrong = MustBuildSynthetic(schema, max_sets);
  EXPECT_EQ(armstrong.num_tuples(), 4u);
  EXPECT_EQ(armstrong.num_attributes(), 4u);
}

TEST(SyntheticArmstrong, EquationOnePattern) {
  const Schema schema = Schema::Default(3);
  const Relation armstrong = MustBuildSynthetic(schema, Sets({"AB"}));
  // Tuple 0 is all zeros; tuple 1 agrees with it exactly on AB.
  EXPECT_EQ(armstrong.Value(0, 0), "0");
  EXPECT_EQ(armstrong.Value(0, 2), "0");
  EXPECT_EQ(armstrong.Value(1, 0), "0");
  EXPECT_EQ(armstrong.Value(1, 1), "0");
  EXPECT_EQ(armstrong.Value(1, 2), "1");
  EXPECT_EQ(armstrong.AgreeSetOf(0, 1), AttributeSet::FromLetters("AB"));
}

TEST(SyntheticArmstrong, NoMaxSetsGivesSingleTuple) {
  // |r| ≤ 1 or all FDs hold: MAX empty, Armstrong relation is one tuple.
  const Relation armstrong = MustBuildSynthetic(Schema::Default(3), {});
  EXPECT_EQ(armstrong.num_tuples(), 1u);
  EXPECT_TRUE(IsArmstrongFor(armstrong, {}));
}

// These failure paths must surface as a Status in every build mode — the
// old assert(st.ok()) guard compiled out under NDEBUG and let a Release
// build hand back a corrupt relation.
TEST(SyntheticArmstrong, EmptySchemaFailsWithStatus) {
  Result<Relation> built = BuildSyntheticArmstrong(Schema(), {});
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(SyntheticArmstrong, OutOfSchemaMaxSetFailsWithStatus) {
  // Max set {D} over a 3-attribute schema: Equation 1 could only drop the
  // out-of-range attribute and silently build the wrong relation.
  Result<Relation> built =
      BuildSyntheticArmstrong(Schema::Default(3), Sets({"AD"}));
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("schema"), std::string::npos);
}

TEST(RealWorldArmstrong, Proposition1Failure) {
  // Attribute B has a single distinct value but one max set excludes B:
  // needs 2 values — construction must fail.
  Result<Relation> r = MakeRelation({{"1", "c"}, {"2", "c"}});
  ASSERT_TRUE(r.ok());
  const std::vector<AttributeSet> max_sets = Sets({"A"});  // excludes B
  const Status st = RealWorldArmstrongExists(r.value(), max_sets);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("B"), std::string::npos);
  EXPECT_FALSE(BuildRealWorldArmstrong(r.value(), max_sets).ok());
}

TEST(RealWorldArmstrong, ValuesComeFromInitialRelation) {
  const Relation r = RandomRelation(4, 50, 20, 3);
  const std::vector<AttributeSet> max_sets = MaxSetsOf(r);
  Result<Relation> armstrong = BuildRealWorldArmstrong(r, max_sets);
  ASSERT_TRUE(armstrong.ok()) << armstrong.status().ToString();
  for (TupleId t = 0; t < armstrong.value().num_tuples(); ++t) {
    for (AttributeId a = 0; a < 4; ++a) {
      const std::vector<std::string>& column = r.Dictionary(a);
      EXPECT_NE(std::find(column.begin(), column.end(),
                          armstrong.value().Value(t, a)),
                column.end());
    }
  }
}

TEST(IsArmstrongFor, AcceptsExactAndRejectsWrong) {
  const Schema schema = Schema::Default(3);
  const std::vector<AttributeSet> max_sets = Sets({"AB", "C"});
  const Relation good = MustBuildSynthetic(schema, max_sets);
  EXPECT_TRUE(IsArmstrongFor(good, max_sets));
  // Against a different max family the same relation must fail: either a
  // generator is missing or an agree set is not closed.
  EXPECT_FALSE(IsArmstrongFor(good, Sets({"AB", "BC"})));
  EXPECT_FALSE(IsArmstrongFor(good, Sets({"AB"})));
}

TEST(IsArmstrongFor, DetectsUnclosedAgreeSet) {
  // Relation whose pair agrees on A, but the family says the only
  // generator is AB: the agree set {A} is not closed (closure is AB).
  Result<Relation> r = MakeRelation({{"x", "1"}, {"x", "2"}});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(IsArmstrongFor(r.value(), Sets({"AB"})));
}

TEST(ArmstrongBounds, LowerBoundFormula) {
  EXPECT_EQ(ArmstrongSizeLowerBound(0), 1u);
  EXPECT_EQ(ArmstrongSizeLowerBound(1), 2u);   // C(2,2) = 1
  EXPECT_EQ(ArmstrongSizeLowerBound(3), 3u);   // C(3,2) = 3
  EXPECT_EQ(ArmstrongSizeLowerBound(4), 4u);   // C(3,2) = 3 < 4 ≤ 6
  EXPECT_EQ(ArmstrongSizeLowerBound(10), 5u);  // C(5,2) = 10
  EXPECT_EQ(ArmstrongSizeLowerBound(11), 6u);
}

TEST(ArmstrongBounds, ConstructionsRespectTheBound) {
  for (uint64_t seed : {2ull, 9ull, 23ull}) {
    const Relation r = RandomRelation(5, 40, 4, seed);
    const std::vector<AttributeSet> max_sets = MaxSetsOf(r);
    const size_t built = ArmstrongConstructionSize(max_sets.size());
    EXPECT_GE(built, ArmstrongSizeLowerBound(max_sets.size()));
    const Relation synthetic = MustBuildSynthetic(r.schema(), max_sets);
    EXPECT_EQ(synthetic.num_tuples(), built);
  }
}

// The headline guarantee: both constructions are Armstrong relations for
// dep(r), i.e. mining them back gives exactly the same minimal FDs.
class ArmstrongSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArmstrongSweep, BothConstructionsAreArmstrong) {
  const uint64_t seed = GetParam();
  // Vary shape with the seed; domains high enough that Proposition 1
  // usually holds, small enough to create real dependencies.
  const size_t attrs = 3 + seed % 4;
  const Relation r = RandomRelation(attrs, 30 + 5 * (seed % 5),
                                    6 + seed % 20, seed);
  Result<DepMinerResult> mined = MineDependencies(r);
  ASSERT_TRUE(mined.ok());
  const std::vector<AttributeSet>& max_sets = mined.value().all_max_sets;

  const Relation synthetic = MustBuildSynthetic(r.schema(), max_sets);
  EXPECT_TRUE(IsArmstrongFor(synthetic, max_sets));
  Result<DepMinerResult> resynth = MineDependencies(synthetic);
  ASSERT_TRUE(resynth.ok());
  EXPECT_EQ(resynth.value().fds.fds(), mined.value().fds.fds());

  Result<Relation> real = BuildRealWorldArmstrong(r, max_sets);
  if (real.ok()) {
    EXPECT_TRUE(IsArmstrongFor(real.value(), max_sets));
    EXPECT_EQ(real.value().num_tuples(), max_sets.size() + 1);
    Result<DepMinerResult> remined = MineDependencies(real.value());
    ASSERT_TRUE(remined.ok());
    EXPECT_EQ(remined.value().fds.fds(), mined.value().fds.fds());
  } else {
    // Only acceptable failure: Proposition 1 genuinely violated.
    EXPECT_EQ(real.status().code(), StatusCode::kFailedPrecondition);
    bool deficient = false;
    for (AttributeId a = 0; a < r.num_attributes(); ++a) {
      size_t excluding = 0;
      for (const AttributeSet& m : max_sets) {
        if (!m.Contains(a)) ++excluding;
      }
      if (r.DistinctCount(a) < excluding + 1) deficient = true;
    }
    EXPECT_TRUE(deficient);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArmstrongSweep,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace depminer
