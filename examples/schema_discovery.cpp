// Schema discovery across several CSV exports: mines each relation's
// dependencies and keys, then stitches the cross-relation structure —
// inclusion dependencies and foreign-key candidates — into one report.
// This is the end-to-end "logical tuning" of a whole exported database.
//
//   ./schema_discovery [a.csv b.csv ...] [--json]
//
// With no arguments it runs on the bundled data/orders.csv +
// data/customers.csv pair (paths resolved relative to the repository).

#include <cstdio>

#include "depminer.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser args;
  (void)args.Parse(argc, argv);

  std::vector<std::string> paths(args.positional());
  if (paths.empty()) {
    paths = {"data/orders.csv", "data/customers.csv"};
  }

  std::vector<Relation> owned;
  for (const std::string& path : paths) {
    Result<Relation> r = ReadCsvRelation(path);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      std::fprintf(stderr,
                   "(run from the repository root, or pass CSV paths)\n");
      return 1;
    }
    owned.push_back(std::move(r).value());
  }
  std::vector<const Relation*> relations;
  relations.reserve(owned.size());
  for (const Relation& r : owned) relations.push_back(&r);

  Result<DatabaseProfile> profile = ProfileDatabase(relations, paths);
  if (!profile.ok()) {
    std::fprintf(stderr, "error: %s\n", profile.status().ToString().c_str());
    return 1;
  }

  if (args.GetBool("json", false)) {
    std::printf("%s\n",
                DatabaseProfileToJson(profile.value(), relations).c_str());
    return 0;
  }

  for (const RelationProfile& r : profile.value().relations) {
    std::printf("== %s ==\n", r.source.c_str());
    std::printf("  %zu attributes, %zu tuples, %zu minimal FDs, %s\n",
                r.num_attributes, r.num_tuples, r.fds.size(),
                r.in_bcnf ? "BCNF" : r.in_3nf ? "3NF" : "below 3NF");
    std::printf("  keys:");
    for (const AttributeSet& key : r.candidate_keys) {
      std::printf(" {%s}", key.ToString(r.attribute_names).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n== Cross-relation structure ==\n");
  std::printf("inclusion dependencies (%zu):\n", profile.value().inds.size());
  for (const NaryInd& ind : profile.value().inds) {
    std::printf("  %s\n", IndToString(ind, relations, paths).c_str());
  }
  std::printf("foreign-key candidates (%zu):\n",
              profile.value().foreign_keys.size());
  for (const ForeignKeyCandidate& fk : profile.value().foreign_keys) {
    std::printf("  %s%s\n", IndToString(fk.ind, relations, paths).c_str(),
                fk.rhs_is_minimal_key ? "  [candidate key]" : "");
  }
  return 0;
}
