// fdtool — a command-line front end over the whole library, the utility a
// dba would actually run against exported CSV data.
//
//   fdtool mine      data.csv [--algo=depminer|depminer2|tane|fastfds|fdep]
//                             [--out=deps.fds] [--checkpoint-dir=DIR]
//                             [--arity=K] [--error=EPS] [--topk=N]
//   fdtool armstrong data.csv [--out=sample.csv] [--synthetic]
//   fdtool keys      data.csv
//   fdtool normalize data.csv
//   fdtool verify    data.csv "A,B->C"          (attribute names)
//   fdtool repair    data.csv "A,B->C" [--out=clean.csv]
//   fdtool stats     data.csv
//   fdtool profile   data.csv [--format=json|md]
//   fdtool inds      a.csv b.csv ...             unary inclusion deps
//   fdtool fks       a.csv b.csv ...             foreign-key suggestions
//   fdtool implies   deps.fds "A,B->C"           derivation from a cover
//   fdtool diff      old.fds new.fds             dependency drift
//   fdtool catalog   dir <list|put NAME data.csv|get NAME|drop NAME>
//   fdtool convert   data.csv out.dmc           (either direction by
//                                                extension)
//   fdtool fuzz      [--iterations=N] [--seed=S] [--shrink=false]
//                    [--repro-dir=DIR]          differential verification
//   fdtool fuzz      --faults [--iterations=N] [--seed=S] [--site=NAME,..]
//                                               fault-injection sweep
//   fdtool datagen   out.csv [--corpus-scale=S [--spec=NAME]]
//                    [--tuples=N] [--attributes=N] [--identical-rate=C]
//                    [--seed=N]                  synthetic benchmark CSV
//
// Every command also accepts .dmc column files as input.
// Common flags: --no-header --delimiter=';' --nulls-distinct
//               --null-token=NA --timeout-ms=N --memory-budget-mb=N
//               --threads=N (mine: pool lanes; 0 = all cores)
//               --arity=K --error=EPS --topk=N (search-space pruning for
//               mine/profile/fuzz; see docs/PERFORMANCE.md)
//               --trace=out.json --metrics --metrics-out=m.prom|m.json
//               --log-level=L --log-json --progress [--progress-ms=N]
//               [--sample-ms=N] (observability; see docs/OBSERVABILITY.md)
//               --fault-site=NAME [--fault-hit=N] [--fault-repeat]
//               [--fault-stall-ms=N] (deterministic fault injection for
//               the whole command; see docs/ROBUSTNESS.md)
//
// Resource governance: --timeout-ms bounds the wall-clock of the mining
// commands and --memory-budget-mb their working set; Ctrl-C requests
// cooperative cancellation. In all three cases `mine` stops cleanly and
// reports the FDs found so far before exiting nonzero.
//
// Exit codes: 0 success; 1 error (or a fuzz/verify finding); 2 usage;
// 3 a tripped --timeout-ms/--memory-budget-mb limit (partial results
// flushed); 130 interrupted by Ctrl-C (partial results flushed, matching
// the shell's 128+SIGINT convention). README.md tabulates these.
//
// Crash-safe mining: `mine --checkpoint-dir=DIR` (depminer/depminer2)
// writes a checkpoint at every pipeline phase boundary, keyed by a
// content fingerprint of the input; re-running the same command after an
// interruption — Ctrl-C, a tripped limit, even kill -9 — resumes at the
// last completed phase and produces the identical cover. See
// docs/ROBUSTNESS.md.
//
// Observability: --trace=FILE records every pipeline phase, parallel
// lane, counter, histogram and sampled series of the run into a
// chrome://tracing / Perfetto loadable JSON file; --metrics prints a
// phase/counter summary table to stderr; --metrics-out=FILE exports the
// same registry as Prometheus text exposition (.prom) or versioned JSON
// (.json). Tracing also starts a background resource sampler (RSS,
// bytes-charged vs budget, deadline slack, pool queue depth;
// --sample-ms tunes the period). --log-level / --log-json configure the
// structured logger every operational message goes through; --progress
// emits a live per-phase heartbeat with an ETA every --progress-ms.
// All of it works with every single-input command (mine, profile,
// armstrong, ...); see docs/OBSERVABILITY.md.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "depminer.h"

using namespace depminer;

namespace {

/// The one context governing this invocation. File-scope so the SIGINT
/// handler — which may only touch lock-free atomics — can reach it;
/// RunContext::RequestCancel is async-signal-safe by design.
RunContext g_run_context;

void HandleSigint(int /*signum*/) { g_run_context.RequestCancel(); }

/// Exit code for a run interrupted by its RunContext: Ctrl-C follows the
/// shell convention for a SIGINT death (128 + 2 = 130) so wrappers and
/// Makefiles see the interruption even though we exit cleanly after
/// flushing partial results; a tripped limit is a distinct, scriptable
/// failure (3, leaving 1 for errors and 2 for usage).
int InterruptedExitCode(const Status& run_status) {
  return run_status.code() == StatusCode::kCancelled ? 130 : 3;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: fdtool "
      "<mine|armstrong|keys|normalize|verify|stats|convert> data.csv\n"
      "  mine      [--algo=depminer|depminer2|tane|fastfds|fdep]  list "
      "minimal FDs\n"
      "            [--arity=K]  cap LHS size at K (prunes the search "
      "before candidate generation)\n"
      "            [--error=EPS]  (tane only) report approximate FDs with "
      "g3 error <= EPS\n"
      "            [--topk=N]   keep the N highest-redundancy FDs of the "
      "cover\n"
      "  armstrong [--out=sample.csv] [--synthetic]          build Armstrong "
      "relation\n"
      "  keys                                                candidate keys\n"
      "  normalize                                           BCNF/3NF "
      "analysis\n"
      "  verify    \"A,B->C\"                                  check one FD\n"
      "  repair    \"A,B->C\" [--out=clean.csv]                minimal "
      "deletions making the FD hold\n"
      "  stats                                               relation "
      "statistics\n"
      "  profile   [--format=json|md]                        full analysis "
      "report\n"
      "  inds      a.csv b.csv ...                           unary "
      "inclusion dependencies\n"
      "  fks       a.csv b.csv ...                           foreign-key "
      "suggestions\n"
      "  implies   deps.fds \"A,B->C\"                         derivation "
      "from a saved cover\n"
      "  diff      old.fds new.fds                           dependency "
      "drift between covers\n"
      "  catalog   dir list|put NAME f.csv|get NAME|drop NAME  manage a "
      ".dmc workspace\n"
      "  serve     --catalog-dir=DIR --socket=PATH [--queue-max=N] "
      "[--threads=N]\n"
      "            long-running discovery daemon over a Unix socket: "
      "concurrent mine/profile\n"
      "            requests, fingerprint-keyed result cache, graceful "
      "SIGTERM/SIGINT drain;\n"
      "            --metrics-out is rewritten per request (scrape-able "
      "live; docs/SERVING.md)\n"
      "  client    --socket=PATH "
      "ping|list|stats|info|put|drop|mine|profile [NAME] [f.csv]\n"
      "            one request against a running daemon (mine accepts "
      "--algo --threads --arity\n"
      "            --error --topk --timeout-ms --memory-budget-mb "
      "--no-cache)\n"
      "  fuzz      [--iterations=N] [--seed=S] [--shrink=false]\n"
      "            [--repro-dir=DIR]   differential verification harness: "
      "run all five miners\n"
      "            on adversarial relations, diff the covers, check the "
      "Armstrong round-trip;\n"
      "            failing seeds are shrunk and written to DIR (exit 1, "
      "repro path on the last line)\n"
      "  fuzz --faults [--iterations=N] [--seed=S] [--site=NAME,...]\n"
      "            fault-injection sweep: inject every registered fault "
      "into every miner and\n"
      "            the CSV reader, assert a clean error or a sound "
      "partial result each time\n"
      "  convert   out.dmc|out.csv                           re-encode "
      "between formats\n"
      "  datagen   out.csv [--corpus-scale=S [--spec=NAME]] [--tuples=N]\n"
      "            [--attributes=N] [--identical-rate=C] [--seed=N]\n"
      "            write a synthetic benchmark relation (the paper's "
      "generator; --corpus-scale\n"
      "            picks a point of the paper-scale grid, --spec matches "
      "its name)\n"
      "common: --no-header --delimiter=';' --nulls-distinct "
      "--null-token=NA\n"
      "        --timeout-ms=N --memory-budget-mb=N   bound the run; "
      "Ctrl-C stops it cleanly (partial report, exit 130; tripped limits "
      "exit 3)\n"
      "        --checkpoint-dir=DIR   (mine, depminer/depminer2 on CSV) "
      "checkpoint at phase\n"
      "            boundaries; re-running resumes an interrupted mine "
      "bit-identically\n"
      "        --fault-site=NAME [--fault-hit=N] [--fault-repeat] "
      "[--fault-stall-ms=N]\n"
      "            deterministic fault injection for the whole command "
      "(docs/ROBUSTNESS.md)\n"
      "        --threads=N   pool lanes for mine (default 1; 0 = all "
      "cores; results are identical for any value)\n"
      "        --arity=K --error=EPS --topk=N   search-space pruning "
      "(mine/profile/fuzz; docs/PERFORMANCE.md)\n"
      "        --trace=out.json   write a chrome://tracing / Perfetto "
      "trace of the run\n"
      "        --metrics   print a phase/counter summary table to "
      "stderr\n"
      "        --metrics-out=FILE   export the run's metrics registry; "
      "the extension picks the\n"
      "            format (.prom Prometheus text exposition, .json "
      "versioned JSON document)\n"
      "        --log-level=debug|info|warn|error|off   structured-log "
      "threshold (default info)\n"
      "        --log-json   emit logs as JSON-lines instead of human "
      "one-liners\n"
      "        --progress [--progress-ms=N]   live per-phase heartbeat "
      "with an ETA (default 1000 ms)\n"
      "        --sample-ms=N   resource sampler period under "
      "--trace/--metrics-out (default 50 ms)\n");
  return 2;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<Relation> Load(const ArgParser& args) {
  if (args.positional().size() < 2) {
    return Status::InvalidArgument("missing input path");
  }
  const std::string& path = args.positional()[1];
  if (HasSuffix(path, ".dmc")) return ReadColumnFile(path);
  CsvOptions options;
  options.has_header = !args.GetBool("no-header", false);
  const std::string delim = args.GetString("delimiter", ",");
  if (!delim.empty()) options.delimiter = delim[0];
  options.nulls_distinct = args.GetBool("nulls-distinct", false);
  options.null_token = args.GetString("null-token", "");
  return ReadCsvRelation(path, options);
}

/// What a mining command needs back: the FDs plus how the run ended.
struct MineOutcome {
  FdSet fds;
  bool complete = true;
  Status run_status;
  std::string stats;  ///< one-line stats of the (possibly partial) run
};

/// The --threads flag: 1 (serial) by default, 0 means "all cores".
size_t ThreadsFlag(const ArgParser& args) {
  const int64_t t = args.GetInt("threads", 1);
  return t <= 0 ? DefaultThreadCount() : static_cast<size_t>(t);
}

/// The pruning knobs (--arity/--error/--topk), already range-validated by
/// main() before any command dispatch.
MiningOptions MiningFlags(const ArgParser& args) {
  MiningOptions mining;
  mining.max_lhs_arity = static_cast<size_t>(args.GetInt("arity", 0));
  if (args.Has("error")) {
    mining.max_g3_error = std::strtod(args.GetString("error", "0").c_str(),
                                      nullptr);
  }
  mining.top_k = static_cast<size_t>(args.GetInt("topk", 0));
  return mining;
}

Result<MineOutcome> Mine(const Relation& relation, const std::string& algo,
                         size_t num_threads = 1,
                         const MiningOptions& mining = {},
                         PartitionCache* cache = nullptr) {
  MineOutcome out;
  if (algo == "tane") {
    TaneOptions options;
    options.num_threads = num_threads;
    options.run_context = &g_run_context;
    options.mining = mining;
    options.partition_cache = cache;
    Result<TaneResult> tane = TaneDiscover(relation, options);
    if (!tane.ok()) return tane.status();
    out.fds = std::move(tane.value().fds);
    out.complete = tane.value().complete;
    out.run_status = tane.value().run_status;
    out.stats = tane.value().stats.ToString();
    return out;
  }
  if (algo == "fastfds") {
    FastFdsOptions options;
    options.run_context = &g_run_context;
    options.mining = mining;
    Result<FastFdsResult> fast = FastFdsDiscover(relation, options);
    if (!fast.ok()) return fast.status();
    out.fds = std::move(fast.value().fds);
    out.complete = fast.value().complete;
    out.run_status = fast.value().run_status;
    out.stats = fast.value().stats.ToString();
    return out;
  }
  if (algo == "fdep") {
    FdepOptions options;
    options.run_context = &g_run_context;
    options.mining = mining;
    Result<FdepResult> fdep = FdepDiscover(relation, options);
    if (!fdep.ok()) return fdep.status();
    out.fds = std::move(fdep.value().fds);
    out.complete = fdep.value().complete;
    out.run_status = fdep.value().run_status;
    out.stats = fdep.value().stats.ToString();
    return out;
  }
  DepMinerOptions options;
  options.build_armstrong = false;
  options.num_threads = num_threads;
  options.run_context = &g_run_context;
  options.mining = mining;
  options.agree_set_algorithm = algo == "depminer2"
                                    ? AgreeSetAlgorithm::kIdentifiers
                                    : AgreeSetAlgorithm::kCouples;
  Result<DepMinerResult> mined = MineDependencies(relation, options);
  if (!mined.ok()) return mined.status();
  out.fds = std::move(mined.value().fds);
  out.complete = mined.value().complete;
  out.run_status = mined.value().run_status;
  out.stats = mined.value().stats.ToString();
  return out;
}

/// Parses "A,B->C" using attribute names (or single letters for default
/// schemas).
Result<FunctionalDependency> ParseFd(const Relation& relation,
                                     const std::string& text) {
  const size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    return Status::InvalidArgument("expected 'lhs->rhs' in '" + text + "'");
  }
  FunctionalDependency fd;
  const std::string lhs_text = text.substr(0, arrow);
  const std::string rhs_text =
      std::string(StripAsciiWhitespace(text.substr(arrow + 2)));
  for (const std::string& raw : Split(lhs_text, ',')) {
    const std::string name = std::string(StripAsciiWhitespace(raw));
    if (name.empty()) continue;
    Result<AttributeId> id = relation.schema().Find(name);
    if (!id.ok()) return id.status();
    fd.lhs.Add(id.value());
  }
  Result<AttributeId> rhs = relation.schema().Find(rhs_text);
  if (!rhs.ok()) return rhs.status();
  fd.rhs = rhs.value();
  return fd;
}

int CmdMine(const Relation& relation, const ArgParser& args) {
  const std::string algo = args.GetString("algo", "depminer");
  const size_t num_threads = ThreadsFlag(args);
  const MiningOptions mining = MiningFlags(args);
  // TANE memoizes its partition products through the cache (and emits the
  // hit-rate counters); the top-k ranking pass probes the same cache, so
  // π̂_lhs chains the lattice walk already built come back for free.
  std::optional<StrippedPartitionDatabase> db;
  std::optional<PartitionCache> cache;
  if (algo == "tane" || mining.top_k != 0) {
    db.emplace(StrippedPartitionDatabase::FromRelation(relation, num_threads));
    PartitionCache::Config config;
    config.run_context = &g_run_context;
    cache.emplace(&*db, config);
  }
  Result<MineOutcome> mined = Mine(relation, algo, num_threads, mining,
                                   cache.has_value() ? &*cache : nullptr);
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  const MineOutcome& outcome = mined.value();
  const std::string out = args.GetString("out", "");
  std::vector<RankedFd> ranked;
  if (mining.top_k != 0) {
    ranked = RankFds(outcome.fds, *db, mining.top_k,
                     cache.has_value() ? &*cache : nullptr)
                 .ranked;
  }
  if (!out.empty()) {
    FdSet to_save = outcome.fds;
    if (mining.top_k != 0) {
      std::vector<FunctionalDependency> kept;
      kept.reserve(ranked.size());
      for (const RankedFd& rf : ranked) kept.push_back(rf.fd);
      to_save = FdSet(relation.num_attributes(), kept);
    }
    Status st = SaveFdSet(to_save, relation.schema(), out);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  } else if (mining.top_k != 0) {
    for (const RankedFd& rf : ranked) {
      std::printf("%s  # redundancy=%zu\n",
                  rf.fd.ToString(relation.schema()).c_str(), rf.redundancy);
    }
  } else {
    for (const FunctionalDependency& fd : outcome.fds.fds()) {
      std::printf("%s\n", fd.ToString(relation.schema()).c_str());
    }
  }
  if (!outcome.complete) {
    Log(LogLevel::kWarn, "fdtool",
        "run interrupted (" + outcome.run_status.ToString() +
            "); partial results:\n" + outcome.stats + "\n" +
            std::to_string(outcome.fds.size()) +
            " minimal FDs (possibly incomplete)",
        {LogStr("status", outcome.run_status.ToString()),
         LogNum("fds", static_cast<uint64_t>(outcome.fds.size()))});
    return InterruptedExitCode(outcome.run_status);
  }
  Log(LogLevel::kInfo, "fdtool",
      std::to_string(outcome.fds.size()) + " minimal FDs",
      {LogNum("fds", static_cast<uint64_t>(outcome.fds.size()))});
  return 0;
}

/// `mine --checkpoint-dir=DIR`: crash-safe mining over the CSV path
/// itself (the checkpoint job is keyed by a content fingerprint of the
/// file, so this bypasses the generic relation loader). Restricted to
/// the Dep-Miner pipelines — they are the ones with phase boundaries to
/// checkpoint at.
int CmdMineCheckpointed(const ArgParser& args) {
  if (args.positional().size() < 2) return Usage();
  const std::string& path = args.positional()[1];
  if (HasSuffix(path, ".dmc")) {
    std::fprintf(stderr,
                 "error: --checkpoint-dir mines CSV input (the checkpoint "
                 "job is keyed by the CSV's content fingerprint)\n");
    return 2;
  }
  const std::string algo = args.GetString("algo", "depminer");
  if (algo != "depminer" && algo != "depminer2") {
    std::fprintf(stderr,
                 "error: --checkpoint-dir supports --algo=depminer or "
                 "depminer2, got \"%s\"\n",
                 algo.c_str());
    return 2;
  }
  CheckpointedMineOptions options;
  options.checkpoint_dir = args.GetString("checkpoint-dir", "");
  options.algorithm = algo == "depminer2" ? AgreeSetAlgorithm::kIdentifiers
                                          : AgreeSetAlgorithm::kCouples;
  options.num_threads = ThreadsFlag(args);
  options.run_context = &g_run_context;
  options.csv.has_header = !args.GetBool("no-header", false);
  const std::string delim = args.GetString("delimiter", ",");
  if (!delim.empty()) options.csv.delimiter = delim[0];
  options.csv.nulls_distinct = args.GetBool("nulls-distinct", false);
  options.csv.null_token = args.GetString("null-token", "");

  Result<CheckpointedMineResult> mined = MineCsvWithCheckpoints(path, options);
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  const CheckpointedMineResult& outcome = mined.value();
  if (outcome.resumed_from != MinePhase::kNone) {
    Log(LogLevel::kInfo, "checkpoint",
        "resumed from phase '" + std::string(ToString(outcome.resumed_from)) +
            "' (" + outcome.checkpoint_path + ")",
        {LogStr("phase", ToString(outcome.resumed_from)),
         LogStr("path", outcome.checkpoint_path)});
  }
  const std::string out = args.GetString("out", "");
  if (!out.empty()) {
    Status st = SaveFdSet(outcome.fds, outcome.schema, out);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  } else {
    for (const FunctionalDependency& fd : outcome.fds.fds()) {
      std::printf("%s\n", fd.ToString(outcome.schema).c_str());
    }
  }
  if (!outcome.complete) {
    Log(LogLevel::kWarn, "checkpoint",
        "run interrupted (" + outcome.run_status.ToString() +
            "); partial results:\n" + std::to_string(outcome.fds.size()) +
            " minimal FDs (possibly incomplete)\ncheckpoint: " +
            outcome.checkpoint_path +
            "\nre-run the same command to resume from it",
        {LogStr("status", outcome.run_status.ToString()),
         LogNum("fds", static_cast<uint64_t>(outcome.fds.size())),
         LogStr("checkpoint", outcome.checkpoint_path)});
    return InterruptedExitCode(outcome.run_status);
  }
  Log(LogLevel::kInfo, "checkpoint",
      std::to_string(outcome.fds.size()) + " minimal FDs (fingerprint " +
          outcome.fingerprint.ToHex() + ")",
      {LogNum("fds", static_cast<uint64_t>(outcome.fds.size())),
       LogStr("fingerprint", outcome.fingerprint.ToHex())});
  return 0;
}

int CmdConvert(const Relation& relation, const ArgParser& args) {
  if (args.positional().size() < 3) return Usage();
  const std::string& out = args.positional()[2];
  Status st = HasSuffix(out, ".dmc") ? WriteColumnFile(relation, out)
                                     : WriteCsvRelation(relation, out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu tuples)\n", out.c_str(),
               relation.num_tuples());
  return 0;
}

int CmdProfile(const Relation& relation, const ArgParser& args) {
  const std::string source = args.positional()[1];
  ProfileOptions options;
  // Only the arity cap applies here: the profile's mining pass is the
  // Dep-Miner pipeline (no approximate path) and its report wants the
  // whole capped cover, not a top-k slice. A capped profile notes that
  // the Armstrong sample is unavailable instead of building one from a
  // partial cover.
  options.mining.mining.max_lhs_arity =
      static_cast<size_t>(args.GetInt("arity", 0));
  options.mining.run_context = &g_run_context;
  Result<RelationProfile> profile = ProfileRelation(relation, source, options);
  if (!profile.ok()) {
    std::fprintf(stderr, "error: %s\n", profile.status().ToString().c_str());
    return 1;
  }
  const std::string format = args.GetString("format", "md");
  if (format == "json") {
    std::printf("%s\n", ProfileToJson(profile.value()).c_str());
  } else {
    std::printf("%s", ProfileToMarkdown(profile.value()).c_str());
  }
  return 0;
}

int CmdArmstrong(const Relation& relation, const ArgParser& args) {
  DepMinerOptions options;
  options.run_context = &g_run_context;
  Result<DepMinerResult> mined = MineDependencies(relation, options);
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  if (!mined.value().complete) {
    std::fprintf(stderr, "run interrupted (%s); no Armstrong relation\n",
                 mined.value().run_status.ToString().c_str());
    return InterruptedExitCode(mined.value().run_status);
  }
  Relation sample;
  if (args.GetBool("synthetic", false)) {
    Result<Relation> synthetic =
        BuildSyntheticArmstrong(relation.schema(), mined.value().all_max_sets);
    if (!synthetic.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   synthetic.status().ToString().c_str());
      return 1;
    }
    sample = std::move(synthetic).value();
  } else if (mined.value().armstrong.has_value()) {
    sample = *mined.value().armstrong;
  } else {
    std::fprintf(stderr, "real-world Armstrong relation unavailable: %s\n",
                 mined.value().armstrong_status.ToString().c_str());
    std::fprintf(stderr, "hint: --synthetic always succeeds\n");
    return 1;
  }
  const std::string out = args.GetString("out", "");
  if (out.empty()) {
    std::printf("%s", CsvToString(sample).c_str());
  } else {
    Status st = WriteCsvRelation(sample, out);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "%zu tuples (input had %zu)\n", sample.num_tuples(),
               relation.num_tuples());
  return 0;
}

int CmdKeys(const Relation& relation) {
  Result<MineOutcome> mined = Mine(relation, "depminer");
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  if (!mined.value().complete) {
    // Keys from a partial cover would merely be key *candidates*; say so
    // rather than print something wrong.
    std::fprintf(stderr, "run interrupted (%s); keys unavailable\n",
                 mined.value().run_status.ToString().c_str());
    return InterruptedExitCode(mined.value().run_status);
  }
  for (const AttributeSet& key : CandidateKeys(mined.value().fds)) {
    std::printf("%s\n", key.ToString(relation.schema().names()).c_str());
  }
  return 0;
}

int CmdNormalize(const Relation& relation) {
  Result<MineOutcome> mined = Mine(relation, "depminer");
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  if (!mined.value().complete) {
    std::fprintf(stderr, "run interrupted (%s); analysis unavailable\n",
                 mined.value().run_status.ToString().c_str());
    return InterruptedExitCode(mined.value().run_status);
  }
  NormalizationAnalysis analysis(relation.schema(), mined.value().fds);
  std::printf("%s", analysis.Report().c_str());
  if (!analysis.InBcnf()) {
    std::printf("3NF synthesis:\n");
    for (const DecompositionFragment& frag : analysis.ThirdNfSynthesis()) {
      std::printf("  R(%s)\n",
                  frag.attributes.ToString(relation.schema().names()).c_str());
    }
  }
  return 0;
}

int CmdVerify(const Relation& relation, const ArgParser& args) {
  if (args.positional().size() < 3) return Usage();
  Result<FunctionalDependency> fd = ParseFd(relation, args.positional()[2]);
  if (!fd.ok()) {
    std::fprintf(stderr, "error: %s\n", fd.status().ToString().c_str());
    return 1;
  }
  const bool holds = Holds(relation, fd.value());
  std::printf("%s: %s", fd.value().ToString(relation.schema()).c_str(),
              holds ? "holds" : "violated");
  if (holds) {
    std::printf(" (%s)", IsMinimalFd(relation, fd.value())
                             ? "minimal"
                             : "not minimal");
  } else {
    std::printf(" (%zu violating pairs, g3 error %.4f)",
                CountViolatingPairs(relation, fd.value().lhs, fd.value().rhs),
                G3Error(relation, fd.value().lhs, fd.value().rhs));
  }
  std::printf("\n");
  return holds ? 0 : 1;
}

int CmdRepair(const Relation& relation, const ArgParser& args) {
  if (args.positional().size() < 3) return Usage();
  Result<FunctionalDependency> fd = ParseFd(relation, args.positional()[2]);
  if (!fd.ok()) {
    std::fprintf(stderr, "error: %s\n", fd.status().ToString().c_str());
    return 1;
  }
  const FdRepair repair = ComputeRepair(relation, fd.value());
  std::fprintf(stderr, "%s: g3 = %.4f, %zu tuple(s) to remove\n",
               fd.value().ToString(relation.schema()).c_str(), repair.g3,
               repair.tuples_to_remove.size());
  for (TupleId t : repair.tuples_to_remove) {
    std::fprintf(stderr, "  row %u: %s\n", t + 1,
                 relation.TupleToString(t).c_str());
  }
  const std::string out = args.GetString("out", "");
  if (!out.empty()) {
    Result<Relation> repaired =
        ApplyRepair(relation, repair.tuples_to_remove);
    if (!repaired.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   repaired.status().ToString().c_str());
      return 1;
    }
    Status st = WriteCsvRelation(repaired.value(), out);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu tuples)\n", out.c_str(),
                 repaired.value().num_tuples());
  }
  return repair.tuples_to_remove.empty() ? 0 : 1;
}

int CmdStats(const Relation& relation) {
  std::printf("attributes: %zu\n", relation.num_attributes());
  std::printf("tuples:     %zu\n", relation.num_tuples());
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(relation);
  for (AttributeId a = 0; a < relation.num_attributes(); ++a) {
    std::printf("  %-20s distinct=%-8zu stripped_classes=%zu\n",
                relation.schema().name(a).c_str(), relation.DistinctCount(a),
                db.partition(a).num_classes());
  }
  std::printf("stripped memberships: %zu\n", db.TotalMemberships());
  return 0;
}

}  // namespace

Status LoadMany(const ArgParser& args, std::vector<Relation>* owned,
                std::vector<std::string>* labels) {
  for (size_t i = 1; i < args.positional().size(); ++i) {
    CsvOptions options;
    options.has_header = !args.GetBool("no-header", false);
    Result<Relation> r = HasSuffix(args.positional()[i], ".dmc")
                             ? ReadColumnFile(args.positional()[i])
                             : ReadCsvRelation(args.positional()[i], options);
    if (!r.ok()) return r.status();
    owned->push_back(std::move(r).value());
    labels->push_back(args.positional()[i]);
  }
  return Status::OK();
}

int CmdInds(const ArgParser& args) {
  if (args.positional().size() < 2) return Usage();
  std::vector<Relation> owned;
  std::vector<std::string> labels;
  Status st = LoadMany(args, &owned, &labels);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<const Relation*> relations;
  relations.reserve(owned.size());
  for (const Relation& r : owned) relations.push_back(&r);
  const std::vector<UnaryInd> inds = DiscoverUnaryInds(relations);
  for (const UnaryInd& ind : inds) {
    std::printf("%s\n", IndToString(ind, relations, labels).c_str());
  }
  std::fprintf(stderr, "%zu unary inclusion dependencies\n", inds.size());
  return 0;
}

int CmdFks(const ArgParser& args) {
  if (args.positional().size() < 2) return Usage();
  std::vector<Relation> owned;
  std::vector<std::string> labels;
  Status st = LoadMany(args, &owned, &labels);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<const Relation*> relations;
  relations.reserve(owned.size());
  for (const Relation& r : owned) relations.push_back(&r);
  ForeignKeyOptions options;
  options.skip_self_references = args.GetBool("no-self", false);
  const std::vector<ForeignKeyCandidate> fks =
      SuggestForeignKeys(relations, options);
  for (const ForeignKeyCandidate& fk : fks) {
    std::printf("%s%s\n", IndToString(fk.ind, relations, labels).c_str(),
                fk.rhs_is_minimal_key ? "  (references a candidate key)"
                                      : "  (references a unique column set)");
  }
  std::fprintf(stderr, "%zu foreign-key candidates\n", fks.size());
  return 0;
}

int CmdImplies(const ArgParser& args) {
  if (args.positional().size() < 3) return Usage();
  Schema schema;
  Result<FdSet> fds = LoadFdSet(args.positional()[1], &schema);
  if (!fds.ok()) {
    std::fprintf(stderr, "error: %s\n", fds.status().ToString().c_str());
    return 1;
  }
  const std::string& text = args.positional()[2];
  const size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    std::fprintf(stderr, "error: expected 'lhs->rhs' in '%s'\n",
                 text.c_str());
    return 1;
  }
  AttributeSet lhs;
  for (const std::string& raw : Split(text.substr(0, arrow), ',')) {
    const std::string name = std::string(StripAsciiWhitespace(raw));
    if (name.empty()) continue;
    Result<AttributeId> id = schema.Find(name);
    if (!id.ok()) {
      std::fprintf(stderr, "error: %s\n", id.status().ToString().c_str());
      return 1;
    }
    lhs.Add(id.value());
  }
  Result<AttributeId> rhs =
      schema.Find(std::string(StripAsciiWhitespace(text.substr(arrow + 2))));
  if (!rhs.ok()) {
    std::fprintf(stderr, "error: %s\n", rhs.status().ToString().c_str());
    return 1;
  }
  const Derivation d = ExplainImplication(fds.value(), lhs, rhs.value());
  std::printf("%s", d.ToString(schema).c_str());
  return d.implied ? 0 : 1;
}

int CmdDiff(const ArgParser& args) {
  if (args.positional().size() < 3) return Usage();
  Schema old_schema, new_schema;
  Result<FdSet> old_fds = LoadFdSet(args.positional()[1], &old_schema);
  Result<FdSet> new_fds = LoadFdSet(args.positional()[2], &new_schema);
  if (!old_fds.ok() || !new_fds.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!old_fds.ok() ? old_fds.status() : new_fds.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  if (!(old_schema == new_schema)) {
    std::fprintf(stderr, "error: the two covers name different schemas\n");
    return 1;
  }
  const FdSetDiff diff = DiffFdSets(old_fds.value(), new_fds.value());
  std::printf("%s", diff.ToString(old_schema).c_str());
  return diff.Equivalent() ? 0 : 1;
}

/// `fdtool fuzz`: the differential verification harness
/// (docs/VERIFICATION.md). Needs no input file — relations come from the
/// seed-reproducible adversarial generator. On divergence the failing
/// relation is shrunk, written under --repro-dir, and the repro CSV path
/// is the last line on stdout (scriptable: exit 1 + tail -1).
/// `fdtool fuzz --faults`: the fault-injection sweep (docs/ROBUSTNESS.md).
/// Walks seeds × registered fault sites × miners and asserts every
/// injected fault yields a well-formed error or a sound partial result.
/// The summary line (printed to stdout) carries the fired-fault count the
/// smoke scripts assert on.
int CmdFaultSweep(const ArgParser& args) {
  FaultSweepOptions options;
  options.iterations = static_cast<size_t>(args.GetInt("iterations", 50));
  options.start_seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  // Two lanes by default so the pool sites (lane stalls) are reachable;
  // --threads overrides as usual.
  options.num_threads = args.Has("threads") ? ThreadsFlag(args) : 2;
  const std::string sites = args.GetString("site", "");
  if (!sites.empty()) {
    for (const std::string& raw : Split(sites, ',')) {
      const std::string name = std::string(StripAsciiWhitespace(raw));
      if (!name.empty()) options.sites.push_back(name);
    }
  }
  options.log_every = options.iterations >= 20 ? 10 : 0;
  Result<FaultSweepReport> run = RunFaultSweep(options);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("fault sweep: %s\n", run.value().ToString().c_str());
  return run.value().ok() ? 0 : 1;
}

int CmdFuzz(const ArgParser& args) {
  if (args.GetBool("faults", false)) return CmdFaultSweep(args);
  FuzzOptions options;
  options.iterations =
      static_cast<size_t>(args.GetInt("iterations", 100));
  options.start_seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.shrink = args.GetBool("shrink", true);
  options.repro_dir = args.GetString("repro-dir", "fuzz-repros");
  if (args.Has("threads")) {
    options.oracle.thread_counts = {1, ThreadsFlag(args)};
  }
  // --arity moves the cap the pruning cross-checks (capped-vs-filtered,
  // forced-ε=0) run every miner under; the default of 2 bites on most
  // generated relations.
  if (args.Has("arity")) {
    options.oracle.arity_cap = static_cast<size_t>(args.GetInt("arity", 2));
  }
  Result<FuzzResult> run = RunFuzzHarness(options);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const FuzzResult& result = run.value();
  Log(LogLevel::kInfo, "fdtool",
      "fuzz: " + std::to_string(result.cases_run) + " cases (seeds " +
          std::to_string(options.start_seed) + ".." +
          std::to_string(options.start_seed + options.iterations - 1) +
          "), " + std::to_string(result.miner_runs) + " miner runs, " +
          std::to_string(result.failures.size()) + " failing seed(s)",
      {LogNum("cases", static_cast<uint64_t>(result.cases_run)),
       LogNum("miner_runs", static_cast<uint64_t>(result.miner_runs)),
       LogNum("failures", static_cast<uint64_t>(result.failures.size()))});
  if (result.ok()) return 0;
  for (const FuzzFailure& failure : result.failures) {
    std::printf("%s\n", failure.repro_path.empty()
                            ? ("seed " + std::to_string(failure.seed))
                                  .c_str()
                            : failure.repro_path.c_str());
  }
  return 1;
}

/// `fdtool datagen out.csv`: materializes a synthetic benchmark relation
/// (the paper's §5.2 generator) to CSV. With --corpus-scale it writes a
/// point of the paper-scale grid (`PaperScaleCorpus`), picked by --spec
/// name substring; without, a custom relation from --tuples /
/// --attributes / --identical-rate. The observability smoke in
/// scripts/check.sh mines a small --corpus-scale point with telemetry on.
int CmdDatagen(const ArgParser& args) {
  if (args.positional().size() < 2) return Usage();
  const std::string& out = args.positional()[1];
  SyntheticConfig config;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  std::string spec_name = "custom";
  if (args.Has("corpus-scale")) {
    const std::string raw = args.GetString("corpus-scale", "");
    char* end = nullptr;
    const double scale = std::strtod(raw.c_str(), &end);
    if (raw.empty() || end == raw.c_str() || *end != '\0' ||
        !(scale > 0.0)) {
      std::fprintf(stderr,
                   "error: --corpus-scale must be a positive real, got "
                   "\"%s\"\n",
                   raw.c_str());
      return 2;
    }
    const std::vector<CorpusSpec> corpus = PaperScaleCorpus(scale,
                                                            config.seed);
    const std::string want = args.GetString("spec", "");
    const CorpusSpec* chosen = nullptr;
    for (const CorpusSpec& spec : corpus) {
      if (want.empty() || spec.name.find(want) != std::string::npos) {
        chosen = &spec;
        break;
      }
    }
    if (chosen == nullptr) {
      std::fprintf(stderr,
                   "error: no corpus spec matches \"%s\"; available:\n",
                   want.c_str());
      for (const CorpusSpec& spec : corpus) {
        std::fprintf(stderr, "  %s\n", spec.name.c_str());
      }
      return 2;
    }
    config = chosen->config;
    spec_name = chosen->name;
  } else {
    if (args.Has("tuples")) {
      config.num_tuples = static_cast<size_t>(args.GetInt("tuples", 0));
    }
    if (args.Has("attributes")) {
      config.num_attributes =
          static_cast<size_t>(args.GetInt("attributes", 0));
    }
    if (args.Has("identical-rate")) {
      const std::string raw = args.GetString("identical-rate", "");
      char* end = nullptr;
      const double rate = std::strtod(raw.c_str(), &end);
      if (raw.empty() || end == raw.c_str() || *end != '\0' ||
          !(rate >= 0.0) || rate > 1.0) {
        std::fprintf(stderr,
                     "error: --identical-rate must be a real in [0,1], "
                     "got \"%s\"\n",
                     raw.c_str());
        return 2;
      }
      config.identical_rate = rate;
    }
  }
  config.num_threads = ThreadsFlag(args);
  config.run_context = &g_run_context;
  Result<Relation> generated = GenerateSynthetic(config);
  if (!generated.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  Status st = WriteCsvRelation(generated.value(), out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  Log(LogLevel::kInfo, "fdtool",
      "wrote " + out + " (" +
          std::to_string(generated.value().num_tuples()) + " tuples, " +
          std::to_string(generated.value().num_attributes()) +
          " attributes, spec " + spec_name + ")",
      {LogStr("path", out),
       LogNum("tuples",
              static_cast<uint64_t>(generated.value().num_tuples())),
       LogNum("attributes",
              static_cast<uint64_t>(generated.value().num_attributes())),
       LogStr("spec", spec_name)});
  return 0;
}

int CmdCatalog(const ArgParser& args) {
  if (args.positional().size() < 3) return Usage();
  Result<Catalog> catalog = Catalog::Open(args.positional()[1]);
  if (!catalog.ok()) {
    std::fprintf(stderr, "error: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const std::string& action = args.positional()[2];
  if (action == "list") {
    for (const std::string& name : catalog.value().List()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (action == "put" && args.positional().size() >= 5) {
    Result<Relation> r = ReadCsvRelation(args.positional()[4]);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    Status st = catalog.value().Put(args.positional()[3], r.value());
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }
  if (action == "get" && args.positional().size() >= 4) {
    Result<Relation> r = catalog.value().Get(args.positional()[3]);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", CsvToString(r.value()).c_str());
    return 0;
  }
  if (action == "drop" && args.positional().size() >= 4) {
    Status st = catalog.value().Drop(args.positional()[3]);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }
  return Usage();
}

/// Shutdown latch for `fdtool serve`: SIGTERM/SIGINT handlers may only
/// touch lock-free atomics, so they set this flag and the server's
/// accept loop notices it within one poll tick and drains.
std::atomic<bool> g_serve_shutdown{false};

void HandleServeSignal(int /*signum*/) {
  g_serve_shutdown.store(true, std::memory_order_release);
}

/// `fdtool serve --catalog-dir=DIR --socket=PATH`: the long-running
/// FD-discovery daemon (docs/SERVING.md). Exit 0 after a graceful
/// drain, 1 on a serving error, 2 on usage errors.
int CmdServe(const ArgParser& args) {
  const std::string catalog_dir = args.GetString("catalog-dir", "");
  const std::string socket_path = args.GetString("socket", "");
  if (catalog_dir.empty() || socket_path.empty()) {
    std::fprintf(stderr,
                 "error: serve requires --catalog-dir=DIR and "
                 "--socket=PATH\n");
    return 2;
  }
  ServerOptions options;
  options.catalog_dir = catalog_dir;
  options.socket_path = socket_path;
  const int64_t queue_max = args.GetInt("queue-max", 32);
  if (queue_max <= 0) {
    std::fprintf(stderr, "error: --queue-max must be a positive integer\n");
    return 2;
  }
  options.max_connections = static_cast<size_t>(queue_max);
  options.num_threads = ThreadsFlag(args);
  options.metrics_path = args.GetString("metrics-out", "");
  options.shutdown_flag = &g_serve_shutdown;

  // Replace the one-shot SIGINT handler installed for mining commands:
  // for a daemon both SIGINT and SIGTERM mean "drain and exit 0".
  (void)std::signal(SIGINT, HandleServeSignal);
  (void)std::signal(SIGTERM, HandleServeSignal);

  Server server(options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  st = server.Serve();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

/// `fdtool client --socket=PATH <verb> [...]`: one request against a
/// running daemon. Bodies (covers, profiles, listings) go to stdout;
/// `OK` params are logged. Exit 0 on OK, 3 when a MINE came back
/// incomplete (tripped limit — same convention as one-shot mining), 1
/// on any ERR or transport failure, 2 on usage errors.
int CmdClient(const ArgParser& args) {
  const std::string socket_path = args.GetString("socket", "");
  if (socket_path.empty() || args.positional().size() < 2) {
    std::fprintf(stderr,
                 "error: client requires --socket=PATH and a command "
                 "(ping|list|stats|info|put|drop|mine|profile)\n");
    return 2;
  }
  const std::string verb = args.positional()[1];
  std::string command_line;
  std::string body;
  if (verb == "ping" || verb == "list" || verb == "stats") {
    command_line = verb;
  } else if (verb == "info" || verb == "drop") {
    if (args.positional().size() < 3) {
      std::fprintf(stderr, "error: client %s NAME\n", verb.c_str());
      return 2;
    }
    command_line = verb + " " + args.positional()[2];
  } else if (verb == "put") {
    if (args.positional().size() < 4) {
      std::fprintf(stderr, "error: client put NAME data.csv\n");
      return 2;
    }
    command_line = "put " + args.positional()[2];
    if (args.GetBool("no-header", false)) command_line += " header=0";
    const std::string delim = args.GetString("delimiter", "");
    if (!delim.empty()) command_line += " delimiter=" + delim;
    std::ifstream in(args.positional()[3], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot read '%s'\n",
                   args.positional()[3].c_str());
      return 1;
    }
    std::ostringstream csv;
    csv << in.rdbuf();
    body = csv.str();
  } else if (verb == "mine" || verb == "profile") {
    if (args.positional().size() < 3) {
      std::fprintf(stderr, "error: client %s NAME\n", verb.c_str());
      return 2;
    }
    command_line = verb + " " + args.positional()[2];
    if (verb == "mine") {
      if (args.Has("algo")) {
        command_line += " algo=" + args.GetString("algo", "");
      }
      static constexpr std::pair<const char*, const char*> kMineParams[] = {
          {"threads", "threads"},       {"arity", "arity"},
          {"topk", "topk"},             {"error", "error"},
          {"timeout-ms", "timeout_ms"}, {"memory-budget-mb", "budget_mb"}};
      for (const auto& [flag, param] : kMineParams) {
        if (args.Has(flag)) {
          command_line +=
              " " + std::string(param) + "=" + args.GetString(flag, "");
        }
      }
      if (args.GetBool("no-cache", false)) command_line += " nocache=1";
    } else if (args.Has("format")) {
      command_line += " format=" + args.GetString("format", "");
    }
  } else {
    std::fprintf(stderr, "error: unknown client command '%s'\n",
                 verb.c_str());
    return 2;
  }

  Result<ServerClient> client = ServerClient::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 1;
  }
  Result<Response> response = client.value().Call(command_line, body);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  const Response& r = response.value();
  if (!r.ok) {
    std::fprintf(stderr, "error: %s %s\n", r.code.c_str(),
                 r.message.c_str());
    return 1;
  }
  std::printf("%s", r.body.c_str());
  std::string params;
  for (const auto& [key, value] : r.params) {
    params += " " + key + "=" + value;
  }
  Log(LogLevel::kInfo, "client", "OK" + params, {});
  const auto complete = r.params.find("complete");
  if (complete != r.params.end() && complete->second == "0") {
    const auto trip = r.params.find("trip");
    Log(LogLevel::kWarn, "client",
        "run interrupted (" +
            (trip == r.params.end() ? std::string("tripped limit")
                                    : trip->second) +
            "); partial results above",
        {});
    return 3;
  }
  return 0;
}

int main(int argc, char** argv) {
  ArgParser args;
  (void)args.Parse(argc, argv);
  if (args.positional().empty()) return Usage();
  const std::string command = args.positional()[0];

  // GetInt maps unparsable values to 0, which for these two flags would
  // silently mean "unlimited" — exactly what a user typing a limit did
  // not ask for. Reject anything that is not a plain non-negative number.
  for (const char* flag : {"timeout-ms", "memory-budget-mb", "threads",
                           "iterations", "seed", "fault-hit",
                           "fault-stall-ms", "progress-ms", "sample-ms",
                           "tuples", "attributes", "queue-max"}) {
    if (!args.Has(flag)) continue;
    const std::string raw = args.GetString(flag, "");
    if (raw.empty() ||
        raw.find_first_not_of("0123456789") != std::string::npos) {
      std::fprintf(stderr, "error: --%s must be a non-negative integer, got \"%s\"\n",
                   flag, raw.c_str());
      return 2;
    }
  }
  // The pruning knobs. --arity/--topk are caps, and GetInt also returns 0
  // for garbage — so an explicit 0 (which would silently mean "unbounded")
  // is rejected along with anything non-numeric.
  for (const char* flag : {"arity", "topk"}) {
    if (!args.Has(flag)) continue;
    const std::string raw = args.GetString(flag, "");
    if (raw.empty() ||
        raw.find_first_not_of("0123456789") != std::string::npos ||
        args.GetInt(flag, 0) == 0) {
      std::fprintf(stderr,
                   "error: --%s must be a positive integer, got \"%s\"\n",
                   flag, raw.c_str());
      return 2;
    }
  }
  // Observability front matter: configure the logger before anything can
  // emit through it, and reject malformed flags as usage errors (exit 2)
  // before any work runs.
  if (args.Has("log-level")) {
    const std::string raw = args.GetString("log-level", "");
    Result<LogLevel> level = ParseLogLevel(raw);
    if (!level.ok()) {
      std::fprintf(stderr,
                   "error: --log-level must be debug|info|warn|error|off, "
                   "got \"%s\"\n",
                   raw.c_str());
      return 2;
    }
    SetLogLevel(level.value());
  }
  if (args.GetBool("log-json", false)) SetLogJson(true);
  const std::string trace_path = args.GetString("trace", "");
  if (!trace_path.empty() && !HasSuffix(trace_path, ".json")) {
    std::fprintf(stderr,
                 "error: --trace writes a chrome://tracing JSON file and "
                 "expects a .json path, got \"%s\"\n",
                 trace_path.c_str());
    return 2;
  }
  const std::string metrics_out = args.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    Result<MetricsFormat> format = MetricsFormatForPath(metrics_out);
    if (!format.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   format.status().ToString().c_str());
      return 2;
    }
  }
  if (args.Has("error")) {
    const std::string raw = args.GetString("error", "");
    char* end = nullptr;
    const double eps = std::strtod(raw.c_str(), &end);
    if (raw.empty() || end == raw.c_str() || *end != '\0' ||
        !(eps >= 0.0) || eps >= 1.0) {
      std::fprintf(stderr,
                   "error: --error must be a real number in [0,1), got "
                   "\"%s\"\n",
                   raw.c_str());
      return 2;
    }
    if ((command != "mine" && command != "client") ||
        args.GetString("algo", "depminer") != "tane") {
      std::fprintf(stderr,
                   "error: --error (approximate discovery) requires "
                   "mine --algo=tane\n");
      return 2;
    }
  }
  if (args.Has("checkpoint-dir") &&
      (args.Has("arity") || args.Has("error") || args.Has("topk"))) {
    // A checkpointed job is keyed by the input fingerprint alone; resuming
    // it under different pruning knobs would splice mismatched phases.
    std::fprintf(stderr,
                 "error: --arity/--error/--topk cannot be combined with "
                 "--checkpoint-dir\n");
    return 2;
  }
  const int64_t timeout_ms = args.GetInt("timeout-ms", 0);
  if (timeout_ms > 0) {
    g_run_context.SetTimeout(std::chrono::milliseconds(timeout_ms));
  }
  const int64_t budget_mb = args.GetInt("memory-budget-mb", 0);
  if (budget_mb > 0) {
    g_run_context.SetMemoryBudget(static_cast<size_t>(budget_mb) * 1024 *
                                  1024);
  }
  (void)std::signal(SIGINT, HandleSigint);

  // Debug fault injection: install the requested plan for the whole
  // command. In a -DDEPMINER_FAULTS=OFF build the scope is inert; warn
  // instead of silently doing nothing.
  std::optional<FaultScope> fault_scope;
  if (args.Has("fault-site")) {
    FaultPlan plan;
    plan.site = args.GetString("fault-site", "");
    if (!plan.site.empty() && FindFaultSite(plan.site) == nullptr) {
      std::fprintf(stderr, "error: unknown fault site \"%s\"; sites:\n",
                   plan.site.c_str());
      for (const FaultSite& s : FaultSiteRegistry()) {
        std::fprintf(stderr, "  %s\n", s.name);
      }
      return 2;
    }
    plan.trigger_hit = static_cast<uint64_t>(args.GetInt("fault-hit", 0));
    plan.repeat = args.GetBool("fault-repeat", false);
    const int64_t stall = args.GetInt("fault-stall-ms", 2);
    plan.stall_ms = static_cast<uint32_t>(stall);
#if !DEPMINER_FAULTS_ENABLED
    std::fprintf(stderr,
                 "warning: this build has fault injection compiled out "
                 "(-DDEPMINER_FAULTS=OFF); --fault-site is inert\n");
#endif
    fault_scope.emplace(plan);
  }

  // Live progress: tracking plus a background heartbeat. Started before
  // command dispatch so the no-input commands (fuzz, checkpointed mine)
  // heartbeat too; the destructor stops the thread on every exit path.
  ProgressHeartbeat heartbeat(
      static_cast<int>(args.GetInt("progress-ms", 1000)));
  const bool progress = args.GetBool("progress", false);
  if (progress) {
    EnableProgressTracking(true);
    heartbeat.Start();
  }

  if (command == "mine" && args.Has("checkpoint-dir")) {
    return CmdMineCheckpointed(args);
  }
  if (command == "inds") return CmdInds(args);
  if (command == "fks") return CmdFks(args);
  if (command == "implies") return CmdImplies(args);
  if (command == "diff") return CmdDiff(args);
  if (command == "catalog") return CmdCatalog(args);
  if (command == "fuzz") return CmdFuzz(args);
  if (command == "datagen") return CmdDatagen(args);
  if (command == "serve") return CmdServe(args);
  if (command == "client") return CmdClient(args);

  Result<Relation> input = Load(args);
  if (!input.ok()) {
    std::fprintf(stderr, "error: %s\n", input.status().ToString().c_str());
    return 1;
  }
  const Relation& relation = input.value();

  // Observability: the session starts after the CSV load so the trace
  // and the `phase/*` summary cover exactly the command's pipeline work
  // (what the paper's tables time), not file parsing. The resource
  // sampler shares the session's lifetime (Start after, Stop before —
  // the session contract).
  const bool want_metrics = args.GetBool("metrics", false);
  const bool tracing =
      !trace_path.empty() || !metrics_out.empty() || want_metrics;
  TraceSession session;
  ResourceSamplerOptions sampler_options;
  sampler_options.run_context = &g_run_context;
  if (args.Has("sample-ms")) {
    sampler_options.period_ms =
        static_cast<int>(args.GetInt("sample-ms", 50));
  }
  ResourceSampler sampler(sampler_options);
  if (tracing) {
    session.Start();
    sampler.Start();
  }

  int rc;
  if (command == "mine") {
    rc = CmdMine(relation, args);
  } else if (command == "armstrong") {
    rc = CmdArmstrong(relation, args);
  } else if (command == "keys") {
    rc = CmdKeys(relation);
  } else if (command == "normalize") {
    rc = CmdNormalize(relation);
  } else if (command == "verify") {
    rc = CmdVerify(relation, args);
  } else if (command == "repair") {
    rc = CmdRepair(relation, args);
  } else if (command == "stats") {
    rc = CmdStats(relation);
  } else if (command == "convert") {
    rc = CmdConvert(relation, args);
  } else if (command == "profile") {
    rc = CmdProfile(relation, args);
  } else {
    return Usage();
  }

  if (tracing) {
    // The heartbeat and sampler are instrumented work; both must be
    // quiet before the session merges its thread buffers.
    if (progress) heartbeat.Stop();
    sampler.Stop();
    // Recorded before Stop() so it lands in the session like any other
    // gauge: the context's bytes-charged high-water mark across every
    // stage the command ran.
    DEPMINER_TRACE_GAUGE_MAX("runctx.high_water_bytes",
                             g_run_context.high_water_bytes());
    session.Stop();
    if (!trace_path.empty()) {
      Status st = session.WriteChromeTrace(trace_path);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        if (rc == 0) rc = 1;
      } else {
        Log(LogLevel::kInfo, "fdtool",
            "trace written to " + trace_path + " (" +
                std::to_string(session.events().size()) + " events)",
            {LogStr("path", trace_path),
             LogNum("events",
                    static_cast<uint64_t>(session.events().size()))});
      }
    }
    if (!metrics_out.empty()) {
      Status st = WriteMetricsFile(session, metrics_out);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        if (rc == 0) rc = 1;
      } else {
        Log(LogLevel::kInfo, "fdtool", "metrics written to " + metrics_out,
            {LogStr("path", metrics_out)});
      }
    }
    if (want_metrics) {
      std::fprintf(stderr, "%s", session.MetricsSummary().c_str());
    }
  }
  return rc;
}
