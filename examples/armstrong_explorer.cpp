// Armstrong relation explorer: contrasts the classical synthetic
// construction (Equation 1, integer placeholder values) with the paper's
// real-world construction (Equation 2, values sampled from the input),
// shows the Proposition 1 existence condition at work, and reports the
// compression ratio the paper highlights (sample 2-4 orders of magnitude
// smaller than the input).
//
//   ./armstrong_explorer [--attrs=10] [--tuples=20000] [--rate=30]
//                        [--seed=42]

#include <cstdio>

#include "depminer.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser args;
  (void)args.Parse(argc, argv);
  SyntheticConfig config;
  config.num_attributes = static_cast<size_t>(args.GetInt("attrs", 10));
  config.num_tuples = static_cast<size_t>(args.GetInt("tuples", 20000));
  config.identical_rate = args.GetDouble("rate", 30.0) / 100.0;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  Result<Relation> data = GenerateSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  const Relation& relation = data.value();

  Result<DepMinerResult> mined = MineDependencies(relation);
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  const std::vector<AttributeSet>& max_sets = mined.value().all_max_sets;

  std::printf("Input: |R|=%zu, |r|=%zu, c=%.0f%%\n", config.num_attributes,
              config.num_tuples, config.identical_rate * 100);
  std::printf("Minimal FDs: %zu; |MAX(dep(r))| = %zu\n",
              mined.value().fds.size(), max_sets.size());

  // Proposition 1: per-attribute existence condition.
  std::printf("\nProposition 1 check (distinct values vs required):\n");
  bool exists = true;
  for (AttributeId a = 0; a < relation.num_attributes(); ++a) {
    size_t excluding = 0;
    for (const AttributeSet& m : max_sets) {
      if (!m.Contains(a)) ++excluding;
    }
    const size_t have = relation.DistinctCount(a);
    const size_t need = excluding + 1;
    if (have < need) exists = false;
    std::printf("  %-4s |π_A(r)| = %-8zu needed = %-8zu %s\n",
                relation.schema().name(a).c_str(), have, need,
                have >= need ? "ok" : "INSUFFICIENT");
  }

  // The classical construction exists for every non-empty schema.
  Result<Relation> synthetic =
      BuildSyntheticArmstrong(relation.schema(), max_sets);
  if (!synthetic.ok()) {
    std::printf("\nSynthetic Armstrong construction failed: %s\n",
                synthetic.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSynthetic Armstrong relation (Equation 1): %zu tuples, "
              "verification %s\n",
              synthetic.value().num_tuples(),
              IsArmstrongFor(synthetic.value(), max_sets) ? "ok" : "FAILED");

  // The real-world construction exists iff Proposition 1 holds.
  Result<Relation> real = BuildRealWorldArmstrong(relation, max_sets);
  if (real.ok()) {
    const double ratio = static_cast<double>(relation.num_tuples()) /
                         static_cast<double>(real.value().num_tuples());
    std::printf("Real-world Armstrong relation (Equation 2): %zu tuples "
                "(%.0fx smaller than the input), verification %s\n",
                real.value().num_tuples(), ratio,
                IsArmstrongFor(real.value(), max_sets) ? "ok" : "FAILED");
    if (!exists) {
      std::printf("  (unexpected: Proposition 1 reported insufficiency)\n");
      return 1;
    }
    const size_t show = real.value().num_tuples() < 8
                            ? real.value().num_tuples()
                            : size_t{8};
    std::printf("First %zu sample tuples:\n", show);
    for (TupleId t = 0; t < show; ++t) {
      std::printf("  %s\n", real.value().TupleToString(t).c_str());
    }
  } else {
    std::printf("Real-world Armstrong relation does not exist: %s\n",
                real.status().ToString().c_str());
    if (exists) {
      std::printf("  (unexpected: Proposition 1 reported sufficiency)\n");
      return 1;
    }
  }
  return 0;
}
