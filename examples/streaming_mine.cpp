// Streaming discovery: mine a CSV without materializing the relation —
// the paper's limited-memory operating model (§1: "its feasibility does
// not depend on the volume of handled data").
//
// With no arguments the example first *generates* a moderately large CSV
// on disk, then mines it through the one-pass streaming extractor and
// compares against the conventional load-then-mine path. Pass a CSV path
// to stream your own file.
//
//   ./streaming_mine [data.csv] [--tuples=100000] [--attrs=15] [--rate=40]

#include <cstdio>

#include "depminer.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser args;
  (void)args.Parse(argc, argv);

  std::string path;
  bool generated = false;
  if (!args.positional().empty()) {
    path = args.positional()[0];
  } else {
    SyntheticConfig config;
    config.num_attributes = static_cast<size_t>(args.GetInt("attrs", 15));
    config.num_tuples = static_cast<size_t>(args.GetInt("tuples", 100000));
    config.identical_rate = args.GetDouble("rate", 40.0) / 100.0;
    config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
    Result<Relation> data = GenerateSynthetic(config);
    if (!data.ok()) {
      std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
      return 1;
    }
    path = "/tmp/depminer_streaming_demo.csv";
    Status st = WriteCsvRelation(data.value(), path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    generated = true;
    std::printf("generated %s: %zu attributes x %zu tuples\n", path.c_str(),
                config.num_attributes, config.num_tuples);
  }

  // Route 1: one-pass streaming extraction + mining.
  Stopwatch timer;
  Result<StreamingMineResult> streamed = MineCsvStreaming(path);
  const double stream_seconds = timer.ElapsedSeconds();
  if (!streamed.ok()) {
    std::fprintf(stderr, "error: %s\n", streamed.status().ToString().c_str());
    return 1;
  }
  std::printf("\nstreaming route: %.3f s, %zu FDs, %zu tuples seen, "
              "%zu stripped memberships retained\n",
              stream_seconds, streamed.value().fds.size(),
              streamed.value().extract.num_tuples,
              streamed.value().extract.partitions.TotalMemberships());
  if (streamed.value().armstrong.has_value()) {
    std::printf("Armstrong sample: %zu tuples (from retained value "
                "samples)\n",
                streamed.value().armstrong->num_tuples());
  } else {
    std::printf("Armstrong sample unavailable: %s\n",
                streamed.value().armstrong_status.ToString().c_str());
  }

  // Route 2: conventional load-then-mine, to confirm equivalence.
  timer.Restart();
  Result<Relation> loaded = ReadCsvRelation(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Result<DepMinerResult> mined = MineDependencies(loaded.value());
  const double load_seconds = timer.ElapsedSeconds();
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  std::printf("\nload-then-mine route: %.3f s, %zu FDs\n", load_seconds,
              mined.value().fds.size());

  const bool identical =
      streamed.value().fds.fds() == mined.value().fds.fds();
  std::printf("\ncovers identical: %s\n", identical ? "yes" : "NO");
  if (generated) std::remove(path.c_str());
  return identical ? 0 : 1;
}
