// Logical tuning: the dba workflow the paper motivates in §1 and §4.
//
// A denormalized "orders" relation (with planted dependencies like the
// redundancy bugs real schemas accumulate) is mined for FDs; the example
// then derives candidate keys, diagnoses BCNF/3NF violations, proposes a
// 3NF synthesis, and prints the real-world Armstrong sample a dba would
// eyeball to decide which dependencies are semantic and which are
// accidental.
//
//   ./logical_tuning [data.csv] [--tuples=N] [--seed=N]

#include <cstdio>

#include "depminer.h"

using namespace depminer;

namespace {

/// A denormalized order-lines relation: customer determines city and
/// zip determines city (classic normalization examples), product
/// determines unit price.
Result<Relation> GenerateOrders(size_t tuples, uint64_t seed) {
  EmbeddedFdConfig config;
  // A=order, B=customer, C=city, D=zip, E=product, F=price
  config.num_attributes = 6;
  config.num_tuples = tuples;
  config.fds = {
      {AttributeSet::FromLetters("B"), 3},  // customer -> zip
      {AttributeSet::FromLetters("D"), 2},  // zip -> city
      {AttributeSet::FromLetters("E"), 5},  // product -> price
  };
  config.domain_size = tuples / 4 + 3;
  config.seed = seed;
  Result<Relation> coded = GenerateWithEmbeddedFds(config);
  if (!coded.ok()) return coded;
  // Re-label with meaningful attribute names.
  std::vector<std::vector<std::string>> rows;
  rows.reserve(coded.value().num_tuples());
  for (TupleId t = 0; t < coded.value().num_tuples(); ++t) {
    std::vector<std::string> row;
    for (AttributeId a = 0; a < 6; ++a) {
      row.push_back(coded.value().Value(t, a));
    }
    rows.push_back(std::move(row));
  }
  return MakeRelation(
      Schema({"order_id", "customer", "city", "zip", "product", "price"}),
      rows);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  (void)args.Parse(argc, argv);

  Result<Relation> input =
      args.positional().empty()
          ? GenerateOrders(
                static_cast<size_t>(args.GetInt("tuples", 500)),
                static_cast<uint64_t>(args.GetInt("seed", 7)))
          : ReadCsvRelation(args.positional()[0]);
  if (!input.ok()) {
    std::fprintf(stderr, "error: %s\n", input.status().ToString().c_str());
    return 1;
  }
  const Relation& relation = input.value();
  std::printf("Analyzing relation: %zu attributes, %zu tuples\n",
              relation.num_attributes(), relation.num_tuples());

  // Step 1: discover the dependencies that hold right now.
  Result<DepMinerResult> mined = MineDependencies(relation);
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  const FdSet& fds = mined.value().fds;
  std::printf("\nDiscovered %zu minimal FDs:\n", fds.size());
  for (const FunctionalDependency& fd : fds.fds()) {
    std::printf("  %s\n", fd.ToString(relation.schema()).c_str());
  }

  // Step 2: keys and normal-form diagnosis.
  NormalizationAnalysis analysis(relation.schema(), fds);
  std::printf("\n%s", analysis.Report().c_str());

  // Step 3: a dependency-preserving 3NF synthesis proposal.
  if (!analysis.InBcnf()) {
    std::printf("\nProposed 3NF synthesis:\n");
    for (const DecompositionFragment& frag : analysis.ThirdNfSynthesis()) {
      std::printf("  R(%s)\n",
                  frag.attributes.ToString(relation.schema().names()).c_str());
    }
    std::printf("BCNF decomposition (lossless, may lose dependencies):\n");
    for (const DecompositionFragment& frag : analysis.BcnfDecomposition()) {
      std::printf("  R(%s)\n",
                  frag.attributes.ToString(relation.schema().names()).c_str());
    }
  }

  // Step 4: the small sample the dba reviews to validate dependencies —
  // it satisfies *exactly* the discovered FDs, with real values.
  if (mined.value().armstrong.has_value()) {
    const Relation& sample = *mined.value().armstrong;
    std::printf(
        "\nReal-world Armstrong sample (%zu tuples, vs %zu in the input — "
        "every discovered FD holds here and every non-FD has a "
        "counterexample):\n",
        sample.num_tuples(), relation.num_tuples());
    for (TupleId t = 0; t < sample.num_tuples(); ++t) {
      std::printf("  %s\n", sample.TupleToString(t).c_str());
    }
  } else {
    std::printf("\nNo real-world Armstrong sample: %s\n",
                mined.value().armstrong_status.ToString().c_str());
  }
  return 0;
}
