// Executable walkthrough of the paper's §3-§4 worked example: prints
// every intermediate object with the paper's notation, so the output can
// be read side-by-side with Examples 1-13 of
//
//   Lopes, Petit, Lakhal. "Efficient Discovery of Functional Dependencies
//   and Armstrong Relations", EDBT 2000.

#include <cstdio>

#include "depminer.h"

using namespace depminer;

namespace {

void PrintFamily(const char* label, const std::vector<AttributeSet>& sets) {
  std::printf("%s{", label);
  for (size_t i = 0; i < sets.size(); ++i) {
    std::printf("%s%s", i ? ", " : "",
                sets[i].Empty() ? "{}" : sets[i].ToString().c_str());
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  // Example 1: the assignment of employees to departments. Attributes
  // empnum, depnum, year, depname, mgr are renamed A..E as in the paper.
  Result<Relation> input = MakeRelation(
      Schema({"A", "B", "C", "D", "E"}),
      {
          {"1", "1", "85", "Biochemistry", "5"},
          {"1", "5", "94", "Admission", "12"},
          {"2", "2", "92", "Computer Sce", "2"},
          {"3", "2", "98", "Computer Sce", "2"},
          {"4", "3", "98", "Geophysics", "2"},
          {"5", "1", "75", "Biochemistry", "5"},
          {"6", "5", "88", "Admission", "12"},
      });
  if (!input.ok()) return 1;
  const Relation& r = input.value();

  std::printf("== Example 1: the relation r (A=empnum, B=depnum, C=year, "
              "D=depname, E=mgr) ==\n");
  for (TupleId t = 0; t < r.num_tuples(); ++t) {
    std::printf("  %u: %s\n", t + 1, r.TupleToString(t).c_str());
  }

  std::printf("\n== Examples 1-2: partitions and stripped partitions ==\n");
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(r);
  for (AttributeId a = 0; a < 5; ++a) {
    std::printf("  pi_%c  = %s\n", 'A' + a,
                Partition::ForAttribute(r, a).ToString().c_str());
    std::printf("  pi^_%c = %s\n", 'A' + a,
                db.partition(a).ToString().c_str());
  }

  std::printf("\n== Example 4: maximal equivalence classes MC ==\n  ");
  for (const EquivalenceClass& c : MaximalEquivalenceClasses(db)) {
    std::printf("{");
    for (size_t i = 0; i < c.size(); ++i) {
      std::printf("%s%u", i ? "," : "", c[i] + 1);
    }
    std::printf("} ");
  }
  std::printf("\n");

  std::printf("\n== Examples 5/8: agree sets (both algorithms agree) ==\n");
  const AgreeSetResult agree = ComputeAgreeSetsIdentifiers(db);
  std::printf("  couples examined: %zu\n", agree.couples_examined);
  PrintFamily("  ag(r) = ", agree.All());

  std::printf("\n== Example 9: max and cmax sets ==\n");
  const MaxSetResult max = ComputeMaxSets(agree);
  for (AttributeId a = 0; a < 5; ++a) {
    char label[48];
    std::snprintf(label, sizeof(label), "  max(dep(r),%c)  = ", 'A' + a);
    PrintFamily(label, max.max_sets[a]);
    std::snprintf(label, sizeof(label), "  cmax(dep(r),%c) = ", 'A' + a);
    PrintFamily(label, max.cmax_sets[a]);
  }

  std::printf("\n== Example 10: left-hand sides (minimal transversals) ==\n");
  const LhsResult lhs = ComputeLhs(max);
  for (AttributeId a = 0; a < 5; ++a) {
    char label[48];
    std::snprintf(label, sizeof(label), "  lhs(dep(r),%c) = ", 'A' + a);
    PrintFamily(label, lhs.lhs[a]);
  }

  std::printf("\n== Example 11: the 14 minimal functional dependencies ==\n");
  const FdSet fds = OutputFds(lhs);
  for (const FunctionalDependency& fd : fds.fds()) {
    std::printf("  r |= %s\n", fd.ToString().c_str());
  }

  const std::vector<AttributeSet> all_max = max.AllMaxSets();
  std::printf("\n== Example 12: synthetic Armstrong relation "
              "(Equation 1) ==\n");
  Result<Relation> synthetic = BuildSyntheticArmstrong(r.schema(), all_max);
  if (!synthetic.ok()) {
    std::printf("  %s\n", synthetic.status().ToString().c_str());
    return 1;
  }
  for (TupleId t = 0; t < synthetic.value().num_tuples(); ++t) {
    std::printf("  %s\n", synthetic.value().TupleToString(t).c_str());
  }

  std::printf("\n== Example 13: real-world Armstrong relation "
              "(Equation 2) ==\n");
  Result<Relation> real = BuildRealWorldArmstrong(r, all_max);
  if (real.ok()) {
    for (TupleId t = 0; t < real.value().num_tuples(); ++t) {
      std::printf("  %s\n", real.value().TupleToString(t).c_str());
    }
    std::printf("  verification (GEN ⊆ ag ⊆ CL): %s\n",
                IsArmstrongFor(real.value(), all_max) ? "ok" : "FAILED");
  } else {
    std::printf("  %s\n", real.status().ToString().c_str());
  }
  return 0;
}
