// Algorithm comparison on a configurable synthetic workload: runs
// Dep-Miner (Algorithm 2), Dep-Miner 2 (Algorithm 3) and TANE on the same
// relation, verifies they produce the same cover, and prints per-phase
// timings — a single benchmark "cell" with full visibility, useful for
// exploring where the crossovers the paper reports come from.
//
//   ./benchmark_sweep [--attrs=20] [--tuples=5000] [--rate=30] [--seed=42]

#include <cstdio>

#include "depminer.h"

using namespace depminer;

int main(int argc, char** argv) {
  ArgParser args;
  (void)args.Parse(argc, argv);
  SyntheticConfig config;
  config.num_attributes = static_cast<size_t>(args.GetInt("attrs", 20));
  config.num_tuples = static_cast<size_t>(args.GetInt("tuples", 5000));
  config.identical_rate = args.GetDouble("rate", 30.0) / 100.0;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  Result<Relation> data = GenerateSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  const Relation& relation = data.value();
  std::printf("Workload: |R|=%zu, |r|=%zu, c=%.0f%%, seed=%llu\n",
              config.num_attributes, config.num_tuples,
              config.identical_rate * 100,
              static_cast<unsigned long long>(config.seed));

  FdSet reference;
  for (AgreeSetAlgorithm algorithm :
       {AgreeSetAlgorithm::kCouples, AgreeSetAlgorithm::kIdentifiers}) {
    DepMinerOptions options;
    options.agree_set_algorithm = algorithm;
    Stopwatch timer;
    Result<DepMinerResult> mined = MineDependencies(relation, options);
    const double total = timer.ElapsedSeconds();
    if (!mined.ok()) {
      std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
      return 1;
    }
    const char* name = algorithm == AgreeSetAlgorithm::kCouples
                           ? "Dep-Miner  (Alg. 2)"
                           : "Dep-Miner 2 (Alg. 3)";
    std::printf("\n%s: %.3f s total\n  %s\n", name, total,
                mined.value().stats.ToString().c_str());
    if (reference.Empty()) {
      reference = mined.value().fds;
    } else if (mined.value().fds.fds() != reference.fds()) {
      std::fprintf(stderr, "FD MISMATCH between Dep-Miner variants\n");
      return 1;
    }
  }

  Stopwatch timer;
  Result<TaneResult> tane = TaneDiscover(relation);
  const double tane_total = timer.ElapsedSeconds();
  if (!tane.ok()) {
    std::fprintf(stderr, "error: %s\n", tane.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTANE: %.3f s total\n  %s\n", tane_total,
              tane.value().stats.ToString().c_str());
  if (tane.value().fds.fds() != reference.fds()) {
    std::fprintf(stderr, "FD MISMATCH between TANE and Dep-Miner\n");
    return 1;
  }

  std::printf("\nAll three algorithms found the same %zu minimal FDs.\n",
              reference.size());
  return 0;
}
