// Quickstart: discover the minimal functional dependencies and the
// real-world Armstrong relation of a dataset.
//
// With no arguments it runs on the paper's §3 employee/department example
// so the output can be compared line by line with the paper; pass a CSV
// path to analyze your own data:
//
//   ./quickstart [data.csv] [--no-header] [--delimiter=';']

#include <cstdio>

#include "depminer.h"

using namespace depminer;

namespace {

Result<Relation> LoadInput(const ArgParser& args) {
  if (!args.positional().empty()) {
    CsvOptions options;
    options.has_header = !args.GetBool("no-header", false);
    const std::string delim = args.GetString("delimiter", ",");
    if (!delim.empty()) options.delimiter = delim[0];
    return ReadCsvRelation(args.positional()[0], options);
  }
  // The paper's running example (§3, Example 1).
  return MakeRelation(Schema({"empnum", "depnum", "year", "depname", "mgr"}),
                      {
                          {"1", "1", "85", "Biochemistry", "5"},
                          {"1", "5", "94", "Admission", "12"},
                          {"2", "2", "92", "Computer Sce", "2"},
                          {"3", "2", "98", "Computer Sce", "2"},
                          {"4", "3", "98", "Geophysics", "2"},
                          {"5", "1", "75", "Biochemistry", "5"},
                          {"6", "5", "88", "Admission", "12"},
                      });
}

void PrintRelation(const Relation& r, const char* title) {
  std::printf("%s (%zu tuples):\n", title, r.num_tuples());
  std::printf("  ");
  for (size_t a = 0; a < r.num_attributes(); ++a) {
    std::printf("%s%s", a ? " | " : "",
                r.schema().name(static_cast<AttributeId>(a)).c_str());
  }
  std::printf("\n");
  for (TupleId t = 0; t < r.num_tuples(); ++t) {
    std::printf("  %s\n", r.TupleToString(t).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  (void)args.Parse(argc, argv);

  Result<Relation> input = LoadInput(args);
  if (!input.ok()) {
    std::fprintf(stderr, "error: %s\n", input.status().ToString().c_str());
    return 1;
  }
  const Relation& relation = input.value();
  PrintRelation(relation, "Input relation");

  Result<DepMinerResult> mined = MineDependencies(relation);
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  const DepMinerResult& result = mined.value();

  std::printf("\nMinimal non-trivial functional dependencies (%zu):\n",
              result.fds.size());
  for (const FunctionalDependency& fd : result.fds.fds()) {
    std::printf("  %s\n", fd.ToString(relation.schema()).c_str());
  }

  std::printf("\nMaximal sets MAX(dep(r)):\n");
  for (const AttributeSet& m : result.all_max_sets) {
    std::printf("  %s\n", m.ToString(relation.schema().names()).c_str());
  }

  if (result.armstrong.has_value()) {
    std::printf("\n");
    PrintRelation(*result.armstrong,
                  "Real-world Armstrong relation (same FDs, values from the "
                  "input)");
  } else {
    std::printf("\nNo real-world Armstrong relation: %s\n",
                result.armstrong_status.ToString().c_str());
  }

  std::printf("\nPipeline statistics: %s\n", result.stats.ToString().c_str());
  return 0;
}
