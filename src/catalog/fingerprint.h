#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace depminer {

class Relation;

/// 128-bit content fingerprint. Used to key job checkpoints (and, later,
/// the serve-mode result cache) on *what the data is*, not where it
/// lives: a dataset copied, renamed, or re-downloaded keeps its
/// fingerprint; a dataset edited in place loses it.
struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Fingerprint& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }

  /// 32 lowercase hex digits, hi then lo — stable across platforms, and
  /// safe as a file-name stem.
  std::string ToHex() const;

  /// Parses the `ToHex` form (exactly 32 hex digits, either case).
  /// Returns false without touching `*out` on malformed input.
  static bool FromHex(const std::string& hex, Fingerprint* out);

  bool IsZero() const { return hi == 0 && lo == 0; }
};

/// Incremental 128-bit FNV-1a hasher. FNV is not cryptographic; the
/// threat model here is accidental mismatch (stale checkpoint after the
/// CSV changed), not an adversary forging collisions against their own
/// data. Length-prefixed field updates keep the encoding injective
/// (Update("ab") then Update("c") differs from Update("a") then
/// Update("bc")).
class Fingerprinter {
 public:
  Fingerprinter();

  /// Raw bytes, no framing — for streaming whole files.
  void UpdateBytes(const void* data, size_t len);
  /// Length-prefixed string field.
  void UpdateString(const std::string& s);
  /// Fixed-width integer field (little-endian).
  void UpdateU64(uint64_t v);

  Fingerprint Finish() const;

 private:
  unsigned __int128 state_;
};

/// Fingerprints a file's raw bytes (streamed; the file is never held in
/// memory). Read errors surface as IoError via the retrying reader.
Result<Fingerprint> FingerprintFile(const std::string& path);

/// Fingerprints a relation's logical content: schema names, then every
/// cell in row-major order, all length-prefixed. Two relations with equal
/// schemas and equal cell values fingerprint equally regardless of how
/// they were loaded.
Fingerprint FingerprintRelation(const Relation& relation);

}  // namespace depminer
