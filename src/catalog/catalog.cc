#include "catalog/catalog.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <dirent.h>

#include "common/attribute_set.h"
#include "common/log.h"
#include "common/strings.h"
#include "fault/fault.h"
#include "storage/atomic_file.h"
#include "storage/column_file.h"

namespace depminer {

namespace {

constexpr char kManifestName[] = "catalog.manifest";
constexpr char kManifestHeaderV1[] = "# depminer-catalog v1";
constexpr char kManifestHeaderV2[] = "# depminer-catalog v2";
constexpr char kManifestEndPrefix[] = "# end ";

bool NameIsSafe(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  // Reject names that are only dots (".", "..") — path traversal.
  return name.find_first_not_of('.') != std::string::npos;
}

/// Parses the generation counter out of a "<stem>.g<N>.dmc" file name.
/// Legacy v1 files are plain "<name>.dmc": generation 0, so the first
/// replacement starts the versioned scheme at g1.
uint64_t GenerationOf(const std::string& file) {
  constexpr char kExt[] = ".dmc";
  constexpr size_t kExtLen = sizeof(kExt) - 1;
  if (file.size() <= kExtLen ||
      file.compare(file.size() - kExtLen, kExtLen, kExt) != 0) {
    return 0;
  }
  const std::string stem = file.substr(0, file.size() - kExtLen);
  const size_t dot = stem.find_last_of('.');
  if (dot == std::string::npos || dot + 2 >= stem.size() ||
      stem[dot + 1] != 'g') {
    return 0;
  }
  uint64_t gen = 0;
  if (!ParseUint64(std::string_view(stem).substr(dot + 2), &gen)) return 0;
  return gen;
}

Status ManifestError(const std::string& path, size_t line_no,
                     const std::string& what, const std::string& line) {
  return Status::IoError(path + ": line " + std::to_string(line_no) + ": " +
                         what + " in '" + line + "'");
}

}  // namespace

std::string Catalog::ManifestPath() const {
  return directory_ + "/" + kManifestName;
}

std::string Catalog::FilePath(const Entry& entry) const {
  return directory_ + "/" + entry.file;
}

const Catalog::Entry* Catalog::Find(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Result<Catalog> Catalog::Open(const std::string& directory) {
  Catalog catalog(directory);
  std::ifstream in(catalog.ManifestPath());
  if (!in) {
    // New catalog: verify the directory is writable by creating the
    // manifest immediately.
    DEPMINER_RETURN_NOT_OK(catalog.SaveManifest());
    return catalog;
  }
  const std::string path = catalog.ManifestPath();
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError(path + ": empty manifest (missing header)");
  }
  const std::string_view header = StripAsciiWhitespace(line);
  const bool v2 = header == kManifestHeaderV2;
  if (!v2 && header != kManifestHeaderV1) {
    return Status::IoError(path + ": not a depminer catalog manifest");
  }
  // v2 manifests close with a "# end <count>" footer; its absence means
  // the file was truncated after the last complete line — a loss the
  // per-line checks below cannot see. v1 manifests (written before the
  // footer existed) are read without this protection and upgraded on
  // the next save.
  bool saw_end = false;
  const size_t expected_fields = v2 ? 5 : 4;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) {
      if (v2) {
        return ManifestError(path, line_no, "unexpected blank line", line);
      }
      continue;
    }
    if (v2 && stripped.substr(0, sizeof(kManifestEndPrefix) - 1) ==
                  kManifestEndPrefix) {
      uint64_t count = 0;
      if (!ParseUint64(stripped.substr(sizeof(kManifestEndPrefix) - 1),
                       &count)) {
        return ManifestError(path, line_no, "malformed end marker", line);
      }
      if (count != catalog.entries_.size()) {
        return Status::IoError(
            path + ": line " + std::to_string(line_no) + ": end marker says " +
            std::to_string(count) + " entries but " +
            std::to_string(catalog.entries_.size()) + " were read");
      }
      saw_end = true;
      continue;
    }
    if (saw_end) {
      return ManifestError(path, line_no, "data after end marker", line);
    }
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != expected_fields) {
      return ManifestError(path, line_no,
                           "expected " + std::to_string(expected_fields) +
                               " fields, got " +
                               std::to_string(fields.size()),
                           line);
    }
    Entry entry;
    entry.name = fields[0];
    entry.file = fields[1];
    if (!NameIsSafe(entry.name)) {
      return ManifestError(path, line_no, "unsafe relation name", line);
    }
    if (!NameIsSafe(entry.file)) {
      return ManifestError(path, line_no, "unsafe file name", line);
    }
    uint64_t attrs = 0, tuples = 0;
    if (!ParseUint64(fields[2], &attrs)) {
      return ManifestError(path, line_no, "malformed attribute count", line);
    }
    if (!ParseUint64(fields[3], &tuples)) {
      return ManifestError(path, line_no, "malformed tuple count", line);
    }
    if (attrs == 0 || attrs > AttributeSet::kMaxAttributes) {
      return ManifestError(path, line_no, "implausible attribute count",
                           line);
    }
    if (v2 && !Fingerprint::FromHex(fields[4], &entry.fingerprint)) {
      return ManifestError(path, line_no, "malformed fingerprint", line);
    }
    if (catalog.Find(entry.name) != nullptr) {
      return ManifestError(path, line_no,
                           "duplicate relation '" + entry.name + "'", line);
    }
    entry.attributes = attrs;
    entry.tuples = tuples;
    entry.generation = GenerationOf(entry.file);
    catalog.entries_.push_back(std::move(entry));
  }
  if (v2 && !saw_end) {
    return Status::IoError(path + ": truncated manifest (missing '# end' " +
                           "marker after " + std::to_string(line_no) +
                           " lines)");
  }
  catalog.SweepOrphans();
  return catalog;
}

Status Catalog::SaveManifest() const {
  DEPMINER_RETURN_NOT_OK(DEPMINER_FAULT_POLL("io/manifest-write"));
  std::ostringstream out;
  out << kManifestHeaderV2 << "\n";
  for (const Entry& e : entries_) {
    out << e.name << '\t' << e.file << '\t' << e.attributes << '\t'
        << e.tuples << '\t' << e.fingerprint.ToHex() << '\n';
  }
  out << kManifestEndPrefix << entries_.size() << "\n";
  return AtomicWriteFile(ManifestPath(), out.str());
}

void Catalog::SweepOrphans() const {
  // A crash between "write <name>.g<N>.dmc" and "save the manifest that
  // references it" leaves exactly one artifact: a generation file no
  // manifest entry points at. Only files matching the ".g<N>.dmc"
  // pattern are swept — legacy plain "<name>.dmc" files and foreign
  // files are never touched.
  DIR* dir = ::opendir(directory_.c_str());
  if (dir == nullptr) return;
  std::vector<std::string> orphans;
  while (struct dirent* de = ::readdir(dir)) {
    const std::string file = de->d_name;
    if (GenerationOf(file) == 0) continue;
    const bool referenced =
        std::any_of(entries_.begin(), entries_.end(),
                    [&](const Entry& e) { return e.file == file; });
    if (!referenced) orphans.push_back(file);
  }
  ::closedir(dir);
  for (const std::string& file : orphans) {
    std::remove((directory_ + "/" + file).c_str());
    Log(LogLevel::kWarn, "catalog", "swept orphaned column file",
        {LogStr("file", file)});
  }
}

std::vector<std::string> Catalog::List() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

bool Catalog::Contains(const std::string& name) const {
  return Find(name) != nullptr;
}

Result<Catalog::DatasetInfo> Catalog::Info(const std::string& name) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  DatasetInfo info;
  info.name = entry->name;
  info.attributes = entry->attributes;
  info.tuples = entry->tuples;
  info.fingerprint = entry->fingerprint;
  return info;
}

Status Catalog::Put(const std::string& name, const Relation& relation) {
  if (!NameIsSafe(name)) {
    return Status::InvalidArgument("unsafe relation name '" + name + "'");
  }
  DEPMINER_RETURN_NOT_OK(DEPMINER_FAULT_POLL("alloc/catalog"));

  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.name == name; });

  Entry entry;
  entry.name = name;
  entry.generation = (it != entries_.end() ? it->generation : 0) + 1;
  entry.file = name + ".g" + std::to_string(entry.generation) + ".dmc";
  entry.attributes = relation.num_attributes();
  entry.tuples = relation.num_tuples();
  entry.fingerprint = FingerprintRelation(relation);

  // Ordering is the whole durability story: the new column file lands
  // under a fresh generation name (never overwriting the bytes the
  // current manifest references), and only then does the manifest flip
  // to it. A crash before the manifest save leaves an orphan that Open
  // sweeps; a crash after it leaves the old generation file, unlinked
  // lazily below and equally sweepable.
  DEPMINER_RETURN_NOT_OK(WriteColumnFile(relation, FilePath(entry)));

  const bool replacing = it != entries_.end();
  const Entry previous = replacing ? *it : Entry{};
  if (replacing) {
    *it = entry;
  } else {
    entries_.push_back(entry);
  }
  const Status save = SaveManifest();
  if (!save.ok()) {
    // Roll back so memory matches the manifest still on disk, and remove
    // the file the abandoned entry pointed at.
    if (replacing) {
      *std::find_if(entries_.begin(), entries_.end(),
                    [&](const Entry& e) { return e.name == name; }) =
          previous;
    } else {
      entries_.pop_back();
    }
    std::remove(FilePath(entry).c_str());
    return save;
  }
  if (replacing && previous.file != entry.file) {
    std::remove(FilePath(previous).c_str());
  }
  return Status::OK();
}

Result<Relation> Catalog::Get(const std::string& name) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  Result<Relation> loaded = ReadColumnFile(FilePath(*entry));
  if (!loaded.ok()) return loaded.status();
  const Relation& relation = loaded.value();
  if (relation.num_attributes() != entry->attributes ||
      relation.num_tuples() != entry->tuples) {
    return Status::DataLoss(
        "catalog entry '" + name + "': manifest records " +
        std::to_string(entry->attributes) + " attributes / " +
        std::to_string(entry->tuples) + " tuples but '" + entry->file +
        "' holds " + std::to_string(relation.num_attributes()) +
        " attributes / " + std::to_string(relation.num_tuples()) +
        " tuples");
  }
  // v1 entries carry no fingerprint (zero) — counts are the only
  // cross-check available until the next Put upgrades them.
  if (!entry->fingerprint.IsZero() &&
      FingerprintRelation(relation) != entry->fingerprint) {
    return Status::DataLoss("catalog entry '" + name + "': content of '" +
                            entry->file +
                            "' does not match its recorded fingerprint " +
                            entry->fingerprint.ToHex());
  }
  return loaded;
}

Status Catalog::Drop(const std::string& name) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.name == name; });
  if (it == entries_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  // Remove the entry from the manifest first; only once the manifest no
  // longer references the file is it safe to unlink. On save failure
  // the entry is restored and nothing was deleted.
  const Entry dropped = *it;
  const size_t index = static_cast<size_t>(it - entries_.begin());
  entries_.erase(it);
  const Status save = SaveManifest();
  if (!save.ok()) {
    entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(index),
                    dropped);
    return save;
  }
  std::remove(FilePath(dropped).c_str());
  return Status::OK();
}

Result<std::vector<Relation>> Catalog::GetAll() const {
  std::vector<Relation> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    Result<Relation> r = Get(entry.name);
    if (!r.ok()) return r.status();
    out.push_back(std::move(r).value());
  }
  return out;
}

}  // namespace depminer
