#include "catalog/catalog.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "storage/column_file.h"

namespace depminer {

namespace {

constexpr char kManifestName[] = "catalog.manifest";
constexpr char kManifestHeader[] = "# depminer-catalog v1";

bool NameIsSafe(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  // Reject names that are only dots (".", "..") — path traversal.
  return name.find_first_not_of('.') != std::string::npos;
}

}  // namespace

std::string Catalog::ManifestPath() const {
  return directory_ + "/" + kManifestName;
}

std::string Catalog::FilePath(const Entry& entry) const {
  return directory_ + "/" + entry.file;
}

const Catalog::Entry* Catalog::Find(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Result<Catalog> Catalog::Open(const std::string& directory) {
  Catalog catalog(directory);
  std::ifstream in(catalog.ManifestPath());
  if (!in) {
    // New catalog: verify the directory is writable by creating the
    // manifest immediately.
    DEPMINER_RETURN_NOT_OK(catalog.SaveManifest());
    return catalog;
  }
  std::string line;
  if (!std::getline(in, line) ||
      StripAsciiWhitespace(line) != kManifestHeader) {
    return Status::IoError(catalog.ManifestPath() +
                           ": not a depminer catalog manifest");
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripAsciiWhitespace(line).empty()) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 4) {
      return Status::IoError(catalog.ManifestPath() + ": line " +
                             std::to_string(line_no) + " malformed");
    }
    Entry entry;
    entry.name = fields[0];
    entry.file = fields[1];
    uint64_t attrs = 0, tuples = 0;
    if (!NameIsSafe(entry.name) || !NameIsSafe(entry.file) ||
        !ParseUint64(fields[2], &attrs) || !ParseUint64(fields[3], &tuples)) {
      return Status::IoError(catalog.ManifestPath() + ": line " +
                             std::to_string(line_no) + " malformed");
    }
    entry.attributes = attrs;
    entry.tuples = tuples;
    catalog.entries_.push_back(std::move(entry));
  }
  return catalog;
}

Status Catalog::SaveManifest() const {
  const std::string temp = ManifestPath() + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot write '" + temp + "'");
    }
    out << kManifestHeader << "\n";
    for (const Entry& e : entries_) {
      out << e.name << '\t' << e.file << '\t' << e.attributes << '\t'
          << e.tuples << '\n';
    }
    if (!out) return Status::IoError("failed writing '" + temp + "'");
  }
  if (std::rename(temp.c_str(), ManifestPath().c_str()) != 0) {
    return Status::IoError("cannot replace '" + ManifestPath() + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::List() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

bool Catalog::Contains(const std::string& name) const {
  return Find(name) != nullptr;
}

Status Catalog::Put(const std::string& name, const Relation& relation) {
  if (!NameIsSafe(name)) {
    return Status::InvalidArgument("unsafe relation name '" + name + "'");
  }
  Entry entry;
  entry.name = name;
  entry.file = name + ".dmc";
  entry.attributes = relation.num_attributes();
  entry.tuples = relation.num_tuples();
  DEPMINER_RETURN_NOT_OK(WriteColumnFile(relation, FilePath(entry)));

  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.name == name; });
  if (it != entries_.end()) {
    *it = entry;
  } else {
    entries_.push_back(entry);
  }
  return SaveManifest();
}

Result<Relation> Catalog::Get(const std::string& name) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return ReadColumnFile(FilePath(*entry));
}

Status Catalog::Drop(const std::string& name) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.name == name; });
  if (it == entries_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  std::remove(FilePath(*it).c_str());
  entries_.erase(it);
  return SaveManifest();
}

Result<std::vector<Relation>> Catalog::GetAll() const {
  std::vector<Relation> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    Result<Relation> r = ReadColumnFile(FilePath(entry));
    if (!r.ok()) return r.status();
    out.push_back(std::move(r).value());
  }
  return out;
}

}  // namespace depminer
