#include "catalog/fingerprint.h"

#include <cstdio>

#include "common/file_reader.h"
#include "relation/relation.h"

namespace depminer {

namespace {

// 128-bit FNV-1a constants (offset basis and prime per the FNV spec).
constexpr unsigned __int128 Fnv128Basis() {
  return (static_cast<unsigned __int128>(0x6c62272e07bb0142ULL) << 64) |
         0x62b821756295c58dULL;
}
constexpr unsigned __int128 Fnv128Prime() {
  return (static_cast<unsigned __int128>(0x0000000001000000ULL) << 64) |
         0x000000000000013bULL;
}

}  // namespace

std::string Fingerprint::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

bool Fingerprint::FromHex(const std::string& hex, Fingerprint* out) {
  if (hex.size() != 32) return false;
  uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<size_t>(w * 16 + i)];
      uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint64_t>(c - 'A') + 10;
      } else {
        return false;
      }
      words[w] = (words[w] << 4) | digit;
    }
  }
  out->hi = words[0];
  out->lo = words[1];
  return true;
}

Fingerprinter::Fingerprinter() : state_(Fnv128Basis()) {}

void Fingerprinter::UpdateBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  unsigned __int128 h = state_;
  const unsigned __int128 prime = Fnv128Prime();
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= prime;
  }
  state_ = h;
}

void Fingerprinter::UpdateString(const std::string& s) {
  UpdateU64(s.size());
  UpdateBytes(s.data(), s.size());
}

void Fingerprinter::UpdateU64(uint64_t v) {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<unsigned char>(v >> (8 * i));
  UpdateBytes(le, sizeof(le));
}

Fingerprint Fingerprinter::Finish() const {
  Fingerprint fp;
  fp.hi = static_cast<uint64_t>(state_ >> 64);
  fp.lo = static_cast<uint64_t>(state_);
  return fp;
}

Result<Fingerprint> FingerprintFile(const std::string& path) {
  RetryingFileStream in(path);
  if (!in.is_open()) return in.status();
  Fingerprinter hasher;
  char buf[64 * 1024];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    hasher.UpdateBytes(buf, static_cast<size_t>(in.gcount()));
  }
  if (!in.status().ok()) return in.status();
  return hasher.Finish();
}

Fingerprint FingerprintRelation(const Relation& relation) {
  Fingerprinter hasher;
  const size_t n = relation.num_attributes();
  hasher.UpdateU64(n);
  for (size_t a = 0; a < n; ++a) {
    hasher.UpdateString(relation.schema().name(static_cast<AttributeId>(a)));
  }
  hasher.UpdateU64(relation.num_tuples());
  for (TupleId t = 0; t < relation.num_tuples(); ++t) {
    for (size_t a = 0; a < n; ++a) {
      hasher.UpdateString(relation.Value(t, static_cast<AttributeId>(a)));
    }
  }
  return hasher.Finish();
}

}  // namespace depminer
