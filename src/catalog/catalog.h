#pragma once

#include <string>
#include <vector>

#include "catalog/fingerprint.h"
#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// A directory-backed workspace of named relations — the library's
/// stand-in for the DBMS the paper profiled through ODBC. Relations are
/// stored as ".dmc" column files next to a "catalog.manifest" index; the
/// catalog gives stable names to the tables of an analysis session so
/// repeated profiling skips CSV parsing, and records each relation's
/// content fingerprint so serve-mode result caching can key on *what the
/// data is* without re-reading it.
///
/// Layout:
///   <dir>/catalog.manifest    "# depminer-catalog v2" header, then one
///                             tab-separated line per relation:
///                             name \t file \t attributes \t tuples \t fp
///                             (fp = 32-hex content fingerprint), closed
///                             by a "# end <count>" footer. v1 manifests
///                             (4 fields, no footer, no fingerprint) are
///                             still read; the first save upgrades them.
///   <dir>/<name>.g<N>.dmc     one column file per relation; N is a
///                             generation counter bumped on every
///                             replacement so a Put never overwrites the
///                             bytes the manifest currently points at.
///
/// Durability contract (see docs/SERVING.md): the manifest and every
/// column file are published via `AtomicWriteFile` (write → fsync →
/// rename → directory fsync), and `Put` orders "write the new column
/// file under a fresh generation name" strictly before "save the
/// manifest that references it". A crash — even `kill -9` — at any point
/// therefore leaves a catalog whose manifest references only complete
/// files: either the old state or the new one, never a torn mix. A
/// failed `Put` rolls the in-memory state back to match the on-disk
/// manifest and removes the file it wrote. Orphaned generation files
/// (the artifact of a crash inside that window) are swept on `Open`.
///
/// Concurrent writers are not supported; the serve-mode daemon guards a
/// catalog with a readers-writer lock (src/server/server.cc).
class Catalog {
 public:
  /// Read-only description of one stored relation (what the serve-mode
  /// result cache keys on, without loading the column file).
  struct DatasetInfo {
    std::string name;
    size_t attributes = 0;
    size_t tuples = 0;
    /// Content fingerprint recorded at Put time. Zero for entries read
    /// from a legacy v1 manifest (unknown until the next Put).
    Fingerprint fingerprint;
  };

  /// Opens an existing catalog directory, or initializes an empty one
  /// (the directory itself must exist). Rejects malformed or truncated
  /// manifests with an error naming the offending line; sweeps
  /// generation files orphaned by a crashed Put.
  static Result<Catalog> Open(const std::string& directory);

  const std::string& directory() const { return directory_; }

  /// Names in insertion order.
  std::vector<std::string> List() const;
  bool Contains(const std::string& name) const;
  size_t size() const { return entries_.size(); }

  /// Manifest-recorded metadata for `name` (no file I/O).
  Result<DatasetInfo> Info(const std::string& name) const;

  /// Stores (or replaces) a relation under `name` and updates the
  /// manifest. Names must be non-empty and filesystem-safe
  /// ([A-Za-z0-9_.-]). On any failure the catalog — in memory and on
  /// disk — is left exactly as it was before the call.
  Status Put(const std::string& name, const Relation& relation);

  /// Loads a relation by name, cross-checking the loaded data against
  /// the manifest-recorded attribute/tuple counts and content
  /// fingerprint; a mismatch (stale, orphaned, or swapped file) is
  /// reported as DataLoss, never served silently.
  Result<Relation> Get(const std::string& name) const;

  /// Removes a relation and its file.
  Status Drop(const std::string& name);

  /// Loads every relation, in insertion order (for whole-catalog
  /// profiling). Applies the same integrity cross-checks as `Get`.
  Result<std::vector<Relation>> GetAll() const;

 private:
  struct Entry {
    std::string name;
    std::string file;  // relative to the directory
    size_t attributes = 0;
    size_t tuples = 0;
    Fingerprint fingerprint;  // zero when read from a v1 manifest
    uint64_t generation = 0;  // parsed from the ".g<N>.dmc" file name
  };

  explicit Catalog(std::string directory) : directory_(std::move(directory)) {}

  Status SaveManifest() const;
  std::string ManifestPath() const;
  std::string FilePath(const Entry& entry) const;
  const Entry* Find(const std::string& name) const;
  void SweepOrphans() const;

  std::string directory_;
  std::vector<Entry> entries_;
};

}  // namespace depminer
