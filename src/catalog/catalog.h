#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// A directory-backed workspace of named relations — the library's
/// stand-in for the DBMS the paper profiled through ODBC. Relations are
/// stored as ".dmc" column files next to a "catalog.manifest" index; the
/// catalog gives stable names to the tables of an analysis session so
/// repeated profiling skips CSV parsing.
///
/// Layout:
///   <dir>/catalog.manifest    "# depminer-catalog v1" header, then one
///                             tab-separated line per relation:
///                             name \t file \t attributes \t tuples
///   <dir>/<name>.dmc          one column file per relation
///
/// Concurrent writers are not supported (single-user tool semantics).
class Catalog {
 public:
  /// Opens an existing catalog directory, or initializes an empty one
  /// (the directory itself must exist).
  static Result<Catalog> Open(const std::string& directory);

  const std::string& directory() const { return directory_; }

  /// Names in insertion order.
  std::vector<std::string> List() const;
  bool Contains(const std::string& name) const;
  size_t size() const { return entries_.size(); }

  /// Stores (or replaces) a relation under `name` and updates the
  /// manifest. Names must be non-empty and filesystem-safe
  /// ([A-Za-z0-9_.-]).
  Status Put(const std::string& name, const Relation& relation);

  /// Loads a relation by name.
  Result<Relation> Get(const std::string& name) const;

  /// Removes a relation and its file.
  Status Drop(const std::string& name);

  /// Loads every relation, in insertion order (for whole-catalog
  /// profiling).
  Result<std::vector<Relation>> GetAll() const;

 private:
  struct Entry {
    std::string name;
    std::string file;  // relative to the directory
    size_t attributes = 0;
    size_t tuples = 0;
  };

  explicit Catalog(std::string directory) : directory_(std::move(directory)) {}

  Status SaveManifest() const;
  std::string ManifestPath() const;
  std::string FilePath(const Entry& entry) const;
  const Entry* Find(const std::string& name) const;

  std::string directory_;
  std::vector<Entry> entries_;
};

}  // namespace depminer
