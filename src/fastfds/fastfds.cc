#include "fastfds/fastfds.h"

#include <algorithm>

#include "common/trace.h"
#include "fault/fault.h"
#include "core/agree_sets.h"
#include "partition/partition_database.h"
#include "report/stats_format.h"

namespace depminer {

namespace {

/// Depth-first enumeration of the minimal covers of a family of
/// difference sets (the core of FastFDs). At each node the remaining
/// candidate attributes are ordered by how many still-uncovered sets they
/// hit (descending, ties by attribute id), and only attributes at or
/// after the chosen branch in that ordering may be used deeper down —
/// this enumerates every cover exactly once.
class CoverSearch {
 public:
  CoverSearch(const std::vector<AttributeSet>& sets, FastFdsStats* stats,
              RunContext* ctx, size_t max_size = 0)
      : sets_(sets), stats_(stats), ctx_(ctx), max_size_(max_size) {}

  /// Runs the search; calls emit(lhs) for every minimal cover. Returns
  /// false when a governing RunContext tripped and the search aborted —
  /// the covers emitted so far are valid but possibly not exhaustive.
  template <typename Emit>
  bool Run(const AttributeSet& candidates, Emit&& emit) {
    std::vector<size_t> uncovered(sets_.size());
    for (size_t i = 0; i < sets_.size(); ++i) uncovered[i] = i;
    Dfs(AttributeSet(), candidates, uncovered, emit);
    return !aborted_;
  }

 private:
  /// The DFS is exponential in the worst case, so the context is polled
  /// in batches of nodes rather than per recursion frame.
  static constexpr size_t kCheckEveryNodes = 1024;

  template <typename Emit>
  void Dfs(const AttributeSet& path, const AttributeSet& allowed,
           const std::vector<size_t>& uncovered, Emit&& emit) {
    if (aborted_) return;
    if (++stats_->search_nodes % kCheckEveryNodes == 0 && ctx_ != nullptr &&
        ctx_->StopRequested()) {
      aborted_ = true;
      return;
    }
    if (uncovered.empty()) {
      if (IsMinimalCover(path)) emit(path);
      return;
    }
    if (max_size_ != 0 && path.Count() == max_size_) {
      // Arity cap: the cover is incomplete and cannot grow further, so
      // every child branch is pruned before its subtree is visited.
      // Covers of size ≤ max_size_ live on paths of length ≤ max_size_
      // and are unaffected — the capped output is exactly the unbounded
      // one filtered by lhs size.
      allowed.ForEach([&](AttributeId a) {
        for (size_t i : uncovered) {
          if (sets_[i].Contains(a)) {
            ++stats_->candidates_pruned;
            break;
          }
        }
      });
      return;
    }

    // Order the allowed attributes by coverage of the uncovered sets.
    struct Scored {
      AttributeId attr;
      size_t coverage;
    };
    std::vector<Scored> order;
    allowed.ForEach([&](AttributeId a) {
      size_t coverage = 0;
      for (size_t i : uncovered) {
        if (sets_[i].Contains(a)) ++coverage;
      }
      if (coverage > 0) order.push_back({a, coverage});
    });
    if (order.empty()) return;  // some set is uncoverable: dead end
    std::stable_sort(order.begin(), order.end(),
                     [](const Scored& x, const Scored& y) {
                       if (x.coverage != y.coverage) {
                         return x.coverage > y.coverage;
                       }
                       return x.attr < y.attr;
                     });

    AttributeSet remaining_allowed;
    for (const Scored& s : order) remaining_allowed.Add(s.attr);
    for (const Scored& s : order) {
      remaining_allowed.Remove(s.attr);
      AttributeSet grown = path;
      grown.Add(s.attr);
      std::vector<size_t> still_uncovered;
      still_uncovered.reserve(uncovered.size() - s.coverage);
      for (size_t i : uncovered) {
        if (!sets_[i].Contains(s.attr)) still_uncovered.push_back(i);
      }
      Dfs(grown, remaining_allowed, still_uncovered, emit);
      if (aborted_) return;
    }
  }

  /// Every attribute of the cover must hit a set nothing else hits.
  bool IsMinimalCover(const AttributeSet& cover) const {
    bool minimal = true;
    cover.ForEach([&](AttributeId a) {
      if (!minimal) return;
      bool needed = false;
      for (const AttributeSet& s : sets_) {
        if (s.Contains(a) && !s.Intersects(cover.Minus(
                                 AttributeSet::Single(a)))) {
          needed = true;
          break;
        }
      }
      if (!needed) minimal = false;
    });
    return minimal;
  }

  const std::vector<AttributeSet>& sets_;
  FastFdsStats* stats_;
  RunContext* ctx_;
  const size_t max_size_;
  bool aborted_ = false;
};

}  // namespace

std::string FastFdsStats::ToString() const {
  StatsLineBuilder b;
  b.Count("difference_sets", difference_sets)
      .Count("search_nodes", search_nodes)
      .Count("pruned", candidates_pruned)
      .Count("fds", num_fds)
      .Seconds("total", total_seconds);
  return b.str();
}

Result<FastFdsResult> FastFdsDiscover(const Relation& relation,
                                      RunContext* ctx) {
  FastFdsOptions options;
  options.run_context = ctx;
  return FastFdsDiscover(relation, options);
}

Result<FastFdsResult> FastFdsDiscover(const Relation& relation,
                                      const FastFdsOptions& options) {
  RunContext* ctx = options.run_context;
  const size_t n = relation.num_attributes();
  if (n == 0) return Status::InvalidArgument("relation has no attributes");
  if (n > AttributeSet::kMaxAttributes) {
    return Status::CapacityExceeded("too many attributes");
  }
  Status mining_status = options.mining.Validate();
  if (!mining_status.ok()) return mining_status;
  if (options.mining.max_g3_error > 0.0) {
    return Status::InvalidArgument(
        "approximate (g3-thresholded) discovery is TANE-only");
  }
  DEPMINER_CHECK_RUN(ctx);

  FastFdsResult result;
  // Span-owned accumulating timer; each exit path commits the elapsed
  // time with an explicit Stop() (multi-exit functions cannot rely on a
  // destructor that runs after the return value is built).
  PhaseTimer phase_timer("phase/fastfds", &result.stats.total_seconds);

  // Front end shared with Dep-Miner: agree sets from stripped partitions,
  // then difference sets D(r) = complements. The empty agree set (pairs
  // disagreeing everywhere) contributes the difference set R.
  const StrippedPartitionDatabase db =
      StrippedPartitionDatabase::FromRelation(relation);
  const AgreeSetResult agree = ComputeAgreeSetsIdentifiers(db, ctx);
  if (!agree.status.ok()) {
    // A partial ag(r) yields a wrong (not merely partial) difference-set
    // family, so no cover search runs; only the front-end stats survive.
    phase_timer.Stop();
    result.complete = false;
    result.run_status = agree.status;
    return result;
  }
  const AttributeSet universe = AttributeSet::Universe(n);
  std::vector<AttributeSet> difference_sets;
  difference_sets.reserve(agree.sets.size() + 1);
  for (const AttributeSet& x : agree.All()) {
    difference_sets.push_back(universe.Minus(x));
  }
  result.stats.difference_sets = difference_sets.size();
  DEPMINER_TRACE_COUNTER("fastfds.difference_sets", difference_sets.size());

  DEPMINER_TRACE_SPAN(search_span, "fastfds/cover_search");
  std::vector<FunctionalDependency> found;
  for (AttributeId a = 0; a < n; ++a) {
    // One alloc poll per attribute: a firing fault models D_A (or the
    // search scratch) failing to allocate.
    DEPMINER_FAULT_ALLOC("alloc/fastfds", ctx);
    if (ctx != nullptr && ctx->limited()) {
      Status st = ctx->Check();
      if (!st.ok()) {
        result.complete = false;
        result.run_status = std::move(st);
        break;
      }
    }
    // D_A: difference sets containing A, with A removed, minimized.
    std::vector<AttributeSet> da;
    for (const AttributeSet& d : difference_sets) {
      if (d.Contains(a)) da.push_back(d.Minus(AttributeSet::Single(a)));
    }
    if (da.empty()) {
      // No pair of tuples disagrees on A: A is constant, ∅ → A.
      found.push_back({AttributeSet(), a});
      continue;
    }
    da = MinimalSets(std::move(da));
    // If ∅ ∈ D_A, a pair agrees on everything except A: nothing
    // (non-trivially) determines A, and the search naturally finds no
    // cover because the empty set cannot be hit.
    CoverSearch search(da, &result.stats, ctx,
                       options.mining.max_lhs_arity);
    const size_t found_before = found.size();
    if (!search.Run(universe.Minus(AttributeSet::Single(a)),
                    [&found, a](const AttributeSet& lhs) {
                      found.push_back({lhs, a});
                    })) {
      // An aborted per-attribute search may have missed covers, which
      // would make this attribute's FD list non-exhaustive; drop its
      // partial covers and report the trip (attributes already finished
      // keep their — final — FDs).
      found.resize(found_before);
      result.complete = false;
      result.run_status = ctx != nullptr ? ctx->Check() : Status::OK();
      if (result.run_status.ok()) {
        result.run_status = Status::Cancelled("FastFDs cover search aborted");
      }
      break;
    }
  }

  result.fds = FdSet(n, std::move(found));
  result.stats.num_fds = result.fds.size();
  DEPMINER_TRACE_COUNTER("fastfds.search_nodes", result.stats.search_nodes);
  DEPMINER_TRACE_COUNTER("fastfds.candidates_pruned",
                         result.stats.candidates_pruned);
  phase_timer.Stop();
  return result;
}

}  // namespace depminer
