#pragma once

#include <string>

#include "common/mining_options.h"
#include "common/run_context.h"
#include "common/status.h"
#include "fd/fd_set.h"
#include "relation/relation.h"

namespace depminer {

/// Options for a FastFDs run.
struct FastFdsOptions {
  /// Search-space pruning knobs. `max_lhs_arity` stops the cover DFS
  /// from branching past depth k, so covers larger than k are pruned
  /// before their subtrees are visited; the output equals the unbounded
  /// cover filtered to |X| ≤ k. `max_g3_error > 0` is rejected
  /// (TANE-only).
  MiningOptions mining;
  /// Optional resource governance; see FastFdsDiscover.
  RunContext* run_context = nullptr;
};

/// Statistics of a FastFDs run.
struct FastFdsStats {
  double total_seconds = 0;
  size_t difference_sets = 0;  ///< distinct difference sets of r
  size_t search_nodes = 0;     ///< DFS nodes visited over all attributes
  /// DFS branches the arity cap kept from being visited.
  size_t candidates_pruned = 0;
  size_t num_fds = 0;
  std::string ToString() const;
};

/// Result of a FastFDs run.
struct FastFdsResult {
  FdSet fds;
  FastFdsStats stats;
  /// False when a governing RunContext tripped mid-search; `fds` then
  /// holds the covers emitted before the trip and `run_status` the cause.
  bool complete = true;
  Status run_status;
};

/// FastFDs (Wyss, Giannella, Robertson; DaWaK 2001) — the follow-up to
/// Dep-Miner, implemented here as a second independent baseline.
///
/// It shares Dep-Miner's front end (agree sets from stripped partitions)
/// but works with *difference sets* D(r) = {R \ X : X ∈ ag(r)} and finds
/// the minimal left-hand sides per attribute as minimal covers of
/// D_A = Min⊆{D \ {A} : D ∈ D(r), A ∈ D} by a depth-first search with a
/// greedy coverage ordering, instead of the levelwise transversal search
/// of Algorithm 5. The output is the identical minimal FD cover
/// (asserted by tests).
///
/// `ctx` (optional) governs the run: it is threaded into the agree-set
/// front end and checked every ~1024 DFS nodes of the cover search.
Result<FastFdsResult> FastFdsDiscover(const Relation& relation,
                                      RunContext* ctx = nullptr);

/// Variant with pruning knobs (see FastFdsOptions).
Result<FastFdsResult> FastFdsDiscover(const Relation& relation,
                                      const FastFdsOptions& options);

}  // namespace depminer
