#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "relation/schema.h"

namespace depminer {

/// Identifier of a tuple within a relation: its 0-based row index. The
/// paper identifies tuples by "a positive integer unique to t"; we use the
/// row position.
using TupleId = uint32_t;

/// Dictionary code of a value within one column. Two cells of the same
/// column are equal iff their codes are equal; codes are dense in
/// [0, DistinctCount(A)).
using ValueCode = uint32_t;

/// An immutable relation instance, stored column-wise and dictionary
/// encoded.
///
/// FD discovery only needs *equality* of values, never their content, so
/// every algorithm in this library works on the dense per-column codes.
/// The original values are kept in per-column dictionaries so results
/// (e.g. real-world Armstrong relations, Definition 1 of the paper) can be
/// rendered with actual values from the input.
///
/// Build instances with `RelationBuilder` or `ReadCsvRelation`.
class Relation {
 public:
  Relation() = default;
  Relation(Schema schema, std::vector<std::vector<ValueCode>> columns,
           std::vector<std::vector<std::string>> dictionaries);

  const Schema& schema() const { return schema_; }
  size_t num_attributes() const { return schema_.num_attributes(); }
  size_t num_tuples() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  AttributeSet universe() const { return schema_.universe(); }

  /// The code of cell (t, a). O(1).
  ValueCode Code(TupleId t, AttributeId a) const { return columns_[a][t]; }
  /// The original value of cell (t, a).
  const std::string& Value(TupleId t, AttributeId a) const {
    return dictionaries_[a][columns_[a][t]];
  }
  /// Entire code column for attribute `a`.
  const std::vector<ValueCode>& Column(AttributeId a) const {
    return columns_[a];
  }

  /// Number of distinct values in column `a` — the paper's |π_A(r)|.
  size_t DistinctCount(AttributeId a) const {
    return dictionaries_[a].size();
  }
  /// The distinct values of column `a`, indexed by code.
  const std::vector<std::string>& Dictionary(AttributeId a) const {
    return dictionaries_[a];
  }

  /// True iff tuples `ti` and `tj` agree on every attribute of X.
  bool Agree(TupleId ti, TupleId tj, const AttributeSet& x) const;

  /// The agree set ag(ti, tj) = {A : ti[A] = tj[A]}.
  AttributeSet AgreeSetOf(TupleId ti, TupleId tj) const;

  /// Renders tuple `t` as "v1 | v2 | ..." for debugging and examples.
  std::string TupleToString(TupleId t) const;

 private:
  Schema schema_;
  /// columns_[a][t] — code of attribute `a` in tuple `t`.
  std::vector<std::vector<ValueCode>> columns_;
  /// dictionaries_[a][code] — original value.
  std::vector<std::vector<std::string>> dictionaries_;
};

}  // namespace depminer
