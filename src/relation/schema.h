#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "common/status.h"

namespace depminer {

/// Names the attributes of a relation, in schema order. Attribute `i` of a
/// `Relation` corresponds to `names()[i]`.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> names) : names_(std::move(names)) {}

  /// "A", "B", ..., "Z", "A1", "B1", ... — the paper's letter convention,
  /// extended past 26 attributes.
  static Schema Default(size_t num_attributes);

  size_t num_attributes() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(AttributeId a) const { return names_[a]; }

  /// Index of a named attribute, or NotFound.
  Result<AttributeId> Find(const std::string& name) const;

  /// The full attribute universe of this schema.
  AttributeSet universe() const {
    return AttributeSet::Universe(names_.size());
  }

  bool operator==(const Schema& o) const { return names_ == o.names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace depminer
