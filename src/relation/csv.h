#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// Options for `ReadCsvRelation`.
struct CsvOptions {
  char delimiter = ',';
  /// If true, the first row provides attribute names; otherwise a default
  /// A, B, C, ... schema is synthesized.
  bool has_header = true;
  /// Recognize RFC 4180 double-quoted fields ("a,b" and "" escapes).
  bool allow_quoting = true;
  /// SQL-style NULL semantics: when true, cells equal to `null_token`
  /// compare unequal to *everything*, including other NULLs — they never
  /// contribute to an agree set, so `NULL` in a column cannot witness or
  /// found an FD. When false (default), the token is an ordinary value
  /// (two empty cells agree).
  bool nulls_distinct = false;
  /// The cell content treated as NULL when `nulls_distinct` is set.
  std::string null_token;
};

/// Incremental CSV record reader: handles RFC 4180 quoting (including
/// embedded delimiters, escaped quotes and newlines inside quoted
/// fields), CRLF endings and custom delimiters. Shared by the relation
/// loader and the streaming partition extractor.
///
/// Malformed input — an unterminated quoted field at end of input, or an
/// embedded NUL byte — stops iteration with a sticky non-OK `status()`;
/// callers must distinguish "end of input" (`status().ok()`) from "bad
/// input" after `Next` returns false. Blank records before the first real
/// record are skipped, so a file of only (CR)LFs reads as empty input.
class CsvRecordReader {
 public:
  CsvRecordReader(std::istream& in, const CsvOptions& options)
      : in_(in), options_(options) {}

  /// Reads the next record into `fields`; returns false at end of input
  /// or on malformed input (then `status()` is non-OK).
  bool Next(std::vector<std::string>* fields);

  /// OK until malformed input is hit, then the (sticky) parse error.
  const Status& status() const { return status_; }

  size_t records_read() const { return records_read_; }

 private:
  std::istream& in_;
  const CsvOptions options_;
  std::string record_;
  Status status_;
  size_t records_read_ = 0;
};

/// Reads a CSV file into a dictionary-encoded `Relation`.
///
/// This replaces the paper's ODBC access path: the single pass over the
/// data that builds the stripped partition database starts from here.
/// Rejects ragged rows (IoError) and empty inputs (InvalidArgument).
Result<Relation> ReadCsvRelation(const std::string& path,
                                 const CsvOptions& options = {});

/// Parses CSV from an already-loaded string (used by tests).
Result<Relation> ParseCsvRelation(const std::string& content,
                                  const CsvOptions& options = {});

/// Writes a relation back out as CSV (with header). Quotes fields that
/// contain the delimiter, quotes or newlines.
Status WriteCsvRelation(const Relation& relation, const std::string& path,
                        const CsvOptions& options = {});

/// Serializes to a CSV string (used by tests for round-tripping).
std::string CsvToString(const Relation& relation,
                        const CsvOptions& options = {});

}  // namespace depminer
