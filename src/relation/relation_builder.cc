#include "relation/relation_builder.h"

namespace depminer {

RelationBuilder::RelationBuilder(Schema schema) : schema_(std::move(schema)) {
  const size_t n = schema_.num_attributes();
  columns_.resize(n);
  dictionaries_.resize(n);
  code_of_.resize(n);
}

Status RelationBuilder::AddRow(const std::vector<std::string>& values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, schema has " +
        std::to_string(schema_.num_attributes()) + " attributes");
  }
  for (size_t a = 0; a < values.size(); ++a) {
    if (has_null_token_ && values[a] == null_token_) {
      // NULLs agree with nothing: each occurrence is its own value.
      columns_[a].push_back(static_cast<ValueCode>(dictionaries_[a].size()));
      dictionaries_[a].push_back(values[a]);
      continue;
    }
    auto [it, inserted] = code_of_[a].try_emplace(
        values[a], static_cast<ValueCode>(dictionaries_[a].size()));
    if (inserted) dictionaries_[a].push_back(values[a]);
    columns_[a].push_back(it->second);
  }
  ++num_rows_;
  return Status::OK();
}

Status RelationBuilder::AddCodedRow(const std::vector<ValueCode>& codes) {
  if (codes.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("coded row arity mismatch");
  }
  for (size_t a = 0; a < codes.size(); ++a) {
    // Grow the dictionary with synthetic values so that rendering works.
    while (dictionaries_[a].size() <= codes[a]) {
      std::string value = std::to_string(dictionaries_[a].size());
      value.insert(value.begin(), 'v');
      dictionaries_[a].push_back(std::move(value));
    }
    columns_[a].push_back(codes[a]);
  }
  ++num_rows_;
  return Status::OK();
}

Result<Relation> RelationBuilder::Finish() && {
  if (schema_.num_attributes() == 0) {
    return Status::InvalidArgument("relation must have at least one attribute");
  }
  if (schema_.num_attributes() > AttributeSet::kMaxAttributes) {
    return Status::CapacityExceeded(
        "schema has " + std::to_string(schema_.num_attributes()) +
        " attributes; maximum supported is " +
        std::to_string(AttributeSet::kMaxAttributes));
  }
  // Re-encode each column so codes are dense and first-occurrence ordered:
  // AddCodedRow may have skipped codes or left dictionary entries that no
  // tuple uses, which would corrupt DistinctCount (= |π_A(r)|, the paper's
  // Proposition 1 quantity) and real-world Armstrong values.
  constexpr ValueCode kUnmapped = static_cast<ValueCode>(-1);
  for (size_t a = 0; a < columns_.size(); ++a) {
    std::vector<ValueCode> remap(dictionaries_[a].size(), kUnmapped);
    std::vector<std::string> dense_dict;
    for (ValueCode& code : columns_[a]) {
      if (remap[code] == kUnmapped) {
        remap[code] = static_cast<ValueCode>(dense_dict.size());
        dense_dict.push_back(std::move(dictionaries_[a][code]));
      }
      code = remap[code];
    }
    dictionaries_[a] = std::move(dense_dict);
  }
  return Relation(std::move(schema_), std::move(columns_),
                  std::move(dictionaries_));
}

Result<Relation> MakeRelation(
    Schema schema, const std::vector<std::vector<std::string>>& rows) {
  RelationBuilder b(std::move(schema));
  for (const auto& row : rows) {
    DEPMINER_RETURN_NOT_OK(b.AddRow(row));
  }
  return std::move(b).Finish();
}

Result<Relation> MakeRelation(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("cannot infer schema from zero rows");
  }
  return MakeRelation(Schema::Default(rows[0].size()), rows);
}

}  // namespace depminer
