#include "relation/relation.h"

#include <cassert>

namespace depminer {

Relation::Relation(Schema schema, std::vector<std::vector<ValueCode>> columns,
                   std::vector<std::vector<std::string>> dictionaries)
    : schema_(std::move(schema)),
      columns_(std::move(columns)),
      dictionaries_(std::move(dictionaries)) {
  assert(columns_.size() == schema_.num_attributes());
  assert(dictionaries_.size() == columns_.size());
#ifndef NDEBUG
  for (size_t a = 1; a < columns_.size(); ++a) {
    assert(columns_[a].size() == columns_[0].size());
  }
#endif
}

bool Relation::Agree(TupleId ti, TupleId tj, const AttributeSet& x) const {
  bool agree = true;
  x.ForEach([&](AttributeId a) {
    if (columns_[a][ti] != columns_[a][tj]) agree = false;
  });
  return agree;
}

AttributeSet Relation::AgreeSetOf(TupleId ti, TupleId tj) const {
  AttributeSet out;
  for (AttributeId a = 0; a < columns_.size(); ++a) {
    if (columns_[a][ti] == columns_[a][tj]) out.Add(a);
  }
  return out;
}

std::string Relation::TupleToString(TupleId t) const {
  std::string out;
  for (AttributeId a = 0; a < columns_.size(); ++a) {
    if (a > 0) out += " | ";
    out += Value(t, a);
  }
  return out;
}

}  // namespace depminer
