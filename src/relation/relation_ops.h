#pragma once

#include <cstdint>
#include <vector>

#include "common/attribute_set.h"
#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// Relational utilities used by examples and tests: projections, row
/// selections and samples. All return fresh, densely re-encoded
/// relations.

/// π_X(r) as a relation (duplicate tuples are kept — FD discovery
/// semantics are bag-insensitive, and keeping duplicates preserves tuple
/// counts for comparisons). Attribute order follows X's ascending ids.
Result<Relation> ProjectRelation(const Relation& relation,
                                 const AttributeSet& attributes);

/// The sub-relation holding exactly the given rows, in the given order.
/// Rows may repeat; ids must be < num_tuples().
Result<Relation> SelectRows(const Relation& relation,
                            const std::vector<TupleId>& rows);

/// A uniform random sample of `count` distinct rows (all rows if count ≥
/// num_tuples()), in increasing row order. Deterministic per seed.
Result<Relation> SampleRows(const Relation& relation, size_t count,
                            uint64_t seed);

/// Concatenates two relations over identical schemas (union-all).
Result<Relation> ConcatRelations(const Relation& a, const Relation& b);

}  // namespace depminer
