#include "relation/schema.h"

namespace depminer {

Schema Schema::Default(size_t num_attributes) {
  std::vector<std::string> names;
  names.reserve(num_attributes);
  for (size_t i = 0; i < num_attributes; ++i) {
    std::string name(1, static_cast<char>('A' + i % 26));
    if (i >= 26) name += std::to_string(i / 26);
    names.push_back(std::move(name));
  }
  return Schema(std::move(names));
}

Result<AttributeId> Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<AttributeId>(i);
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

}  // namespace depminer
