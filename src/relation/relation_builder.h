#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// Incrementally builds a `Relation`, dictionary-encoding values row by
/// row. Usage:
///
///   RelationBuilder b(Schema::Default(3));
///   b.AddRow({"1", "x", "y"});
///   Result<Relation> r = std::move(b).Finish();
class RelationBuilder {
 public:
  explicit RelationBuilder(Schema schema);

  /// Enables SQL-style NULL semantics: subsequent cells equal to `token`
  /// each receive a fresh dictionary code, so they agree with nothing
  /// (not even another NULL). Rendered back as the token itself.
  void TreatAsNull(std::string token) {
    null_token_ = std::move(token);
    has_null_token_ = true;
  }

  /// Appends one tuple; `values.size()` must equal the attribute count.
  Status AddRow(const std::vector<std::string>& values);

  /// Appends one tuple of pre-encoded codes; the builder assigns each
  /// distinct code a synthetic string value ("v<code>"). Used by the
  /// synthetic data generator, which thinks in code space.
  Status AddCodedRow(const std::vector<ValueCode>& codes);

  size_t num_rows() const { return num_rows_; }

  /// Finalizes into an immutable Relation. The builder is consumed.
  Result<Relation> Finish() &&;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  bool has_null_token_ = false;
  std::string null_token_;
  std::vector<std::vector<ValueCode>> columns_;
  std::vector<std::vector<std::string>> dictionaries_;
  std::vector<std::unordered_map<std::string, ValueCode>> code_of_;
};

/// Convenience: builds a relation from rows of strings with the given
/// schema.
Result<Relation> MakeRelation(Schema schema,
                              const std::vector<std::vector<std::string>>& rows);

/// Convenience for tests: builds a relation over Schema::Default with rows
/// given as string values.
Result<Relation> MakeRelation(const std::vector<std::vector<std::string>>& rows);

}  // namespace depminer
