#include "relation/csv.h"

#include <fstream>
#include <memory>
#include <sstream>

#include "common/file_reader.h"
#include "common/progress.h"
#include "relation/relation_builder.h"

namespace depminer {

namespace {

/// Splits one logical CSV record that is already known to be complete
/// (quotes balanced) into fields.
std::vector<std::string> SplitRecord(const std::string& line,
                                     const CsvOptions& options) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (options.allow_quoting && c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == options.delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

enum class ReadOutcome { kRecord, kEndOfInput, kMalformed };

/// Reads one logical record (handles newlines inside quoted fields).
/// kMalformed covers input no well-formed CSV contains: a quoted field
/// still open at end of input, or a NUL byte (text CSV never carries NUL;
/// one almost always means a binary file was passed by mistake, and NULs
/// silently truncate C-string comparisons downstream).
ReadOutcome ReadRecord(std::istream& in, const CsvOptions& options,
                       std::string* record, Status* error) {
  record->clear();
  std::string line;
  bool got_any = false;
  while (std::getline(in, line)) {
    got_any = true;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find('\0') != std::string::npos) {
      *error = Status::InvalidArgument("embedded NUL byte in CSV input");
      return ReadOutcome::kMalformed;
    }
    if (!record->empty()) *record += '\n';
    *record += line;
    if (!options.allow_quoting) return ReadOutcome::kRecord;
    // A record is complete when it contains an even number of quotes.
    size_t quotes = 0;
    for (char c : *record) {
      if (c == '"') ++quotes;
    }
    if (quotes % 2 == 0) return ReadOutcome::kRecord;
  }
  if (got_any) {
    // Only reachable with quoting enabled and an odd quote count: the
    // stream ended inside a quoted field.
    *error = Status::InvalidArgument(
        "unterminated quoted field at end of input");
    return ReadOutcome::kMalformed;
  }
  return ReadOutcome::kEndOfInput;
}

Result<Relation> ParseStream(std::istream& in, const CsvOptions& options,
                             const std::string& origin) {
  CsvRecordReader reader(in, options);
  size_t record_no = 0;
  DEPMINER_PROGRESS_PHASE("load", "rows", 0);

  Schema schema;
  std::unique_ptr<RelationBuilder> builder;

  std::vector<std::string> fields;
  while (reader.Next(&fields)) {
    ++record_no;
    // Batched tick: once per 4096 records, not per row.
    if (record_no % 4096 == 0) DEPMINER_PROGRESS_TICK(4096);
    if (!builder) {
      if (options.has_header) {
        schema = Schema(std::move(fields));
      } else {
        schema = Schema::Default(fields.size());
      }
      builder = std::make_unique<RelationBuilder>(schema);
      if (options.nulls_distinct) builder->TreatAsNull(options.null_token);
      if (options.has_header) continue;
    }
    if (fields.size() != schema.num_attributes()) {
      return Status::IoError(origin + ": record " + std::to_string(record_no) +
                             " has " + std::to_string(fields.size()) +
                             " fields, expected " +
                             std::to_string(schema.num_attributes()));
    }
    DEPMINER_RETURN_NOT_OK(builder->AddRow(fields));
  }
  if (!reader.status().ok()) {
    return Status::InvalidArgument(origin + ": " + reader.status().message());
  }

  if (!builder) {
    return Status::InvalidArgument(origin + ": empty CSV input");
  }
  return std::move(*builder).Finish();
}

bool NeedsQuoting(const std::string& value, const CsvOptions& options) {
  for (char c : value) {
    if (c == options.delimiter || c == '"' || c == '\n' || c == '\r') {
      return true;
    }
  }
  return false;
}

void AppendField(const std::string& value, const CsvOptions& options,
                 std::string* out) {
  if (!options.allow_quoting || !NeedsQuoting(value, options)) {
    *out += value;
    return;
  }
  *out += '"';
  for (char c : value) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

bool CsvRecordReader::Next(std::vector<std::string>* fields) {
  if (!status_.ok()) return false;
  for (;;) {
    Status error;
    switch (ReadRecord(in_, options_, &record_, &error)) {
      case ReadOutcome::kMalformed:
        status_ = std::move(error);
        return false;
      case ReadOutcome::kEndOfInput:
        return false;
      case ReadOutcome::kRecord:
        break;
    }
    // Blank records before the first real one are skipped (a file of only
    // (CR)LFs is empty input, not a sequence of one-empty-field records);
    // a blank record at the very end is the file's trailing newline.
    if (record_.empty() && records_read_ == 0) continue;
    if (record_.empty() && in_.eof()) return false;
    break;
  }
  *fields = SplitRecord(record_, options_);
  ++records_read_;
  return true;
}

Result<Relation> ReadCsvRelation(const std::string& path,
                                 const CsvOptions& options) {
  RetryingFileStream in(path);
  if (!in.is_open()) return in.status();
  Result<Relation> result = ParseStream(in, options, path);
  // A read error mid-file looks like EOF to the parser and would surface
  // as a silently truncated relation; the stream's sticky status is the
  // only witness, so it outranks the parse outcome.
  if (!in.status().ok()) return in.status();
  return result;
}

Result<Relation> ParseCsvRelation(const std::string& content,
                                  const CsvOptions& options) {
  std::istringstream in(content);
  return ParseStream(in, options, "<string>");
}

std::string CsvToString(const Relation& relation, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (size_t a = 0; a < relation.num_attributes(); ++a) {
      if (a > 0) out += options.delimiter;
      AppendField(relation.schema().name(static_cast<AttributeId>(a)), options,
                  &out);
    }
    out += '\n';
  }
  for (TupleId t = 0; t < relation.num_tuples(); ++t) {
    for (size_t a = 0; a < relation.num_attributes(); ++a) {
      if (a > 0) out += options.delimiter;
      AppendField(relation.Value(t, static_cast<AttributeId>(a)), options,
                  &out);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvRelation(const Relation& relation, const std::string& path,
                        const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << CsvToString(relation, options);
  if (!out) {
    return Status::IoError("failed writing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace depminer
