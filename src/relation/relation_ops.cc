#include "relation/relation_ops.h"

#include <algorithm>

#include "common/rng.h"
#include "relation/relation_builder.h"

namespace depminer {

Result<Relation> ProjectRelation(const Relation& relation,
                                 const AttributeSet& attributes) {
  if (attributes.Empty()) {
    return Status::InvalidArgument("projection onto zero attributes");
  }
  if (!attributes.IsSubsetOf(relation.universe())) {
    return Status::InvalidArgument("projection attribute out of range");
  }
  const std::vector<AttributeId> members = attributes.Members();
  std::vector<std::string> names;
  names.reserve(members.size());
  for (AttributeId a : members) names.push_back(relation.schema().name(a));

  RelationBuilder builder(Schema(std::move(names)));
  std::vector<std::string> row(members.size());
  for (TupleId t = 0; t < relation.num_tuples(); ++t) {
    for (size_t i = 0; i < members.size(); ++i) {
      row[i] = relation.Value(t, members[i]);
    }
    DEPMINER_RETURN_NOT_OK(builder.AddRow(row));
  }
  return std::move(builder).Finish();
}

Result<Relation> SelectRows(const Relation& relation,
                            const std::vector<TupleId>& rows) {
  RelationBuilder builder(relation.schema());
  std::vector<std::string> row(relation.num_attributes());
  for (TupleId t : rows) {
    if (t >= relation.num_tuples()) {
      return Status::InvalidArgument("row id " + std::to_string(t) +
                                     " out of range");
    }
    for (AttributeId a = 0; a < relation.num_attributes(); ++a) {
      row[a] = relation.Value(t, a);
    }
    DEPMINER_RETURN_NOT_OK(builder.AddRow(row));
  }
  return std::move(builder).Finish();
}

Result<Relation> SampleRows(const Relation& relation, size_t count,
                            uint64_t seed) {
  const size_t p = relation.num_tuples();
  if (count >= p) {
    std::vector<TupleId> all(p);
    for (TupleId t = 0; t < p; ++t) all[t] = t;
    return SelectRows(relation, all);
  }
  // Partial Fisher-Yates over the row-id universe.
  Rng rng(seed);
  std::vector<TupleId> ids(p);
  for (TupleId t = 0; t < p; ++t) ids[t] = t;
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + static_cast<size_t>(rng.Below(p - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  std::sort(ids.begin(), ids.end());
  return SelectRows(relation, ids);
}

Result<Relation> ConcatRelations(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("schemas differ");
  }
  RelationBuilder builder(a.schema());
  std::vector<std::string> row(a.num_attributes());
  for (const Relation* r : {&a, &b}) {
    for (TupleId t = 0; t < r->num_tuples(); ++t) {
      for (AttributeId attr = 0; attr < r->num_attributes(); ++attr) {
        row[attr] = r->Value(t, attr);
      }
      DEPMINER_RETURN_NOT_OK(builder.AddRow(row));
    }
  }
  return std::move(builder).Finish();
}

}  // namespace depminer
