#pragma once

#include <string>
#include <vector>

#include "ind/foreign_keys.h"
#include "report/profile.h"

namespace depminer {

/// A whole-database profile: one RelationProfile per relation plus the
/// cross-relation structure (inclusion dependencies and foreign-key
/// candidates) — the complete logical-tuning picture for a set of
/// exported tables.
struct DatabaseProfile {
  std::vector<RelationProfile> relations;
  std::vector<std::string> labels;
  std::vector<NaryInd> inds;
  std::vector<ForeignKeyCandidate> foreign_keys;
};

/// Options for database profiling.
struct DatabaseProfileOptions {
  ProfileOptions per_relation;
  ForeignKeyOptions foreign_keys;
};

/// Profiles every relation and discovers the cross-relation structure.
/// `labels` names the relations in the output (file names, typically).
Result<DatabaseProfile> ProfileDatabase(
    const std::vector<const Relation*>& relations,
    const std::vector<std::string>& labels,
    const DatabaseProfileOptions& options = {});

/// One JSON object: {"relations": [...], "inclusion_dependencies": [...],
/// "foreign_keys": [...]}.
std::string DatabaseProfileToJson(
    const DatabaseProfile& profile,
    const std::vector<const Relation*>& relations);

}  // namespace depminer
