#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dep_miner.h"
#include "fd/normalization.h"
#include "relation/relation.h"

namespace depminer {

/// A full profiling pass over one relation: everything the paper's
/// "logical tuning" dba wants in one structure, renderable as JSON or
/// Markdown (the machine/human outputs of `fdtool profile`).
struct RelationProfile {
  std::string source;  ///< file name or label
  size_t num_attributes = 0;
  size_t num_tuples = 0;
  std::vector<std::string> attribute_names;
  std::vector<size_t> distinct_counts;

  FdSet fds;                                ///< minimal cover of dep(r)
  std::vector<AttributeSet> max_sets;       ///< MAX(dep(r))
  std::vector<AttributeSet> candidate_keys;
  bool in_bcnf = false;
  bool in_3nf = false;
  std::vector<FunctionalDependency> bcnf_violations;

  std::optional<Relation> armstrong;  ///< real-world sample, if it exists
  std::string armstrong_note;         ///< why absent, when absent

  DepMinerStats stats;
};

/// Options for profiling.
struct ProfileOptions {
  DepMinerOptions mining;
  /// Cap on the candidate-key enumeration (there can be exponentially
  /// many); when hit, `candidate_keys` is truncated and the renderers
  /// note it. 0 = unlimited.
  size_t max_keys = 256;
};

/// Runs the full analysis.
Result<RelationProfile> ProfileRelation(const Relation& relation,
                                        const std::string& source,
                                        const ProfileOptions& options = {});

/// Machine-readable rendering (one JSON object; schema documented by the
/// emitted keys).
std::string ProfileToJson(const RelationProfile& profile);

/// Human-readable Markdown rendering.
std::string ProfileToMarkdown(const RelationProfile& profile);

}  // namespace depminer
