#include "report/stats_format.h"

#include <cstdio>

namespace depminer {

void StatsLineBuilder::Separate() {
  if (in_group_) {
    if (!group_empty_) out_ += ", ";
    group_empty_ = false;
    return;
  }
  if (!out_.empty()) out_ += ' ';
}

StatsLineBuilder& StatsLineBuilder::Count(const char* key, size_t value) {
  Separate();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%zu", key, value);
  out_ += buf;
  return *this;
}

StatsLineBuilder& StatsLineBuilder::Seconds(const char* key, double seconds) {
  Separate();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.3fs", key, seconds);
  out_ += buf;
  return *this;
}

StatsLineBuilder& StatsLineBuilder::Megabytes(const char* key, size_t bytes) {
  Separate();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.1f", key,
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  out_ += buf;
  return *this;
}

StatsLineBuilder& StatsLineBuilder::BeginGroup() {
  out_ += " (";
  in_group_ = true;
  group_empty_ = true;
  return *this;
}

StatsLineBuilder& StatsLineBuilder::EndGroup() {
  out_ += ')';
  in_group_ = false;
  return *this;
}

}  // namespace depminer
