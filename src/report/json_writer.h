#pragma once

#include <string>

namespace depminer {

/// A minimal streaming JSON writer (no external dependencies): supports
/// objects, arrays, strings (with full escaping), integers, doubles and
/// booleans. The caller is responsible for well-formedness ordering
/// (Key before value, matching Open/Close) — assertions catch misuse in
/// debug builds.
class JsonWriter {
 public:
  JsonWriter& OpenObject();
  JsonWriter& CloseObject();
  JsonWriter& OpenArray();
  JsonWriter& CloseArray();

  /// Writes a key inside an object; must be followed by a value.
  JsonWriter& Key(const std::string& name);

  JsonWriter& Value(const std::string& s);
  JsonWriter& Value(const char* s);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

  /// Escapes a string per RFC 8259 (quotes, backslashes, control chars).
  static std::string Escape(const std::string& s);

 private:
  void BeforeValue();

  std::string out_;
  bool need_comma_ = false;
  bool after_key_ = false;
};

}  // namespace depminer
