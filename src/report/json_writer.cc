#include "report/json_writer.h"

#include <cstdio>

namespace depminer {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ += ',';
}

JsonWriter& JsonWriter::OpenObject() {
  BeforeValue();
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::CloseObject() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::OpenArray() {
  BeforeValue();
  out_ += '[';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::CloseArray() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (need_comma_) out_ += ',';
  out_ += Escape(name);
  out_ += ':';
  need_comma_ = false;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& s) {
  BeforeValue();
  out_ += Escape(s);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const char* s) {
  return Value(std::string(s));
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace depminer
