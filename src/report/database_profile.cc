#include "report/database_profile.h"

#include "report/json_writer.h"

namespace depminer {

Result<DatabaseProfile> ProfileDatabase(
    const std::vector<const Relation*>& relations,
    const std::vector<std::string>& labels,
    const DatabaseProfileOptions& options) {
  if (relations.size() != labels.size()) {
    return Status::InvalidArgument("labels/relations arity mismatch");
  }
  DatabaseProfile profile;
  profile.labels = labels;
  for (size_t i = 0; i < relations.size(); ++i) {
    Result<RelationProfile> one =
        ProfileRelation(*relations[i], labels[i], options.per_relation);
    if (!one.ok()) return one.status();
    profile.relations.push_back(std::move(one).value());
  }
  profile.inds = DiscoverNaryInds(relations, options.foreign_keys.ind);
  profile.foreign_keys = SuggestForeignKeys(relations, options.foreign_keys);
  return profile;
}

std::string DatabaseProfileToJson(
    const DatabaseProfile& profile,
    const std::vector<const Relation*>& relations) {
  JsonWriter json;
  json.OpenObject();

  json.Key("relations").OpenArray();
  for (const RelationProfile& r : profile.relations) {
    // Embed each single-relation profile verbatim; the writer emits raw
    // because ProfileToJson already produces a JSON object.
    json.OpenObject();
    json.Key("label").Value(r.source);
    json.Key("attributes").Value(static_cast<uint64_t>(r.num_attributes));
    json.Key("tuples").Value(static_cast<uint64_t>(r.num_tuples));
    json.Key("fds").Value(static_cast<uint64_t>(r.fds.size()));
    json.Key("keys").Value(static_cast<uint64_t>(r.candidate_keys.size()));
    json.Key("bcnf").Value(r.in_bcnf);
    json.CloseObject();
  }
  json.CloseArray();

  json.Key("inclusion_dependencies").OpenArray();
  for (const NaryInd& ind : profile.inds) {
    json.Value(IndToString(ind, relations, profile.labels));
  }
  json.CloseArray();

  json.Key("foreign_keys").OpenArray();
  for (const ForeignKeyCandidate& fk : profile.foreign_keys) {
    json.OpenObject();
    json.Key("ind").Value(IndToString(fk.ind, relations, profile.labels));
    json.Key("references_candidate_key").Value(fk.rhs_is_minimal_key);
    json.CloseObject();
  }
  json.CloseArray();

  json.CloseObject();
  return json.str();
}

}  // namespace depminer
