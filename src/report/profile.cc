#include "report/profile.h"

#include "core/keys_from_max_sets.h"
#include "relation/csv.h"
#include "report/json_writer.h"

namespace depminer {

Result<RelationProfile> ProfileRelation(const Relation& relation,
                                        const std::string& source,
                                        const ProfileOptions& options) {
  RelationProfile profile;
  profile.source = source;
  profile.num_attributes = relation.num_attributes();
  profile.num_tuples = relation.num_tuples();
  profile.attribute_names = relation.schema().names();
  for (AttributeId a = 0; a < relation.num_attributes(); ++a) {
    profile.distinct_counts.push_back(relation.DistinctCount(a));
  }

  Result<DepMinerResult> mined = MineDependencies(relation, options.mining);
  if (!mined.ok()) return mined.status();
  profile.fds = mined.value().fds;
  profile.max_sets = mined.value().all_max_sets;
  profile.stats = mined.value().stats;
  if (mined.value().armstrong.has_value()) {
    profile.armstrong = mined.value().armstrong;
  } else {
    profile.armstrong_note = mined.value().armstrong_status.ToString();
  }

  profile.candidate_keys =
      KeysFromMaxSets(profile.max_sets, profile.num_attributes);
  if (options.max_keys != 0 &&
      profile.candidate_keys.size() > options.max_keys) {
    profile.candidate_keys.resize(options.max_keys);
  }

  NormalizationAnalysis analysis(relation.schema(), profile.fds);
  profile.in_bcnf = analysis.InBcnf();
  profile.in_3nf = analysis.In3nf();
  for (const NormalFormViolation& v : analysis.violations()) {
    profile.bcnf_violations.push_back(v.fd);
  }
  return profile;
}

std::string ProfileToJson(const RelationProfile& profile) {
  const Schema schema(profile.attribute_names);
  JsonWriter json;
  json.OpenObject();
  json.Key("source").Value(profile.source);
  json.Key("attributes").Value(static_cast<uint64_t>(profile.num_attributes));
  json.Key("tuples").Value(static_cast<uint64_t>(profile.num_tuples));

  json.Key("columns").OpenArray();
  for (size_t a = 0; a < profile.attribute_names.size(); ++a) {
    json.OpenObject();
    json.Key("name").Value(profile.attribute_names[a]);
    json.Key("distinct").Value(static_cast<uint64_t>(
        a < profile.distinct_counts.size() ? profile.distinct_counts[a] : 0));
    json.CloseObject();
  }
  json.CloseArray();

  json.Key("functional_dependencies").OpenArray();
  for (const FunctionalDependency& fd : profile.fds.fds()) {
    json.OpenObject();
    json.Key("lhs").OpenArray();
    fd.lhs.ForEach(
        [&](AttributeId a) { json.Value(profile.attribute_names[a]); });
    json.CloseArray();
    json.Key("rhs").Value(profile.attribute_names[fd.rhs]);
    json.CloseObject();
  }
  json.CloseArray();

  json.Key("candidate_keys").OpenArray();
  for (const AttributeSet& key : profile.candidate_keys) {
    json.OpenArray();
    key.ForEach(
        [&](AttributeId a) { json.Value(profile.attribute_names[a]); });
    json.CloseArray();
  }
  json.CloseArray();

  json.Key("max_sets").OpenArray();
  for (const AttributeSet& m : profile.max_sets) {
    json.OpenArray();
    m.ForEach([&](AttributeId a) { json.Value(profile.attribute_names[a]); });
    json.CloseArray();
  }
  json.CloseArray();

  json.Key("normal_forms").OpenObject();
  json.Key("bcnf").Value(profile.in_bcnf);
  json.Key("third_nf").Value(profile.in_3nf);
  json.Key("violations").OpenArray();
  for (const FunctionalDependency& fd : profile.bcnf_violations) {
    json.Value(fd.ToString(schema));
  }
  json.CloseArray();
  json.CloseObject();

  json.Key("armstrong").OpenObject();
  if (profile.armstrong.has_value()) {
    json.Key("exists").Value(true);
    json.Key("tuples").Value(
        static_cast<uint64_t>(profile.armstrong->num_tuples()));
    json.Key("csv").Value(CsvToString(*profile.armstrong));
  } else {
    json.Key("exists").Value(false);
    json.Key("reason").Value(profile.armstrong_note);
  }
  json.CloseObject();

  // Per-phase timings — every PhaseTimer-owned stat, so bench tables and
  // scripts/plot_figures.py consume the same numbers `--metrics` prints.
  json.Key("timings").OpenObject();
  json.Key("total_seconds").Value(profile.stats.Total());
  json.Key("strip_seconds").Value(profile.stats.strip_seconds);
  json.Key("agree_seconds").Value(profile.stats.agree_seconds);
  json.Key("max_seconds").Value(profile.stats.max_seconds);
  json.Key("lhs_seconds").Value(profile.stats.lhs_seconds);
  json.Key("armstrong_seconds").Value(profile.stats.armstrong_seconds);
  json.CloseObject();

  json.Key("metrics").OpenObject();
  json.Key("couples").Value(static_cast<uint64_t>(profile.stats.num_couples));
  json.Key("chunks").Value(static_cast<uint64_t>(profile.stats.chunks));
  json.Key("agree_sets").Value(
      static_cast<uint64_t>(profile.stats.num_agree_sets));
  json.Key("max_sets").Value(static_cast<uint64_t>(profile.stats.num_max_sets));
  json.Key("fds").Value(static_cast<uint64_t>(profile.stats.num_fds));
  json.Key("agree_working_bytes")
      .Value(static_cast<uint64_t>(profile.stats.agree_working_bytes));
  json.CloseObject();

  json.CloseObject();
  return json.str();
}

std::string ProfileToMarkdown(const RelationProfile& profile) {
  const Schema schema(profile.attribute_names);
  std::string out;
  out += "# Profile: " + profile.source + "\n\n";
  out += "- attributes: " + std::to_string(profile.num_attributes) + "\n";
  out += "- tuples: " + std::to_string(profile.num_tuples) + "\n";
  out += "- minimal FDs: " + std::to_string(profile.fds.size()) + "\n";
  out += std::string("- normal form: ") +
         (profile.in_bcnf ? "BCNF" : profile.in_3nf ? "3NF" : "below 3NF") +
         "\n\n";

  out += "## Columns\n\n| column | distinct |\n|---|---|\n";
  for (size_t a = 0; a < profile.attribute_names.size(); ++a) {
    out += "| " + profile.attribute_names[a] + " | " +
           std::to_string(profile.distinct_counts[a]) + " |\n";
  }

  out += "\n## Candidate keys\n\n";
  for (const AttributeSet& key : profile.candidate_keys) {
    out += "- `" + key.ToString(profile.attribute_names) + "`\n";
  }

  out += "\n## Minimal functional dependencies\n\n";
  for (const FunctionalDependency& fd : profile.fds.fds()) {
    out += "- `" + fd.ToString(schema) + "`\n";
  }

  if (!profile.bcnf_violations.empty()) {
    out += "\n## Normal-form violations\n\n";
    for (const FunctionalDependency& fd : profile.bcnf_violations) {
      out += "- `" + fd.ToString(schema) + "` (lhs is not a key)\n";
    }
  }

  out += "\n## Armstrong sample\n\n";
  if (profile.armstrong.has_value()) {
    out += "Every discovered FD holds in this sample and every non-FD has "
           "a counterexample (" +
           std::to_string(profile.armstrong->num_tuples()) + " tuples):\n\n";
    out += "```\n" + CsvToString(*profile.armstrong) + "```\n";
  } else {
    out += "Not available: " + profile.armstrong_note + "\n";
  }
  return out;
}

}  // namespace depminer
