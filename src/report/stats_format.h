#pragma once

#include <cstddef>
#include <string>

namespace depminer {

/// Builder for the one-line `key=value` stats strings every miner prints
/// (`DepMinerStats`, `TaneStats`, `FastFdsStats`, `FdepStats`). Before
/// this, each struct hand-rolled its own snprintf format; the builder
/// pins the shared conventions in one place — counts bare, seconds as
/// `%.3f` with an `s` suffix, byte quantities as `%.1f` megabytes —
/// while reproducing the legacy formats byte for byte:
///
///   StatsLineBuilder b;
///   b.Count("levels", 3).Seconds("total", 0.1234);
///   b.str() == "levels=3 total=0.123s"
///
/// Entries are space-separated; a group (`BeginGroup`/`EndGroup`)
/// parenthesizes detail entries after the preceding entry, separated by
/// commas: `agree=0.5s (couples=10, chunks=1)`.
class StatsLineBuilder {
 public:
  StatsLineBuilder& Count(const char* key, size_t value);
  StatsLineBuilder& Seconds(const char* key, double seconds);
  /// `key` names the unit itself (e.g. "working_mb"); `bytes` is
  /// converted to mebibytes and printed with one decimal.
  StatsLineBuilder& Megabytes(const char* key, size_t bytes);

  StatsLineBuilder& BeginGroup();
  StatsLineBuilder& EndGroup();

  const std::string& str() const { return out_; }

 private:
  void Separate();

  std::string out_;
  bool in_group_ = false;
  bool group_empty_ = true;
};

}  // namespace depminer
