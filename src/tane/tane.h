#pragma once

#include <string>

#include "common/mining_options.h"
#include "common/run_context.h"
#include "common/status.h"
#include "fd/fd_set.h"
#include "partition/partition_database.h"
#include "relation/relation.h"

namespace depminer {

/// Options for a TANE run.
struct TaneOptions {
  /// Ablation switch: disable superkey pruning (the PRUNE procedure of
  /// [HKPT98]). Keys stay in the lattice and are expanded; minimal FDs
  /// with superkey left-hand sides are found through the ordinary
  /// dependency test instead of the key-pruning rule. Results are
  /// identical; cost grows.
  bool enable_key_pruning = true;
  /// Pool lanes for the partition products of each lattice level (the
  /// dominant cost; candidates within one level are independent).
  /// 1 = serial. Output is identical for any value.
  size_t num_threads = 1;
  /// Optional resource governance: checked once per lattice level and
  /// once per partition product (the per-level dominant cost); the live
  /// two-level partition footprint is charged against its memory budget.
  RunContext* run_context = nullptr;
  /// Search-space pruning knobs. `max_g3_error > 0` discovers TANE's
  /// approximate dependencies; 0 discovers exact ones. `max_lhs_arity`
  /// caps lattice depth: level k+1 is still tested (its FDs have lhs
  /// size k) but level k+2 is pruned before generation, so the output
  /// equals the unbounded cover filtered to |X| ≤ k (asserted by the
  /// fuzz oracle).
  MiningOptions mining;
  /// Optional memoized π̂_X store shared across runs and with the top-k
  /// ranking: level products consult it before computing and offer their
  /// results back. Its base database must be built from the same
  /// relation (and outlive the run). nullptr = every product computed
  /// in place, exactly as without a cache.
  PartitionCache* partition_cache = nullptr;
};

/// Statistics of a TANE run, for the bench harness.
struct TaneStats {
  double total_seconds = 0;
  size_t levels = 0;
  size_t candidates_generated = 0;  ///< lattice nodes across all levels
  /// Lattice joins the arity cap kept from being generated (the prefix-
  /// block pairs of the last admitted level).
  size_t candidates_pruned = 0;
  size_t partition_products = 0;
  size_t num_fds = 0;
  /// High-water estimate of partition storage: the largest total size (in
  /// bytes, 4 per stored TupleId) of the stripped partitions of two
  /// consecutive live levels. This is TANE's dominant memory cost and the
  /// quantity that made the paper's 256 MB machine fail its TANE runs at
  /// 100k tuples ('*' entries); Dep-Miner's analogue is the couple list.
  size_t peak_partition_bytes = 0;
  std::string ToString() const;
};

/// Result of a TANE run.
struct TaneResult {
  FdSet fds;  ///< minimal non-trivial (approximate) FDs
  TaneStats stats;
  /// False when a governing RunContext tripped mid-search; `fds` then
  /// holds the (minimal, but possibly not exhaustive) FDs validated on
  /// the levels completed before the trip, and `run_status` the cause.
  bool complete = true;
  Status run_status;
};

/// The TANE algorithm of Huhtala, Kärkkäinen, Porkka and Toivonen
/// [HKPT98], the comparison baseline of the paper's evaluation (§5.1) —
/// re-implemented, as the authors did, from its published description.
///
/// TANE searches the lattice of attribute sets levelwise, testing each
/// X\{A} → A with the partition criterion e(X\{A}) = e(X), and prunes with
/// the rhs⁺ candidate sets C⁺(X) and with superkey pruning. Partitions of
/// level l are products of two level l−1 partitions, computed in linear
/// time.
///
/// For `max_g3_error == 0` the output is a cover of dep(r) identical to
/// Dep-Miner's FD set (asserted by tests).
Result<TaneResult> TaneDiscover(const Relation& relation,
                                const TaneOptions& options = {});

}  // namespace depminer
