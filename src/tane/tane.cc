#include "tane/tane.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/progress.h"
#include "common/trace.h"
#include "fault/fault.h"
#include "partition/partition_database.h"
#include "partition/partition_product.h"
#include "report/stats_format.h"

namespace depminer {

namespace {

/// One lattice node: an attribute set X with its rhs⁺ candidates C⁺(X) and
/// stripped partition π̂_X.
struct Node {
  AttributeSet set;
  std::vector<AttributeId> members;  // sorted; drives prefix-block joins
  AttributeSet cplus;
  /// Shared so a PartitionCache can retain level products without a copy
  /// (and serve them back to later runs or the top-k ranking).
  std::shared_ptr<const StrippedPartition> partition;
  size_t error = 0;  ///< e(π̂_X)·|r| = Σ (|c| − 1) over stripped classes
  // Indices of the joined parents in the previous level, used to defer
  // the (parallelizable) partition product.
  size_t parent_i = 0;
  size_t parent_j = 0;
};

size_t PartitionError(const StrippedPartition& p) {
  size_t e = 0;
  for (const EquivalenceClass& c : p.classes()) e += c.size() - 1;
  return e;
}

class TaneRun {
 public:
  TaneRun(const Relation& relation, const TaneOptions& options)
      : relation_(relation),
        options_(options),
        n_(relation.num_attributes()),
        p_(relation.num_tuples()),
        universe_(AttributeSet::Universe(relation.num_attributes())),
        workspace_(relation.num_tuples()),
        owner_of_(relation.num_tuples(), UINT32_MAX),
        cache_(options.partition_cache) {}

  TaneResult Run() {
    // Span-owned timer, stopped explicitly before the result is moved
    // out: a destructor-based write would land *after* the move and be
    // lost (NRVO is not guaranteed for `std::move(result_)`).
    PhaseTimer phase_timer("phase/tane", &result_.stats.total_seconds);
    // C⁺(∅) = R; π̂_∅'s error is p − 1 (a single class of all tuples).
    cplus_memo_[AttributeSet()] = universe_;
    error_empty_ = p_ > 0 ? p_ - 1 : 0;

    RunContext* ctx = options_.run_context;
    ScopedMemoryCharge memory(ctx);

    std::vector<Node> level = BuildFirstLevel();
    result_.stats.candidates_generated += level.size();
    // Lattice depth is bounded by the attribute count; the total is the
    // worst case, so the heartbeat's ETA is pessimistic (TANE usually
    // exhausts its candidates several levels early).
    DEPMINER_PROGRESS_PHASE("tane", "levels", n_);

    while (!level.empty()) {
      if (ctx != nullptr && ctx->limited()) {
        Status st = ctx->Check();
        if (!st.ok()) {
          result_.complete = false;
          result_.run_status = std::move(st);
          break;
        }
      }
      ++result_.stats.levels;
      DEPMINER_PROGRESS_TICK(1);
      DEPMINER_TRACE_SPAN(level_span, "tane/level");
      level_span.SetValue(level.size());
      DEPMINER_TRACE_HISTOGRAM("tane_level_candidates/all", level.size());
      memory.Set(RecordPartitionFootprint(level));
      DEPMINER_FAULT_ALLOC("alloc/tane", ctx);
      ComputeDependencies(&level);
      Prune(&level);
      // The surviving nodes become the "previous level": their partitions
      // and C⁺ sets feed both the joins and the next round of validity
      // tests, so they must outlive this iteration.
      prev_level_ = std::move(level);
      RebuildPreviousIndex();
      level = GenerateNextLevel();
      result_.stats.candidates_generated += level.size();
      if (!trip_status_.ok()) {
        result_.complete = false;
        result_.run_status = trip_status_;
        break;
      }
    }

    result_.fds = FdSet(n_, std::move(found_));
    result_.stats.num_fds = result_.fds.size();
    DEPMINER_TRACE_COUNTER("tane.levels", result_.stats.levels);
    DEPMINER_TRACE_COUNTER("tane.candidates",
                           result_.stats.candidates_generated);
    DEPMINER_TRACE_COUNTER("tane.candidates_pruned",
                           result_.stats.candidates_pruned);
    DEPMINER_TRACE_COUNTER("tane.products",
                           result_.stats.partition_products);
    if (cache_ != nullptr) cache_->EmitTraceCounters();
    DEPMINER_TRACE_GAUGE_MAX("tane.peak_partition_bytes",
                             result_.stats.peak_partition_bytes);
    phase_timer.Stop();
    return std::move(result_);
  }

 private:
  std::vector<Node> BuildFirstLevel() {
    std::vector<Node> level;
    level.reserve(n_);
    for (AttributeId a = 0; a < n_; ++a) {
      Node node;
      node.set = AttributeSet::Single(a);
      node.members = {a};
      node.cplus = universe_;
      if (cache_ != nullptr) {
        // Aliases the cache's base database (a guaranteed hit).
        node.partition = cache_->Get(node.set);
      } else {
        node.partition = std::make_shared<const StrippedPartition>(
            StrippedPartition::ForAttribute(relation_, a));
      }
      node.error = PartitionError(*node.partition);
      level.push_back(std::move(node));
    }
    return level;
  }

  /// Validity of X\{A} → A: exact mode compares partition errors (π_{X\A}
  /// and π_X are equal iff their errors coincide, as one refines the
  /// other); approximate mode bounds the g₃ fraction. At ε = 0 the two
  /// criteria agree exactly — g₃ = 0 iff the errors coincide — which
  /// `force_error_validation` lets the oracle assert by running the g₃
  /// path anyway.
  bool Valid(const Node& parent, const Node& node) {
    if (options_.mining.max_g3_error <= 0.0 &&
        !options_.mining.force_error_validation) {
      return parent.error == node.error;
    }
    return G3(*parent.partition, *node.partition) <=
           options_.mining.max_g3_error;
  }

  /// g₃(X → A) from π̂_X (lhs) and π̂_{X∪A} (refined): within each lhs
  /// class keep its largest refined subclass (or a singleton).
  double G3(const StrippedPartition& lhs, const StrippedPartition& refined) {
    if (p_ == 0) return 0.0;
    const auto& lhs_classes = lhs.classes();
    for (uint32_t i = 0; i < lhs_classes.size(); ++i) {
      for (TupleId t : lhs_classes[i]) owner_of_[t] = i;
    }
    std::vector<size_t> biggest(lhs_classes.size(), 1);
    for (const EquivalenceClass& c : refined.classes()) {
      const uint32_t owner = owner_of_[c.front()];
      if (owner != UINT32_MAX) {
        biggest[owner] = std::max(biggest[owner], c.size());
      }
    }
    size_t removed = 0;
    for (uint32_t i = 0; i < lhs_classes.size(); ++i) {
      removed += lhs_classes[i].size() - biggest[i];
    }
    for (const EquivalenceClass& c : lhs_classes) {
      for (TupleId t : c) owner_of_[t] = UINT32_MAX;
    }
    return static_cast<double>(removed) / static_cast<double>(p_);
  }

  /// The special-cased ∅ → A test for level 1 (X = {A}, lhs = ∅).
  bool ValidFromEmpty(const Node& node) {
    if (options_.mining.max_g3_error <= 0.0 &&
        !options_.mining.force_error_validation) {
      return error_empty_ == node.error;
    }
    // g₃(∅ → A): keep the most frequent A-value.
    size_t biggest = p_ == 0 ? 0 : 1;
    for (const EquivalenceClass& c : node.partition->classes()) {
      biggest = std::max(biggest, c.size());
    }
    const size_t removed = p_ - biggest;
    return p_ == 0 ||
           static_cast<double>(removed) / static_cast<double>(p_) <=
               options_.mining.max_g3_error;
  }

  void ComputeDependencies(std::vector<Node>* level) {
    for (Node& node : *level) {
      const AttributeSet test = node.set.Intersect(node.cplus);
      test.ForEach([&](AttributeId a) {
        AttributeSet lhs = node.set;
        lhs.Remove(a);
        bool valid;
        if (lhs.Empty()) {
          valid = ValidFromEmpty(node);
        } else {
          const Node* parent = FindPrevious(lhs);
          // Every proper subset of a generated node was itself generated
          // (Apriori-gen invariant), so the parent must exist.
          valid = parent != nullptr && Valid(*parent, node);
        }
        if (valid) {
          found_.push_back({lhs, a});
          node.cplus.Remove(a);
          node.cplus = node.cplus.Minus(universe_.Minus(node.set));
        }
      });
    }
    // Freeze this level's (post-update) C⁺ values for later lookups.
    for (const Node& node : *level) {
      cplus_memo_[node.set] = node.cplus;
    }
  }

  void Prune(std::vector<Node>* level) {
    std::vector<Node> kept;
    kept.reserve(level->size());
    for (Node& node : *level) {
      if (node.cplus.Empty()) continue;
      if (options_.enable_key_pruning && node.error == 0) {
        // X is a superkey. Output the remaining implied FDs (key-pruning
        // rule of [HKPT98]): X → A for A ∈ C⁺(X)\X with
        // A ∈ ⋂_{B∈X} C⁺((X∪{A})\{B}). These FDs have lhs X itself, so
        // an arity cap gates the emission (X may sit one level past the
        // deepest reportable lhs).
        if (options_.mining.WithinArity(node.set.Count())) {
          const AttributeSet extra = node.cplus.Minus(node.set);
          extra.ForEach([&](AttributeId a) {
            AttributeSet intersection = universe_;
            node.set.ForEach([&](AttributeId b) {
              AttributeSet y = node.set;
              y.Add(a);
              y.Remove(b);
              intersection = intersection.Intersect(CplusOf(y));
            });
            if (intersection.Contains(a)) {
              found_.push_back({node.set, a});
            }
          });
        }
        continue;  // superkeys are not expanded
      }
      kept.push_back(std::move(node));
    }
    *level = std::move(kept);
  }

  /// Returns the current two-level partition footprint (the quantity a
  /// RunContext memory budget governs) and folds it into the peak stat.
  size_t RecordPartitionFootprint(const std::vector<Node>& level) {
    size_t bytes = 0;
    for (const Node& node : level) {
      bytes += node.partition->CoveredTuples() * sizeof(TupleId);
    }
    for (const Node& node : prev_level_) {
      bytes += node.partition->CoveredTuples() * sizeof(TupleId);
    }
    result_.stats.peak_partition_bytes =
        std::max(result_.stats.peak_partition_bytes, bytes);
    return bytes;
  }

  void RebuildPreviousIndex() {
    std::sort(prev_level_.begin(), prev_level_.end(),
              [](const Node& a, const Node& b) { return a.members < b.members; });
    previous_.clear();
    for (Node& node : prev_level_) previous_[node.set] = &node;
  }

  /// Prefix-block pair count of `level` — the joins an arity cap keeps
  /// from being generated.
  static size_t CountPrunedJoins(const std::vector<Node>& level) {
    size_t pruned = 0;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        if (!std::equal(level[i].members.begin(), level[i].members.end() - 1,
                        level[j].members.begin())) {
          break;
        }
        ++pruned;
      }
    }
    return pruned;
  }

  std::vector<Node> GenerateNextLevel() {
    // Prefix blocks: nodes sharing their first l−1 attributes;
    // prev_level_ is sorted by member sequence (RebuildPreviousIndex).
    std::vector<Node>& level = prev_level_;
    std::vector<Node> next;
    const size_t l = level.empty() ? 0 : level[0].members.size();
    // Arity cap k: level k+1 was just tested (its FDs have lhs size k);
    // the joins of level k+2 are pruned before generation. Everything up
    // to here ran exactly as unbounded, so the output is the unbounded
    // cover filtered to |lhs| ≤ k.
    const size_t cap = options_.mining.max_lhs_arity;
    if (cap != 0 && l >= cap + 1) {
      result_.stats.candidates_pruned += CountPrunedJoins(level);
      return next;
    }
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        if (!std::equal(level[i].members.begin(),
                        level[i].members.end() - 1,
                        level[j].members.begin())) {
          break;
        }
        Node joined;
        joined.members = level[i].members;
        joined.members.push_back(level[j].members[l - 1]);
        joined.set = level[i].set.Union(level[j].set);

        // Apriori prune: every l-subset must be present (un-pruned).
        bool all_present = true;
        joined.set.ForEach([&](AttributeId drop) {
          AttributeSet sub = joined.set;
          sub.Remove(drop);
          if (previous_.find(sub) == previous_.end()) all_present = false;
        });
        if (!all_present) continue;

        // C⁺(X) = ⋂_{A∈X} C⁺(X\{A}).
        joined.cplus = universe_;
        joined.set.ForEach([&](AttributeId drop) {
          AttributeSet sub = joined.set;
          sub.Remove(drop);
          joined.cplus = joined.cplus.Intersect(previous_.at(sub)->cplus);
        });

        joined.parent_i = i;
        joined.parent_j = j;
        next.push_back(std::move(joined));
      }
    }

    // The partition products — the dominant per-level cost — run in
    // parallel over the independent candidates on the shared pool
    // (per-slot workspaces; results land in index-distinct slots, so
    // output is deterministic). A governing RunContext is consulted once
    // per product; on a trip the remaining products are skipped and
    // Run() discards this level.
    result_.stats.partition_products += next.size();
    DEPMINER_TRACE_SPAN(products_span, "tane/products");
    products_span.SetValue(next.size());
    RunContext* ctx = options_.run_context;
    if (options_.num_threads <= 1 || next.size() <= 1) {
      for (Node& node : next) {
        if (ctx != nullptr && ctx->limited()) {
          trip_status_ = ctx->Check();
          if (!trip_status_.ok()) break;
        }
        ProductFor(&node, workspace_);
      }
    } else {
      const size_t workers = std::min(options_.num_threads, next.size());
      std::vector<std::unique_ptr<PartitionProductWorkspace>> workspaces;
      workspaces.reserve(workers);
      for (size_t w = 0; w < workers; ++w) {
        workspaces.push_back(
            std::make_unique<PartitionProductWorkspace>(p_));
      }
      std::atomic<bool> tripped{false};
      ParallelForSlotted(
          0, next.size(), workers,
          [&](size_t slot, size_t k) {
            ProductFor(&next[k], *workspaces[slot]);
          },
          [&] {
            if (ctx != nullptr && ctx->StopRequested()) {
              tripped.store(true, std::memory_order_relaxed);
              return true;
            }
            return tripped.load(std::memory_order_relaxed);
          });
      if (tripped.load(std::memory_order_relaxed)) {
        trip_status_ = ctx->Check();
        if (trip_status_.ok()) {
          // Non-sticky budget trips can clear between the worker's
          // observation and this check; record the interruption anyway.
          trip_status_ = Status::Cancelled("TANE level generation interrupted");
        }
      }
    }
    return next;
  }

  /// π̂_X and error for a joined node: a cache hit when one is
  /// configured, otherwise the parents' product (offered back to the
  /// cache). Values are deterministic functions of the relation, so the
  /// hit/compute choice never changes what the node holds.
  void ProductFor(Node* node, PartitionProductWorkspace& workspace) {
    if (cache_ != nullptr) {
      std::shared_ptr<const StrippedPartition> cached =
          cache_->Lookup(node->set);
      if (cached != nullptr) {
        node->partition = std::move(cached);
        node->error = PartitionError(*node->partition);
        return;
      }
    }
    node->partition = std::make_shared<const StrippedPartition>(
        workspace.Product(*prev_level_[node->parent_i].partition,
                          *prev_level_[node->parent_j].partition));
    node->error = PartitionError(*node->partition);
    if (cache_ != nullptr) cache_->Insert(node->set, node->partition);
  }

  const Node* FindPrevious(const AttributeSet& set) const {
    auto it = previous_.find(set);
    return it == previous_.end() ? nullptr : it->second;
  }

  /// C⁺(Y) for an arbitrary set: from the memo when Y survived to some
  /// level, otherwise on demand by the recursive intersection formula.
  AttributeSet CplusOf(const AttributeSet& y) {
    auto it = cplus_memo_.find(y);
    if (it != cplus_memo_.end()) return it->second;
    AttributeSet out = universe_;
    y.ForEach([&](AttributeId drop) {
      AttributeSet sub = y;
      sub.Remove(drop);
      out = out.Intersect(CplusOf(sub));
    });
    cplus_memo_[y] = out;
    return out;
  }

  const Relation& relation_;
  const TaneOptions options_;
  const size_t n_;
  const size_t p_;
  const AttributeSet universe_;
  PartitionProductWorkspace workspace_;
  std::vector<uint32_t> owner_of_;  // scratch for G3
  PartitionCache* const cache_;

  size_t error_empty_ = 0;
  std::vector<FunctionalDependency> found_;
  std::vector<Node> prev_level_;
  std::unordered_map<AttributeSet, Node*, AttributeSetHash> previous_;
  std::unordered_map<AttributeSet, AttributeSet, AttributeSetHash> cplus_memo_;
  Status trip_status_;  ///< first RunContext trip seen inside GenerateNextLevel
  TaneResult result_;
};

}  // namespace

std::string TaneStats::ToString() const {
  StatsLineBuilder b;
  b.Count("levels", levels)
      .Count("candidates", candidates_generated)
      .Count("pruned", candidates_pruned)
      .Count("products", partition_products)
      .Count("fds", num_fds)
      .Megabytes("peak_partition_mb", peak_partition_bytes)
      .Seconds("total", total_seconds);
  return b.str();
}

Result<TaneResult> TaneDiscover(const Relation& relation,
                                const TaneOptions& options) {
  if (relation.num_attributes() == 0) {
    return Status::InvalidArgument("relation has no attributes");
  }
  if (relation.num_attributes() > AttributeSet::kMaxAttributes) {
    return Status::CapacityExceeded("too many attributes");
  }
  Status mining_status = options.mining.Validate();
  if (!mining_status.ok()) return mining_status;
  TaneRun run(relation, options);
  return run.Run();
}

}  // namespace depminer
