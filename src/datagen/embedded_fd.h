#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "fd/functional_dependency.h"
#include "relation/relation.h"

namespace depminer {

/// Generates relations with *planted* functional dependencies, for
/// correctness tests and for the logical-tuning example: every listed FD
/// is guaranteed to hold in the output (other, accidental FDs may hold
/// too — discovery returns a cover of dep(r), which implies the planted
/// ones).
struct EmbeddedFdConfig {
  size_t num_attributes = 6;
  size_t num_tuples = 200;
  /// Dependencies to plant. Right-hand attributes are computed as a
  /// deterministic function of their left-hand values, so the lhs→rhs
  /// graph must be acyclic; free attributes draw uniformly from the pool.
  std::vector<FunctionalDependency> fds;
  /// Pool size for free attributes (controls how many accidental
  /// dependencies appear; larger pools mean fewer).
  size_t domain_size = 50;
  uint64_t seed = 42;
};

/// Builds the relation. Fails if an FD's rhs set is cyclic or an FD is
/// trivial.
Result<Relation> GenerateWithEmbeddedFds(const EmbeddedFdConfig& config);

}  // namespace depminer
