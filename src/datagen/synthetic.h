#pragma once

#include <cstdint>

#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// Parameters of the paper's benchmark database generator (§5.2, Table 2):
/// |R| attributes, |r| tuples, and a "rate of identical values" c per
/// column.
///
/// "if c has a value of 50% for an attribute and the number of tuples is
/// 1000, this means that each value for this attribute is chosen between
/// 500 possible values" — i.e. each cell is drawn uniformly from a pool of
/// max(1, c·|r|) values. `identical_rate == 0` reproduces the "data sets
/// without constraints" group: each value is chosen among |r| candidates,
/// so duplicates arise from birthday collisions only.
struct SyntheticConfig {
  size_t num_attributes = 10;
  size_t num_tuples = 1000;
  /// c ∈ [0, 1]: pool size per attribute = max(1, c·|r|); 0 means |r|.
  double identical_rate = 0.0;
  /// When non-zero, overrides `identical_rate` with an absolute pool size
  /// that does not scale with |r|. A fixed domain makes duplication — and
  /// with it agree sets, maximal sets and Armstrong sizes — *grow* with
  /// |r|, which is the shape of the paper's Table 3(b); see
  /// EXPERIMENTS.md.
  size_t fixed_domain = 0;
  /// Value skew: 0 (default) draws uniformly from the pool, as the paper
  /// does; s > 0 draws Zipf(s) — value k with probability ∝ 1/k^s —
  /// which concentrates duplication in a few heavy values, the shape of
  /// real categorical data. Skew changes stripped-class size profiles
  /// (few huge classes instead of many small ones), the regime where the
  /// paper motivates Algorithm 3.
  double zipf_exponent = 0.0;
  uint64_t seed = 42;
};

/// Generates a relation per the paper's benchmark recipe. Deterministic
/// given the seed (xoshiro256**).
Result<Relation> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace depminer
