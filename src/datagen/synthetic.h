#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// Parameters of the paper's benchmark database generator (§5.2, Table 2):
/// |R| attributes, |r| tuples, and a "rate of identical values" c per
/// column.
///
/// "if c has a value of 50% for an attribute and the number of tuples is
/// 1000, this means that each value for this attribute is chosen between
/// 500 possible values" — i.e. each cell is drawn uniformly from a pool of
/// max(1, c·|r|) values. `identical_rate == 0` reproduces the "data sets
/// without constraints" group: each value is chosen among |r| candidates,
/// so duplicates arise from birthday collisions only.
struct SyntheticConfig {
  size_t num_attributes = 10;
  size_t num_tuples = 1000;
  /// c ∈ [0, 1]: pool size per attribute = max(1, c·|r|); 0 means |r|.
  double identical_rate = 0.0;
  /// When non-zero, overrides `identical_rate` with an absolute pool size
  /// that does not scale with |r|. A fixed domain makes duplication — and
  /// with it agree sets, maximal sets and Armstrong sizes — *grow* with
  /// |r|, which is the shape of the paper's Table 3(b); see
  /// EXPERIMENTS.md.
  size_t fixed_domain = 0;
  /// Value skew: 0 (default) draws uniformly from the pool, as the paper
  /// does; s > 0 draws Zipf(s) — value k with probability ∝ 1/k^s —
  /// which concentrates duplication in a few heavy values, the shape of
  /// real categorical data. Skew changes stripped-class size profiles
  /// (few huge classes instead of many small ones), the regime where the
  /// paper motivates Algorithm 3.
  double zipf_exponent = 0.0;
  uint64_t seed = 42;
  /// Columns are generated in parallel on the shared pool; each column
  /// owns a decoupled RNG stream derived from (seed, column), so the
  /// relation is byte-identical for ANY thread count — threads only speed
  /// generation up. 0 or 1 runs inline.
  size_t num_threads = 1;
  /// Optional governance: the generator charges its column store to the
  /// context's memory budget up front and polls for trips (deadline,
  /// cancellation, budget) mid-generation. A tripped run returns the
  /// context's verdict instead of a relation — generation is
  /// all-or-nothing, there is no partial relation. nullptr = ungoverned.
  RunContext* run_context = nullptr;
};

/// Generates a relation per the paper's benchmark recipe. Deterministic
/// given the seed (xoshiro256**, one decoupled stream per column).
Result<Relation> GenerateSynthetic(const SyntheticConfig& config);

/// One named point of the paper-scale benchmark grid.
struct CorpusSpec {
  std::string name;
  SyntheticConfig config;
};

/// The paper's §7 evaluation regime (Tables 3–5) as a reproducible grid:
///
///   - tuple sweep       |R|=15, c=0.5, |r| ∈ {25k, 100k, 400k}·scale
///   - attribute sweep   |r|=100k·scale, c=0.5, |R| ∈ {10, 25, 45}
///   - correlation sweep |r|=100k·scale, |R|=15, c ∈ {0.1, 0.3, 0.7, 0.9}
///   - fixed-domain      |r|=4k·scale, |R|=15, domain 64 (Table 3(b))
///   - zipf-skewed       |r|=4k·scale, |R|=15, c=0.5, s=1.2
///
/// The two dense-duplication points use a smaller tuple base because
/// their distinct-couple counts grow quadratically with class sizes;
/// they are sized to land near 10^6 couples.
///
/// `scale` stretches the tuple counts: 1.0 is the paper's regime
/// (hundreds of thousands of tuples), 4.0 pushes the sweep into the low
/// millions (1.6M), and a small fraction (e.g. 0.001) yields a
/// seconds-long smoke grid with the same shape — scripts/check.sh runs
/// exactly that. Tuple counts floor at 64 so every dataset stays
/// non-degenerate. The sweeps are pairwise disjoint by construction and
/// names embed the *actual* parameter values, so a spec's name alone
/// identifies its data. Deterministic for a given (scale, seed).
std::vector<CorpusSpec> PaperScaleCorpus(double scale = 1.0,
                                         uint64_t seed = 42);

}  // namespace depminer
