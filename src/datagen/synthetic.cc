#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "relation/relation_builder.h"

namespace depminer {

Result<Relation> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_attributes == 0) {
    return Status::InvalidArgument("num_attributes must be positive");
  }
  if (config.num_attributes > AttributeSet::kMaxAttributes) {
    return Status::CapacityExceeded("too many attributes");
  }
  if (config.identical_rate < 0.0 || config.identical_rate > 1.0) {
    return Status::InvalidArgument("identical_rate must be in [0, 1]");
  }
  if (config.zipf_exponent < 0.0) {
    return Status::InvalidArgument("zipf_exponent must be >= 0");
  }

  Rng rng(config.seed);
  const size_t pool =
      config.fixed_domain != 0 ? config.fixed_domain
      : config.identical_rate == 0.0
          ? std::max<size_t>(config.num_tuples, 1)
          : std::max<size_t>(
                1, static_cast<size_t>(config.identical_rate *
                                       static_cast<double>(config.num_tuples)));

  // For Zipf draws, precompute the cumulative distribution over the pool
  // (value k has weight 1/(k+1)^s) and sample by binary search.
  std::vector<double> cdf;
  if (config.zipf_exponent > 0.0) {
    cdf.resize(pool);
    double total = 0.0;
    for (size_t k = 0; k < pool; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1),
                              config.zipf_exponent);
      cdf[k] = total;
    }
    for (double& c : cdf) c /= total;
  }
  auto draw = [&]() -> ValueCode {
    if (cdf.empty()) return static_cast<ValueCode>(rng.Below(pool));
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<ValueCode>(it - cdf.begin());
  };

  RelationBuilder builder(Schema::Default(config.num_attributes));
  std::vector<ValueCode> row(config.num_attributes);
  for (size_t t = 0; t < config.num_tuples; ++t) {
    for (size_t a = 0; a < config.num_attributes; ++a) {
      row[a] = draw();
    }
    DEPMINER_RETURN_NOT_OK(builder.AddCodedRow(row));
  }
  return std::move(builder).Finish();
}

}  // namespace depminer
