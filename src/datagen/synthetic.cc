#include "datagen/synthetic.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "common/parallel.h"
#include "common/rng.h"

namespace depminer {

namespace {

/// The seed of column `a`'s decoupled RNG stream. Mixing the column index
/// through an odd multiplier before the xoshiro/splitmix seeding keeps
/// adjacent columns' streams unrelated (seed, seed+1, ... would correlate
/// through splitmix's additive constant at these small offsets).
uint64_t ColumnSeed(uint64_t seed, size_t a) {
  return seed ^ ((a + 1) * 0x9E3779B97F4A7C15ull);
}

/// Rounds a scaled tuple count, flooring at 64 so degenerate relations
/// (where every pair is a couple and MC pruning is vacuous) never enter
/// the corpus.
size_t ScaledTuples(double base, double scale) {
  return std::max<size_t>(64, static_cast<size_t>(base * scale));
}

std::string TupleTag(size_t tuples) {
  if (tuples % 1000000 == 0) return std::to_string(tuples / 1000000) + "m";
  if (tuples % 1000 == 0) return std::to_string(tuples / 1000) + "k";
  return std::to_string(tuples);
}

}  // namespace

Result<Relation> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_attributes == 0) {
    return Status::InvalidArgument("num_attributes must be positive");
  }
  if (config.num_attributes > AttributeSet::kMaxAttributes) {
    return Status::CapacityExceeded("too many attributes");
  }
  if (config.identical_rate < 0.0 || config.identical_rate > 1.0) {
    return Status::InvalidArgument("identical_rate must be in [0, 1]");
  }
  if (config.zipf_exponent < 0.0) {
    return Status::InvalidArgument("zipf_exponent must be >= 0");
  }

  const size_t pool =
      config.fixed_domain != 0 ? config.fixed_domain
      : config.identical_rate == 0.0
          ? std::max<size_t>(config.num_tuples, 1)
          : std::max<size_t>(
                1, static_cast<size_t>(config.identical_rate *
                                       static_cast<double>(config.num_tuples)));

  // Charge the working set before a single cell is drawn, so a memory
  // budget can veto a paper-scale generation outright: the code columns,
  // the per-column first-occurrence remap tables (live one column at a
  // time per lane, but worst-case all lanes at once), and the Zipf CDF.
  RunContext* ctx = config.run_context;
  const size_t num_threads = std::max<size_t>(1, config.num_threads);
  const size_t lanes =
      std::min(num_threads, std::max<size_t>(1, config.num_attributes));
  ScopedMemoryCharge memory(ctx);
  memory.Set(config.num_attributes * config.num_tuples * sizeof(ValueCode) +
             lanes * pool * sizeof(ValueCode) +
             (config.zipf_exponent > 0.0 ? pool * sizeof(double) : 0));
  DEPMINER_CHECK_RUN(ctx);

  // For Zipf draws, precompute the cumulative distribution over the pool
  // (value k has weight 1/(k+1)^s) and sample by binary search. The CDF
  // is identical for every column, so it is built once and shared.
  std::vector<double> cdf;
  if (config.zipf_exponent > 0.0) {
    cdf.resize(pool);
    double total = 0.0;
    for (size_t k = 0; k < pool; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1),
                              config.zipf_exponent);
      cdf[k] = total;
    }
    for (double& c : cdf) c /= total;
  }

  // Column-parallel generation: each column draws from its own
  // (seed, column)-derived stream and dense-codes itself in
  // first-occurrence order, exactly what RelationBuilder::Finish would
  // produce (dictionary entry "v<raw>" for raw pool value <raw>). Column
  // contents never depend on the thread count or scheduling — only on
  // (seed, column) — so the relation is byte-identical at any
  // parallelism. A lane that observes a tripped context abandons its
  // column; generation is all-or-nothing, so the trip verdict replaces
  // the relation.
  const Schema schema = Schema::Default(config.num_attributes);
  std::vector<std::vector<ValueCode>> columns(config.num_attributes);
  std::vector<std::vector<std::string>> dictionaries(config.num_attributes);
  std::atomic<bool> stopped{false};
  ParallelFor(
      0, config.num_attributes, num_threads,
      [&](size_t a) {
        Rng rng(ColumnSeed(config.seed, a));
        auto draw = [&]() -> ValueCode {
          if (cdf.empty()) return static_cast<ValueCode>(rng.Below(pool));
          const double u = rng.NextDouble();
          const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
          return static_cast<ValueCode>(it - cdf.begin());
        };

        constexpr ValueCode kUnmapped = static_cast<ValueCode>(-1);
        std::vector<ValueCode> remap(pool, kUnmapped);
        std::vector<ValueCode>& column = columns[a];
        std::vector<std::string>& dict = dictionaries[a];
        column.resize(config.num_tuples);
        StridedStopPoller poll(ctx, 4096);
        for (size_t t = 0; t < config.num_tuples; ++t) {
          if (poll.StopRequested()) {
            stopped.store(true, std::memory_order_relaxed);
            return;
          }
          const ValueCode raw = draw();
          if (remap[raw] == kUnmapped) {
            remap[raw] = static_cast<ValueCode>(dict.size());
            std::string value = std::to_string(raw);
            value.insert(value.begin(), 'v');
            dict.push_back(std::move(value));
          }
          column[t] = remap[raw];
        }
      },
      [&stopped] { return stopped.load(std::memory_order_relaxed); });

  if (stopped.load(std::memory_order_relaxed)) {
    if (ctx != nullptr) {
      Status st = ctx->Check();
      if (!st.ok()) return st;
    }
    return Status::Cancelled("synthetic generation interrupted");
  }
  return Relation(schema, std::move(columns), std::move(dictionaries));
}

std::vector<CorpusSpec> PaperScaleCorpus(double scale, uint64_t seed) {
  std::vector<CorpusSpec> corpus;
  auto add = [&](std::string name, size_t attrs, size_t tuples, double c,
                 size_t fixed_domain, double zipf) {
    SyntheticConfig cfg;
    cfg.num_attributes = attrs;
    cfg.num_tuples = tuples;
    cfg.identical_rate = c;
    cfg.fixed_domain = fixed_domain;
    cfg.zipf_exponent = zipf;
    // Every dataset gets its own seed stream so grid points are
    // statistically independent yet individually reproducible.
    cfg.seed = seed ^ ((corpus.size() + 1) * 0xD1B54A32D192ED03ull);
    corpus.push_back({std::move(name), cfg});
  };

  // Tuple sweep (Table 3 shape): fixed schema, growing |r|.
  for (const double base : {25000.0, 100000.0, 400000.0}) {
    const size_t tuples = ScaledTuples(base, scale);
    add("tuples_" + TupleTag(tuples) + "_attrs15_c50", 15, tuples, 0.5, 0,
        0.0);
  }
  // Attribute sweep (Table 4 shape): fixed |r|, growing schema.
  const size_t mid = ScaledTuples(100000.0, scale);
  for (const size_t attrs : {size_t{10}, size_t{25}, size_t{45}}) {
    add("attrs" + std::to_string(attrs) + "_tuples_" + TupleTag(mid) + "_c50",
        attrs, mid, 0.5, 0, 0.0);
  }
  // Correlation sweep (Table 5 shape): duplication regime from sparse
  // (c=0.1: large pools, few couples) to dense (c=0.9 is *less*
  // correlated than c=0.1 in the paper's parameterization — the pool is
  // 0.9·|r|, so collisions are rare; low c is the hot regime).
  for (const int pct : {10, 30, 70, 90}) {
    add("corr_c" + std::to_string(pct) + "_tuples_" + TupleTag(mid) +
            "_attrs15",
        15, mid, pct / 100.0, 0, 0.0);
  }
  // Dense-duplication points ride a smaller tuple base: their couple
  // counts grow quadratically with class sizes (a 64-value domain at
  // 100k tuples implies ~10^9 distinct couples), so they are sized to
  // keep couples near 10^6 — still far past every kernel crossover.
  const size_t dense = ScaledTuples(4000.0, scale);
  // Fixed-domain point (Table 3(b) shape): duplication grows with |r|.
  add("fixed_domain64_tuples_" + TupleTag(dense) + "_attrs15", 15, dense, 0.0,
      64, 0.0);
  // Skewed point: Zipf(1.2) concentrates duplication in heavy values —
  // the stripped-class profile Algorithm 3 is motivated by, and the
  // skew the morsel scheduler exists to absorb.
  add("zipf12_tuples_" + TupleTag(dense) + "_attrs15_c50", 15, dense, 0.5, 0,
      1.2);
  // Wide low-domain point (appended last: dataset seeds are a function of
  // the grid position, so earlier points keep their streams): 45
  // attributes over a 20-value domain put the minimal keys ~4 attributes
  // wide, so the unbounded lattice/transversal searches pay the
  // C(45,4) ≈ 1.5·10^5 candidate wall that the --arity cap exists to
  // skip — the headline grid point of bench_scale's arity sweep.
  const size_t wide = ScaledTuples(256.0, scale);
  add("dense_attrs45_tuples_" + TupleTag(wide) + "_dom20", 45, wide, 0.0, 20,
      0.0);
  return corpus;
}

}  // namespace depminer
