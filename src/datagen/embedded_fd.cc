#include "datagen/embedded_fd.h"

#include <algorithm>

#include "common/rng.h"
#include "relation/relation_builder.h"

namespace depminer {

namespace {

/// Deterministic value derivation: mixes the lhs codes and the rhs
/// attribute id into one value. Equal lhs projections yield equal rhs
/// values, which is exactly X → A.
ValueCode DeriveValue(const std::vector<ValueCode>& row,
                      const AttributeSet& lhs, AttributeId rhs,
                      size_t domain) {
  uint64_t h = 0x9E3779B97F4A7C15ull + rhs;
  lhs.ForEach([&](AttributeId a) {
    h ^= (row[a] + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 29;
  });
  return static_cast<ValueCode>(h % domain);
}

}  // namespace

Result<Relation> GenerateWithEmbeddedFds(const EmbeddedFdConfig& config) {
  const size_t n = config.num_attributes;
  if (n == 0 || n > AttributeSet::kMaxAttributes) {
    return Status::InvalidArgument("bad attribute count");
  }
  if (config.domain_size == 0) {
    return Status::InvalidArgument("domain_size must be positive");
  }
  for (const FunctionalDependency& fd : config.fds) {
    if (fd.IsTrivial()) {
      return Status::InvalidArgument("cannot embed the trivial FD " +
                                     fd.ToString());
    }
    if (fd.rhs >= n || (!fd.lhs.Empty() && fd.lhs.Max() >= n)) {
      return Status::InvalidArgument("FD attribute out of range: " +
                                     fd.ToString());
    }
  }

  // One derivation rule per rhs attribute: a second FD on the same rhs
  // would not be honoured by value derivation, so reject it up front.
  std::vector<const FunctionalDependency*> rule(n, nullptr);
  for (const FunctionalDependency& fd : config.fds) {
    if (rule[fd.rhs] != nullptr) {
      return Status::InvalidArgument(
          "cannot embed two FDs with the same right-hand attribute: " +
          fd.ToString());
    }
    rule[fd.rhs] = &fd;
  }
  // Topologically order the derived attributes (A depends on the lhs of
  // its rule) by iterative depth-first search; cycles are rejected.
  std::vector<AttributeId> order;
  std::vector<int> state(n, 0);  // 0 = unvisited, 1 = visiting, 2 = done
  for (AttributeId start = 0; start < n; ++start) {
    if (state[start] != 0) continue;
    std::vector<std::pair<AttributeId, size_t>> stack = {{start, 0}};
    while (!stack.empty()) {
      auto& [a, next_dep] = stack.back();
      if (state[a] == 2) {
        stack.pop_back();
        continue;
      }
      state[a] = 1;
      std::vector<AttributeId> deps;
      if (rule[a] != nullptr) deps = rule[a]->lhs.Members();
      if (next_dep < deps.size()) {
        const AttributeId d = deps[next_dep++];
        if (state[d] == 1) {
          return Status::InvalidArgument("cyclic FD derivation involving " +
                                         rule[a]->ToString());
        }
        if (state[d] == 0) stack.emplace_back(d, 0);
      } else {
        state[a] = 2;
        order.push_back(a);
        stack.pop_back();
      }
    }
  }

  Rng rng(config.seed);
  RelationBuilder builder(Schema::Default(n));
  std::vector<ValueCode> row(n);
  for (size_t t = 0; t < config.num_tuples; ++t) {
    for (AttributeId a : order) {
      if (rule[a] == nullptr) {
        row[a] = static_cast<ValueCode>(rng.Below(config.domain_size));
      } else {
        row[a] = DeriveValue(row, rule[a]->lhs, a, config.domain_size);
      }
    }
    DEPMINER_RETURN_NOT_OK(builder.AddCodedRow(row));
  }
  return std::move(builder).Finish();
}

}  // namespace depminer
