#pragma once

#include <string>

#include "catalog/fingerprint.h"
#include "common/mining_options.h"
#include "common/status.h"
#include "fd/fd_set.h"
#include "relation/schema.h"

namespace depminer {

/// Serve-mode minimal-cover cache: one finished-job checkpoint (DMK1,
/// phase kCover) per distinct (dataset content, algorithm, pruning
/// knobs) request shape, stored under the catalog directory. A repeated
/// MINE of an unchanged dataset reuses the stored cover through the same
/// load path a resumed checkpointed job uses — zero miner work, and the
/// same crash contract (checkpoints publish atomically, so a cache file
/// either exists completely or not at all).
///
/// The key is a fingerprint *of fingerprints*: the dataset's content
/// fingerprint (recorded in the catalog manifest at Put time) folded
/// with the algorithm name and every option that changes the cover.
/// Thread count is deliberately excluded — covers are bit-identical at
/// any thread count (the repo-wide determinism invariant), so requests
/// differing only in `threads=` share an entry.
class ResultCache {
 public:
  /// `directory` must exist (the server creates `<catalog>/cache`).
  explicit ResultCache(std::string directory)
      : directory_(std::move(directory)) {}

  /// Derives the cache key for one request shape.
  static Fingerprint KeyFor(const Fingerprint& dataset,
                            const std::string& algorithm,
                            const MiningOptions& mining);

  /// Loads the cover stored under `key`, verifying the checkpoint's
  /// recorded fingerprint against the key (a hand-renamed file never
  /// hits). Returns NotFound on miss; corruption also misses (the
  /// caller re-mines and overwrites).
  Result<FdSet> Lookup(const Fingerprint& key, Schema* schema) const;

  /// Stores a finished cover under `key` (atomic publication).
  Status Store(const Fingerprint& key, const Schema& schema, size_t tuples,
               const FdSet& fds) const;

  /// `<directory>/<key-hex>.cover.dmk`.
  std::string PathFor(const Fingerprint& key) const;

 private:
  std::string directory_;
};

}  // namespace depminer
