#include "server/protocol.h"

#include <cctype>
#include <cerrno>

#include <sys/socket.h>
#include <unistd.h>

#include "common/strings.h"

namespace depminer {

namespace {

Status WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface
    // as EPIPE here, not as a process-killing SIGPIPE in the daemon.
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("socket write failed (errno " +
                             std::to_string(errno) + ")");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. `*eof_at_start` distinguishes a clean
/// close before the first byte from a mid-read truncation. A receive
/// timeout (SO_RCVTIMEO) only surfaces when `allow_timeout` — between
/// frames it is the server's idle-poll tick; mid-frame it must retry, or
/// a slow sender would desync the stream.
Status ReadAll(int fd, char* data, size_t len, bool* eof_at_start,
               bool allow_timeout) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (allow_timeout && done == 0) {
          return Status::DeadlineExceeded("socket read timed out");
        }
        continue;
      }
      return Status::IoError("socket read failed (errno " +
                             std::to_string(errno) + ")");
    }
    if (n == 0) {
      if (eof_at_start != nullptr) *eof_at_start = (done == 0);
      return Status::IoError("peer closed mid-frame");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  const std::string header = std::to_string(payload.size()) + "\n";
  DEPMINER_RETURN_NOT_OK(WriteAll(fd, header.data(), header.size()));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<bool> RecvFrame(int fd, std::string* payload) {
  // Length line: decimal digits then '\n', read byte-wise (it is a
  // handful of bytes; the body read below is the bulk transfer).
  std::string digits;
  while (true) {
    char c = 0;
    bool eof_at_start = false;
    // The timeout may only surface before the frame's first byte —
    // after that the connection is mid-frame and must block on.
    const Status st = ReadAll(fd, &c, 1, &eof_at_start, digits.empty());
    if (!st.ok()) {
      if (eof_at_start && digits.empty()) return false;  // clean EOF
      return st;
    }
    if (c == '\n') break;
    if (c < '0' || c > '9' || digits.size() > 12) {
      return Status::IoError("malformed frame length");
    }
    digits += c;
  }
  if (digits.empty()) return Status::IoError("malformed frame length");
  uint64_t len = 0;
  if (!ParseUint64(digits, &len) || len > kMaxFramePayload) {
    return Status::IoError("frame payload length " + digits +
                           " exceeds limit");
  }
  payload->resize(len);
  if (len > 0) {
    DEPMINER_RETURN_NOT_OK(
        ReadAll(fd, payload->data(), len, nullptr, false));
  }
  return true;
}

Result<Request> ParseRequest(const std::string& payload) {
  Request request;
  const size_t nl = payload.find('\n');
  const std::string command_line =
      nl == std::string::npos ? payload : payload.substr(0, nl);
  if (nl != std::string::npos) request.body = payload.substr(nl + 1);
  bool first = true;
  for (const std::string& token : Split(command_line, ' ')) {
    if (token.empty()) continue;
    if (first) {
      request.verb = token;
      for (char& c : request.verb) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      first = false;
      continue;
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      request.positional.push_back(token);
    } else {
      request.params[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  if (request.verb.empty()) {
    return Status::InvalidArgument("empty request command line");
  }
  return request;
}

std::string FormatOk(const std::map<std::string, std::string>& params,
                     const std::string& body) {
  std::string out = "OK";
  for (const auto& [key, value] : params) {
    out += ' ';
    out += key;
    out += '=';
    out += value;
  }
  if (!body.empty()) {
    out += '\n';
    out += body;
  }
  return out;
}

std::string FormatError(const Status& status) {
  std::string out = "ERR ";
  out += StatusCodeToString(status.code());
  if (!status.message().empty()) {
    out += ' ';
    // The message must stay on the status line; fold any newlines.
    for (const char c : status.message()) out += c == '\n' ? ' ' : c;
  }
  return out;
}

Result<Response> ParseResponse(const std::string& payload) {
  Response response;
  const size_t nl = payload.find('\n');
  const std::string status_line =
      nl == std::string::npos ? payload : payload.substr(0, nl);
  if (nl != std::string::npos) response.body = payload.substr(nl + 1);
  if (status_line.rfind("OK", 0) == 0 &&
      (status_line.size() == 2 || status_line[2] == ' ')) {
    response.ok = true;
    for (const std::string& token :
         Split(status_line.size() > 3 ? status_line.substr(3) : "", ' ')) {
      const size_t eq = token.find('=');
      if (eq != std::string::npos) {
        response.params[token.substr(0, eq)] = token.substr(eq + 1);
      }
    }
    return response;
  }
  if (status_line.rfind("ERR ", 0) == 0) {
    response.ok = false;
    const std::string rest = status_line.substr(4);
    const size_t space = rest.find(' ');
    response.code = space == std::string::npos ? rest : rest.substr(0, space);
    if (space != std::string::npos) response.message = rest.substr(space + 1);
    return response;
  }
  return Status::IoError("malformed response status line: '" + status_line +
                         "'");
}

}  // namespace depminer
