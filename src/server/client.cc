#include "server/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace depminer {

Result<ServerClient> ServerClient::Connect(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: '" + socket_path +
                                   "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError("cannot create client socket");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot connect to '" + socket_path + "' (errno " +
                           std::to_string(err) + ")");
  }
  return ServerClient(fd);
}

ServerClient& ServerClient::operator=(ServerClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

ServerClient::~ServerClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Response> ServerClient::Call(const std::string& command_line,
                                    const std::string& body) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  std::string payload = command_line;
  if (!body.empty()) {
    payload += '\n';
    payload += body;
  }
  DEPMINER_RETURN_NOT_OK(SendFrame(fd_, payload));
  std::string response_payload;
  Result<bool> got = RecvFrame(fd_, &response_payload);
  if (!got.ok()) return got.status();
  if (!got.value()) {
    return Status::IoError("server closed the connection before replying");
  }
  return ParseResponse(response_payload);
}

}  // namespace depminer
