#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.h"
#include "common/parallel.h"
#include "common/run_context.h"
#include "common/strings.h"
#include "core/dep_miner.h"
#include "fastfds/fastfds.h"
#include "fd/ranking.h"
#include "fdep/fdep.h"
#include "partition/partition_database.h"
#include "relation/csv.h"
#include "report/profile.h"
#include "tane/tane.h"

namespace depminer {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           since)
          .count());
}

/// The poll/recv tick: how often idle paths recheck the shutdown latch.
constexpr int kTickMs = 100;

bool KnownAlgorithm(const std::string& algo) {
  return algo == "depminer" || algo == "depminer2" || algo == "tane" ||
         algo == "fastfds" || algo == "fdep";
}

std::string ParamOr(const Request& request, const char* key,
                    const std::string& fallback) {
  const auto it = request.params.find(key);
  return it == request.params.end() ? fallback : it->second;
}

/// Parses an optional non-negative integer param; false on malformed.
bool ParseUintParam(const Request& request, const char* key, uint64_t* out) {
  const auto it = request.params.find(key);
  if (it == request.params.end()) return true;
  return ParseUint64(it->second, out);
}

/// One mined cover plus how the run ended — the serve-side mirror of the
/// CLI's MineOutcome, driven by a per-request RunContext instead of the
/// process-global one.
struct ServedMine {
  FdSet fds;
  bool complete = true;
  Status run_status;
};

Result<ServedMine> MineForRequest(const Relation& relation,
                                  const std::string& algo, size_t threads,
                                  const MiningOptions& mining,
                                  RunContext* ctx, PartitionCache* cache) {
  ServedMine out;
  if (algo == "tane") {
    TaneOptions options;
    options.num_threads = threads;
    options.run_context = ctx;
    options.mining = mining;
    options.partition_cache = cache;
    Result<TaneResult> tane = TaneDiscover(relation, options);
    if (!tane.ok()) return tane.status();
    out.fds = std::move(tane.value().fds);
    out.complete = tane.value().complete;
    out.run_status = tane.value().run_status;
    return out;
  }
  if (algo == "fastfds") {
    FastFdsOptions options;
    options.run_context = ctx;
    options.mining = mining;
    Result<FastFdsResult> fast = FastFdsDiscover(relation, options);
    if (!fast.ok()) return fast.status();
    out.fds = std::move(fast.value().fds);
    out.complete = fast.value().complete;
    out.run_status = fast.value().run_status;
    return out;
  }
  if (algo == "fdep") {
    FdepOptions options;
    options.run_context = ctx;
    options.mining = mining;
    Result<FdepResult> fdep = FdepDiscover(relation, options);
    if (!fdep.ok()) return fdep.status();
    out.fds = std::move(fdep.value().fds);
    out.complete = fdep.value().complete;
    out.run_status = fdep.value().run_status;
    return out;
  }
  DepMinerOptions options;
  options.build_armstrong = false;
  options.num_threads = threads;
  options.run_context = ctx;
  options.mining = mining;
  options.agree_set_algorithm = algo == "depminer2"
                                    ? AgreeSetAlgorithm::kIdentifiers
                                    : AgreeSetAlgorithm::kCouples;
  Result<DepMinerResult> mined = MineDependencies(relation, options);
  if (!mined.ok()) return mined.status();
  out.fds = std::move(mined.value().fds);
  out.complete = mined.value().complete;
  out.run_status = mined.value().run_status;
  return out;
}

/// The cover exactly as `fdtool mine` prints it — one `fd.ToString`
/// line per FD, in FdSet order — so serve-mode covers are bit-identical
/// to one-shot CLI output.
std::string CoverBody(const FdSet& fds, const Schema& schema) {
  std::string body;
  for (const FunctionalDependency& fd : fds.fds()) {
    body += fd.ToString(schema);
    body += '\n';
  }
  return body;
}

}  // namespace

/// Request telemetry. Counters are lock-free; the per-verb latency
/// histograms share one mutex (touched once per request, never inside
/// mining).
struct Server::Metrics {
  Clock::time_point start = Clock::now();
  std::atomic<uint64_t> connections{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> cache_hit{0};
  std::atomic<uint64_t> cache_miss{0};

  std::mutex mu;
  std::map<std::string, TraceHistogram> latency_by_verb;  // guarded by mu

  void RecordRequest(const std::string& verb, uint64_t ns, bool ok) {
    requests.fetch_add(1, std::memory_order_relaxed);
    if (!ok) errors.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    latency_by_verb[verb].Record(ns);
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), metrics_(new Metrics) {}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

bool Server::ShutdownRequested() const {
  if (shutdown_.load(std::memory_order_acquire)) return true;
  return options_.shutdown_flag != nullptr &&
         options_.shutdown_flag->load(std::memory_order_acquire);
}

Status Server::Start() {
  Result<Catalog> catalog = Catalog::Open(options_.catalog_dir);
  if (!catalog.ok()) return catalog.status();
  catalog_.reset(new Catalog(std::move(catalog).value()));

  const std::string cache_dir = options_.catalog_dir + "/cache";
  if (::mkdir(cache_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create cache directory '" + cache_dir +
                           "'");
  }
  cache_.reset(new ResultCache(cache_dir));

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: '" +
                                   options_.socket_path + "'");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  // A stale socket file (previous daemon killed hard) would make bind
  // fail; the daemon owns its socket path, so clear it. Two daemons on
  // one path are a deployment error this cannot (and does not) detect.
  ::unlink(options_.socket_path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("cannot create server socket");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError("cannot bind '" + options_.socket_path +
                           "' (errno " + std::to_string(errno) + ")");
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IoError("cannot listen on '" + options_.socket_path + "'");
  }
  Log(LogLevel::kInfo, "server", "serving catalog",
      {LogStr("catalog", options_.catalog_dir),
       LogStr("socket", options_.socket_path),
       LogNum("datasets", static_cast<uint64_t>(catalog_->size())),
       LogNum("max_connections",
              static_cast<uint64_t>(options_.max_connections))});
  WriteMetricsIfConfigured();
  return Status::OK();
}

Status Server::Serve() {
  if (listen_fd_ < 0) {
    return Status::InvalidArgument("Serve() before Start()");
  }
  while (!ShutdownRequested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("poll on server socket failed");
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Status::IoError("accept failed (errno " + std::to_string(errno) +
                             ")");
    }
    // Admission control: a connection beyond the bound is told why and
    // turned away — a framed rejection the client can read, instead of
    // an invisible queue that grows until memory does not.
    if (inflight_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      metrics_->rejected.fetch_add(1, std::memory_order_relaxed);
      SendFrame(fd, FormatError(Status::ResourceExhausted(
                        "server at capacity (" +
                        std::to_string(options_.max_connections) +
                        " connections); retry later")));
      ::close(fd);
      WriteMetricsIfConfigured();
      continue;
    }
    metrics_->connections.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    PoolRunDetached([this, fd] {
      HandleConnection(fd);
      {
        std::lock_guard<std::mutex> lock(drain_mu_);
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
      }
      drain_cv_.notify_all();
    });
  }
  // Graceful drain: stop accepting (close + unlink so new connects fail
  // fast), let every in-flight connection finish its request, then
  // publish the final metrics.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  Log(LogLevel::kInfo, "server", "draining",
      {LogNum("inflight", static_cast<uint64_t>(
                              inflight_.load(std::memory_order_acquire)))});
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  WriteMetricsIfConfigured();
  Log(LogLevel::kInfo, "server", "drained",
      {LogNum("requests", metrics_->requests.load(std::memory_order_relaxed)),
       LogNum("cache_hits",
              metrics_->cache_hit.load(std::memory_order_relaxed))});
  return Status::OK();
}

void Server::HandleConnection(int fd) {
  // The receive timeout is the connection's shutdown-poll tick: an idle
  // keep-alive connection wakes up here, notices the drain, and closes
  // instead of pinning the daemon open.
  timeval tv{};
  tv.tv_usec = kTickMs * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  while (!ShutdownRequested()) {
    std::string payload;
    Result<bool> got = RecvFrame(fd, &payload);
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kDeadlineExceeded) continue;
      break;  // framing or socket error; nothing sane to answer
    }
    if (!got.value()) break;  // clean EOF
    const std::string response = Dispatch(payload);
    if (!SendFrame(fd, response).ok()) break;
    WriteMetricsIfConfigured();
  }
  ::close(fd);
}

std::string Server::Dispatch(const std::string& payload) {
  const Clock::time_point start = Clock::now();
  Result<Request> parsed = ParseRequest(payload);
  if (!parsed.ok()) {
    metrics_->RecordRequest("INVALID", ElapsedNs(start), false);
    return FormatError(parsed.status());
  }
  const Request& request = parsed.value();
  std::string response;
  if (request.verb == "PING") {
    response = FormatOk({}, "");
  } else if (request.verb == "LIST") {
    response = DoList();
  } else if (request.verb == "INFO") {
    response = DoInfo(request);
  } else if (request.verb == "PUT") {
    response = DoPut(request);
  } else if (request.verb == "DROP") {
    response = DoDrop(request);
  } else if (request.verb == "MINE") {
    response = DoMine(request);
  } else if (request.verb == "PROFILE") {
    response = DoProfile(request);
  } else if (request.verb == "STATS") {
    response = DoStats();
  } else {
    response = FormatError(
        Status::InvalidArgument("unknown command '" + request.verb + "'"));
  }
  const bool ok = response.rfind("OK", 0) == 0;
  metrics_->RecordRequest(request.verb, ElapsedNs(start), ok);
  Log(LogLevel::kDebug, "server", "request",
      {LogStr("verb", request.verb), LogBool("ok", ok)});
  return response;
}

std::string Server::DoList() {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  std::string body;
  const std::vector<std::string> names = catalog_->List();
  for (const std::string& name : names) {
    body += name;
    body += '\n';
  }
  return FormatOk({{"count", std::to_string(names.size())}}, body);
}

std::string Server::DoInfo(const Request& request) {
  if (request.positional.size() != 1) {
    return FormatError(Status::InvalidArgument("usage: INFO <name>"));
  }
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  Result<Catalog::DatasetInfo> info = catalog_->Info(request.positional[0]);
  if (!info.ok()) return FormatError(info.status());
  return FormatOk(
      {{"attributes", std::to_string(info.value().attributes)},
       {"tuples", std::to_string(info.value().tuples)},
       {"fingerprint", info.value().fingerprint.ToHex()}},
      "");
}

std::string Server::DoPut(const Request& request) {
  if (request.positional.size() != 1) {
    return FormatError(
        Status::InvalidArgument("usage: PUT <name> with a CSV body"));
  }
  const std::string& name = request.positional[0];
  CsvOptions csv;
  csv.has_header = ParamOr(request, "header", "1") != "0";
  const std::string delimiter = ParamOr(request, "delimiter", ",");
  if (!delimiter.empty()) csv.delimiter = delimiter[0];
  Result<Relation> relation = ParseCsvRelation(request.body, csv);
  if (!relation.ok()) return FormatError(relation.status());
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  const Status put = catalog_->Put(name, relation.value());
  if (!put.ok()) return FormatError(put);
  Result<Catalog::DatasetInfo> info = catalog_->Info(name);
  if (!info.ok()) return FormatError(info.status());
  return FormatOk(
      {{"attributes", std::to_string(info.value().attributes)},
       {"tuples", std::to_string(info.value().tuples)},
       {"fingerprint", info.value().fingerprint.ToHex()}},
      "");
}

std::string Server::DoDrop(const Request& request) {
  if (request.positional.size() != 1) {
    return FormatError(Status::InvalidArgument("usage: DROP <name>"));
  }
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  const Status dropped = catalog_->Drop(request.positional[0]);
  if (!dropped.ok()) return FormatError(dropped);
  return FormatOk({}, "");
}

std::string Server::DoMine(const Request& request) {
  if (request.positional.size() != 1) {
    return FormatError(Status::InvalidArgument(
        "usage: MINE <name> [algo=] [threads=] [arity=] [error=] [topk=] "
        "[timeout_ms=] [budget_mb=] [nocache=1]"));
  }
  const std::string& name = request.positional[0];
  const std::string algo = ParamOr(request, "algo", "depminer");
  if (!KnownAlgorithm(algo)) {
    return FormatError(Status::InvalidArgument(
        "unknown algo '" + algo +
        "' (depminer|depminer2|tane|fastfds|fdep)"));
  }
  MiningOptions mining;
  uint64_t arity = 0, topk = 0, timeout_ms = 0, budget_mb = 0;
  uint64_t threads = options_.num_threads;
  if (!ParseUintParam(request, "arity", &arity) ||
      !ParseUintParam(request, "topk", &topk) ||
      !ParseUintParam(request, "timeout_ms", &timeout_ms) ||
      !ParseUintParam(request, "budget_mb", &budget_mb) ||
      !ParseUintParam(request, "threads", &threads)) {
    return FormatError(
        Status::InvalidArgument("malformed integer parameter"));
  }
  mining.max_lhs_arity = arity;
  mining.top_k = topk;
  const auto error_it = request.params.find("error");
  if (error_it != request.params.end() &&
      !ParseDouble(error_it->second, &mining.max_g3_error)) {
    return FormatError(
        Status::InvalidArgument("malformed error parameter"));
  }
  const Status valid = mining.Validate();
  if (!valid.ok()) return FormatError(valid);
  // A request may use fewer lanes than the daemon's per-request default,
  // never more: one client cannot oversubscribe the pool for everyone.
  threads = std::clamp<uint64_t>(
      threads, 1, static_cast<uint64_t>(std::max<size_t>(
                      options_.num_threads, 1)));
  const bool nocache = ParamOr(request, "nocache", "0") == "1";

  Fingerprint dataset_fp;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    Result<Catalog::DatasetInfo> info = catalog_->Info(name);
    if (!info.ok()) return FormatError(info.status());
    dataset_fp = info.value().fingerprint;
  }
  // v1-manifest entries carry no fingerprint; without a content hash
  // there is no sound cache key, so those requests always mine.
  const bool cacheable = !nocache && !dataset_fp.IsZero();
  const Fingerprint key = ResultCache::KeyFor(dataset_fp, algo, mining);
  if (cacheable && mining.top_k == 0) {
    Schema schema;
    Result<FdSet> hit = cache_->Lookup(key, &schema);
    if (hit.ok()) {
      // Cache hit: the cover comes back through the finished-job
      // checkpoint path — the relation is never loaded, no miner runs.
      metrics_->cache_hit.fetch_add(1, std::memory_order_relaxed);
      return FormatOk({{"fds", std::to_string(hit.value().size())},
                       {"cached", "1"},
                       {"complete", "1"}},
                      CoverBody(hit.value(), schema));
    }
  }
  metrics_->cache_miss.fetch_add(1, std::memory_order_relaxed);

  std::optional<Relation> relation;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    Result<Relation> loaded = catalog_->Get(name);
    if (!loaded.ok()) return FormatError(loaded.status());
    relation.emplace(std::move(loaded).value());
  }

  RunContext ctx;
  if (timeout_ms > 0) {
    ctx.SetTimeout(std::chrono::milliseconds(timeout_ms));
  }
  if (budget_mb > 0) {
    ctx.SetMemoryBudget(static_cast<size_t>(budget_mb) * 1024 * 1024);
  }

  // Mirrors the CLI: TANE and top-k ranking share one partition cache.
  std::optional<StrippedPartitionDatabase> db;
  std::optional<PartitionCache> pcache;
  if (algo == "tane" || mining.top_k != 0) {
    db.emplace(StrippedPartitionDatabase::FromRelation(
        *relation, static_cast<size_t>(threads)));
    PartitionCache::Config config;
    config.run_context = &ctx;
    pcache.emplace(&*db, config);
  }
  Result<ServedMine> mined = MineForRequest(
      *relation, algo, static_cast<size_t>(threads), mining, &ctx,
      pcache.has_value() ? &*pcache : nullptr);
  if (!mined.ok()) return FormatError(mined.status());
  const ServedMine& outcome = mined.value();

  std::string body;
  if (mining.top_k != 0) {
    const RankingResult ranked =
        RankFds(outcome.fds, *db, mining.top_k,
                pcache.has_value() ? &*pcache : nullptr);
    for (const RankedFd& rf : ranked.ranked) {
      body += rf.fd.ToString(relation->schema());
      body += "  # redundancy=" + std::to_string(rf.redundancy);
      body += '\n';
    }
  } else {
    body = CoverBody(outcome.fds, relation->schema());
  }

  std::map<std::string, std::string> params = {
      {"fds", std::to_string(outcome.fds.size())},
      {"cached", "0"},
      {"complete", outcome.complete ? "1" : "0"}};
  if (!outcome.complete) {
    params["trip"] = StatusCodeToString(outcome.run_status.code());
  } else if (cacheable && mining.top_k == 0) {
    // Only complete, un-truncated covers are worth replaying; a partial
    // cover would poison every later request with silently-missing FDs.
    const Status stored = cache_->Store(key, relation->schema(),
                                        relation->num_tuples(), outcome.fds);
    if (!stored.ok()) {
      Log(LogLevel::kWarn, "server", "result-cache store failed",
          {LogStr("status", stored.ToString())});
    }
  }
  return FormatOk(params, body);
}

std::string Server::DoProfile(const Request& request) {
  if (request.positional.size() != 1) {
    return FormatError(
        Status::InvalidArgument("usage: PROFILE <name> [format=json|md]"));
  }
  const std::string format = ParamOr(request, "format", "json");
  if (format != "json" && format != "md") {
    return FormatError(
        Status::InvalidArgument("format must be json or md"));
  }
  std::optional<Relation> relation;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    Result<Relation> loaded = catalog_->Get(request.positional[0]);
    if (!loaded.ok()) return FormatError(loaded.status());
    relation.emplace(std::move(loaded).value());
  }
  Result<RelationProfile> profile =
      ProfileRelation(*relation, request.positional[0]);
  if (!profile.ok()) return FormatError(profile.status());
  const std::string body = format == "json"
                               ? ProfileToJson(profile.value())
                               : ProfileToMarkdown(profile.value());
  return FormatOk({{"format", format}}, body);
}

std::string Server::DoStats() {
  return FormatOk({}, TelemetryJson(Snapshot()));
}

TelemetrySnapshot Server::Snapshot() const {
  TelemetrySnapshot snapshot;
  snapshot.wall_seconds =
      std::chrono::duration<double>(Clock::now() - metrics_->start).count();
  snapshot.counters["server/connections"] =
      metrics_->connections.load(std::memory_order_relaxed);
  snapshot.counters["server/requests"] =
      metrics_->requests.load(std::memory_order_relaxed);
  snapshot.counters["server/errors"] =
      metrics_->errors.load(std::memory_order_relaxed);
  snapshot.counters["server/rejected"] =
      metrics_->rejected.load(std::memory_order_relaxed);
  snapshot.counters["server/cache_hit"] =
      metrics_->cache_hit.load(std::memory_order_relaxed);
  snapshot.counters["server/cache_miss"] =
      metrics_->cache_miss.load(std::memory_order_relaxed);
  snapshot.gauges["server/inflight"] =
      inflight_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(metrics_->mu);
    for (const auto& [verb, hist] : metrics_->latency_by_verb) {
      snapshot.histograms["request_latency_ns/" + verb] = hist;
    }
  }
  return snapshot;
}

void Server::WriteMetricsIfConfigured() {
  if (options_.metrics_path.empty()) return;
  const Status written =
      WriteMetricsFile(Snapshot(), options_.metrics_path);
  if (!written.ok()) {
    Log(LogLevel::kWarn, "server", "metrics write failed",
        {LogStr("status", written.ToString())});
  }
}

}  // namespace depminer
