#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/telemetry_export.h"
#include "common/trace.h"
#include "server/protocol.h"
#include "server/result_cache.h"

namespace depminer {

/// Configuration of one `fdtool serve` daemon.
struct ServerOptions {
  /// Catalog directory (must exist). Datasets live here; the result
  /// cache lives in its `cache/` subdirectory.
  std::string catalog_dir;
  /// Unix-domain socket path to listen on. Created on Start, unlinked
  /// when the accept loop stops.
  std::string socket_path;
  /// Admission bound: connections held concurrently. An accept beyond it
  /// is answered with a framed ResourceExhausted rejection and closed —
  /// backpressure the client can see, instead of an unbounded queue.
  size_t max_connections = 32;
  /// Default pool lanes per mining request (a request's `threads=` param
  /// overrides, capped at this value so one client cannot oversubscribe
  /// the daemon).
  size_t num_threads = 1;
  /// Optional metrics file (.prom or .json), rewritten atomically after
  /// every request — scrape-able while serving.
  std::string metrics_path;
  /// Optional external shutdown latch, polled by the accept loop each
  /// tick. `fdtool serve` points this at an atomic its SIGTERM/SIGINT
  /// handlers set (the only async-signal-safe handshake); tests drive
  /// drain through it directly.
  const std::atomic<bool>* shutdown_flag = nullptr;
};

/// The serve-mode daemon: a catalog, a result cache, a Unix socket, and
/// the shared worker pool. Each accepted connection becomes a detached
/// pool task that answers framed requests (PING, LIST, INFO, PUT, DROP,
/// MINE, PROFILE, STATS — grammar in docs/SERVING.md) until the peer
/// disconnects or the daemon drains.
///
/// Life cycle: construct → Start() (opens catalog, binds socket) →
/// Serve() (accept loop; returns after a graceful drain: stop accepting,
/// unlink the socket, wait for every in-flight connection to finish,
/// write final metrics). The catalog is guarded by a readers-writer lock
/// (PUT/DROP exclusive, MINE/PROFILE/reads shared); mining itself runs
/// outside the lock on a loaded copy.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens the catalog, creates the cache directory, binds and listens.
  Status Start();

  /// Runs the accept loop until a shutdown is requested, then drains.
  /// Returns the first error that prevented serving (socket failures),
  /// or OK after a clean drain.
  Status Serve();

  /// Requests a graceful drain from another thread (tests; the signal
  /// path goes through ServerOptions::shutdown_flag instead).
  void RequestShutdown() { shutdown_.store(true, std::memory_order_release); }

  /// Point-in-time copy of the server's request telemetry (`server/*`
  /// counters, per-verb request-latency histograms, uptime).
  TelemetrySnapshot Snapshot() const;

 private:
  struct Metrics;

  bool ShutdownRequested() const;
  void HandleConnection(int fd);
  /// Dispatches one parsed request; returns the response payload.
  std::string Dispatch(const std::string& payload);
  std::string DoPut(const Request& request);
  std::string DoDrop(const Request& request);
  std::string DoList();
  std::string DoInfo(const Request& request);
  std::string DoMine(const Request& request);
  std::string DoProfile(const Request& request);
  std::string DoStats();
  void WriteMetricsIfConfigured();

  ServerOptions options_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<ResultCache> cache_;
  int listen_fd_ = -1;
  std::atomic<bool> shutdown_{false};

  mutable std::shared_mutex catalog_mu_;

  /// In-flight connection count (admission + drain barrier).
  std::atomic<size_t> inflight_{0};
  std::mutex drain_mu_;
  std::condition_variable_any drain_cv_;

  std::unique_ptr<Metrics> metrics_;
};

}  // namespace depminer
