#include "server/result_cache.h"

#include <cstring>
#include <fstream>

#include "storage/checkpoint.h"

namespace depminer {

Fingerprint ResultCache::KeyFor(const Fingerprint& dataset,
                                const std::string& algorithm,
                                const MiningOptions& mining) {
  Fingerprinter hasher;
  hasher.UpdateString("result-cache-v1");
  hasher.UpdateU64(dataset.hi);
  hasher.UpdateU64(dataset.lo);
  hasher.UpdateString(algorithm);
  hasher.UpdateU64(mining.max_lhs_arity);
  // The g3 threshold participates bit-exactly (it changes which AFDs
  // qualify); NaN never reaches here (the CLI and server validate).
  uint64_t error_bits = 0;
  static_assert(sizeof(error_bits) == sizeof(mining.max_g3_error));
  std::memcpy(&error_bits, &mining.max_g3_error, sizeof(error_bits));
  hasher.UpdateU64(error_bits);
  hasher.UpdateU64(mining.top_k);
  hasher.UpdateU64(mining.force_error_validation ? 1 : 0);
  return hasher.Finish();
}

std::string ResultCache::PathFor(const Fingerprint& key) const {
  return directory_ + "/" + key.ToHex() + ".cover.dmk";
}

Result<FdSet> ResultCache::Lookup(const Fingerprint& key,
                                  Schema* schema) const {
  const std::string path = PathFor(key);
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Status::NotFound("no cached cover for " + key.ToHex());
  }
  Result<JobCheckpoint> loaded = JobCheckpoint::Load(path);
  if (!loaded.ok()) {
    // Corrupt cache entries are misses, never failures: the caller
    // re-mines and the Store overwrite heals the entry.
    return Status::NotFound("cached cover for " + key.ToHex() +
                            " unreadable: " + loaded.status().message());
  }
  const JobCheckpoint& job = loaded.value();
  if (job.phase != MinePhase::kCover || job.fingerprint != key) {
    return Status::NotFound("cached cover for " + key.ToHex() +
                            " is stale or mis-keyed");
  }
  if (schema != nullptr) *schema = job.schema;
  return job.fds;
}

Status ResultCache::Store(const Fingerprint& key, const Schema& schema,
                          size_t tuples, const FdSet& fds) const {
  JobCheckpoint job;
  job.fingerprint = key;
  job.phase = MinePhase::kCover;
  job.schema = schema;
  job.num_tuples = tuples;
  job.fds = fds;
  return job.Save(PathFor(key));
}

}  // namespace depminer
