#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace depminer {

/// The serve-mode wire protocol (full grammar in docs/SERVING.md).
///
/// Both directions speak *frames*: a decimal payload length terminated
/// by '\n', then exactly that many payload bytes. Length-prefixing keeps
/// the framing layer trivial to parse incrementally and makes oversized
/// payloads rejectable before a single body byte is buffered.
///
/// A request payload is one command line — a verb plus positional and
/// `key=value` tokens, space-separated — optionally followed by '\n' and
/// a body (the CSV of a PUT). A response payload's first line is either
/// `OK key=value ...` or `ERR <CODE> <message>`, optionally followed by
/// '\n' and a body (the FD cover of a MINE, the rendering of a PROFILE).

/// Hard cap on a frame payload (request or response). A PUT of the
/// paper-scale corpus fits comfortably; anything larger is a client bug
/// or an attack, and is rejected before buffering.
inline constexpr size_t kMaxFramePayload = 256ull << 20;

/// Writes one frame. Retries short writes and EINTR; any other syscall
/// failure is an IoError.
Status SendFrame(int fd, const std::string& payload);

/// Reads one frame into `*payload`. Returns false on clean EOF at a
/// frame boundary (the peer closed an idle connection — not an error);
/// true on a complete frame. Mid-frame EOF, a malformed length line, a
/// payload above kMaxFramePayload, and syscall failures are errors. A
/// receive timeout configured on the socket surfaces as DeadlineExceeded
/// (the server's idle-poll tick; see server.cc).
Result<bool> RecvFrame(int fd, std::string* payload);

/// A parsed request payload.
struct Request {
  std::string verb;  ///< upper-cased command verb
  std::vector<std::string> positional;
  std::map<std::string, std::string> params;  ///< `key=value` tokens
  std::string body;  ///< bytes after the command line's '\n', verbatim
};

/// Splits a request payload into verb / positional / params / body.
/// Tokens containing '=' are params; the verb is case-insensitive.
Result<Request> ParseRequest(const std::string& payload);

/// A parsed response payload.
struct Response {
  bool ok = false;
  std::string code;  ///< ERR code (a StatusCode name), empty when ok
  std::string message;  ///< ERR human message, empty when ok
  std::map<std::string, std::string> params;  ///< OK `key=value` tokens
  std::string body;
};

/// Renders `OK k=v ...\n<body>`. Param order follows the map (sorted),
/// so responses are byte-stable for tests.
std::string FormatOk(const std::map<std::string, std::string>& params,
                     const std::string& body);

/// Renders `ERR <CODE> <message>` from a non-OK status (code name is the
/// StatusCode string, e.g. "ResourceExhausted").
std::string FormatError(const Status& status);

/// Parses a response payload (the client side of Format*).
Result<Response> ParseResponse(const std::string& payload);

}  // namespace depminer
