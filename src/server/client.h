#pragma once

#include <string>

#include "common/status.h"
#include "server/protocol.h"

namespace depminer {

/// Blocking client for one serve-mode connection. Move-only; the socket
/// closes with the object. `fdtool client` and the server tests speak
/// the protocol exclusively through this class, so the wire grammar has
/// one reader and one writer in the tree.
class ServerClient {
 public:
  /// Connects to a daemon's Unix socket.
  static Result<ServerClient> Connect(const std::string& socket_path);

  ServerClient(ServerClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  ServerClient& operator=(ServerClient&& other) noexcept;
  ServerClient(const ServerClient&) = delete;
  ServerClient& operator=(const ServerClient&) = delete;
  ~ServerClient();

  /// One round trip: sends `command_line` (+ optional body) as a frame,
  /// receives and parses the response frame. An ERR response is a
  /// *successful* call — inspect `Response::ok`; the error status here
  /// means the transport itself failed (daemon gone, frame garbled).
  Result<Response> Call(const std::string& command_line,
                        const std::string& body = std::string());

 private:
  explicit ServerClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace depminer
