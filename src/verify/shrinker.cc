#include "verify/shrinker.h"

#include <numeric>
#include <vector>

#include "relation/relation_ops.h"

namespace depminer {

namespace {

/// Sub-relation of `r` keeping exactly the rows whose indices are in
/// `rows` (increasing) — a thin wrapper so the shrink loops read clearly.
Result<Relation> KeepRows(const Relation& r,
                          const std::vector<TupleId>& rows) {
  return SelectRows(r, rows);
}

}  // namespace

Result<ShrinkOutcome> ShrinkFailingRelation(const Relation& relation,
                                            const FailurePredicate& fails,
                                            const ShrinkOptions& options) {
  ShrinkOutcome out;
  out.probes = 1;
  if (!fails(relation)) {
    return Status::InvalidArgument(
        "shrink input does not exhibit the failure");
  }
  out.relation = relation;

  const auto budget_left = [&] { return out.probes < options.max_probes; };

  // Pass 1: rows, greedily to a fixpoint. Dropping one row can make
  // another droppable (agree sets are pairwise), so loop until a full
  // sweep removes nothing.
  bool changed = true;
  while (changed && budget_left()) {
    changed = false;
    for (size_t i = 0; i < out.relation.num_tuples() && budget_left();
         ++i) {
      std::vector<TupleId> keep;
      keep.reserve(out.relation.num_tuples() - 1);
      for (TupleId t = 0; t < out.relation.num_tuples(); ++t) {
        if (t != i) keep.push_back(t);
      }
      Result<Relation> candidate = KeepRows(out.relation, keep);
      if (!candidate.ok()) continue;
      ++out.probes;
      if (fails(candidate.value())) {
        out.relation = std::move(candidate).value();
        ++out.rows_removed;
        changed = true;
        --i;  // the next original row slid into this index
      }
    }
  }

  // Pass 2: columns, keeping at least one. One sweep suffices in
  // practice, but loop to a fixpoint for 1-minimality like the row pass.
  changed = true;
  while (changed && budget_left()) {
    changed = false;
    for (AttributeId a = 0;
         a < out.relation.num_attributes() && budget_left(); ++a) {
      if (out.relation.num_attributes() <= 1) break;
      AttributeSet keep =
          AttributeSet::Universe(out.relation.num_attributes());
      keep.Remove(a);
      Result<Relation> candidate = ProjectRelation(out.relation, keep);
      if (!candidate.ok()) continue;
      ++out.probes;
      if (fails(candidate.value())) {
        out.relation = std::move(candidate).value();
        ++out.columns_removed;
        changed = true;
        --a;
      }
    }
  }

  return out;
}

}  // namespace depminer
