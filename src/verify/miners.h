#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/mining_options.h"
#include "common/run_context.h"
#include "common/status.h"
#include "fd/fd_set.h"
#include "relation/relation.h"

namespace depminer {

/// Normalized outcome of one miner invocation: either an error from the
/// call itself, or a (possibly governance-degraded) FD cover. The common
/// currency of the differential oracle and the fault sweep.
struct MinerOutcome {
  FdSet fds;
  bool complete = true;
  Status run_status;  ///< trip cause when !complete
  Status error;       ///< non-OK when the invocation itself failed
};

using MinerFn =
    std::function<MinerOutcome(const Relation&, size_t, RunContext*)>;
using MinerOptFn = std::function<MinerOutcome(
    const Relation&, size_t, RunContext*, const MiningOptions&)>;

struct MinerConfig {
  std::string name;
  bool threaded;  ///< accepts pool lanes; serial miners run once
  MinerFn run;
  /// Same miner with pruning knobs threaded through (arity caps for all
  /// miners; `force_error_validation` exercises TANE's g₃ path at ε = 0
  /// and is ignored by the others). The oracle's pruning cross-checks
  /// drive the miners through this entry point.
  MinerOptFn run_with;
};

/// The five miners under test, adapted to one calling convention:
/// depminer (Algorithm 2 agree sets), depminer2 (Algorithm 3), tane,
/// fastfds, fdep.
std::vector<MinerConfig> AllMiners();

/// "depminer/4t" for threaded miners, the bare name for serial ones.
std::string MinerLabel(const MinerConfig& miner, size_t threads);

}  // namespace depminer
