#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace depminer {

/// Options of the fault sweep (`fdtool fuzz --faults`): seeds × injection
/// sites × miners, asserting that every injected fault yields a
/// well-formed error or a sound partial result — never a crash, never a
/// corrupt cover.
struct FaultSweepOptions {
  uint64_t start_seed = 1;
  /// Generated cases to sweep (each case visits every site × miner).
  size_t iterations = 20;
  /// Sites to inject; empty = every registry site except `job/stall`
  /// (whose semantics — pausing the checkpoint driver — are exercised by
  /// the checkpoint tests and the kill-and-resume smoke instead).
  std::vector<std::string> sites;
  /// Pool lanes for the threaded miners.
  size_t num_threads = 1;
  /// Directory for the temporary CSV the ingestion sites (io/*,
  /// alloc/streaming) are driven through. Empty skips those sites.
  std::string scratch_dir = "/tmp";
  /// Progress line (structured logger, subsystem "faultsweep", level
  /// info) every this many seeds (0 = silent).
  size_t log_every = 0;
};

/// One violated expectation.
struct FaultFinding {
  uint64_t seed = 0;
  std::string site;
  std::string miner;  ///< miner label, or "ingest" for extraction sites
  std::string detail;
};

struct FaultSweepReport {
  size_t cases_run = 0;
  /// Individual governed runs (miner × site and ingestion × site).
  size_t runs = 0;
  /// Faults that actually fired across all runs. A sweep that fires
  /// nothing proves nothing; the smoke scripts assert this is > 0.
  size_t faults_fired = 0;
  std::vector<FaultFinding> findings;

  bool ok() const { return findings.empty(); }
  std::string ToString() const;
};

/// Runs the sweep. Deterministic: the same options exercise the same
/// (relation, site, trigger) triples. Expectations per run:
///   - the fault never fired, or the site only stalls → the run must
///     complete with a cover equivalent to the unfaulted baseline;
///   - an error fault fired → the run must either fail with the site's
///     status code, degrade to `complete == false` with that code and
///     only sound FDs, or — when the fault landed after the last
///     check — still complete with the baseline-equivalent cover.
/// Returns non-OK only for sweep-level errors (e.g. an unwritable
/// scratch directory); expectation violations land in the report.
/// Progress is emitted through the structured logger (subsystem
/// "faultsweep") — redirect with `SetLogSink` to capture it.
Result<FaultSweepReport> RunFaultSweep(const FaultSweepOptions& options);

}  // namespace depminer
