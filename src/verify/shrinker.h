#pragma once

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// True when the relation still exhibits the failure being minimized
/// (e.g. "the differential oracle still reports a divergence").
using FailurePredicate = std::function<bool(const Relation&)>;

/// Outcome of `ShrinkFailingRelation`.
struct ShrinkOutcome {
  Relation relation;          ///< smallest failing relation found
  size_t rows_removed = 0;
  size_t columns_removed = 0;
  size_t probes = 0;          ///< predicate evaluations spent
};

/// Options for `ShrinkFailingRelation`.
struct ShrinkOptions {
  /// Upper bound on predicate evaluations. Each probe re-runs the full
  /// failure check (typically the whole differential oracle), so this is
  /// the shrinker's real cost knob. Greedy descent stops early when the
  /// budget runs out; the best relation found so far is returned.
  size_t max_probes = 400;
};

/// Greedy delta-debugging minimizer: repeatedly drops rows (to a
/// fixpoint), then columns (keeping at least one), keeping a candidate
/// only when `fails` still returns true. The input must itself satisfy
/// `fails`; returns InvalidArgument otherwise. The result is 1-minimal
/// within the probe budget: no single further row or column removal
/// (among those probed) preserves the failure.
Result<ShrinkOutcome> ShrinkFailingRelation(const Relation& relation,
                                            const FailurePredicate& fails,
                                            const ShrinkOptions& options = {});

}  // namespace depminer
