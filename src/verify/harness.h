#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"
#include "verify/oracle.h"

namespace depminer {

/// Options of the fuzzing harness (`fdtool fuzz`).
struct FuzzOptions {
  uint64_t start_seed = 1;
  size_t iterations = 100;
  /// Minimize failing relations with `ShrinkFailingRelation` before
  /// writing the repro.
  bool shrink = true;
  /// Directory for repro artifacts (created on demand). For every failing
  /// seed S two files are written: `seed-S.csv` (the failing — shrunken,
  /// when enabled — relation) and `seed-S.txt` (seed, shape label and the
  /// oracle report). Empty disables artifact writing.
  std::string repro_dir = "fuzz-repros";
  /// Oracle configuration applied to every generated case.
  OracleOptions oracle;
  /// Progress line (structured logger, subsystem "fuzz", level info)
  /// every this many seeds (0 = silent).
  size_t log_every = 50;
};

/// One failing seed.
struct FuzzFailure {
  uint64_t seed = 0;
  std::string label;        ///< generator shape family
  OracleReport report;      ///< divergences of the *original* relation
  Relation relation;        ///< shrunken (or original) failing relation
  std::string repro_path;   ///< CSV path, empty when writing is disabled
};

/// Aggregate outcome of a fuzz run.
struct FuzzResult {
  size_t cases_run = 0;
  size_t miner_runs = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// Runs the differential oracle over `options.iterations` consecutive
/// seeds starting at `options.start_seed`. Deterministic: the same
/// options always exercise the same relations. Failures are shrunk and
/// written to the repro directory as they are found; the run continues
/// past failures so one invocation reports every bad seed in range.
/// Returns non-OK only for harness-level errors (e.g. an unwritable
/// repro directory); divergences are reported in the value. Progress
/// and failure detail are emitted through the structured logger
/// (subsystem "fuzz") — redirect with `SetLogSink` to capture them.
Result<FuzzResult> RunFuzzHarness(const FuzzOptions& options);

}  // namespace depminer
