#include "verify/fault_sweep.h"

#include <chrono>
#include <cstdio>

#include <unistd.h>

#include "common/log.h"
#include "common/progress.h"
#include "common/run_context.h"
#include "fault/fault.h"
#include "fd/satisfaction.h"
#include "relation/csv.h"
#include "storage/streaming.h"
#include "verify/generator.h"
#include "verify/miners.h"

namespace depminer {

namespace {

StatusCode ExpectedCode(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAlloc:
      return StatusCode::kCapacityExceeded;
    case FaultKind::kDeadline:
      return StatusCode::kDeadlineExceeded;
    case FaultKind::kIoError:
    case FaultKind::kShortRead:
    case FaultKind::kEintr:
      return StatusCode::kIoError;
    case FaultKind::kStall:
      return StatusCode::kOk;
  }
  return StatusCode::kOk;
}

/// Sites injected at the ingestion boundary (driven through a temp CSV
/// and `ExtractFromCsv`) rather than inside a miner.
bool IsIngestSite(const FaultSite& site) {
  const std::string name = site.name;
  return name.rfind("io/", 0) == 0 || name == "alloc/streaming";
}

void Find(FaultSweepReport* report, uint64_t seed, const std::string& site,
          std::string miner, std::string detail) {
  report->findings.push_back({seed, site, std::move(miner),
                              std::move(detail)});
}

/// Checks one faulted miner run against the sweep's contract (see the
/// header). `base` is the same miner's unfaulted cover.
void CheckMinerRun(const Relation& relation, const FaultSite& site,
                   uint64_t fires, const MinerOutcome& out,
                   const MinerOutcome& base, uint64_t seed,
                   const std::string& label, FaultSweepReport* report) {
  const bool must_be_clean = fires == 0 || site.kind == FaultKind::kStall;
  if (must_be_clean) {
    if (!out.error.ok()) {
      Find(report, seed, site.name, label,
           "run failed although no error fault fired: " +
               out.error.ToString());
    } else if (!out.complete) {
      Find(report, seed, site.name, label,
           "run degraded although no error fault fired: " +
               out.run_status.ToString());
    } else if (!out.fds.EquivalentTo(base.fds)) {
      Find(report, seed, site.name, label,
           "cover diverged from the unfaulted baseline");
    }
    return;
  }

  const StatusCode expected = ExpectedCode(site.kind);
  if (!out.error.ok()) {
    if (out.error.code() != expected) {
      Find(report, seed, site.name, label,
           std::string("injected ") + site.name +
               " surfaced with the wrong code: " + out.error.ToString());
    }
    return;
  }
  if (out.complete) {
    // The fault landed after the run's last check (e.g. on the final
    // TANE level): completing is fine, but only with the right answer.
    if (!out.fds.EquivalentTo(base.fds)) {
      Find(report, seed, site.name, label,
           "completed under a fired fault with a diverged cover");
    }
    return;
  }
  if (out.run_status.code() != expected) {
    Find(report, seed, site.name, label,
         std::string("degraded run carries the wrong status: ") +
             out.run_status.ToString());
  }
  // The core soundness clause: a partial cover must never invent
  // dependencies.
  for (const FunctionalDependency& fd : out.fds.fds()) {
    if (!Holds(relation, fd)) {
      Find(report, seed, site.name, label,
           "partial result emits an FD that does not hold: " +
               fd.ToString(relation.schema()));
    }
  }
}

bool SameExtract(const StreamingExtract& a, const StreamingExtract& b) {
  if (a.num_tuples != b.num_tuples) return false;
  if (a.schema.num_attributes() != b.schema.num_attributes()) return false;
  for (size_t i = 0; i < a.schema.num_attributes(); ++i) {
    const AttributeId id = static_cast<AttributeId>(i);
    if (a.schema.name(id) != b.schema.name(id)) return false;
    if (!(a.partitions.partition(id) == b.partitions.partition(id))) {
      return false;
    }
  }
  return a.distinct_counts == b.distinct_counts;
}

}  // namespace

std::string FaultSweepReport::ToString() const {
  std::string out = std::to_string(cases_run) + " cases, " +
                    std::to_string(runs) + " governed runs, " +
                    std::to_string(faults_fired) + " with a fired fault";
  if (findings.empty()) return out + ", all expectations held";
  out += ", " + std::to_string(findings.size()) + " finding(s):";
  for (const FaultFinding& f : findings) {
    out += "\n  seed " + std::to_string(f.seed) + " [" + f.site + " @ " +
           f.miner + "]: " + f.detail;
  }
  return out;
}

Result<FaultSweepReport> RunFaultSweep(const FaultSweepOptions& options) {
  FaultSweepReport report;
  DEPMINER_PROGRESS_PHASE("faultsweep", "seeds", options.iterations);

  std::vector<const FaultSite*> sites;
  if (options.sites.empty()) {
    for (const FaultSite& s : FaultSiteRegistry()) {
      if (std::string(s.name) != "job/stall") sites.push_back(&s);
    }
  } else {
    for (const std::string& name : options.sites) {
      const FaultSite* s = FindFaultSite(name);
      if (s == nullptr) {
        return Status::InvalidArgument("unknown fault site '" + name + "'");
      }
      sites.push_back(s);
    }
  }

  const std::vector<MinerConfig> miners = AllMiners();

  for (size_t i = 0; i < options.iterations; ++i) {
    const uint64_t seed = options.start_seed + i;
    Result<GeneratedCase> generated = GenerateAdversarialCase(seed);
    if (!generated.ok()) {
      Find(&report, seed, "", "generator", generated.status().ToString());
      continue;
    }
    const Relation& relation = generated.value().relation;
    ++report.cases_run;

    // Unfaulted, ungoverned baselines. A miner whose baseline fails is
    // the differential oracle's problem, not the sweep's — skip it here.
    std::vector<MinerOutcome> baselines;
    baselines.reserve(miners.size());
    for (const MinerConfig& miner : miners) {
      const size_t t = miner.threaded ? options.num_threads : 1;
      baselines.push_back(miner.run(relation, t, nullptr));
    }

    for (const FaultSite* site : sites) {
      if (IsIngestSite(*site)) continue;  // handled below
      for (size_t m = 0; m < miners.size(); ++m) {
        const MinerConfig& miner = miners[m];
        const MinerOutcome& base = baselines[m];
        if (!base.error.ok() || !base.complete) continue;
        const size_t t = miner.threaded ? options.num_threads : 1;
        const std::string label = MinerLabel(miner, t);

        FaultPlan plan;
        plan.site = site->name;
        plan.trigger_hit = seed % 3;
        plan.stall_ms = 1;
        RunContext ctx;
        // Arm a far-away deadline so the context is `limited()` — the
        // configuration a governed production run has, and the one in
        // which the deadline/jitter site is reachable.
        ctx.SetTimeout(std::chrono::hours(1));

        uint64_t fires = 0;
        MinerOutcome out;
        {
          FaultScope scope(plan);
          out = miner.run(relation, t, &ctx);
          fires = scope.fires();
        }
        ++report.runs;
        if (fires > 0) ++report.faults_fired;
        CheckMinerRun(relation, *site, fires, out, base, seed, label,
                      &report);
      }
    }

    // Ingestion sites, driven through a temp CSV.
    if (!options.scratch_dir.empty() && relation.num_attributes() > 0) {
      const std::string csv_path =
          options.scratch_dir + "/fault-sweep-" +
          std::to_string(static_cast<long>(::getpid())) + "-" +
          std::to_string(seed) + ".csv";
      Status written = WriteCsvRelation(relation, csv_path);
      if (!written.ok()) return written;

      StreamingOptions sopt;
      sopt.value_sample_size = 0;
      Result<StreamingExtract> base_extract = ExtractFromCsv(csv_path, sopt);

      for (const FaultSite* site : sites) {
        if (!IsIngestSite(*site)) continue;
        if (!base_extract.ok()) continue;

        FaultPlan plan;
        plan.site = site->name;
        plan.trigger_hit = 0;  // small files see only a handful of reads
        plan.repeat = (seed % 2) != 0;
        RunContext ctx;
        ctx.SetTimeout(std::chrono::hours(1));
        StreamingOptions governed = sopt;
        governed.run_context = &ctx;

        uint64_t fires = 0;
        Result<StreamingExtract> extract = Status::NotFound("unset");
        {
          FaultScope scope(plan);
          extract = ExtractFromCsv(csv_path, governed);
          fires = scope.fires();
        }
        ++report.runs;
        if (fires > 0) ++report.faults_fired;

        // A transiently-faulted read must be retried into a byte-exact
        // extraction; only a *persistent* error (repeat plan, or the
        // bounded EINTR budget exhausted) or an allocation failure may
        // surface — and then as the right code, never as silent
        // truncation.
        const bool must_succeed =
            fires == 0 || site->kind == FaultKind::kShortRead ||
            (!plan.repeat && (site->kind == FaultKind::kIoError ||
                              site->kind == FaultKind::kEintr));
        if (must_succeed) {
          if (!extract.ok()) {
            Find(&report, seed, site->name, "ingest",
                 "recoverable read fault surfaced as an error: " +
                     extract.status().ToString());
          } else if (!SameExtract(extract.value(), base_extract.value())) {
            Find(&report, seed, site->name, "ingest",
                 "extraction diverged after a recoverable read fault");
          }
        } else if (extract.ok()) {
          if (!SameExtract(extract.value(), base_extract.value())) {
            Find(&report, seed, site->name, "ingest",
                 "extraction diverged under a persistent fault");
          }
        } else if (extract.status().code() != ExpectedCode(site->kind)) {
          Find(&report, seed, site->name, "ingest",
               "persistent fault surfaced with the wrong code: " +
                   extract.status().ToString());
        }
      }
      std::remove(csv_path.c_str());
    }

    DEPMINER_PROGRESS_TICK(1);
    if (options.log_every != 0 && (i + 1) % options.log_every == 0) {
      Log(LogLevel::kInfo, "faultsweep",
          "fault-sweep: " + std::to_string(i + 1) + "/" +
              std::to_string(options.iterations) + " seeds, " +
              std::to_string(report.runs) + " runs, " +
              std::to_string(report.faults_fired) + " fired, " +
              std::to_string(report.findings.size()) + " findings",
          {LogNum("seeds", static_cast<uint64_t>(i + 1)),
           LogNum("of", static_cast<uint64_t>(options.iterations)),
           LogNum("runs", static_cast<uint64_t>(report.runs)),
           LogNum("fired", static_cast<uint64_t>(report.faults_fired)),
           LogNum("findings",
                  static_cast<uint64_t>(report.findings.size()))});
    }
  }
  return report;
}

}  // namespace depminer
