#include "verify/miners.h"

#include "core/dep_miner.h"
#include "fastfds/fastfds.h"
#include "fdep/fdep.h"
#include "tane/tane.h"

namespace depminer {

namespace {

MinerOutcome RunDepMiner(const Relation& r, AgreeSetAlgorithm algorithm,
                         size_t threads, RunContext* ctx) {
  DepMinerOptions options;
  options.agree_set_algorithm = algorithm;
  options.build_armstrong = false;
  options.num_threads = threads;
  options.run_context = ctx;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  MinerOutcome out;
  if (!mined.ok()) {
    out.error = mined.status();
    return out;
  }
  out.fds = std::move(mined.value().fds);
  out.complete = mined.value().complete;
  out.run_status = mined.value().run_status;
  return out;
}

}  // namespace

std::vector<MinerConfig> AllMiners() {
  return {
      {"depminer", true,
       [](const Relation& r, size_t t, RunContext* ctx) {
         return RunDepMiner(r, AgreeSetAlgorithm::kCouples, t, ctx);
       }},
      {"depminer2", true,
       [](const Relation& r, size_t t, RunContext* ctx) {
         return RunDepMiner(r, AgreeSetAlgorithm::kIdentifiers, t, ctx);
       }},
      {"tane", true,
       [](const Relation& r, size_t t, RunContext* ctx) {
         TaneOptions options;
         options.num_threads = t;
         options.run_context = ctx;
         Result<TaneResult> mined = TaneDiscover(r, options);
         MinerOutcome out;
         if (!mined.ok()) {
           out.error = mined.status();
           return out;
         }
         out.fds = std::move(mined.value().fds);
         out.complete = mined.value().complete;
         out.run_status = mined.value().run_status;
         return out;
       }},
      {"fastfds", false,
       [](const Relation& r, size_t, RunContext* ctx) {
         Result<FastFdsResult> mined = FastFdsDiscover(r, ctx);
         MinerOutcome out;
         if (!mined.ok()) {
           out.error = mined.status();
           return out;
         }
         out.fds = std::move(mined.value().fds);
         out.complete = mined.value().complete;
         out.run_status = mined.value().run_status;
         return out;
       }},
      {"fdep", false,
       [](const Relation& r, size_t, RunContext* ctx) {
         Result<FdepResult> mined = FdepDiscover(r, ctx);
         MinerOutcome out;
         if (!mined.ok()) {
           out.error = mined.status();
           return out;
         }
         out.fds = std::move(mined.value().fds);
         out.complete = mined.value().complete;
         out.run_status = mined.value().run_status;
         return out;
       }},
  };
}

std::string MinerLabel(const MinerConfig& miner, size_t threads) {
  if (!miner.threaded) return miner.name;
  return miner.name + "/" + std::to_string(threads) + "t";
}

}  // namespace depminer
