#include "verify/miners.h"

#include "core/dep_miner.h"
#include "fastfds/fastfds.h"
#include "fdep/fdep.h"
#include "tane/tane.h"

namespace depminer {

namespace {

MinerOutcome RunDepMiner(const Relation& r, AgreeSetAlgorithm algorithm,
                         size_t threads, RunContext* ctx,
                         const MiningOptions& mining) {
  DepMinerOptions options;
  options.agree_set_algorithm = algorithm;
  options.build_armstrong = false;
  options.num_threads = threads;
  options.run_context = ctx;
  options.mining = mining;
  options.mining.max_g3_error = 0.0;  // TANE-only; Dep-Miner rejects it
  options.mining.force_error_validation = false;
  Result<DepMinerResult> mined = MineDependencies(r, options);
  MinerOutcome out;
  if (!mined.ok()) {
    out.error = mined.status();
    return out;
  }
  out.fds = std::move(mined.value().fds);
  out.complete = mined.value().complete;
  out.run_status = mined.value().run_status;
  return out;
}

MinerOutcome RunTane(const Relation& r, size_t threads, RunContext* ctx,
                     const MiningOptions& mining) {
  TaneOptions options;
  options.num_threads = threads;
  options.run_context = ctx;
  options.mining = mining;
  Result<TaneResult> mined = TaneDiscover(r, options);
  MinerOutcome out;
  if (!mined.ok()) {
    out.error = mined.status();
    return out;
  }
  out.fds = std::move(mined.value().fds);
  out.complete = mined.value().complete;
  out.run_status = mined.value().run_status;
  return out;
}

MinerOutcome RunFastFds(const Relation& r, RunContext* ctx,
                        const MiningOptions& mining) {
  FastFdsOptions options;
  options.run_context = ctx;
  options.mining = mining;
  options.mining.max_g3_error = 0.0;  // TANE-only
  options.mining.force_error_validation = false;
  Result<FastFdsResult> mined = FastFdsDiscover(r, options);
  MinerOutcome out;
  if (!mined.ok()) {
    out.error = mined.status();
    return out;
  }
  out.fds = std::move(mined.value().fds);
  out.complete = mined.value().complete;
  out.run_status = mined.value().run_status;
  return out;
}

MinerOutcome RunFdep(const Relation& r, RunContext* ctx,
                     const MiningOptions& mining) {
  FdepOptions options;
  options.run_context = ctx;
  options.mining = mining;
  options.mining.max_g3_error = 0.0;  // TANE-only
  options.mining.force_error_validation = false;
  Result<FdepResult> mined = FdepDiscover(r, options);
  MinerOutcome out;
  if (!mined.ok()) {
    out.error = mined.status();
    return out;
  }
  out.fds = std::move(mined.value().fds);
  out.complete = mined.value().complete;
  out.run_status = mined.value().run_status;
  return out;
}

}  // namespace

std::vector<MinerConfig> AllMiners() {
  return {
      {"depminer", true,
       [](const Relation& r, size_t t, RunContext* ctx) {
         return RunDepMiner(r, AgreeSetAlgorithm::kCouples, t, ctx, {});
       },
       [](const Relation& r, size_t t, RunContext* ctx,
          const MiningOptions& m) {
         return RunDepMiner(r, AgreeSetAlgorithm::kCouples, t, ctx, m);
       }},
      {"depminer2", true,
       [](const Relation& r, size_t t, RunContext* ctx) {
         return RunDepMiner(r, AgreeSetAlgorithm::kIdentifiers, t, ctx, {});
       },
       [](const Relation& r, size_t t, RunContext* ctx,
          const MiningOptions& m) {
         return RunDepMiner(r, AgreeSetAlgorithm::kIdentifiers, t, ctx, m);
       }},
      {"tane", true,
       [](const Relation& r, size_t t, RunContext* ctx) {
         return RunTane(r, t, ctx, {});
       },
       [](const Relation& r, size_t t, RunContext* ctx,
          const MiningOptions& m) { return RunTane(r, t, ctx, m); }},
      {"fastfds", false,
       [](const Relation& r, size_t, RunContext* ctx) {
         return RunFastFds(r, ctx, {});
       },
       [](const Relation& r, size_t, RunContext* ctx,
          const MiningOptions& m) { return RunFastFds(r, ctx, m); }},
      {"fdep", false,
       [](const Relation& r, size_t, RunContext* ctx) {
         return RunFdep(r, ctx, {});
       },
       [](const Relation& r, size_t, RunContext* ctx,
          const MiningOptions& m) { return RunFdep(r, ctx, m); }},
  };
}

std::string MinerLabel(const MinerConfig& miner, size_t threads) {
  if (!miner.threaded) return miner.name;
  return miner.name + "/" + std::to_string(threads) + "t";
}

}  // namespace depminer
