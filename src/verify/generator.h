#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace depminer {

/// Seed-reproducible adversarial relation generator for the differential
/// verification harness (docs/VERIFICATION.md).
///
/// Every case is a deterministic function of its seed: the seed picks a
/// *shape family* (the adversarial structure) and then drives an `Rng`
/// stream for the shape's free parameters. The families deliberately hit
/// the regions where FD miners historically disagree:
///
///   - empty (0-tuple) and single-row relations — vacuous dep(r)
///   - constant columns — |π_A(r)| = 1, Proposition 1 edge
///   - all-distinct (key) columns — singleton stripped partitions
///   - duplicate rows — full-universe agree sets
///   - NULL-like empty-string cells — ordinary-value semantics
///   - wide schemas (> 64 attributes) — the AttributeSet word boundary
///   - skewed (Zipf) duplicate-heavy columns — huge equivalence classes
///   - small dense-domain relations — rich minimal covers, cheap enough
///     for the quadratic reference oracle
///   - planted FDs — relations where a known cover must be implied
struct GeneratedCase {
  Relation relation;
  /// Shape family name, e.g. "wide-schema"; stable across versions of the
  /// generator for a given seed so repro notes stay meaningful.
  std::string label;
  uint64_t seed = 0;
  /// True when the case is small enough (attributes and tuples) for the
  /// exponential `NaiveFdDiscovery` completeness cross-check.
  bool oracle_checkable = false;
};

/// Number of distinct shape families the generator cycles through.
size_t AdversarialShapeCount();

/// Builds the adversarial case for `seed`. Deterministic and
/// platform-independent (xoshiro256** streams, no iteration-order
/// dependence). Fails only on internal construction errors, which the
/// harness reports as divergences of kind `kGeneratorError`.
Result<GeneratedCase> GenerateAdversarialCase(uint64_t seed);

}  // namespace depminer
