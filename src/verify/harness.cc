#include "verify/harness.h"

#include <filesystem>
#include <fstream>

#include "common/log.h"
#include "common/progress.h"
#include "relation/csv.h"
#include "verify/generator.h"
#include "verify/shrinker.h"

namespace depminer {

namespace {

Status WriteRepro(const FuzzOptions& options, FuzzFailure* failure) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options.repro_dir, ec);
  if (ec) {
    return Status::IoError("cannot create repro directory " +
                           options.repro_dir + ": " + ec.message());
  }
  const std::string stem =
      options.repro_dir + "/seed-" + std::to_string(failure->seed);
  DEPMINER_RETURN_NOT_OK(
      WriteCsvRelation(failure->relation, stem + ".csv"));

  std::ofstream note(stem + ".txt");
  note << "seed: " << failure->seed << "\n"
       << "shape: " << failure->label << "\n"
       << "replay: fdtool fuzz --iterations=1 --seed="
       << failure->seed << "\n\n"
       << failure->report.ToString() << "\n";
  if (!note) {
    return Status::IoError("cannot write repro note " + stem + ".txt");
  }
  failure->repro_path = stem + ".csv";
  return Status::OK();
}

}  // namespace

Result<FuzzResult> RunFuzzHarness(const FuzzOptions& options) {
  FuzzResult result;
  DEPMINER_PROGRESS_PHASE("fuzz", "cases", options.iterations);
  for (size_t i = 0; i < options.iterations; ++i) {
    DEPMINER_PROGRESS_TICK(1);
    const uint64_t seed = options.start_seed + i;
    Result<GeneratedCase> generated = GenerateAdversarialCase(seed);
    if (!generated.ok()) {
      // The generator failing on its own seed is itself a harness
      // finding, not a crash: report it like a divergence.
      FuzzFailure failure;
      failure.seed = seed;
      failure.label = "generator";
      failure.report.divergences.push_back(
          {CheckKind::kMinerError, "generator",
           generated.status().ToString()});
      result.failures.push_back(std::move(failure));
      continue;
    }
    GeneratedCase c = std::move(generated).value();

    OracleOptions oracle_options = options.oracle;
    oracle_options.check_reference_oracle =
        options.oracle.check_reference_oracle && c.oracle_checkable;
    OracleReport report =
        RunDifferentialOracle(c.relation, oracle_options);
    ++result.cases_run;
    result.miner_runs += report.miner_runs;

    if (!report.ok()) {
      FuzzFailure failure;
      failure.seed = seed;
      failure.label = c.label;
      failure.report = std::move(report);
      failure.relation = c.relation;
      if (options.shrink) {
        // Shrink against the cheap deterministic predicate: "the oracle
        // still reports some divergence". Tripped-context and Armstrong
        // phases stay on so any failure kind keeps reproducing.
        Result<ShrinkOutcome> shrunk = ShrinkFailingRelation(
            c.relation,
            [&](const Relation& candidate) {
              return !RunDifferentialOracle(candidate, oracle_options)
                          .ok();
            });
        if (shrunk.ok()) {
          failure.relation = std::move(shrunk).value().relation;
        }
      }
      if (!options.repro_dir.empty()) {
        DEPMINER_RETURN_NOT_OK(WriteRepro(options, &failure));
      }
      Log(LogLevel::kWarn, "fuzz",
          "seed " + std::to_string(seed) + " (" + failure.label + "): " +
              std::to_string(failure.report.divergences.size()) +
              " divergence(s)\n" + failure.report.ToString(),
          {LogNum("seed", static_cast<uint64_t>(seed)),
           LogStr("shape", failure.label),
           LogNum("divergences",
                  static_cast<uint64_t>(failure.report.divergences.size()))});
      if (!failure.repro_path.empty()) {
        Log(LogLevel::kWarn, "fuzz",
            "repro written to " + failure.repro_path,
            {LogStr("path", failure.repro_path)});
      }
      result.failures.push_back(std::move(failure));
    }

    if (options.log_every != 0 && (i + 1) % options.log_every == 0) {
      Log(LogLevel::kInfo, "fuzz",
          "fuzz: " + std::to_string(i + 1) + "/" +
              std::to_string(options.iterations) + " cases, " +
              std::to_string(result.miner_runs) + " miner runs, " +
              std::to_string(result.failures.size()) + " failing seed(s)",
          {LogNum("cases", static_cast<uint64_t>(i + 1)),
           LogNum("of", static_cast<uint64_t>(options.iterations)),
           LogNum("miner_runs", static_cast<uint64_t>(result.miner_runs)),
           LogNum("failures",
                  static_cast<uint64_t>(result.failures.size()))});
    }
  }
  return result;
}

}  // namespace depminer
