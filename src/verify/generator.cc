#include "verify/generator.h"

#include <algorithm>

#include "common/rng.h"
#include "datagen/embedded_fd.h"
#include "datagen/synthetic.h"
#include "relation/relation_builder.h"

namespace depminer {

namespace {

/// Shape families, cycled by seed. Keep the order stable: repro notes
/// reference labels, and a given seed must regenerate the same case
/// forever.
enum class Shape : uint64_t {
  kEmpty = 0,
  kSingleRow,
  kConstantColumns,
  kAllDistinctColumns,
  kDuplicateRows,
  kEmptyStrings,
  kWideSchema,
  kZipfSkew,
  kDenseRandom,
  kPlantedFds,
  kPaperScaleSkew,
  kCount,
};

const char* ShapeLabel(Shape s) {
  switch (s) {
    case Shape::kEmpty: return "empty";
    case Shape::kSingleRow: return "single-row";
    case Shape::kConstantColumns: return "constant-columns";
    case Shape::kAllDistinctColumns: return "all-distinct-columns";
    case Shape::kDuplicateRows: return "duplicate-rows";
    case Shape::kEmptyStrings: return "empty-strings";
    case Shape::kWideSchema: return "wide-schema";
    case Shape::kZipfSkew: return "zipf-skew";
    case Shape::kDenseRandom: return "dense-random";
    case Shape::kPlantedFds: return "planted-fds";
    case Shape::kPaperScaleSkew: return "paper-scale-skew";
    case Shape::kCount: break;
  }
  return "unknown";
}

std::string Value(uint64_t v) {
  std::string out = "v";
  out += std::to_string(v);
  return out;
}

/// Builds a relation row-wise from a per-cell value function.
template <typename CellFn>
Result<Relation> BuildRows(size_t attrs, size_t rows, CellFn&& cell) {
  RelationBuilder builder(Schema::Default(attrs));
  std::vector<std::string> row(attrs);
  for (size_t t = 0; t < rows; ++t) {
    for (size_t a = 0; a < attrs; ++a) row[a] = cell(t, a);
    DEPMINER_RETURN_NOT_OK(builder.AddRow(row));
  }
  return std::move(builder).Finish();
}

Result<Relation> MakeShape(Shape shape, Rng& rng) {
  switch (shape) {
    case Shape::kEmpty: {
      const size_t attrs = 1 + rng.Below(6);
      return BuildRows(attrs, 0, [](size_t, size_t) { return ""; });
    }
    case Shape::kSingleRow: {
      const size_t attrs = 1 + rng.Below(6);
      std::vector<std::string> row(attrs);
      for (auto& v : row) v = Value(rng.Below(10));
      return BuildRows(attrs, 1,
                       [&](size_t, size_t a) { return row[a]; });
    }
    case Shape::kConstantColumns: {
      // A few columns with one value each; the rest draw from a small
      // domain, so constant columns sit inside every agree set.
      const size_t attrs = 2 + rng.Below(5);
      const size_t rows = 2 + rng.Below(18);
      std::vector<bool> constant(attrs);
      for (size_t a = 0; a < attrs; ++a) constant[a] = rng.Below(2) == 0;
      constant[rng.Below(attrs)] = true;  // at least one
      const size_t domain = 2 + rng.Below(3);
      return BuildRows(attrs, rows, [&](size_t, size_t a) {
        return constant[a] ? Value(0) : Value(rng.Below(domain));
      });
    }
    case Shape::kAllDistinctColumns: {
      // Key-like columns (every value distinct) next to tiny-domain ones:
      // singleton stripped partitions vs few huge classes.
      const size_t attrs = 2 + rng.Below(5);
      const size_t rows = 2 + rng.Below(20);
      std::vector<bool> distinct(attrs);
      for (size_t a = 0; a < attrs; ++a) distinct[a] = rng.Below(2) == 0;
      distinct[rng.Below(attrs)] = true;
      return BuildRows(attrs, rows, [&](size_t t, size_t a) {
        return distinct[a] ? Value(t) : Value(rng.Below(2));
      });
    }
    case Shape::kDuplicateRows: {
      // A handful of base rows, each repeated: duplicate tuples agree on
      // the full universe R, the edge the agree-set front ends strip.
      const size_t attrs = 2 + rng.Below(5);
      const size_t base = 1 + rng.Below(5);
      const size_t domain = 2 + rng.Below(4);
      std::vector<std::vector<std::string>> rows;
      for (size_t b = 0; b < base; ++b) {
        std::vector<std::string> row(attrs);
        for (auto& v : row) v = Value(rng.Below(domain));
        const size_t copies = 1 + rng.Below(4);
        for (size_t c = 0; c < copies; ++c) rows.push_back(row);
      }
      // Deterministic interleave so duplicates are not adjacent.
      for (size_t i = rows.size(); i > 1; --i) {
        std::swap(rows[i - 1], rows[rng.Below(i)]);
      }
      return BuildRows(attrs, rows.size(),
                       [&](size_t t, size_t a) { return rows[t][a]; });
    }
    case Shape::kEmptyStrings: {
      // NULL-like empty strings as ordinary values (the default CSV
      // semantics: two empty cells agree).
      const size_t attrs = 2 + rng.Below(5);
      const size_t rows = 2 + rng.Below(18);
      const size_t domain = 2 + rng.Below(4);
      return BuildRows(attrs, rows, [&](size_t, size_t) {
        return rng.Below(3) == 0 ? std::string()
                                 : Value(rng.Below(domain));
      });
    }
    case Shape::kWideSchema: {
      // Crosses the 64-attribute word boundary of AttributeSet. Rows are
      // near-duplicates of one base row (a few perturbed cells each):
      // agree sets stay close to the universe, so max-set complements —
      // and with them Dep-Miner's transversal hypergraphs — stay small.
      // Fully random wide rows make dep(r) itself astronomically large
      // (tens of thousands of minimal FDs from a handful of tuples).
      const size_t attrs = 65 + rng.Below(32);
      const size_t rows = 2 + rng.Below(6);
      std::vector<std::string> base(attrs);
      for (auto& v : base) v = Value(rng.Below(3));
      std::vector<std::vector<std::string>> data;
      data.push_back(base);
      for (size_t t = 1; t < rows; ++t) {
        std::vector<std::string> row = base;
        const size_t perturbed = 1 + rng.Below(3);
        for (size_t p = 0; p < perturbed; ++p) {
          row[rng.Below(attrs)] = "w" + std::to_string(rng.Below(3));
        }
        data.push_back(std::move(row));
      }
      return BuildRows(attrs, rows,
                       [&](size_t t, size_t a) { return data[t][a]; });
    }
    case Shape::kZipfSkew: {
      SyntheticConfig config;
      config.num_attributes = 3 + rng.Below(4);
      config.num_tuples = 10 + rng.Below(30);
      config.fixed_domain = 2 + rng.Below(5);
      config.zipf_exponent = 0.8 + rng.NextDouble() * 1.2;
      config.seed = rng.Next();
      return GenerateSynthetic(config);
    }
    case Shape::kDenseRandom: {
      const size_t attrs = 3 + rng.Below(5);
      const size_t rows = 4 + rng.Below(26);
      const size_t domain = 2 + rng.Below(4);
      return BuildRows(attrs, rows, [&](size_t, size_t) {
        return Value(rng.Below(domain));
      });
    }
    case Shape::kPlantedFds: {
      EmbeddedFdConfig config;
      config.num_attributes = 4 + rng.Below(3);
      config.num_tuples = 12 + rng.Below(28);
      config.domain_size = 3 + rng.Below(6);
      config.seed = rng.Next();
      // Plant one or two acyclic FDs with random small left-hand sides.
      const size_t count = 1 + rng.Below(2);
      for (size_t i = 0; i < count; ++i) {
        FunctionalDependency fd;
        fd.rhs = static_cast<AttributeId>(config.num_attributes - 1 - i);
        const size_t lhs_size = 1 + rng.Below(2);
        while (fd.lhs.Count() < lhs_size) {
          fd.lhs.Add(static_cast<AttributeId>(rng.Below(fd.rhs)));
        }
        config.fds.push_back(fd);
      }
      return GenerateWithEmbeddedFds(config);
    }
    case Shape::kPaperScaleSkew: {
      // A shrunken slice of the paper-scale benchmark regime: paper-width
      // schemas and Zipf-skewed pools, sized so the differential sweep
      // exercises the production scheduling paths the tiny shapes above
      // never reach — couple counts past one morsel grain (so the
      // agree-set stage runs multi-morsel) and agree-set families large
      // enough to matter to the batched dominance kernel — while staying
      // seconds-cheap per case across all five miners. The attribute
      // ceiling is deliberate: TANE's lattice and FastFDs' cover DFS are
      // exponential in |R|, so schemas past ~15 attributes turn a sweep
      // iteration from seconds into minutes. Uses the scaled generator's
      // own knobs, parallel column streams included.
      SyntheticConfig config;
      config.num_attributes = 10 + rng.Below(5);    // 10..14
      config.num_tuples = 300 + rng.Below(401);     // 300..700
      config.identical_rate = 0.2 + rng.NextDouble() * 0.3;
      config.zipf_exponent = 0.6 + rng.NextDouble() * 0.6;
      config.num_threads = 1 + rng.Below(8);
      config.seed = rng.Next();
      return GenerateSynthetic(config);
    }
    case Shape::kCount:
      break;
  }
  return Status::InvalidArgument("unknown shape");
}

}  // namespace

size_t AdversarialShapeCount() {
  return static_cast<size_t>(Shape::kCount);
}

Result<GeneratedCase> GenerateAdversarialCase(uint64_t seed) {
  const Shape shape =
      static_cast<Shape>(seed % static_cast<uint64_t>(Shape::kCount));
  // Decouple the parameter stream from the shape index so neighbouring
  // seeds explore different parameters, not shifted copies.
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  Result<Relation> relation = MakeShape(shape, rng);
  if (!relation.ok()) return relation.status();

  GeneratedCase out;
  out.relation = std::move(relation).value();
  out.label = ShapeLabel(shape);
  out.seed = seed;
  // The reference oracle enumerates all 2^attrs left-hand sides; cap
  // where that stays sub-millisecond.
  out.oracle_checkable = out.relation.num_attributes() <= 8 &&
                         out.relation.num_tuples() <= 48;
  return out;
}

}  // namespace depminer
