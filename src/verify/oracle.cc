#include "verify/oracle.h"

#include <functional>

#include "verify/miners.h"

#include "common/run_context.h"
#include "core/armstrong.h"
#include "core/dep_miner.h"
#include "fd/fd_diff.h"
#include "fd/naive_discovery.h"
#include "fd/satisfaction.h"

namespace depminer {

const char* ToString(CheckKind kind) {
  switch (kind) {
    case CheckKind::kMinerError: return "miner-error";
    case CheckKind::kMinerDivergence: return "miner-divergence";
    case CheckKind::kNondeterministic: return "nondeterministic";
    case CheckKind::kUnsoundFd: return "unsound-fd";
    case CheckKind::kTrivialFd: return "trivial-fd";
    case CheckKind::kNotLeftReduced: return "not-left-reduced";
    case CheckKind::kMissedFd: return "missed-fd";
    case CheckKind::kDegradedRun: return "degraded-run";
    case CheckKind::kArmstrongError: return "armstrong-error";
    case CheckKind::kArmstrongSize: return "armstrong-size";
    case CheckKind::kArmstrongRejected: return "armstrong-rejected";
    case CheckKind::kArmstrongDiverged: return "armstrong-diverged";
    case CheckKind::kArityDivergence: return "arity-divergence";
    case CheckKind::kAfdDivergence: return "afd-divergence";
  }
  return "unknown";
}

std::string Divergence::ToString() const {
  std::string out = depminer::ToString(kind);
  if (!miner.empty()) out += " [" + miner + "]";
  out += ": " + detail;
  return out;
}

std::string OracleReport::ToString() const {
  if (divergences.empty()) return "ok";
  std::string out;
  for (const Divergence& d : divergences) {
    if (!out.empty()) out += "\n";
    out += d.ToString();
  }
  return out;
}

namespace {


void Report(OracleReport* report, CheckKind kind, std::string miner,
            std::string detail) {
  report->divergences.push_back(
      {kind, std::move(miner), std::move(detail)});
}

/// The three deterministic governance trips. Each arms exactly one limit
/// and trips it *before* the run starts, so every lane of every miner
/// observes the trip at its first poll — the configuration whose output
/// the library guarantees to be thread-count-independent.
enum class Trip { kCancelled, kDeadline, kBudget };

const char* TripName(Trip t) {
  switch (t) {
    case Trip::kCancelled: return "cancelled";
    case Trip::kDeadline: return "deadline";
    case Trip::kBudget: return "budget";
  }
  return "?";
}

StatusCode TripCode(Trip t) {
  switch (t) {
    case Trip::kCancelled: return StatusCode::kCancelled;
    case Trip::kDeadline: return StatusCode::kDeadlineExceeded;
    case Trip::kBudget: return StatusCode::kCapacityExceeded;
  }
  return StatusCode::kOk;
}

void ArmTripped(RunContext* ctx, Trip t) {
  switch (t) {
    case Trip::kCancelled:
      ctx->RequestCancel();
      break;
    case Trip::kDeadline:
      ctx->SetDeadline(RunContext::Clock::now() -
                       std::chrono::milliseconds(1));
      break;
    case Trip::kBudget:
      ctx->SetMemoryBudget(1);
      ctx->ChargeBytes(4096);
      break;
  }
}

/// Checks one governed run for coherent degradation and records the
/// output (when one was produced) for cross-thread comparison.
void CheckDegradedOutcome(const Relation& relation, const MinerOutcome& out,
                          Trip trip, const std::string& label,
                          OracleReport* report) {
  if (!out.error.ok()) {
    // Acceptable: a pre-tripped context surfaced as the entry check's
    // error status — but it must carry the trip's code.
    if (out.error.code() != TripCode(trip)) {
      Report(report, CheckKind::kDegradedRun, label,
             std::string("pre-tripped (") + TripName(trip) +
                 ") run failed with the wrong code: " +
                 out.error.ToString());
    }
    return;
  }
  if (out.complete) {
    // Also acceptable: the run finished before its first poll (tiny
    // inputs). The full-result equivalence is covered by the ungoverned
    // differential pass; nothing more to check here.
    return;
  }
  if (out.run_status.code() != TripCode(trip)) {
    Report(report, CheckKind::kDegradedRun, label,
           std::string("incomplete run under ") + TripName(trip) +
               " carries the wrong status: " + out.run_status.ToString());
  }
  // Soundness of graceful degradation: partial covers must never invent
  // dependencies — every emitted FD is final and must hold.
  for (const FunctionalDependency& fd : out.fds.fds()) {
    if (!Holds(relation, fd)) {
      Report(report, CheckKind::kDegradedRun, label,
             "partial result under " + std::string(TripName(trip)) +
                 " emits an FD that does not hold: " +
                 fd.ToString(relation.schema()));
    }
  }
}

}  // namespace

void CheckCoverAgainstRelation(const Relation& relation, const FdSet& cover,
                               const std::string& miner_label,
                               bool check_completeness,
                               OracleReport* report) {
  const Schema& schema = relation.schema();
  for (const FunctionalDependency& fd : cover.fds()) {
    if (fd.IsTrivial()) {
      Report(report, CheckKind::kTrivialFd, miner_label,
             fd.ToString(schema));
      continue;
    }
    if (!Holds(relation, fd)) {
      Report(report, CheckKind::kUnsoundFd, miner_label,
             fd.ToString(schema) + " does not hold");
      continue;
    }
    if (!IsMinimalFd(relation, fd)) {
      Report(report, CheckKind::kNotLeftReduced, miner_label,
             fd.ToString(schema) + " has an extraneous lhs attribute");
    }
  }
  if (check_completeness) {
    // The quadratic/exponential definition: everything the exhaustive
    // oracle finds must be implied by the cover. (The spurious direction
    // is covered by the Holds check above.)
    const FdSet reference = NaiveFdDiscovery(relation);
    for (const FunctionalDependency& fd : reference.fds()) {
      if (!cover.Implies(fd)) {
        Report(report, CheckKind::kMissedFd, miner_label,
               "minimal FD " + fd.ToString(schema) +
                   " holds but is not implied by the cover");
      }
    }
  }
}

OracleReport RunDifferentialOracle(const Relation& relation,
                                   const OracleOptions& options) {
  OracleReport report;
  const Schema& schema = relation.schema();
  const std::vector<MinerConfig> miners = AllMiners();
  std::vector<size_t> threads = options.thread_counts;
  if (threads.empty()) threads.push_back(1);

  // Phase 1: ungoverned runs — per-miner determinism across thread
  // counts, then cross-miner implication equivalence of the canonical
  // minimal covers.
  bool have_reference = false;
  FdSet reference_cover;        // canonical minimal cover of the reference
  std::string reference_label;
  // Per-miner ungoverned outputs, kept for the pruning cross-checks of
  // phase 4 (capped-vs-filtered and forced-ε=0 runs diff against them).
  std::vector<FdSet> exact_outputs(miners.size());
  std::vector<char> have_exact(miners.size(), 0);
  for (size_t m = 0; m < miners.size(); ++m) {
    const MinerConfig& miner = miners[m];
    bool have_first = false;
    FdSet first_output;
    std::string first_label;
    const size_t count = miner.threaded ? threads.size() : 1;
    for (size_t i = 0; i < count; ++i) {
      const size_t t = miner.threaded ? threads[i] : 1;
      const std::string label = MinerLabel(miner, t);
      MinerOutcome out = miner.run(relation, t, nullptr);
      ++report.miner_runs;
      if (!out.error.ok()) {
        Report(&report, CheckKind::kMinerError, label,
               out.error.ToString());
        continue;
      }
      if (!out.complete) {
        Report(&report, CheckKind::kMinerError, label,
               "ungoverned run reported itself incomplete: " +
                   out.run_status.ToString());
        continue;
      }
      if (!have_first) {
        have_first = true;
        first_output = out.fds;
        first_label = label;
        // The library's stronger guarantee: one miner's output is
        // bit-identical at any thread count.
      } else if (!(out.fds.fds() == first_output.fds())) {
        Report(&report, CheckKind::kNondeterministic, label,
               "output differs from " + first_label + ": [" +
                   out.fds.ToString() + "] vs [" +
                   first_output.ToString() + "]");
        continue;
      }
      if (i == 0) {
        exact_outputs[m] = out.fds;
        have_exact[m] = 1;
        const FdSet canonical = out.fds.MinimalCover();
        if (!have_reference) {
          have_reference = true;
          reference_cover = canonical;
          reference_label = label;
          CheckCoverAgainstRelation(
              relation, out.fds, label,
              options.check_reference_oracle &&
                  relation.num_attributes() <=
                      options.reference_max_attributes &&
                  relation.num_tuples() <= options.reference_max_tuples,
              &report);
        } else {
          const FdSetDiff diff = DiffFdSets(reference_cover, canonical);
          if (!diff.Equivalent()) {
            Report(&report, CheckKind::kMinerDivergence, label,
                   "cover is not equivalent to " + reference_label +
                       "'s:\n" + diff.ToString(schema));
          }
          // Equivalence alone would let a non-minimal-but-equivalent
          // cover slip through; hold every miner to the same semantic
          // contract (completeness is already pinned by the reference).
          CheckCoverAgainstRelation(relation, out.fds, label,
                                    /*check_completeness=*/false, &report);
        }
      }
    }
  }

  // Phase 2: coherent degradation under deterministically pre-tripped
  // contexts, including thread-count independence of partial output.
  if (options.check_tripped_contexts) {
    for (const Trip trip : {Trip::kCancelled, Trip::kDeadline,
                            Trip::kBudget}) {
      for (const MinerConfig& miner : miners) {
        bool have_first = false;
        FdSet first_output;
        std::string first_label;
        const size_t count = miner.threaded ? threads.size() : 1;
        for (size_t i = 0; i < count; ++i) {
          const size_t t = miner.threaded ? threads[i] : 1;
          const std::string label =
              MinerLabel(miner, t) + "+" + TripName(trip);
          RunContext ctx;
          ArmTripped(&ctx, trip);
          MinerOutcome out = miner.run(relation, t, &ctx);
          ++report.miner_runs;
          CheckDegradedOutcome(relation, out, trip, label, &report);
          if (!out.error.ok()) continue;
          if (!have_first) {
            have_first = true;
            first_output = out.fds;
            first_label = label;
          } else if (!(out.fds.fds() == first_output.fds())) {
            Report(&report, CheckKind::kNondeterministic, label,
                   "partial output under " + std::string(TripName(trip)) +
                       " differs from " + first_label);
          }
        }
      }
    }
  }

  // Phase 3: the Armstrong round-trip (paper Definition 1, Proposition
  // 1): dep(r̄) ≡ dep(r), |r̄| = |MAX(dep(r))| + 1, IsArmstrongFor agrees.
  if (options.check_armstrong && have_reference) {
    DepMinerOptions mine_options;
    mine_options.build_armstrong = true;
    Result<DepMinerResult> mined = MineDependencies(relation, mine_options);
    if (!mined.ok()) {
      Report(&report, CheckKind::kArmstrongError, "depminer",
             mined.status().ToString());
      return report;
    }
    const std::vector<AttributeSet>& max_sets = mined.value().all_max_sets;

    auto check_construction = [&](const Relation& armstrong,
                                  const std::string& which) {
      if (armstrong.num_tuples() != max_sets.size() + 1) {
        Report(&report, CheckKind::kArmstrongSize, which,
               "|r̄| = " + std::to_string(armstrong.num_tuples()) +
                   ", expected |MAX|+1 = " +
                   std::to_string(max_sets.size() + 1));
      }
      if (!IsArmstrongFor(armstrong, max_sets)) {
        Report(&report, CheckKind::kArmstrongRejected, which,
               "GEN(F) ⊆ ag(r̄) ⊆ CL(F) does not hold");
      }
      DepMinerOptions remine;
      remine.build_armstrong = false;
      Result<DepMinerResult> round = MineDependencies(armstrong, remine);
      if (!round.ok()) {
        Report(&report, CheckKind::kArmstrongError, which,
               "re-mining failed: " + round.status().ToString());
        return;
      }
      const FdSetDiff diff =
          DiffFdSets(reference_cover, round.value().fds.MinimalCover());
      if (!diff.Equivalent()) {
        Report(&report, CheckKind::kArmstrongDiverged, which,
               "dep(r̄) ≢ dep(r):\n" + diff.ToString(schema));
      }
    };

    Result<Relation> synthetic =
        BuildSyntheticArmstrong(schema, max_sets);
    if (!synthetic.ok()) {
      Report(&report, CheckKind::kArmstrongError, "synthetic",
             synthetic.status().ToString());
    } else {
      check_construction(synthetic.value(), "synthetic");
    }

    if (mined.value().armstrong.has_value()) {
      check_construction(*mined.value().armstrong, "real-world");
    } else {
      // Absence is only legitimate when Proposition 1 genuinely fails.
      if (mined.value().armstrong_status.code() !=
          StatusCode::kFailedPrecondition) {
        Report(&report, CheckKind::kArmstrongError, "real-world",
               "construction missing for a non-Proposition-1 reason: " +
                   mined.value().armstrong_status.ToString());
      } else if (RealWorldArmstrongExists(relation, max_sets).ok()) {
        Report(&report, CheckKind::kArmstrongError, "real-world",
               "Proposition 1 holds but the construction was refused: " +
                   mined.value().armstrong_status.ToString());
      }
    }
  }

  // Phase 4: pruning cross-checks against each miner's own ungoverned
  // output. (a) An arity-capped run must be bit-identical to that output
  // filtered to |lhs| ≤ k — the cap prunes candidates before generation
  // but provably never changes what survives. (b) A run with the g₃
  // validation path forced at ε = 0 must be implication-equivalent to
  // the exact cover (TANE takes the real approximate path; the other
  // miners ignore the flag).
  if (options.check_pruning) {
    for (size_t m = 0; m < miners.size(); ++m) {
      if (!have_exact[m]) continue;
      const MinerConfig& miner = miners[m];
      const FdSet& exact = exact_outputs[m];
      const size_t t = miner.threaded ? threads[0] : 1;
      const std::string label = MinerLabel(miner, t);

      MiningOptions capped;
      capped.max_lhs_arity = options.arity_cap;
      MinerOutcome capped_out = miner.run_with(relation, t, nullptr, capped);
      ++report.miner_runs;
      if (!capped_out.error.ok() || !capped_out.complete) {
        Report(&report, CheckKind::kArityDivergence, label,
               "arity-capped run failed: " +
                   (capped_out.error.ok() ? capped_out.run_status
                                          : capped_out.error)
                       .ToString());
      } else {
        std::vector<FunctionalDependency> filtered;
        for (const FunctionalDependency& fd : exact.fds()) {
          if (fd.lhs.Count() <= options.arity_cap) filtered.push_back(fd);
        }
        const FdSet expected(exact.num_attributes(), std::move(filtered));
        if (!(capped_out.fds.fds() == expected.fds())) {
          Report(&report, CheckKind::kArityDivergence, label,
                 "capped (k=" + std::to_string(options.arity_cap) +
                     ") output [" + capped_out.fds.ToString() +
                     "] != filtered unbounded cover [" +
                     expected.ToString() + "]");
        }
      }

      MiningOptions forced;
      forced.force_error_validation = true;
      MinerOutcome afd_out = miner.run_with(relation, t, nullptr, forced);
      ++report.miner_runs;
      if (!afd_out.error.ok() || !afd_out.complete) {
        Report(&report, CheckKind::kAfdDivergence, label,
               "forced ε=0 run failed: " +
                   (afd_out.error.ok() ? afd_out.run_status : afd_out.error)
                       .ToString());
      } else {
        const FdSetDiff diff =
            DiffFdSets(exact.MinimalCover(), afd_out.fds.MinimalCover());
        if (!diff.Equivalent()) {
          Report(&report, CheckKind::kAfdDivergence, label,
                 "ε=0 approximate cover is not equivalent to the exact "
                 "one:\n" +
                     diff.ToString(schema));
        }
      }
    }
  }

  return report;
}

}  // namespace depminer
