#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fd/fd_set.h"
#include "relation/relation.h"

namespace depminer {

/// What a differential-oracle check found wrong. One relation can produce
/// several divergences; each names the miner configuration it came from.
enum class CheckKind {
  kMinerError,         ///< a miner returned an error on a valid relation
  kMinerDivergence,    ///< two miners' covers are not implication-equal
  kNondeterministic,   ///< same miner, different threads, different output
  kUnsoundFd,          ///< an emitted FD does not hold in the relation
  kTrivialFd,          ///< an emitted FD is trivial (A ∈ X)
  kNotLeftReduced,     ///< an emitted FD's lhs has an extraneous attribute
  kMissedFd,           ///< the quadratic reference oracle finds more
  kDegradedRun,        ///< incoherent partial results under a tripped ctx
  kArmstrongError,     ///< a construction failed for a non-Prop-1 reason
  kArmstrongSize,      ///< |r̄| ≠ |MAX(dep(r))| + 1
  kArmstrongRejected,  ///< IsArmstrongFor says the construction is wrong
  kArmstrongDiverged,  ///< dep(r̄) ≢ dep(r) — the round-trip broke
  kArityDivergence,    ///< capped run ≠ unbounded cover filtered to ≤ k
  kAfdDivergence,      ///< ε = 0 approximate run ≢ the exact cover
};

const char* ToString(CheckKind kind);

/// One verified discrepancy.
struct Divergence {
  CheckKind kind;
  /// Miner configuration, e.g. "tane/8t" or "depminer2/1t"; empty for
  /// relation-level checks (Armstrong round-trip, reference oracle).
  std::string miner;
  std::string detail;

  std::string ToString() const;
};

/// Knobs of `RunDifferentialOracle`.
struct OracleOptions {
  /// Pool-lane counts each thread-aware miner runs at; outputs must be
  /// identical across them (the library's determinism guarantee).
  std::vector<size_t> thread_counts{1, 2, 8};
  /// Re-run every miner under pre-tripped RunContexts (cancelled, expired
  /// deadline, exhausted memory budget) and check coherent degradation:
  /// value-not-error returns, matching status codes, sound partial FDs,
  /// thread-count-independent partial output.
  bool check_tripped_contexts = true;
  /// Armstrong round-trip: dep(r̄) ≡ dep(r), |r̄| = |MAX|+1,
  /// `IsArmstrongFor` agrees — for the synthetic and (when Proposition 1
  /// admits one) the real-world construction.
  bool check_armstrong = true;
  /// Cross-check the cover against `NaiveFdDiscovery` when the relation
  /// is small enough (the quadratic/exponential definition; see caps).
  bool check_reference_oracle = true;
  size_t reference_max_attributes = 8;
  size_t reference_max_tuples = 48;
  /// Pruning cross-checks, per miner: (a) an arity-capped run must equal
  /// the miner's own unbounded output filtered to |lhs| ≤ `arity_cap`
  /// (bit-identical after canonicalization — the cap provably prunes
  /// *before* generation without changing what survives); (b) TANE's
  /// g₃ validation path forced at ε = 0 must be implication-equivalent
  /// to its exact cover (the other miners ignore the flag and must be
  /// unchanged).
  bool check_pruning = true;
  size_t arity_cap = 2;
};

/// Result of one oracle pass over one relation.
struct OracleReport {
  std::vector<Divergence> divergences;
  size_t miner_runs = 0;

  bool ok() const { return divergences.empty(); }
  std::string ToString() const;
};

/// Runs all five miners (Dep-Miner Algorithms 2 and 3, TANE, FastFDs,
/// FDEP) over `relation` — the thread-aware ones at every count in
/// `options.thread_counts` — canonicalizes each output to a sorted
/// minimal cover and diffs the covers by implication (`fd/fd_diff`), then
/// applies the semantic checker and the Armstrong round-trip.
OracleReport RunDifferentialOracle(const Relation& relation,
                                   const OracleOptions& options = {});

/// The semantic checker on its own: every FD of `cover` must hold in
/// `relation`, be non-trivial and left-reduced; when `check_completeness`
/// is set the cover must also imply everything `NaiveFdDiscovery` finds.
/// Appends divergences to `report`. Exposed for tests and the shrinker.
void CheckCoverAgainstRelation(const Relation& relation, const FdSet& cover,
                               const std::string& miner_label,
                               bool check_completeness, OracleReport* report);

}  // namespace depminer
