#pragma once

#include <string>

#include "common/status.h"
#include "fd/fd_set.h"
#include "relation/schema.h"

namespace depminer {

/// Text serialization for FD sets, so mined covers can be stored,
/// diffed, and piped between `fdtool` invocations.
///
/// Format: one header line `# fdset <attr1> <attr2> ...` naming the
/// schema (names with spaces are not supported — they are column
/// identifiers), then one FD per line, `A,B -> C` (an empty lhs is
/// written as `{}`). Lines starting with `#` after the header and blank
/// lines are ignored on read.

/// Serializes with the given schema's attribute names.
std::string FdSetToText(const FdSet& fds, const Schema& schema);

/// Parses the format back; returns the FD set and (via `schema`) the
/// attribute naming it was written with.
Result<FdSet> FdSetFromText(const std::string& text, Schema* schema);

/// File convenience wrappers.
Status SaveFdSet(const FdSet& fds, const Schema& schema,
                 const std::string& path);
Result<FdSet> LoadFdSet(const std::string& path, Schema* schema);

}  // namespace depminer
