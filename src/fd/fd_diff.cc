#include "fd/fd_diff.h"

namespace depminer {

FdSetDiff DiffFdSets(const FdSet& old_fds, const FdSet& new_fds) {
  FdSetDiff diff;
  for (const FunctionalDependency& fd : old_fds.fds()) {
    if (!new_fds.Implies(fd)) diff.lost.push_back(fd);
  }
  for (const FunctionalDependency& fd : new_fds.fds()) {
    if (!old_fds.Implies(fd)) diff.gained.push_back(fd);
  }
  return diff;
}

std::string FdSetDiff::ToString(const Schema& schema) const {
  if (Equivalent()) return "covers are equivalent\n";
  std::string out;
  for (const FunctionalDependency& fd : lost) {
    out += "- " + fd.ToString(schema) + "\n";
  }
  for (const FunctionalDependency& fd : gained) {
    out += "+ " + fd.ToString(schema) + "\n";
  }
  return out;
}

}  // namespace depminer
