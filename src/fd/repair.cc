#include "fd/repair.h"

#include <algorithm>
#include <unordered_map>

#include "partition/partition.h"
#include "relation/relation_ops.h"

namespace depminer {

FdRepair ComputeRepair(const Relation& relation,
                       const FunctionalDependency& fd) {
  FdRepair repair;
  repair.fd = fd;
  const size_t p = relation.num_tuples();
  if (p == 0 || fd.IsTrivial()) return repair;

  // Within every lhs class: keep one largest rhs-subgroup (ties broken
  // toward the first-seen code for determinism), remove the rest.
  const Partition pi = Partition::ForSet(relation, fd.lhs);
  for (const EquivalenceClass& c : pi.classes()) {
    if (c.size() < 2) continue;
    std::unordered_map<ValueCode, size_t> counts;
    for (TupleId t : c) ++counts[relation.Code(t, fd.rhs)];
    ValueCode keep_code = relation.Code(c.front(), fd.rhs);
    size_t keep_count = 0;
    for (TupleId t : c) {
      const ValueCode code = relation.Code(t, fd.rhs);
      if (counts[code] > keep_count) {
        keep_count = counts[code];
        keep_code = code;
      }
    }
    for (TupleId t : c) {
      if (relation.Code(t, fd.rhs) != keep_code) {
        repair.tuples_to_remove.push_back(t);
      }
    }
  }
  std::sort(repair.tuples_to_remove.begin(), repair.tuples_to_remove.end());
  repair.g3 = static_cast<double>(repair.tuples_to_remove.size()) /
              static_cast<double>(p);
  return repair;
}

Result<Relation> ApplyRepair(const Relation& relation,
                             const std::vector<TupleId>& tuples_to_remove) {
  std::vector<bool> removed(relation.num_tuples(), false);
  for (TupleId t : tuples_to_remove) {
    if (t >= relation.num_tuples()) {
      return Status::InvalidArgument("tuple id out of range");
    }
    removed[t] = true;
  }
  std::vector<TupleId> kept;
  kept.reserve(relation.num_tuples() - tuples_to_remove.size());
  for (TupleId t = 0; t < relation.num_tuples(); ++t) {
    if (!removed[t]) kept.push_back(t);
  }
  return SelectRows(relation, kept);
}

}  // namespace depminer
