#pragma once

#include "fd/fd_set.h"
#include "fd/functional_dependency.h"
#include "relation/relation.h"

namespace depminer {

/// True iff r |= X → A: whenever two tuples agree on X they agree on A.
/// Implemented by hashing the X-projection of every tuple — O(|r| · |X|) —
/// rather than by the quadratic pairwise definition.
bool Holds(const Relation& relation, const AttributeSet& lhs, AttributeId rhs);

bool Holds(const Relation& relation, const FunctionalDependency& fd);

/// True iff every FD of the set holds in the relation.
bool AllHold(const Relation& relation, const FdSet& fds);

/// True iff X → A holds and no proper subset of X determines A.
bool IsMinimalFd(const Relation& relation, const FunctionalDependency& fd);

/// The number of *violating pairs* of X → A in r: pairs agreeing on X but
/// not on A. Zero iff the FD holds. (Supports the g₂-style diagnostics in
/// examples; TANE's approximate mode uses the g₃ measure instead.)
size_t CountViolatingPairs(const Relation& relation, const AttributeSet& lhs,
                           AttributeId rhs);

/// TANE's g₃ error of X → A in r: the minimum fraction of tuples to delete
/// for the FD to hold. In [0, 1); zero iff the FD holds.
double G3Error(const Relation& relation, const AttributeSet& lhs,
               AttributeId rhs);

}  // namespace depminer
