#include "fd/projection.h"

namespace depminer {

FdSet ProjectFds(const FdSet& fds, const AttributeSet& x) {
  FdSet projected(fds.num_attributes());
  const std::vector<AttributeId> members = x.Members();

  for (AttributeId a : members) {
    // Levelwise over subsets of X \ {A}, smallest first; a set whose
    // closure contains A is recorded and not expanded, so only minimal
    // determining sets are kept (mirrors NaiveFdDiscovery with closure
    // in place of satisfaction).
    std::vector<AttributeSet> level = {AttributeSet()};
    std::vector<AttributeSet> found;
    while (!level.empty()) {
      std::vector<AttributeSet> next;
      for (const AttributeSet& y : level) {
        bool superset_of_found = false;
        for (const AttributeSet& f : found) {
          if (f.IsSubsetOf(y)) {
            superset_of_found = true;
            break;
          }
        }
        if (superset_of_found) continue;
        if (fds.Closure(y).Contains(a)) {
          found.push_back(y);
          projected.Add(y, a);
          continue;
        }
        const AttributeId start = y.Empty() ? 0 : y.Max() + 1;
        for (AttributeId b : members) {
          if (b < start || b == a) continue;
          AttributeSet grown = y;
          grown.Add(b);
          next.push_back(grown);
        }
      }
      level = std::move(next);
    }
  }

  projected.Normalize();
  // The per-rhs minimal determining sets are already a cover of π_X(F);
  // reduce it to a minimal cover for a canonical result.
  return projected.MinimalCover();
}

bool PreservesDependencies(const FdSet& fds,
                           const std::vector<AttributeSet>& fragments) {
  FdSet combined(fds.num_attributes());
  for (const AttributeSet& fragment : fragments) {
    const FdSet projected = ProjectFds(fds, fragment);
    for (const FunctionalDependency& fd : projected.fds()) {
      combined.Add(fd);
    }
  }
  combined.Normalize();
  // π-projections are implied by F by construction; only the converse
  // needs checking.
  return combined.Covers(fds);
}

}  // namespace depminer
