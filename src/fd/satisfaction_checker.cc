#include "fd/satisfaction_checker.h"

namespace depminer {

namespace {

size_t ErrorOf(const StrippedPartition& p) {
  size_t e = 0;
  for (const EquivalenceClass& c : p.classes()) e += c.size() - 1;
  return e;
}

}  // namespace

SatisfactionChecker::SatisfactionChecker(const Relation& relation)
    : relation_(relation), workspace_(relation.num_tuples()) {}

const StrippedPartition& SatisfactionChecker::PartitionFor(
    const AttributeSet& x) {
  auto it = cache_.find(x);
  if (it != cache_.end()) return it->second;

  StrippedPartition built;
  if (x.Empty()) {
    EquivalenceClass all(relation_.num_tuples());
    for (TupleId t = 0; t < relation_.num_tuples(); ++t) all[t] = t;
    built = StrippedPartition({std::move(all)}, relation_.num_tuples());
  } else if (x.Count() == 1) {
    built = StrippedPartition::ForAttribute(relation_, x.Min());
  } else {
    // Peel the highest attribute: product of the (memoized) rest with the
    // single-attribute partition. This builds a chain of cached products,
    // so lattice-shaped query mixes share prefixes.
    const AttributeId top = x.Max();
    AttributeSet rest = x;
    rest.Remove(top);
    // Note: both operands are cached before the product, so the
    // references stay valid while computing.
    const StrippedPartition& left = PartitionFor(rest);
    const StrippedPartition& right =
        PartitionFor(AttributeSet::Single(top));
    built = workspace_.Product(left, right);
  }
  return cache_.emplace(x, std::move(built)).first->second;
}

bool SatisfactionChecker::Holds(const AttributeSet& lhs, AttributeId rhs) {
  if (lhs.Contains(rhs)) return true;
  AttributeSet both = lhs;
  both.Add(rhs);
  // X → A ⇔ e(π̂_X) = e(π̂_{X∪A}) (π_{X∪A} refines π_X).
  const size_t lhs_error = ErrorOf(PartitionFor(lhs));
  const size_t both_error = ErrorOf(PartitionFor(both));
  return lhs_error == both_error;
}

bool SatisfactionChecker::IsMinimal(const FunctionalDependency& fd) {
  if (!Holds(fd)) return false;
  bool minimal = true;
  fd.lhs.ForEach([&](AttributeId a) {
    AttributeSet reduced = fd.lhs;
    reduced.Remove(a);
    if (Holds(reduced, fd.rhs)) minimal = false;
  });
  return minimal;
}

}  // namespace depminer
