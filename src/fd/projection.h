#pragma once

#include <vector>

#include "common/attribute_set.h"
#include "fd/fd_set.h"

namespace depminer {

/// Projection of an FD set onto an attribute subset X:
/// π_X(F) = {Y → A : Y ∪ {A} ⊆ X, F ⊨ Y → A}, returned as a minimal
/// cover over the original attribute numbering.
///
/// Projection is inherently exponential in |X| in the worst case (the
/// projected cover can be exponentially large); this implementation
/// enumerates subsets of X levelwise with closure memoization and prunes
/// supersets of already-found determining sets per rhs, so typical
/// schemas (|X| ≲ 20) are fine. The normalization analyzer uses it to
/// check dependency preservation of decompositions.
FdSet ProjectFds(const FdSet& fds, const AttributeSet& x);

/// True iff the decomposition into `fragments` preserves F: the union of
/// the projections of F onto the fragments is cover-equivalent to F.
bool PreservesDependencies(const FdSet& fds,
                           const std::vector<AttributeSet>& fragments);

}  // namespace depminer
