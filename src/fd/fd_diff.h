#pragma once

#include <string>
#include <vector>

#include "fd/fd_set.h"
#include "relation/schema.h"

namespace depminer {

/// Semantic difference between two FD covers (e.g. the same table mined
/// last month vs today — dependency drift is how schema rot shows up).
///
/// The comparison is by *implication*, not by syntactic cover equality:
/// an FD counts as lost only if the new cover no longer implies it.
struct FdSetDiff {
  /// FDs of the old cover no longer implied by the new one.
  std::vector<FunctionalDependency> lost;
  /// FDs of the new cover not implied by the old one.
  std::vector<FunctionalDependency> gained;

  bool Equivalent() const { return lost.empty() && gained.empty(); }

  /// "- lost ...\n+ gained ..." rendering.
  std::string ToString(const Schema& schema) const;
};

/// Computes the diff. Both sets must be over the same attribute count
/// (typically the same schema).
FdSetDiff DiffFdSets(const FdSet& old_fds, const FdSet& new_fds);

}  // namespace depminer
