#pragma once

#include <vector>

#include "common/status.h"
#include "fd/functional_dependency.h"
#include "relation/relation.h"

namespace depminer {

/// Repair analysis for an almost-holding FD: the tuples behind its g₃
/// error. Deleting `tuples_to_remove` from the relation makes the FD
/// hold, and no smaller deletion set does (g₃ is defined as that
/// minimum).
struct FdRepair {
  FunctionalDependency fd;
  /// A minimum-cardinality set of tuples whose removal validates the FD:
  /// within every lhs class, everything outside one largest rhs-subgroup.
  std::vector<TupleId> tuples_to_remove;
  /// g₃ = |tuples_to_remove| / |r|.
  double g3 = 0.0;
};

/// Computes the repair for one FD. For an FD that already holds the
/// removal set is empty.
FdRepair ComputeRepair(const Relation& relation,
                       const FunctionalDependency& fd);

/// Applies a repair: the relation without the listed tuples.
Result<Relation> ApplyRepair(const Relation& relation,
                             const std::vector<TupleId>& tuples_to_remove);

}  // namespace depminer
