#include "fd/keys.h"

#include <algorithm>
#include <set>

namespace depminer {

bool IsSuperkey(const FdSet& fds, const AttributeSet& x) {
  return fds.Closure(x) == AttributeSet::Universe(fds.num_attributes());
}

bool IsCandidateKey(const FdSet& fds, const AttributeSet& x) {
  if (!IsSuperkey(fds, x)) return false;
  bool minimal = true;
  x.ForEach([&](AttributeId a) {
    AttributeSet reduced = x;
    reduced.Remove(a);
    if (IsSuperkey(fds, reduced)) minimal = false;
  });
  return minimal;
}

AttributeSet ReduceToKey(const FdSet& fds, AttributeSet x) {
  // Try removing attributes from highest to lowest for a deterministic
  // result.
  std::vector<AttributeId> members = x.Members();
  std::reverse(members.begin(), members.end());
  for (AttributeId a : members) {
    AttributeSet reduced = x;
    reduced.Remove(a);
    if (IsSuperkey(fds, reduced)) x = reduced;
  }
  return x;
}

std::vector<AttributeSet> CandidateKeys(const FdSet& fds) {
  const AttributeSet universe = AttributeSet::Universe(fds.num_attributes());
  std::set<AttributeSet> keys;
  std::vector<AttributeSet> queue;

  const AttributeSet first = ReduceToKey(fds, universe);
  keys.insert(first);
  queue.push_back(first);

  while (!queue.empty()) {
    const AttributeSet key = queue.back();
    queue.pop_back();
    for (const FunctionalDependency& fd : fds.fds()) {
      if (fd.IsTrivial()) continue;
      // Lucchesi–Osborn: S = X ∪ (K \ {A}) is a superkey whenever K is;
      // if no known key is contained in S, reducing S yields a new key.
      AttributeSet s = key;
      s.Remove(fd.rhs);
      s = s.Union(fd.lhs);
      bool contains_known = false;
      for (const AttributeSet& k : keys) {
        if (k.IsSubsetOf(s)) {
          contains_known = true;
          break;
        }
      }
      if (contains_known) continue;
      const AttributeSet reduced = ReduceToKey(fds, s);
      if (keys.insert(reduced).second) queue.push_back(reduced);
    }
  }

  std::vector<AttributeSet> out(keys.begin(), keys.end());
  SortSets(&out);
  return out;
}

}  // namespace depminer
