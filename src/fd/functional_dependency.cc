#include "fd/functional_dependency.h"

#include <algorithm>

namespace depminer {

std::string FunctionalDependency::ToString() const {
  std::string out = lhs.Empty() ? "{}" : lhs.ToString();
  out += " -> ";
  if (rhs < 26) {
    out.push_back(static_cast<char>('A' + rhs));
  } else {
    out += std::to_string(rhs);
  }
  return out;
}

std::string FunctionalDependency::ToString(const Schema& schema) const {
  std::string out = lhs.Empty() ? "{}" : lhs.ToString(schema.names());
  out += " -> ";
  out += schema.name(rhs);
  return out;
}

void Canonicalize(std::vector<FunctionalDependency>* fds) {
  std::sort(fds->begin(), fds->end());
  fds->erase(std::unique(fds->begin(), fds->end()), fds->end());
}

}  // namespace depminer
