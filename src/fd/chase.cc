#include "fd/chase.h"

#include <cstdint>
#include <vector>

namespace depminer {

namespace {

/// Tableau symbols: 0 is the distinguished symbol a_j for each column;
/// i+1 is the unique symbol b_{i,j} of row i.
using Symbol = uint32_t;
constexpr Symbol kDistinguished = 0;

}  // namespace

bool IsLosslessJoin(const FdSet& fds,
                    const std::vector<AttributeSet>& fragments) {
  const size_t n = fds.num_attributes();
  const size_t k = fragments.size();
  if (k == 0) return false;

  // tableau[i][a] — row i's symbol in column a.
  std::vector<std::vector<Symbol>> tableau(k, std::vector<Symbol>(n));
  for (size_t i = 0; i < k; ++i) {
    for (AttributeId a = 0; a < n; ++a) {
      tableau[i][a] =
          fragments[i].Contains(a) ? kDistinguished : static_cast<Symbol>(i + 1);
    }
  }

  // Chase to fixpoint: for every FD X → A and every pair of rows agreeing
  // on X, equate their A symbols (preferring the distinguished symbol).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds.fds()) {
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = i + 1; j < k; ++j) {
          bool agree = true;
          fd.lhs.ForEach([&](AttributeId b) {
            if (tableau[i][b] != tableau[j][b]) agree = false;
          });
          if (!agree) continue;
          const Symbol si = tableau[i][fd.rhs];
          const Symbol sj = tableau[j][fd.rhs];
          if (si == sj) continue;
          // Replace the larger symbol by the smaller *everywhere in the
          // column* (symbol identification, not just in these two rows).
          const Symbol from = si < sj ? sj : si;
          const Symbol to = si < sj ? si : sj;
          for (size_t row = 0; row < k; ++row) {
            if (tableau[row][fd.rhs] == from) tableau[row][fd.rhs] = to;
          }
          changed = true;
        }
      }
    }
  }

  for (size_t i = 0; i < k; ++i) {
    bool all_distinguished = true;
    for (AttributeId a = 0; a < n; ++a) {
      if (tableau[i][a] != kDistinguished) {
        all_distinguished = false;
        break;
      }
    }
    if (all_distinguished) return true;
  }
  return false;
}

bool IsLosslessBinaryJoin(const FdSet& fds, const AttributeSet& x,
                          const AttributeSet& y) {
  const AttributeSet common = x.Intersect(y);
  const AttributeSet closure = fds.Closure(common);
  return x.Minus(y).IsSubsetOf(closure) || y.Minus(x).IsSubsetOf(closure);
}

}  // namespace depminer
