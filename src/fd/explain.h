#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "fd/fd_set.h"
#include "relation/schema.h"

namespace depminer {

/// One step of an implication derivation: an FD of the base set fired
/// because its lhs was already derived, adding its rhs to the closure.
struct DerivationStep {
  FunctionalDependency used;     ///< the base-set FD applied
  AttributeSet known_before;     ///< closure before the step
};

/// A derivation of F ⊨ X → A (or the verdict that none exists).
struct Derivation {
  bool implied = false;
  AttributeSet start;            ///< X
  AttributeId target = 0;        ///< A
  std::vector<DerivationStep> steps;  ///< in application order
  AttributeSet final_closure;    ///< X⁺ when not implied

  /// Human-readable rendering ("X ⊨ ... because ...").
  std::string ToString(const Schema& schema) const;
};

/// Explains why (or that) `fds ⊨ lhs → rhs`, as a minimal-ish chain of
/// closure steps: the usual fixpoint chase, recording each firing FD,
/// then pruned backwards so only steps contributing to the target
/// remain. Reflexive implications (rhs ∈ lhs) produce an empty step
/// list.
Derivation ExplainImplication(const FdSet& fds, const AttributeSet& lhs,
                              AttributeId rhs);

}  // namespace depminer
