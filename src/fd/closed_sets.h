#pragma once

#include <vector>

#include "common/attribute_set.h"
#include "fd/fd_set.h"

namespace depminer {

/// The closed-set lattice of an FD set (paper §2, after [BDFS84, DLM92]).
///
/// A set X is closed when X⁺_F = X. CL(F) is the family of closed sets
/// (a lattice under intersection, with top R); GEN(F) is its unique
/// minimal subfamily of *generators* (meet-irreducible elements): every
/// closed set is an intersection of generators, R being the empty
/// intersection.
///
/// [MR86, MR94b] prove MAX(F) = GEN(F) — the identity that lets
/// Dep-Miner build Armstrong relations straight from maximal sets. Tests
/// validate that identity by computing GEN independently through this
/// module and comparing with the mined maximal sets.
///
/// Both enumerations are exponential (|CL(F)| can be 2^n); they are meant
/// for schemas of ≲ 20 attributes — analysis and testing, not discovery.

/// All closed sets, sorted by (cardinality, members). R is always
/// included; ∅ is included iff ∅⁺ = ∅ (no constant attributes).
std::vector<AttributeSet> ClosedSets(const FdSet& fds);

/// The generators GEN(F): closed sets (≠ R) that are not the intersection
/// of strictly larger closed sets. Sorted like ClosedSets.
std::vector<AttributeSet> Generators(const FdSet& fds);

/// True iff X is closed under F.
bool IsClosed(const FdSet& fds, const AttributeSet& x);

}  // namespace depminer
