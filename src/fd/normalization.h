#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "fd/fd_set.h"
#include "relation/schema.h"

namespace depminer {

/// One normal-form violation: an FD whose lhs is not a superkey (BCNF),
/// possibly excused for 3NF when the rhs is a prime attribute.
struct NormalFormViolation {
  FunctionalDependency fd;
  bool violates_3nf = false;  // every 3NF violation is also a BCNF one
};

/// A proposed decomposed relation schema.
struct DecompositionFragment {
  AttributeSet attributes;
  /// The FD that induced the fragment (lhs is the fragment's key), or a
  /// universe fragment if none.
  FunctionalDependency generator;
};

/// The paper motivates FD discovery with *logical tuning*: the dba reviews
/// discovered FDs and normalizes the schema. This analyzer reports where a
/// schema stands w.r.t. BCNF/3NF under a set of (discovered) FDs.
class NormalizationAnalysis {
 public:
  /// `fds` should be a cover of dep(r), e.g. Dep-Miner output.
  NormalizationAnalysis(const Schema& schema, const FdSet& fds);

  const std::vector<AttributeSet>& candidate_keys() const { return keys_; }
  /// Attributes appearing in some candidate key.
  const AttributeSet& prime_attributes() const { return prime_; }

  bool InBcnf() const;
  bool In3nf() const;
  const std::vector<NormalFormViolation>& violations() const {
    return violations_;
  }

  /// Classical lossless-join BCNF decomposition: repeatedly split on a
  /// violating FD X → A into (X ∪ A) and (R \ A). Dependency preservation
  /// is not guaranteed (it cannot be, in general).
  std::vector<DecompositionFragment> BcnfDecomposition() const;

  /// 3NF synthesis from a minimal cover (lossless + dependency
  /// preserving): one fragment per distinct lhs of the minimal cover,
  /// plus a key fragment if no fragment contains a candidate key.
  std::vector<DecompositionFragment> ThirdNfSynthesis() const;

  /// Human-readable report used by the logical-tuning example.
  std::string Report() const;

 private:
  Schema schema_;
  FdSet fds_;
  FdSet minimal_cover_;
  std::vector<AttributeSet> keys_;
  AttributeSet prime_;
  std::vector<NormalFormViolation> violations_;
};

}  // namespace depminer
