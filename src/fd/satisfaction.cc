#include "fd/satisfaction.h"

#include <algorithm>
#include <unordered_map>

#include "partition/partition.h"
#include "partition/partition_product.h"
#include "partition/stripped_partition.h"

namespace depminer {

namespace {

/// Groups tuples by their lhs projection and calls `fn(class)` for each
/// group of ≥ 2 tuples.
template <typename Fn>
void ForEachLhsClass(const Relation& relation, const AttributeSet& lhs,
                     Fn&& fn) {
  const Partition pi = Partition::ForSet(relation, lhs);
  for (const EquivalenceClass& c : pi.classes()) {
    if (c.size() > 1) fn(c);
  }
}

}  // namespace

bool Holds(const Relation& relation, const AttributeSet& lhs, AttributeId rhs) {
  if (lhs.Contains(rhs)) return true;
  bool holds = true;
  ForEachLhsClass(relation, lhs, [&](const EquivalenceClass& c) {
    if (!holds) return;
    const ValueCode v = relation.Code(c[0], rhs);
    for (size_t i = 1; i < c.size(); ++i) {
      if (relation.Code(c[i], rhs) != v) {
        holds = false;
        return;
      }
    }
  });
  return holds;
}

bool Holds(const Relation& relation, const FunctionalDependency& fd) {
  return Holds(relation, fd.lhs, fd.rhs);
}

bool AllHold(const Relation& relation, const FdSet& fds) {
  for (const FunctionalDependency& fd : fds.fds()) {
    if (!Holds(relation, fd)) return false;
  }
  return true;
}

bool IsMinimalFd(const Relation& relation, const FunctionalDependency& fd) {
  if (!Holds(relation, fd)) return false;
  bool minimal = true;
  fd.lhs.ForEach([&](AttributeId a) {
    AttributeSet reduced = fd.lhs;
    reduced.Remove(a);
    if (Holds(relation, reduced, fd.rhs)) minimal = false;
  });
  return minimal;
}

size_t CountViolatingPairs(const Relation& relation, const AttributeSet& lhs,
                           AttributeId rhs) {
  if (lhs.Contains(rhs)) return 0;
  size_t violations = 0;
  ForEachLhsClass(relation, lhs, [&](const EquivalenceClass& c) {
    // Within one lhs class, count pairs with distinct rhs codes:
    // C(n,2) - sum over rhs-subgroups of C(k,2).
    std::unordered_map<ValueCode, size_t> counts;
    for (TupleId t : c) ++counts[relation.Code(t, rhs)];
    size_t same = 0;
    for (const auto& [code, k] : counts) same += k * (k - 1) / 2;
    violations += c.size() * (c.size() - 1) / 2 - same;
  });
  return violations;
}

double G3Error(const Relation& relation, const AttributeSet& lhs,
               AttributeId rhs) {
  const size_t p = relation.num_tuples();
  if (p == 0 || lhs.Contains(rhs)) return 0.0;
  // g3 = (|r| - max tuples keepable) / |r|. Within each lhs class, keep
  // the largest rhs-subgroup.
  size_t removed = 0;
  ForEachLhsClass(relation, lhs, [&](const EquivalenceClass& c) {
    std::unordered_map<ValueCode, size_t> counts;
    for (TupleId t : c) ++counts[relation.Code(t, rhs)];
    size_t largest = 0;
    for (const auto& [code, k] : counts) largest = std::max(largest, k);
    removed += c.size() - largest;
  });
  return static_cast<double>(removed) / static_cast<double>(p);
}

}  // namespace depminer
