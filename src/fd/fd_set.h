#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "fd/functional_dependency.h"

namespace depminer {

/// A finite set of functional dependencies over an n-attribute universe,
/// with the classical inference operations from dependency theory
/// ([AHV95] ch. 8, [MR94b]).
class FdSet {
 public:
  FdSet() = default;
  explicit FdSet(size_t num_attributes) : num_attributes_(num_attributes) {}
  FdSet(size_t num_attributes, std::vector<FunctionalDependency> fds)
      : num_attributes_(num_attributes), fds_(std::move(fds)) {
    Canonicalize(&fds_);
  }

  size_t num_attributes() const { return num_attributes_; }
  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  size_t size() const { return fds_.size(); }
  bool Empty() const { return fds_.empty(); }

  void Add(const FunctionalDependency& fd) { fds_.push_back(fd); }
  void Add(const AttributeSet& lhs, AttributeId rhs) {
    fds_.push_back({lhs, rhs});
  }
  /// Sorts canonically and deduplicates.
  void Normalize() { Canonicalize(&fds_); }

  /// The attribute closure X⁺ of `x` under this FD set, by the standard
  /// fixpoint chase. O(|F| · passes).
  AttributeSet Closure(const AttributeSet& x) const;

  /// True iff X → A is implied by this set (A ∈ X⁺).
  bool Implies(const AttributeSet& lhs, AttributeId rhs) const;
  bool Implies(const FunctionalDependency& fd) const;

  /// True iff every FD of `other` is implied by this set.
  bool Covers(const FdSet& other) const;

  /// True iff the two sets imply each other (they are covers of the same
  /// dependency family — the paper's F ≡ G).
  bool EquivalentTo(const FdSet& other) const;

  /// A minimal cover: no trivial FDs, no redundant FDs, and no lhs with an
  /// extraneous attribute. The result is canonical (sorted) but minimal
  /// covers are not unique in general.
  FdSet MinimalCover() const;

  std::string ToString() const;

 private:
  size_t num_attributes_ = 0;
  std::vector<FunctionalDependency> fds_;
};

}  // namespace depminer
