#include "fd/ranking.h"

#include <algorithm>

#include "common/trace.h"
#include "partition/partition_product.h"

namespace depminer {

namespace {

size_t PartitionRedundancy(const StrippedPartition& p) {
  size_t e = 0;
  for (const EquivalenceClass& c : p.classes()) e += c.size() - 1;
  return e;
}

/// π̂_X folded directly from the per-attribute partitions (the uncached
/// path; the cache's Get does the same with prefix memoization).
size_t UncachedRedundancy(const AttributeSet& x,
                          const StrippedPartitionDatabase& db,
                          PartitionProductWorkspace* workspace) {
  std::vector<AttributeId> members;
  x.ForEach([&members](AttributeId a) { members.push_back(a); });
  StrippedPartition current = db.partition(members[0]);
  for (size_t i = 1; i < members.size(); ++i) {
    current = workspace->Product(current, db.partition(members[i]));
  }
  return PartitionRedundancy(current);
}

}  // namespace

RankingResult RankFds(const FdSet& fds, const StrippedPartitionDatabase& db,
                      size_t top_k, PartitionCache* cache) {
  RankingResult result;
  result.ranked.reserve(fds.size());
  PartitionProductWorkspace workspace(db.num_tuples());
  for (const FunctionalDependency& fd : fds.fds()) {
    RankedFd entry;
    entry.fd = fd;
    if (fd.lhs.Empty()) {
      entry.redundancy = db.num_tuples() > 0 ? db.num_tuples() - 1 : 0;
    } else if (cache != nullptr) {
      entry.redundancy = PartitionRedundancy(*cache->Get(fd.lhs));
    } else {
      entry.redundancy = UncachedRedundancy(fd.lhs, db, &workspace);
    }
    result.ranked.push_back(std::move(entry));
  }

  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const RankedFd& a, const RankedFd& b) {
              if (a.redundancy != b.redundancy) {
                return a.redundancy > b.redundancy;
              }
              const size_t ca = a.fd.lhs.Count(), cb = b.fd.lhs.Count();
              if (ca != cb) return ca < cb;
              return a.fd < b.fd;
            });
  if (top_k != 0 && result.ranked.size() > top_k) {
    result.ranked.resize(top_k);
  }
  DEPMINER_TRACE_COUNTER("ranking.fds", result.ranked.size());
  return result;
}

}  // namespace depminer
