#include "fd/naive_discovery.h"

#include <vector>

#include "fd/satisfaction.h"

namespace depminer {

FdSet NaiveFdDiscovery(const Relation& relation) {
  const size_t n = relation.num_attributes();
  FdSet result(n);

  for (AttributeId a = 0; a < n; ++a) {
    // Breadth-first over subsets of R \ {A} by increasing size. A set that
    // holds is recorded and not extended — so everything recorded is
    // minimal; everything else is extended by one attribute.
    std::vector<AttributeSet> level = {AttributeSet()};
    std::vector<AttributeSet> found;
    while (!level.empty()) {
      std::vector<AttributeSet> next;
      for (const AttributeSet& x : level) {
        bool superset_of_found = false;
        for (const AttributeSet& f : found) {
          if (f.IsSubsetOf(x)) {
            superset_of_found = true;
            break;
          }
        }
        if (superset_of_found) continue;
        if (Holds(relation, x, a)) {
          found.push_back(x);
          result.Add(x, a);
          continue;
        }
        // Extend with attributes larger than every current member to
        // enumerate each set exactly once.
        const AttributeId start = x.Empty() ? 0 : x.Max() + 1;
        for (AttributeId b = start; b < n; ++b) {
          if (b == a) continue;
          AttributeSet grown = x;
          grown.Add(b);
          next.push_back(grown);
        }
      }
      level = std::move(next);
    }
  }

  result.Normalize();
  return result;
}

}  // namespace depminer
