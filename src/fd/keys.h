#pragma once

#include <vector>

#include "common/attribute_set.h"
#include "fd/fd_set.h"

namespace depminer {

/// True iff X is a superkey under F: X⁺ = R.
bool IsSuperkey(const FdSet& fds, const AttributeSet& x);

/// True iff X is a candidate key: a superkey none of whose proper subsets
/// is one.
bool IsCandidateKey(const FdSet& fds, const AttributeSet& x);

/// Enumerates all candidate keys of the schema under F, using the
/// Lucchesi–Osborn saturation algorithm: start from one key obtained by
/// reducing R, then for each known key K and each FD X → A generate the
/// candidate X ∪ (K \ A) and reduce it. Exponential in the worst case —
/// there can be exponentially many keys — but efficient in practice.
/// Results are sorted by (cardinality, members).
std::vector<AttributeSet> CandidateKeys(const FdSet& fds);

/// Greedily removes attributes from `x` while it stays a superkey,
/// returning a candidate key contained in `x`. `x` must be a superkey.
AttributeSet ReduceToKey(const FdSet& fds, AttributeSet x);

}  // namespace depminer
