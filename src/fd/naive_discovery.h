#pragma once

#include "fd/fd_set.h"
#include "relation/relation.h"

namespace depminer {

/// Exhaustive discovery of all minimal non-trivial FDs of a relation by
/// breadth-first enumeration of candidate left-hand sides, smallest first,
/// testing each with `Holds`.
///
/// Exponential in the number of attributes — usable only on small schemas
/// (≲ 15 attributes). It exists as an *oracle*: tests compare Dep-Miner
/// and TANE against it on randomized inputs.
FdSet NaiveFdDiscovery(const Relation& relation);

}  // namespace depminer
