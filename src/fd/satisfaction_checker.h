#pragma once

#include <unordered_map>

#include "common/attribute_set.h"
#include "fd/functional_dependency.h"
#include "partition/partition_product.h"
#include "partition/stripped_partition.h"
#include "relation/relation.h"

namespace depminer {

/// A satisfaction oracle over one relation that memoizes stripped
/// partitions per attribute set: repeated `Holds` queries — the access
/// pattern of normalization analysis, interactive exploration (`fdtool
/// verify`) and test oracles — reuse partition products instead of
/// re-grouping tuples each time.
///
/// Semantics match `Holds(relation, lhs, rhs)` exactly (verified by
/// tests); only the cost profile differs. Not thread-safe.
class SatisfactionChecker {
 public:
  explicit SatisfactionChecker(const Relation& relation);

  /// r ⊨ X → A, with memoized partitions.
  bool Holds(const AttributeSet& lhs, AttributeId rhs);
  bool Holds(const FunctionalDependency& fd) {
    return Holds(fd.lhs, fd.rhs);
  }

  /// True iff X → A holds and no proper subset of X determines A.
  bool IsMinimal(const FunctionalDependency& fd);

  /// Number of partitions currently cached (observability for tests).
  size_t cache_size() const { return cache_.size(); }

 private:
  const StrippedPartition& PartitionFor(const AttributeSet& x);

  const Relation& relation_;
  PartitionProductWorkspace workspace_;
  std::unordered_map<AttributeSet, StrippedPartition, AttributeSetHash> cache_;
};

}  // namespace depminer
