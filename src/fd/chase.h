#pragma once

#include <vector>

#include "common/attribute_set.h"
#include "fd/fd_set.h"

namespace depminer {

/// The chase for lossless-join testing ([AHV95] ch. 8).
///
/// A decomposition R = X_1 ∪ ... ∪ X_k has a lossless join under F iff
/// the chase of the tableau with one row per fragment (distinguished
/// symbols on the fragment's attributes, unique symbols elsewhere)
/// produces an all-distinguished row. Equality-generating chase steps
/// apply the FDs of F until fixpoint.
///
/// Used by tests to verify that `NormalizationAnalysis::BcnfDecomposition`
/// and `ThirdNfSynthesis` are lossless, and exposed for applications that
/// want to validate hand-written decompositions against discovered FDs.
bool IsLosslessJoin(const FdSet& fds,
                    const std::vector<AttributeSet>& fragments);

/// Special case k = 2 shortcut (also a cross-check for the tableau
/// implementation): R = X ∪ Y is lossless iff X∩Y → X\Y or X∩Y → Y\X
/// holds under F.
bool IsLosslessBinaryJoin(const FdSet& fds, const AttributeSet& x,
                          const AttributeSet& y);

}  // namespace depminer
