#include "fd/normalization.h"

#include <algorithm>
#include <set>

#include "fd/keys.h"

namespace depminer {

NormalizationAnalysis::NormalizationAnalysis(const Schema& schema,
                                             const FdSet& fds)
    : schema_(schema),
      fds_(fds),
      minimal_cover_(fds.MinimalCover()),
      keys_(CandidateKeys(fds)) {
  for (const AttributeSet& k : keys_) prime_ = prime_.Union(k);
  for (const FunctionalDependency& fd : minimal_cover_.fds()) {
    if (fd.IsTrivial()) continue;
    if (IsSuperkey(fds_, fd.lhs)) continue;  // no violation
    NormalFormViolation v;
    v.fd = fd;
    v.violates_3nf = !prime_.Contains(fd.rhs);
    violations_.push_back(v);
  }
}

bool NormalizationAnalysis::InBcnf() const { return violations_.empty(); }

bool NormalizationAnalysis::In3nf() const {
  return std::none_of(violations_.begin(), violations_.end(),
                      [](const NormalFormViolation& v) { return v.violates_3nf; });
}

std::vector<DecompositionFragment> NormalizationAnalysis::BcnfDecomposition()
    const {
  std::vector<DecompositionFragment> fragments;
  std::vector<AttributeSet> todo = {schema_.universe()};
  while (!todo.empty()) {
    const AttributeSet rel = todo.back();
    todo.pop_back();
    // Find a violating FD X → A with X ∪ {A} ⊆ rel and X not a superkey of
    // rel (closure within the fragment's attributes).
    bool split = false;
    for (const FunctionalDependency& fd : minimal_cover_.fds()) {
      if (!fd.lhs.IsSubsetOf(rel) || !rel.Contains(fd.rhs) || fd.IsTrivial()) {
        continue;
      }
      const AttributeSet closure_in_rel = fds_.Closure(fd.lhs).Intersect(rel);
      if (closure_in_rel == rel) continue;  // lhs is a key of the fragment
      // Split rel into (X⁺ ∩ rel) and (rel \ (X⁺ \ X)).
      const AttributeSet left = closure_in_rel;
      const AttributeSet right = rel.Minus(closure_in_rel.Minus(fd.lhs));
      todo.push_back(left);
      todo.push_back(right);
      split = true;
      break;
    }
    if (!split) {
      DecompositionFragment frag;
      frag.attributes = rel;
      frag.generator = FunctionalDependency{AttributeSet(), 0};
      fragments.push_back(frag);
    }
  }
  // Drop fragments contained in other fragments.
  std::vector<AttributeSet> sets;
  sets.reserve(fragments.size());
  for (const auto& f : fragments) sets.push_back(f.attributes);
  sets = MaximalSets(std::move(sets));
  std::vector<DecompositionFragment> out;
  for (const AttributeSet& s : sets) {
    DecompositionFragment frag;
    frag.attributes = s;
    out.push_back(frag);
  }
  return out;
}

std::vector<DecompositionFragment> NormalizationAnalysis::ThirdNfSynthesis()
    const {
  // Group minimal-cover FDs by lhs: fragment = lhs ∪ {all its rhs}.
  std::vector<DecompositionFragment> fragments;
  std::set<AttributeSet> seen_lhs;
  for (const FunctionalDependency& fd : minimal_cover_.fds()) {
    if (!seen_lhs.insert(fd.lhs).second) continue;
    DecompositionFragment frag;
    frag.attributes = fd.lhs;
    frag.generator = fd;
    for (const FunctionalDependency& other : minimal_cover_.fds()) {
      if (other.lhs == fd.lhs) frag.attributes.Add(other.rhs);
    }
    fragments.push_back(frag);
  }
  // Remove fragments contained in others (can happen after grouping).
  std::vector<DecompositionFragment> kept;
  for (const auto& f : fragments) {
    bool contained = false;
    for (const auto& g : fragments) {
      if (&f != &g && f.attributes.IsSubsetOf(g.attributes) &&
          f.attributes != g.attributes) {
        contained = true;
        break;
      }
    }
    if (!contained) kept.push_back(f);
  }
  // Ensure some fragment contains a candidate key (lossless join).
  bool has_key = false;
  for (const auto& f : kept) {
    for (const AttributeSet& k : keys_) {
      if (k.IsSubsetOf(f.attributes)) {
        has_key = true;
        break;
      }
    }
    if (has_key) break;
  }
  if (!has_key && !keys_.empty()) {
    DecompositionFragment frag;
    frag.attributes = keys_.front();
    kept.push_back(frag);
  }
  return kept;
}

std::string NormalizationAnalysis::Report() const {
  std::string out;
  out += "Candidate keys:";
  for (const AttributeSet& k : keys_) {
    out += ' ';
    out += k.ToString(schema_.names());
  }
  out += '\n';
  out += std::string("Schema is ") +
         (InBcnf() ? "in BCNF" : In3nf() ? "in 3NF but not BCNF"
                                         : "not in 3NF") +
         ".\n";
  for (const NormalFormViolation& v : violations_) {
    out += "  violation: " + v.fd.ToString(schema_) +
           (v.violates_3nf ? " (3NF+BCNF)" : " (BCNF only)") + '\n';
  }
  return out;
}

}  // namespace depminer
