#include "fd/fd_set.h"

namespace depminer {

AttributeSet FdSet::Closure(const AttributeSet& x) const {
  AttributeSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds_) {
      if (!closure.Contains(fd.rhs) && fd.lhs.IsSubsetOf(closure)) {
        closure.Add(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool FdSet::Implies(const AttributeSet& lhs, AttributeId rhs) const {
  if (lhs.Contains(rhs)) return true;  // reflexivity
  return Closure(lhs).Contains(rhs);
}

bool FdSet::Implies(const FunctionalDependency& fd) const {
  return Implies(fd.lhs, fd.rhs);
}

bool FdSet::Covers(const FdSet& other) const {
  for (const FunctionalDependency& fd : other.fds_) {
    if (!Implies(fd)) return false;
  }
  return true;
}

bool FdSet::EquivalentTo(const FdSet& other) const {
  return Covers(other) && other.Covers(*this);
}

FdSet FdSet::MinimalCover() const {
  // Step 1: drop trivial FDs and duplicates.
  std::vector<FunctionalDependency> work;
  work.reserve(fds_.size());
  for (const FunctionalDependency& fd : fds_) {
    if (!fd.IsTrivial()) work.push_back(fd);
  }
  Canonicalize(&work);

  // Step 2: remove extraneous lhs attributes (left-reduction): B ∈ X is
  // extraneous in X → A when (X \ B) → A is still implied.
  FdSet current(num_attributes_, work);
  work = current.fds_;
  for (FunctionalDependency& fd : work) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      const std::vector<AttributeId> members = fd.lhs.Members();
      for (AttributeId b : members) {
        AttributeSet reduced = fd.lhs;
        reduced.Remove(b);
        if (current.Implies(reduced, fd.rhs)) {
          fd.lhs = reduced;
          shrunk = true;
          break;
        }
      }
    }
  }
  Canonicalize(&work);

  // Step 3: remove redundant FDs (those implied by the rest).
  std::vector<FunctionalDependency> kept = work;
  for (size_t i = kept.size(); i-- > 0;) {
    std::vector<FunctionalDependency> without;
    without.reserve(kept.size() - 1);
    for (size_t j = 0; j < kept.size(); ++j) {
      if (j != i) without.push_back(kept[j]);
    }
    FdSet candidate(num_attributes_, without);
    if (candidate.Implies(kept[i])) kept = std::move(without);
  }
  return FdSet(num_attributes_, std::move(kept));
}

std::string FdSet::ToString() const {
  std::string out;
  for (const FunctionalDependency& fd : fds_) {
    if (!out.empty()) out += "; ";
    out += fd.ToString();
  }
  return out;
}

}  // namespace depminer
