#include "fd/closed_sets.h"

namespace depminer {

bool IsClosed(const FdSet& fds, const AttributeSet& x) {
  return fds.Closure(x) == x;
}

std::vector<AttributeSet> ClosedSets(const FdSet& fds) {
  const size_t n = fds.num_attributes();
  const AttributeSet universe = AttributeSet::Universe(n);
  std::vector<AttributeSet> closed;

  // Ganter's NextClosure: enumerates the closed sets in lectic order with
  // at most n closure computations per closed set — output-polynomial,
  // unlike scanning all 2^n subsets.
  AttributeSet current = fds.Closure(AttributeSet());
  closed.push_back(current);
  while (current != universe) {
    bool advanced = false;
    for (size_t step = n; step-- > 0 && !advanced;) {
      const AttributeId i = static_cast<AttributeId>(step);
      if (current.Contains(i)) continue;
      // A ⊕ i = closure((A ∩ {0..i-1}) ∪ {i}).
      AttributeSet prefix =
          current.Intersect(AttributeSet::Universe(i)).Union(
              AttributeSet::Single(i));
      const AttributeSet candidate = fds.Closure(prefix);
      // Accept when the candidate adds no element smaller than i beyond
      // the shared prefix (lectic successor condition).
      const AttributeSet added =
          candidate.Minus(current.Intersect(AttributeSet::Universe(i)));
      if (added.Min() == i) {
        current = candidate;
        closed.push_back(current);
        advanced = true;
      }
    }
    if (!advanced) break;  // defensive: cannot happen for a proper closure
  }

  SortSets(&closed);
  return closed;
}

std::vector<AttributeSet> Generators(const FdSet& fds) {
  const std::vector<AttributeSet> closed = ClosedSets(fds);
  const AttributeSet universe = AttributeSet::Universe(fds.num_attributes());
  std::vector<AttributeSet> generators;
  for (const AttributeSet& x : closed) {
    if (x == universe) continue;
    AttributeSet meet = universe;
    for (const AttributeSet& y : closed) {
      if (x != y && x.IsSubsetOf(y)) meet = meet.Intersect(y);
    }
    if (meet != x) generators.push_back(x);
  }
  SortSets(&generators);
  return generators;
}

}  // namespace depminer
