#include "fd/explain.h"

namespace depminer {

Derivation ExplainImplication(const FdSet& fds, const AttributeSet& lhs,
                              AttributeId rhs) {
  Derivation out;
  out.start = lhs;
  out.target = rhs;

  if (lhs.Contains(rhs)) {
    out.implied = true;  // reflexivity, no steps
    out.final_closure = lhs;
    return out;
  }

  // Forward chase, recording which FD added which attribute.
  AttributeSet closure = lhs;
  std::vector<DerivationStep> trace;
  bool changed = true;
  while (changed && !closure.Contains(rhs)) {
    changed = false;
    for (const FunctionalDependency& fd : fds.fds()) {
      if (!closure.Contains(fd.rhs) && fd.lhs.IsSubsetOf(closure)) {
        trace.push_back({fd, closure});
        closure.Add(fd.rhs);
        changed = true;
        if (closure.Contains(rhs)) break;
      }
    }
  }
  out.final_closure = closure;
  if (!closure.Contains(rhs)) {
    out.implied = false;
    return out;
  }
  out.implied = true;

  // Backward prune: keep only steps whose rhs is actually needed —
  // seed with the target, then walk the trace backwards, pulling in the
  // lhs attributes of every kept step (minus what X provides).
  AttributeSet needed = AttributeSet::Single(rhs);
  std::vector<bool> keep(trace.size(), false);
  for (size_t i = trace.size(); i-- > 0;) {
    if (needed.Contains(trace[i].used.rhs)) {
      keep[i] = true;
      needed.Remove(trace[i].used.rhs);
      needed = needed.Union(trace[i].used.lhs.Minus(lhs));
    }
  }
  // Re-derive known_before over the kept steps only, so the rendered
  // chain is self-contained (no attributes from pruned steps).
  AttributeSet known = lhs;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (!keep[i]) continue;
    DerivationStep step = trace[i];
    step.known_before = known;
    known.Add(step.used.rhs);
    out.steps.push_back(std::move(step));
  }
  return out;
}

std::string Derivation::ToString(const Schema& schema) const {
  std::string lhs_text = start.Empty() ? "{}" : start.ToString(schema.names());
  std::string out = lhs_text + " -> " + schema.name(target);
  if (!implied) {
    out += ": NOT implied (closure is {" +
           final_closure.ToString(schema.names()) + "})\n";
    return out;
  }
  out += ": implied";
  if (steps.empty()) {
    out += start.Contains(target) ? " (reflexivity)\n" : " (directly)\n";
    return out;
  }
  out += "\n";
  for (const DerivationStep& step : steps) {
    out += "  {" + step.known_before.ToString(schema.names()) +
           "} covers the lhs of " + step.used.ToString(schema) + "\n";
  }
  return out;
}

}  // namespace depminer
