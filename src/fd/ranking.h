#pragma once

#include <vector>

#include "fd/fd_set.h"
#include "partition/partition_database.h"

namespace depminer {

/// One FD with its redundancy score: the number of redundant tuple slots
/// its left-hand side groups, e(π̂_X)·|r| = Σ (|c| − 1) over the stripped
/// classes of π̂_X. An FD whose lhs partitions the relation into few large
/// classes repeats its rhs value often — normalizing on it removes the
/// most duplicated storage — so higher scores rank first. The empty lhs
/// (a constant attribute) scores |r| − 1, the maximum.
struct RankedFd {
  FunctionalDependency fd;
  size_t redundancy = 0;
};

struct RankingResult {
  /// Sorted by redundancy descending, ties by lhs size ascending, then
  /// canonical FD order — a total order, so the ranking (and any top-k
  /// prefix of it) is deterministic.
  std::vector<RankedFd> ranked;
};

/// Ranks `fds` by redundancy. π̂_X probes go through `cache` when one is
/// provided (minimal covers share lhs prefixes heavily, so probes mostly
/// hit), otherwise each lhs product chain is computed from `db` directly.
/// `top_k` (0 = all) keeps only the first k of the ranking.
RankingResult RankFds(const FdSet& fds, const StrippedPartitionDatabase& db,
                      size_t top_k = 0, PartitionCache* cache = nullptr);

}  // namespace depminer
