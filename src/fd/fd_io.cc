#include "fd/fd_io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace depminer {

std::string FdSetToText(const FdSet& fds, const Schema& schema) {
  std::string out = "# fdset";
  for (const std::string& name : schema.names()) {
    out += ' ';
    out += name;
  }
  out += '\n';
  for (const FunctionalDependency& fd : fds.fds()) {
    if (fd.lhs.Empty()) {
      out += "{}";
    } else {
      out += fd.lhs.ToString(schema.names());
    }
    out += " -> ";
    out += schema.name(fd.rhs);
    out += '\n';
  }
  return out;
}

Result<FdSet> FdSetFromText(const std::string& text, Schema* schema) {
  std::istringstream in(text);
  std::string line;

  // Header.
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty FD set text");
  }
  const std::string_view header = StripAsciiWhitespace(line);
  const std::string prefix = "# fdset";
  if (header.substr(0, prefix.size()) != prefix) {
    return Status::InvalidArgument("missing '# fdset' header");
  }
  std::vector<std::string> names;
  for (const std::string& token :
       Split(std::string(header.substr(prefix.size())), ' ')) {
    if (!token.empty()) names.push_back(token);
  }
  if (names.empty()) {
    return Status::InvalidArgument("header names no attributes");
  }
  if (names.size() > AttributeSet::kMaxAttributes) {
    return Status::CapacityExceeded("too many attributes in header");
  }
  *schema = Schema(names);

  FdSet fds(names.size());
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const size_t arrow = stripped.find("->");
    if (arrow == std::string_view::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 'lhs -> rhs'");
    }
    const std::string lhs_text =
        std::string(StripAsciiWhitespace(stripped.substr(0, arrow)));
    const std::string rhs_text =
        std::string(StripAsciiWhitespace(stripped.substr(arrow + 2)));

    FunctionalDependency fd;
    if (lhs_text != "{}") {
      for (const std::string& raw : Split(lhs_text, ',')) {
        const std::string name = std::string(StripAsciiWhitespace(raw));
        if (name.empty()) continue;
        Result<AttributeId> id = schema->Find(name);
        if (!id.ok()) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": unknown attribute '" + name + "'");
        }
        fd.lhs.Add(id.value());
      }
    }
    Result<AttributeId> rhs = schema->Find(rhs_text);
    if (!rhs.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown attribute '" + rhs_text + "'");
    }
    fd.rhs = rhs.value();
    fds.Add(fd);
  }
  fds.Normalize();
  return fds;
}

Status SaveFdSet(const FdSet& fds, const Schema& schema,
                 const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << FdSetToText(fds, schema);
  if (!out) return Status::IoError("failed writing '" + path + "'");
  return Status::OK();
}

Result<FdSet> LoadFdSet(const std::string& path, Schema* schema) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FdSetFromText(buffer.str(), schema);
}

}  // namespace depminer
