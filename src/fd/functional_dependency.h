#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "relation/schema.h"

namespace depminer {

/// A functional dependency X → A with a single right-hand attribute
/// (paper §2). Any FD X → Y decomposes into |Y| such dependencies.
struct FunctionalDependency {
  AttributeSet lhs;
  AttributeId rhs = 0;

  /// Trivial iff A ∈ X.
  bool IsTrivial() const { return lhs.Contains(rhs); }

  bool operator==(const FunctionalDependency& o) const {
    return rhs == o.rhs && lhs == o.lhs;
  }
  bool operator<(const FunctionalDependency& o) const {
    if (rhs != o.rhs) return rhs < o.rhs;
    const size_t cl = lhs.Count(), co = o.lhs.Count();
    if (cl != co) return cl < co;
    return lhs.LexLess(o.lhs);
  }

  /// "BC -> A" using letters, or names from a schema.
  std::string ToString() const;
  std::string ToString(const Schema& schema) const;
};

/// Sorts canonically (by rhs, then lhs size, then lhs members) and removes
/// duplicates, in place.
void Canonicalize(std::vector<FunctionalDependency>* fds);

}  // namespace depminer
