#include "hypergraph/levelwise_transversals.h"

#include <algorithm>

#include "common/attribute_set.h"
#include "common/progress.h"
#include "common/trace.h"

namespace depminer {

namespace {

/// A candidate at level i: its attribute set plus its members in
/// increasing order (the sorted prefix drives the Apriori-gen join).
struct Candidate {
  AttributeSet set;
  std::vector<AttributeId> members;
};

bool SharePrefix(const Candidate& p, const Candidate& q, size_t len) {
  for (size_t k = 0; k < len; ++k) {
    if (p.members[k] != q.members[k]) return false;
  }
  return true;
}

/// Apriori-gen [AS94], as adapted by the paper: join candidates sharing
/// their first i-1 members, then prune any joined set with an i-subset
/// missing from `level` (such subsets either never were candidates or were
/// already emitted as transversals — either way their supersets cannot be
/// *minimal* transversals).
std::vector<Candidate> GenerateNextLevel(const std::vector<Candidate>& level) {
  std::vector<Candidate> next;
  if (level.empty()) return next;
  const size_t i = level[0].members.size();

  // The survivors of level i, for the prune step.
  std::vector<AttributeSet> surviving;
  surviving.reserve(level.size());
  for (const Candidate& c : level) surviving.push_back(c.set);
  std::sort(surviving.begin(), surviving.end());

  auto survives = [&surviving](const AttributeSet& s) {
    return std::binary_search(surviving.begin(), surviving.end(), s);
  };

  for (size_t a = 0; a < level.size(); ++a) {
    for (size_t b = a + 1; b < level.size(); ++b) {
      if (!SharePrefix(level[a], level[b], i - 1)) break;
      // members are sorted and candidates are generated in lexicographic
      // order, so level[a].members[i-1] < level[b].members[i-1].
      Candidate joined;
      joined.members = level[a].members;
      joined.members.push_back(level[b].members[i - 1]);
      joined.set = level[a].set;
      joined.set.Add(level[b].members[i - 1]);

      // Prune: every i-subset must still be a candidate in L_i.
      bool keep = true;
      for (size_t drop = 0; keep && drop + 2 < joined.members.size(); ++drop) {
        // Subsets obtained by dropping one of the first i-1 members; the
        // two subsets dropping the last two members are level[a] and
        // level[b] themselves, already known to survive.
        AttributeSet sub = joined.set;
        sub.Remove(joined.members[drop]);
        if (!survives(sub)) keep = false;
      }
      if (keep) next.push_back(std::move(joined));
    }
  }
  return next;
}

/// How many joined candidates GenerateNextLevel would form from `level`
/// (the prefix-block pair count, before the subset prune) — what an
/// arity cap reports as pruned without paying for the generation.
size_t CountPrunedJoins(const std::vector<Candidate>& level) {
  if (level.empty()) return 0;
  const size_t i = level[0].members.size();
  size_t pruned = 0;
  for (size_t a = 0; a < level.size(); ++a) {
    for (size_t b = a + 1; b < level.size(); ++b) {
      if (!SharePrefix(level[a], level[b], i - 1)) break;
      ++pruned;
    }
  }
  return pruned;
}

}  // namespace

std::vector<AttributeSet> LevelwiseMinimalTransversals(
    const Hypergraph& hypergraph, LevelwiseStats* stats, RunContext* ctx,
    size_t max_size) {
  LevelwiseStats local_stats;
  std::vector<AttributeSet> result;

  const Hypergraph simple =
      hypergraph.IsSimple() ? hypergraph : hypergraph.Minimized();

  // A hypergraph with no edges is vacuously covered by the empty set; the
  // library uses this to express "A is constant" FDs (∅ → A).
  if (simple.Empty()) {
    result.push_back(AttributeSet());
    if (stats != nullptr) *stats = local_stats;
    return result;
  }

  // L1: the attributes that occur in some edge, in increasing order.
  std::vector<Candidate> level;
  simple.VertexSupport().ForEach([&level](AttributeId a) {
    level.push_back(Candidate{AttributeSet::Single(a), {a}});
  });
  local_stats.candidates_generated += level.size();

  while (!level.empty()) {
    if (ctx != nullptr && ctx->StopRequested()) {
      local_stats.complete = false;
      break;
    }
    ++local_stats.levels;
    DEPMINER_TRACE_SPAN(level_span, "transversal/level");
    level_span.SetValue(level.size());
    DEPMINER_TRACE_HISTOGRAM("transversal_level_candidates/all", level.size());
    // One tick per candidate batch: the lhs phase's work unit is the
    // transversal node, and a level is the natural batch.
    DEPMINER_PROGRESS_TICK(level.size());
    std::vector<Candidate> survivors;
    survivors.reserve(level.size());
    for (Candidate& cand : level) {
      if (simple.IsTransversal(cand.set)) {
        result.push_back(cand.set);
        ++local_stats.transversals_found;
      } else {
        survivors.push_back(std::move(cand));
      }
    }
    // Arity cap: level max_size was just tested; anything deeper would
    // exceed the bound, so the next level's joins are pruned un-generated.
    if (max_size != 0 && local_stats.levels == max_size) {
      local_stats.candidates_pruned += CountPrunedJoins(survivors);
      break;
    }
    level = GenerateNextLevel(survivors);
    local_stats.candidates_generated += level.size();
  }

  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace depminer
