#pragma once

#include <vector>

#include "common/run_context.h"
#include "hypergraph/hypergraph.h"

namespace depminer {

/// Computes the minimal transversals Tr(H) by Berge's incremental method
/// [Ber76]: process edges one at a time, maintaining the minimal
/// transversals of the prefix; each new edge E replaces every partial
/// transversal T by {T ∪ {v} : v ∈ E}, followed by minimization.
///
/// Used (a) as an independent oracle against the levelwise Algorithm 5 in
/// tests, and (b) to exercise the nihilpotence property Tr(Tr(H)) = H the
/// paper leans on in §5.1 to derive maximal sets back from FD left-hand
/// sides.
///
/// Returns transversals sorted by (cardinality, members).
///
/// `ctx` (optional) is checked once per edge — the partial-transversal
/// family can blow up multiplicatively with each edge. On a trip the
/// incremental construction stops and the (meaningless-as-Tr(H)) prefix
/// transversals computed so far are returned; callers distinguish this by
/// re-checking `ctx->Check()`.
///
/// `max_size` (0 = unbounded) caps transversal cardinality: partial
/// transversals that grow past max_size are discarded after each edge.
/// Safe because Berge partials only ever grow — a partial larger than
/// the cap can never shrink back into a reportable transversal — so the
/// result is exactly the unbounded Tr(H) filtered to |T| ≤ max_size.
std::vector<AttributeSet> BergeMinimalTransversals(
    const Hypergraph& hypergraph, RunContext* ctx = nullptr,
    size_t max_size = 0);

/// Applies Tr twice: for a simple hypergraph H, Tr(Tr(H)) = H. Exposed so
/// the TANE comparator can rebuild cmax sets from lhs sets the way the
/// paper describes. Result is minimized and sorted.
std::vector<AttributeSet> DoubleTransversal(const Hypergraph& hypergraph,
                                            RunContext* ctx = nullptr);

}  // namespace depminer
