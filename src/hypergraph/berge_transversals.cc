#include "hypergraph/berge_transversals.h"

#include <algorithm>

namespace depminer {

std::vector<AttributeSet> BergeMinimalTransversals(
    const Hypergraph& hypergraph, RunContext* ctx, size_t max_size) {
  const Hypergraph simple =
      hypergraph.IsSimple() ? hypergraph : hypergraph.Minimized();

  // Tr of the empty hypergraph is {∅}: the empty set intersects all zero
  // edges.
  std::vector<AttributeSet> transversals = {AttributeSet()};
  for (const AttributeSet& edge : simple.edges()) {
    if (ctx != nullptr && ctx->StopRequested()) break;
    std::vector<AttributeSet> extended;
    extended.reserve(transversals.size() * edge.Count());
    for (const AttributeSet& t : transversals) {
      if (t.Intersects(edge)) {
        // Already covers the new edge; keep as-is.
        extended.push_back(t);
        continue;
      }
      edge.ForEach([&](AttributeId v) {
        AttributeSet grown = t;
        grown.Add(v);
        extended.push_back(grown);
      });
    }
    transversals = MinimalSets(std::move(extended));
    if (max_size != 0) {
      // Arity cap: partials only ever grow, so anything past the cap can
      // never come back under it — prune before the next edge multiplies.
      transversals.erase(
          std::remove_if(transversals.begin(), transversals.end(),
                         [max_size](const AttributeSet& t) {
                           return t.Count() > max_size;
                         }),
          transversals.end());
    }
  }
  SortSets(&transversals);
  return transversals;
}

std::vector<AttributeSet> DoubleTransversal(const Hypergraph& hypergraph,
                                            RunContext* ctx) {
  const Hypergraph simple = hypergraph.Minimized();
  std::vector<AttributeSet> tr = BergeMinimalTransversals(simple, ctx);
  Hypergraph tr_graph(simple.num_vertices(), std::move(tr));
  return BergeMinimalTransversals(tr_graph, ctx);
}

}  // namespace depminer
