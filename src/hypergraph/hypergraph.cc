#include "hypergraph/hypergraph.h"

namespace depminer {

bool Hypergraph::IsSimple() const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].Empty()) return false;
    for (size_t j = 0; j < edges_.size(); ++j) {
      if (i != j && edges_[i].IsSubsetOf(edges_[j]) && edges_[i] != edges_[j]) {
        return false;
      }
    }
  }
  // Duplicate edges also violate simplicity.
  for (size_t i = 0; i < edges_.size(); ++i) {
    for (size_t j = i + 1; j < edges_.size(); ++j) {
      if (edges_[i] == edges_[j]) return false;
    }
  }
  return true;
}

Hypergraph Hypergraph::Minimized() const {
  std::vector<AttributeSet> kept;
  kept.reserve(edges_.size());
  for (const AttributeSet& e : edges_) {
    if (!e.Empty()) kept.push_back(e);
  }
  kept = MinimalSets(std::move(kept));
  SortSets(&kept);
  return Hypergraph(num_vertices_, std::move(kept));
}

AttributeSet Hypergraph::VertexSupport() const {
  AttributeSet support;
  for (const AttributeSet& e : edges_) support = support.Union(e);
  return support;
}

bool Hypergraph::IsTransversal(const AttributeSet& t) const {
  for (const AttributeSet& e : edges_) {
    if (!t.Intersects(e)) return false;
  }
  return true;
}

bool Hypergraph::IsMinimalTransversal(const AttributeSet& t) const {
  if (!IsTransversal(t)) return false;
  // Minimal iff removing any single vertex breaks transversality.
  bool minimal = true;
  t.ForEach([&](AttributeId a) {
    AttributeSet reduced = t;
    reduced.Remove(a);
    if (IsTransversal(reduced)) minimal = false;
  });
  return minimal;
}

std::string Hypergraph::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += ", ";
    out += edges_[i].ToString();
  }
  out += '}';
  return out;
}

}  // namespace depminer
