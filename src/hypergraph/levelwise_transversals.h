#pragma once

#include <vector>

#include "common/run_context.h"
#include "hypergraph/hypergraph.h"

namespace depminer {

/// Statistics from one levelwise transversal computation, for ablation
/// benchmarks.
struct LevelwiseStats {
  size_t levels = 0;
  size_t candidates_generated = 0;
  size_t transversals_found = 0;
  /// Candidates the arity cap kept from being generated: the joins the
  /// prefix blocks of the last admitted level would have formed.
  size_t candidates_pruned = 0;
  /// False when a governing RunContext tripped mid-search; the returned
  /// transversals are then the ones found before the interrupted level.
  bool complete = true;
};

/// Computes the minimal transversals Tr(H) of a simple hypergraph with the
/// paper's levelwise Algorithm 5 (LEFT_HAND_SIDE).
///
/// Level i holds candidate vertex sets L_i of size i. Each candidate that
/// intersects every edge is a minimal transversal (minimality holds
/// because all of its subsets were candidates at earlier levels and were
/// removed the moment they became transversals); the remaining candidates
/// are joined Apriori-gen style [AS94] to form L_{i+1}, keeping only sets
/// all of whose i-subsets survive in L_i.
///
/// `hypergraph` is minimized internally if it is not already simple; the
/// transversals of H and of its ⊆-minimal edge set coincide.
///
/// `ctx` (optional) is checked once per level — the candidate count can
/// explode combinatorially between levels, so this is the natural
/// cooperative-cancellation granularity. On a trip the search stops,
/// `stats->complete` turns false and the transversals found so far are
/// returned.
///
/// `max_size` (0 = unbounded) caps the transversal cardinality: level
/// max_size is still tested but never expanded, so the candidates of
/// level max_size+1 are pruned *before* generation. The result is
/// exactly the unbounded Tr(H) filtered to |T| ≤ max_size — every
/// minimal transversal of size ≤ k appears as a candidate at level
/// |T| ≤ k regardless of what deeper levels would hold.
std::vector<AttributeSet> LevelwiseMinimalTransversals(
    const Hypergraph& hypergraph, LevelwiseStats* stats = nullptr,
    RunContext* ctx = nullptr, size_t max_size = 0);

}  // namespace depminer
