#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.h"

namespace depminer {

/// A hypergraph over the attribute universe {0, ..., n-1}: a collection of
/// edges, each an `AttributeSet`. A *simple* hypergraph (paper §2, after
/// [Ber76]) has non-empty edges none of which contains another.
///
/// In Dep-Miner the hypergraph of interest is cmax(dep(r), A), whose
/// minimal transversals are exactly lhs(dep(r), A).
class Hypergraph {
 public:
  Hypergraph() = default;
  Hypergraph(size_t num_vertices, std::vector<AttributeSet> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  size_t num_vertices() const { return num_vertices_; }
  const std::vector<AttributeSet>& edges() const { return edges_; }
  bool Empty() const { return edges_.empty(); }

  void AddEdge(const AttributeSet& e) { edges_.push_back(e); }

  /// True iff no edge is empty and no edge contains another.
  bool IsSimple() const;

  /// Returns the simple hypergraph with the same transversals: drops empty
  /// edge duplicates and non-minimal (superset) edges. Transversals only
  /// depend on the ⊆-minimal edges.
  Hypergraph Minimized() const;

  /// Union of all edges — the candidate vertex set for level 1 of the
  /// levelwise transversal search.
  AttributeSet VertexSupport() const;

  /// True iff `t` intersects every edge.
  bool IsTransversal(const AttributeSet& t) const;

  /// True iff `t` is a transversal and no proper subset of `t` is.
  bool IsMinimalTransversal(const AttributeSet& t) const;

  std::string ToString() const;

 private:
  size_t num_vertices_ = 0;
  std::vector<AttributeSet> edges_;
};

}  // namespace depminer
