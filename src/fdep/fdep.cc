#include "fdep/fdep.h"

#include <cstdio>

#include "common/stopwatch.h"
#include "core/agree_sets.h"
#include "core/max_sets.h"

namespace depminer {

std::string FdepStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "negative_cover=%zu specializations=%zu fds=%zu total=%.3fs",
                negative_cover_size, specializations, num_fds, total_seconds);
  return buf;
}

Result<FdepResult> FdepDiscover(const Relation& relation, RunContext* ctx) {
  const size_t n = relation.num_attributes();
  if (n == 0) return Status::InvalidArgument("relation has no attributes");
  if (n > AttributeSet::kMaxAttributes) {
    return Status::CapacityExceeded("too many attributes");
  }
  DEPMINER_CHECK_RUN(ctx);

  Stopwatch timer;
  FdepResult result;

  // Negative cover: FDEP compares every pair of tuples (its defining
  // O(n·p²) bottom-up step — deliberately kept, it is what distinguishes
  // the baseline); the maximal agree sets avoiding A are the maximal
  // invalid left-hand sides for A.
  const AgreeSetResult agree = ComputeAgreeSetsNaive(relation, ctx);
  if (!agree.status.ok()) {
    // A partial negative cover would under-constrain specialization and
    // admit invalid FDs, so induction never starts.
    result.stats.total_seconds = timer.ElapsedSeconds();
    result.complete = false;
    result.run_status = agree.status;
    return result;
  }
  const MaxSetResult negative = ComputeMaxSets(agree, /*num_threads=*/1, ctx);
  if (!negative.status.ok()) {
    // Attributes skipped by an interrupted CMAX_SET have an *empty* list
    // of invalid lhs, which specialization would read as "∅ → A holds".
    result.stats.total_seconds = timer.ElapsedSeconds();
    result.complete = false;
    result.run_status = negative.status;
    return result;
  }
  for (const auto& per_attr : negative.max_sets) {
    result.stats.negative_cover_size += per_attr.size();
  }

  const AttributeSet universe = AttributeSet::Universe(n);
  std::vector<FunctionalDependency> found;
  bool interrupted = false;
  for (AttributeId a = 0; a < n && !interrupted; ++a) {
    // Positive cover by specialization: start from the most general
    // hypothesis ∅ → A; each maximal invalid lhs M contradicts every
    // hypothesis H ⊆ M, which is replaced by its minimal specializations
    // H ∪ {b}, b ∉ M ∪ {A}; non-minimal survivors are dropped.
    std::vector<AttributeSet> hypotheses = {AttributeSet()};
    for (const AttributeSet& m : negative.max_sets[a]) {
      if (ctx != nullptr && ctx->limited()) {
        Status st = ctx->Check();
        if (!st.ok()) {
          // Hypotheses not yet refined against every invalid lhs are not
          // FDs; the attribute's partial state is dropped wholesale.
          result.complete = false;
          result.run_status = std::move(st);
          interrupted = true;
          break;
        }
      }
      std::vector<AttributeSet> next;
      next.reserve(hypotheses.size());
      for (const AttributeSet& h : hypotheses) {
        if (!h.IsSubsetOf(m)) {
          next.push_back(h);
          continue;
        }
        const AttributeSet outside =
            universe.Minus(m).Minus(AttributeSet::Single(a));
        outside.ForEach([&](AttributeId b) {
          AttributeSet grown = h;
          grown.Add(b);
          next.push_back(grown);
          ++result.stats.specializations;
        });
      }
      hypotheses = MinimalSets(std::move(next));
    }
    if (interrupted) break;
    for (const AttributeSet& h : hypotheses) {
      found.push_back({h, a});
    }
  }

  result.fds = FdSet(n, std::move(found));
  result.stats.num_fds = result.fds.size();
  result.stats.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace depminer
