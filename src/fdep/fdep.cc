#include "fdep/fdep.h"

#include "common/trace.h"
#include "fault/fault.h"
#include "core/agree_sets.h"
#include "core/max_sets.h"
#include "report/stats_format.h"

namespace depminer {

std::string FdepStats::ToString() const {
  StatsLineBuilder b;
  b.Count("negative_cover", negative_cover_size)
      .Count("specializations", specializations)
      .Count("pruned", candidates_pruned)
      .Count("fds", num_fds)
      .Seconds("total", total_seconds);
  return b.str();
}

Result<FdepResult> FdepDiscover(const Relation& relation, RunContext* ctx) {
  FdepOptions options;
  options.run_context = ctx;
  return FdepDiscover(relation, options);
}

Result<FdepResult> FdepDiscover(const Relation& relation,
                                const FdepOptions& options) {
  RunContext* ctx = options.run_context;
  const size_t n = relation.num_attributes();
  if (n == 0) return Status::InvalidArgument("relation has no attributes");
  if (n > AttributeSet::kMaxAttributes) {
    return Status::CapacityExceeded("too many attributes");
  }
  Status mining_status = options.mining.Validate();
  if (!mining_status.ok()) return mining_status;
  if (options.mining.max_g3_error > 0.0) {
    return Status::InvalidArgument(
        "approximate (g3-thresholded) discovery is TANE-only");
  }
  DEPMINER_CHECK_RUN(ctx);

  FdepResult result;
  // Span-owned accumulating timer; each exit path commits the elapsed
  // time with an explicit Stop() before returning.
  PhaseTimer phase_timer("phase/fdep", &result.stats.total_seconds);

  // Negative cover: FDEP compares every pair of tuples (its defining
  // O(n·p²) bottom-up step — deliberately kept, it is what distinguishes
  // the baseline); the maximal agree sets avoiding A are the maximal
  // invalid left-hand sides for A.
  const AgreeSetResult agree = ComputeAgreeSetsNaive(relation, ctx);
  if (!agree.status.ok()) {
    // A partial negative cover would under-constrain specialization and
    // admit invalid FDs, so induction never starts.
    phase_timer.Stop();
    result.complete = false;
    result.run_status = agree.status;
    return result;
  }
  const MaxSetResult negative = ComputeMaxSets(agree, /*num_threads=*/1, ctx);
  if (!negative.status.ok()) {
    // Attributes skipped by an interrupted CMAX_SET have an *empty* list
    // of invalid lhs, which specialization would read as "∅ → A holds".
    phase_timer.Stop();
    result.complete = false;
    result.run_status = negative.status;
    return result;
  }
  for (const auto& per_attr : negative.max_sets) {
    result.stats.negative_cover_size += per_attr.size();
  }
  DEPMINER_TRACE_COUNTER("fdep.negative_cover",
                         result.stats.negative_cover_size);
  DEPMINER_TRACE_SPAN(specialize_span, "fdep/specialize");

  const AttributeSet universe = AttributeSet::Universe(n);
  std::vector<FunctionalDependency> found;
  bool interrupted = false;
  for (AttributeId a = 0; a < n && !interrupted; ++a) {
    // Positive cover by specialization: start from the most general
    // hypothesis ∅ → A; each maximal invalid lhs M contradicts every
    // hypothesis H ⊆ M, which is replaced by its minimal specializations
    // H ∪ {b}, b ∉ M ∪ {A}; non-minimal survivors are dropped.
    std::vector<AttributeSet> hypotheses = {AttributeSet()};
    for (const AttributeSet& m : negative.max_sets[a]) {
      // One alloc poll per refinement round: a firing fault models the
      // specialization frontier failing to grow.
      DEPMINER_FAULT_ALLOC("alloc/fdep", ctx);
      if (ctx != nullptr && ctx->limited()) {
        Status st = ctx->Check();
        if (!st.ok()) {
          // Hypotheses not yet refined against every invalid lhs are not
          // FDs; the attribute's partial state is dropped wholesale.
          result.complete = false;
          result.run_status = std::move(st);
          interrupted = true;
          break;
        }
      }
      const size_t cap = options.mining.max_lhs_arity;
      std::vector<AttributeSet> next;
      next.reserve(hypotheses.size());
      for (const AttributeSet& h : hypotheses) {
        if (!h.IsSubsetOf(m)) {
          next.push_back(h);
          continue;
        }
        const AttributeSet outside =
            universe.Minus(m).Minus(AttributeSet::Single(a));
        if (cap != 0 && h.Count() == cap) {
          // Arity cap: every specialization of this contradicted
          // hypothesis would exceed the cap, so the hypothesis is
          // dropped and its replacements pruned before generation.
          // Surviving hypotheses of size ≤ cap are built from subset
          // ancestors (all of size ≤ cap), so they are unaffected.
          result.stats.candidates_pruned += outside.Count();
          continue;
        }
        outside.ForEach([&](AttributeId b) {
          AttributeSet grown = h;
          grown.Add(b);
          next.push_back(grown);
          ++result.stats.specializations;
        });
      }
      hypotheses = MinimalSets(std::move(next));
    }
    if (interrupted) break;
    for (const AttributeSet& h : hypotheses) {
      found.push_back({h, a});
    }
  }

  result.fds = FdSet(n, std::move(found));
  result.stats.num_fds = result.fds.size();
  DEPMINER_TRACE_COUNTER("fdep.specializations", result.stats.specializations);
  DEPMINER_TRACE_COUNTER("fdep.candidates_pruned",
                         result.stats.candidates_pruned);
  phase_timer.Stop();
  return result;
}

}  // namespace depminer
