#pragma once

#include <string>

#include "common/mining_options.h"
#include "common/run_context.h"
#include "common/status.h"
#include "fd/fd_set.h"
#include "relation/relation.h"

namespace depminer {

/// Options for an FDEP run.
struct FdepOptions {
  /// Search-space pruning knobs. `max_lhs_arity` drops contradicted
  /// size-k hypotheses instead of specializing them (their replacements
  /// would all exceed k); the output equals the unbounded cover filtered
  /// to |X| ≤ k. `max_g3_error > 0` is rejected (TANE-only).
  MiningOptions mining;
  /// Optional resource governance; see FdepDiscover.
  RunContext* run_context = nullptr;
};

/// Statistics of an FDEP run.
struct FdepStats {
  double total_seconds = 0;
  size_t negative_cover_size = 0;  ///< maximal invalid FD lhs, over all rhs
  size_t specializations = 0;      ///< candidate replacements explored
  /// Specializations the arity cap kept from being generated.
  size_t candidates_pruned = 0;
  size_t num_fds = 0;
  std::string ToString() const;
};

/// Result of an FDEP run.
struct FdepResult {
  FdSet fds;
  FdepStats stats;
  /// False when a governing RunContext tripped mid-run; `fds` then holds
  /// the positive covers of the attributes finished before the trip and
  /// `run_status` the cause.
  bool complete = true;
  Status run_status;
};

/// FDEP — bottom-up induction of functional dependencies (Savnik & Flach
/// [SF93], cited in the paper's related work), third baseline.
///
/// FDEP first builds the *negative cover*: for every pair of tuples, the
/// agree set X invalidates X → A for each A outside X; the maximal
/// invalid left-hand sides per attribute are exactly Dep-Miner's maximal
/// sets. The positive cover is then computed by specialization: starting
/// from the most general hypothesis ∅ → A, every hypothesis contradicted
/// by an invalid lhs is replaced by its minimal specializations (add one
/// attribute outside the contradicting set), keeping only the minimal
/// surviving hypotheses.
///
/// Produces the same minimal cover as Dep-Miner, TANE and FastFDs
/// (asserted by tests).
///
/// `ctx` (optional) governs the run: it is threaded into the pairwise
/// negative-cover scan and checked per attribute and per maximal invalid
/// lhs during specialization.
Result<FdepResult> FdepDiscover(const Relation& relation,
                                RunContext* ctx = nullptr);

/// Variant with pruning knobs (see FdepOptions).
Result<FdepResult> FdepDiscover(const Relation& relation,
                                const FdepOptions& options);

}  // namespace depminer
