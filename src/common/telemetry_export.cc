#include "common/telemetry_export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "report/json_writer.h"
#include "storage/atomic_file.h"

namespace depminer {

namespace {

/// `family/label` split on the FIRST '/': a label value may itself
/// contain '/' (e.g. a dataset path used as a series name).
std::pair<std::string, std::string> SplitFamilyLabel(const std::string& name) {
  const size_t slash = name.find('/');
  if (slash == std::string::npos) return {name, ""};
  return {name.substr(0, slash), name.substr(slash + 1)};
}

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; we map
/// everything else to '_' (and prepend '_' if the name starts with a
/// digit, which no registry name does today).
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Label values escape '\', '"' and newline per the exposition format.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

const char* LabelKeyForFamily(const std::string& family) {
  return family == "phase_duration_ns" ? "phase" : "label";
}

/// `{phase="agree"}` or "" when the name carried no label.
std::string LabelClause(const std::string& family, const std::string& label) {
  if (label.empty()) return "";
  std::string out = "{";
  out += LabelKeyForFamily(family);
  out += "=\"";
  out += EscapeLabelValue(label);
  out += "\"}";
  return out;
}

void AppendHeader(std::string* out, const std::string& metric,
                  const char* type, std::map<std::string, bool>* seen) {
  // One HELP/TYPE pair per family, before its first sample, regardless of
  // how many labeled series the family has.
  if ((*seen)[metric]) return;
  (*seen)[metric] = true;
  out->append("# HELP ");
  out->append(metric);
  out->append(" depminer ");
  out->append(type);
  out->append("\n# TYPE ");
  out->append(metric);
  out->append(" ");
  out->append(type);
  out->append("\n");
}

void AppendLine(std::string* out, const std::string& series, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
  *out += series;
  *out += buf;
}

}  // namespace

Result<MetricsFormat> MetricsFormatForPath(const std::string& path) {
  if (path.ends_with(".prom")) return MetricsFormat::kPrometheus;
  if (path.ends_with(".json")) return MetricsFormat::kJson;
  return Status::InvalidArgument(
      "metrics file must end in .prom or .json, got \"" + path + "\"");
}

TelemetrySnapshot SnapshotOf(const TraceSession& session) {
  TelemetrySnapshot snapshot;
  snapshot.wall_seconds = session.wall_seconds();
  snapshot.counters = session.counters();
  snapshot.gauges = session.gauges();
  snapshot.histograms = session.histograms();
  snapshot.samples = session.samples();
  return snapshot;
}

std::string PrometheusText(const TelemetrySnapshot& snapshot) {
  std::string out;
  std::map<std::string, bool> seen;  // families with HELP/TYPE emitted
  char buf[64];

  out += "# HELP depminer_wall_seconds depminer gauge\n";
  out += "# TYPE depminer_wall_seconds gauge\n";
  std::snprintf(buf, sizeof(buf), "depminer_wall_seconds %.9g\n",
                snapshot.wall_seconds);
  out += buf;

  for (const auto& [name, value] : snapshot.counters) {
    const auto [family, label] = SplitFamilyLabel(name);
    const std::string metric =
        "depminer_" + SanitizeMetricName(family) + "_total";
    AppendHeader(&out, metric, "counter", &seen);
    AppendLine(&out, metric + LabelClause(family, label), value);
  }

  for (const auto& [name, value] : snapshot.gauges) {
    const auto [family, label] = SplitFamilyLabel(name);
    const std::string metric = "depminer_" + SanitizeMetricName(family);
    AppendHeader(&out, metric, "gauge", &seen);
    AppendLine(&out, metric + LabelClause(family, label), value);
  }

  for (const auto& [name, hist] : snapshot.histograms) {
    const auto [family, label] = SplitFamilyLabel(name);
    const std::string metric = "depminer_" + SanitizeMetricName(family);
    AppendHeader(&out, metric, "histogram", &seen);
    const char* key = LabelKeyForFamily(family);
    auto bucket_series = [&](const std::string& le_text) {
      std::string series = metric + "_bucket{";
      if (!label.empty()) {
        series += key;
        series += "=\"";
        series += EscapeLabelValue(label);
        series += "\",";
      }
      series += "le=\"" + le_text + "\"}";
      return series;
    };
    // Cumulative buckets. Empty buckets are skipped and the series stops
    // once the cumulative count reaches the total (any boundary subset
    // is valid exposition); `le="+Inf"` always closes the series and
    // equals _count, as scrapers require.
    uint64_t cum = 0;
    bool emitted_inf = false;
    for (size_t i = 0; i < TraceHistogram::kBuckets; ++i) {
      if (hist.buckets[i] == 0) continue;
      cum += hist.buckets[i];
      const uint64_t ub = TraceHistogram::BucketUpperBound(i);
      if (ub == UINT64_MAX) {
        AppendLine(&out, bucket_series("+Inf"), cum);
        emitted_inf = true;
      } else {
        std::snprintf(buf, sizeof(buf), "%" PRIu64, ub);
        AppendLine(&out, bucket_series(buf), cum);
      }
      if (cum == hist.count) break;
    }
    if (!emitted_inf) {
      AppendLine(&out, bucket_series("+Inf"), hist.count);
    }
    AppendLine(&out, metric + "_sum" + LabelClause(family, label), hist.sum);
    AppendLine(&out, metric + "_count" + LabelClause(family, label),
               hist.count);
  }
  return out;
}

std::string TelemetryJson(const TelemetrySnapshot& snapshot) {
  JsonWriter w;
  w.OpenObject();
  w.Key("telemetry_version").Value(static_cast<int64_t>(1));
  w.Key("wall_seconds").Value(snapshot.wall_seconds);
  w.Key("counters").OpenObject();
  for (const auto& [name, v] : snapshot.counters) w.Key(name).Value(v);
  w.CloseObject();
  w.Key("gauges").OpenObject();
  for (const auto& [name, v] : snapshot.gauges) w.Key(name).Value(v);
  w.CloseObject();
  w.Key("histograms").OpenObject();
  for (const auto& [name, h] : snapshot.histograms) {
    w.Key(name).OpenObject();
    w.Key("count").Value(h.count);
    w.Key("sum").Value(h.sum);
    w.Key("buckets").OpenArray();
    for (size_t i = 0; i < TraceHistogram::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      const uint64_t ub = TraceHistogram::BucketUpperBound(i);
      w.OpenArray();
      if (ub == UINT64_MAX) {
        w.Value(static_cast<int64_t>(-1));  // stands in for +Inf
      } else {
        w.Value(ub);
      }
      w.Value(h.buckets[i]);
      w.CloseArray();
    }
    w.CloseArray();
    w.CloseObject();
  }
  w.CloseObject();
  w.Key("samples").OpenArray();
  for (const TraceSampleEvent& s : snapshot.samples) {
    w.OpenObject();
    w.Key("series").Value(s.series);
    w.Key("t_ns").Value(static_cast<int64_t>(s.t_ns));
    w.Key("value").Value(s.value);
    w.CloseObject();
  }
  w.CloseArray();
  w.CloseObject();
  return w.str();
}

std::string PrometheusText(const TraceSession& session) {
  return PrometheusText(SnapshotOf(session));
}

std::string TelemetryJson(const TraceSession& session) {
  return TelemetryJson(SnapshotOf(session));
}

Status WriteMetricsFile(const TelemetrySnapshot& snapshot,
                        const std::string& path) {
  Result<MetricsFormat> format = MetricsFormatForPath(path);
  if (!format.ok()) return format.status();
  const std::string body = format.value() == MetricsFormat::kPrometheus
                               ? PrometheusText(snapshot)
                               : TelemetryJson(snapshot);
  // Atomic publication: the serve-mode daemon rewrites this file while
  // scrapers read it concurrently.
  return AtomicWriteFile(path, body, ".metrics-tmp");
}

Status WriteMetricsFile(const TraceSession& session, const std::string& path) {
  return WriteMetricsFile(SnapshotOf(session), path);
}

}  // namespace depminer
