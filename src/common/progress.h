#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/trace.h"

namespace depminer {

/// Process-wide live progress: the pipeline publishes which phase it is
/// in and how much of that phase's work is done; a `ProgressHeartbeat`
/// (the CLI's `--progress` flag) reads it periodically and emits a
/// one-line update with an ETA.
///
/// Publication is lock-free — a phase change is three relaxed stores, a
/// tick one relaxed fetch_add — and gated on one relaxed load when
/// tracking is off, so instrumented loops pay nothing measurable.
/// Tick with *batched* deltas (per morsel, per level, per chunk), never
/// per element. Phase/unit strings must be static (string literals).
///
/// Instrument through the DEPMINER_PROGRESS_* macros so a
/// `-DDEPMINER_TRACING=OFF` build folds the sites away entirely.
struct ProgressSnapshot {
  bool tracking = false;     ///< EnableProgressTracking(true) was called
  const char* phase = "";    ///< current phase name ("" before the first)
  const char* unit = "";     ///< work unit ("rows", "couples", "levels", ...)
  uint64_t done = 0;         ///< units completed in the current phase
  uint64_t total = 0;        ///< units expected; 0 = unknown
  int64_t phase_elapsed_ns = 0;  ///< time since the phase began
};

/// Turns publication on/off (off by default: the miners' ticks are
/// no-ops until a front end opts in). Resets the current phase state.
void EnableProgressTracking(bool enabled);
bool ProgressTrackingEnabled();

/// Declares the start of a phase with `total` expected units of work
/// (0 when the total is unknown up front). Resets the done counter.
void ProgressBeginPhase(const char* phase, const char* unit, uint64_t total);

/// Adds `delta` completed units to the current phase.
void ProgressAdvance(uint64_t delta);

/// Raises the current phase's expected total (phases that discover work
/// as they go, e.g. chunked streams). Keeps the maximum.
void ProgressExpandTotal(uint64_t total);

/// A consistent-enough snapshot for display (fields are read
/// individually; a torn read across a phase boundary merely mislabels
/// one heartbeat line).
ProgressSnapshot CurrentProgress();

/// Background heartbeat: every `period_ms`, emits the current progress
/// as a structured log event (subsystem "progress", info level) — a
/// human one-liner on stderr by default, a JSON-lines record under
/// `--log-json`. Emits once immediately at Start() and once at Stop(),
/// so even a run shorter than the period produces output. Also feeds the
/// `sampler/progress_done` trace series when a session is active.
///
/// Stop order: Stop() the heartbeat before TraceSession::Stop() (the
/// session contract — no instrumented work may race the merge).
class ProgressHeartbeat {
 public:
  explicit ProgressHeartbeat(int period_ms);
  ~ProgressHeartbeat();
  ProgressHeartbeat(const ProgressHeartbeat&) = delete;
  ProgressHeartbeat& operator=(const ProgressHeartbeat&) = delete;

  void Start();
  void Stop();

 private:
  void Emit(const char* event);
  void Loop();

  int period_ms_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
};

#if DEPMINER_TRACING_ENABLED
#define DEPMINER_PROGRESS_PHASE(phase, unit, total) \
  ::depminer::ProgressBeginPhase((phase), (unit), (total))
#define DEPMINER_PROGRESS_TICK(delta) ::depminer::ProgressAdvance((delta))
#define DEPMINER_PROGRESS_TOTAL(total) \
  ::depminer::ProgressExpandTotal((total))
#else
#define DEPMINER_PROGRESS_PHASE(phase, unit, total) \
  do {                                              \
    (void)sizeof((phase));                          \
    (void)sizeof((unit));                           \
    (void)sizeof((total));                          \
  } while (false)
#define DEPMINER_PROGRESS_TICK(delta) \
  do {                                \
    (void)sizeof((delta));            \
  } while (false)
#define DEPMINER_PROGRESS_TOTAL(total) \
  do {                                 \
    (void)sizeof((total));             \
  } while (false)
#endif

}  // namespace depminer
