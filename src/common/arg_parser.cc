#include "common/arg_parser.h"

#include <cstdlib>

#include "common/strings.h"

namespace depminer {

Status ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "";  // bare boolean flag
    }
  }
  return Status::OK();
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t ArgParser::GetInt(const std::string& name, int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::GetDouble(const std::string& name, double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  double v = default_value;
  if (!ParseDouble(it->second, &v)) return default_value;
  return v;
}

bool ArgParser::GetBool(const std::string& name, bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

std::vector<int64_t> ArgParser::GetIntList(
    const std::string& name, std::vector<int64_t> default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  std::vector<int64_t> out;
  for (const std::string& part : Split(it->second, ',')) {
    if (part.empty()) continue;
    out.push_back(std::strtoll(part.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace depminer
