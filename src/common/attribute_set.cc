#include "common/attribute_set.h"

#include <algorithm>
#include <cassert>

namespace depminer {

AttributeSet AttributeSet::Universe(size_t n) {
  assert(n <= kMaxAttributes);
  AttributeSet s;
  if (n == 0) return s;
  if (n >= 64) {
    s.words_[0] = ~uint64_t{0};
    const size_t rest = n - 64;
    s.words_[1] = rest == 64 ? ~uint64_t{0}
                             : ((uint64_t{1} << rest) - 1);
  } else {
    s.words_[0] = (uint64_t{1} << n) - 1;
  }
  return s;
}

AttributeSet AttributeSet::FromLetters(const std::string& letters) {
  AttributeSet s;
  for (char c : letters) {
    if (c >= 'A' && c <= 'Z') {
      s.Add(static_cast<AttributeId>(c - 'A'));
    } else if (c >= 'a' && c <= 'z') {
      s.Add(static_cast<AttributeId>(c - 'a'));
    }
  }
  return s;
}

size_t AttributeSet::Count() const {
  return static_cast<size_t>(__builtin_popcountll(words_[0]) +
                             __builtin_popcountll(words_[1]));
}

AttributeId AttributeSet::Min() const {
  assert(!Empty());
  if (words_[0] != 0) {
    return static_cast<AttributeId>(__builtin_ctzll(words_[0]));
  }
  return static_cast<AttributeId>(64 + __builtin_ctzll(words_[1]));
}

AttributeId AttributeSet::Max() const {
  assert(!Empty());
  if (words_[1] != 0) {
    return static_cast<AttributeId>(127 - __builtin_clzll(words_[1]));
  }
  return static_cast<AttributeId>(63 - __builtin_clzll(words_[0]));
}

void AttributeSet::AppendMembers(std::vector<AttributeId>* out) const {
  ForEach([out](AttributeId a) { out->push_back(a); });
}

std::vector<AttributeId> AttributeSet::Members() const {
  std::vector<AttributeId> out;
  out.reserve(Count());
  AppendMembers(&out);
  return out;
}

std::string AttributeSet::ToString() const {
  if (Empty()) return "{}";
  if (Max() < 26) {
    std::string out;
    ForEach([&out](AttributeId a) { out.push_back(static_cast<char>('A' + a)); });
    return out;
  }
  std::string out = "{";
  bool first = true;
  ForEach([&](AttributeId a) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(a);
  });
  out += '}';
  return out;
}

std::string AttributeSet::ToString(const std::vector<std::string>& names) const {
  std::string out;
  bool first = true;
  ForEach([&](AttributeId a) {
    if (!first) out += ',';
    first = false;
    out += a < names.size() ? names[a] : std::to_string(a);
  });
  return out;
}

void SortSets(std::vector<AttributeSet>* sets) {
  std::sort(sets->begin(), sets->end(),
            [](const AttributeSet& a, const AttributeSet& b) {
              const size_t ca = a.Count(), cb = b.Count();
              if (ca != cb) return ca < cb;
              // Lexicographic by members (lowest attribute first), so that
              // "AB" < "AC" < "BC" the way a reader expects.
              return a.LexLess(b);
            });
}

}  // namespace depminer
