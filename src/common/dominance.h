#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/attribute_set.h"

namespace depminer {

/// Instruction-set backend for the dominance kernel's batched bitmap
/// loops (posting intersections and the SoA survivor scan). The scalar
/// path is the semantic oracle; wider backends must produce bit-identical
/// survivors, which the dominance tests enforce on random families and
/// the corpus determinism suite enforces end to end across all miners.
enum class DominanceBackend {
  kScalar,  ///< portable 64-bit words, 4-way unrolled
  kAvx2,    ///< 256-bit AVX2 lanes (4 id-bitmap words per op)
};

/// True when the host CPU can execute `backend` (kScalar always can).
bool DominanceBackendSupported(DominanceBackend backend);

/// The backend the kernel is currently dispatching to. Resolved once at
/// first use: AVX2 when the CPU supports it, scalar otherwise.
DominanceBackend ActiveDominanceBackend();

/// Forces the kernel onto `backend` (silently falling back to scalar if
/// the CPU lacks it) and returns the previously active backend. Used by
/// the scalar-vs-SIMD differential tests and benches; thread-safe, but
/// flipping it mid-query only affects subsequent queries.
DominanceBackend SetDominanceBackend(DominanceBackend backend);

const char* ToString(DominanceBackend backend);

/// Subset-dominance kernel: an inverted index over a family of attribute
/// sets that answers "does the family contain a proper superset (resp.
/// subset) of X?" in O(postings) bitmap words instead of O(|S|) pairwise
/// subset tests.
///
/// Layout. Sets are identified by their position in the indexed family.
/// For every attribute `a` the index keeps a posting list — the id-bitmap
/// of the sets containing `a`, one bit per set, packed into words. A
/// superset query intersects the postings of X's members: the surviving
/// ids are exactly the sets containing every attribute of X, i.e. X's
/// supersets. A subset query unions the postings of the attributes
/// *outside* X: the ids missing from the union are the sets avoiding
/// everything outside X, i.e. X's subsets.
///
/// Cardinality bucketing. The family must be sorted by cardinality
/// (non-increasing for superset queries, non-decreasing for subset
/// queries). A *proper* superset of X is strictly larger than X, so in
/// the sorted order every candidate lives in the prefix of ids whose
/// cardinality exceeds |X| — queries intersect only that prefix's words,
/// and the prefix boundary per cardinality is precomputed. Because the
/// family is deduplicated, no equal-cardinality set can dominate X, so
/// the strict prefix needs no self-exclusion bookkeeping.
///
/// The index is immutable after construction: concurrent queries from
/// parallel lanes are safe as long as each lane owns its scratch buffer.
/// This is what lets `ComputeMaxSets` derive all per-attribute
/// max(dep(r), A) families from one shared index in parallel.
class DominanceIndex {
 public:
  /// The cardinality order the indexed family is sorted by.
  enum class Order {
    kNonIncreasing,  ///< largest first — enables HasProperSupersetOf
    kNonDecreasing,  ///< smallest first — enables HasProperSubsetOf
  };

  /// Indexes `family`, which must be duplicate-free and sorted by
  /// `order`. Posting rows are allocated for attributes
  /// [0, max(num_attributes, highest attribute present + 1)); passing
  /// the schema width lets callers query `Postings` for attributes no
  /// set mentions (their row is all-zero).
  DominanceIndex(const std::vector<AttributeSet>& family, Order order,
                 size_t num_attributes = 0);

  size_t num_sets() const { return num_sets_; }
  /// Words per id-bitmap; the size scratch buffers must have.
  size_t words_per_bitmap() const { return words_; }
  /// Heap footprint of the postings, for RunContext memory accounting.
  size_t bytes() const { return postings_.capacity() * sizeof(uint64_t); }

  /// The id-bitmap of sets containing `a` (all-zero for an absent
  /// attribute). Valid for `a` < the row count fixed at construction.
  const uint64_t* Postings(AttributeId a) const {
    return postings_.data() + static_cast<size_t>(a) * words_;
  }

  /// True iff the family contains a proper superset of `s`, optionally
  /// restricted to ids whose bit is *clear* in `exclude` (an id-bitmap,
  /// e.g. a posting row — how CMAX_SET skips sets containing the probe
  /// attribute). `scratch` must hold `words_per_bitmap()` words and is
  /// clobbered. Requires Order::kNonIncreasing.
  bool HasProperSupersetOf(const AttributeSet& s, const uint64_t* exclude,
                           uint64_t* scratch) const;

  /// True iff the family contains a proper subset of `s` (same `exclude`
  /// and `scratch` contracts). Requires Order::kNonDecreasing.
  bool HasProperSubsetOf(const AttributeSet& s, const uint64_t* exclude,
                         uint64_t* scratch) const;

 private:
  size_t num_sets_ = 0;
  size_t words_ = 0;
  size_t rows_ = 0;
  Order order_;
  /// rows_ × words_ posting bitmaps, row-major by attribute.
  std::vector<uint64_t> postings_;
  /// strict_prefix_[c]: number of ids strictly before cardinality c in
  /// the sort order (count > c for kNonIncreasing, < c for
  /// kNonDecreasing) — the only ids that can properly dominate a set of
  /// cardinality c.
  size_t strict_prefix_[AttributeSet::kMaxAttributes + 1];
  /// Union of all indexed sets; subset queries union postings over
  /// support \ s instead of the whole schema.
  AttributeSet support_;
};

/// Reference quadratic implementations of the Max⊆ / Min⊆ filters: the
/// plain incremental survivor scan the kernel replaced. Retained as the
/// oracle for the dominance property tests and as the baseline the
/// `bench_ablation_dominance` ablation measures against. (The kernel's
/// own small-family path is the *batched* survivor scan — same survivors,
/// SoA word columns, backend-dispatched — so the dispatch never regresses
/// below this baseline; see the measured cutoff in dominance.cc.)
/// Semantics are identical to `MaximalSets` / `MinimalSets` (see
/// attribute_set.h), including output order.
std::vector<AttributeSet> MaximalSetsNaive(std::vector<AttributeSet> sets);
std::vector<AttributeSet> MinimalSetsNaive(std::vector<AttributeSet> sets);

}  // namespace depminer
