#include "common/run_context.h"

#include <string>

#include "fault/fault.h"

namespace depminer {

Status RunContext::Check() const {
  if (!limited()) return Status::OK();

  // A forced verdict (allocation failure surfaced via ForceTrip, or an
  // injected fault) outranks the real limits: the stage that forced it
  // already knows the run cannot continue.
  const int forced = forced_code_.load(std::memory_order_relaxed);
  if (forced != static_cast<int>(StatusCode::kOk)) {
    const StatusCode code = static_cast<StatusCode>(forced);
    switch (code) {
      case StatusCode::kCancelled:
        return Status::Cancelled("run force-tripped: cancelled");
      case StatusCode::kDeadlineExceeded:
        return Status::DeadlineExceeded("run force-tripped: deadline");
      default:
        return Status::CapacityExceeded(
            "working-set allocation failed (forced capacity trip)");
    }
  }

  if (cancelled_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("run cancelled");
  }

  if (DEPMINER_FAULT_FIRES("deadline/jitter")) {
    // Latch: a one-shot jitter must look like a real (permanent) deadline
    // trip to every later check, or lanes would disagree on the verdict.
    forced_code_.store(static_cast<int>(StatusCode::kDeadlineExceeded),
                       std::memory_order_relaxed);
    return Status::DeadlineExceeded("injected fault: deadline/jitter");
  }

  const int64_t deadline_ns = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline_ns != kNoDeadline) {
    const int64_t now_ns = Clock::now().time_since_epoch().count();
    if (now_ns > deadline_ns) {
      return Status::DeadlineExceeded("run deadline exceeded");
    }
  }

  const size_t budget = budget_bytes_.load(std::memory_order_relaxed);
  if (budget != 0) {
    const size_t used = bytes_used_.load(std::memory_order_relaxed);
    if (used > budget) {
      return Status::CapacityExceeded(
          "memory budget exceeded: " + std::to_string(used) + " bytes in use, "
          "budget " + std::to_string(budget));
    }
  }
  return Status::OK();
}

}  // namespace depminer
