#include "common/run_context.h"

#include <string>

namespace depminer {

Status RunContext::Check() const {
  if (!limited()) return Status::OK();

  if (cancelled_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("run cancelled");
  }

  const int64_t deadline_ns = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline_ns != kNoDeadline) {
    const int64_t now_ns = Clock::now().time_since_epoch().count();
    if (now_ns > deadline_ns) {
      return Status::DeadlineExceeded("run deadline exceeded");
    }
  }

  const size_t budget = budget_bytes_.load(std::memory_order_relaxed);
  if (budget != 0) {
    const size_t used = bytes_used_.load(std::memory_order_relaxed);
    if (used > budget) {
      return Status::CapacityExceeded(
          "memory budget exceeded: " + std::to_string(used) + " bytes in use, "
          "budget " + std::to_string(budget));
    }
  }
  return Status::OK();
}

}  // namespace depminer
