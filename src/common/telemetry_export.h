#pragma once

#include <string>

#include "common/status.h"
#include "common/trace.h"

namespace depminer {

/// Exporters turning a stopped `TraceSession` into scrape-able metrics:
/// Prometheus text exposition (format 0.0.4) and a versioned JSON
/// document. The CLI's `--metrics-out=FILE` routes through
/// `WriteMetricsFile`, picking the format from the file extension.
///
/// ## Naming taxonomy
///
/// Registry names follow a `family/label` convention: everything before
/// the first '/' is the metric family, the remainder is the label value
/// (e.g. `phase_duration_ns/agree` is the `agree` series of the
/// `phase_duration_ns` family). Exported names are prefixed `depminer_`
/// and sanitized to `[a-zA-Z0-9_]` ('/' and other separators become
/// '_'). Specifically:
///
///  - counters   → `depminer_<family>_total{label="..."}`  (type counter)
///  - gauges     → `depminer_<family>{label="..."}`        (type gauge)
///  - histograms → `depminer_<family>_bucket{label="...",le="..."}` plus
///                 `_sum` and `_count`                      (type histogram)
///
/// The label key is `phase` for the `phase_duration_ns` family and
/// `label` otherwise. A name without '/' exports with no labels. The
/// session wall clock exports as `depminer_wall_seconds`.
enum class MetricsFormat {
  kPrometheus,  ///< text exposition, one metric per line
  kJson,        ///< versioned JSON document (telemetry_version)
};

/// Picks the format from the path extension: `.prom` → Prometheus,
/// `.json` → JSON; anything else is InvalidArgument (the CLI surfaces
/// this as a usage error, exit 2).
Result<MetricsFormat> MetricsFormatForPath(const std::string& path);

/// Renders the session's merged counters, gauges and histograms as
/// Prometheus text exposition. Histogram buckets are cumulative and end
/// with `le="+Inf"` == `_count`, as the format requires; empty leading
/// buckets are elided (any boundary subset is valid exposition).
std::string PrometheusText(const TraceSession& session);

/// Renders the session as one JSON object:
/// `{"telemetry_version":1,"wall_seconds":...,"counters":{...},
///   "gauges":{...},"histograms":{name:{"count":..,"sum":..,
///   "buckets":[[upper_bound,count],...]}},"samples":[...]}`.
/// Bucket bounds are inclusive upper bounds; the overflow bucket's bound
/// is -1 (standing in for +Inf). Samples carry session-relative
/// timestamps in nanoseconds.
std::string TelemetryJson(const TraceSession& session);

/// Writes the session in the format implied by `path`'s extension.
/// Call after `TraceSession::Stop()`.
Status WriteMetricsFile(const TraceSession& session, const std::string& path);

}  // namespace depminer
