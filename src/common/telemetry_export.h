#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"

namespace depminer {

/// Exporters turning a stopped `TraceSession` into scrape-able metrics:
/// Prometheus text exposition (format 0.0.4) and a versioned JSON
/// document. The CLI's `--metrics-out=FILE` routes through
/// `WriteMetricsFile`, picking the format from the file extension.
///
/// ## Naming taxonomy
///
/// Registry names follow a `family/label` convention: everything before
/// the first '/' is the metric family, the remainder is the label value
/// (e.g. `phase_duration_ns/agree` is the `agree` series of the
/// `phase_duration_ns` family). Exported names are prefixed `depminer_`
/// and sanitized to `[a-zA-Z0-9_]` ('/' and other separators become
/// '_'). Specifically:
///
///  - counters   → `depminer_<family>_total{label="..."}`  (type counter)
///  - gauges     → `depminer_<family>{label="..."}`        (type gauge)
///  - histograms → `depminer_<family>_bucket{label="...",le="..."}` plus
///                 `_sum` and `_count`                      (type histogram)
///
/// The label key is `phase` for the `phase_duration_ns` family and
/// `label` otherwise. A name without '/' exports with no labels. The
/// session wall clock exports as `depminer_wall_seconds`.
enum class MetricsFormat {
  kPrometheus,  ///< text exposition, one metric per line
  kJson,        ///< versioned JSON document (telemetry_version)
};

/// Picks the format from the path extension: `.prom` → Prometheus,
/// `.json` → JSON; anything else is InvalidArgument (the CLI surfaces
/// this as a usage error, exit 2).
Result<MetricsFormat> MetricsFormatForPath(const std::string& path);

/// A point-in-time copy of metric registries, decoupled from the
/// process-global single-active `TraceSession`. One-shot CLI runs build
/// it from a stopped session (`SnapshotOf`); the serve-mode daemon —
/// which must export *while running*, and per-request, neither of which
/// the global session supports — assembles one from its own atomic
/// counters and mutex-guarded histograms every time the metrics file is
/// refreshed. Names follow the same `family/label` convention.
struct TelemetrySnapshot {
  double wall_seconds = 0.0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  std::map<std::string, TraceHistogram> histograms;
  std::vector<TraceSampleEvent> samples;
};

/// Copies a stopped session's merged registries into a snapshot.
TelemetrySnapshot SnapshotOf(const TraceSession& session);

/// Renders the snapshot's counters, gauges and histograms as Prometheus
/// text exposition. Histogram buckets are cumulative and end with
/// `le="+Inf"` == `_count`, as the format requires; empty leading
/// buckets are elided (any boundary subset is valid exposition).
std::string PrometheusText(const TelemetrySnapshot& snapshot);

/// Renders the snapshot as one JSON object:
/// `{"telemetry_version":1,"wall_seconds":...,"counters":{...},
///   "gauges":{...},"histograms":{name:{"count":..,"sum":..,
///   "buckets":[[upper_bound,count],...]}},"samples":[...]}`.
/// Bucket bounds are inclusive upper bounds; the overflow bucket's bound
/// is -1 (standing in for +Inf). Samples carry session-relative
/// timestamps in nanoseconds.
std::string TelemetryJson(const TelemetrySnapshot& snapshot);

/// Session conveniences (SnapshotOf composed with the renderers).
std::string PrometheusText(const TraceSession& session);
std::string TelemetryJson(const TraceSession& session);

/// Writes the metrics in the format implied by `path`'s extension. The
/// file is published atomically (storage/atomic_file) so a scraper
/// never reads a torn exposition — the serve-mode daemon rewrites it
/// while live.
Status WriteMetricsFile(const TelemetrySnapshot& snapshot,
                        const std::string& path);
Status WriteMetricsFile(const TraceSession& session, const std::string& path);

}  // namespace depminer
