#include "common/status.h"

namespace depminer {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace depminer
