#include "common/mining_options.h"

namespace depminer {

Status MiningOptions::Validate() const {
  if (max_g3_error < 0.0 || max_g3_error >= 1.0) {
    return Status::InvalidArgument("max_g3_error must be in [0, 1)");
  }
  return Status::OK();
}

}  // namespace depminer
