#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/run_context.h"

namespace depminer {

/// Background resource sampler: while running, snapshots process and
/// run-governance state at a fixed period into the active trace session
/// as sampled time series (`TraceSampleValue`), so a chrome trace shows
/// resource usage as counter tracks above the spans. Series:
///
///   sampler/rss_bytes            process resident set (Linux; 0 elsewhere)
///   sampler/runctx_bytes         RunContext working-set bytes charged
///   sampler/runctx_budget_bytes  armed memory budget (constant track)
///   sampler/deadline_slack_ms    ms until the armed deadline (may go <0)
///   sampler/pool_queue_depth     shared worker pool queue depth
///   sampler/progress_done        current phase's done counter
///
/// Also folds the RSS peak into the `sampler/rss_peak_bytes` gauge.
/// Budget/deadline series are only emitted when a RunContext is attached
/// and the corresponding limit is armed.
///
/// Lifecycle: Start() after TraceSession::Start(), Stop() BEFORE
/// TraceSession::Stop() — the session contract forbids instrumented work
/// racing the merge, and the sampler is instrumented work. Stop() joins
/// the thread; destruction stops implicitly. With no active session the
/// sampler idles (each tick is one atomic load).
struct ResourceSamplerOptions {
  int period_ms = 50;                      ///< sampling period
  const RunContext* run_context = nullptr; ///< budget/deadline source
};

class ResourceSampler {
 public:
  explicit ResourceSampler(const ResourceSamplerOptions& options);
  ~ResourceSampler();
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  void Start();
  void Stop();

 private:
  void SampleOnce();
  void Loop();

  ResourceSamplerOptions options_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
};

/// Current process resident set size in bytes, read from
/// /proc/self/statm. Returns 0 on platforms without procfs.
uint64_t CurrentRssBytes();

}  // namespace depminer
