#include "common/file_reader.h"

#include <cerrno>
#include <cstring>
#include <streambuf>

#include <fcntl.h>
#include <unistd.h>

#include "fault/fault.h"

namespace depminer {

namespace {

bool IsTransientErrno(int err) {
  return err == EIO || err == EAGAIN
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
         || err == EWOULDBLOCK
#endif
      ;
}

}  // namespace

class RetryingFileStream::Buf : public std::streambuf {
 public:
  Buf(const std::string& path, ReadRetryPolicy policy)
      : path_(path), policy_(policy) {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
      status_ = Status::IoError("cannot open '" + path +
                                "' for reading: " + std::strerror(errno));
    }
  }

  ~Buf() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool is_open() const { return fd_ >= 0; }
  const Status& status() const { return status_; }
  size_t retries() const { return retries_; }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    if (fd_ < 0 || !status_.ok()) return traits_type::eof();
    const ssize_t got = ReadWithRetry(buffer_, kBufSize);
    if (got <= 0) return traits_type::eof();
    setg(buffer_, buffer_, buffer_ + got);
    return traits_type::to_int_type(*gptr());
  }

 private:
  static constexpr size_t kBufSize = 64 * 1024;

  /// One raw read(2), with the fault layer's syscall-boundary injections:
  /// a simulated EINTR or EIO before the real call, or a forced 1-byte
  /// short read (which the buffering loop must absorb without data loss).
  ssize_t ReadRaw(char* dst, size_t n) {
    if (DEPMINER_FAULT_FIRES("io/csv-eintr")) {
      errno = EINTR;
      return -1;
    }
    if (DEPMINER_FAULT_FIRES("io/csv-read")) {
      errno = EIO;
      return -1;
    }
    if (DEPMINER_FAULT_FIRES("io/csv-short-read") && n > 1) n = 1;
    return ::read(fd_, dst, n);
  }

  ssize_t ReadWithRetry(char* dst, size_t n) {
    int eintr_left = policy_.max_eintr_retries;
    int attempts_left = policy_.max_attempts;
    uint32_t backoff_us = policy_.initial_backoff_us;
    for (;;) {
      const ssize_t got = ReadRaw(dst, n);
      if (got >= 0) return got;
      const int err = errno;
      if (err == EINTR) {
        if (eintr_left-- > 0) {
          ++retries_;
          continue;
        }
        status_ = Status::IoError("'" + path_ +
                                  "': EINTR retry budget exhausted");
        return -1;
      }
      if (IsTransientErrno(err) && --attempts_left > 0) {
        ++retries_;
        ::usleep(backoff_us);
        if (backoff_us < 1u << 20) backoff_us *= 2;
        continue;
      }
      status_ = Status::IoError("'" + path_ +
                                "': read failed: " + std::strerror(err));
      return -1;
    }
  }

  std::string path_;
  ReadRetryPolicy policy_;
  int fd_ = -1;
  Status status_;
  size_t retries_ = 0;
  char buffer_[kBufSize];
};

RetryingFileStream::RetryingFileStream(const std::string& path,
                                       ReadRetryPolicy policy)
    : std::istream(nullptr), buf_(new Buf(path, policy)) {
  rdbuf(buf_.get());
  if (!buf_->is_open()) setstate(std::ios::failbit);
}

RetryingFileStream::~RetryingFileStream() = default;

bool RetryingFileStream::is_open() const { return buf_->is_open(); }

const Status& RetryingFileStream::status() const { return buf_->status(); }

size_t RetryingFileStream::retries() const { return buf_->retries(); }

}  // namespace depminer
