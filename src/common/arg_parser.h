#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace depminer {

/// Minimal command-line flag parser for bench and example binaries.
///
/// Accepts `--name=value` and bare `--flag` (boolean). Anything not
/// starting with `--` is collected as a positional argument. The
/// space-separated `--name value` form is deliberately not supported: it
/// is ambiguous with positionals (`--verbose input.csv`).
class ArgParser {
 public:
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Parses "10,20,30" style comma lists of integers.
  std::vector<int64_t> GetIntList(const std::string& name,
                                  std::vector<int64_t> default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace depminer
