#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace depminer {

/// Identifier of a single attribute (column) of a relation schema.
///
/// Attributes are numbered densely from 0 in schema order. The paper calls
/// them A, B, C, ...; `AttributeSet::ToString()` renders them that way for
/// small schemas.
using AttributeId = uint32_t;

/// A set of attributes, implemented as a fixed-capacity bit vector.
///
/// The paper implements attribute sets "as bit vectors to provide set
/// operations in constant time"; we do the same. Capacity is
/// `kMaxAttributes` (128), which comfortably covers the paper's largest
/// schema (60 attributes). All operations are O(1) (two machine words).
///
/// `AttributeSet` is a regular value type: cheap to copy, totally ordered
/// (lexicographic on the underlying words, which corresponds to ordering by
/// the highest differing attribute), and hashable via `AttributeSetHash`.
class AttributeSet {
 public:
  static constexpr size_t kWords = 2;
  static constexpr size_t kMaxAttributes = kWords * 64;

  /// The empty set.
  constexpr AttributeSet() : words_{0, 0} {}

  /// The set containing exactly the given attributes.
  AttributeSet(std::initializer_list<AttributeId> attrs) : words_{0, 0} {
    for (AttributeId a : attrs) Add(a);
  }

  /// Returns the singleton set {a}.
  static AttributeSet Single(AttributeId a) {
    AttributeSet s;
    s.Add(a);
    return s;
  }

  /// Returns the full universe {0, ..., n-1} over an n-attribute schema.
  static AttributeSet Universe(size_t n);

  /// Parses a string of attribute letters ("BDE") into a set. Only valid
  /// for schemas of at most 26 attributes; used by tests and examples.
  static AttributeSet FromLetters(const std::string& letters);

  /// Rebuilds a set from its raw words (inverse of `word()`); used by
  /// binary deserialization (storage/checkpoint).
  static constexpr AttributeSet FromWords(uint64_t w0, uint64_t w1) {
    return AttributeSet(w0, w1);
  }

  bool Contains(AttributeId a) const {
    return (words_[Word(a)] >> Bit(a)) & 1u;
  }
  void Add(AttributeId a) { words_[Word(a)] |= Mask(a); }
  void Remove(AttributeId a) { words_[Word(a)] &= ~Mask(a); }

  bool Empty() const { return (words_[0] | words_[1]) == 0; }
  /// Number of attributes in the set.
  size_t Count() const;

  AttributeSet Union(const AttributeSet& o) const {
    return AttributeSet(words_[0] | o.words_[0], words_[1] | o.words_[1]);
  }
  AttributeSet Intersect(const AttributeSet& o) const {
    return AttributeSet(words_[0] & o.words_[0], words_[1] & o.words_[1]);
  }
  /// Set difference `*this \ o`.
  AttributeSet Minus(const AttributeSet& o) const {
    return AttributeSet(words_[0] & ~o.words_[0], words_[1] & ~o.words_[1]);
  }
  /// Complement relative to an n-attribute universe.
  AttributeSet ComplementIn(size_t n) const {
    return Universe(n).Minus(*this);
  }

  bool IsSubsetOf(const AttributeSet& o) const {
    return (words_[0] & ~o.words_[0]) == 0 && (words_[1] & ~o.words_[1]) == 0;
  }
  bool IsProperSubsetOf(const AttributeSet& o) const {
    return IsSubsetOf(o) && *this != o;
  }
  bool Intersects(const AttributeSet& o) const {
    return ((words_[0] & o.words_[0]) | (words_[1] & o.words_[1])) != 0;
  }

  /// Lowest attribute id in the set; undefined on the empty set.
  AttributeId Min() const;
  /// Highest attribute id in the set; undefined on the empty set.
  AttributeId Max() const;

  /// Appends the members in increasing order to `out`.
  void AppendMembers(std::vector<AttributeId>* out) const;
  /// Returns the members in increasing order.
  std::vector<AttributeId> Members() const;

  /// Calls `fn(AttributeId)` for each member in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < kWords; ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<AttributeId>(w * 64 + static_cast<size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  bool operator==(const AttributeSet& o) const {
    return words_[0] == o.words_[0] && words_[1] == o.words_[1];
  }
  bool operator!=(const AttributeSet& o) const { return !(*this == o); }
  /// Total order: by highest differing attribute (word-lexicographic).
  bool operator<(const AttributeSet& o) const {
    if (words_[1] != o.words_[1]) return words_[1] < o.words_[1];
    return words_[0] < o.words_[0];
  }

  /// Lexicographic order on the sorted member lists ("AB" < "AC" < "B",
  /// "B" < "BC"), the human-friendly order used for output — equivalent
  /// to comparing Members() but allocation-free. Both lists share the
  /// elements below m = min(AΔB); the side holding m is smaller iff the
  /// other side still has a later element, and the side lacking m is
  /// smaller iff it has nothing past m (it is a proper prefix).
  bool LexLess(const AttributeSet& o) const {
    const unsigned __int128 a = Packed(), b = o.Packed();
    const unsigned __int128 d = a ^ b;
    if (d == 0) return false;
    const unsigned __int128 lowest = d & (~d + 1);
    const unsigned __int128 above = ~((lowest << 1) - 1);  // bits > m
    if ((a & lowest) != 0) return (b & above) != 0;
    return (a & above) == 0;
  }

  /// Renders as attribute letters ("BDE") when every member is < 26,
  /// otherwise as "{3,17,40}".
  std::string ToString() const;
  /// Renders using the given attribute names, comma-separated.
  std::string ToString(const std::vector<std::string>& names) const;

  uint64_t word(size_t i) const { return words_[i]; }

 private:
  constexpr AttributeSet(uint64_t w0, uint64_t w1) : words_{w0, w1} {}
  unsigned __int128 Packed() const {
    return (static_cast<unsigned __int128>(words_[1]) << 64) | words_[0];
  }
  static constexpr size_t Word(AttributeId a) { return a >> 6; }
  static constexpr unsigned Bit(AttributeId a) { return a & 63u; }
  static constexpr uint64_t Mask(AttributeId a) { return uint64_t{1} << Bit(a); }

  uint64_t words_[kWords];
};

struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const {
    // 64-bit mix (splitmix64 finalizer) over both words.
    uint64_t h = s.word(0) * 0x9E3779B97F4A7C15ull;
    h ^= s.word(1) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBull;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

/// Removes every set that is a proper subset of another: keeps the
/// ⊆-maximal elements. Order of survivors is unspecified. Implemented by
/// the subset-dominance kernel (common/dominance.h): large families go
/// through an inverted posting-list index, small ones through the
/// quadratic survivor scan — identical output either way.
std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets);

/// Removes every set that is a proper superset of another: keeps the
/// ⊆-minimal elements. Order of survivors is unspecified. Same kernel
/// dispatch as `MaximalSets`.
std::vector<AttributeSet> MinimalSets(std::vector<AttributeSet> sets);

/// Sorts by cardinality then lexicographically; used for stable output.
void SortSets(std::vector<AttributeSet>* sets);

}  // namespace depminer
