#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

/// Compile-time tracing switch. On by default; configure with
/// `-DDEPMINER_TRACING=OFF` (which defines DEPMINER_TRACING_ENABLED=0) to
/// strip every instrumentation site out of the hot paths: the
/// DEPMINER_TRACE_* macros below expand to nothing, so a disabled build
/// references no tracing symbol from the miners at all. The classes keep
/// one definition in both modes (no ODR hazard for mixed translation
/// units); only the macro expansions and the out-of-line bodies change.
#ifndef DEPMINER_TRACING_ENABLED
#define DEPMINER_TRACING_ENABLED 1
#endif

namespace depminer {

/// One closed span, as merged into a stopped `TraceSession`.
struct TraceEvent {
  const char* name;   ///< static string, the span taxonomy name
  uint32_t tid;       ///< session-scoped thread id (0 = first thread seen)
  uint32_t depth;     ///< nesting depth on its thread when the span opened
  int64_t start_ns;   ///< steady-clock ns, relative to session start
  int64_t dur_ns;     ///< span duration
  uint64_t arg;       ///< optional payload (Span::SetValue)
  bool has_arg;
};

/// Log₂-bucketed histogram with FIXED boundaries shared by every
/// histogram in the registry: bucket 0 holds the value 0, bucket i
/// (1 ≤ i < kBuckets−1) holds values in [2^(i−1), 2^i − 1], and the last
/// bucket is the +Inf overflow. Fixed boundaries make the cross-thread
/// merge a plain elementwise add — bit-identical for any thread count or
/// merge order, which is what the determinism tests pin. Values are raw
/// uint64 (nanoseconds for latencies, element counts for sizes); the
/// metric name carries the unit (`*_ns`, `*_couples`, ...).
struct TraceHistogram {
  static constexpr size_t kBuckets = 51;

  uint64_t count = 0;  ///< total observations
  uint64_t sum = 0;    ///< sum of observed values
  std::array<uint64_t, kBuckets> buckets{};

  /// Bucket receiving `value`: 0 for 0, else min(bit_width, kBuckets−1).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive upper bound of bucket i (2^i − 1); the last bucket has no
  /// bound (UINT64_MAX stands in for +Inf).
  static uint64_t BucketUpperBound(size_t i);

  void Record(uint64_t value) {
    count += 1;
    sum += value;
    buckets[BucketIndex(value)] += 1;
  }
  void MergeFrom(const TraceHistogram& other);

  bool operator==(const TraceHistogram& other) const {
    return count == other.count && sum == other.sum &&
           buckets == other.buckets;
  }
};

/// One timestamped point of a sampled time series (what the resource
/// sampler records): session-relative time plus a value. Rendered as
/// chrome://tracing counter events, so Perfetto plots each series as a
/// track over the spans.
struct TraceSampleEvent {
  std::string series;
  int64_t t_ns = 0;
  double value = 0.0;
};

namespace trace_internal {
struct ThreadBuffer;
/// The calling thread's buffer of the active session, registering the
/// thread on first use; nullptr when no session is active (one relaxed
/// atomic load — the entire cost of an instrumentation site at rest).
ThreadBuffer* CurrentBuffer();
}  // namespace trace_internal

/// In-process tracing session: collects spans, counters and gauges from
/// every thread that runs instrumented code between `Start()` and
/// `Stop()`, with per-thread buffers so the hot path never contends on a
/// shared structure (each event append takes only the owning thread's
/// uncontended mutex; threads meet once, at the final merge).
///
/// Contract: at most one session is active at a time, and `Stop()` must
/// not race with instrumented work — every pipeline stage in this library
/// joins its parallel loops before returning, so stopping after a miner
/// returns is always safe. Spans must close before the session stops;
/// a span still open at `Stop()` is dropped, not corrupted.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Installs this session as the process-wide active one and resets any
  /// previously collected data. No-op in a tracing-disabled build.
  void Start();

  /// Uninstalls the session and merges every thread's buffer: events are
  /// sorted by start time, counters summed, gauges maxed. Idempotent.
  void Stop();

  /// The active session, or nullptr. What `Span`/counter sites consult.
  static TraceSession* Current();

  bool active() const;

  /// Merged data; valid after `Stop()`.
  const std::vector<TraceEvent>& events() const;
  const std::map<std::string, uint64_t>& counters() const;
  const std::map<std::string, uint64_t>& gauges() const;
  /// Merged histograms (fixed-boundary buckets added elementwise across
  /// threads). Keys follow the `family/label` convention the exporters
  /// split on — e.g. `phase_duration_ns/agree`.
  const std::map<std::string, TraceHistogram>& histograms() const;
  /// Merged sampled time series, sorted by timestamp.
  const std::vector<TraceSampleEvent>& samples() const;
  /// Wall-clock seconds between Start() and Stop().
  double wall_seconds() const;

  /// Writes the merged events as a chrome://tracing / Perfetto-loadable
  /// JSON object ("traceEvents" complete events, ts/dur in microseconds
  /// relative to session start) plus the counters and gauges under a
  /// "metrics" key. Call after `Stop()`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Human-readable summary: the `phase/*` spans as a table with their
  /// share of session wall clock, every other span name aggregated, then
  /// counters and gauges. Call after `Stop()`.
  std::string MetricsSummary() const;

 private:
  friend trace_internal::ThreadBuffer* trace_internal::CurrentBuffer();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII span: records [construction, destruction) on the calling thread
/// into the active session, with the thread's nesting depth. When no
/// session is active the constructor is a single atomic load and the
/// destructor a null test. Instantiate through DEPMINER_TRACE_SPAN so a
/// tracing-disabled build compiles the site away entirely.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a payload (a per-level candidate count, a per-lane block
  /// count, ...) emitted with the event as `args.value`.
  void SetValue(uint64_t value) {
    arg_ = value;
    has_arg_ = true;
  }

 private:
  trace_internal::ThreadBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  uint64_t arg_ = 0;
  uint32_t depth_ = 0;
  bool has_arg_ = false;
};

/// The disabled-build stand-in DEPMINER_TRACE_SPAN instantiates: an empty
/// type whose methods compile to nothing.
struct NoopSpan {
  explicit NoopSpan(const char*) {}
  void SetValue(uint64_t) {}
};

/// Monotonic counter: adds `delta` to the session counter `name` (a
/// static string). Call with *batched* per-chunk / per-lane totals, never
/// per element — each call takes the thread buffer's (uncontended) lock.
void TraceCounterAdd(const char* name, uint64_t delta);

/// Gauge: folds `value` into session gauge `name` keeping the maximum
/// (high-water marks: RunContext bytes charged, peak partition bytes).
void TraceGaugeMax(const char* name, uint64_t value);

/// Records one observation into histogram `name`. Same batching
/// discipline as counters where possible (per morsel / per probe, never
/// per element of a scan); an inactive session costs one atomic load.
/// `name` follows the `family/label` convention (see TraceSession).
void TraceHistogramRecord(const char* name, uint64_t value);
void TraceHistogramRecord(const std::string& name, uint64_t value);

/// Appends a timestamped point to time series `series` (the resource
/// sampler's API; timestamps are session-relative). No-op when no
/// session is active.
void TraceSampleValue(const char* series, double value);
void TraceSampleValue(const std::string& series, double value);

/// RAII latency probe: records the scope's duration in nanoseconds into
/// histogram `name` at destruction. When no session is active the
/// constructor is one atomic load and no clock is read — cheap enough
/// for per-probe call sites (partition-cache lookups). Instantiate via
/// DEPMINER_TRACE_HIST_TIMER so disabled builds fold the site away.
class HistogramTimer {
 public:
  explicit HistogramTimer(const char* name);
  ~HistogramTimer();
  HistogramTimer(const HistogramTimer&) = delete;
  HistogramTimer& operator=(const HistogramTimer&) = delete;

  /// Re-targets the histogram name before destruction (e.g. a cache
  /// probe deciding between `.../hit` and `.../miss` mid-scope). Only
  /// static strings.
  void SetName(const char* name) { name_ = name; }

 private:
  const char* name_;
  int64_t start_ns_ = 0;
  bool active_ = false;
};

/// Disabled-build stand-in for HistogramTimer.
struct NoopHistogramTimer {
  explicit NoopHistogramTimer(const char*) {}
  void SetName(const char*) {}
};

/// Span-owned, *accumulating* phase timer: `Stop()` (or destruction) adds
/// the elapsed seconds to `*accumulate_seconds` and closes the span named
/// `span_name`. Because the stat field is accumulated into rather than
/// overwritten, a phase that restarts — e.g. a miner retried after a
/// tripped RunContext, or a chunked stage timed per chunk — sums its
/// attempts instead of keeping only the last one (the `Stopwatch::Restart`
/// double-counting hazard this replaces). Always times, even in a
/// tracing-disabled build; only the span emission is trace-gated.
class PhaseTimer {
 public:
  PhaseTimer(const char* span_name, double* accumulate_seconds);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Commits the elapsed time to the stat. Idempotent — functions with
  /// several exit paths (or that `std::move` their result out before the
  /// timer's scope closes) call it before each return; the destructor
  /// then contributes nothing further. The owned span still closes at
  /// destruction, recording the full scope. Also records the elapsed
  /// nanoseconds into the `phase_duration_ns/<phase>` histogram (the
  /// `phase/` span-name prefix becomes the label) when a session is
  /// active.
  void Stop();

 private:
  Span span_;
  const char* span_name_;
  double* accumulate_seconds_;
  int64_t start_ns_;
  bool stopped_ = false;
};

#if DEPMINER_TRACING_ENABLED
#define DEPMINER_TRACE_SPAN(var, name) ::depminer::Span var(name)
#define DEPMINER_TRACE_COUNTER(name, delta) \
  ::depminer::TraceCounterAdd((name), (delta))
#define DEPMINER_TRACE_GAUGE_MAX(name, value) \
  ::depminer::TraceGaugeMax((name), (value))
#define DEPMINER_TRACE_HISTOGRAM(name, value) \
  ::depminer::TraceHistogramRecord((name), (value))
#define DEPMINER_TRACE_HIST_TIMER(var, name) \
  ::depminer::HistogramTimer var(name)
#else
// Expansions reference no tracing symbol and leave their arguments
// unevaluated (sizeof), so a disabled build's hot paths carry nothing.
#define DEPMINER_TRACE_SPAN(var, name) ::depminer::NoopSpan var(name)
#define DEPMINER_TRACE_COUNTER(name, delta)          \
  do {                                               \
    (void)sizeof(char[1]); /* keep shape */          \
    (void)sizeof((name));                            \
    (void)sizeof((delta));                           \
  } while (false)
#define DEPMINER_TRACE_GAUGE_MAX(name, value) \
  do {                                        \
    (void)sizeof((name));                     \
    (void)sizeof((value));                    \
  } while (false)
#define DEPMINER_TRACE_HISTOGRAM(name, value) \
  do {                                        \
    (void)sizeof((name));                     \
    (void)sizeof((value));                    \
  } while (false)
#define DEPMINER_TRACE_HIST_TIMER(var, name) \
  ::depminer::NoopHistogramTimer var(name)
#endif

}  // namespace depminer
