#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

/// Compile-time tracing switch. On by default; configure with
/// `-DDEPMINER_TRACING=OFF` (which defines DEPMINER_TRACING_ENABLED=0) to
/// strip every instrumentation site out of the hot paths: the
/// DEPMINER_TRACE_* macros below expand to nothing, so a disabled build
/// references no tracing symbol from the miners at all. The classes keep
/// one definition in both modes (no ODR hazard for mixed translation
/// units); only the macro expansions and the out-of-line bodies change.
#ifndef DEPMINER_TRACING_ENABLED
#define DEPMINER_TRACING_ENABLED 1
#endif

namespace depminer {

/// One closed span, as merged into a stopped `TraceSession`.
struct TraceEvent {
  const char* name;   ///< static string, the span taxonomy name
  uint32_t tid;       ///< session-scoped thread id (0 = first thread seen)
  uint32_t depth;     ///< nesting depth on its thread when the span opened
  int64_t start_ns;   ///< steady-clock ns, relative to session start
  int64_t dur_ns;     ///< span duration
  uint64_t arg;       ///< optional payload (Span::SetValue)
  bool has_arg;
};

namespace trace_internal {
struct ThreadBuffer;
/// The calling thread's buffer of the active session, registering the
/// thread on first use; nullptr when no session is active (one relaxed
/// atomic load — the entire cost of an instrumentation site at rest).
ThreadBuffer* CurrentBuffer();
}  // namespace trace_internal

/// In-process tracing session: collects spans, counters and gauges from
/// every thread that runs instrumented code between `Start()` and
/// `Stop()`, with per-thread buffers so the hot path never contends on a
/// shared structure (each event append takes only the owning thread's
/// uncontended mutex; threads meet once, at the final merge).
///
/// Contract: at most one session is active at a time, and `Stop()` must
/// not race with instrumented work — every pipeline stage in this library
/// joins its parallel loops before returning, so stopping after a miner
/// returns is always safe. Spans must close before the session stops;
/// a span still open at `Stop()` is dropped, not corrupted.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Installs this session as the process-wide active one and resets any
  /// previously collected data. No-op in a tracing-disabled build.
  void Start();

  /// Uninstalls the session and merges every thread's buffer: events are
  /// sorted by start time, counters summed, gauges maxed. Idempotent.
  void Stop();

  /// The active session, or nullptr. What `Span`/counter sites consult.
  static TraceSession* Current();

  bool active() const;

  /// Merged data; valid after `Stop()`.
  const std::vector<TraceEvent>& events() const;
  const std::map<std::string, uint64_t>& counters() const;
  const std::map<std::string, uint64_t>& gauges() const;
  /// Wall-clock seconds between Start() and Stop().
  double wall_seconds() const;

  /// Writes the merged events as a chrome://tracing / Perfetto-loadable
  /// JSON object ("traceEvents" complete events, ts/dur in microseconds
  /// relative to session start) plus the counters and gauges under a
  /// "metrics" key. Call after `Stop()`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Human-readable summary: the `phase/*` spans as a table with their
  /// share of session wall clock, every other span name aggregated, then
  /// counters and gauges. Call after `Stop()`.
  std::string MetricsSummary() const;

 private:
  friend trace_internal::ThreadBuffer* trace_internal::CurrentBuffer();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII span: records [construction, destruction) on the calling thread
/// into the active session, with the thread's nesting depth. When no
/// session is active the constructor is a single atomic load and the
/// destructor a null test. Instantiate through DEPMINER_TRACE_SPAN so a
/// tracing-disabled build compiles the site away entirely.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a payload (a per-level candidate count, a per-lane block
  /// count, ...) emitted with the event as `args.value`.
  void SetValue(uint64_t value) {
    arg_ = value;
    has_arg_ = true;
  }

 private:
  trace_internal::ThreadBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  uint64_t arg_ = 0;
  uint32_t depth_ = 0;
  bool has_arg_ = false;
};

/// The disabled-build stand-in DEPMINER_TRACE_SPAN instantiates: an empty
/// type whose methods compile to nothing.
struct NoopSpan {
  explicit NoopSpan(const char*) {}
  void SetValue(uint64_t) {}
};

/// Monotonic counter: adds `delta` to the session counter `name` (a
/// static string). Call with *batched* per-chunk / per-lane totals, never
/// per element — each call takes the thread buffer's (uncontended) lock.
void TraceCounterAdd(const char* name, uint64_t delta);

/// Gauge: folds `value` into session gauge `name` keeping the maximum
/// (high-water marks: RunContext bytes charged, peak partition bytes).
void TraceGaugeMax(const char* name, uint64_t value);

/// Span-owned, *accumulating* phase timer: `Stop()` (or destruction) adds
/// the elapsed seconds to `*accumulate_seconds` and closes the span named
/// `span_name`. Because the stat field is accumulated into rather than
/// overwritten, a phase that restarts — e.g. a miner retried after a
/// tripped RunContext, or a chunked stage timed per chunk — sums its
/// attempts instead of keeping only the last one (the `Stopwatch::Restart`
/// double-counting hazard this replaces). Always times, even in a
/// tracing-disabled build; only the span emission is trace-gated.
class PhaseTimer {
 public:
  PhaseTimer(const char* span_name, double* accumulate_seconds);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Commits the elapsed time to the stat. Idempotent — functions with
  /// several exit paths (or that `std::move` their result out before the
  /// timer's scope closes) call it before each return; the destructor
  /// then contributes nothing further. The owned span still closes at
  /// destruction, recording the full scope.
  void Stop();

 private:
  Span span_;
  double* accumulate_seconds_;
  int64_t start_ns_;
  bool stopped_ = false;
};

#if DEPMINER_TRACING_ENABLED
#define DEPMINER_TRACE_SPAN(var, name) ::depminer::Span var(name)
#define DEPMINER_TRACE_COUNTER(name, delta) \
  ::depminer::TraceCounterAdd((name), (delta))
#define DEPMINER_TRACE_GAUGE_MAX(name, value) \
  ::depminer::TraceGaugeMax((name), (value))
#else
// Expansions reference no tracing symbol and leave their arguments
// unevaluated (sizeof), so a disabled build's hot paths carry nothing.
#define DEPMINER_TRACE_SPAN(var, name) ::depminer::NoopSpan var(name)
#define DEPMINER_TRACE_COUNTER(name, delta)          \
  do {                                               \
    (void)sizeof(char[1]); /* keep shape */          \
    (void)sizeof((name));                            \
    (void)sizeof((delta));                           \
  } while (false)
#define DEPMINER_TRACE_GAUGE_MAX(name, value) \
  do {                                        \
    (void)sizeof((name));                     \
    (void)sizeof((value));                    \
  } while (false)
#endif

}  // namespace depminer
