#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace depminer {

/// Error category for `Status`. Kept deliberately small; the library has
/// only a few ways to fail (bad input files, invalid arguments, capacity
/// limits).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIoError,
  kNotFound,
  kCapacityExceeded,
  kFailedPrecondition,
  kDeadlineExceeded,  ///< a RunContext wall-clock deadline expired
  kCancelled,         ///< cooperative cancellation was requested
  kResourceExhausted,  ///< a bounded queue or admission limit overflowed
  kDataLoss,  ///< stored data fails its recorded integrity cross-check
};

const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Library code never throws; fallible
/// operations return `Status` or `Result<T>`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Holds either a value or an error `Status`. T need not be
/// default-constructible.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define DEPMINER_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::depminer::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace depminer
