#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <ctime>
#include <mutex>

namespace depminer {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_json{false};
std::atomic<std::FILE*> g_sink{nullptr};  // nullptr = stderr

std::mutex& EmitMutex() {
  static std::mutex mu;
  return mu;
}

/// Wall-clock timestamp: "HH:MM:SS.mmm" for humans, full ISO 8601 UTC
/// for the JSON sink.
void FormatTimestamp(bool iso, char* buf, size_t buf_size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  if (iso) {
    std::snprintf(buf, buf_size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  (tm_utc.tm_year + 1900) % 10000, (tm_utc.tm_mon + 1) % 100,
                  tm_utc.tm_mday % 100, tm_utc.tm_hour % 100,
                  tm_utc.tm_min % 100, tm_utc.tm_sec % 100, millis % 1000);
  } else {
    std::snprintf(buf, buf_size, "%02d:%02d:%02d.%03d", tm_utc.tm_hour % 100,
                  tm_utc.tm_min % 100, tm_utc.tm_sec % 100, millis % 1000);
  }
}

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarn:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kOff:
      break;
  }
  return '?';
}

}  // namespace

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

Result<LogLevel> ParseLogLevel(const std::string& text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return Status::InvalidArgument(
      "log level must be debug|info|warn|error|off, got \"" + text + "\"");
}

LogField LogStr(const char* key, std::string value) {
  return LogField{key, std::move(value), /*quoted=*/true};
}

LogField LogNum(const char* key, int64_t value) {
  return LogField{key, std::to_string(value), /*quoted=*/false};
}

LogField LogNum(const char* key, uint64_t value) {
  return LogField{key, std::to_string(value), /*quoted=*/false};
}

LogField LogNum(const char* key, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN literal; a string keeps the line parseable.
    return LogField{key, value > 0 ? "+inf" : (value < 0 ? "-inf" : "nan"),
                    /*quoted=*/true};
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return LogField{key, buf, /*quoted=*/false};
}

LogField LogBool(const char* key, bool value) {
  return LogField{key, value ? "true" : "false", /*quoted=*/false};
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogJson(bool json) { g_json.store(json, std::memory_order_relaxed); }

bool LogJsonEnabled() { return g_json.load(std::memory_order_relaxed); }

void SetLogSink(std::FILE* sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Log(LogLevel level, const char* subsystem, const std::string& message,
         const std::vector<LogField>& fields) {
  if (!LogEnabled(level)) return;
  std::FILE* sink = g_sink.load(std::memory_order_relaxed);
  if (sink == nullptr) sink = stderr;

  std::string line;
  line.reserve(96 + message.size());
  char ts[40];
  if (LogJsonEnabled()) {
    FormatTimestamp(/*iso=*/true, ts, sizeof(ts));
    line += "{\"ts\":\"";
    line += ts;
    line += "\",\"level\":\"";
    line += ToString(level);
    line += "\",\"subsystem\":\"";
    line += JsonEscape(subsystem);
    line += "\",\"message\":\"";
    line += JsonEscape(message);
    line += "\"";
    for (const LogField& f : fields) {
      line += ",\"";
      line += JsonEscape(f.key);
      line += "\":";
      if (f.quoted) {
        line += "\"";
        line += JsonEscape(f.value);
        line += "\"";
      } else {
        line += f.value;
      }
    }
    line += "}\n";
  } else {
    FormatTimestamp(/*iso=*/false, ts, sizeof(ts));
    line += ts;
    line += ' ';
    line += LevelLetter(level);
    line += ' ';
    line += subsystem;
    line += ' ';
    line += message;
    if (!fields.empty()) {
      line += " (";
      bool first = true;
      for (const LogField& f : fields) {
        if (!first) line += ' ';
        first = false;
        line += f.key;
        line += '=';
        line += f.value;
      }
      line += ')';
    }
    line += '\n';
  }

  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

void Log(LogLevel level, const char* subsystem, const std::string& message,
         std::initializer_list<LogField> fields) {
  if (!LogEnabled(level)) return;
  Log(level, subsystem, message, std::vector<LogField>(fields));
}

void Log(LogLevel level, const char* subsystem, const std::string& message) {
  Log(level, subsystem, message, std::vector<LogField>{});
}

}  // namespace depminer
