#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <string>

#include "common/status.h"

namespace depminer {

/// Retry schedule for transient read errors. EINTR is retried immediately
/// (bounded only to guard against a pathological signal storm); transient
/// I/O errors (EIO, EAGAIN) are retried with doubling backoff up to
/// `max_attempts` total tries per read call.
struct ReadRetryPolicy {
  int max_attempts = 4;
  int max_eintr_retries = 100;
  uint32_t initial_backoff_us = 200;
};

/// An input stream over a POSIX file descriptor that survives the read
/// failures `std::ifstream` silently conflates with end-of-file: EINTR,
/// short reads, and transient I/O errors.
///
/// Short reads are absorbed by the buffering loop (a `read(2)` returning
/// fewer bytes than asked is not an error; the next fill continues where
/// it left off). EINTR and transient errors are retried per
/// `ReadRetryPolicy`. A read that still fails after retries ends the
/// stream *and* records a sticky `status()` — callers must check it after
/// parsing, because to `std::istream` consumers a dead stream is
/// indistinguishable from EOF and the result would otherwise be a
/// silently truncated parse.
///
/// The `io/csv-read`, `io/csv-short-read` and `io/csv-eintr` fault sites
/// live at this class's syscall boundary, which is what makes the retry
/// behavior deterministically testable.
class RetryingFileStream : public std::istream {
 public:
  explicit RetryingFileStream(const std::string& path,
                              ReadRetryPolicy policy = {});
  ~RetryingFileStream() override;
  RetryingFileStream(const RetryingFileStream&) = delete;
  RetryingFileStream& operator=(const RetryingFileStream&) = delete;

  /// False when the file could not be opened (then `status()` says why).
  bool is_open() const;

  /// OK, or the first unrecoverable read/open error. EOF is not an error.
  const Status& status() const;

  /// Read syscalls retried so far (EINTR and backoff retries); test hook.
  size_t retries() const;

 private:
  class Buf;
  std::unique_ptr<Buf> buf_;
};

}  // namespace depminer
