#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"

namespace depminer {

/// Leveled, subsystem-tagged structured logging with two sinks: a
/// human-readable line format and JSON-lines (one self-contained JSON
/// object per line, for `jq`/log shippers). This is the process-wide
/// logger the CLI front ends and the long-running subsystems (checkpoint
/// resume, the fuzz harness, the fault sweep, progress heartbeats) emit
/// through — replacing ad-hoc `std::cerr` so every operational message
/// carries a level, a subsystem and machine-readable fields.
///
/// The miners' hot paths do NOT log (they trace; see common/trace.h):
/// logging is for request/run-grade events — a resume, a trip, a sweep
/// milestone — at a rate where a mutex and an fprintf are irrelevant.
///
/// Thread safety: configuration is atomic, emission takes one mutex so
/// concurrent lines never interleave. `LogEnabled()` is a single relaxed
/// atomic load, so a disabled level costs nothing measurable.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< threshold only: silences everything
};

const char* ToString(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (what
/// `--log-level` accepts). InvalidArgument on anything else.
Result<LogLevel> ParseLogLevel(const std::string& text);

/// One structured field of a log event. Build through the `LogStr` /
/// `LogNum` / `LogBool` helpers; `quoted` distinguishes JSON strings
/// from bare numbers/booleans.
struct LogField {
  const char* key;
  std::string value;
  bool quoted = true;
};

LogField LogStr(const char* key, std::string value);
LogField LogNum(const char* key, int64_t value);
LogField LogNum(const char* key, uint64_t value);
LogField LogNum(const char* key, double value);
LogField LogBool(const char* key, bool value);

/// Global configuration. Defaults: info level, human format, stderr.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void SetLogJson(bool json);
bool LogJsonEnabled();
/// Redirects emission (tests, or a CLI writing logs to a file). The
/// logger never closes the sink; nullptr restores stderr.
void SetLogSink(std::FILE* sink);

/// True when `level` passes the configured threshold — guard expensive
/// message construction with this.
bool LogEnabled(LogLevel level);

/// Emits one event. `subsystem` is a short static tag ("fdtool",
/// "checkpoint", "fuzz", "faultsweep", "progress", "sampler", ...).
/// Human format:  `12:00:01.123 I checkpoint resumed (phase=agree)`
/// JSON-lines:    `{"ts":"...","level":"info","subsystem":"checkpoint",
///                  "message":"resumed","phase":"agree"}`
/// Field keys should avoid the reserved `ts`/`level`/`subsystem`/
/// `message` names.
void Log(LogLevel level, const char* subsystem, const std::string& message,
         const std::vector<LogField>& fields);
void Log(LogLevel level, const char* subsystem, const std::string& message,
         std::initializer_list<LogField> fields);
void Log(LogLevel level, const char* subsystem, const std::string& message);

/// JSON string escaping per RFC 8259 (shared with the JSON-lines sink;
/// exposed because the exporters escape the same way).
std::string JsonEscape(const std::string& text);

}  // namespace depminer
