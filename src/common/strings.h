#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace depminer {

/// Splits on a single-character delimiter; empty fields are preserved.
/// "a,,b" -> {"a", "", "b"}; "" -> {""}.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Parses a non-negative integer; returns false on any non-digit input or
/// overflow of uint64_t.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Parses a double via strtod over the whole string.
bool ParseDouble(std::string_view s, double* out);

/// Human-readable "1.23 s" / "45.6 ms" duration formatting.
std::string FormatDuration(double seconds);

}  // namespace depminer
