#include "common/strings.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace depminer {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace depminer
