#include "common/resource_sampler.h"

#include <chrono>
#include <cstdio>

#include "common/parallel.h"
#include "common/progress.h"
#include "common/trace.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace depminer {

uint64_t CurrentRssBytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0, resident_pages = 0;
  const int n = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (n != 2) return 0;
  static const long page_size = sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<uint64_t>(page_size > 0 ? page_size : 4096);
#else
  return 0;
#endif
}

ResourceSampler::ResourceSampler(const ResourceSamplerOptions& options)
    : options_(options) {
  if (options_.period_ms <= 0) options_.period_ms = 50;
}

ResourceSampler::~ResourceSampler() { Stop(); }

void ResourceSampler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void ResourceSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ResourceSampler::SampleOnce() {
  // Idle when no session is active: one atomic load and out — the
  // sampler may be started unconditionally and only costs anything while
  // a trace session runs.
  if (TraceSession::Current() == nullptr) return;

  const uint64_t rss = CurrentRssBytes();
  if (rss > 0) {
    TraceSampleValue("sampler/rss_bytes", static_cast<double>(rss));
    TraceGaugeMax("sampler/rss_peak_bytes", rss);
  }

  const RunContext* ctx = options_.run_context;
  if (ctx != nullptr) {
    TraceSampleValue("sampler/runctx_bytes",
                     static_cast<double>(ctx->bytes_used()));
    const size_t budget = ctx->budget_bytes();
    if (budget > 0) {
      TraceSampleValue("sampler/runctx_budget_bytes",
                       static_cast<double>(budget));
    }
    const int64_t slack_ns = ctx->DeadlineSlackNs();
    if (slack_ns != INT64_MAX) {
      TraceSampleValue("sampler/deadline_slack_ms",
                       static_cast<double>(slack_ns) * 1e-6);
    }
  }

  TraceSampleValue("sampler/pool_queue_depth",
                   static_cast<double>(PoolQueueDepth()));

  const ProgressSnapshot progress = CurrentProgress();
  if (progress.tracking) {
    TraceSampleValue("sampler/progress_done",
                     static_cast<double>(progress.done));
  }
}

void ResourceSampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                 [this] { return !running_; });
  }
}

}  // namespace depminer
