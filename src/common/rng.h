#pragma once

#include <cstdint>

namespace depminer {

/// xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
///
/// Deterministic and platform-independent, unlike std::mt19937 seeded via
/// std::seed_seq whose distributions differ across standard libraries.
/// The benchmark data generator depends on reproducible streams so that
/// paper-table rows are comparable across machines.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t Below(uint64_t bound) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      const uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace depminer
