#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

#include "common/trace.h"
#include "fault/fault.h"

namespace depminer {
namespace internal {
namespace {

/// One pooled loop in flight: the work cursor the lanes claim blocks
/// from, the type-erased body/stop, and the helper bookkeeping the pool
/// mutex guards. Lives on the calling thread's stack for the duration of
/// PooledLoop; helpers can only touch it between the enqueue and the
/// caller's final purge-and-wait, which is exactly the window the pool
/// mutex arbitrates.
struct LoopState {
  size_t begin = 0;
  size_t count = 0;
  size_t block = 1;
  std::atomic<size_t> next{0};
  /// Next lane id; the caller is lane 0, each helper that picks the loop
  /// up claims the following one. Bounded by the number of queue entries
  /// + 1, i.e. by the loop's max_workers.
  std::atomic<size_t> next_slot{1};
  void* ctx = nullptr;
  LoopBody body = nullptr;
  LoopStop stop = nullptr;
  /// Helpers currently executing this loop. Guarded by the pool mutex;
  /// the caller's completion wait on it is what publishes helper writes
  /// (mutex release/acquire) back to the caller.
  int active = 0;
};

/// Set inside pool workers so a nested parallel loop degrades to an
/// inline serial loop instead of deadlocking on its own pool.
thread_local bool t_in_pool_worker = false;

/// Claims blocks off `state`'s cursor until the range is exhausted or
/// the stop predicate fires. Runs on the caller (slot 0) and on every
/// helper that picked the loop up.
void Drain(LoopState* state, size_t slot) {
  // The lane's utilization span: how long this lane (caller or pool
  // helper) spent inside the loop, with the blocks it claimed as the
  // payload — lanes that arrive late or starve show short spans / low
  // counts. One span + one batched counter per lane per loop, never
  // per index, so an inactive session costs a single atomic load here.
  DEPMINER_TRACE_SPAN(lane_span, "pool/lane");
  uint64_t blocks_claimed = 0;
  while (true) {
    if (state->stop(state->ctx)) break;
    // Lane-stall injection between block claims: a firing fault models a
    // descheduled/slow lane. Correctness must not depend on lane pacing —
    // the dynamic cursor just lets other lanes claim past the sleeper,
    // and the bit-identical-output guarantee has to survive it.
    DEPMINER_FAULT_STALL("pool/lane-stall");
    const size_t lo =
        state->next.fetch_add(state->block, std::memory_order_relaxed);
    if (lo >= state->count) break;
    ++blocks_claimed;
    const size_t hi = std::min(state->count, lo + state->block);
    for (size_t i = lo; i < hi; ++i) {
      if (state->stop(state->ctx)) {
        lane_span.SetValue(blocks_claimed);
        DEPMINER_TRACE_COUNTER("pool.blocks_claimed", blocks_claimed);
        return;
      }
      state->body(state->ctx, slot, state->begin + i);
    }
  }
  lane_span.SetValue(blocks_claimed);
  DEPMINER_TRACE_COUNTER("pool.blocks_claimed", blocks_claimed);
}

/// The shared, persistent worker pool. Lazily started: the first loop
/// that asks for N lanes spawns up to N-1 workers (capped at
/// kMaxPoolWorkers), and every later loop reuses them — no per-call
/// std::thread spawn/join. Torn down (cooperatively) at process exit.
class Pool {
 public:
  static Pool& Get() {
    static Pool pool;
    return pool;
  }

  void Run(LoopState* state, size_t helpers_wanted) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (workers_.size() < helpers_wanted &&
             workers_.size() < kMaxPoolWorkers) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
      for (size_t h = 0; h < helpers_wanted; ++h) queue_.push_back(state);
      work_cv_.notify_all();
    }
    Drain(state, 0);
    std::unique_lock<std::mutex> lock(mu_);
    // Un-started entries are withdrawn so no new helper can join a loop
    // whose state is about to leave scope; helpers already counted in
    // `active` finish their (empty or stopped) cursor drain first.
    for (auto it = queue_.begin(); it != queue_.end();) {
      it = *it == state ? queue_.erase(it) : std::next(it);
    }
    idle_cv_.wait(lock, [state] { return state->active == 0; });
  }

  void RunDetached(std::function<void()> task) {
    std::lock_guard<std::mutex> lock(mu_);
    ++detached_in_flight_;
    // One lane per in-flight task (helpers for loops are best-effort, a
    // submitted task is not): grow until every task could hold a worker
    // with one to spare, so loop invitations never starve completely.
    while (workers_.size() < detached_in_flight_ + 1 &&
           workers_.size() < kMaxPoolWorkers) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    tasks_.push_back(std::move(task));
    work_cv_.notify_all();
  }

  size_t workers_started() const {
    std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
  }

  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  size_t detached_in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return detached_in_flight_;
  }

 private:
  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      work_cv_.notify_all();
    }
    for (std::thread& t : workers_) t.join();
  }

  void WorkerLoop() {
    t_in_pool_worker = true;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      work_cv_.wait(lock, [this] {
        return shutdown_ || !tasks_.empty() || !queue_.empty();
      });
      if (shutdown_) return;
      if (!tasks_.empty()) {
        // Detached tasks outrank loop invitations: a loop completes
        // regardless (its caller self-drains), a task runs only here.
        std::function<void()> task = std::move(tasks_.front());
        tasks_.pop_front();
        lock.unlock();
        // A task body is a fresh top-level context, not a nested loop:
        // let its ParallelFor recruit the pool. Self-deadlock is ruled
        // out by Run()'s self-draining caller + invitation withdrawal.
        t_in_pool_worker = false;
        task();
        t_in_pool_worker = true;
        lock.lock();
        --detached_in_flight_;
        continue;
      }
      LoopState* state = queue_.front();
      queue_.pop_front();
      ++state->active;
      lock.unlock();
      const size_t slot =
          state->next_slot.fetch_add(1, std::memory_order_relaxed);
      Drain(state, slot);
      lock.lock();
      if (--state->active == 0) idle_cv_.notify_all();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<LoopState*> queue_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t detached_in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace

void PooledLoop(size_t begin, size_t end, size_t max_workers, void* ctx,
                LoopBody body, LoopStop stop) {
  const size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  if (max_workers <= 1 || count == 1 || t_in_pool_worker) {
    // Inline (and for nested calls: a pool worker must not block on its
    // own pool). The stop contract — polled before each index — holds.
    for (size_t i = begin; i < end; ++i) {
      if (stop(ctx)) return;
      body(ctx, 0, i);
    }
    return;
  }
  DEPMINER_TRACE_COUNTER("pool.loops", 1);
  LoopState state;
  state.begin = begin;
  state.count = count;
  // Blocks amortize cursor contention on cheap bodies while staying at 1
  // for small ranges of expensive bodies (partition products).
  state.block = std::clamp<size_t>(count / (max_workers * 8), 1, 4096);
  state.ctx = ctx;
  state.body = body;
  state.stop = stop;
  Pool::Get().Run(&state, max_workers - 1);
}

}  // namespace internal

size_t PoolWorkersStarted() { return internal::Pool::Get().workers_started(); }

size_t PoolQueueDepth() { return internal::Pool::Get().queue_depth(); }

void PoolRunDetached(std::function<void()> task) {
  internal::Pool::Get().RunDetached(std::move(task));
}

size_t PoolDetachedInFlight() {
  return internal::Pool::Get().detached_in_flight();
}

}  // namespace depminer
