#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace depminer {

/// Shared, thread-safe handle governing the resources of one discovery
/// run: a wall-clock deadline, a cooperative cancellation flag, and a
/// byte-accounted memory budget.
///
/// The worst cases of every miner in this library are exponential in the
/// number of attributes (levelwise transversal search, TANE's lattice,
/// FastFDs' cover DFS), so production callers need a way to bound a run
/// that has already started. A `RunContext` is passed by pointer through
/// the option structs (`DepMinerOptions::run_context`,
/// `TaneOptions::run_context`, ...); `nullptr` — the default everywhere —
/// means "no governance" and costs one pointer test per check site.
///
/// Long-running stages call `Check()` (or the `DEPMINER_CHECK_RUN` macro)
/// at natural work-unit boundaries: agree-set chunks, lattice/transversal
/// levels, partition products, DFS node batches, CSV record batches.
/// When a limit has tripped, the stage stops where it is and the pipeline
/// returns whatever it completed, flagged incomplete (see
/// `DepMinerResult::complete`).
///
/// Thread safety: every member is a lock-free atomic. `RequestCancel()`
/// is additionally async-signal-safe, so a SIGINT handler may call it
/// directly (this is exactly what `fdtool` does).
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Arms a deadline `timeout` from now. Call before starting the run.
  void SetTimeout(std::chrono::milliseconds timeout) {
    SetDeadline(Clock::now() + timeout);
  }

  /// Arms an absolute wall-clock deadline.
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  /// Arms a memory budget: `Check()` fails with `kCapacityExceeded` once
  /// the charged working-set bytes exceed it. 0 disarms.
  void SetMemoryBudget(size_t bytes) {
    budget_bytes_.store(bytes, std::memory_order_relaxed);
    if (bytes != 0) armed_.store(true, std::memory_order_release);
  }

  /// Requests cooperative cancellation. Safe from any thread and from a
  /// signal handler; the run winds down at its next check site.
  void RequestCancel() {
    cancelled_.store(true, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Forces the context into a failed verdict with the given code, as if
  /// the corresponding limit had tripped. `Check()` reports the forced
  /// code ahead of every real limit from the next call on, so the run
  /// winds down through its ordinary partial-result machinery. This is
  /// how a failed working-set allocation is surfaced (and how the fault
  /// layer injects one): the allocating stage cannot continue, but every
  /// stage already knows how to stop at a `kCapacityExceeded` verdict.
  /// Lock-free and async-signal-safe, like `RequestCancel()`.
  void ForceTrip(StatusCode code) {
    forced_code_.store(static_cast<int>(code), std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  /// True once `ForceTrip` was called.
  bool force_tripped() const {
    return forced_code_.load(std::memory_order_relaxed) !=
           static_cast<int>(StatusCode::kOk);
  }

  /// True iff any limit was armed or cancellation requested. The fast
  /// filter every check starts with; an unarmed context is free.
  bool limited() const { return armed_.load(std::memory_order_acquire); }

  /// Working-set accounting. Stages charge the size of their dominant
  /// structure (couple lists, live lattice partitions, streaming buckets)
  /// and release it when the structure dies — `ScopedMemoryCharge` below
  /// makes that exception-safe. Charges from concurrent stages add up,
  /// which is the honest total.
  void ChargeBytes(size_t delta) {
    const size_t now =
        bytes_used_.fetch_add(delta, std::memory_order_relaxed) + delta;
    size_t peak = high_water_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !high_water_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  void ReleaseBytes(size_t delta) {
    bytes_used_.fetch_sub(delta, std::memory_order_relaxed);
  }
  size_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }
  size_t high_water_bytes() const {
    return high_water_bytes_.load(std::memory_order_relaxed);
  }
  /// The armed memory budget; 0 = unarmed. (The resource sampler exports
  /// charged-vs-budget as a time series.)
  size_t budget_bytes() const {
    return budget_bytes_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds until the armed deadline (negative once past it), or
  /// INT64_MAX when no deadline is armed. For observability only — the
  /// governed verdict is `Check()`.
  int64_t DeadlineSlackNs() const {
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadline) return INT64_MAX;
    return d - Clock::now().time_since_epoch().count();
  }

  /// The governed verdict, in precedence order: cancellation, deadline,
  /// memory budget. OK while the run may continue. Unarmed contexts
  /// return OK after a single atomic load.
  Status Check() const;

  /// Cheap predicate form of `Check()` for early-stop loops
  /// (`ParallelFor` stop predicates): true once the run should wind down.
  bool StopRequested() const {
    return limited() && !Check().ok();
  }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<bool> cancelled_{false};
  /// Forced verdict from `ForceTrip`; kOk (0) when none. Mutable so the
  /// const `Check()` can latch an injected deadline-jitter fault.
  mutable std::atomic<int> forced_code_{0};
  /// Deadline as steady_clock ns-since-epoch; kNoDeadline = unarmed.
  static constexpr int64_t kNoDeadline = INT64_MAX;
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  std::atomic<size_t> budget_bytes_{0};
  std::atomic<size_t> bytes_used_{0};
  std::atomic<size_t> high_water_bytes_{0};
};

/// RAII working-set charge against a (possibly null) context. `Set`
/// re-charges to a new running estimate; destruction releases whatever is
/// currently charged.
class ScopedMemoryCharge {
 public:
  explicit ScopedMemoryCharge(RunContext* ctx) : ctx_(ctx) {}
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;
  ~ScopedMemoryCharge() {
    if (ctx_ != nullptr && charged_ != 0) ctx_->ReleaseBytes(charged_);
  }

  /// Adjusts the charge to `total` bytes (the stage's current estimate).
  void Set(size_t total) {
    if (ctx_ == nullptr) return;
    if (total > charged_) {
      ctx_->ChargeBytes(total - charged_);
    } else if (total < charged_) {
      ctx_->ReleaseBytes(charged_ - total);
    }
    charged_ = total;
  }

  size_t charged() const { return charged_; }

 private:
  RunContext* ctx_;
  size_t charged_ = 0;
};

/// Amortized stop poller for tight (often per-lane) loops: polls the
/// governing context's atomics on the first call and then once every
/// `stride` calls, so the cancellation check costs a local counter
/// increment on the fast path. Polling the very first call matters for
/// determinism: an already-tripped context stops every lane before it
/// processes anything, for any thread count. Once a poll observes a trip
/// the answer latches to true. Each parallel lane owns its own instance
/// (the class is not thread-safe; the context it polls is).
class StridedStopPoller {
 public:
  explicit StridedStopPoller(const RunContext* ctx, uint32_t stride = 1024)
      : ctx_(ctx), stride_(stride == 0 ? 1 : stride) {}

  bool StopRequested() {
    if (ctx_ == nullptr || !ctx_->limited()) return false;
    if (stopped_) return true;
    if (calls_++ % stride_ != 0) return false;
    stopped_ = ctx_->StopRequested();
    return stopped_;
  }

 private:
  const RunContext* ctx_;
  uint32_t stride_;
  uint32_t calls_ = 0;
  bool stopped_ = false;
};

/// Hot-loop guard: propagates a tripped context as its non-OK `Status`.
/// Use in functions returning `Status` or `Result<T>`; stages returning
/// plain structs record `ctx->Check()` in their result instead.
#define DEPMINER_CHECK_RUN(ctx)                          \
  do {                                                   \
    const ::depminer::RunContext* _run_ctx = (ctx);      \
    if (_run_ctx != nullptr && _run_ctx->limited()) {    \
      ::depminer::Status _run_st = _run_ctx->Check();    \
      if (!_run_st.ok()) return _run_st;                 \
    }                                                    \
  } while (false)

}  // namespace depminer
