#pragma once

#include <cstddef>

#include "common/status.h"

namespace depminer {

/// The cross-miner search-space pruning knobs, embedded by every miner's
/// option struct (`DepMinerOptions::mining`, `TaneOptions::mining`,
/// `FastFdsOptions::mining`, `FdepOptions::mining`) and surfaced by
/// `fdtool mine` as `--arity`, `--error` and `--topk`. See
/// docs/PERFORMANCE.md ("Search-space pruning") for what each knob skips
/// and the equivalence guarantees the verification harness enforces.
struct MiningOptions {
  /// Maximum left-hand-side arity k; 0 (default) = unbounded. A capped
  /// run prunes candidates *before* they are generated — TANE stops
  /// growing its lattice past level k+1, the transversal searches stop at
  /// level k, FastFDs stops branching at DFS depth k, FDEP drops
  /// contradicted size-k hypotheses instead of specializing them — and
  /// its output is exactly the unbounded minimal cover filtered to
  /// |lhs| ≤ k (asserted by the differential oracle).
  size_t max_lhs_arity = 0;
  /// Maximum g₃ error ε ∈ [0, 1) for an FD to be reported; 0 (default)
  /// discovers exact dependencies. Only TANE implements the approximate
  /// path (key-error pruning over stripped partitions); the other miners
  /// reject a positive threshold. At ε = 0 the approximate path is
  /// provably equal to the exact output.
  double max_g3_error = 0.0;
  /// Keep only the N most valuable FDs of the emitted cover, ranked by
  /// redundancy (see fd/ranking.h); 0 (default) = all. Ranking is a
  /// post-pass over the final cover — it never changes which FDs are
  /// *discovered*, only which are reported.
  size_t top_k = 0;
  /// Test-only: take the approximate-FD validation path even when
  /// `max_g3_error` is 0. For TANE this forces the g₃ computation whose
  /// ε=0 verdict must coincide with the exact partition-error comparison
  /// (the equivalence the oracle's AFD cross-check pins down); miners
  /// without an approximate path ignore it.
  bool force_error_validation = false;

  /// Unbounded-arity check: true when no cap is set or `count` fits it.
  bool WithinArity(size_t count) const {
    return max_lhs_arity == 0 || count <= max_lhs_arity;
  }

  /// Validates the knob ranges (`max_g3_error` ∈ [0, 1)); `fdtool`
  /// additionally rejects `--arity=0` and `--topk=0` at parse time, where
  /// "explicitly zero" is distinguishable from "not given".
  Status Validate() const;
};

}  // namespace depminer
