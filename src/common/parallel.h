#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace depminer {

namespace internal {

/// True when `Stop` is callable as a stop predicate (no arguments,
/// bool-ish result); used to disambiguate the ParallelFor overloads.
template <typename Stop, typename = void>
struct IsStopPredicate : std::false_type {};
template <typename Stop>
struct IsStopPredicate<
    Stop, std::enable_if_t<std::is_convertible_v<
              decltype(std::declval<Stop&>()()), bool>>> : std::true_type {};

/// Type-erased loop body and stop predicate for the pooled loop. `slot`
/// identifies the executing lane (0 = calling thread, then one per pool
/// helper that joined the loop) and is always < the `max_workers` passed
/// to PooledLoop, so callers may index per-worker scratch buffers by it.
using LoopBody = void (*)(void* ctx, size_t slot, size_t index);
using LoopStop = bool (*)(void* ctx);

/// Runs `body(ctx, slot, i)` for every i in [begin, end) on the shared
/// persistent worker pool, dynamic chunked scheduling, with the calling
/// thread participating as slot 0. `stop` is polled before each index on
/// every lane (cooperative cancellation, same contract as ParallelFor).
/// Blocks until every lane has finished; outputs written to
/// index-distinct slots are therefore published to the caller.
///
/// Called from inside a pool worker (a nested parallel loop) this runs
/// inline on the calling thread — the pool never deadlocks on itself.
void PooledLoop(size_t begin, size_t end, size_t max_workers, void* ctx,
                LoopBody body, LoopStop stop);

}  // namespace internal

/// Number of OS threads the shared pool has started so far. The pool is
/// lazy and persistent: threads are spawned the first time a loop asks
/// for them and are reused by every later loop (introspection for tests
/// and diagnostics).
size_t PoolWorkersStarted();

/// Number of helper invitations currently waiting in the shared pool's
/// queue (an instantaneous reading; the resource sampler exports it as a
/// saturation signal — persistently nonzero means loops want more lanes
/// than the pool has workers).
size_t PoolQueueDepth();

/// Hard cap on the shared pool's size; `num_threads` requests beyond it
/// are served by the existing workers (every index still runs).
inline constexpr size_t kMaxPoolWorkers = 256;

/// Submits `task` for asynchronous execution on a thread of the shared
/// persistent pool and returns immediately — the serve-mode request
/// scheduler. Submission grows the pool (up to kMaxPoolWorkers) so every
/// in-flight task has a dedicated lane even while parallel loops are
/// running; past the cap, tasks queue behind each other (the server's
/// admission control bounds that queue). Inside a task the pool behaves
/// normally — a ParallelFor in the task body recruits helper lanes
/// instead of degrading to the nested-loop serial path.
///
/// Tasks must not throw, and every task must have completed before
/// process teardown begins (the server's drain barrier provides this);
/// tasks still queued when the pool shuts down are dropped, not run.
/// Completion is signalled by the task itself (condition variable,
/// latch): there is no join handle by design — this is fire-and-forget.
void PoolRunDetached(std::function<void()> task);

/// Detached tasks currently queued or executing (introspection for tests
/// and the drain barrier's sanity logging).
size_t PoolDetachedInFlight();

/// Runs `fn(slot, i)` for every i in [begin, end) across up to
/// `num_threads` lanes of the shared persistent pool (the calling thread
/// is lane 0). `slot` < min(num_threads, count) and is unique among
/// concurrently executing lanes, so `fn` may index per-worker scratch
/// state (workspaces, accumulators) by it without synchronization.
/// Scheduling is dynamic (work is claimed in blocks), so which indices a
/// slot receives is not deterministic — only index-distinct outputs are.
///
/// `stop` is polled before each index on every lane; once it returns
/// true, lanes stop claiming work (the index being processed finishes —
/// cancellation is cooperative, never preemptive). Indices after the
/// stop point may or may not have run; callers pair this with per-slot
/// completion flags when they need to know. This is how a tripped
/// `RunContext` drains the pipeline stages (`RunContext::StopRequested`
/// is the canonical predicate).
///
/// No-throw contract: `fn` must be safe to call concurrently for
/// distinct indices and must not throw — an escaping exception would
/// cross into a pooled worker with no actionable context. Wrap
/// unavoidably-throwing callables in `AssertNoThrow`.
template <typename Fn, typename Stop,
          std::enable_if_t<internal::IsStopPredicate<Stop>::value, int> = 0>
void ParallelForSlotted(size_t begin, size_t end, size_t num_threads, Fn&& fn,
                        Stop&& stop) {
  const size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = begin; i < end; ++i) {
      if (stop()) return;
      fn(size_t{0}, i);
    }
    return;
  }
  struct Ctx {
    std::remove_reference_t<Fn>* fn;
    std::remove_reference_t<Stop>* stop;
  } ctx{&fn, &stop};
  internal::PooledLoop(
      begin, end, std::min(num_threads, count), &ctx,
      [](void* c, size_t slot, size_t i) {
        (*static_cast<Ctx*>(c)->fn)(slot, i);
      },
      [](void* c) {
        return static_cast<bool>((*static_cast<Ctx*>(c)->stop)());
      });
}

/// Slotted form without a stop predicate: every index runs exactly once.
template <typename Fn>
void ParallelForSlotted(size_t begin, size_t end, size_t num_threads,
                        Fn&& fn) {
  ParallelForSlotted(begin, end, num_threads, std::forward<Fn>(fn),
                     [] { return false; });
}

/// Runs `fn(i)` for every i in [begin, end) across up to `num_threads`
/// lanes of the shared persistent pool. With `num_threads` ≤ 1 (or a
/// single index) the loop runs inline on the calling thread. Outputs
/// written to index-distinct slots are deterministic regardless of
/// thread count. See ParallelForSlotted for the stop-predicate and
/// no-throw contracts.
template <typename Fn, typename Stop,
          std::enable_if_t<internal::IsStopPredicate<Stop>::value, int> = 0>
void ParallelFor(size_t begin, size_t end, size_t num_threads, Fn&& fn,
                 Stop&& stop) {
  ParallelForSlotted(
      begin, end, num_threads, [&fn](size_t /*slot*/, size_t i) { fn(i); },
      std::forward<Stop>(stop));
}

/// The unconditional form: every index runs exactly once.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, size_t num_threads, Fn&& fn) {
  ParallelFor(begin, end, num_threads, std::forward<Fn>(fn),
              [] { return false; });
}

/// Fixed-grain partition of an index range into *morsels* — the small
/// work units the agree-set engine pulls from the pool's shared queue
/// (ParallelFor's dynamic chunk claiming is the queue; a morsel is one
/// loop index). Each morsel m owns the contiguous sub-range
/// [lo(m), hi(m)), so outputs stored per-morsel and merged in morsel
/// order are a pure function of the input range, never of which lane ran
/// which morsel: results stay bit-identical at any thread count while
/// scheduling stays dynamic — a skewed or stalled morsel strands one
/// grain of work, not a static 1/num_threads share of the range.
struct MorselPlan {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t count = 0;

  /// Grain policy: aim for several morsels per lane so the dynamic
  /// scheduler has slack to balance skew, but clamp below so queue
  /// traffic and per-morsel buffers can't dominate tiny ranges, and
  /// above so one morsel's buffer stays cache- and budget-friendly.
  MorselPlan(size_t begin_, size_t end_, size_t num_threads,
             size_t min_grain = 1024, size_t max_grain = 65536)
      : begin(begin_), end(end_ > begin_ ? end_ : begin_) {
    const size_t n = end - begin;
    const size_t lanes = std::max<size_t>(1, num_threads);
    const size_t hi_grain = std::max(min_grain, max_grain);
    grain = std::clamp(n / (8 * lanes), std::max<size_t>(1, min_grain),
                       hi_grain);
    count = (n + grain - 1) / grain;
  }

  size_t lo(size_t m) const { return std::min(end, begin + m * grain); }
  size_t hi(size_t m) const { return std::min(end, lo(m) + grain); }
};

/// Assertion-friendly wrapper for ParallelFor's no-throw contract: the
/// returned callable runs `fn(i)` and turns any escaping exception into a
/// debug assertion failure (release builds terminate, as any throw from a
/// ParallelFor worker would anyway — but the assertion names the site).
template <typename Fn>
auto AssertNoThrow(Fn&& fn) {
  return [fn = std::forward<Fn>(fn)](size_t i) noexcept {
#if defined(__cpp_exceptions)
    try {
      fn(i);
    } catch (...) {
      assert(false && "ParallelFor body must not throw");
      std::terminate();
    }
#else
    fn(i);
#endif
  };
}

/// Sorts [begin, end) with `cmp` using up to `num_threads` pool lanes:
/// contiguous segments are sorted in parallel, then merged in rounds of
/// pairwise std::inplace_merge. The sorted sequence is the same for any
/// thread count whenever cmp-equal elements are indistinguishable (true
/// for the packed couple keys and for classes compared by content);
/// like std::sort, relative order of cmp-equal distinct elements is
/// unspecified. Small ranges fall back to a plain std::sort.
template <typename Iter, typename Cmp>
void ParallelSort(Iter begin, Iter end, size_t num_threads, Cmp cmp) {
  const size_t count = static_cast<size_t>(end - begin);
  constexpr size_t kSerialCutoff = 1u << 14;
  if (num_threads <= 1 || count < kSerialCutoff) {
    std::sort(begin, end, cmp);
    return;
  }
  const size_t ways = std::min(num_threads, count / (kSerialCutoff / 2));
  if (ways <= 1) {
    std::sort(begin, end, cmp);
    return;
  }
  // boundary(i) of segment i in [0, ways]; segments are near-equal.
  std::vector<size_t> bounds(ways + 1);
  for (size_t i = 0; i <= ways; ++i) bounds[i] = count * i / ways;
  ParallelFor(0, ways, num_threads, [&](size_t i) {
    std::sort(begin + bounds[i], begin + bounds[i + 1], cmp);
  });
  for (size_t width = 1; width < ways; width *= 2) {
    const size_t pairs = (ways + 2 * width - 1) / (2 * width);
    ParallelFor(0, pairs, num_threads, [&](size_t j) {
      const size_t lo = 2 * j * width;
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + 2 * width, ways);
      if (mid >= hi) return;  // odd tail, already sorted
      std::inplace_merge(begin + bounds[lo], begin + bounds[mid],
                         begin + bounds[hi], cmp);
    });
  }
}

template <typename Iter>
void ParallelSort(Iter begin, Iter end, size_t num_threads) {
  ParallelSort(begin, end, num_threads, std::less<>());
}

/// The hardware concurrency, with a sane floor of 1.
inline size_t DefaultThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace depminer
