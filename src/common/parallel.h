#pragma once

#include <cstddef>
#include <thread>
#include <vector>

namespace depminer {

/// Runs `fn(i)` for every i in [begin, end) across up to `num_threads`
/// OS threads, static contiguous partitioning. With `num_threads` ≤ 1 (or
/// a single index) the loop runs inline on the calling thread.
///
/// `fn` must be safe to call concurrently for distinct indices and must
/// not throw. Used for the embarrassingly parallel per-attribute stages
/// (stripped-partition extraction, per-attribute transversal searches);
/// outputs are written to index-distinct slots, so results are
/// deterministic regardless of thread count.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, size_t num_threads, Fn&& fn) {
  const size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t workers = num_threads < count ? num_threads : count;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const size_t chunk = (count + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    const size_t lo = begin + w * chunk;
    const size_t hi = lo + chunk < end ? lo + chunk : end;
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (std::thread& t : threads) t.join();
}

/// The hardware concurrency, with a sane floor of 1.
inline size_t DefaultThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace depminer
