#pragma once

#include <cassert>
#include <cstddef>
#include <exception>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace depminer {

namespace internal {

/// True when `Stop` is callable as a stop predicate (no arguments,
/// bool-ish result); used to disambiguate the ParallelFor overloads.
template <typename Stop, typename = void>
struct IsStopPredicate : std::false_type {};
template <typename Stop>
struct IsStopPredicate<
    Stop, std::enable_if_t<std::is_convertible_v<
              decltype(std::declval<Stop&>()()), bool>>> : std::true_type {};

}  // namespace internal

/// Runs `fn(i)` for every i in [begin, end) across up to `num_threads`
/// OS threads, static contiguous partitioning. With `num_threads` ≤ 1 (or
/// a single index) the loop runs inline on the calling thread.
///
/// `stop` is polled before each index on every worker; once it returns
/// true, workers stop scheduling their remaining indices (the index being
/// processed finishes — cancellation is cooperative, never preemptive).
/// Indices after the stop point may or may not have run; callers pair
/// this with per-slot completion flags when they need to know. This is
/// how a tripped `RunContext` drains the per-attribute stages
/// (`RunContext::StopRequested` is the canonical predicate).
///
/// No-throw contract: `fn` must be safe to call concurrently for distinct
/// indices and must not throw — an escaping exception would call
/// std::terminate inside a detached-from-caller worker thread with no
/// actionable context. Wrap unavoidably-throwing callables in
/// `AssertNoThrow` to convert a contract violation into a debug assertion
/// at the throw site instead. Used for the embarrassingly parallel
/// per-attribute stages (stripped-partition extraction, per-attribute
/// transversal searches); outputs are written to index-distinct slots, so
/// results are deterministic regardless of thread count.
template <typename Fn, typename Stop,
          std::enable_if_t<internal::IsStopPredicate<Stop>::value, int> = 0>
void ParallelFor(size_t begin, size_t end, size_t num_threads, Fn&& fn,
                 Stop&& stop) {
  const size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = begin; i < end; ++i) {
      if (stop()) return;
      fn(i);
    }
    return;
  }
  const size_t workers = num_threads < count ? num_threads : count;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const size_t chunk = (count + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    const size_t lo = begin + w * chunk;
    const size_t hi = lo + chunk < end ? lo + chunk : end;
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn, &stop] {
      for (size_t i = lo; i < hi; ++i) {
        if (stop()) return;
        fn(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

/// The unconditional form: every index runs exactly once.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, size_t num_threads, Fn&& fn) {
  ParallelFor(begin, end, num_threads, std::forward<Fn>(fn),
              [] { return false; });
}

/// Assertion-friendly wrapper for ParallelFor's no-throw contract: the
/// returned callable runs `fn(i)` and turns any escaping exception into a
/// debug assertion failure (release builds terminate, as any throw from a
/// ParallelFor worker would anyway — but the assertion names the site).
template <typename Fn>
auto AssertNoThrow(Fn&& fn) {
  return [fn = std::forward<Fn>(fn)](size_t i) noexcept {
#if defined(__cpp_exceptions)
    try {
      fn(i);
    } catch (...) {
      assert(false && "ParallelFor body must not throw");
      std::terminate();
    }
#else
    fn(i);
#endif
  };
}

/// The hardware concurrency, with a sane floor of 1.
inline size_t DefaultThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace depminer
