#include "common/progress.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/log.h"

namespace depminer {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<bool> g_tracking{false};
std::atomic<const char*> g_phase{""};
std::atomic<const char*> g_unit{""};
std::atomic<uint64_t> g_done{0};
std::atomic<uint64_t> g_total{0};
std::atomic<int64_t> g_phase_start_ns{0};

}  // namespace

void EnableProgressTracking(bool enabled) {
  g_phase.store("", std::memory_order_relaxed);
  g_unit.store("", std::memory_order_relaxed);
  g_done.store(0, std::memory_order_relaxed);
  g_total.store(0, std::memory_order_relaxed);
  g_phase_start_ns.store(NowNs(), std::memory_order_relaxed);
  g_tracking.store(enabled, std::memory_order_release);
}

bool ProgressTrackingEnabled() {
  return g_tracking.load(std::memory_order_relaxed);
}

void ProgressBeginPhase(const char* phase, const char* unit, uint64_t total) {
  if (!ProgressTrackingEnabled()) return;
  g_done.store(0, std::memory_order_relaxed);
  g_total.store(total, std::memory_order_relaxed);
  g_unit.store(unit, std::memory_order_relaxed);
  g_phase_start_ns.store(NowNs(), std::memory_order_relaxed);
  g_phase.store(phase, std::memory_order_release);
}

void ProgressAdvance(uint64_t delta) {
  if (!ProgressTrackingEnabled()) return;
  g_done.fetch_add(delta, std::memory_order_relaxed);
}

void ProgressExpandTotal(uint64_t total) {
  if (!ProgressTrackingEnabled()) return;
  uint64_t cur = g_total.load(std::memory_order_relaxed);
  while (cur < total && !g_total.compare_exchange_weak(
                            cur, total, std::memory_order_relaxed)) {
  }
}

ProgressSnapshot CurrentProgress() {
  ProgressSnapshot snap;
  snap.tracking = g_tracking.load(std::memory_order_acquire);
  snap.phase = g_phase.load(std::memory_order_acquire);
  snap.unit = g_unit.load(std::memory_order_relaxed);
  snap.done = g_done.load(std::memory_order_relaxed);
  snap.total = g_total.load(std::memory_order_relaxed);
  snap.phase_elapsed_ns =
      NowNs() - g_phase_start_ns.load(std::memory_order_relaxed);
  return snap;
}

ProgressHeartbeat::ProgressHeartbeat(int period_ms) : period_ms_(period_ms) {}

ProgressHeartbeat::~ProgressHeartbeat() { Stop(); }

void ProgressHeartbeat::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  Emit("start");
  thread_ = std::thread([this] { Loop(); });
}

void ProgressHeartbeat::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  Emit("done");
}

void ProgressHeartbeat::Emit(const char* event) {
  const ProgressSnapshot snap = CurrentProgress();
  const double elapsed_s =
      static_cast<double>(snap.phase_elapsed_ns) * 1e-9;

  std::vector<LogField> fields;
  fields.push_back(LogStr("event", event));
  fields.push_back(LogStr("phase", snap.phase[0] != '\0' ? snap.phase : "-"));
  fields.push_back(LogNum("done", snap.done));
  if (snap.total > 0) fields.push_back(LogNum("total", snap.total));
  if (snap.unit[0] != '\0') fields.push_back(LogStr("unit", snap.unit));
  fields.push_back(LogNum("phase_elapsed_s", elapsed_s));

  std::string message;
  char buf[96];
  if (snap.total > 0) {
    const double pct =
        100.0 * static_cast<double>(snap.done) / static_cast<double>(snap.total);
    std::snprintf(buf, sizeof(buf), "%llu/%llu %s (%.1f%%)",
                  static_cast<unsigned long long>(snap.done),
                  static_cast<unsigned long long>(snap.total), snap.unit, pct);
    message = buf;
    if (snap.done > 0 && snap.done < snap.total) {
      const double eta_s = elapsed_s *
                           static_cast<double>(snap.total - snap.done) /
                           static_cast<double>(snap.done);
      std::snprintf(buf, sizeof(buf), " eta=%.1fs", eta_s);
      message += buf;
      fields.push_back(LogNum("eta_s", eta_s));
    }
  } else {
    std::snprintf(buf, sizeof(buf), "%llu %s",
                  static_cast<unsigned long long>(snap.done),
                  snap.unit[0] != '\0' ? snap.unit : "units");
    message = buf;
  }
  message = std::string(snap.phase[0] != '\0' ? snap.phase : "-") + ": " +
            message;

  Log(LogLevel::kInfo, "progress", message, fields);

  // When a trace session is active, the heartbeat doubles as a sampled
  // time series so the trace shows the same live view.
  TraceSampleValue("sampler/progress_done", static_cast<double>(snap.done));
}

void ProgressHeartbeat::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                 [this] { return !running_; });
    if (!running_) break;
    lock.unlock();
    Emit("tick");
    lock.lock();
  }
}

}  // namespace depminer
