#include "common/dominance.h"

#include <algorithm>
#include <cassert>

#include "common/trace.h"

namespace depminer {

namespace {

uint64_t TailMask(size_t prefix) {
  return (prefix % 64 == 0) ? ~uint64_t{0}
                            : ((uint64_t{1} << (prefix % 64)) - 1);
}

}  // namespace

DominanceIndex::DominanceIndex(const std::vector<AttributeSet>& family,
                               Order order, size_t num_attributes)
    : num_sets_(family.size()),
      words_((family.size() + 63) / 64),
      order_(order) {
  size_t hist[AttributeSet::kMaxAttributes + 1] = {};
  for (const AttributeSet& s : family) {
    support_ = support_.Union(s);
    ++hist[s.Count()];
  }
  rows_ = num_attributes;
  if (!support_.Empty()) {
    rows_ = std::max(rows_, static_cast<size_t>(support_.Max()) + 1);
  }
  postings_.assign(rows_ * words_, 0);
  for (size_t id = 0; id < num_sets_; ++id) {
#ifndef NDEBUG
    if (id > 0) {
      const size_t prev = family[id - 1].Count(), cur = family[id].Count();
      assert((order == Order::kNonIncreasing ? prev >= cur : prev <= cur) &&
             "family must be sorted by the declared cardinality order");
    }
#endif
    const uint64_t bit = uint64_t{1} << (id % 64);
    const size_t word = id / 64;
    family[id].ForEach([&](AttributeId a) {
      postings_[static_cast<size_t>(a) * words_ + word] |= bit;
    });
  }
  // Strict-cardinality prefix boundaries: ids able to properly dominate
  // a set of cardinality c are exactly those sorted before every set of
  // cardinality c.
  if (order == Order::kNonIncreasing) {
    size_t acc = 0;
    for (size_t c = AttributeSet::kMaxAttributes + 1; c-- > 0;) {
      strict_prefix_[c] = acc;
      acc += hist[c];
    }
  } else {
    size_t acc = 0;
    for (size_t c = 0; c <= AttributeSet::kMaxAttributes; ++c) {
      strict_prefix_[c] = acc;
      acc += hist[c];
    }
  }
}

bool DominanceIndex::HasProperSupersetOf(const AttributeSet& s,
                                         const uint64_t* exclude,
                                         uint64_t* scratch) const {
  assert(order_ == Order::kNonIncreasing);
  const size_t prefix = strict_prefix_[s.Count()];
  if (prefix == 0) return false;
  const size_t nw = (prefix + 63) / 64;
  // Start from every strictly-larger id (minus exclusions); each member
  // posting intersected shrinks the survivors to the sets containing all
  // of s. The running OR short-circuits the common case where a few
  // postings already prove no superset exists.
  for (size_t w = 0; w < nw; ++w) {
    scratch[w] = exclude != nullptr ? ~exclude[w] : ~uint64_t{0};
  }
  scratch[nw - 1] &= TailMask(prefix);
  uint64_t any = 0;
  for (size_t w = 0; w < nw; ++w) any |= scratch[w];
  for (size_t sw = 0; sw < AttributeSet::kWords && any != 0; ++sw) {
    uint64_t bits = s.word(sw);
    while (bits != 0 && any != 0) {
      const AttributeId a =
          static_cast<AttributeId>(sw * 64 + __builtin_ctzll(bits));
      bits &= bits - 1;
      const uint64_t* row = Postings(a);
      any = 0;
      for (size_t w = 0; w < nw; ++w) any |= (scratch[w] &= row[w]);
    }
  }
  return any != 0;
}

bool DominanceIndex::HasProperSubsetOf(const AttributeSet& s,
                                       const uint64_t* exclude,
                                       uint64_t* scratch) const {
  assert(order_ == Order::kNonDecreasing);
  const size_t prefix = strict_prefix_[s.Count()];
  if (prefix == 0) return false;
  const size_t nw = (prefix + 63) / 64;
  // Start from every strictly-smaller id; knocking out the postings of
  // each attribute *outside* s leaves exactly the sets avoiding
  // everything outside s — the subsets of s. Attributes no indexed set
  // carries (outside the support) cannot knock anything out and are
  // skipped wholesale.
  for (size_t w = 0; w < nw; ++w) {
    scratch[w] = exclude != nullptr ? ~exclude[w] : ~uint64_t{0};
  }
  scratch[nw - 1] &= TailMask(prefix);
  uint64_t any = 0;
  for (size_t w = 0; w < nw; ++w) any |= scratch[w];
  const AttributeSet outside = support_.Minus(s);
  for (size_t sw = 0; sw < AttributeSet::kWords && any != 0; ++sw) {
    uint64_t bits = outside.word(sw);
    while (bits != 0 && any != 0) {
      const AttributeId a =
          static_cast<AttributeId>(sw * 64 + __builtin_ctzll(bits));
      bits &= bits - 1;
      const uint64_t* row = Postings(a);
      any = 0;
      for (size_t w = 0; w < nw; ++w) any |= (scratch[w] &= ~row[w]);
    }
  }
  return any != 0;
}

namespace {

/// Canonical dominance preprocessing: deduplicate (word order), then
/// order by cardinality — dominating sets first — stably, so the
/// survivor sequence is a deterministic function of the input *as a
/// set*. This is the exact ordering the pre-kernel quadratic filters
/// used; keeping it keeps every caller's output bit-identical.
void CanonicalOrder(std::vector<AttributeSet>* sets, bool largest_first) {
  std::sort(sets->begin(), sets->end());
  sets->erase(std::unique(sets->begin(), sets->end()), sets->end());
  std::stable_sort(sets->begin(), sets->end(),
                   [largest_first](const AttributeSet& a,
                                   const AttributeSet& b) {
                     return largest_first ? a.Count() > b.Count()
                                          : a.Count() < b.Count();
                   });
}

/// The incremental quadratic survivor scan over a canonically ordered
/// family. A candidate only needs checking against already-kept sets:
/// dominance is transitive and dominators sort earlier, so every
/// dominated candidate is dominated by some survivor.
std::vector<AttributeSet> SurvivorScan(const std::vector<AttributeSet>& sets,
                                       bool maximal) {
  std::vector<AttributeSet> out;
  out.reserve(sets.size());
  for (const AttributeSet& s : sets) {
    bool dominated = false;
    for (const AttributeSet& kept : out) {
      if (maximal ? s.IsSubsetOf(kept) : kept.IsSubsetOf(s)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(s);
  }
  return out;
}

/// Families smaller than this are filtered by the quadratic scan: index
/// construction costs ~|S| posting writes plus the bitmap allocation,
/// which only amortizes once the scan's |S|·|survivors| subset tests
/// dominate.
constexpr size_t kKernelCutoff = 64;

std::vector<AttributeSet> FilterDominated(std::vector<AttributeSet> sets,
                                          bool maximal) {
  CanonicalOrder(&sets, /*largest_first=*/maximal);
  if (sets.size() < kKernelCutoff) return SurvivorScan(sets, maximal);
  DEPMINER_TRACE_COUNTER("dominance.index_queries", sets.size());
  const DominanceIndex index(sets, maximal
                                       ? DominanceIndex::Order::kNonIncreasing
                                       : DominanceIndex::Order::kNonDecreasing);
  // Checking against the *whole* family instead of the survivor set is
  // equivalent: any dominator is itself dominated only by sets that also
  // dominate the candidate (transitivity), so a maximal/minimal
  // dominator always exists among the survivors.
  std::vector<uint64_t> scratch(index.words_per_bitmap());
  std::vector<AttributeSet> out;
  out.reserve(sets.size());
  for (const AttributeSet& s : sets) {
    const bool dominated =
        maximal ? index.HasProperSupersetOf(s, nullptr, scratch.data())
                : index.HasProperSubsetOf(s, nullptr, scratch.data());
    if (!dominated) out.push_back(s);
  }
  return out;
}

}  // namespace

// MaximalSets / MinimalSets are declared in attribute_set.h (they predate
// the kernel); their bodies live here so every caller — FastFDs
// difference-set minimization, FDep hypothesis pruning,
// Hypergraph::Minimized, Berge transversals, normalization — routes
// through the same dominance machinery.
std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets) {
  return FilterDominated(std::move(sets), /*maximal=*/true);
}

std::vector<AttributeSet> MinimalSets(std::vector<AttributeSet> sets) {
  return FilterDominated(std::move(sets), /*maximal=*/false);
}

std::vector<AttributeSet> MaximalSetsNaive(std::vector<AttributeSet> sets) {
  CanonicalOrder(&sets, /*largest_first=*/true);
  return SurvivorScan(sets, /*maximal=*/true);
}

std::vector<AttributeSet> MinimalSetsNaive(std::vector<AttributeSet> sets) {
  CanonicalOrder(&sets, /*largest_first=*/false);
  return SurvivorScan(sets, /*maximal=*/false);
}

}  // namespace depminer
